// Package weakdist is the public API of the weak-distance minimization
// framework (Fu & Su, PLDI 2019): floating-point analysis problems —
// boundary value analysis, path reachability, overflow detection,
// branch-coverage testing, and floating-point satisfiability — solved by
// minimizing weak distances with black-box mathematical optimization.
//
// # Concepts
//
// A Program is an instrumentable floating-point computation: it exposes
// every floating-point operation and branch comparison to a Monitor.
// Programs come from three sources:
//
//   - native Go code wrapped with observation calls (see NewContext and
//     the Program type),
//   - FPL source compiled with CompileFPL (a small C-like language;
//     instrumentation is automatic),
//   - the built-in benchmark ports (glibc sin, GSL special functions)
//     in internal packages, reachable through the cmd/ tools.
//
// A Monitor is a weak-distance state machine (Def. 3.1): it accumulates
// a nonnegative value w during execution that is zero exactly when the
// execution witnesses the analysis target. The provided monitors are
// Boundary, Path, Overflow, Coverage, and Characteristic.
//
// Solve (Algorithm 2) minimizes any weak distance with a Minimizer
// backend (Basinhopping by default) and re-verifies candidate solutions
// with a user-supplied membership oracle. The higher-level entry points
// BoundaryValues, ReachPath, DetectOverflows and Cover bundle the
// construction, minimization, and verification for each analysis.
//
// # Quick example
//
//	p := &weakdist.Program{
//	    Name: "prog", Dim: 1,
//	    Branches: []weakdist.BranchInfo{{ID: 0, Label: "x < 1", Op: weakdist.LT}},
//	    Run: func(ctx *weakdist.Ctx, x []float64) {
//	        ctx.Cmp(0, weakdist.LT, x[0], 1)
//	    },
//	}
//	rep := weakdist.BoundaryValues(context.Background(), p,
//	    weakdist.BoundaryOptions{Seed: 1})
package weakdist

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fp"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/rt"
	"repro/internal/sat"
)

// --- Programs and observation (internal/rt) ---

// Program is an instrumentable floating-point program.
type Program = rt.Program

// Ctx is the observation context passed to a Program's Run function.
type Ctx = rt.Ctx

// Monitor receives execution observations and accumulates a weak
// distance.
type Monitor = rt.Monitor

// NopMonitor observes nothing (plain concrete execution).
type NopMonitor = rt.NopMonitor

// OpInfo describes a floating-point operation site.
type OpInfo = rt.OpInfo

// BranchInfo describes a branch comparison site.
type BranchInfo = rt.BranchInfo

// NewContext wraps a monitor for direct execution; most callers use
// Program.Execute instead.
func NewContext(m Monitor) *Ctx { return rt.NewCtx(m) }

// --- Comparison operators and distances (internal/fp) ---

// CmpOp is a floating-point comparison operator.
type CmpOp = fp.CmpOp

// Comparison operators.
const (
	LT = fp.LT
	LE = fp.LE
	GT = fp.GT
	GE = fp.GE
	EQ = fp.EQ
	NE = fp.NE
)

// ULPDiff is the integer ULP distance between two floats — a true
// metric on the finite binary64 lattice.
func ULPDiff(a, b float64) uint64 { return fp.ULPDiff(a, b) }

// BranchDist is the branch distance θ(op, a, b): zero iff `a op b`
// holds, growing with the violation.
func BranchDist(op CmpOp, a, b float64) float64 { return fp.BranchDist(op, a, b) }

// --- Weak-distance monitors (internal/instrument) ---

// Boundary is the multiplicative boundary value analysis weak distance
// (§4.2).
type Boundary = instrument.Boundary

// Path is the additive path-reachability weak distance (§4.3).
type Path = instrument.Path

// Decision is one branch decision of a target path.
type Decision = instrument.Decision

// Overflow is the Algorithm 3 overflow-detection weak distance (§4.4).
type Overflow = instrument.Overflow

// NewOverflow returns an overflow monitor with an empty tracked set.
func NewOverflow() *Overflow { return instrument.NewOverflow() }

// Coverage is the CoverMe-style branch-coverage weak distance.
type Coverage = instrument.Coverage

// Side identifies one direction of a branch.
type Side = instrument.Side

// Characteristic is the flat 0/1 weak distance of Fig. 7 (for
// ablations; it degenerates search into random testing).
type Characteristic = instrument.Characteristic

// --- Optimization backends (internal/opt) ---

// Minimizer is a black-box global optimization backend.
type Minimizer = opt.Minimizer

// Objective is a function to minimize.
type Objective = opt.Objective

// Bound is a per-dimension search interval.
type Bound = opt.Bound

// Config carries backend knobs (seed, budget, bounds, traces).
type Config = opt.Config

// Trace records a sampling sequence.
type Trace = opt.Trace

// Basinhopping is the default backend: MCMC over local minima.
type Basinhopping = opt.Basinhopping

// DifferentialEvolution is a population-based backend.
type DifferentialEvolution = opt.DifferentialEvolution

// Powell is a derivative-free local direction-set backend.
type Powell = opt.Powell

// NelderMead is a derivative-free simplex local minimizer.
type NelderMead = opt.NelderMead

// RandomSearch is the pure random baseline.
type RandomSearch = opt.RandomSearch

// --- The reduction theory (internal/core) ---

// WeakDistance is a weak-distance objective W : F^N → F.
type WeakDistance = core.WeakDistance

// Problem packages ⟨Prog; S⟩ with its weak distance and membership
// oracle.
type Problem = core.Problem

// SolveOptions configures Solve.
type SolveOptions = core.Options

// SolveResult is the outcome of Algorithm 2.
type SolveResult = core.Result

// Solve runs Algorithm 2: minimize the weak distance; return a verified
// solution or "not found". The context cancels the search at
// weak-distance-evaluation granularity; pass context.Background() for
// an unbounded run.
func Solve(ctx context.Context, p Problem, o SolveOptions) SolveResult {
	return core.Solve(ctx, p, o)
}

// --- End-user analyses (internal/analysis) ---

// BoundaryOptions configures BoundaryValues.
type BoundaryOptions = analysis.BoundaryOptions

// BoundaryReport is the boundary value analysis result.
type BoundaryReport = analysis.BoundaryReport

// BoundaryValues finds inputs triggering boundary conditions (§4.2,
// §6.2).
func BoundaryValues(ctx context.Context, p *Program, o BoundaryOptions) *BoundaryReport {
	return analysis.BoundaryValues(ctx, p, o)
}

// ReachOptions configures ReachPath.
type ReachOptions = analysis.ReachOptions

// ReachPath finds an input driving the program along the target path
// (§4.3).
func ReachPath(ctx context.Context, p *Program, target []Decision, o ReachOptions) SolveResult {
	return analysis.ReachPath(ctx, p, target, o)
}

// OverflowOptions configures DetectOverflows.
type OverflowOptions = analysis.OverflowOptions

// OverflowReport is the Algorithm 3 result.
type OverflowReport = analysis.OverflowReport

// DetectOverflows runs Algorithm 3: generate inputs overflowing as many
// floating-point operations as possible (§4.4, §6.3).
func DetectOverflows(ctx context.Context, p *Program, o OverflowOptions) *OverflowReport {
	return analysis.DetectOverflows(ctx, p, o)
}

// CoverOptions configures Cover.
type CoverOptions = analysis.CoverOptions

// CoverReport is the branch-coverage result.
type CoverReport = analysis.CoverReport

// Cover runs branch-coverage-based testing (§2 Instance 4).
func Cover(ctx context.Context, p *Program, o CoverOptions) *CoverReport {
	return analysis.Cover(ctx, p, o)
}

// NonFiniteOptions configures FindNonFinite.
type NonFiniteOptions = analysis.NonFiniteOptions

// NonFiniteReport is the NaN/domain-error finder result.
type NonFiniteReport = analysis.NonFiniteReport

// FindNonFinite generates inputs driving FP operations to non-finite
// results (the registry's sixth analysis).
func FindNonFinite(ctx context.Context, p *Program, o NonFiniteOptions) *NonFiniteReport {
	return analysis.FindNonFinite(ctx, p, o)
}

// --- Floating-point satisfiability (internal/sat) ---

// Formula is a CNF over floating-point atoms.
type Formula = sat.Formula

// SatOptions configures SolveSAT.
type SatOptions = sat.Options

// SatResult is a satisfiability answer.
type SatResult = sat.Result

// ParseFormula reads a CNF from text, e.g. "x < 1 && x + 1 >= 2".
func ParseFormula(src string) (*Formula, map[string]int, error) { return sat.Parse(src) }

// SolveSAT decides a floating-point CNF by weak-distance minimization
// (§2 Instance 5).
func SolveSAT(ctx context.Context, f *Formula, o SatOptions) SatResult {
	return sat.Solve(ctx, f, o)
}

// --- Analysis registry and pipeline (internal/analysis, internal/pipeline) ---

// AnalysisSpec is the uniform, JSON-serializable configuration of a
// registered analysis (seed, evals, bounds, backend name, workers, ULP,
// engine, plus per-analysis knobs).
type AnalysisSpec = analysis.Spec

// AnalysisReport is the typed result of a registered analysis.
type AnalysisReport = analysis.Report

// AnalysisInput is what a registered analysis runs on.
type AnalysisInput = analysis.Input

// Job is one batch unit: a program (built-in name or inline FPL
// source) plus the spec of the analysis to run on it.
type Job = pipeline.Job

// JobResult is the outcome of one job.
type JobResult = pipeline.JobResult

// Pipeline schedules job batches over a worker pool with a shared
// compiled-module cache; results are identical for every worker count.
type Pipeline = pipeline.Pipeline

// Analyses lists the registered analysis names (the five paper
// instances plus the NaN/domain-error finder; extensions register
// alongside them).
func Analyses() []string { return analysis.Names() }

// LookupAnalysis resolves a registered analysis by name or alias.
func LookupAnalysis(name string) (analysis.Analysis, error) { return analysis.Lookup(name) }

// NewPipeline returns a pipeline with a fresh module cache. workers
// bounds concurrently running jobs (0 = all CPUs).
func NewPipeline(workers int) *Pipeline { return pipeline.New(workers) }

// AnalysisError is the typed spec/flag validation error shared by the
// CLIs and the fpserve /v1 problem+json error model.
type AnalysisError = analysis.SpecError

// Run executes one analysis job on a throwaway pipeline. Callers with
// many jobs should use RunBatch or a shared NewPipeline so repeated
// sources hit the module cache.
func Run(ctx context.Context, job Job) JobResult { return pipeline.New(1).RunJob(ctx, 0, job) }

// RunBatch fans the jobs over workers (0 = all CPUs) and returns
// results in job order — bit-identical for every worker count. The
// context cancels the batch at weak-distance-evaluation granularity.
func RunBatch(ctx context.Context, jobs []Job, workers int) []JobResult {
	return pipeline.New(workers).RunBatch(ctx, jobs)
}

// --- FPL compilation (internal/lang, internal/ir, internal/interp) ---

// CompileFPL compiles FPL source (a small C-like language; see the
// package documentation of repro/internal/lang) and returns the named
// function — empty for the first declared — as an automatically
// instrumented Program.
func CompileFPL(src, fn string) (*Program, error) {
	mod, err := ir.Compile(src)
	if err != nil {
		return nil, err
	}
	if fn == "" {
		fn = mod.Order[0]
	}
	return interp.New(mod).Program(fn)
}
