package weakdist_test

import (
	"context"
	"math"
	"testing"

	"repro/weakdist"
)

// TestPublicAPIEndToEnd drives every analysis through the facade only,
// the way a downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	// A native program via the public types.
	prog := &weakdist.Program{
		Name: "api",
		Dim:  1,
		Ops: []weakdist.OpInfo{
			{ID: 0, Label: "x*x"},
		},
		Branches: []weakdist.BranchInfo{
			{ID: 0, Label: "x*x <= 4", Op: weakdist.LE},
		},
		Run: func(ctx *weakdist.Ctx, x []float64) {
			s := ctx.Op(0, x[0]*x[0])
			ctx.Cmp(0, weakdist.LE, s, 4)
		},
	}
	bounds := []weakdist.Bound{{Lo: -100, Hi: 100}}

	// Boundary value analysis.
	rep := weakdist.BoundaryValues(context.Background(), prog, weakdist.BoundaryOptions{
		Seed: 1, Starts: 8, Bounds: bounds,
	})
	if rep.BoundaryValues == 0 {
		t.Error("no boundary values via public API")
	}

	// Path reachability.
	r := weakdist.ReachPath(context.Background(), prog, []weakdist.Decision{{Site: 0, Taken: false}},
		weakdist.ReachOptions{Seed: 2, Bounds: bounds})
	if !r.Found || r.X[0]*r.X[0] <= 4 {
		t.Errorf("reach: %v", r)
	}

	// Overflow detection.
	ov := weakdist.DetectOverflows(context.Background(), prog, weakdist.OverflowOptions{Seed: 3})
	if !ov.Found(0) {
		t.Errorf("overflow not found: %+v", ov)
	}

	// Coverage.
	cov := weakdist.Cover(context.Background(), prog, weakdist.CoverOptions{Seed: 4, Bounds: bounds})
	if cov.Ratio() != 1 {
		t.Errorf("coverage %v", cov.Ratio())
	}
}

func TestPublicSAT(t *testing.T) {
	f, vars, err := weakdist.ParseFormula("x < 1 && x + 1 >= 2")
	if err != nil {
		t.Fatal(err)
	}
	r := weakdist.SolveSAT(context.Background(), f, weakdist.SatOptions{
		Seed: 1, Bounds: []weakdist.Bound{{Lo: -4, Hi: 4}},
	})
	if r.Model == nil {
		t.Fatalf("no model: %+v", r)
	}
	if x := r.Model[vars["x"]]; !(x < 1 && x+1 >= 2) {
		t.Errorf("model %v does not satisfy", x)
	}
}

func TestPublicCompileFPL(t *testing.T) {
	p, err := weakdist.CompileFPL(`
func prog(x double) {
    if (x <= 1.0) { x = x + 1.0; }
    var y double = x * x;
    if (y <= 4.0) { x = x - 1.0; }
}`, "prog")
	if err != nil {
		t.Fatal(err)
	}
	w := p.WeakDistance(&weakdist.Boundary{})
	if got := w([]float64{1}); got != 0 {
		t.Errorf("W(1) = %v", got)
	}
	// Direct low-level solving through the theory layer.
	res := weakdist.Solve(context.Background(), weakdist.Problem{
		Name: "fpl", Dim: 1, W: w,
	}, weakdist.SolveOptions{Seed: 5, Bounds: []weakdist.Bound{{Lo: -50, Hi: 50}}})
	if !res.Found {
		t.Errorf("solve: %v", res)
	}
	if _, err := weakdist.CompileFPL("func f(x double) { y = 1.0; }", ""); err == nil {
		t.Error("compile error not surfaced")
	}
}

func TestPublicDistances(t *testing.T) {
	if weakdist.ULPDiff(1, 1) != 0 {
		t.Error("ULPDiff identity")
	}
	if weakdist.BranchDist(weakdist.LT, 0, 1) != 0 {
		t.Error("BranchDist holds case")
	}
	if weakdist.BranchDist(weakdist.GE, 0, 1) != 1 {
		t.Error("BranchDist violation case")
	}
	// Monitors are directly usable.
	m := weakdist.NewOverflow()
	m.Reset()
	if stop := m.FPOp(0, math.Inf(1)); !stop {
		t.Error("overflow monitor should request stop at Inf")
	}
}

func TestPublicBackends(t *testing.T) {
	obj := weakdist.Objective(func(x []float64) float64 {
		d := x[0] - 3
		if d < 0 {
			d = -d
		}
		return d
	})
	for _, m := range []weakdist.Minimizer{
		&weakdist.Basinhopping{},
		&weakdist.DifferentialEvolution{InitSpan: 10},
		&weakdist.Powell{},
		&weakdist.RandomSearch{},
		&weakdist.NelderMead{},
	} {
		r := m.Minimize(obj, 1, weakdist.Config{
			Seed: 1, MaxEvals: 5000,
			Bounds:     []weakdist.Bound{{Lo: -10, Hi: 10}},
			StopAtZero: true,
		})
		if r.F > 0.51 {
			t.Errorf("%s: best %v at %v", m.Name(), r.F, r.X)
		}
	}
}

func TestPublicRegistryPipeline(t *testing.T) {
	if len(weakdist.Analyses()) < 6 {
		t.Fatalf("registry lists %v", weakdist.Analyses())
	}
	if _, err := weakdist.LookupAnalysis("coverme"); err != nil {
		t.Fatalf("alias lookup: %v", err)
	}

	src := `func prog(x double) { if (x <= 1.0) { x = x + 1.0; } var y double = x * x; if (y <= 4.0) { x = x - 1.0; } }`
	bounds := []weakdist.Bound{{Lo: -100, Hi: 100}}
	jobs := []weakdist.Job{
		{Source: src, Spec: weakdist.AnalysisSpec{
			Analysis: "coverage", Seed: 2, Evals: 300, Stall: 2, Workers: 1, Bounds: bounds}},
		{Source: src, Spec: weakdist.AnalysisSpec{
			Analysis: "nan", Seed: 5, Evals: 500, Rounds: 4, Workers: 1}},
		{Spec: weakdist.AnalysisSpec{
			Analysis: "xsat", Seed: 1, Starts: 2, Evals: 400, Workers: 1,
			Bounds: []weakdist.Bound{{Lo: -4, Hi: 4}}, Formula: "x < 1 && x + 1 >= 2"}},
	}

	one := weakdist.Run(context.Background(), jobs[0])
	if one.Error != "" || one.Report == nil || one.Program != "prog" {
		t.Fatalf("Run: %+v", one)
	}

	serial := weakdist.RunBatch(context.Background(), jobs, 1)
	parallel := weakdist.RunBatch(context.Background(), jobs, 4)
	for i := range jobs {
		if serial[i].Error != "" {
			t.Errorf("job %d: %s", i, serial[i].Error)
		}
		if serial[i].Summary != parallel[i].Summary || serial[i].Failed != parallel[i].Failed {
			t.Errorf("job %d diverged across worker counts: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
	if serial[0].Summary != one.Summary {
		t.Errorf("Run vs RunBatch: %q vs %q", one.Summary, serial[0].Summary)
	}
}
