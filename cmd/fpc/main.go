// Command fpc is the FPL compiler driver: parse, type-check, lower to
// IR, inspect instrumentation sites, and run programs concretely.
//
// Usage:
//
//	fpc -dump-ir prog.fpl
//	fpc -sites prog.fpl
//	fpc -run prog -args 1.5,2.5 prog.fpl
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
)

func main() {
	var (
		dumpIR = flag.Bool("dump-ir", false, "print the lowered IR")
		sites  = flag.Bool("sites", false, "print instrumentation site tables")
		run    = flag.String("run", "", "execute the named function")
		args   = flag.String("args", "", "comma-separated float inputs for -run")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: fpc [flags] file.fpl"))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := ir.Compile(string(src))
	if err != nil {
		fatal(err)
	}

	did := false
	if *dumpIR {
		fmt.Print(mod.String())
		did = true
	}
	if *sites {
		fmt.Printf("floating-point operation sites (%d):\n", len(mod.OpSites))
		for _, op := range mod.OpSites {
			fmt.Printf("  op#%-4d %s\n", op.ID, op.Label)
		}
		fmt.Printf("branch sites (%d):\n", len(mod.BranchSites))
		for _, b := range mod.BranchSites {
			fmt.Printf("  br#%-4d %s\n", b.ID, b.Label)
		}
		did = true
	}
	if *run != "" {
		var in []float64
		if *args != "" {
			for _, part := range strings.Split(*args, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
				if err != nil {
					fatal(fmt.Errorf("bad -args: %v", err))
				}
				in = append(in, v)
			}
		}
		it := interp.New(mod)
		out, err := it.Run(*run, in)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s(%v) = %.17g\n", *run, in, out)
		for _, f := range it.Failures {
			fmt.Println("assertion failure:", f)
		}
		did = true
	}
	if !did {
		// Default: report a successful compile with a summary.
		fmt.Printf("%s: %d function(s), %d FP operation sites, %d branch sites\n",
			flag.Arg(0), len(mod.Order), len(mod.OpSites), len(mod.BranchSites))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpc:", err)
	os.Exit(1)
}
