// Command fpanalyze is the unified front end of the analysis registry:
// every registered analysis — boundary values, coverage, overflow,
// reachability, satisfiability, NaN/domain errors, and whatever is
// registered next — is reachable by name through one tool, in single
// or batch mode.
//
// Usage:
//
//	fpanalyze list
//	fpanalyze <analysis> [flags] [prog.fpl]     # same flags as the per-analysis tools
//	fpanalyze <analysis> -json ...              # JSON result instead of text
//	fpanalyze batch [-jobs N] jobs.json         # run a JSON job list, NDJSON out
//
// Examples:
//
//	fpanalyze bva -builtin fig2 -bounds -100:100
//	fpanalyze nan -func prog -evals 2000 prog.fpl
//	fpanalyze batch - <<'EOF'
//	[{"builtin": "fig2", "spec": {"analysis": "coverage", "seed": 1}}]
//	EOF
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/pipeline"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	sub, args := os.Args[1], os.Args[2:]
	switch sub {
	case "list", "-list", "--list":
		list(os.Stdout)
	case "batch":
		os.Exit(batch(args))
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
	default:
		os.Exit(run(sub, args))
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: fpanalyze list | batch [-jobs N] <jobs.json|-> | <analysis> [flags] [prog.fpl]")
	fmt.Fprintln(w, "registered analyses:", analysis.Names())
}

func list(w io.Writer) {
	for _, a := range analysis.All() {
		fmt.Fprintf(w, "%-10s %s\n", a.Name(), a.Describe())
	}
}

// run executes one analysis with the shared registry-driven flags. The
// -json flag swaps the legacy text rendering for the pipeline's JSON
// result shape.
func run(name string, args []string) int {
	a, err := analysis.Lookup(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze:", err)
		usage(os.Stderr)
		return 1
	}
	asJSON := false
	filtered := args[:0:0]
	for _, arg := range args {
		if arg == "-json" || arg == "--json" {
			asJSON = true
			continue
		}
		filtered = append(filtered, arg)
	}
	if !asJSON {
		return cli.RunTool("fpanalyze", a.Name(), filtered, os.Stdout, os.Stderr)
	}

	fs := flag.NewFlagSet("fpanalyze "+a.Name(), flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	sf := cli.NewSpecFlags(fs, "fpanalyze", a)
	if err := fs.Parse(filtered); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	in, spec, err := sf.Resolve(fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze:", err)
		return 1
	}
	res := pipeline.JobResult{Analysis: a.Name()}
	if in.Program != nil {
		res.Program = in.Program.Name
	}
	rep, err := a.Run(in, spec)
	if err != nil {
		res.Error = err.Error()
	} else {
		res.Report = rep
		res.Summary = rep.Summary()
		res.Failed = rep.Failed()
	}
	os.Stdout.Write(pipeline.MarshalResult(res))
	fmt.Println()
	switch {
	case res.Error != "":
		return 1
	case res.Failed:
		return 2
	}
	return 0
}

// batch runs a JSON job list through the pipeline, streaming NDJSON
// results in job order.
func batch(args []string) int {
	fs := flag.NewFlagSet("fpanalyze batch", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jobsN := fs.Int("jobs", 0, "concurrent jobs (0 = all CPUs); never changes results")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "fpanalyze batch: want exactly one jobs file (or - for stdin)")
		return 2
	}
	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze batch:", err)
		return 1
	}
	var jobs []pipeline.Job
	if err := json.Unmarshal(data, &jobs); err != nil {
		fmt.Fprintln(os.Stderr, "fpanalyze batch: bad job list:", err)
		return 1
	}

	code := 0
	pl := pipeline.New(*jobsN)
	pl.Stream(jobs, func(r pipeline.JobResult) {
		os.Stdout.Write(pipeline.MarshalResult(r))
		fmt.Println()
		if r.Error != "" {
			code = 1
		}
	})
	return code
}
