// Command fpanalyze is the unified front end of the analysis registry:
// every registered analysis — boundary values, coverage, overflow,
// reachability, satisfiability, NaN/domain errors, and whatever is
// registered next — is reachable by name through one tool, in single
// or batch mode.
//
// Usage:
//
//	fpanalyze list
//	fpanalyze <analysis> [flags] [prog.fpl]     # same flags as the per-analysis tools
//	fpanalyze <analysis> -json ...              # JSON result instead of text
//	fpanalyze batch [-jobs N] jobs.json         # run a JSON job list, NDJSON out
//
// Examples:
//
//	fpanalyze bva -builtin fig2 -bounds -100:100
//	fpanalyze nan -func prog -evals 2000 prog.fpl
//	fpanalyze batch - <<'EOF'
//	[{"builtin": "fig2", "spec": {"analysis": "coverage", "seed": 1}}]
//	EOF
//
// The implementation lives in internal/pipeline (FPAnalyzeMain), where
// the JSON and NDJSON output surfaces are locked by golden tests.
package main

import (
	"os"

	"repro/internal/pipeline"
)

func main() {
	os.Exit(pipeline.FPAnalyzeMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
