// Command fpbva runs boundary value analysis (paper §4.2, §6.2) on an
// FPL source file or a built-in benchmark program. It is a thin wrapper
// over the "bva" entry of the analysis registry; flags, execution, and
// report formatting all come from the shared registry-driven CLI.
//
// Usage:
//
//	fpbva -builtin sin
//	fpbva -builtin fig2 -bounds -100:100
//	fpbva -func prog -starts 16 prog.fpl
package main

import "repro/internal/cli"

func main() {
	cli.Main("fpbva", "bva")
}
