// Command fpbva runs boundary value analysis (paper §4.2, §6.2) on an
// FPL source file or a built-in benchmark program.
//
// Usage:
//
//	fpbva -builtin sin
//	fpbva -builtin fig2 -bounds -100:100
//	fpbva prog.fpl -func prog -starts 16
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/cli"
)

func main() {
	var (
		builtin = flag.String("builtin", "", "built-in program name")
		fn      = flag.String("func", "", "function to analyze (FPL files)")
		seed    = flag.Int64("seed", 1, "random seed")
		starts  = flag.Int("starts", 32, "minimization restarts")
		evals   = flag.Int("evals", 4000, "weak-distance evaluations per restart")
		bounds  = flag.String("bounds", "", "search bounds lo:hi[,lo:hi...]")
		ulp     = flag.Bool("ulp", false, "use ULP boundary distances")
		backend = flag.String("backend", "basinhopping", "MO backend")
		workers = flag.Int("workers", 0, "parallel restarts (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	file := ""
	if flag.NArg() > 0 {
		file = flag.Arg(0)
	}
	p, err := cli.Resolve(*builtin, file, *fn)
	if err != nil {
		fatal(err)
	}
	bs, err := cli.ParseBounds(*bounds, p.Dim)
	if err != nil {
		fatal(err)
	}
	be, err := cli.Backend(*backend)
	if err != nil {
		fatal(err)
	}

	rep := analysis.BoundaryValues(p, analysis.BoundaryOptions{
		Seed:          *seed,
		Starts:        *starts,
		EvalsPerStart: *evals,
		Backend:       be,
		Bounds:        bs,
		ULP:           *ulp,
		Workers:       *workers,
	})

	fmt.Printf("program %s: %d samples, %d boundary values, %d conditions triggered\n",
		p.Name, rep.Samples, rep.BoundaryValues, len(rep.Conditions))
	if rep.SoundnessViolations > 0 {
		fmt.Printf("WARNING: %d soundness violations (defective weak distance?)\n",
			rep.SoundnessViolations)
	}
	for _, c := range rep.Conditions {
		sign := "+"
		if c.Key.Negative {
			sign = "-"
		}
		fmt.Printf("  [%s] site %d (%s): hits=%d min=%.17g max=%.17g\n",
			sign, c.Key.Site, c.Label, c.Hits, c.Min, c.Max)
		for i, x := range c.Examples {
			if i >= 3 {
				break
			}
			fmt.Printf("      example: %v\n", x)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpbva:", err)
	os.Exit(1)
}
