// Command fpfuzz is the generative fuzzing front end: it drives
// random, guaranteed-well-typed FPL programs (internal/fplgen) through
// the three differential-oracle layers of internal/fuzz — engine
// differential, backend differential, and finding replay — with the
// analysis work batched through the internal/pipeline worker pool.
//
// Usage:
//
//	fpfuzz generate -n N [-seed S] [-dims D] [-o DIR]   # emit corpus programs
//	fpfuzz run [-n N] [-seed S] [flags]                 # run a campaign; exit 1 on violations
//	fpfuzz shrink [-inject-div] [flags] [prog.fpl]      # minimize a failing program
//
// `run` is the CI gate: `fpfuzz run -n 500 -seed 1` must complete with
// zero oracle violations across both engines, every registered backend,
// and every registered analysis.
//
// `shrink` minimizes a failing program to a committable reproducer. By
// default the failure predicate is the engine-differential oracle on
// the given program; -inject-div installs the synthetic
// division-divergence fault (the VM result is perturbed whenever the
// source contains a division) and, when no file is given, hunts the
// generated stream for a failing program first — the self-test
// demonstrating that the oracle and shrinker actually catch engine
// divergences.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/fuzz"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	sub, args := os.Args[1], os.Args[2:]
	switch sub {
	case "generate":
		os.Exit(generate(args))
	case "run":
		os.Exit(run(args))
	case "crash":
		os.Exit(crash(args))
	case "cluster":
		os.Exit(clusterCmd(args))
	case "load":
		os.Exit(load(args))
	case "shrink":
		os.Exit(shrink(args))
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "fpfuzz: unknown subcommand %q\n", sub)
		usage(os.Stderr)
		os.Exit(2)
	}
}

func usage(w *os.File) {
	fmt.Fprintln(w, "usage: fpfuzz generate|run|crash|cluster|load|shrink [flags]")
	fmt.Fprintln(w, "  generate -n N [-seed S] [-dims D] [-o DIR]  emit corpus programs")
	fmt.Fprintln(w, "  run [-n N] [-seed S] [-evals E] [-workers W] [-backends a,b] [-analyses x,y]")
	fmt.Fprintln(w, "      [-layers engine,backend,replay] [-lanes W1,W2] [-recheck] [-max-violations M] [-v]")
	fmt.Fprintln(w, "  crash [-rounds R] [-seed S] [-programs P] [-panic-jobs N] [-fault-prob F] [-selftest] [-v]")
	fmt.Fprintln(w, "  cluster [-workers W] [-seed S] [-programs P] [-evals E] [-selftest] [-v]")
	fmt.Fprintln(w, "  load [-target URL] [-workers W] [-programs P] [-batches B] [-c N] [-seed S] [-evals E] [-stats] [-v]")
	fmt.Fprintln(w, "  shrink [-inject-div] [-seed S] [-index I] [-lanes W1,W2] [prog.fpl]")
}

func generate(args []string) int {
	fs := flag.NewFlagSet("fpfuzz generate", flag.ContinueOnError)
	n := fs.Int("n", 10, "programs to generate")
	seed := fs.Int64("seed", 1, "campaign seed")
	dims := fs.Int("dims", 3, "cycle entry arity over 1..dims")
	out := fs.String("o", "", "write programs to DIR as NNNN.fpl (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return flagExit(err)
	}
	for i := 0; i < *n; i++ {
		src, _, _ := fuzz.GenerateProgram(*seed, i, *dims)
		if *out == "" {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("// program %d (seed %d)\n%s", i, *seed, src)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "fpfuzz generate:", err)
			return 1
		}
		path := filepath.Join(*out, fmt.Sprintf("%04d.fpl", i))
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fpfuzz generate:", err)
			return 1
		}
	}
	return 0
}

func run(args []string) int {
	fs := flag.NewFlagSet("fpfuzz run", flag.ContinueOnError)
	n := fs.Int("n", 100, "programs to fuzz")
	seed := fs.Int64("seed", 1, "campaign seed")
	dims := fs.Int("dims", 3, "cycle entry arity over 1..dims")
	evals := fs.Int("evals", 200, "weak-distance evaluations per start/round")
	workers := fs.Int("workers", 0, "pipeline workers (0 = all CPUs); never changes results")
	backends := fs.String("backends", "", "comma-separated backend subset (default: all)")
	analyses := fs.String("analyses", "", "comma-separated analysis subset (default: all)")
	layers := fs.String("layers", "engine,backend,replay", "oracle layers to run")
	lanes := fs.String("lanes", "", "comma-separated batch-engine lane widths (default: random per program; 0 disables)")
	recheck := fs.Bool("recheck", false, "re-run the analysis batch serially and require byte-identical results")
	maxV := fs.Int("max-violations", 20, "stop after this many violations")
	verbose := fs.Bool("v", false, "progress output")
	if err := fs.Parse(args); err != nil {
		return flagExit(err)
	}

	selected, err := parseLayers(*layers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpfuzz run:", err)
		return 2
	}
	widths, err := parseLanes(*lanes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpfuzz run:", err)
		return 2
	}
	o := fuzz.Options{
		N:             *n,
		Seed:          *seed,
		MaxDims:       *dims,
		Evals:         *evals,
		Workers:       *workers,
		MaxViolations: *maxV,
		Recheck:       *recheck,
		Backends:      splitList(*backends),
		Analyses:      splitList(*analyses),
		SkipEngines:   !selected["engine"],
		SkipBackends:  !selected["backend"],
		SkipReplay:    !selected["replay"],
		Engine:        fuzz.EngineCheck{LaneWidths: widths},
	}
	if *verbose {
		o.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "fpfuzz: %d/%d programs through engine+backend layers\n", done, total)
			}
		}
	}
	res := fuzz.Run(o)
	fmt.Println("fpfuzz:", res.Summary())
	if !res.Ok() {
		for i, v := range res.Violations {
			if i >= 5 {
				fmt.Fprintf(os.Stderr, "... and %d more violations\n", len(res.Violations)-5)
				break
			}
			fmt.Fprintln(os.Stderr, "VIOLATION", v.String())
		}
		return 1
	}
	return 0
}

// crash runs the crash-recovery campaign: a golden durable run, then
// repeated journal truncations at random offsets with recovery, each
// required to reproduce the golden results exactly. -selftest tampers
// a golden expectation and requires the oracle to notice — the proof
// that a green campaign verified something.
func crash(args []string) int {
	fs := flag.NewFlagSet("fpfuzz crash", flag.ContinueOnError)
	rounds := fs.Int("rounds", 6, "crash offsets to exercise")
	seed := fs.Int64("seed", 1, "campaign seed")
	programs := fs.Int("programs", 3, "generated programs (one job batch each)")
	dims := fs.Int("dims", 3, "cycle entry arity over 1..dims")
	evals := fs.Int("evals", 60, "weak-distance evaluations per analysis")
	workers := fs.Int("workers", 0, "pipeline workers (0 = all CPUs); never changes results")
	analyses := fs.String("analyses", "", "comma-separated analysis subset (default: coverage,overflow,xsat)")
	panicJobs := fs.Int("panic-jobs", 0, "inject a panic into ~1/N of jobs, golden and recovery alike (0 disables)")
	faultProb := fs.Float64("fault-prob", 0, "injected fsync-failure probability during recovery (0 disables)")
	selftest := fs.Bool("selftest", false, "tamper a golden expectation; exit 0 only if the oracle catches it")
	dir := fs.String("dir", "", "scratch directory for journals (default: temp dir)")
	verbose := fs.Bool("v", false, "progress output")
	if err := fs.Parse(args); err != nil {
		return flagExit(err)
	}
	o := fuzz.CrashOptions{
		Rounds:    *rounds,
		Seed:      *seed,
		Programs:  *programs,
		MaxDims:   *dims,
		Evals:     *evals,
		Workers:   *workers,
		Analyses:  splitList(*analyses),
		PanicJobs: *panicJobs,
		FaultProb: *faultProb,
		Tamper:    *selftest,
		Dir:       *dir,
	}
	if *verbose {
		o.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "fpfuzz crash: %d/%d rounds\n", done, total)
		}
	}
	res := fuzz.RunCrash(o)
	fmt.Println("fpfuzz crash:", res.Summary())
	if *selftest {
		if res.Ok() {
			fmt.Fprintln(os.Stderr, "fpfuzz crash: selftest FAILED: the tampered expectation went unnoticed")
			return 1
		}
		fmt.Fprintln(os.Stderr, "fpfuzz crash: selftest ok: tampering detected")
		return 0
	}
	if !res.Ok() {
		for i, v := range res.Violations {
			if i >= 5 {
				fmt.Fprintf(os.Stderr, "... and %d more violations\n", len(res.Violations)-5)
				break
			}
			fmt.Fprintln(os.Stderr, "VIOLATION", v.String())
		}
		return 1
	}
	return 0
}

// clusterCmd runs the dead-worker campaign: a golden single-node run,
// then the same workload through a coordinator over an in-process
// fleet with the busiest worker killed mid-batch; every job must
// complete on the survivors with byte-identical results. -selftest
// tampers a golden expectation and requires the oracle to notice.
func clusterCmd(args []string) int {
	fs := flag.NewFlagSet("fpfuzz cluster", flag.ContinueOnError)
	workers := fs.Int("workers", 2, "fleet size (one worker is killed mid-batch)")
	seed := fs.Int64("seed", 1, "campaign seed")
	programs := fs.Int("programs", 4, "generated programs (one job batch each)")
	dims := fs.Int("dims", 3, "cycle entry arity over 1..dims")
	evals := fs.Int("evals", 120, "weak-distance evaluations per analysis")
	analyses := fs.String("analyses", "", "comma-separated analysis subset (default: coverage,overflow,xsat)")
	selftest := fs.Bool("selftest", false, "tamper a golden expectation; exit 0 only if the oracle catches it")
	verbose := fs.Bool("v", false, "coordinator log output")
	if err := fs.Parse(args); err != nil {
		return flagExit(err)
	}
	o := fuzz.ClusterOptions{
		Workers:  *workers,
		Seed:     *seed,
		Programs: *programs,
		MaxDims:  *dims,
		Evals:    *evals,
		Analyses: splitList(*analyses),
		Tamper:   *selftest,
	}
	if *verbose {
		o.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res := fuzz.RunCluster(o)
	fmt.Println("fpfuzz cluster:", res.Summary())
	if *selftest {
		if res.Ok() {
			fmt.Fprintln(os.Stderr, "fpfuzz cluster: selftest FAILED: the tampered expectation went unnoticed")
			return 1
		}
		fmt.Fprintln(os.Stderr, "fpfuzz cluster: selftest ok: tampering detected")
		return 0
	}
	if !res.Ok() {
		for i, v := range res.Violations {
			if i >= 5 {
				fmt.Fprintf(os.Stderr, "... and %d more violations\n", len(res.Violations)-5)
				break
			}
			fmt.Fprintln(os.Stderr, "VIOLATION", v.String())
		}
		return 1
	}
	return 0
}

// load replays an fplgen workload against a coordinator — a running
// one via -target, or an in-process fleet — and reports end-to-end
// jobs/s plus the coordinator's routing attribution.
func load(args []string) int {
	fs := flag.NewFlagSet("fpfuzz load", flag.ContinueOnError)
	target := fs.String("target", "", "base URL of a running coordinator (default: spin up an in-process fleet)")
	workers := fs.Int("workers", 2, "in-process fleet size when no -target is given")
	programs := fs.Int("programs", 8, "generated programs registered up front")
	batches := fs.Int("batches", 0, "job batches replayed, cycling over the programs (0 = 2 per program)")
	conc := fs.Int("c", 4, "concurrent submitters")
	seed := fs.Int64("seed", 1, "workload seed")
	dims := fs.Int("dims", 3, "cycle entry arity over 1..dims")
	evals := fs.Int("evals", 60, "weak-distance evaluations per analysis")
	analyses := fs.String("analyses", "", "comma-separated analysis subset (default: all applicable)")
	stats := fs.Bool("stats", false, "print the target's /stats document after the run")
	verbose := fs.Bool("v", false, "coordinator log output")
	if err := fs.Parse(args); err != nil {
		return flagExit(err)
	}
	o := fuzz.LoadOptions{
		Target:      *target,
		Workers:     *workers,
		Programs:    *programs,
		Batches:     *batches,
		Concurrency: *conc,
		Seed:        *seed,
		MaxDims:     *dims,
		Evals:       *evals,
		Analyses:    splitList(*analyses),
	}
	if *verbose {
		o.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res := fuzz.RunLoad(o)
	fmt.Println("fpfuzz load:", res.Summary())
	if *stats && res.Stats != nil {
		fmt.Println(string(res.Stats))
		for addr, ws := range res.WorkerStats {
			fmt.Printf("%s %s\n", addr, ws)
		}
	}
	if !res.Ok() {
		for i, v := range res.Violations {
			if i >= 5 {
				fmt.Fprintf(os.Stderr, "... and %d more violations\n", len(res.Violations)-5)
				break
			}
			fmt.Fprintln(os.Stderr, "VIOLATION", v.String())
		}
		return 1
	}
	return 0
}

func shrink(args []string) int {
	fs := flag.NewFlagSet("fpfuzz shrink", flag.ContinueOnError)
	inject := fs.Bool("inject-div", false, "install the synthetic division-divergence VM fault (self-test)")
	seed := fs.Int64("seed", 1, "campaign seed for -index / hunting")
	index := fs.Int("index", -1, "shrink generated program INDEX instead of a file")
	dims := fs.Int("dims", 3, "cycle entry arity over 1..dims")
	hunt := fs.Int("hunt", 200, "programs to scan when hunting for a failure")
	lanes := fs.String("lanes", "", "comma-separated batch-engine lane widths (default 2,5,8; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return flagExit(err)
	}

	widths, err := parseLanes(*lanes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpfuzz shrink:", err)
		return 2
	}
	check := fuzz.EngineCheck{LaneWidths: widths}
	if *inject {
		check.TamperVM = func(src string, r float64) float64 {
			if !strings.Contains(src, "/") {
				return r
			}
			if math.IsNaN(r) {
				return 0
			}
			return math.Float64frombits(math.Float64bits(r) ^ 1)
		}
	}

	var src string
	var inputs [][]float64
	switch {
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpfuzz shrink:", err)
			return 1
		}
		src = string(data)
		inputs = fuzz.InputsFor(src, "f", *seed)
		if inputs == nil {
			fmt.Fprintf(os.Stderr, "fpfuzz shrink: %s does not compile or has no function f\n", fs.Arg(0))
			return 1
		}
	case *index >= 0:
		src, _, inputs = fuzz.GenerateProgram(*seed, *index, *dims)
	default:
		// Hunt the generated stream for the first failing program.
		for i := 0; i < *hunt; i++ {
			s, _, in := fuzz.GenerateProgram(*seed, i, *dims)
			if len(fuzz.CheckEngines(s, "f", in, check)) > 0 {
				fmt.Fprintf(os.Stderr, "fpfuzz shrink: program %d fails the engine oracle; shrinking\n", i)
				src, inputs = s, in
				break
			}
		}
		if src == "" {
			fmt.Fprintf(os.Stderr, "fpfuzz shrink: no failing program in the first %d generated (is a fault injected or present?)\n", *hunt)
			return 2
		}
	}

	fails := func(cand string) bool {
		return len(fuzz.CheckEngines(cand, "f", inputs, check)) > 0
	}
	if !fails(src) {
		fmt.Fprintln(os.Stderr, "fpfuzz shrink: the program does not fail the engine oracle; nothing to shrink")
		return 2
	}
	reduced, err := fuzz.Shrink(src, fails)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpfuzz shrink:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "fpfuzz shrink: %d statements -> %d\n",
		fuzz.CountStmts(src), fuzz.CountStmts(reduced))
	fmt.Print(reduced)
	return 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseLanes parses the -lanes spec into batch-engine lane widths.
// "" keeps the library default (nil: a campaign draws random widths per
// program); "0" yields a non-nil width-free list, disabling the batch
// party.
func parseLanes(spec string) ([]int, error) {
	var widths []int
	for _, part := range splitList(spec) {
		w, err := strconv.Atoi(part)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -lanes width %q", part)
		}
		widths = append(widths, w)
	}
	return widths, nil
}

// parseLayers validates the -layers spec: every token must name a real
// oracle layer and at least one must be selected, so a typo can never
// produce a green run that verified nothing.
func parseLayers(spec string) (map[string]bool, error) {
	selected := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		switch layer := strings.TrimSpace(part); layer {
		case "engine", "backend", "replay":
			selected[layer] = true
		case "":
		default:
			return nil, fmt.Errorf("unknown oracle layer %q (want engine, backend, replay)", layer)
		}
	}
	if len(selected) == 0 {
		return nil, errors.New("-layers selects no oracle layer")
	}
	return selected, nil
}

func flagExit(err error) int {
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	return 2
}
