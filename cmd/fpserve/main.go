// Command fpserve is the batched analysis service: an HTTP front end
// over the analysis registry and job pipeline.
//
// The versioned /v1 API is resource-oriented and asynchronous: register
// FPL programs once under their content address, submit job batches
// referencing them (or inline source), poll or stream results, and
// cancel jobs mid-minimization — cancellation reaches the MO backends
// within one objective evaluation. Errors are application/problem+json
// with field-level spec-validation details. The legacy synchronous
// /analyze endpoint is kept, wire-compatible, as a thin wrapper over
// the same job engine. See docs/api.md for the endpoint reference.
//
// Usage:
//
//	fpserve -addr :8035 -jobs 8
//
//	curl -s -X POST http://localhost:8035/v1/programs -d '{
//	    "source": "func prog(x double) { if (x < 1.0) { x = x * x; } }"}'
//	curl -s -X POST http://localhost:8035/v1/jobs -d '{
//	    "program": "sha256:<id from above>",
//	    "specs": [{"analysis": "coverage", "seed": 1},
//	              {"analysis": "overflow", "seed": 1}]}'
//	curl -s http://localhost:8035/v1/jobs/job-1
//	curl -s -N http://localhost:8035/v1/jobs/job-1/events
//	curl -s -X DELETE http://localhost:8035/v1/jobs/job-1
//
// With -data-dir the job table is durable: every accepted job is
// journaled before its 202, and on boot the journal is replayed —
// finished jobs come back with their results, jobs a crash caught
// running are re-executed from their last durable result (results are
// content-deterministic, so the recovered output is identical to an
// uninterrupted run's).
//
// With -coordinator the node executes nothing locally: it fans each
// job batch over a fleet of fpserve workers (-workers host:port,... or
// -fleet file), routing jobs by the consistent hash of their program's
// content address so worker module caches stay hot. Workers that stop
// answering health probes leave the ring and their unfinished jobs are
// requeued onto survivors; results are byte-identical to a single-node
// run either way. See docs/api.md ("Coordinator mode").
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops
// accepting jobs, cancels in-flight job contexts (which land inside the
// minimizers within one objective evaluation), drains connections up to
// -drain, journals a clean-shutdown marker, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof side listener (DefaultServeMux only)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/journal"
	"repro/internal/pipeline"
)

func main() {
	var (
		addr  = flag.String("addr", ":8035", "listen address")
		jobs  = flag.Int("jobs", 0, "concurrent analysis jobs across all requests (0 = all CPUs)")
		ttl   = flag.Duration("job-ttl", pipeline.DefaultJobTTL, "retention of finished jobs")
		table = flag.Int("job-table", pipeline.DefaultMaxTrackedJobs, "max tracked jobs")
		drain = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")

		dataDir   = flag.String("data-dir", "", "journal directory for a durable job table (empty = volatile)")
		syncEvery = flag.Duration("sync-every", journal.DefaultSyncEvery, "journal group-commit interval")
		compact   = flag.Int64("compact-bytes", journal.DefaultCompactBytes, "journal size that triggers snapshot+compact")
		inflight  = flag.Int("max-inflight", 0, "load-shedding watermark on accepted-but-unfinished jobs (0 = unlimited)")
		backlog   = flag.Int64("journal-backlog", pipeline.DefaultStoreBacklog, "load-shedding watermark on unsynced journal bytes")
		retry     = flag.Duration("retry-after", pipeline.DefaultRetryAfter, "Retry-After hint on 429 load-shedding refusals")
		heartbeat = flag.Duration("heartbeat", 15*time.Second, "SSE heartbeat interval on /v1 job event streams (0 disables)")
		pprofAddr = flag.String("pprof", "", "expose net/http/pprof on this side listener, e.g. localhost:6060 (empty = disabled)")

		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator: fan job batches over -workers instead of executing locally")
		workers     = flag.String("workers", "", "comma-separated fpserve workers (host:port,...) for -coordinator")
		fleet       = flag.String("fleet", "", "file listing one fpserve worker per line (comments with #) for -coordinator")
		probeEvery  = flag.Duration("probe-every", cluster.DefaultProbeEvery, "worker health-probe interval in -coordinator mode")
		deadAfter   = flag.Int("dead-after", cluster.DefaultDeadAfter, "consecutive failed probes before a worker leaves the ring")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "fpserve: unexpected arguments:", flag.Args())
		os.Exit(1)
	}

	if *pprofAddr != "" {
		// Profiling stays off the public address: the pprof import
		// registers on http.DefaultServeMux, which only this side
		// listener serves — the main server below uses its own mux.
		go func() {
			log.Printf("fpserve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("fpserve: pprof listener: %v", err)
			}
		}()
	}

	srv := pipeline.NewServer(*jobs)
	srv.Engine.TTL = *ttl
	srv.Engine.MaxTrackedJobs = *table
	srv.Engine.MaxInFlight = *inflight
	srv.Engine.RetryAfter = *retry
	srv.Engine.Logf = log.Printf
	srv.Heartbeat = *heartbeat
	srv.Logf = log.Printf
	srv.PL.PanicHook = func(idx int, j pipeline.Job, v any, stack []byte) {
		log.Printf("fpserve: job panic (job index %d, analysis %q): %v\n%s", idx, j.Spec.Analysis, v, stack)
	}

	// Coordinator mode installs the fleet Runner BEFORE journal
	// recovery: jobs a crash caught running are then re-executed across
	// the fleet, not on this node's local pipeline.
	var coord *cluster.Coordinator
	if *coordinator {
		members, err := fleetMembers(*workers, *fleet)
		if err != nil {
			log.Fatalf("fpserve: %v", err)
		}
		coord, err = cluster.New(cluster.Config{
			Workers:    members,
			ProbeEvery: *probeEvery,
			DeadAfter:  *deadAfter,
			Seed:       time.Now().UnixNano(),
			Logf:       log.Printf,
		})
		if err != nil {
			log.Fatalf("fpserve: %v", err)
		}
		coord.Start()
		srv.Engine.Runner = coord.Run
		srv.Engine.AdmitHook = coord.Admit
		srv.ClusterStats = coord.StatsDoc
		log.Printf("fpserve: coordinating %d workers: %s", len(members), strings.Join(members, ", "))
	} else if *workers != "" || *fleet != "" {
		log.Fatalf("fpserve: -workers/-fleet require -coordinator")
	}

	var store *pipeline.DurableStore
	if *dataDir != "" {
		var err error
		store, err = pipeline.OpenStore(*dataDir, journal.Options{
			SyncEvery:    *syncEvery,
			CompactBytes: *compact,
		})
		if err != nil {
			log.Fatalf("fpserve: opening journal under %s: %v", *dataDir, err)
		}
		srv.Engine.Store = store
		srv.Engine.MaxStoreBacklog = *backlog
		recovered := store.Recovered()
		switch {
		case store.BootRecords() == 0:
			log.Printf("fpserve: journal %s: initialized", *dataDir)
		case store.CleanShutdown():
			log.Printf("fpserve: journal %s: clean shutdown, %d jobs restored", *dataDir, len(recovered))
		default:
			log.Printf("fpserve: journal %s: unclean shutdown (%d torn bytes truncated), %d jobs to recover",
				*dataDir, store.TruncatedBytes(), len(recovered))
		}
		restored, requeued := srv.Engine.Recover(recovered)
		if restored > 0 {
			log.Printf("fpserve: recovered %d jobs (%d requeued for re-execution)", restored, requeued)
		}
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow-header connections must not pin goroutines forever on a
		// long-running service. (No WriteTimeout: analyze responses and
		// SSE streams run for as long as their jobs do.)
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("fpserve listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("fpserve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("fpserve: shutting down (drain %v)", *drain)

	sd, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting jobs and cancel in-flight job contexts first: the
	// handlers streaming those jobs finish promptly, so the HTTP drain
	// below converges instead of waiting on hour-long minimizations. A
	// complete drain also journals the clean-shutdown marker, so the
	// next boot knows it need not requeue anything.
	if err := srv.Shutdown(sd); err != nil {
		log.Printf("fpserve: job engine drain: %v", err)
	}
	if err := hs.Shutdown(sd); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("fpserve: http drain: %v", err)
	}
	if coord != nil {
		coord.Close()
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("fpserve: closing journal: %v", err)
		}
	}
	log.Printf("fpserve: shutdown complete")
}

// fleetMembers merges the -workers list and the -fleet file into the
// worker set for coordinator mode.
func fleetMembers(workers, fleetFile string) ([]string, error) {
	var members []string
	for _, w := range strings.Split(workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			members = append(members, w)
		}
	}
	if fleetFile != "" {
		data, err := os.ReadFile(fleetFile)
		if err != nil {
			return nil, fmt.Errorf("reading fleet file: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			if line = strings.TrimSpace(line); line != "" {
				members = append(members, line)
			}
		}
	}
	if len(members) == 0 {
		return nil, errors.New("-coordinator needs workers (-workers host:port,... or -fleet file)")
	}
	return members, nil
}
