// Command fpserve is the batched analysis service: an HTTP front end
// over the analysis registry and job pipeline. Clients POST FPL source
// (or a built-in name) plus a list of analysis specs and receive
// streamed JSON results; concurrent requests share one compiled-module
// cache, so resubmitting the same source never recompiles it.
//
// Usage:
//
//	fpserve -addr :8035 -jobs 8
//
//	curl -s http://localhost:8035/analyses
//	curl -s -X POST http://localhost:8035/analyze -d '{
//	    "source": "func prog(x double) { if (x < 1.0) { x = x * x; } }",
//	    "specs": [
//	        {"analysis": "coverage", "seed": 1, "bounds": [{"lo": -100, "hi": 100}]},
//	        {"analysis": "overflow", "seed": 1}
//	    ]}'
//
// Endpoints: POST /analyze (NDJSON results in job order), GET
// /analyses, GET /stats, GET /healthz.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/pipeline"
)

func main() {
	var (
		addr = flag.String("addr", ":8035", "listen address")
		jobs = flag.Int("jobs", 0, "concurrent analysis jobs across all requests (0 = all CPUs)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "fpserve: unexpected arguments:", flag.Args())
		os.Exit(1)
	}

	srv := pipeline.NewServer(*jobs)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow-header connections must not pin goroutines forever on a
		// long-running service. (No WriteTimeout: analyze responses
		// stream for as long as the batch runs.)
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
	}
	log.Printf("fpserve listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil {
		log.Fatalf("fpserve: %v", err)
	}
}
