// Command fpserve is the batched analysis service: an HTTP front end
// over the analysis registry and job pipeline.
//
// The versioned /v1 API is resource-oriented and asynchronous: register
// FPL programs once under their content address, submit job batches
// referencing them (or inline source), poll or stream results, and
// cancel jobs mid-minimization — cancellation reaches the MO backends
// within one objective evaluation. Errors are application/problem+json
// with field-level spec-validation details. The legacy synchronous
// /analyze endpoint is kept, wire-compatible, as a thin wrapper over
// the same job engine. See docs/api.md for the endpoint reference.
//
// Usage:
//
//	fpserve -addr :8035 -jobs 8
//
//	curl -s -X POST http://localhost:8035/v1/programs -d '{
//	    "source": "func prog(x double) { if (x < 1.0) { x = x * x; } }"}'
//	curl -s -X POST http://localhost:8035/v1/jobs -d '{
//	    "program": "sha256:<id from above>",
//	    "specs": [{"analysis": "coverage", "seed": 1},
//	              {"analysis": "overflow", "seed": 1}]}'
//	curl -s http://localhost:8035/v1/jobs/job-1
//	curl -s -N http://localhost:8035/v1/jobs/job-1/events
//	curl -s -X DELETE http://localhost:8035/v1/jobs/job-1
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops
// accepting jobs, cancels in-flight job contexts (which land inside the
// minimizers within one objective evaluation), drains connections up to
// -drain, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/pipeline"
)

func main() {
	var (
		addr  = flag.String("addr", ":8035", "listen address")
		jobs  = flag.Int("jobs", 0, "concurrent analysis jobs across all requests (0 = all CPUs)")
		ttl   = flag.Duration("job-ttl", pipeline.DefaultJobTTL, "retention of finished jobs")
		table = flag.Int("job-table", pipeline.DefaultMaxTrackedJobs, "max tracked jobs")
		drain = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "fpserve: unexpected arguments:", flag.Args())
		os.Exit(1)
	}

	srv := pipeline.NewServer(*jobs)
	srv.Engine.TTL = *ttl
	srv.Engine.MaxTrackedJobs = *table
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow-header connections must not pin goroutines forever on a
		// long-running service. (No WriteTimeout: analyze responses and
		// SSE streams run for as long as their jobs do.)
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("fpserve listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("fpserve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Printf("fpserve: shutting down (drain %v)", *drain)

	sd, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting jobs and cancel in-flight job contexts first: the
	// handlers streaming those jobs finish promptly, so the HTTP drain
	// below converges instead of waiting on hour-long minimizations.
	if err := srv.Shutdown(sd); err != nil {
		log.Printf("fpserve: job engine drain: %v", err)
	}
	if err := hs.Shutdown(sd); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("fpserve: http drain: %v", err)
	}
	log.Printf("fpserve: shutdown complete")
}
