// Command coverme runs branch-coverage-based testing (paper §2
// Instance 4, the CoverMe construction): it generates inputs covering
// as many branch sides of the program as possible.
//
// Usage:
//
//	coverme -builtin fig2 -bounds -1000:1000
//	coverme prog.fpl -func prog
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/cli"
)

func main() {
	var (
		builtin = flag.String("builtin", "", "built-in program name")
		fn      = flag.String("func", "", "function to analyze (FPL files)")
		seed    = flag.Int64("seed", 1, "random seed")
		evals   = flag.Int("evals", 4000, "evaluations per round")
		stall   = flag.Int("stall", 6, "give up after this many rounds without progress")
		bounds  = flag.String("bounds", "", "search bounds lo:hi[,lo:hi...]")
		ulp     = flag.Bool("ulp", false, "use ULP branch distances")
		backend = flag.String("backend", "basinhopping", "MO backend")
		workers = flag.Int("workers", 0, "speculative parallel rounds (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	file := ""
	if flag.NArg() > 0 {
		file = flag.Arg(0)
	}
	p, err := cli.Resolve(*builtin, file, *fn)
	if err != nil {
		fatal(err)
	}
	bs, err := cli.ParseBounds(*bounds, p.Dim)
	if err != nil {
		fatal(err)
	}
	be, err := cli.Backend(*backend)
	if err != nil {
		fatal(err)
	}

	rep := analysis.Cover(p, analysis.CoverOptions{
		Seed:          *seed,
		EvalsPerRound: *evals,
		MaxStall:      *stall,
		Backend:       be,
		Bounds:        bs,
		ULP:           *ulp,
		Workers:       *workers,
	})
	fmt.Printf("program %s: covered %d/%d branch sides (%.1f%%) in %d rounds, %d evals\n",
		p.Name, len(rep.Covered), rep.Total, 100*rep.Ratio(), rep.Rounds, rep.Evals)
	labels := map[int]string{}
	for _, b := range p.Branches {
		labels[b.ID] = b.Label
	}
	for _, s := range rep.Covered {
		outcome := "false"
		if s.Taken {
			outcome = "true"
		}
		fmt.Printf("  site %d (%s) %s side: input %v\n", s.Site, labels[s.Site], outcome, rep.Inputs[s])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coverme:", err)
	os.Exit(1)
}
