// Command coverme runs branch-coverage-based testing (paper §2
// Instance 4, the CoverMe construction): it generates inputs covering
// as many branch sides of the program as possible. It is a thin wrapper
// over the "coverage" entry of the analysis registry.
//
// Usage:
//
//	coverme -builtin fig2 -bounds -1000:1000
//	coverme -func prog prog.fpl
package main

import "repro/internal/cli"

func main() {
	cli.Main("coverme", "coverage")
}
