// Command fpod is the paper's floating-point overflow detector
// (Algorithm 3, §6.3): it generates inputs that trigger overflow on as
// many floating-point operations of the program as possible, then
// replays GSL-convention benchmarks for inconsistencies.
//
// Usage:
//
//	fpod -builtin bessel
//	fpod -builtin airy -evals 8000
//	fpod prog.fpl -func prog
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/gsl"
)

func main() {
	var (
		builtin = flag.String("builtin", "", "built-in program name")
		fn      = flag.String("func", "", "function to analyze (FPL files)")
		seed    = flag.Int64("seed", 1, "random seed")
		evals   = flag.Int("evals", 6000, "evaluations per minimization round")
		rounds  = flag.Int("rounds", 0, "max rounds (0 = 3x ops)")
		bounds  = flag.String("bounds", "", "search bounds lo:hi[,lo:hi...]")
		backend = flag.String("backend", "basinhopping", "MO backend")
		workers = flag.Int("workers", 0, "speculative parallel rounds (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	file := ""
	if flag.NArg() > 0 {
		file = flag.Arg(0)
	}
	p, err := cli.Resolve(*builtin, file, *fn)
	if err != nil {
		fatal(err)
	}
	bs, err := cli.ParseBounds(*bounds, p.Dim)
	if err != nil {
		fatal(err)
	}
	be, err := cli.Backend(*backend)
	if err != nil {
		fatal(err)
	}

	rep := analysis.DetectOverflows(p, analysis.OverflowOptions{
		Seed:          *seed,
		EvalsPerRound: *evals,
		MaxRounds:     *rounds,
		Backend:       be,
		Bounds:        bs,
		Workers:       *workers,
	})

	fmt.Printf("program %s: %d/%d operations overflowed (%d rounds, %d evals, %.2fs)\n",
		p.Name, len(rep.Findings), rep.Ops, rep.Rounds, rep.Evals, rep.Duration.Seconds())
	for _, f := range rep.Findings {
		fmt.Printf("  overflow at op %d: %s\n      input %v\n", f.Site, f.Label, f.Input)
	}
	for _, m := range rep.Missed {
		label := ""
		for _, op := range p.Ops {
			if op.ID == m {
				label = op.Label
			}
		}
		fmt.Printf("  missed  at op %d: %s\n", m, label)
	}

	// Inconsistency replay for the GSL-convention builtins (§6.3.2).
	var evalFn analysis.SFFunc
	switch *builtin {
	case "bessel":
		evalFn = func(x []float64) (gsl.Result, gsl.Status) { return gsl.BesselKnuScaledAsympx(x[0], x[1]) }
	case "hyperg":
		evalFn = func(x []float64) (gsl.Result, gsl.Status) { return gsl.Hyperg2F0(x[0], x[1], x[2]) }
	case "airy":
		evalFn = func(x []float64) (gsl.Result, gsl.Status) { return gsl.AiryAi(x[0]) }
	}
	if evalFn != nil {
		var inputs [][]float64
		for _, f := range rep.Findings {
			inputs = append(inputs, f.Input)
		}
		incs := analysis.CheckInconsistenciesWorkers(evalFn, inputs, *workers)
		fmt.Printf("inconsistencies (status GSL_SUCCESS with non-finite result): %d\n", len(incs))
		for _, inc := range incs {
			fmt.Printf("  input %v: val=%g err=%g — %s\n", inc.Input, inc.Val, inc.Err, inc.Cause)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpod:", err)
	os.Exit(1)
}
