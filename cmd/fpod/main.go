// Command fpod is the paper's floating-point overflow detector
// (Algorithm 3, §6.3): it generates inputs that trigger overflow on as
// many floating-point operations of the program as possible, then
// replays GSL-convention benchmarks for inconsistencies (§6.3.2). It is
// a thin wrapper over the "overflow" entry of the analysis registry.
//
// Usage:
//
//	fpod -builtin bessel
//	fpod -builtin airy -evals 8000
//	fpod -func prog prog.fpl
package main

import "repro/internal/cli"

func main() {
	cli.Main("fpod", "overflow")
}
