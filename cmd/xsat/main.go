// Command xsat decides quantifier-free floating-point CNF constraints
// by weak-distance minimization (paper §2 Instance 5; the XSat
// lineage). It is a thin wrapper over the "xsat" entry of the analysis
// registry; exit code 2 means the formula could not be decided.
//
// Usage:
//
//	xsat 'x < 1 && x + 1 >= 2'
//	xsat -bounds -4:4 'x < 1 && x + tan(x) >= 2'
//	echo 'a*a + b*b == 25 && a > b' | xsat -
package main

import "repro/internal/cli"

func main() {
	cli.Main("xsat", "xsat")
}
