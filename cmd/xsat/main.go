// Command xsat decides quantifier-free floating-point CNF constraints
// by weak-distance minimization (paper §2 Instance 5; the XSat lineage).
//
// Usage:
//
//	xsat 'x < 1 && x + 1 >= 2'
//	xsat -bounds -4:4 'x < 1 && x + tan(x) >= 2'
//	echo 'a*a + b*b == 25 && a > b' | xsat -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/sat"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "random seed")
		starts  = flag.Int("starts", 8, "restarts")
		evals   = flag.Int("evals", 0, "evaluations per restart (0 = default)")
		bounds  = flag.String("bounds", "", "search bounds lo:hi (broadcast over variables)")
		real    = flag.Bool("real", false, "use real-valued |l-r| atom distances instead of ULP")
		backend = flag.String("backend", "basinhopping", "MO backend")
		workers = flag.Int("workers", 0, "parallel restarts (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: xsat [flags] 'formula' (or - for stdin)"))
	}
	src := flag.Arg(0)
	if src == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		src = strings.TrimSpace(string(data))
	}

	f, vars, err := sat.Parse(src)
	if err != nil {
		fatal(err)
	}
	bs, err := cli.ParseBounds(*bounds, f.Dim())
	if err != nil {
		fatal(err)
	}
	be, err := cli.Backend(*backend)
	if err != nil {
		fatal(err)
	}

	r := sat.Solve(f, sat.Options{
		Seed:          *seed,
		Starts:        *starts,
		EvalsPerStart: *evals,
		Backend:       be,
		Bounds:        bs,
		RealDist:      *real,
		Workers:       *workers,
	})
	switch r.Verdict {
	case sat.Sat:
		fmt.Println("sat")
		for _, name := range sat.VarNames(vars) {
			fmt.Printf("  %s = %.17g\n", name, r.Model[vars[name]])
		}
	default:
		fmt.Printf("unknown (min weak distance %.6g after %d evaluations)\n", r.MinDistance, r.Evals)
		fmt.Println("note: a positive minimum proves nothing by itself; the search is incomplete (Limitation 3)")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xsat:", err)
	os.Exit(1)
}
