// Command paperrepro regenerates every table and figure of the paper's
// evaluation section (§6) from this repository's implementations.
//
// Usage:
//
//	paperrepro -all
//	paperrepro -table 1        # MO backend sanity check
//	paperrepro -table 2        # GNU sin boundary value analysis
//	paperrepro -table 3        # GSL overflow summary
//	paperrepro -table 4        # per-operation Bessel overflows
//	paperrepro -table 5        # inconsistencies and confirmed bugs
//	paperrepro -lifted -table 3  # GSL study over the Go-frontend-lifted corpus
//	paperrepro -fig 3 -fig 4   # weak-distance graphs + samplings
//	paperrepro -fig 7          # characteristic-function ablation
//	paperrepro -fig 9          # sin condition-discovery series
//
// The -engine flag selects the FPL execution engine (vm — the compiled
// flat-code VM, the default — or tree, the reference tree-walking
// interpreter) for every interpreter-backed program in the run. For A/B
// timing of the engines themselves, -fpl measures raw instrumented
// evaluation throughput of an FPL program:
//
//	paperrepro -engine=vm   -fpl testdata/fig2.fpl -evals 2000000
//	paperrepro -engine=tree -fpl testdata/fig2.fpl -evals 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/paper"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }
func (l *intList) Set(s string) error {
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	var tables, figs intList
	flag.Var(&tables, "table", "table number to regenerate (repeatable)")
	flag.Var(&figs, "fig", "figure number to regenerate (repeatable)")
	all := flag.Bool("all", false, "regenerate everything")
	seed := flag.Int64("seed", 1, "random seed")
	budget := flag.Int("budget", 0, "evaluation budget scale (0 = defaults)")
	workers := flag.Int("workers", 0, "parallel search workers (0 = all CPUs, 1 = serial)")
	engine := flag.String("engine", "vm", "FPL execution engine: vm (compiled flat code) or tree (reference tree-walker)")
	lifted := flag.Bool("lifted", false,
		"run the GSL study (tables 3-5) over the corpus lifted from the real Go sources by the Go frontend, cross-checking the curated findings")
	fpl := flag.String("fpl", "", "measure instrumented eval throughput of this FPL file under -engine and exit")
	fn := flag.String("fn", "", "entry function for -fpl (default: first declared)")
	evals := flag.Int("evals", 1_000_000, "evaluations to time with -fpl")
	flag.Parse()

	eng, err := interp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	interp.DefaultEngine = eng

	if *fpl != "" {
		if err := throughput(*fpl, *fn, eng, *evals); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *all {
		tables = intList{1, 2, 3, 4, 5}
		figs = intList{3, 4, 7, 9}
	}
	if len(tables) == 0 && len(figs) == 0 {
		flag.Usage()
		os.Exit(1)
	}

	want := func(l intList, n int) bool {
		for _, v := range l {
			if v == n {
				return true
			}
		}
		return false
	}

	var sinStudy *paper.SinStudy
	needSin := want(tables, 2) || want(figs, 9)
	if needSin {
		sinStudy = paper.SinBoundaryStudyWorkers(*seed, 0, *budget, *workers)
	}
	var gslStudy *paper.GSLStudyResult
	if want(tables, 3) || want(tables, 4) || want(tables, 5) {
		if *lifted {
			var err error
			gslStudy, err = paper.GSLStudyLiftedWorkers(*seed, *budget, *workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro: -lifted:", err)
				os.Exit(1)
			}
		} else {
			gslStudy = paper.GSLStudyWorkers(*seed, *budget, *workers)
		}
	}

	if want(tables, 1) {
		fmt.Println(paper.Table1(*seed, *budget).Format())
	}
	if want(figs, 3) {
		fmt.Println(paper.Fig3(*seed, *budget).Format())
	}
	if want(figs, 4) {
		fmt.Println(paper.Fig4(*seed, *budget).Format())
	}
	if want(figs, 7) {
		fmt.Println(paper.Fig7(*seed, *budget).Format())
	}
	if want(tables, 2) {
		fmt.Println(sinStudy.FormatTable2())
	}
	if want(figs, 9) {
		fmt.Println(sinStudy.FormatFig9())
	}
	if want(tables, 3) {
		fmt.Println(gslStudy.FormatTable3())
	}
	if want(tables, 4) {
		fmt.Println(gslStudy.FormatTable4())
	}
	if want(tables, 5) {
		fmt.Println(gslStudy.FormatTable5())
	}
}

// throughput times instrumented objective evaluations of one FPL
// program under the selected engine — the A/B harness for the
// compiled-VM-versus-tree-walker comparison.
func throughput(path, fn string, eng interp.Engine, evals int) error {
	it, p, err := cli.LoadFPL(path, fn)
	if err != nil {
		return err
	}
	mon := &instrument.Boundary{}
	x := make([]float64, p.Dim)
	for i := range x {
		x[i] = 0.5 * float64(i+1)
	}
	// Warm up (compile caches, frame arena).
	for i := 0; i < 1000; i++ {
		p.Execute(mon, x)
	}
	it.ClearFailures()
	start := time.Now()
	var sink float64
	for i := 0; i < evals; i++ {
		sink = p.Execute(mon, x)
		if i&0xfff == 0 {
			// Programs whose asserts fire on the probe input would
			// otherwise accumulate a failure record per evaluation.
			it.ClearFailures()
		}
	}
	elapsed := time.Since(start)
	perEval := elapsed / time.Duration(evals)
	fmt.Printf("%s %s engine=%s: %d evals in %v (%v/eval, %.2fM evals/s) [w=%g]\n",
		path, p.Name, eng, evals, elapsed.Round(time.Millisecond),
		perEval, float64(evals)/elapsed.Seconds()/1e6, sink)
	return nil
}
