// Command paperrepro regenerates every table and figure of the paper's
// evaluation section (§6) from this repository's implementations.
//
// Usage:
//
//	paperrepro -all
//	paperrepro -table 1        # MO backend sanity check
//	paperrepro -table 2        # GNU sin boundary value analysis
//	paperrepro -table 3        # GSL overflow summary
//	paperrepro -table 4        # per-operation Bessel overflows
//	paperrepro -table 5        # inconsistencies and confirmed bugs
//	paperrepro -fig 3 -fig 4   # weak-distance graphs + samplings
//	paperrepro -fig 7          # characteristic-function ablation
//	paperrepro -fig 9          # sin condition-discovery series
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/paper"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }
func (l *intList) Set(s string) error {
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	var tables, figs intList
	flag.Var(&tables, "table", "table number to regenerate (repeatable)")
	flag.Var(&figs, "fig", "figure number to regenerate (repeatable)")
	all := flag.Bool("all", false, "regenerate everything")
	seed := flag.Int64("seed", 1, "random seed")
	budget := flag.Int("budget", 0, "evaluation budget scale (0 = defaults)")
	workers := flag.Int("workers", 0, "parallel search workers (0 = all CPUs, 1 = serial)")
	flag.Parse()

	if *all {
		tables = intList{1, 2, 3, 4, 5}
		figs = intList{3, 4, 7, 9}
	}
	if len(tables) == 0 && len(figs) == 0 {
		flag.Usage()
		os.Exit(1)
	}

	want := func(l intList, n int) bool {
		for _, v := range l {
			if v == n {
				return true
			}
		}
		return false
	}

	var sinStudy *paper.SinStudy
	needSin := want(tables, 2) || want(figs, 9)
	if needSin {
		sinStudy = paper.SinBoundaryStudyWorkers(*seed, 0, *budget, *workers)
	}
	var gslStudy *paper.GSLStudyResult
	if want(tables, 3) || want(tables, 4) || want(tables, 5) {
		gslStudy = paper.GSLStudyWorkers(*seed, *budget, *workers)
	}

	if want(tables, 1) {
		fmt.Println(paper.Table1(*seed, *budget).Format())
	}
	if want(figs, 3) {
		fmt.Println(paper.Fig3(*seed, *budget).Format())
	}
	if want(figs, 4) {
		fmt.Println(paper.Fig4(*seed, *budget).Format())
	}
	if want(figs, 7) {
		fmt.Println(paper.Fig7(*seed, *budget).Format())
	}
	if want(tables, 2) {
		fmt.Println(sinStudy.FormatTable2())
	}
	if want(figs, 9) {
		fmt.Println(sinStudy.FormatFig9())
	}
	if want(tables, 3) {
		fmt.Println(gslStudy.FormatTable3())
	}
	if want(tables, 4) {
		fmt.Println(gslStudy.FormatTable4())
	}
	if want(tables, 5) {
		fmt.Println(gslStudy.FormatTable5())
	}
}
