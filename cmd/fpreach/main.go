// Command fpreach solves path reachability (paper §4.3): it searches
// for an input that drives the program along a target sequence of
// branch decisions. It is a thin wrapper over the "reach" entry of the
// analysis registry; exit code 2 means the path was not reached.
//
// Usage:
//
//	fpreach -builtin fig2 -path 0:t,1:t -bounds -1000:1000
//	fpreach -func prog -path 0:t,1:f prog.fpl
//
// Branch sites are printed by `fpc -sites prog.fpl` or are documented
// per built-in program.
package main

import "repro/internal/cli"

func main() {
	cli.Main("fpreach", "reach")
}
