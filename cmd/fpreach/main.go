// Command fpreach solves path reachability (paper §4.3): it searches
// for an input that drives the program along a target sequence of
// branch decisions.
//
// Usage:
//
//	fpreach -builtin fig2 -path 0:t,1:t -bounds -1000:1000
//	fpreach prog.fpl -func prog -path 0:t,1:f
//
// Branch sites are printed by `fpc -sites prog.fpl` or are documented
// per built-in program.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/cli"
)

func main() {
	var (
		builtin = flag.String("builtin", "", "built-in program name")
		fn      = flag.String("func", "", "function to analyze (FPL files)")
		path    = flag.String("path", "", "target path, e.g. 0:t,1:f")
		seed    = flag.Int64("seed", 1, "random seed")
		starts  = flag.Int("starts", 8, "restarts")
		evals   = flag.Int("evals", 0, "evaluations per restart (0 = default)")
		bounds  = flag.String("bounds", "", "search bounds lo:hi[,lo:hi...]")
		ulp     = flag.Bool("ulp", false, "use ULP branch distances")
		backend = flag.String("backend", "basinhopping", "MO backend")
		workers = flag.Int("workers", 0, "parallel restarts (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	file := ""
	if flag.NArg() > 0 {
		file = flag.Arg(0)
	}
	p, err := cli.Resolve(*builtin, file, *fn)
	if err != nil {
		fatal(err)
	}
	target, err := cli.ParsePath(*path)
	if err != nil {
		fatal(err)
	}
	bs, err := cli.ParseBounds(*bounds, p.Dim)
	if err != nil {
		fatal(err)
	}
	be, err := cli.Backend(*backend)
	if err != nil {
		fatal(err)
	}

	r := analysis.ReachPath(p, target, analysis.ReachOptions{
		Seed:          *seed,
		Starts:        *starts,
		EvalsPerStart: *evals,
		Backend:       be,
		Bounds:        bs,
		ULP:           *ulp,
		Workers:       *workers,
	})
	fmt.Printf("program %s, target %v\n", p.Name, target)
	fmt.Println(r)
	if !r.Found {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpreach:", err)
	os.Exit(1)
}
