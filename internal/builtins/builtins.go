// Package builtins is the single registry of the math builtins callable
// from FPL. The checker (internal/lang) takes arities from it, lowering
// (internal/ir) resolves names to the function pointers stored here, and
// both execution engines (the internal/interp tree-walker and the
// internal/compile flat-code VM) call through those pointers — so adding
// a builtin is one entry in one table, and an unknown builtin is a
// compile-time error instead of a runtime panic.
package builtins

import (
	"fmt"
	"math"
)

// Unary maps each 1-argument builtin to its implementation.
var Unary = map[string]func(float64) float64{
	"sin":   math.Sin,
	"cos":   math.Cos,
	"tan":   math.Tan,
	"asin":  math.Asin,
	"acos":  math.Acos,
	"atan":  math.Atan,
	"sinh":  math.Sinh,
	"cosh":  math.Cosh,
	"tanh":  math.Tanh,
	"sqrt":  math.Sqrt,
	"cbrt":  math.Cbrt,
	"fabs":  math.Abs,
	"exp":   math.Exp,
	"exp2":  math.Exp2,
	"expm1": math.Expm1,
	"log":   math.Log,
	"log2":  math.Log2,
	"log10": math.Log10,
	"log1p": math.Log1p,
	"floor": math.Floor,
	"ceil":  math.Ceil,
	"trunc": math.Trunc,
	"round": math.Round,
	// highword(x) returns float64(high32(bits(x)) & 0x7fffffff): the
	// sign-masked upper half of x's IEEE-754 representation — glibc's
	// branch dispatch key (the paper's Fig. 8), exactly representable
	// as a double. It lets FPL clients express bit-pattern range
	// dispatch like the GNU sin case study.
	"highword": Highword,
}

// Binary maps each 2-argument builtin to its implementation.
var Binary = map[string]func(float64, float64) float64{
	"pow":      math.Pow,
	"fmin":     math.Min,
	"fmax":     math.Max,
	"fmod":     math.Mod,
	"atan2":    math.Atan2,
	"hypot":    math.Hypot,
	"copysign": math.Copysign,
}

// Highword implements the highword builtin.
func Highword(x float64) float64 {
	return float64(uint32(math.Float64bits(x)>>32) & 0x7fffffff)
}

// Resolve returns the implementation of the named builtin at the given
// arity: exactly one of the returned functions is non-nil on success.
func Resolve(name string, arity int) (func(float64) float64, func(float64, float64) float64, error) {
	switch arity {
	case 1:
		if fn, ok := Unary[name]; ok {
			return fn, nil, nil
		}
	case 2:
		if fn, ok := Binary[name]; ok {
			return nil, fn, nil
		}
	}
	return nil, nil, fmt.Errorf("unknown builtin %s/%d", name, arity)
}

// Arities returns the name → arity table the type checker consumes.
func Arities() map[string]int {
	m := make(map[string]int, len(Unary)+len(Binary))
	for name := range Unary {
		m[name] = 1
	}
	for name := range Binary {
		m[name] = 2
	}
	return m
}
