package progs_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fp"
	"repro/internal/progs"
	"repro/internal/rt"
)

func TestFig1aCheckAgainstDirectSemantics(t *testing.T) {
	prop := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		r := progs.Fig1aCheck(x)
		if r.Entered != (x < 1) {
			return false
		}
		if !r.Entered {
			return !r.Violated
		}
		return r.Violated == !(x+1 < 2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestFig1bCheckMatchesProgram(t *testing.T) {
	// The instrumented program and the concrete checker must agree on
	// which branch is entered.
	p := progs.Fig1b()
	for _, x := range []float64{-2, 0, 0.5, 0.99, 0.9999999999999999, 1, 3} {
		var seen []bool
		mon := &branchTaken{out: &seen}
		p.Execute(mon, []float64{x})
		r := progs.Fig1bCheck(x)
		if (len(seen) >= 1 && seen[0]) != r.Entered {
			t.Errorf("x=%v: program entered=%v, checker %v", x, seen, r.Entered)
		}
	}
}

type branchTaken struct{ out *[]bool }

func (m *branchTaken) Reset() {}
func (m *branchTaken) Branch(site int, op fp.CmpOp, a, b float64) {
	*m.out = append(*m.out, op.Eval(a, b))
}
func (m *branchTaken) FPOp(int, float64) bool { return false }
func (m *branchTaken) Value() float64         { return 0 }

func TestProgramInventories(t *testing.T) {
	cases := []struct {
		p        *rt.Program
		dim      int
		branches int
	}{
		{progs.Fig1a(), 1, 2},
		{progs.Fig1b(), 1, 2},
		{progs.Fig2(), 1, 2},
		{progs.EqZero(), 1, 1},
	}
	for _, c := range cases {
		if c.p.Dim != c.dim {
			t.Errorf("%s: dim %d, want %d", c.p.Name, c.p.Dim, c.dim)
		}
		if len(c.p.Branches) != c.branches {
			t.Errorf("%s: %d branches, want %d", c.p.Name, len(c.p.Branches), c.branches)
		}
		for i, b := range c.p.Branches {
			if b.ID != i || b.Label == "" {
				t.Errorf("%s: branch %d malformed: %+v", c.p.Name, i, b)
			}
		}
		for i, op := range c.p.Ops {
			if op.ID != i || op.Label == "" {
				t.Errorf("%s: op %d malformed: %+v", c.p.Name, i, op)
			}
		}
	}
}
