// Package progs contains the example floating-point programs used
// throughout the paper, ported as instrumentable rt.Programs:
//
//   - Fig1a / Fig1b: the motivating assertion examples (§1),
//   - Fig2: the two-branch program driving §4.2–4.3 and Table 1,
//   - EqZero: the `if (x == 0)` program of §5.2 illustrating
//     Limitation 2 (spurious weak-distance zeros under underflow).
//
// Site numbering is stable and documented per program; analyses and the
// paper-reproduction harness refer to these sites by the exported
// constants.
package progs

import (
	"math"

	"repro/internal/fp"
	"repro/internal/rt"
)

// Branch and operation sites of Fig2. The program is
//
//	void Prog(double x) {
//	    if (x <= 1.0) x++;        // branch B0, op OpInc
//	    double y = x * x;         // op OpSquare
//	    if (y <= 4.0) x--;        // branch B1, op OpDec
//	}
const (
	Fig2BranchX = 0 // x <= 1.0
	Fig2BranchY = 1 // y <= 4.0

	Fig2OpInc    = 0 // x + 1
	Fig2OpSquare = 1 // x * x
	Fig2OpDec    = 2 // x - 1
)

// Fig2 returns the paper's Fig. 2 program.
func Fig2() *rt.Program {
	return &rt.Program{
		Name: "fig2",
		Dim:  1,
		Ops: []rt.OpInfo{
			{ID: Fig2OpInc, Label: "x = x + 1"},
			{ID: Fig2OpSquare, Label: "y = x * x"},
			{ID: Fig2OpDec, Label: "x = x - 1"},
		},
		Branches: []rt.BranchInfo{
			{ID: Fig2BranchX, Label: "x <= 1.0", Op: fp.LE},
			{ID: Fig2BranchY, Label: "y <= 4.0", Op: fp.LE},
		},
		Run: func(ctx *rt.Ctx, in []float64) {
			x := in[0]
			if ctx.Cmp(Fig2BranchX, fp.LE, x, 1.0) {
				x = ctx.Op(Fig2OpInc, x+1)
			}
			y := ctx.Op(Fig2OpSquare, x*x)
			if ctx.Cmp(Fig2BranchY, fp.LE, y, 4.0) {
				x = ctx.Op(Fig2OpDec, x-1)
			}
			_ = x
		},
	}
}

// Sites of Fig1a/Fig1b:
//
//	void Prog(double x) {
//	    if (x < 1) {              // branch B0
//	        x = x + 1;            // (Fig1a) or x = x + tan(x) (Fig1b)
//	        assert(x < 2);        // branch B1 (assertion condition)
//	    }
//	}
const (
	Fig1BranchLT1 = 0 // x < 1
	Fig1BranchLT2 = 1 // x < 2 (the assertion)

	Fig1OpAdd = 0 // x + 1 (or x + tan(x))
	Fig1OpTan = 1 // tan(x), Fig1b only
)

// Fig1Result records whether the assertion of a Fig. 1 run held.
type Fig1Result struct {
	Entered  bool // the `x < 1` branch was taken
	Violated bool // the assertion `x < 2` failed
}

// Fig1a returns the paper's Fig. 1(a) program (`x = x + 1`). The
// assertion outcome for the last run can be recovered by re-running
// Fig1aCheck.
func Fig1a() *rt.Program {
	return &rt.Program{
		Name: "fig1a",
		Dim:  1,
		Ops: []rt.OpInfo{
			{ID: Fig1OpAdd, Label: "x = x + 1"},
		},
		Branches: []rt.BranchInfo{
			{ID: Fig1BranchLT1, Label: "x < 1", Op: fp.LT},
			{ID: Fig1BranchLT2, Label: "assert(x < 2)", Op: fp.LT},
		},
		Run: func(ctx *rt.Ctx, in []float64) {
			x := in[0]
			if ctx.Cmp(Fig1BranchLT1, fp.LT, x, 1.0) {
				x = ctx.Op(Fig1OpAdd, x+1)
				ctx.Cmp(Fig1BranchLT2, fp.LT, x, 2.0)
			}
		},
	}
}

// Fig1aCheck executes Fig. 1(a) concretely and reports the assertion
// outcome.
func Fig1aCheck(x float64) Fig1Result {
	var r Fig1Result
	if x < 1 {
		r.Entered = true
		x = x + 1
		r.Violated = !(x < 2)
	}
	return r
}

// Fig1b returns the paper's Fig. 1(b) program (`x = x + tan(x)`), the
// variant SMT-based methods struggle with because tan's implementation
// is system-dependent (§1).
func Fig1b() *rt.Program {
	return &rt.Program{
		Name: "fig1b",
		Dim:  1,
		Ops: []rt.OpInfo{
			{ID: Fig1OpAdd, Label: "x = x + tan(x)"},
			{ID: Fig1OpTan, Label: "tan(x)"},
		},
		Branches: []rt.BranchInfo{
			{ID: Fig1BranchLT1, Label: "x < 1", Op: fp.LT},
			{ID: Fig1BranchLT2, Label: "assert(x < 2)", Op: fp.LT},
		},
		Run: func(ctx *rt.Ctx, in []float64) {
			x := in[0]
			if ctx.Cmp(Fig1BranchLT1, fp.LT, x, 1.0) {
				t := ctx.Op(Fig1OpTan, math.Tan(x))
				x = ctx.Op(Fig1OpAdd, x+t)
				ctx.Cmp(Fig1BranchLT2, fp.LT, x, 2.0)
			}
		},
	}
}

// Fig1bCheck executes Fig. 1(b) concretely and reports the assertion
// outcome.
func Fig1bCheck(x float64) Fig1Result {
	var r Fig1Result
	if x < 1 {
		r.Entered = true
		x = x + math.Tan(x)
		r.Violated = !(x < 2)
	}
	return r
}

// EqZeroBranch is the single branch site of EqZero.
const EqZeroBranch = 0

// EqZero returns the §5.2 program `if (x == 0) ...`, used to demonstrate
// Limitation 2: the naive weak distance w = x*x has spurious zeros
// (W(1e-200) = 0 by underflow) that the membership guard must reject.
func EqZero() *rt.Program {
	return &rt.Program{
		Name: "eqzero",
		Dim:  1,
		Branches: []rt.BranchInfo{
			{ID: EqZeroBranch, Label: "x == 0", Op: fp.EQ},
		},
		Run: func(ctx *rt.Ctx, in []float64) {
			ctx.Cmp(EqZeroBranch, fp.EQ, in[0], 0.0)
		},
	}
}
