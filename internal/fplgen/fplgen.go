// Package fplgen generates random, guaranteed-well-typed FPL programs
// for differential and fuzz testing. It grew out of the ad-hoc
// generator inside internal/compile's differential suite and is now the
// shared program source of the whole testing stack: the engine
// differential tests, the fpfuzz oracle harness (internal/fuzz), and
// the pipeline stress campaigns all draw from it.
//
// The generator is grammar-directed with explicit size budgets: every
// production site consumes randomness from the caller's *rand.Rand
// only, so a seed fully determines the program — corpora are
// reproducible from (seed, index) pairs alone and never need to be
// stored. The default configuration is bit-compatible with the
// historical generator: for the same rand stream it emits byte-identical
// modules, preserving the seeds baked into the existing differential
// tests.
//
// Well-typedness holds by construction: expressions are built double-
// typed from double-typed leaves, conditions bool-typed from
// comparisons, variables are only referenced from enclosing scopes, and
// helper calls only target previously generated arity-1 helpers (call
// graphs are acyclic, so programs terminate up to the engines' step
// budget, which bounded while loops never reach). A package test
// compiles thousands of generated modules to hold the guarantee.
package fplgen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Config sets the size budgets of a Generator. The zero value selects
// the defaults of the historical differential-test generator.
type Config struct {
	// Params is the arity of the entry function "f"; 0 selects 1. With
	// arity 1 the parameter is named "x" (the historical spelling);
	// otherwise x0..x(n-1).
	Params int
	// MaxHelpers bounds the number of arity-1 helper functions: each
	// module declares 1 + Intn(MaxHelpers); 0 selects 2.
	MaxHelpers int
	// MinStmts and StmtRange set the entry body's statement budget:
	// MinStmts + Intn(StmtRange); zero selects 2 and 4.
	MinStmts  int
	StmtRange int
	// ExprDepth is the depth budget of statement-level expressions; 0
	// selects 2.
	ExprDepth int
}

func (c Config) params() int {
	if c.Params > 0 {
		return c.Params
	}
	return 1
}

func (c Config) maxHelpers() int {
	if c.MaxHelpers > 0 {
		return c.MaxHelpers
	}
	return 2
}

func (c Config) minStmts() int {
	if c.MinStmts > 0 {
		return c.MinStmts
	}
	return 2
}

func (c Config) stmtRange() int {
	if c.StmtRange > 0 {
		return c.StmtRange
	}
	return 4
}

func (c Config) exprDepth() int {
	if c.ExprDepth > 0 {
		return c.ExprDepth
	}
	return 2
}

// Generator produces random FPL modules under one configuration. The
// zero value uses the default configuration; Generators are stateless
// between Module calls and safe to reuse (not concurrently — the
// *rand.Rand is the serialization point anyway).
type Generator struct {
	Config Config
}

// Module generates one module using randomness from rng: helper
// functions h0, h1, ... (arity 1, callable from f and from later
// helpers only) and an entry function "f". The same rng stream always
// yields the same bytes.
func Module(rng *rand.Rand) string {
	return (&Generator{}).Module(rng)
}

// Module generates one module under the generator's configuration.
func (g *Generator) Module(rng *rand.Rand) string {
	cfg := g.Config
	s := &state{rng: rng, cfg: cfg}
	var sb strings.Builder
	// Helpers first (callable from f and from each other, earlier ones
	// only, so call graphs stay acyclic and terminating).
	nh := 1 + rng.Intn(cfg.maxHelpers())
	for h := 0; h < nh; h++ {
		name := fmt.Sprintf("h%d", h)
		s.lines = nil
		s.indent = ""
		vars := []string{"a"}
		s.block(&vars, 1, 1+rng.Intn(2))
		sb.WriteString("func " + name + "(a double) double {\n")
		for _, l := range s.lines {
			sb.WriteString(l + "\n")
		}
		sb.WriteString("    return " + s.expr(vars, cfg.exprDepth()) + ";\n}\n")
		s.funcs = append(s.funcs, name)
	}
	s.lines = nil
	s.indent = ""
	dim := cfg.params()
	var vars []string
	var sig string
	if dim == 1 {
		vars = []string{"x"}
		sig = "x double"
	} else {
		var parts []string
		for i := 0; i < dim; i++ {
			v := fmt.Sprintf("x%d", i)
			vars = append(vars, v)
			parts = append(parts, v+" double")
		}
		sig = strings.Join(parts, ", ")
	}
	s.block(&vars, 0, cfg.minStmts()+rng.Intn(cfg.stmtRange()))
	sb.WriteString("func f(" + sig + ") double {\n")
	for _, l := range s.lines {
		sb.WriteString(l + "\n")
	}
	sb.WriteString("    return " + s.expr(vars, cfg.exprDepth()) + ";\n}\n")
	return sb.String()
}

// state is the per-module generation state.
type state struct {
	rng    *rand.Rand
	cfg    Config
	nv     int
	funcs  []string // helper function names, arity 1
	lines  []string
	indent string
}

// expr produces a double-typed expression over the variables in scope.
func (s *state) expr(vars []string, depth int) string {
	if depth <= 0 || s.rng.Intn(4) == 0 {
		if len(vars) > 0 && s.rng.Intn(3) != 0 {
			return vars[s.rng.Intn(len(vars))]
		}
		return []string{"0.0", "1.0", "2.0", "0.5", "3.25", "1e-8", "1e8", "7.0", "1e300"}[s.rng.Intn(9)]
	}
	switch s.rng.Intn(10) {
	case 0, 1:
		return "(" + s.expr(vars, depth-1) + " + " + s.expr(vars, depth-1) + ")"
	case 2:
		return "(" + s.expr(vars, depth-1) + " - " + s.expr(vars, depth-1) + ")"
	case 3:
		return "(" + s.expr(vars, depth-1) + " * " + s.expr(vars, depth-1) + ")"
	case 4:
		return "(" + s.expr(vars, depth-1) + " / " + s.expr(vars, depth-1) + ")"
	case 5:
		return "(-" + s.expr(vars, depth-1) + ")"
	case 6:
		name := []string{"fabs", "sqrt", "sin", "floor", "exp"}[s.rng.Intn(5)]
		return name + "(" + s.expr(vars, depth-1) + ")"
	case 7:
		name := []string{"fmin", "fmax", "pow"}[s.rng.Intn(3)]
		return name + "(" + s.expr(vars, depth-1) + ", " + s.expr(vars, depth-1) + ")"
	case 8:
		if len(s.funcs) > 0 {
			f := s.funcs[s.rng.Intn(len(s.funcs))]
			return f + "(" + s.expr(vars, depth-1) + ")"
		}
		return s.expr(vars, depth-1)
	default:
		return "(" + s.expr(vars, depth-1) + " + " + s.expr(vars, depth-1) + ")"
	}
}

// cond produces a bool-typed condition: a comparison, optionally
// wrapped in short-circuit conjunction/disjunction/negation.
func (s *state) cond(vars []string, depth int) string {
	op := []string{"<", "<=", ">", ">=", "==", "!="}[s.rng.Intn(6)]
	c := "(" + s.expr(vars, depth) + " " + op + " " + s.expr(vars, depth) + ")"
	if depth > 0 {
		switch s.rng.Intn(4) {
		case 0:
			c = "(" + c + " && " + s.cond(vars, depth-1) + ")"
		case 1:
			c = "(" + c + " || " + s.cond(vars, depth-1) + ")"
		case 2:
			c = "(!" + c + ")"
		}
	}
	return c
}

// stmt appends one statement: a fresh var declaration, an if (optionally
// with else), a bounded counting loop, an assert, or an assignment.
func (s *state) stmt(vars *[]string, depth int) {
	ind := s.indent
	switch k := s.rng.Intn(7); {
	case k <= 1 || len(*vars) == 0:
		name := fmt.Sprintf("v%d", s.nv)
		s.nv++
		s.lines = append(s.lines, ind+"var "+name+" double = "+s.expr(*vars, s.cfg.exprDepth())+";")
		*vars = append(*vars, name)
	case k == 2 && depth < 2:
		s.lines = append(s.lines, ind+"if "+s.cond(*vars, 1)+" {")
		s.block(vars, depth+1, 1+s.rng.Intn(2))
		if s.rng.Intn(2) == 0 {
			s.lines = append(s.lines, ind+"} else {")
			s.block(vars, depth+1, 1+s.rng.Intn(2))
		}
		s.lines = append(s.lines, ind+"}")
	case k == 3 && depth < 2:
		// Bounded counting loop: the counter is not added to the
		// visible variable set, so the body cannot clobber it and the
		// loop always terminates.
		i := fmt.Sprintf("i%d", s.nv)
		s.nv++
		bound := fmt.Sprintf("%d.0", 1+s.rng.Intn(5))
		s.lines = append(s.lines, ind+"var "+i+" double = 0.0;")
		s.lines = append(s.lines, ind+"while ("+i+" < "+bound+") {")
		s.block(vars, depth+1, 1+s.rng.Intn(2))
		s.lines = append(s.lines, ind+"    "+i+" = "+i+" + 1.0;")
		s.lines = append(s.lines, ind+"}")
	case k == 4:
		s.lines = append(s.lines, ind+"assert"+s.cond(*vars, 0)+";")
	default:
		name := (*vars)[s.rng.Intn(len(*vars))]
		s.lines = append(s.lines, ind+name+" = "+s.expr(*vars, s.cfg.exprDepth())+";")
	}
}

// block appends n statements at one deeper indent level. Variables
// declared inside are visible to later statements of the same block but
// not to the enclosing scope.
func (s *state) block(vars *[]string, depth, n int) {
	saved := s.indent
	s.indent += "    "
	local := append([]string(nil), *vars...)
	for i := 0; i < n; i++ {
		s.stmt(&local, depth)
	}
	s.indent = saved
}

// Inputs returns the shared differential input battery for a dim-ary
// program: a deterministic sweep of magnitudes (zero, units, near-one,
// tiny, huge, subnormal) plus six random finite float-lattice points
// drawn from rng. This is the input set the engine differential tests
// have always used.
func Inputs(rng *rand.Rand, dim int) [][]float64 {
	seeds := []float64{0, 1, -1, 0.5, 2, -3.25, 1e-8, 1e8, 1e300, -1e300,
		0.9999999999999999, math.SmallestNonzeroFloat64}
	var out [][]float64
	for _, s := range seeds {
		x := make([]float64, dim)
		for i := range x {
			x[i] = s
			if i > 0 {
				x[i] = s * float64(i+1)
			}
		}
		out = append(out, x)
	}
	for k := 0; k < 6; k++ {
		x := make([]float64, dim)
		for i := range x {
			for {
				v := math.Float64frombits(rng.Uint64())
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					x[i] = v
					break
				}
			}
		}
		out = append(out, x)
	}
	return out
}

// Formula generates a random satisfiable-leaning CNF over variables
// x0..x(dim-1) in the syntax internal/sat parses: a conjunction of 1-3
// clauses, each a disjunction of 1-2 atoms comparing small arithmetic
// expressions. The formulas exercise the xsat analysis inside fuzz
// campaigns; satisfiability is not guaranteed (Unknown verdicts are a
// legitimate outcome), only parseability and boundedness.
func Formula(rng *rand.Rand, dim int) string {
	if dim < 1 {
		dim = 1
	}
	v := func() string { return fmt.Sprintf("x%d", rng.Intn(dim)) }
	consts := []string{"0", "1", "2", "0.5", "10", "100"}
	term := func() string {
		switch rng.Intn(6) {
		case 0:
			return consts[rng.Intn(len(consts))]
		case 1:
			return v() + " + " + consts[rng.Intn(len(consts))]
		case 2:
			return v() + " * " + v()
		case 3:
			return v() + " - " + v()
		case 4:
			name := []string{"sin", "cos", "fabs", "sqrt"}[rng.Intn(4)]
			return name + "(" + v() + ")"
		default:
			return v()
		}
	}
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	atom := func() string { return term() + " " + ops[rng.Intn(len(ops))] + " " + term() }
	var clauses []string
	nc := 1 + rng.Intn(3)
	for i := 0; i < nc; i++ {
		if rng.Intn(3) == 0 {
			clauses = append(clauses, "("+atom()+" || "+atom()+")")
		} else {
			clauses = append(clauses, atom())
		}
	}
	return strings.Join(clauses, " && ")
}
