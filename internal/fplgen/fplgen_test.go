package fplgen_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fplgen"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/sat"
)

// TestModuleSeedCompatibility pins the default generator to the byte
// stream of the historical differential-test generator (the one that
// lived inside internal/compile): the same rand stream must produce
// byte-identical modules forever, so the seeds baked into existing
// tests keep generating the exact corpora they were tuned on. The
// reference below is a verbatim copy of that generator.
func TestModuleSeedCompatibility(t *testing.T) {
	for _, seed := range []int64{20190622, 1, 7, 42, 123456789} {
		a := rand.New(rand.NewSource(seed))
		b := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			got := fplgen.Module(a)
			want := refGenModule(b)
			if got != want {
				t.Fatalf("seed %d module %d diverged from the historical generator\n--- got ---\n%s\n--- want ---\n%s",
					seed, i, got, want)
			}
		}
	}
}

// TestModuleWellTyped holds the generator's core guarantee: every
// generated module compiles (parse, check, lower) at every
// configuration, and the entry function has the configured arity.
func TestModuleWellTyped(t *testing.T) {
	configs := []fplgen.Config{
		{},
		{Params: 2},
		{Params: 3, MaxHelpers: 3},
		{MinStmts: 6, StmtRange: 6, ExprDepth: 4},
		{Params: 2, MaxHelpers: 1, MinStmts: 1, StmtRange: 2, ExprDepth: 1},
	}
	rng := rand.New(rand.NewSource(99))
	for ci, cfg := range configs {
		g := &fplgen.Generator{Config: cfg}
		n := 200
		if testing.Short() {
			n = 40
		}
		for i := 0; i < n; i++ {
			src := g.Module(rng)
			mod, err := ir.Compile(src)
			if err != nil {
				t.Fatalf("config %d module %d does not compile: %v\n%s", ci, i, err, src)
			}
			dim := cfg.Params
			if dim == 0 {
				dim = 1
			}
			if got := mod.Funcs["f"].NParams; got != dim {
				t.Fatalf("config %d: entry arity %d, want %d", ci, got, dim)
			}
		}
	}
}

// TestModuleFormatRoundTrip checks generated programs survive the
// shrinker's parse→format→parse round trip.
func TestModuleFormatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		src := fplgen.Module(rng)
		f, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("module %d: %v\n%s", i, err, src)
		}
		out := lang.Format(f)
		if _, err := ir.Compile(out); err != nil {
			t.Fatalf("module %d: formatted output does not compile: %v\n%s", i, err, out)
		}
	}
}

// TestInputs checks the input battery shape: deterministic prefix, six
// rng-drawn finite points, correct arity.
func TestInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for dim := 1; dim <= 3; dim++ {
		in := fplgen.Inputs(rng, dim)
		if len(in) != 18 {
			t.Fatalf("dim %d: %d inputs, want 18", dim, len(in))
		}
		for _, x := range in {
			if len(x) != dim {
				t.Fatalf("dim %d: input arity %d", dim, len(x))
			}
		}
	}
}

// TestFormulaParses: every generated formula must be accepted by the
// sat parser with the expected variable universe.
func TestFormulaParses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		dim := 1 + i%3
		src := fplgen.Formula(rng, dim)
		f, vars, err := sat.Parse(src)
		if err != nil {
			t.Fatalf("formula %d does not parse: %v\n%s", i, err, src)
		}
		if f.Dim() > dim || len(vars) > dim {
			t.Fatalf("formula %d uses %d vars, want <= %d: %s", i, f.Dim(), dim, src)
		}
	}
}

// --- verbatim copy of the historical generator (the compatibility
// reference; do not modify) ---

type refGen struct {
	rng    *rand.Rand
	nv     int
	funcs  []string
	lines  []string
	indent string
}

func (g *refGen) expr(vars []string, depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		if len(vars) > 0 && g.rng.Intn(3) != 0 {
			return vars[g.rng.Intn(len(vars))]
		}
		return []string{"0.0", "1.0", "2.0", "0.5", "3.25", "1e-8", "1e8", "7.0", "1e300"}[g.rng.Intn(9)]
	}
	switch g.rng.Intn(10) {
	case 0, 1:
		return "(" + g.expr(vars, depth-1) + " + " + g.expr(vars, depth-1) + ")"
	case 2:
		return "(" + g.expr(vars, depth-1) + " - " + g.expr(vars, depth-1) + ")"
	case 3:
		return "(" + g.expr(vars, depth-1) + " * " + g.expr(vars, depth-1) + ")"
	case 4:
		return "(" + g.expr(vars, depth-1) + " / " + g.expr(vars, depth-1) + ")"
	case 5:
		return "(-" + g.expr(vars, depth-1) + ")"
	case 6:
		name := []string{"fabs", "sqrt", "sin", "floor", "exp"}[g.rng.Intn(5)]
		return name + "(" + g.expr(vars, depth-1) + ")"
	case 7:
		name := []string{"fmin", "fmax", "pow"}[g.rng.Intn(3)]
		return name + "(" + g.expr(vars, depth-1) + ", " + g.expr(vars, depth-1) + ")"
	case 8:
		if len(g.funcs) > 0 {
			f := g.funcs[g.rng.Intn(len(g.funcs))]
			return f + "(" + g.expr(vars, depth-1) + ")"
		}
		return g.expr(vars, depth-1)
	default:
		return "(" + g.expr(vars, depth-1) + " + " + g.expr(vars, depth-1) + ")"
	}
}

func (g *refGen) cond(vars []string, depth int) string {
	op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
	c := "(" + g.expr(vars, depth) + " " + op + " " + g.expr(vars, depth) + ")"
	if depth > 0 {
		switch g.rng.Intn(4) {
		case 0:
			c = "(" + c + " && " + g.cond(vars, depth-1) + ")"
		case 1:
			c = "(" + c + " || " + g.cond(vars, depth-1) + ")"
		case 2:
			c = "(!" + c + ")"
		}
	}
	return c
}

func (g *refGen) stmt(vars *[]string, depth int) {
	ind := g.indent
	switch k := g.rng.Intn(7); {
	case k <= 1 || len(*vars) == 0:
		name := fmt.Sprintf("v%d", g.nv)
		g.nv++
		g.lines = append(g.lines, ind+"var "+name+" double = "+g.expr(*vars, 2)+";")
		*vars = append(*vars, name)
	case k == 2 && depth < 2:
		g.lines = append(g.lines, ind+"if "+g.cond(*vars, 1)+" {")
		g.block(vars, depth+1, 1+g.rng.Intn(2))
		if g.rng.Intn(2) == 0 {
			g.lines = append(g.lines, ind+"} else {")
			g.block(vars, depth+1, 1+g.rng.Intn(2))
		}
		g.lines = append(g.lines, ind+"}")
	case k == 3 && depth < 2:
		i := fmt.Sprintf("i%d", g.nv)
		g.nv++
		bound := fmt.Sprintf("%d.0", 1+g.rng.Intn(5))
		g.lines = append(g.lines, ind+"var "+i+" double = 0.0;")
		g.lines = append(g.lines, ind+"while ("+i+" < "+bound+") {")
		g.block(vars, depth+1, 1+g.rng.Intn(2))
		g.lines = append(g.lines, ind+"    "+i+" = "+i+" + 1.0;")
		g.lines = append(g.lines, ind+"}")
	case k == 4:
		g.lines = append(g.lines, ind+"assert"+g.cond(*vars, 0)+";")
	default:
		name := (*vars)[g.rng.Intn(len(*vars))]
		g.lines = append(g.lines, ind+name+" = "+g.expr(*vars, 2)+";")
	}
}

func (g *refGen) block(vars *[]string, depth, n int) {
	saved := g.indent
	g.indent += "    "
	local := append([]string(nil), *vars...)
	for i := 0; i < n; i++ {
		g.stmt(&local, depth)
	}
	g.indent = saved
}

func refGenModule(rng *rand.Rand) string {
	g := &refGen{rng: rng}
	var sb strings.Builder
	nh := 1 + rng.Intn(2)
	for h := 0; h < nh; h++ {
		name := fmt.Sprintf("h%d", h)
		g.lines = nil
		g.indent = ""
		vars := []string{"a"}
		g.block(&vars, 1, 1+rng.Intn(2))
		sb.WriteString("func " + name + "(a double) double {\n")
		for _, l := range g.lines {
			sb.WriteString(l + "\n")
		}
		sb.WriteString("    return " + g.expr(vars, 2) + ";\n}\n")
		g.funcs = append(g.funcs, name)
	}
	g.lines = nil
	g.indent = ""
	vars := []string{"x"}
	g.block(&vars, 0, 2+rng.Intn(4))
	sb.WriteString("func f(x double) double {\n")
	for _, l := range g.lines {
		sb.WriteString(l + "\n")
	}
	sb.WriteString("    return " + g.expr(vars, 2) + ";\n}\n")
	return sb.String()
}
