package interp_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fp"

	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rt"
)

const fig2Src = `
func prog(x double) {
    if (x <= 1.0) {
        x = x + 1.0;
    }
    var y double = x * x;
    if (y <= 4.0) {
        x = x - 1.0;
    }
}
`

func mustProgram(t *testing.T, src, fn string) (*interp.Interp, *rt.Program) {
	t.Helper()
	m, err := ir.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	it := interp.New(m)
	p, err := it.Program(fn)
	if err != nil {
		t.Fatal(err)
	}
	return it, p
}

func run(t *testing.T, src, fn string, args ...float64) float64 {
	t.Helper()
	m, err := ir.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	v, err := interp.New(m).Run(fn, args)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		args []float64
		want float64
	}{
		{"func f(x double) double { return x + 1.0; }", []float64{2}, 3},
		{"func f(x double) double { return x - 1.0; }", []float64{2}, 1},
		{"func f(x double) double { return x * 3.0; }", []float64{2}, 6},
		{"func f(x double) double { return x / 4.0; }", []float64{2}, 0.5},
		{"func f(x double) double { return -x; }", []float64{2}, -2},
		{"func f(x double, y double) double { return x * y + 1.0; }", []float64{3, 4}, 13},
	}
	for _, c := range cases {
		if got := run(t, c.src, "f", c.args...); got != c.want {
			t.Errorf("%s with %v = %v, want %v", c.src, c.args, got, c.want)
		}
	}
}

func TestIEEESemantics(t *testing.T) {
	// Division by zero and overflow follow IEEE-754, not panics.
	if got := run(t, "func f(x double) double { return 1.0 / x; }", "f", 0); !math.IsInf(got, 1) {
		t.Errorf("1/0 = %v, want +Inf", got)
	}
	if got := run(t, "func f(x double) double { return x * x; }", "f", 1e200); !math.IsInf(got, 1) {
		t.Errorf("1e200^2 = %v, want +Inf", got)
	}
	if got := run(t, "func f(x double) double { return x / x; }", "f", 0); !math.IsNaN(got) {
		t.Errorf("0/0 = %v, want NaN", got)
	}
	// The paper's §1 associativity example.
	got1 := run(t, "func f(x double) double { return 0.1 + (0.2 + 0.3); }", "f", 0)
	got2 := run(t, "func f(x double) double { return (0.1 + 0.2) + 0.3; }", "f", 0)
	if got1 == got2 {
		t.Error("floating-point non-associativity not reproduced")
	}
	if got1 != 0.6 {
		t.Errorf("0.1+(0.2+0.3) = %v, want 0.6", got1)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func f(x double) double {
    if (x < 0.0) { return -x; }
    else if (x < 10.0) { return x; }
    else { return 10.0; }
}`
	for _, c := range []struct{ in, want float64 }{{-5, 5}, {3, 3}, {100, 10}} {
		if got := run(t, src, "f", c.in); got != c.want {
			t.Errorf("f(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
func f(n double) double {
    var sum double = 0.0;
    var i double = 1.0;
    while (i <= n) {
        sum = sum + i;
        i = i + 1.0;
    }
    return sum;
}`
	if got := run(t, src, "f", 100); got != 5050 {
		t.Errorf("sum 1..100 = %v", got)
	}
}

func TestUserCallsAndRecursion(t *testing.T) {
	src := `
func fact(n double) double {
    if (n <= 1.0) { return 1.0; }
    return n * fact(n - 1.0);
}
func f(x double) double { return fact(x); }`
	if got := run(t, src, "f", 10); got != 3628800 {
		t.Errorf("10! = %v", got)
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		in   float64
		want float64
	}{
		{"func f(x double) double { return sqrt(x); }", 9, 3},
		{"func f(x double) double { return fabs(x); }", -2.5, 2.5},
		{"func f(x double) double { return pow(x, 3.0); }", 2, 8},
		{"func f(x double) double { return floor(x); }", 2.7, 2},
		{"func f(x double) double { return ceil(x); }", 2.2, 3},
		{"func f(x double) double { return fmin(x, 0.0); }", 2, 0},
		{"func f(x double) double { return fmax(x, 0.0); }", 2, 2},
		{"func f(x double) double { return exp(log(x)); }", 5, 5},
	}
	for _, c := range cases {
		if got := run(t, c.src, "f", c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s (%v) = %v, want %v", c.src, c.in, got, c.want)
		}
	}
	if got := run(t, "func f(x double) double { return sin(x); }", "f", math.Pi/2); math.Abs(got-1) > 1e-15 {
		t.Errorf("sin(pi/2) = %v", got)
	}
}

func TestShortCircuitObservation(t *testing.T) {
	// With `x < 0 && 1/x < y`, the second comparison must not be
	// observed when x >= 0 — verified via a branch counter.
	src := "func f(x double) bool { return x < 0.0 && 1.0 / x < -100.0; }"
	_, p := mustProgram(t, src, "f")
	cnt := &branchCounter{}
	p.Execute(cnt, []float64{5})
	if cnt.n != 1 {
		t.Errorf("observed %d comparisons for short-circuited rhs, want 1", cnt.n)
	}
	cnt.n = 0
	p.Execute(cnt, []float64{-0.001})
	if cnt.n != 2 {
		t.Errorf("observed %d comparisons, want 2", cnt.n)
	}
}

type branchCounter struct{ n int }

func (m *branchCounter) Reset()                                 {}
func (m *branchCounter) Branch(int, fp.CmpOp, float64, float64) { m.n++ }
func (m *branchCounter) FPOp(int, float64) bool                 { return false }
func (m *branchCounter) Value() float64                         { return 0 }

func TestAssertRecording(t *testing.T) {
	// The paper's Fig. 1(a): assert(x < 2) after x = x + 1 under x < 1.
	src := `
func prog(x double) {
    if (x < 1.0) {
        x = x + 1.0;
        assert(x < 2.0);
    }
}`
	it, p := mustProgram(t, src, "prog")
	p.Execute(rt.NopMonitor{}, []float64{0.5})
	if len(it.Failures) != 0 {
		t.Errorf("spurious failures: %v", it.Failures)
	}
	p.Execute(rt.NopMonitor{}, []float64{0.9999999999999999})
	if len(it.Failures) != 1 {
		t.Fatalf("failures = %v, want 1", it.Failures)
	}
	if got := it.Failures[0].Input[0]; got != 0.9999999999999999 {
		t.Errorf("failure input = %v", got)
	}
	it.ClearFailures()
	if len(it.Failures) != 0 {
		t.Error("ClearFailures did not clear")
	}
}

func TestStepBudget(t *testing.T) {
	src := `
func f(x double) double {
    while (x < 1.0 || x >= 1.0) { x = x + 0.0; }
    return x;
}`
	m, err := ir.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(m)
	it.MaxSteps = 10000
	v, err := it.Run("f", []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v) {
		t.Errorf("nonterminating run returned %v, want NaN marker", v)
	}
}

func TestInterpAgreesWithGoSemantics(t *testing.T) {
	// Property: the interpreted Fig. 2-like expression agrees with the
	// direct Go computation bit-for-bit, across random inputs.
	src := `
func f(x double) double {
    var y double = x * x - 2.0 * x + 1.0;
    if (y < 0.5) { y = y + x / 3.0; }
    return y * y;
}`
	m, err := ir.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(m)
	ref := func(x float64) float64 {
		y := x*x - 2.0*x + 1.0
		if y < 0.5 {
			y = y + x/3.0
		}
		return y * y
	}
	prop := func(x float64) bool {
		got, err := it.Run("f", []float64{x})
		if err != nil {
			return false
		}
		want := ref(x)
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestFig2DSLMatchesNativePort(t *testing.T) {
	// The DSL Fig. 2 and the native progs.Fig2 port must induce the same
	// boundary weak distance.
	_, p := mustProgram(t, fig2Src, "prog")
	w := p.WeakDistance(&instrument.Boundary{})
	for _, c := range []struct {
		x    float64
		zero bool
	}{
		{1, true}, {2, true}, {-3, true}, {0.9999999999999999, true},
		{0, false}, {5, false}, {1.5, false},
	} {
		got := w([]float64{c.x})
		if (got == 0) != c.zero {
			t.Errorf("W(%v) = %v, want zero=%v", c.x, got, c.zero)
		}
	}
}

func TestProgramUnknownFunction(t *testing.T) {
	m, err := ir.Compile("func f(x double) {}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.New(m).Program("nope"); err == nil {
		t.Error("expected error for unknown function")
	}
}
