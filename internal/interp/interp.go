// Package interp executes IR modules under instrumentation. It is the
// dynamic half of the Reduction Kernel (§5.3): given a compiled FPL
// program, it produces an rt.Program whose every floating-point
// operation and branch condition is observed by a pluggable monitor —
// the same interface the native GSL/libm ports use, so all weak-distance
// constructions work identically over both substrates.
//
// Two execution engines back the returned programs:
//
//   - EngineVM (the default): internal/compile's flat-code register VM.
//     The module is compiled once into linear code with precomputed
//     jump offsets, resolved call targets and builtin function
//     pointers, and executed over a reusable frame arena — the
//     allocation-free hot path every analysis's evaluation budget is
//     spent on.
//   - EngineTree: the original tree-walking interpreter, kept as the
//     reference semantics and differential-testing oracle.
//
// The engines are observationally identical: same results, same monitor
// observation sequences, same step-budget aborts (enforced by the
// differential tests in internal/compile).
package interp

import (
	"fmt"
	"math"

	"repro/internal/builtins"
	"repro/internal/compile"
	"repro/internal/ir"
	"repro/internal/rt"
)

// DefaultMaxSteps bounds interpretation so that non-terminating loops
// (reachable under adversarial optimizer inputs) cannot hang an
// analysis. A run that exceeds the bound is abandoned; the monitor
// reports the weak distance accumulated so far.
const DefaultMaxSteps = compile.DefaultMaxSteps

// AssertFailure records a violated assert statement during a run.
type AssertFailure = compile.AssertFailure

// Engine selects the execution engine backing an Interp.
type Engine uint8

const (
	// EngineVM executes compiled flat code (internal/compile): the
	// fast, allocation-free default.
	EngineVM Engine = iota
	// EngineTree walks the block-structured IR directly: the reference
	// implementation and differential-testing oracle.
	EngineTree
)

// ParseEngine resolves an engine name ("vm" or "tree"), for -engine
// style command-line flags.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "vm", "compiled":
		return EngineVM, nil
	case "tree", "walker", "interp":
		return EngineTree, nil
	}
	return EngineVM, fmt.Errorf("unknown engine %q (want vm or tree)", name)
}

// String returns the flag spelling of the engine.
func (e Engine) String() string {
	if e == EngineTree {
		return "tree"
	}
	return "vm"
}

// DefaultEngine is the engine New installs on fresh interpreters. Tools
// expose it via -engine flags for A/B timing; tests pin it per Interp
// instead.
var DefaultEngine = EngineVM

// Interp drives interpretation of one module.
type Interp struct {
	// Mod is the module to execute.
	Mod *ir.Module
	// MaxSteps bounds instructions per execution; zero selects
	// DefaultMaxSteps.
	MaxSteps int
	// Engine selects the execution engine. The zero value is EngineVM;
	// New installs DefaultEngine.
	Engine Engine

	// Failures collects assertion violations across runs (reset by
	// ClearFailures). Useful for the Fig. 1 style analyses.
	Failures []AssertFailure

	compiled *compile.Module  // lazily compiled flat code, shared by forks
	vm       *compile.Machine // reusable machine for uninstrumented Run

	steps int
	input []float64
	cargs []float64 // tree-walker call-argument scratch
}

// New returns an interpreter for the module using DefaultEngine.
func New(m *ir.Module) *Interp { return &Interp{Mod: m, Engine: DefaultEngine} }

// ClearFailures discards recorded assertion failures.
func (it *Interp) ClearFailures() { it.Failures = nil }

// compiledModule compiles the module to flat code once, caching the
// result. Forks share the cache: compiled code is immutable.
func (it *Interp) compiledModule() (*compile.Module, error) {
	if it.compiled == nil {
		cm, err := compile.Compile(it.Mod)
		if err != nil {
			return nil, err
		}
		it.compiled = cm
	}
	return it.compiled, nil
}

// Program wraps the named function as an instrumentable rt.Program.
// The returned program shares the interpreter (and its failure log).
func (it *Interp) Program(fnName string) (*rt.Program, error) {
	fn := it.Mod.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("interp: no function %q in module", fnName)
	}
	var run func(ctx *rt.Ctx, x []float64)
	var runBatch func(mons []rt.Monitor, xs [][]float64, out []float64)
	if it.Engine == EngineTree {
		run = func(ctx *rt.Ctx, x []float64) {
			it.run(ctx, fn, x)
		}
	} else {
		cm, err := it.compiledModule()
		if err != nil {
			return nil, err
		}
		cfn := cm.Func(fnName)
		vm := cm.NewMachine()
		vm.OnAssertFailure = func(f AssertFailure) {
			it.Failures = append(it.Failures, f)
		}
		run = func(ctx *rt.Ctx, x []float64) {
			// MaxSteps is read per run, matching the tree-walker's
			// late binding of the budget.
			vm.MaxSteps = it.MaxSteps
			vm.Run(ctx, cfn, x)
		}
		// Lane-parallel entry point: a batch machine materializes on
		// the first batched sweep (sized to it, regrown on demand) so
		// scalar-only users pay nothing. Sweep owns the whole monitor
		// bracket — reset, observe, collect weak distances into out.
		var bvm *compile.BatchMachine
		runBatch = func(mons []rt.Monitor, xs [][]float64, out []float64) {
			if bvm == nil || bvm.K() < len(xs) {
				bvm = cm.NewBatchMachine(len(xs))
				bvm.OnAssertFailure = func(f AssertFailure) {
					it.Failures = append(it.Failures, f)
				}
			}
			bvm.MaxSteps = it.MaxSteps
			bvm.Sweep(mons, cfn, xs, out)
		}
	}
	return &rt.Program{
		Name:     fnName,
		Dim:      fn.NParams,
		Ops:      it.Mod.OpSites,
		Branches: it.Mod.BranchSites,
		Run:      run,
		RunBatch: runBatch,
		// The VM unwinds monitor stops through ordinary returns; only
		// the tree-walker needs the panic-based protocol.
		NoPanicStop: it.Engine != EngineTree,
		// The module (and its compiled flat code) is immutable, but the
		// executing machinery is not (frame arena, step counter, failure
		// log), so a concurrent-safe instance wraps a fresh interpreter
		// over the same module. Failures recorded during parallel
		// searches land on the instance and are discarded with it.
		NewInstance: func() *rt.Program {
			fork := &Interp{
				Mod:      it.Mod,
				MaxSteps: it.MaxSteps,
				Engine:   it.Engine,
				compiled: it.compiled,
			}
			p, err := fork.Program(fnName)
			if err != nil {
				panic(err) // unreachable: fnName was just resolved above
			}
			return p
		},
	}, nil
}

// Run executes the named function uninstrumented and returns its result
// (0 for void functions, 1/0 for bool results, NaN when the step budget
// is exceeded).
func (it *Interp) Run(fnName string, x []float64) (float64, error) {
	fn := it.Mod.Func(fnName)
	if fn == nil {
		return 0, fmt.Errorf("interp: no function %q in module", fnName)
	}
	if it.Engine == EngineTree {
		return it.run(rt.NewCtx(rt.NopMonitor{}), fn, x), nil
	}
	cm, err := it.compiledModule()
	if err != nil {
		return 0, err
	}
	if it.vm == nil {
		it.vm = cm.NewMachine()
		it.vm.OnAssertFailure = func(f AssertFailure) {
			it.Failures = append(it.Failures, f)
		}
	}
	it.vm.MaxSteps = it.MaxSteps
	return it.vm.Run(rt.NewCtx(rt.NopMonitor{}), cm.Func(fnName), x), nil
}

// budgetExceeded is the internal control panic for step-limit aborts.
type budgetExceeded struct{}

// run executes fn on x under ctx with the tree-walking engine,
// returning its result (0 for void).
func (it *Interp) run(ctx *rt.Ctx, fn *ir.Func, x []float64) float64 {
	if len(x) != fn.NParams {
		panic(fmt.Sprintf("interp: %s expects %d inputs, got %d", fn.Name, fn.NParams, len(x)))
	}
	max := it.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	it.steps = 0
	it.input = x
	var ret float64
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(budgetExceeded); ok {
					ret = math.NaN()
					return
				}
				panic(r)
			}
		}()
		ret = it.call(ctx, fn, x, max)
	}()
	return ret
}

// call executes one function activation.
func (it *Interp) call(ctx *rt.Ctx, fn *ir.Func, args []float64, max int) float64 {
	fregs := make([]float64, fn.NumRegs())
	bregs := make([]bool, fn.NumRegs())
	copy(fregs, args)

	bi := 0
	ii := 0
	for {
		it.steps++
		if it.steps > max {
			panic(budgetExceeded{})
		}
		in := &fn.Blocks[bi].Instrs[ii]
		ii++
		switch in.Op {
		case ir.ConstF:
			fregs[in.Dst] = in.Val
		case ir.ConstB:
			bregs[in.Dst] = in.BVal
		case ir.Mov:
			if fn.Kinds[in.Dst] == ir.RegB {
				bregs[in.Dst] = bregs[in.A]
			} else {
				fregs[in.Dst] = fregs[in.A]
			}
		case ir.FAdd:
			fregs[in.Dst] = ctx.Op(in.Site, fregs[in.A]+fregs[in.B])
		case ir.FSub:
			fregs[in.Dst] = ctx.Op(in.Site, fregs[in.A]-fregs[in.B])
		case ir.FMul:
			fregs[in.Dst] = ctx.Op(in.Site, fregs[in.A]*fregs[in.B])
		case ir.FDiv:
			fregs[in.Dst] = ctx.Op(in.Site, fregs[in.A]/fregs[in.B])
		case ir.FNeg:
			fregs[in.Dst] = -fregs[in.A]
		case ir.FCmp:
			bregs[in.Dst] = ctx.Cmp(in.Site, in.Pred, fregs[in.A], fregs[in.B])
		case ir.Not:
			bregs[in.Dst] = !bregs[in.A]
		case ir.Call:
			// The callee pointer is cached at lowering time (Module.Link);
			// the map lookup survives only as a fallback for hand-built
			// modules that skipped Link.
			callee := in.Callee
			if callee == nil {
				callee = it.Mod.Funcs[in.Name]
			}
			// The argument scratch buffer is reusable even under
			// recursion: the callee copies it into its own frame at entry,
			// before any nested call can clobber it.
			if cap(it.cargs) < len(in.Args) {
				it.cargs = make([]float64, len(in.Args))
			}
			cargs := it.cargs[:len(in.Args)]
			for i, a := range in.Args {
				cargs[i] = fregs[a]
			}
			v := it.call(ctx, callee, cargs, max)
			if in.Dst >= 0 {
				if fn.Kinds[in.Dst] == ir.RegB {
					bregs[in.Dst] = v != 0
				} else {
					fregs[in.Dst] = v
				}
			}
		case ir.CallBuiltin:
			// Builtins are resolved to function pointers at lowering
			// time (Module.Link); the name-based lookup survives only as
			// a fallback for hand-built modules that skipped Link,
			// mirroring the Call fallback above. (No caching here: the
			// module may be shared across concurrent instances.)
			var v float64
			fn1, fn2 := in.Fn1, in.Fn2
			if fn1 == nil && fn2 == nil {
				var err error
				fn1, fn2, err = builtins.Resolve(in.Name, len(in.Args))
				if err != nil {
					panic(fmt.Sprintf("interp: %v", err))
				}
			}
			if fn1 != nil {
				v = fn1(fregs[in.Args[0]])
			} else {
				v = fn2(fregs[in.Args[0]], fregs[in.Args[1]])
			}
			fregs[in.Dst] = ctx.Op(in.Site, v)
		case ir.Jmp:
			bi, ii = in.Target, 0
		case ir.CondJmp:
			if bregs[in.A] {
				bi, ii = in.Target, 0
			} else {
				bi, ii = in.Else, 0
			}
		case ir.Ret:
			if in.A >= 0 {
				if fn.Kinds[in.A] == ir.RegB {
					if bregs[in.A] {
						return 1
					}
					return 0
				}
				return fregs[in.A]
			}
			return 0
		case ir.Assert:
			if !bregs[in.A] {
				it.Failures = append(it.Failures, AssertFailure{
					Pos:   in.Pos,
					Label: in.Label,
					Input: append([]float64(nil), it.input...),
				})
			}
		default:
			panic(fmt.Sprintf("interp: unknown opcode %s", in.Op))
		}
	}
}
