// Package interp executes IR modules under instrumentation. It is the
// dynamic half of the Reduction Kernel (§5.3): given a compiled FPL
// program, it produces an rt.Program whose every floating-point
// operation and branch condition is observed by a pluggable monitor —
// the same interface the native GSL/libm ports use, so all weak-distance
// constructions work identically over both substrates.
package interp

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/rt"
)

// DefaultMaxSteps bounds interpretation so that non-terminating loops
// (reachable under adversarial optimizer inputs) cannot hang an
// analysis. A run that exceeds the bound is abandoned; the monitor
// reports the weak distance accumulated so far.
const DefaultMaxSteps = 1_000_000

// AssertFailure records a violated assert statement during a run.
type AssertFailure struct {
	Pos   lang.Pos
	Label string
	Input []float64
}

func (a AssertFailure) String() string {
	return fmt.Sprintf("%s: assertion %q violated with input %v", a.Pos, a.Label, a.Input)
}

// Interp drives interpretation of one module.
type Interp struct {
	// Mod is the module to execute.
	Mod *ir.Module
	// MaxSteps bounds instructions per execution; zero selects
	// DefaultMaxSteps.
	MaxSteps int

	// Failures collects assertion violations across runs (reset by
	// ClearFailures). Useful for the Fig. 1 style analyses.
	Failures []AssertFailure

	steps int
	input []float64
}

// New returns an interpreter for the module.
func New(m *ir.Module) *Interp { return &Interp{Mod: m} }

// ClearFailures discards recorded assertion failures.
func (it *Interp) ClearFailures() { it.Failures = nil }

// Program wraps the named function as an instrumentable rt.Program.
// The returned program shares the interpreter (and its failure log).
func (it *Interp) Program(fnName string) (*rt.Program, error) {
	fn := it.Mod.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("interp: no function %q in module", fnName)
	}
	return &rt.Program{
		Name:     fnName,
		Dim:      fn.NParams,
		Ops:      it.Mod.OpSites,
		Branches: it.Mod.BranchSites,
		Run: func(ctx *rt.Ctx, x []float64) {
			it.run(ctx, fn, x)
		},
		// The module is immutable after compilation, but the interpreter
		// is not (step counter, input snapshot, failure log), so a
		// concurrent-safe instance wraps a fresh interpreter over the
		// same module. Failures recorded during parallel searches land
		// on the instance and are discarded with it.
		NewInstance: func() *rt.Program {
			fork := New(it.Mod)
			fork.MaxSteps = it.MaxSteps
			p, err := fork.Program(fnName)
			if err != nil {
				panic(err) // unreachable: fnName was just resolved above
			}
			return p
		},
	}, nil
}

// Run executes the named function uninstrumented and returns its result
// (0 for void functions, 1/0 for bool results, NaN when the step budget
// is exceeded).
func (it *Interp) Run(fnName string, x []float64) (float64, error) {
	fn := it.Mod.Func(fnName)
	if fn == nil {
		return 0, fmt.Errorf("interp: no function %q in module", fnName)
	}
	return it.run(rt.NewCtx(rt.NopMonitor{}), fn, x), nil
}

// budgetExceeded is the internal control panic for step-limit aborts.
type budgetExceeded struct{}

// run executes fn on x under ctx, returning its result (0 for void).
func (it *Interp) run(ctx *rt.Ctx, fn *ir.Func, x []float64) float64 {
	if len(x) != fn.NParams {
		panic(fmt.Sprintf("interp: %s expects %d inputs, got %d", fn.Name, fn.NParams, len(x)))
	}
	max := it.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	it.steps = 0
	it.input = x
	var ret float64
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(budgetExceeded); ok {
					ret = math.NaN()
					return
				}
				panic(r)
			}
		}()
		ret = it.call(ctx, fn, x, max)
	}()
	return ret
}

// call executes one function activation.
func (it *Interp) call(ctx *rt.Ctx, fn *ir.Func, args []float64, max int) float64 {
	fregs := make([]float64, fn.NumRegs())
	bregs := make([]bool, fn.NumRegs())
	copy(fregs, args)

	bi := 0
	ii := 0
	for {
		it.steps++
		if it.steps > max {
			panic(budgetExceeded{})
		}
		in := &fn.Blocks[bi].Instrs[ii]
		ii++
		switch in.Op {
		case ir.ConstF:
			fregs[in.Dst] = in.Val
		case ir.ConstB:
			bregs[in.Dst] = in.BVal
		case ir.Mov:
			if fn.Kinds[in.Dst] == ir.RegB {
				bregs[in.Dst] = bregs[in.A]
			} else {
				fregs[in.Dst] = fregs[in.A]
			}
		case ir.FAdd:
			fregs[in.Dst] = ctx.Op(in.Site, fregs[in.A]+fregs[in.B])
		case ir.FSub:
			fregs[in.Dst] = ctx.Op(in.Site, fregs[in.A]-fregs[in.B])
		case ir.FMul:
			fregs[in.Dst] = ctx.Op(in.Site, fregs[in.A]*fregs[in.B])
		case ir.FDiv:
			fregs[in.Dst] = ctx.Op(in.Site, fregs[in.A]/fregs[in.B])
		case ir.FNeg:
			fregs[in.Dst] = -fregs[in.A]
		case ir.FCmp:
			bregs[in.Dst] = ctx.Cmp(in.Site, in.Pred, fregs[in.A], fregs[in.B])
		case ir.Not:
			bregs[in.Dst] = !bregs[in.A]
		case ir.Call:
			callee := it.Mod.Funcs[in.Name]
			cargs := make([]float64, len(in.Args))
			for i, a := range in.Args {
				cargs[i] = fregs[a]
			}
			v := it.call(ctx, callee, cargs, max)
			if in.Dst >= 0 {
				if fn.Kinds[in.Dst] == ir.RegB {
					bregs[in.Dst] = v != 0
				} else {
					fregs[in.Dst] = v
				}
			}
		case ir.CallBuiltin:
			var v float64
			switch len(in.Args) {
			case 1:
				v = builtin1(in.Name, fregs[in.Args[0]])
			case 2:
				v = builtin2(in.Name, fregs[in.Args[0]], fregs[in.Args[1]])
			default:
				panic("interp: builtin arity")
			}
			fregs[in.Dst] = ctx.Op(in.Site, v)
		case ir.Jmp:
			bi, ii = in.Target, 0
		case ir.CondJmp:
			if bregs[in.A] {
				bi, ii = in.Target, 0
			} else {
				bi, ii = in.Else, 0
			}
		case ir.Ret:
			if in.A >= 0 {
				if fn.Kinds[in.A] == ir.RegB {
					if bregs[in.A] {
						return 1
					}
					return 0
				}
				return fregs[in.A]
			}
			return 0
		case ir.Assert:
			if !bregs[in.A] {
				it.Failures = append(it.Failures, AssertFailure{
					Pos:   in.Pos,
					Label: in.Label,
					Input: append([]float64(nil), it.input...),
				})
			}
		default:
			panic(fmt.Sprintf("interp: unknown opcode %s", in.Op))
		}
	}
}

func builtin1(name string, a float64) float64 {
	switch name {
	case "sin":
		return math.Sin(a)
	case "cos":
		return math.Cos(a)
	case "tan":
		return math.Tan(a)
	case "sqrt":
		return math.Sqrt(a)
	case "fabs":
		return math.Abs(a)
	case "exp":
		return math.Exp(a)
	case "log":
		return math.Log(a)
	case "floor":
		return math.Floor(a)
	case "ceil":
		return math.Ceil(a)
	case "highword":
		return float64(uint32(math.Float64bits(a)>>32) & 0x7fffffff)
	}
	panic(fmt.Sprintf("interp: unknown builtin %s/1", name))
}

func builtin2(name string, a, b float64) float64 {
	switch name {
	case "pow":
		return math.Pow(a, b)
	case "fmin":
		return math.Min(a, b)
	case "fmax":
		return math.Max(a, b)
	}
	panic(fmt.Sprintf("interp: unknown builtin %s/2", name))
}
