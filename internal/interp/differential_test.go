package interp_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// The differential test generates random FPL programs together with a
// reference Go evaluation of the same computation, and checks that the
// compile→lower→interpret pipeline agrees bit for bit on random inputs.
// This is the end-to-end correctness oracle for the compiler substrate:
// any divergence in lowering order, register allocation, or branch
// semantics shows up as a float mismatch.

// genProgram builds a random program operating on parameter x and
// returns (source, reference function).
func genProgram(rng *rand.Rand) (string, func(x float64) float64) {
	g := &progGen{rng: rng}
	body, ref := g.genStmts(3, []string{"x"}, 0)
	src := "func f(x double) double {\n" + body + "    return " + g.retVar + ";\n}\n"
	return src, func(x float64) float64 {
		env := map[string]float64{"x": x}
		ref(env)
		return env[g.retVar]
	}
}

type progGen struct {
	rng    *rand.Rand
	nVars  int
	retVar string
}

// genStmts produces up to n statements; vars is the in-scope variable
// list (all double). It returns the source text and a reference
// executor mutating an environment map.
func (g *progGen) genStmts(n int, vars []string, depth int) (string, func(map[string]float64)) {
	var sb strings.Builder
	var execs []func(map[string]float64)
	local := append([]string(nil), vars...)

	count := 1 + g.rng.Intn(n)
	for i := 0; i < count; i++ {
		switch k := g.rng.Intn(4); {
		case k == 0 || len(local) == 0:
			// Declaration.
			name := fmt.Sprintf("v%d", g.nVars)
			g.nVars++
			exprSrc, exprRef := g.genExpr(local, 3)
			sb.WriteString("    var " + name + " double = " + exprSrc + ";\n")
			local = append(local, name)
			execs = append(execs, func(env map[string]float64) {
				env[name] = exprRef(env)
			})
		case k == 1 && depth < 2:
			// If/else over a comparison.
			lSrc, lRef := g.genExpr(local, 2)
			rSrc, rRef := g.genExpr(local, 2)
			op, opEval := g.genCmp()
			thenSrc, thenRef := g.genStmts(2, local, depth+1)
			elseSrc, elseRef := g.genStmts(2, local, depth+1)
			sb.WriteString("    if (" + lSrc + " " + op + " " + rSrc + ") {\n" +
				thenSrc + "    } else {\n" + elseSrc + "    }\n")
			execs = append(execs, func(env map[string]float64) {
				if opEval(lRef(env), rRef(env)) {
					thenRef(env)
				} else {
					elseRef(env)
				}
			})
		default:
			// Assignment to an existing variable.
			name := local[g.rng.Intn(len(local))]
			exprSrc, exprRef := g.genExpr(local, 3)
			sb.WriteString("    " + name + " = " + exprSrc + ";\n")
			execs = append(execs, func(env map[string]float64) {
				env[name] = exprRef(env)
			})
		}
	}
	g.retVar = local[len(local)-1]
	return sb.String(), func(env map[string]float64) {
		for _, e := range execs {
			e(env)
		}
	}
}

func (g *progGen) genCmp() (string, func(a, b float64) bool) {
	switch g.rng.Intn(6) {
	case 0:
		return "<", func(a, b float64) bool { return a < b }
	case 1:
		return "<=", func(a, b float64) bool { return a <= b }
	case 2:
		return ">", func(a, b float64) bool { return a > b }
	case 3:
		return ">=", func(a, b float64) bool { return a >= b }
	case 4:
		return "==", func(a, b float64) bool { return a == b }
	default:
		return "!=", func(a, b float64) bool { return a != b }
	}
}

// genExpr produces a random double expression over the in-scope vars.
func (g *progGen) genExpr(vars []string, depth int) (string, func(map[string]float64) float64) {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		// Leaf.
		if len(vars) > 0 && g.rng.Intn(2) == 0 {
			name := vars[g.rng.Intn(len(vars))]
			return name, func(env map[string]float64) float64 { return env[name] }
		}
		lit := []string{"0.0", "1.0", "2.0", "0.5", "3.25", "1e-8", "1e8", "7.0"}[g.rng.Intn(8)]
		var v float64
		fmt.Sscanf(lit, "%g", &v)
		return lit, func(map[string]float64) float64 { return v }
	}
	switch g.rng.Intn(7) {
	case 0, 1:
		l, lr := g.genExpr(vars, depth-1)
		r, rr := g.genExpr(vars, depth-1)
		return "(" + l + " + " + r + ")", func(env map[string]float64) float64 { return lr(env) + rr(env) }
	case 2:
		l, lr := g.genExpr(vars, depth-1)
		r, rr := g.genExpr(vars, depth-1)
		return "(" + l + " - " + r + ")", func(env map[string]float64) float64 { return lr(env) - rr(env) }
	case 3:
		l, lr := g.genExpr(vars, depth-1)
		r, rr := g.genExpr(vars, depth-1)
		return "(" + l + " * " + r + ")", func(env map[string]float64) float64 { return lr(env) * rr(env) }
	case 4:
		l, lr := g.genExpr(vars, depth-1)
		r, rr := g.genExpr(vars, depth-1)
		return "(" + l + " / " + r + ")", func(env map[string]float64) float64 { return lr(env) / rr(env) }
	case 5:
		x, xr := g.genExpr(vars, depth-1)
		return "(-" + x + ")", func(env map[string]float64) float64 { return -xr(env) }
	default:
		x, xr := g.genExpr(vars, depth-1)
		name := []string{"fabs", "sqrt", "sin", "floor"}[g.rng.Intn(4)]
		fn := map[string]func(float64) float64{
			"fabs": math.Abs, "sqrt": math.Sqrt, "sin": math.Sin, "floor": math.Floor,
		}[name]
		return name + "(" + x + ")", func(env map[string]float64) float64 { return fn(xr(env)) }
	}
}

func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20190622)) // the paper's conference date
	inputs := []float64{0, 1, -1, 0.5, 2.0, -3.25, 1e-8, 1e8, -1e300, 0.9999999999999999}

	for pi := 0; pi < 300; pi++ {
		src, ref := genProgram(rng)
		mod, err := ir.Compile(src)
		if err != nil {
			t.Fatalf("program %d failed to compile: %v\n%s", pi, err, src)
		}
		it := interp.New(mod)
		for _, x := range inputs {
			got, err := it.Run("f", []float64{x})
			if err != nil {
				t.Fatalf("program %d run: %v", pi, err)
			}
			want := ref(x)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("program %d diverges at x=%v: interp=%v reference=%v\n%s",
					pi, x, got, want, src)
			}
		}
	}
}

func TestDifferentialRandomInputs(t *testing.T) {
	// A second pass with random inputs (including full-lattice floats)
	// over a fresh batch of programs.
	rng := rand.New(rand.NewSource(31415926))
	for pi := 0; pi < 100; pi++ {
		src, ref := genProgram(rng)
		mod, err := ir.Compile(src)
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, src)
		}
		it := interp.New(mod)
		for i := 0; i < 20; i++ {
			x := math.Float64frombits(rng.Uint64())
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			got, err := it.Run("f", []float64{x})
			if err != nil {
				t.Fatal(err)
			}
			want := ref(x)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("divergence at x=%x: interp=%v ref=%v\n%s",
					math.Float64bits(x), got, want, src)
			}
		}
	}
}
