package compile_test

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compile"
	"repro/internal/fplgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rt"
)

// The batch suite holds the lane-parallel BatchMachine to the serial
// Machine (itself pinned to the tree-walker by the differential suite,
// and re-pinned directly here): at every lane width, a batched sweep
// must be bit-identical, lane by lane, to K serial runs — results,
// monitor observation sequences, assert-failure logs, budget aborts,
// and early stops, including stops that retire single lanes mid-group.

// laneWidths is the bit-identity sweep: the contract widths {1,2,4,8,16}
// plus a non-power-of-two width to catch stride/partition assumptions.
var laneWidths = []int{1, 2, 3, 4, 8, 16}

// serialRef is one lane's expected outcome, computed on the serial VM.
type serialRef struct {
	result uint64 // result bits (NaN normalized by sameBits at compare)
	recs   []obs
	value  float64
}

func sameBits(a, b uint64) bool {
	fa, fb := math.Float64frombits(a), math.Float64frombits(b)
	return a == b || (math.IsNaN(fa) && math.IsNaN(fb))
}

// runSerial executes one input on the serial Machine under a fresh
// tracer, returning the reference outcome.
func runSerial(vm *compile.Machine, fn *compile.Func, x []float64, maxSteps, stopAt int) serialRef {
	m := &tracer{stopAt: stopAt}
	m.Reset()
	vm.MaxSteps = maxSteps
	r := vm.Run(rt.NewCtx(m), fn, x)
	recs := make([]obs, len(m.recs))
	copy(recs, m.recs)
	return serialRef{result: math.Float64bits(r), recs: recs, value: m.Value()}
}

// checkBatchWidths runs every lane width over the input battery and
// compares each lane against its serial reference. stopAts, when
// non-nil, gives input i a monitor stopping after stopAts[i] FP-op
// observations (staggered per lane, so groups retire lanes mid-sweep).
func checkBatchWidths(t *testing.T, src string, cm *compile.Module, fn *compile.Func, inputs [][]float64, maxSteps int, stopAts []int) {
	t.Helper()
	serial := cm.NewMachine()
	refs := make([]serialRef, len(inputs))
	serialFails := serialAssertLog(cm, fn, inputs, maxSteps, stopAts)
	for i, x := range inputs {
		stop := 0
		if stopAts != nil {
			stop = stopAts[i]
		}
		refs[i] = runSerial(serial, fn, x, maxSteps, stop)
	}

	for _, width := range laneWidths {
		bvm := cm.NewBatchMachine(width)
		bvm.MaxSteps = maxSteps
		out := make([]float64, width)
		for lo := 0; lo < len(inputs); lo += width {
			hi := lo + width
			if hi > len(inputs) {
				hi = len(inputs)
			}
			xs := inputs[lo:hi]
			mons := make([]rt.Monitor, len(xs))
			tracers := make([]*tracer, len(xs))
			for i := range xs {
				tr := &tracer{}
				if stopAts != nil {
					tr.stopAt = stopAts[lo+i]
				}
				tr.Reset()
				tracers[i] = tr
				mons[i] = tr
			}
			bvm.Run(mons, fn, xs, out[:len(xs)])
			for i := range xs {
				ref := refs[lo+i]
				if !sameBits(ref.result, math.Float64bits(out[i])) {
					t.Fatalf("%s(%v) width=%d lane=%d: result serial=%#x batch=%#x\n%s",
						fn.Name, xs[i], width, i, ref.result, math.Float64bits(out[i]), src)
				}
				if tracers[i].Value() != ref.value || !sameTrace(tracers[i].recs, ref.recs) {
					t.Fatalf("%s(%v) width=%d lane=%d: trace diverges (serial %d obs w=%v, batch %d obs w=%v)\n%s",
						fn.Name, xs[i], width, i, len(ref.recs), ref.value, len(tracers[i].recs), tracers[i].Value(), src)
				}
			}
		}
		compareAssertLogs(t, src, fn.Name, width, serialFails, bvm.Failures)
	}
}

// serialAssertLog collects the assert failures K serial runs emit, in
// run order — the order a batched sweep must reproduce lane by lane.
func serialAssertLog(cm *compile.Module, fn *compile.Func, inputs [][]float64, maxSteps int, stopAts []int) []compile.AssertFailure {
	vm := cm.NewMachine()
	vm.MaxSteps = maxSteps
	for i, x := range inputs {
		m := &tracer{}
		if stopAts != nil {
			m.stopAt = stopAts[i]
		}
		m.Reset()
		vm.Run(rt.NewCtx(m), fn, x)
	}
	return vm.Failures
}

func compareAssertLogs(t *testing.T, src, fn string, width int, want, got []compile.AssertFailure) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s width=%d: serial recorded %d assert failures, batch %d\n%s",
			fn, width, len(want), len(got), src)
	}
	for i := range want {
		if want[i].Pos != got[i].Pos || want[i].Label != got[i].Label ||
			fmt.Sprint(want[i].Input) != fmt.Sprint(got[i].Input) {
			t.Fatalf("%s width=%d: assert failure %d differs: serial=%v batch=%v\n%s",
				fn, width, i, want[i], got[i], src)
		}
	}
}

// checkBatchProgram runs the full battery — unlimited budget, a budget
// sweep, and staggered early stops — for one function over the input
// battery.
func checkBatchProgram(t *testing.T, src string, cm *compile.Module, fn *compile.Func, inputs [][]float64, budgets int) {
	t.Helper()
	checkBatchWidths(t, src, cm, fn, inputs, 0, nil)

	// Budget aborts: the whole battery at every small budget. Lanes in
	// one group share a step counter by construction; this pins that the
	// shared counter aborts exactly the lanes, at exactly the
	// instruction, serial execution would.
	for budget := 1; budget <= budgets; budget++ {
		checkBatchWidths(t, src, cm, fn, inputs, budget, nil)
	}

	// Early stops, staggered so different lanes of one batch stop after
	// different FP-op counts — the mid-group lane-retirement path.
	stopAts := make([]int, len(inputs))
	for i := range stopAts {
		stopAts[i] = 1 + i%5
	}
	checkBatchWidths(t, src, cm, fn, inputs, 0, stopAts)
}

// batchModule compiles src to flat code.
func batchModule(t *testing.T, src string) *compile.Module {
	t.Helper()
	mod, err := ir.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	cm, err := compile.Compile(mod)
	if err != nil {
		t.Fatalf("flat-compile: %v\n%s", err, src)
	}
	return cm
}

// TestBatchLaneIdentityFixtures runs the lane bit-identity battery over
// every testdata FPL fixture, on every function it declares.
func TestBatchLaneIdentityFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fpl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata fixtures found: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	for _, file := range files {
		srcBytes, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		src := string(srcBytes)
		mod, err := ir.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		cm := batchModule(t, src)
		for _, name := range mod.Order {
			dim := mod.Funcs[name].NParams
			if dim == 0 {
				continue
			}
			checkBatchProgram(t, src, cm, cm.Func(name), fplgen.Inputs(rng, dim), 32)
		}
	}
}

// TestBatchLaneIdentityRandom holds the batch machine to the serial VM
// over randomly generated modules: the same corpus size as the
// engine-differential random suite, at every lane width.
func TestBatchLaneIdentityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20190622))
	n := 150
	if testing.Short() {
		n = 30
	}
	for pi := 0; pi < n; pi++ {
		src := fplgen.Module(rng)
		cm := batchModule(t, src)
		inputs := fplgen.Inputs(rng, 1)[:8]
		checkBatchProgram(t, src, cm, cm.Func("f"), inputs, 24)
	}
}

// TestBatchTreeWalkerIdentity re-pins the batch machine to the
// tree-walking reference directly (not through the serial VM): weak
// distances and observation traces of a batched sweep must equal the
// tree-walker's, per lane, through the rt.Program batch entry point.
func TestBatchTreeWalkerIdentity(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fpl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata fixtures found: %v", err)
	}
	rng := rand.New(rand.NewSource(99))
	for _, file := range files {
		srcBytes, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		src := string(srcBytes)
		mod, err := ir.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		tree := interp.New(mod)
		tree.Engine = interp.EngineTree
		vm := interp.New(mod)
		vm.Engine = interp.EngineVM
		for _, name := range mod.Order {
			dim := mod.Funcs[name].NParams
			if dim == 0 {
				continue
			}
			pt, err := tree.Program(name)
			if err != nil {
				t.Fatal(err)
			}
			pv, err := vm.Program(name)
			if err != nil {
				t.Fatal(err)
			}
			if pv.RunBatch == nil {
				t.Fatalf("%s: VM-backed program has no RunBatch", name)
			}
			inputs := fplgen.Inputs(rng, dim)
			for _, width := range laneWidths {
				out := make([]float64, width)
				for lo := 0; lo < len(inputs); lo += width {
					hi := lo + width
					if hi > len(inputs) {
						hi = len(inputs)
					}
					xs := inputs[lo:hi]
					mons := make([]rt.Monitor, len(xs))
					tracers := make([]*tracer, len(xs))
					for i := range xs {
						tracers[i] = &tracer{}
						mons[i] = tracers[i]
					}
					pv.ExecuteBatch(mons, xs, out[:len(xs)])
					for i, x := range xs {
						ref := &tracer{}
						w := pt.Execute(ref, x)
						if out[i] != w || !sameTrace(tracers[i].recs, ref.recs) {
							t.Fatalf("%s(%v) width=%d lane=%d: batch diverges from tree-walker\n%s",
								name, x, width, i, src)
						}
					}
				}
			}
		}
	}
}

// TestBatchSkipFPOpPath covers the FPOpFree fast path: a boundary-style
// monitor that declares its FPOp a no-op makes the batch machine skip
// the per-lane FPOp dispatch entirely, which must not change weak
// distances or results.
func TestBatchSkipFPOpPath(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fpl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata fixtures found: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, file := range files {
		srcBytes, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		src := string(srcBytes)
		mod, err := ir.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		cm := batchModule(t, src)
		for _, name := range mod.Order {
			dim := mod.Funcs[name].NParams
			if dim == 0 {
				continue
			}
			fn := cm.Func(name)
			inputs := fplgen.Inputs(rng, dim)
			serial := cm.NewMachine()
			for _, width := range laneWidths {
				bvm := cm.NewBatchMachine(width)
				out := make([]float64, width)
				for lo := 0; lo < len(inputs); lo += width {
					hi := lo + width
					if hi > len(inputs) {
						hi = len(inputs)
					}
					xs := inputs[lo:hi]
					mons := make([]rt.Monitor, len(xs))
					bounds := make([]*skippingBoundary, len(xs))
					for i := range xs {
						bounds[i] = &skippingBoundary{}
						bounds[i].Reset()
						mons[i] = bounds[i]
					}
					bvm.Run(mons, fn, xs, out[:len(xs)])
					for i, x := range xs {
						ref := &skippingBoundary{}
						ref.Reset()
						serial.MaxSteps = 0
						r := serial.Run(rt.NewCtx(ref), fn, x)
						if !sameBits(math.Float64bits(r), math.Float64bits(out[i])) ||
							math.Float64bits(ref.Value()) != math.Float64bits(bounds[i].Value()) {
							t.Fatalf("%s(%v) width=%d lane=%d: skip-FPOp path diverges (serial r=%v w=%v, batch r=%v w=%v)\n%s",
								name, x, width, i, r, ref.Value(), out[i], bounds[i].Value(), src)
						}
					}
				}
			}
		}
	}
}

// skippingBoundary is countingBoundary plus the FPOpFree declaration,
// mirroring how internal/instrument's branch-only monitors opt into the
// batch fast path.
type skippingBoundary struct{ countingBoundary }

func (m *skippingBoundary) FPOpFree() bool { return true }

var _ rt.FPOpFree = (*skippingBoundary)(nil)
