package compile

import (
	"fmt"
	"math"

	"repro/internal/fp"
	"repro/internal/instrument"
	"repro/internal/rt"
)

// BatchMachine executes compiled code on K inputs at once in
// structure-of-arrays lanes: register row r of lane column c lives at
// fr[r*K+c], so one instruction dispatch — the step check, the decode,
// the switch — is amortized over every lane that is executing it.
//
// Correctness is defined by the serial Machine: a batched sweep must be
// bit-identical, lane by lane, to K independent Machine.Run calls —
// same results, same per-lane monitor observation sequences, same
// assert-failure logs (ordered by lane), same step-budget aborts. The
// mechanism is the lane group: a set of lanes whose control state
// (function, pc, call stack, step count) is identical because they have
// executed the same instruction sequence so far. Groups start as the
// full batch and split at divergent conditional branches; a group's
// single step counter therefore equals every member lane's serial step
// counter, so a budget abort hits exactly the lanes (and exactly the
// instruction) it would have hit serially. Lanes leave their group
// early when their monitor requests a stop or when the entry function
// returns; a dead group's column segment is simply abandoned.
//
// A group's lanes always occupy a contiguous column range [lo, hi) of
// the register arenas, so the per-instruction inner loops are plain
// contiguous slice walks — no indirection, bounds checks eliminated.
// The price is paid where it is rare instead of per instruction: a
// divergent branch stably partitions the group's columns (perm plus
// every live register row) so both halves stay contiguous. perm maps
// column to original lane, which is all that monitors, inputs, outputs
// and failure buffers ever see.
//
// Group scheduling order is unobservable: monitors, results, and
// failure buffers are all per-lane, so running the else-half of a split
// before the then-half (or vice versa) changes nothing a caller can
// see.
type BatchMachine struct {
	mod *Module

	// MaxSteps bounds instructions per lane per sweep; zero selects
	// DefaultMaxSteps. A lane exceeding the bound reports NaN, exactly
	// like the serial Machine.
	MaxSteps int

	// OnAssertFailure, when non-nil, receives every assertion violation
	// (flushed in lane order at the end of the sweep); otherwise
	// violations accumulate in Failures.
	OnAssertFailure func(AssertFailure)
	// Failures collects assertion violations when no OnAssertFailure
	// sink is installed.
	Failures []AssertFailure

	k      int               // lane capacity: columns per register row
	rows   int               // allocated register rows
	fr     []float64         // float arena; register row r, column c at [r*k+c]
	br     []bool            // bool arena, parallel to fr
	perm   []int32           // column -> original lane, partitioned with the data
	take   []bool            // per-column branch outcome / survivor scratch
	partI  []int32           // stable-partition scratch: perm spill
	partF  []float64         // stable-partition scratch: float row spill
	partB  []bool            // stable-partition scratch: bool row spill
	groups []bgroup          // pending (deferred) group stack
	cur    []frame           // call stack of the running group
	fails  [][]AssertFailure // per-lane assert buffers, flushed in lane order
	nfails int

	// bnds, when non-nil during a sweep, holds every lane's monitor as a
	// plain-configuration *instrument.Boundary: the branch loops then
	// apply the boundary product through the concrete receiver
	// (inlined), skipping the per-lane interface dispatch. bndbuf
	// retains the slice's capacity across sweeps that disable the path.
	bnds   []*instrument.Boundary
	bndbuf []*instrument.Boundary

	// res holds Sweep's program-result scratch (Sweep reports monitor
	// values; the machine-level results stay internal).
	res []float64
}

// bgroup is one deferred lane group: a column segment plus the uniform
// control state its lanes share.
type bgroup struct {
	lo, hi int // columns [lo, hi)
	fidx   int32
	base   int32
	pc     int32
	steps  int
	sp     int
	stack  []frame
}

// NewBatchMachine returns a machine executing the module's code on up
// to k lanes per sweep. Like Machine, a BatchMachine owns mutable
// per-execution state and must not be used concurrently; any number of
// machines can share one Module.
func (cm *Module) NewBatchMachine(k int) *BatchMachine {
	if k < 1 {
		k = 1
	}
	return &BatchMachine{
		mod:    cm,
		k:      k,
		perm:   make([]int32, k),
		take:   make([]bool, k),
		partI:  make([]int32, 0, k),
		partF:  make([]float64, 0, k),
		partB:  make([]bool, 0, k),
		bndbuf: make([]*instrument.Boundary, 0, k),
		fails:  make([][]AssertFailure, k),
		cur:    make([]frame, 16),
	}
}

// K returns the machine's lane capacity.
func (vm *BatchMachine) K() int { return vm.k }

// ensureRows grows the arenas to hold at least n register rows,
// preserving every live row (the layout is row-major, so a prefix copy
// keeps all existing addressing valid).
func (vm *BatchMachine) ensureRows(n int) {
	if n <= vm.rows {
		return
	}
	grow := 2*vm.rows + 64
	if grow < n {
		grow = n
	}
	nf := make([]float64, grow*vm.k)
	copy(nf, vm.fr)
	vm.fr = nf
	nb := make([]bool, grow*vm.k)
	copy(nb, vm.br)
	vm.br = nb
	vm.rows = grow
}

// Run executes fn on every input of xs (len(xs) <= K lanes), writing
// lane l's result to out[l] under mons[l]: the program result for a
// completed lane, NaN for a budget abort, 0 after a monitor stop —
// the same values K serial Machine.Run calls would produce. Monitors
// are NOT reset here (the caller owns that, mirroring Machine.Run
// under rt.Program.Execute).
func (vm *BatchMachine) Run(mons []rt.Monitor, fn *Func, xs [][]float64, out []float64) {
	K := len(xs)
	if K == 0 {
		return
	}
	if len(out) != K {
		panic("compile: xs/out length mismatch")
	}
	skipFPOp := vm.prepare(mons, fn, xs)
	vm.exec(mons, fn, xs, out, skipFPOp)
}

// Sweep is the weak-distance batch evaluation: it resets every
// monitor, executes fn on all lanes, and writes lane l's accumulated
// weak distance — mons[l].Value(), exactly what rt.Program.Execute
// returns — to w[l]. It is Run plus the monitor bracketing, with the
// reset and collection loops devirtualized on the plain-Boundary fast
// path; rt.Program.RunBatch wires to it.
func (vm *BatchMachine) Sweep(mons []rt.Monitor, fn *Func, xs [][]float64, w []float64) {
	K := len(xs)
	if K == 0 {
		return
	}
	if len(w) != K {
		panic("compile: xs/w length mismatch")
	}
	skipFPOp := vm.prepare(mons, fn, xs)
	if vm.bnds != nil {
		for _, b := range vm.bnds {
			b.ResetPlain()
		}
	} else {
		for _, m := range mons {
			m.Reset()
		}
	}
	if vm.res == nil {
		vm.res = make([]float64, vm.k)
	}
	vm.exec(mons, fn, xs, vm.res[:K], skipFPOp)
	if bn := vm.bnds; bn != nil {
		for i := range w {
			w[i] = bn[i].ValuePlain()
		}
	} else {
		for i := range w {
			w[i] = mons[i].Value()
		}
	}
}

// prepare validates the batch, loads parameters into the lane columns,
// resets the permutation, and decides the sweep's two fast paths in
// the same pass over the monitors:
//   - skipFPOp (returned): every monitor declares FPOp a pure no-op,
//     so the per-lane FPOp dispatch on arithmetic can be elided;
//   - vm.bnds: every monitor is a plain-configuration
//     *instrument.Boundary (the common case — boundary value analysis
//     sweeps), so branch loops bypass the Monitor interface entirely.
func (vm *BatchMachine) prepare(mons []rt.Monitor, fn *Func, xs [][]float64) bool {
	K := len(xs)
	if K > vm.k {
		panic(fmt.Sprintf("compile: batch of %d lanes on a %d-lane machine", K, vm.k))
	}
	if len(mons) != K {
		panic("compile: mons/xs length mismatch")
	}
	if vm.nfails > 0 { // residue from an abandoned sweep
		for i := range vm.fails {
			vm.fails[i] = vm.fails[i][:0]
		}
		vm.nfails = 0
	}

	k := vm.k
	vm.ensureRows(fn.nregs)
	if fn.zeroFrame {
		for r := 0; r < fn.nregs; r++ {
			frow := vm.fr[r*k : r*k+K]
			for i := range frow {
				frow[i] = 0
			}
			brow := vm.br[r*k : r*k+K]
			for i := range brow {
				brow[i] = false
			}
		}
	}

	fr := vm.fr
	perm := vm.perm
	np := fn.NParams
	skipFPOp := true
	bnds := vm.bndbuf[:0]
	allBnd := true
	for c := 0; c < K; c++ {
		x := xs[c]
		if len(x) != np {
			panic(fmt.Sprintf("compile: %s expects %d inputs, got %d", fn.Name, np, len(x)))
		}
		for i := range x {
			fr[i*k+c] = x[i]
		}
		perm[c] = int32(c)
		if b, ok := mons[c].(*instrument.Boundary); ok {
			// Boundary's FPOp is always a no-op, whatever its config.
			if allBnd && b.PlainConfig() {
				bnds = append(bnds, b)
			} else {
				allBnd = false
			}
			continue
		}
		allBnd = false
		if ff, ok := mons[c].(rt.FPOpFree); !ok || !ff.FPOpFree() {
			skipFPOp = false
		}
	}
	vm.bndbuf = bnds
	if allBnd && len(bnds) == K {
		vm.bnds = bnds
	} else {
		vm.bnds = nil
	}
	return skipFPOp
}

// exec runs the prepared batch: the group loop plus the lane-ordered
// assert flush.
func (vm *BatchMachine) exec(mons []rt.Monitor, fn *Func, xs [][]float64, out []float64, skipFPOp bool) {
	K := len(xs)
	vm.groups = vm.groups[:0]
	vm.pushGroup(0, K, fn.idx, 0, 0, 0, nil, 0)
	for len(vm.groups) > 0 {
		n := len(vm.groups) - 1
		g := vm.groups[n]
		vm.groups = vm.groups[:n]
		// Copy the group's call stack into the running buffer: the slot
		// (and its slice) may be reused by a push while this group runs.
		if cap(vm.cur) < g.sp {
			vm.cur = make([]frame, 2*g.sp+8)
		}
		copy(vm.cur[:g.sp], g.stack[:g.sp])
		vm.runGroup(mons, g, xs, out, skipFPOp)
	}

	if vm.nfails > 0 {
		for ln := 0; ln < K; ln++ {
			for _, fail := range vm.fails[ln] {
				if vm.OnAssertFailure != nil {
					vm.OnAssertFailure(fail)
				} else {
					vm.Failures = append(vm.Failures, fail)
				}
			}
			vm.fails[ln] = vm.fails[ln][:0]
		}
		vm.nfails = 0
	}
}

// pushGroup defers a lane group, copying the given call stack prefix
// into the slot (slot capacity is reused across sweeps).
func (vm *BatchMachine) pushGroup(lo, hi int, fidx int32, base int, pc int32, steps int, stack []frame, sp int) {
	if len(vm.groups) < cap(vm.groups) {
		vm.groups = vm.groups[:len(vm.groups)+1]
	} else {
		vm.groups = append(vm.groups, bgroup{})
	}
	g := &vm.groups[len(vm.groups)-1]
	g.lo, g.hi = lo, hi
	g.fidx, g.base, g.pc = fidx, int32(base), pc
	g.steps, g.sp = steps, sp
	g.stack = append(g.stack[:0], stack[:sp]...)
}

// runGroup executes one lane group to completion, splitting off
// deferred groups at divergent branches. It mirrors Machine.exec
// instruction for instruction; every step-accounting comment there
// applies here with "per run" replaced by "per group".
func (vm *BatchMachine) runGroup(mons []rt.Monitor, g bgroup, xs [][]float64, out []float64, skipFPOp bool) {
	lo, hi := g.lo, g.hi
	f := vm.mod.list[g.fidx]
	base := int(g.base)
	pc := int(g.pc)
	steps := g.steps
	sp := g.sp
	stack := vm.cur
	code := f.code
	list := vm.mod.list
	fr := vm.fr
	br := vm.br
	k := vm.k
	bnds := vm.bnds
	limit := vm.MaxSteps
	if limit == 0 {
		limit = DefaultMaxSteps
	}

	// abortBudget marks every lane of the group as budget-aborted.
	abortBudget := func() {
		for _, ln := range vm.perm[lo:hi] {
			out[ln] = math.NaN()
		}
	}

	for {
		steps++
		if steps > limit {
			abortBudget()
			vm.cur = stack
			return
		}
		in := &code[pc]
		pc++
		switch in.op {
		case opConstF:
			c := f.consts[in.a]
			o := (base + int(in.dst)) * k
			d := fr[o+lo : o+hi]
			for i := range d {
				d[i] = c
			}
		case opConstB:
			v := in.a != 0
			o := (base + int(in.dst)) * k
			d := br[o+lo : o+hi]
			for i := range d {
				d[i] = v
			}
		case opMovF:
			so := (base + int(in.a)) * k
			do := (base + int(in.dst)) * k
			copy(fr[do+lo:do+hi], fr[so+lo:so+hi])
		case opMovB:
			so := (base + int(in.a)) * k
			do := (base + int(in.dst)) * k
			copy(br[do+lo:do+hi], br[so+lo:so+hi])
		case opFAdd, opFSub, opFMul, opFDiv:
			ao := (base + int(in.a)) * k
			bo := (base + int(in.b)) * k
			do := (base + int(in.dst)) * k
			d := fr[do+lo : do+hi]
			a := fr[ao+lo : ao+hi][:len(d)]
			b := fr[bo+lo : bo+hi][:len(d)]
			if skipFPOp {
				switch in.op {
				case opFAdd:
					for i := range d {
						d[i] = a[i] + b[i]
					}
				case opFSub:
					for i := range d {
						d[i] = a[i] - b[i]
					}
				case opFMul:
					for i := range d {
						d[i] = a[i] * b[i]
					}
				default:
					for i := range d {
						d[i] = a[i] / b[i]
					}
				}
				break
			}
			site := int(in.site)
			op := in.op
			pm := vm.perm[lo:hi][:len(d)]
			take := vm.take
			stopped := false
			for i := range d {
				var v float64
				switch op {
				case opFAdd:
					v = a[i] + b[i]
				case opFSub:
					v = a[i] - b[i]
				case opFMul:
					v = a[i] * b[i]
				default:
					v = a[i] / b[i]
				}
				if mons[pm[i]].FPOp(site, v) {
					out[pm[i]] = 0
					take[lo+i] = false
					stopped = true
					continue
				}
				d[i] = v
				take[lo+i] = true
			}
			if stopped {
				hi = vm.partitionCols(lo, hi, base+f.nregs)
				if lo == hi {
					vm.cur = stack
					return
				}
			}
		case opAddCL, opAddCR, opSubCL, opSubCR, opMulCL, opMulCR, opDivCL, opDivCR:
			// Fused constant-load + arithmetic: the dispatch check above
			// covered the constant's step; this is the operation's step,
			// checked before the observation.
			steps++
			if steps > limit {
				abortBudget()
				vm.cur = stack
				return
			}
			ao := (base + int(in.a)) * k
			do := (base + int(in.dst)) * k
			c := f.consts[in.b]
			d := fr[do+lo : do+hi]
			a := fr[ao+lo : ao+hi][:len(d)]
			op := in.op
			if skipFPOp {
				// Operand order mirrors the serial machine exactly: even
				// commutative ops must not swap (NaN-payload bit-identity).
				switch op {
				case opAddCL:
					for i := range d {
						d[i] = c + a[i]
					}
				case opAddCR:
					for i := range d {
						d[i] = a[i] + c
					}
				case opSubCL:
					for i := range d {
						d[i] = c - a[i]
					}
				case opSubCR:
					for i := range d {
						d[i] = a[i] - c
					}
				case opMulCL:
					for i := range d {
						d[i] = c * a[i]
					}
				case opMulCR:
					for i := range d {
						d[i] = a[i] * c
					}
				case opDivCL:
					for i := range d {
						d[i] = c / a[i]
					}
				default:
					for i := range d {
						d[i] = a[i] / c
					}
				}
				break
			}
			site := int(in.site)
			pm := vm.perm[lo:hi][:len(d)]
			take := vm.take
			stopped := false
			for i := range d {
				v := fusedConstOp(op, c, a[i])
				if mons[pm[i]].FPOp(site, v) {
					out[pm[i]] = 0
					take[lo+i] = false
					stopped = true
					continue
				}
				d[i] = v
				take[lo+i] = true
			}
			if stopped {
				hi = vm.partitionCols(lo, hi, base+f.nregs)
				if lo == hi {
					vm.cur = stack
					return
				}
			}
		case opFNeg:
			so := (base + int(in.a)) * k
			do := (base + int(in.dst)) * k
			d := fr[do+lo : do+hi]
			s := fr[so+lo : so+hi][:len(d)]
			for i := range d {
				d[i] = -s[i]
			}
		case opFCmp:
			ao := (base + int(in.a)) * k
			bo := (base + int(in.b)) * k
			do := (base + int(in.dst)) * k
			d := br[do+lo : do+hi]
			a := fr[ao+lo : ao+hi][:len(d)]
			b := fr[bo+lo : bo+hi][:len(d)]
			site, pred := int(in.site), in.pred
			pm := vm.perm[lo:hi][:len(d)]
			if bnds != nil {
				for i := range d {
					av, bv := a[i], b[i]
					dist := fp.Abs(av - bv)
					if !(dist <= fp.MaxFloat) {
						dist = fp.BoundaryDist(av, bv)
					}
					bnds[pm[i]].MulFactor(dist)
					d[i] = pred.Eval(av, bv)
				}
			} else {
				for i := range d {
					av, bv := a[i], b[i]
					mons[pm[i]].Branch(site, pred, av, bv)
					d[i] = pred.Eval(av, bv)
				}
			}
		case opCmpCL:
			steps++
			if steps > limit {
				abortBudget()
				vm.cur = stack
				return
			}
			c := f.consts[in.b]
			so := (base + int(in.a)) * k
			do := (base + int(in.dst)) * k
			d := br[do+lo : do+hi]
			b := fr[so+lo : so+hi][:len(d)]
			site, pred := int(in.site), in.pred
			pm := vm.perm[lo:hi][:len(d)]
			if bnds != nil {
				for i := range d {
					bv := b[i]
					dist := fp.Abs(c - bv)
					if !(dist <= fp.MaxFloat) {
						dist = fp.BoundaryDist(c, bv)
					}
					bnds[pm[i]].MulFactor(dist)
					d[i] = pred.Eval(c, bv)
				}
			} else {
				for i := range d {
					bv := b[i]
					mons[pm[i]].Branch(site, pred, c, bv)
					d[i] = pred.Eval(c, bv)
				}
			}
		case opCmpCR:
			steps++
			if steps > limit {
				abortBudget()
				vm.cur = stack
				return
			}
			so := (base + int(in.a)) * k
			do := (base + int(in.dst)) * k
			c := f.consts[in.b]
			d := br[do+lo : do+hi]
			a := fr[so+lo : so+hi][:len(d)]
			site, pred := int(in.site), in.pred
			pm := vm.perm[lo:hi][:len(d)]
			if bnds != nil {
				for i := range d {
					av := a[i]
					dist := fp.Abs(av - c)
					if !(dist <= fp.MaxFloat) {
						dist = fp.BoundaryDist(av, c)
					}
					bnds[pm[i]].MulFactor(dist)
					d[i] = pred.Eval(av, c)
				}
			} else {
				for i := range d {
					av := a[i]
					mons[pm[i]].Branch(site, pred, av, c)
					d[i] = pred.Eval(av, c)
				}
			}
		case opFCmpJmp:
			ao := (base + int(in.a)) * k
			bo := (base + int(in.b)) * k
			a := fr[ao+lo : ao+hi]
			b := fr[bo+lo : bo+hi][:len(a)]
			site, pred := int(in.site), in.pred
			pm := vm.perm[lo:hi][:len(a)]
			take := vm.take
			nt := 0
			if bnds != nil {
				for i := range a {
					av, bv := a[i], b[i]
					dist := fp.Abs(av - bv)
					if !(dist <= fp.MaxFloat) {
						dist = fp.BoundaryDist(av, bv)
					}
					bnds[pm[i]].MulFactor(dist)
					t := pred.Eval(av, bv)
					take[lo+i] = t
					if t {
						nt++
					}
				}
			} else {
				for i := range a {
					av, bv := a[i], b[i]
					mons[pm[i]].Branch(site, pred, av, bv)
					t := pred.Eval(av, bv)
					take[lo+i] = t
					if t {
						nt++
					}
				}
			}
			steps++ // the fused CondJmp's step; checked at next dispatch
			if nt == hi-lo {
				pc = int(in.target)
				continue
			}
			if nt == 0 {
				pc = int(in.els)
				continue
			}
			hi = vm.split(lo, hi, f.idx, base, base+f.nregs, int32(in.els), steps, stack, sp)
			pc = int(in.target)
			continue
		case opCmpCLJmp, opCmpCRJmp:
			steps++
			if steps > limit {
				abortBudget()
				vm.cur = stack
				return
			}
			so := (base + int(in.a)) * k
			s := fr[so+lo : so+hi]
			c := f.consts[in.b]
			site, pred := int(in.site), in.pred
			pm := vm.perm[lo:hi][:len(s)]
			take := vm.take
			nt := 0
			if bnds != nil {
				// Boundary's factor |a-b| is symmetric, so the CL/CR
				// operand order only matters for pred.Eval — but mirror
				// BoundaryDist's argument order anyway on the cold path.
				if in.op == opCmpCLJmp {
					for i := range s {
						bv := s[i]
						dist := fp.Abs(c - bv)
						if !(dist <= fp.MaxFloat) {
							dist = fp.BoundaryDist(c, bv)
						}
						bnds[pm[i]].MulFactor(dist)
						t := pred.Eval(c, bv)
						take[lo+i] = t
						if t {
							nt++
						}
					}
				} else {
					for i := range s {
						av := s[i]
						dist := fp.Abs(av - c)
						if !(dist <= fp.MaxFloat) {
							dist = fp.BoundaryDist(av, c)
						}
						bnds[pm[i]].MulFactor(dist)
						t := pred.Eval(av, c)
						take[lo+i] = t
						if t {
							nt++
						}
					}
				}
			} else if in.op == opCmpCLJmp {
				for i := range s {
					bv := s[i]
					mons[pm[i]].Branch(site, pred, c, bv)
					t := pred.Eval(c, bv)
					take[lo+i] = t
					if t {
						nt++
					}
				}
			} else {
				for i := range s {
					av := s[i]
					mons[pm[i]].Branch(site, pred, av, c)
					t := pred.Eval(av, c)
					take[lo+i] = t
					if t {
						nt++
					}
				}
			}
			steps++
			if nt == hi-lo {
				pc = int(in.target)
				continue
			}
			if nt == 0 {
				pc = int(in.els)
				continue
			}
			hi = vm.split(lo, hi, f.idx, base, base+f.nregs, int32(in.els), steps, stack, sp)
			pc = int(in.target)
			continue
		case opNot:
			so := (base + int(in.a)) * k
			do := (base + int(in.dst)) * k
			d := br[do+lo : do+hi]
			s := br[so+lo : so+hi][:len(d)]
			for i := range d {
				d[i] = !s[i]
			}
		case opBuiltin1:
			fn1 := f.b1[in.target]
			so := (base + int(in.a)) * k
			do := (base + int(in.dst)) * k
			d := fr[do+lo : do+hi]
			s := fr[so+lo : so+hi][:len(d)]
			if skipFPOp {
				for i := range d {
					d[i] = fn1(s[i])
				}
				break
			}
			site := int(in.site)
			pm := vm.perm[lo:hi][:len(d)]
			take := vm.take
			stopped := false
			for i := range d {
				v := fn1(s[i])
				if mons[pm[i]].FPOp(site, v) {
					out[pm[i]] = 0
					take[lo+i] = false
					stopped = true
					continue
				}
				d[i] = v
				take[lo+i] = true
			}
			if stopped {
				hi = vm.partitionCols(lo, hi, base+f.nregs)
				if lo == hi {
					vm.cur = stack
					return
				}
			}
		case opBuiltin2:
			fn2 := f.b2[in.target]
			ao := (base + int(in.a)) * k
			bo := (base + int(in.b)) * k
			do := (base + int(in.dst)) * k
			d := fr[do+lo : do+hi]
			a := fr[ao+lo : ao+hi][:len(d)]
			b := fr[bo+lo : bo+hi][:len(d)]
			if skipFPOp {
				for i := range d {
					d[i] = fn2(a[i], b[i])
				}
				break
			}
			site := int(in.site)
			pm := vm.perm[lo:hi][:len(d)]
			take := vm.take
			stopped := false
			for i := range d {
				v := fn2(a[i], b[i])
				if mons[pm[i]].FPOp(site, v) {
					out[pm[i]] = 0
					take[lo+i] = false
					stopped = true
					continue
				}
				d[i] = v
				take[lo+i] = true
			}
			if stopped {
				hi = vm.partitionCols(lo, hi, base+f.nregs)
				if lo == hi {
					vm.cur = stack
					return
				}
			}
		case opCallF, opCallB, opCallVoid:
			ci := &f.calls[in.a]
			callee := ci.fn
			cb := base + f.nregs
			vm.ensureRows(cb + callee.nregs)
			// The arenas may have moved; re-fetch before touching them.
			fr = vm.fr
			br = vm.br
			if callee.zeroFrame {
				// Zero only this group's lane columns: rows past cb may
				// hold live activations of OTHER groups' lanes (groups at
				// equal depth share row space; columns are disjoint).
				for r := cb; r < cb+callee.nregs; r++ {
					frow := fr[r*k+lo : r*k+hi]
					for i := range frow {
						frow[i] = 0
					}
					brow := br[r*k+lo : r*k+hi]
					for i := range brow {
						brow[i] = false
					}
				}
			}
			for ai, arg := range ci.args {
				so := (base + int(arg)) * k
				do := (cb + ai) * k
				copy(fr[do+lo:do+hi], fr[so+lo:so+hi])
			}
			if sp == len(stack) {
				stack = append(stack, make([]frame, len(stack)+8)...)
			}
			top := &stack[sp]
			sp++
			top.fidx, top.base, top.pc = f.idx, int32(base), int32(pc)
			top.dst, top.op, top.extra = in.dst, in.op, in.extra
			f, base, pc = callee, cb, 0
			code = f.code
			continue // in.extra is charged at return, not at call
		case opJmp:
			pc = int(in.target)
			continue
		case opCondJmp:
			so := (base + int(in.a)) * k
			s := br[so+lo : so+hi]
			nt := 0
			for i := range s {
				if s[i] {
					nt++
				}
			}
			if nt == hi-lo {
				pc = int(in.target)
				continue
			}
			if nt == 0 {
				pc = int(in.els)
				continue
			}
			take := vm.take
			for i := range s {
				take[lo+i] = s[i]
			}
			hi = vm.split(lo, hi, f.idx, base, base+f.nregs, int32(in.els), steps, stack, sp)
			pc = int(in.target)
			continue
		case opRetF, opRetB, opRetVoid:
			if sp == 0 {
				pm := vm.perm[lo:hi]
				switch in.op {
				case opRetF:
					so := (base + int(in.a)) * k
					s := fr[so+lo : so+hi][:len(pm)]
					for i := range pm {
						out[pm[i]] = s[i]
					}
				case opRetB:
					so := (base + int(in.a)) * k
					s := br[so+lo : so+hi][:len(pm)]
					for i := range pm {
						if s[i] {
							out[pm[i]] = 1
						} else {
							out[pm[i]] = 0
						}
					}
				default:
					for i := range pm {
						out[pm[i]] = 0
					}
				}
				vm.cur = stack
				return
			}
			sp--
			top := &stack[sp]
			caller := list[top.fidx]
			nbase := int(top.base)
			// Caller rows precede callee rows, so reads from the callee
			// frame and writes to the caller's dst never overlap.
			switch top.op {
			case opCallF:
				do := (nbase + int(top.dst)) * k
				d := fr[do+lo : do+hi]
				switch in.op {
				case opRetF:
					so := (base + int(in.a)) * k
					copy(d, fr[so+lo:so+hi])
				case opRetB:
					so := (base + int(in.a)) * k
					s := br[so+lo : so+hi][:len(d)]
					for i := range d {
						if s[i] {
							d[i] = 1
						} else {
							d[i] = 0
						}
					}
				default:
					for i := range d {
						d[i] = 0
					}
				}
			case opCallB:
				do := (nbase + int(top.dst)) * k
				d := br[do+lo : do+hi]
				switch in.op {
				case opRetF:
					so := (base + int(in.a)) * k
					s := fr[so+lo : so+hi][:len(d)]
					for i := range d {
						d[i] = s[i] != 0
					}
				case opRetB:
					so := (base + int(in.a)) * k
					copy(d, br[so+lo:so+hi])
				default:
					for i := range d {
						d[i] = false
					}
				}
			}
			f, base, pc = caller, nbase, int(top.pc)
			code = f.code
			steps += int(top.extra) // mov fused into the call site
			continue
		case opAssert:
			so := (base + int(in.a)) * k
			s := br[so+lo : so+hi]
			pm := vm.perm[lo:hi][:len(s)]
			for i := range s {
				if !s[i] {
					ln := pm[i]
					info := vm.mod.asserts[in.site]
					vm.fails[ln] = append(vm.fails[ln], AssertFailure{
						Pos:   info.pos,
						Label: info.label,
						Input: append([]float64(nil), xs[ln]...),
					})
					vm.nfails++
				}
			}
		default:
			panic(fmt.Sprintf("compile: unknown opcode %d", in.op))
		}
		// Deferred charge of a post-observation fused sub-step (a mov
		// folded into the producing instruction); the next dispatch
		// check accounts for it before anything observable happens.
		steps += int(in.extra)
	}
}

// partitionCols stably moves the take[c]-true columns of [lo, hi) to
// the front of the segment — across perm and every one of the first
// liveRows register rows of both arenas — and returns the boundary w:
// the kept half is [lo, w), the rest [w, hi) in original order. Only
// columns inside [lo, hi) are touched, so other groups' segments (and
// their deeper frames, which live in disjoint columns) are unaffected.
func (vm *BatchMachine) partitionCols(lo, hi, liveRows int) int {
	take := vm.take
	perm := vm.perm
	w := lo
	pi := vm.partI[:0]
	for c := lo; c < hi; c++ {
		if take[c] {
			perm[w] = perm[c]
			w++
		} else {
			pi = append(pi, perm[c])
		}
	}
	copy(perm[w:hi], pi)
	if w == lo || w == hi {
		return w // identity: no data movement needed
	}
	k := vm.k
	for r := 0; r < liveRows; r++ {
		row := vm.fr[r*k:]
		rw := lo
		pf := vm.partF[:0]
		for c := lo; c < hi; c++ {
			if take[c] {
				row[rw] = row[c]
				rw++
			} else {
				pf = append(pf, row[c])
			}
		}
		copy(row[rw:hi], pf)
		brow := vm.br[r*k:]
		rw = lo
		pb := vm.partB[:0]
		for c := lo; c < hi; c++ {
			if take[c] {
				brow[rw] = brow[c]
				rw++
			} else {
				pb = append(pb, brow[c])
			}
		}
		copy(brow[rw:hi], pb)
	}
	return w
}

// split stably partitions the group's columns by vm.take, defers the
// not-taken half as a new group continuing at elsPC with the current
// control state, and returns the new hi of the taken half.
func (vm *BatchMachine) split(lo, hi int, fidx int32, base, liveRows int, elsPC int32, steps int, stack []frame, sp int) int {
	w := vm.partitionCols(lo, hi, liveRows)
	vm.pushGroup(w, hi, fidx, base, elsPC, steps, stack, sp)
	return w
}

// fusedConstOp applies one fused constant-operand arithmetic opcode:
// c is the constant, r the register operand (mirroring Machine.exec's
// inner switch).
func fusedConstOp(op opcode, c, r float64) float64 {
	switch op {
	case opAddCL:
		return c + r
	case opAddCR:
		return r + c
	case opSubCL:
		return c - r
	case opSubCR:
		return r - c
	case opMulCL:
		return c * r
	case opMulCR:
		return r * c
	case opDivCL:
		return c / r
	default:
		return r / c
	}
}
