package compile_test

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/ir"
)

// TestFusionShapes pins the peephole results on the canonical Fig. 2
// program: constant loads fold into compares and arithmetic, movs
// retarget producers, compares fuse with their conditional jumps, and
// the frame needs no zeroing. 17 tree-walker steps become 8 flat
// instructions (with identical step accounting, enforced by the
// differential suite).
func TestFusionShapes(t *testing.T) {
	mod, err := ir.Compile(`
func prog(x double) {
    if (x <= 1.0) {
        x = x + 1.0;
    }
    var y double = x * x;
    if (y <= 4.0) {
        x = x - 1.0;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := compile.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	dis := cm.Disasm("prog")
	for _, want := range []string{
		"cmpcrjmp", // const + compare + conditional jump fused
		"addcr",    // const + add fused, mov retargeted (extra=1)
		"subcr",    // const + sub fused
		"fmul",     // x*x stays a plain op (no constant operand)
		"zero=false",
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
	if n := strings.Count(dis, "\n") - 1; n != 8 {
		t.Errorf("fig2 compiled to %d instructions, want 8:\n%s", n, dis)
	}
	if strings.Contains(dis, "constf") {
		t.Errorf("unfused constant load remains:\n%s", dis)
	}
}
