package compile

import (
	"fmt"
	"math"

	"repro/internal/lang"
	"repro/internal/rt"
)

// AssertFailure records a violated assert statement during a run.
type AssertFailure struct {
	Pos   lang.Pos
	Label string
	Input []float64
}

func (a AssertFailure) String() string {
	return fmt.Sprintf("%s: assertion %q violated with input %v", a.Pos, a.Label, a.Input)
}

// status is the non-local control outcome of a run. Both abort kinds
// unwind through ordinary returns — the flat-code engine has no
// defer/recover on its execution path.
type status uint8

const (
	statusOK     status = iota
	statusBudget        // step budget exhausted
	statusStop          // monitor requested early termination
)

// frame is one suspended caller activation on the machine's explicit
// call stack (execution is threaded, not Go-recursive). It is
// deliberately pointer-free — the function is recorded by module index —
// so pushing frames incurs no GC write barriers.
type frame struct {
	fidx  int32
	base  int32
	pc    int32
	dst   int32  // result capture register of the call instruction
	op    opcode // opCallF/opCallB/opCallVoid
	extra uint8  // deferred step charge of a mov fused into the call
}

// Machine executes compiled code. It owns all per-execution mutable
// state — the frame arena, the call stack, the step counter, the
// failure log — so one Machine must not be used concurrently, but any
// number of Machines can share one Module. The arena and stack grow on
// first use and are reused by every subsequent run: steady-state
// execution performs no heap allocation.
type Machine struct {
	mod *Module

	// MaxSteps bounds instructions per execution; zero selects
	// DefaultMaxSteps. A run that exceeds the bound is abandoned and
	// reports NaN, exactly like the tree-walker.
	MaxSteps int

	// OnAssertFailure, when non-nil, receives every assertion violation;
	// otherwise violations accumulate in Failures.
	OnAssertFailure func(AssertFailure)
	// Failures collects assertion violations when no OnAssertFailure
	// sink is installed.
	Failures []AssertFailure

	fr    []float64 // float frame arena; an activation occupies [base, base+nregs)
	br    []bool    // bool frame arena, parallel to fr
	stack []frame   // suspended callers
	input []float64
}

// NewMachine returns a machine executing the module's code.
func (cm *Module) NewMachine() *Machine {
	return &Machine{mod: cm, stack: make([]frame, 16)}
}

// Run executes fn on x under ctx, returning its result (0 for void
// functions, 1/0 for bool results, NaN when the step budget is
// exceeded). Monitor early stops unwind through ordinary returns (the
// result is then meaningless, exactly as with the tree-walker's
// abandoned panic value — rt.Program.Execute reads the monitor, not the
// return value).
func (vm *Machine) Run(ctx *rt.Ctx, fn *Func, x []float64) float64 {
	if len(x) != fn.NParams {
		panic(fmt.Sprintf("compile: %s expects %d inputs, got %d", fn.Name, fn.NParams, len(x)))
	}
	vm.input = x
	vm.ensure(fn.nregs)
	// Fresh frame with parameters in registers 0..NParams-1. Zeroing is
	// skipped when the def-before-use analysis proved stale contents
	// unobservable; otherwise this reproduces the tree-walker's
	// make()+copy initial state.
	if fn.zeroFrame {
		fr := vm.fr[:fn.nregs]
		for i := range fr {
			fr[i] = 0
		}
		br := vm.br[:fn.nregs]
		for i := range br {
			br[i] = false
		}
	}
	for i, v := range x {
		vm.fr[i] = v
	}
	v, st := vm.exec(ctx.Monitor(), fn)
	if st == statusBudget {
		return math.NaN()
	}
	return v
}

// ensure grows the frame arena to hold at least n registers, preserving
// the contents of every live activation frame.
func (vm *Machine) ensure(n int) {
	if n <= len(vm.fr) {
		return
	}
	grow := 2*len(vm.fr) + 64
	if grow < n {
		grow = n
	}
	nf := make([]float64, grow)
	copy(nf, vm.fr)
	vm.fr = nf
	nb := make([]bool, grow)
	copy(nb, vm.br)
	vm.br = nb
}

// exec is the threaded dispatch loop. Calls push the caller onto an
// explicit frame stack instead of recursing, so the step counter stays
// in a register for the whole run and deep FPL recursion cannot grow
// the Go stack.
//
// Step accounting matches the tree-walker exactly. Fused instructions
// carry the steps of the instructions they replaced: a pre-observation
// sub-step performs an explicit budget check (an abort must land before
// the observation, as it would have in the tree-walker), while
// post-observation sub-steps are charged via in.extra without a check —
// the next dispatch check fires before anything else observable
// happens, so the abort point is indistinguishable.
func (vm *Machine) exec(mon rt.Monitor, fn *Func) (float64, status) {
	f := fn
	base := 0
	code := f.code
	fr := vm.fr[base : base+f.nregs]
	br := vm.br[base : base+f.nregs]
	list := vm.mod.list
	stack := vm.stack
	sp := 0
	limit := vm.MaxSteps
	if limit == 0 {
		limit = DefaultMaxSteps
	}
	steps := 0
	pc := 0
	for {
		steps++
		if steps > limit {
			vm.stack = stack[:cap(stack)]
			return 0, statusBudget
		}
		in := &code[pc]
		pc++
		switch in.op {
		case opConstF:
			fr[in.dst] = f.consts[in.a]
		case opConstB:
			br[in.dst] = in.a != 0
		case opMovF:
			fr[in.dst] = fr[in.a]
		case opMovB:
			br[in.dst] = br[in.a]
		case opFAdd:
			v := fr[in.a] + fr[in.b]
			if mon.FPOp(int(in.site), v) {
				vm.stack = stack[:cap(stack)]
				return 0, statusStop
			}
			fr[in.dst] = v
		case opFSub:
			v := fr[in.a] - fr[in.b]
			if mon.FPOp(int(in.site), v) {
				vm.stack = stack[:cap(stack)]
				return 0, statusStop
			}
			fr[in.dst] = v
		case opFMul:
			v := fr[in.a] * fr[in.b]
			if mon.FPOp(int(in.site), v) {
				vm.stack = stack[:cap(stack)]
				return 0, statusStop
			}
			fr[in.dst] = v
		case opFDiv:
			v := fr[in.a] / fr[in.b]
			if mon.FPOp(int(in.site), v) {
				vm.stack = stack[:cap(stack)]
				return 0, statusStop
			}
			fr[in.dst] = v
		case opAddCL, opAddCR, opSubCL, opSubCR, opMulCL, opMulCR, opDivCL, opDivCR:
			// Fused constant-load + arithmetic: the dispatch check above
			// covered the constant's step; this is the operation's step,
			// checked before the observation.
			steps++
			if steps > limit {
				vm.stack = stack[:cap(stack)]
				return 0, statusBudget
			}
			r := fr[in.a]
			k := f.consts[in.b]
			var v float64
			switch in.op {
			case opAddCL:
				v = k + r
			case opAddCR:
				v = r + k
			case opSubCL:
				v = k - r
			case opSubCR:
				v = r - k
			case opMulCL:
				v = k * r
			case opMulCR:
				v = r * k
			case opDivCL:
				v = k / r
			default:
				v = r / k
			}
			if mon.FPOp(int(in.site), v) {
				vm.stack = stack[:cap(stack)]
				return 0, statusStop
			}
			fr[in.dst] = v
		case opFNeg:
			fr[in.dst] = -fr[in.a]
		case opFCmp:
			a, b := fr[in.a], fr[in.b]
			mon.Branch(int(in.site), in.pred, a, b)
			br[in.dst] = in.pred.Eval(a, b)
		case opCmpCL:
			steps++
			if steps > limit {
				vm.stack = stack[:cap(stack)]
				return 0, statusBudget
			}
			k, b := f.consts[in.b], fr[in.a]
			mon.Branch(int(in.site), in.pred, k, b)
			br[in.dst] = in.pred.Eval(k, b)
		case opCmpCR:
			steps++
			if steps > limit {
				vm.stack = stack[:cap(stack)]
				return 0, statusBudget
			}
			a, k := fr[in.a], f.consts[in.b]
			mon.Branch(int(in.site), in.pred, a, k)
			br[in.dst] = in.pred.Eval(a, k)
		case opFCmpJmp:
			a, b := fr[in.a], fr[in.b]
			mon.Branch(int(in.site), in.pred, a, b)
			steps++ // the fused CondJmp's step; checked at next dispatch
			if in.pred.Eval(a, b) {
				pc = int(in.target)
			} else {
				pc = int(in.els)
			}
			continue
		case opCmpCLJmp:
			steps++
			if steps > limit {
				vm.stack = stack[:cap(stack)]
				return 0, statusBudget
			}
			k, b := f.consts[in.b], fr[in.a]
			mon.Branch(int(in.site), in.pred, k, b)
			steps++
			if in.pred.Eval(k, b) {
				pc = int(in.target)
			} else {
				pc = int(in.els)
			}
			continue
		case opCmpCRJmp:
			steps++
			if steps > limit {
				vm.stack = stack[:cap(stack)]
				return 0, statusBudget
			}
			a, k := fr[in.a], f.consts[in.b]
			mon.Branch(int(in.site), in.pred, a, k)
			steps++
			if in.pred.Eval(a, k) {
				pc = int(in.target)
			} else {
				pc = int(in.els)
			}
			continue
		case opNot:
			br[in.dst] = !br[in.a]
		case opBuiltin1:
			v := f.b1[in.target](fr[in.a])
			if mon.FPOp(int(in.site), v) {
				vm.stack = stack[:cap(stack)]
				return 0, statusStop
			}
			fr[in.dst] = v
		case opBuiltin2:
			v := f.b2[in.target](fr[in.a], fr[in.b])
			if mon.FPOp(int(in.site), v) {
				vm.stack = stack[:cap(stack)]
				return 0, statusStop
			}
			fr[in.dst] = v
		case opCallF, opCallB, opCallVoid:
			ci := &f.calls[in.a]
			callee := ci.fn
			cb := base + f.nregs
			vm.ensure(cb + callee.nregs)
			// The arena may have moved; re-slice before touching it.
			fr = vm.fr[base : base+f.nregs]
			if callee.zeroFrame {
				cfr := vm.fr[cb : cb+callee.nregs]
				for i := range cfr {
					cfr[i] = 0
				}
				cbr := vm.br[cb : cb+callee.nregs]
				for i := range cbr {
					cbr[i] = false
				}
			}
			cfr := vm.fr[cb : cb+callee.nregs]
			for i, a := range ci.args {
				cfr[i] = fr[a]
			}
			if sp == len(stack) {
				stack = append(stack, make([]frame, len(stack))...)
			}
			top := &stack[sp]
			sp++
			top.fidx, top.base, top.pc = f.idx, int32(base), int32(pc)
			top.dst, top.op, top.extra = in.dst, in.op, in.extra
			f, base, pc = callee, cb, 0
			code = f.code
			fr = cfr
			br = vm.br[base : base+f.nregs]
			continue // in.extra is charged at return, not at call
		case opJmp:
			pc = int(in.target)
			continue
		case opCondJmp:
			if br[in.a] {
				pc = int(in.target)
			} else {
				pc = int(in.els)
			}
			continue
		case opRetF, opRetB, opRetVoid:
			var v float64
			if in.op == opRetF {
				v = fr[in.a]
			} else if in.op == opRetB && br[in.a] {
				v = 1
			}
			if sp == 0 {
				vm.stack = stack
				return v, statusOK
			}
			sp--
			top := &stack[sp]
			f, base, pc = list[top.fidx], int(top.base), int(top.pc)
			code = f.code
			fr = vm.fr[base : base+f.nregs]
			br = vm.br[base : base+f.nregs]
			switch top.op {
			case opCallF:
				fr[top.dst] = v
			case opCallB:
				br[top.dst] = v != 0
			}
			steps += int(top.extra) // mov fused into the call site
			continue
		case opAssert:
			if !br[in.a] {
				info := vm.mod.asserts[in.site]
				fail := AssertFailure{
					Pos:   info.pos,
					Label: info.label,
					Input: append([]float64(nil), vm.input...),
				}
				if vm.OnAssertFailure != nil {
					vm.OnAssertFailure(fail)
				} else {
					vm.Failures = append(vm.Failures, fail)
				}
			}
		default:
			panic(fmt.Sprintf("compile: unknown opcode %d", in.op))
		}
		// Deferred charge of a post-observation fused sub-step (a mov
		// folded into the producing instruction); the next dispatch
		// check accounts for it before anything observable.
		steps += int(in.extra)
	}
}
