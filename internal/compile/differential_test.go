package compile_test

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fp"
	"repro/internal/fplgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rt"
)

// The differential suite holds the flat-code VM to the tree-walking
// interpreter, which is the reference semantics: identical results,
// identical monitor observation sequences (order, site IDs, predicates,
// operand bits), identical assertion failures, identical step-budget
// aborts at every budget, and identical early-stop behavior. Any
// divergence in block fusion, jump offsets, instruction fusion, or step
// accounting shows up here.

// obs is one recorded monitor observation.
type obs struct {
	branch bool
	site   int
	pred   fp.CmpOp
	a, b   uint64 // operand/result bits
}

// tracer records every observation; it can optionally request an early
// stop after a fixed number of FP-op observations.
type tracer struct {
	recs    []obs
	ops     int
	stopAt  int // stop when ops reaches stopAt (0 = never)
	stopped bool
}

func (t *tracer) Reset() {
	t.recs = t.recs[:0]
	t.ops = 0
	t.stopped = false
}

func (t *tracer) Branch(site int, op fp.CmpOp, a, b float64) {
	t.recs = append(t.recs, obs{branch: true, site: site, pred: op,
		a: math.Float64bits(a), b: math.Float64bits(b)})
}

func (t *tracer) FPOp(site int, v float64) bool {
	t.recs = append(t.recs, obs{site: site, a: math.Float64bits(v)})
	t.ops++
	if t.stopAt > 0 && t.ops >= t.stopAt {
		t.stopped = true
		return true
	}
	return false
}

func (t *tracer) Value() float64 { return float64(len(t.recs)) }

func sameTrace(a, b []obs) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// engines compiles src once and returns (tree, vm) interpreters over
// the same module.
func engines(t testing.TB, src string) (*interp.Interp, *interp.Interp) {
	t.Helper()
	mod, err := ir.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	tree := interp.New(mod)
	tree.Engine = interp.EngineTree
	vm := interp.New(mod)
	vm.Engine = interp.EngineVM
	return tree, vm
}

// checkProgram runs the full differential battery for one entry
// function on one input.
func checkProgram(t *testing.T, src, fn string, tree, vm *interp.Interp, x []float64) {
	t.Helper()

	// Result bits (uninstrumented run).
	tree.MaxSteps, vm.MaxSteps = 0, 0
	rt1, err := tree.Run(fn, x)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := vm.Run(fn, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(rt1) != math.Float64bits(rt2) &&
		!(math.IsNaN(rt1) && math.IsNaN(rt2)) {
		t.Fatalf("%s(%v): tree=%v vm=%v\n%s", fn, x, rt1, rt2, src)
	}

	// Assertion failures.
	if len(tree.Failures) != len(vm.Failures) {
		t.Fatalf("%s(%v): tree recorded %d failures, vm %d\n%s",
			fn, x, len(tree.Failures), len(vm.Failures), src)
	}
	for i := range tree.Failures {
		tf, vf := tree.Failures[i], vm.Failures[i]
		if tf.Pos != vf.Pos || tf.Label != vf.Label || fmt.Sprint(tf.Input) != fmt.Sprint(vf.Input) {
			t.Fatalf("%s(%v): failure %d differs: tree=%v vm=%v", fn, x, i, tf, vf)
		}
	}
	tree.ClearFailures()
	vm.ClearFailures()

	pt, err := tree.Program(fn)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := vm.Program(fn)
	if err != nil {
		t.Fatal(err)
	}

	// Full observation traces.
	mt, mv := &tracer{}, &tracer{}
	wt := pt.Execute(mt, x)
	wv := pv.Execute(mv, x)
	if wt != wv || !sameTrace(mt.recs, mv.recs) {
		t.Fatalf("%s(%v): trace diverges (tree %d obs w=%v, vm %d obs w=%v)\n%s",
			fn, x, len(mt.recs), wt, len(mv.recs), wv, src)
	}
	nOps := mt.ops

	// Step-budget aborts: every small budget, plus a band around the
	// run's own step count, must abort at the same point with the same
	// observation prefix and the same NaN marker.
	for budget := 1; budget <= 48; budget++ {
		tree.MaxSteps, vm.MaxSteps = budget, budget
		r1, _ := tree.Run(fn, x)
		r2, _ := vm.Run(fn, x)
		if math.Float64bits(r1) != math.Float64bits(r2) &&
			!(math.IsNaN(r1) && math.IsNaN(r2)) {
			t.Fatalf("%s(%v) budget=%d: tree=%v vm=%v\n%s", fn, x, budget, r1, r2, src)
		}
		mt.Reset()
		mv.Reset()
		pt.Execute(mt, x)
		pv.Execute(mv, x)
		if !sameTrace(mt.recs, mv.recs) {
			t.Fatalf("%s(%v) budget=%d: abort trace diverges (tree %d obs, vm %d obs)\n%s",
				fn, x, budget, len(mt.recs), len(mv.recs), src)
		}
	}
	tree.MaxSteps, vm.MaxSteps = 0, 0
	tree.ClearFailures()
	vm.ClearFailures()

	// Monitor early stops after each of the first FP-op observations:
	// both engines must deliver the identical truncated trace.
	maxStop := nOps
	if maxStop > 12 {
		maxStop = 12
	}
	for stop := 1; stop <= maxStop; stop++ {
		st, sv := &tracer{stopAt: stop}, &tracer{stopAt: stop}
		w1 := pt.Execute(st, x)
		w2 := pv.Execute(sv, x)
		if w1 != w2 || st.stopped != sv.stopped || !sameTrace(st.recs, sv.recs) {
			t.Fatalf("%s(%v) stopAt=%d: early-stop diverges\n%s", fn, x, stop, src)
		}
	}
	tree.ClearFailures()
	vm.ClearFailures()
}

// defaultInputs is the shared differential input battery, now owned by
// internal/fplgen so the fuzz harness draws the same sweep.
func defaultInputs(rng *rand.Rand, dim int) [][]float64 {
	return fplgen.Inputs(rng, dim)
}

// TestDifferentialFixtures runs the battery over every testdata FPL
// fixture, on every function it declares.
func TestDifferentialFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fpl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata fixtures found: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := ir.Compile(string(src))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		tree, vm := engines(t, string(src))
		for _, fn := range mod.Order {
			dim := mod.Funcs[fn].NParams
			if dim == 0 {
				continue
			}
			for _, x := range defaultInputs(rng, dim) {
				checkProgram(t, string(src), fn, tree, vm, x)
			}
		}
	}
}

// --- Randomized program generation ---
//
// Unlike the interp-vs-Go-reference differential test, the tree-walker
// itself is the oracle here, so the generator is free to produce any
// well-typed terminating program: nested control flow, short-circuit
// booleans, builtins, user calls (the VM threads these through its
// explicit frame stack), and asserts. The generator itself lives in
// internal/fplgen (shared with the fpfuzz harness); its default
// configuration is bit-compatible with the generator that used to live
// here, so the seed below produces the exact historical corpus.

// TestDifferentialRandom holds both engines to each other over randomly
// generated modules and random inputs.
func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20190622))
	n := 150
	if testing.Short() {
		n = 30
	}
	for pi := 0; pi < n; pi++ {
		src := fplgen.Module(rng)
		tree, vm := engines(t, src)
		inputs := defaultInputs(rng, 1)[:8]
		for _, x := range inputs {
			checkProgram(t, src, "f", tree, vm, x)
		}
	}
}

// TestDifferentialAnalysisFindings re-runs a full boundary analysis
// under both engines and asserts the findings are bit-identical: same
// seed, same weak distance values, same sampled minima.
func TestDifferentialAnalysisFindings(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "fig2.fpl"))
	if err != nil {
		t.Fatal(err)
	}
	results := make([][2]float64, 2)
	for ei, engine := range []interp.Engine{interp.EngineTree, interp.EngineVM} {
		mod, err := ir.Compile(string(src))
		if err != nil {
			t.Fatal(err)
		}
		it := interp.New(mod)
		it.Engine = engine
		p, err := it.Program("prog")
		if err != nil {
			t.Fatal(err)
		}
		// A deterministic sampling loop over the weak distance stands in
		// for a full backend run without importing internal/opt (kept
		// light; the analysis-level equivalence is covered by the
		// package tests running entirely on the VM engine).
		mon := &countingBoundary{}
		rng := rand.New(rand.NewSource(7))
		var sum float64
		var zeros int
		for i := 0; i < 5000; i++ {
			x := []float64{rng.NormFloat64() * 10}
			w := p.Execute(mon, x)
			sum += w
			if w == 0 {
				zeros++
			}
		}
		results[ei] = [2]float64{sum, float64(zeros)}
	}
	if results[0] != results[1] {
		t.Fatalf("analysis findings diverge: tree=%v vm=%v", results[0], results[1])
	}
}

// countingBoundary is a minimal boundary-style monitor (product of
// |a-b|) implemented locally to keep this package's dependencies lean.
type countingBoundary struct{ w float64 }

func (m *countingBoundary) Reset() { m.w = 1 }
func (m *countingBoundary) Branch(site int, op fp.CmpOp, a, b float64) {
	d := math.Abs(a - b)
	if math.IsNaN(d) || math.IsInf(d, 0) {
		d = math.MaxFloat64
	}
	m.w *= d
}
func (m *countingBoundary) FPOp(int, float64) bool { return false }
func (m *countingBoundary) Value() float64         { return m.w }

var _ rt.Monitor = (*tracer)(nil)
