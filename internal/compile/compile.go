// Package compile is the flat-code execution engine for IR modules: the
// compile-once / run-many half of the Reduction Kernel (§5.3). Every
// weak-distance analysis reduces to millions of black-box objective
// evaluations of one fixed program, so the per-execution path must be as
// cheap as possible. Compile translates an ir.Module once into linear
// code — basic blocks fused into a single instruction array with
// precomputed jump offsets, Call targets resolved to compiled-function
// pointers, builtins resolved to function pointers, and common
// instruction pairs fused into superinstructions with exact step
// accounting — and Machine executes that code over a reusable frame
// arena, making the steady-state execution path allocation-free with no
// map lookups, no string switches, and no defer/recover.
//
// The tree-walking interpreter in internal/interp remains the reference
// semantics: a Machine run produces bit-identical results, monitor
// observation sequences, and step-budget aborts (the differential tests
// in this package enforce it).
package compile

import (
	"fmt"

	"repro/internal/builtins"
	"repro/internal/fp"
	"repro/internal/ir"
	"repro/internal/lang"
)

// DefaultMaxSteps bounds execution so that non-terminating loops cannot
// hang an analysis; it matches the tree-walker's budget exactly.
const DefaultMaxSteps = 1_000_000

// opcode enumerates flat-code instructions. Relative to ir.Opcode, the
// kind dispatch that the tree-walker performs at run time (Mov to a
// float or bool register, Call capturing a float or bool result, Ret of
// either kind) is resolved at compile time into distinct opcodes, and
// frequent instruction pairs are fused:
//
//   - op*C{L,R}: a use-once constant load folded into the following
//     arithmetic or comparison (L/R records which operand the constant
//     was, preserving exact operand order);
//   - op*Jmp: a comparison whose use-once result feeds the immediately
//     following conditional jump;
//   - any value producer whose use-once result feeds an immediately
//     following mov is retargeted at the mov's destination (recorded in
//     instr.extra, there is no separate opcode).
//
// Every fusion charges the steps of the instructions it replaced, with
// budget checks placed so aborts are indistinguishable from the
// tree-walker's (see Machine.exec).
type opcode uint8

const (
	opConstF opcode = iota
	opConstB
	opMovF
	opMovB
	opFAdd
	opFSub
	opFMul
	opFDiv
	opAddCL // dst = K + a
	opAddCR // dst = a + K
	opSubCL // dst = K - a
	opSubCR // dst = a - K
	opMulCL // dst = K * a
	opMulCR // dst = a * K
	opDivCL // dst = K / a
	opDivCR // dst = a / K
	opFNeg
	opFCmp
	opCmpCL    // dst = K pred a
	opCmpCR    // dst = a pred K
	opFCmpJmp  // branch on a pred b
	opCmpCLJmp // branch on K pred a
	opCmpCRJmp // branch on a pred K
	opNot
	opCallF    // call capturing a float result
	opCallB    // call capturing a bool result
	opCallVoid // call discarding the result
	opBuiltin1 // unary builtin through a function pointer
	opBuiltin2 // binary builtin through a function pointer
	opJmp
	opCondJmp
	opRetF
	opRetB
	opRetVoid
	opAssert
)

// instr is one flat-code instruction, kept to 28 bytes (no pointers, no
// 8-byte fields) so the dispatch loop streams through the code array
// with minimal cache traffic. Wide or cold operands live in per-function
// side tables, addressed through the integer fields:
//
//	opConstF            a = constant-pool index
//	opConstB            a = 0/1 immediate
//	op*C{L,R}(Jmp)      a = register operand, b = constant-pool index
//	opCall*             a = call-info index
//	opBuiltin1          a = argument register, target = builtin index
//	opBuiltin2          a, b = argument registers, target = builtin index
//	opJmp/opCondJmp/*Jmp  target/els = flat instruction indices
//	opAssert            site = assert-info index (module table)
type instr struct {
	op     opcode
	pred   fp.CmpOp // comparison predicate of the cmp families
	extra  uint8    // deferred step charge of a fused post-observation mov
	dst    int32
	a, b   int32
	site   int32
	target int32
	els    int32
}

// callInfo is the resolved target and argument registers of one user
// call site.
type callInfo struct {
	fn   *Func
	args []int32
}

// Func is one compiled function: its blocks fused into a single
// instruction array, entry at index 0, with the frame size precomputed.
type Func struct {
	Name    string
	NParams int
	idx     int32 // index in the module's function list
	nregs   int
	code    []instr
	consts  []float64                        // constant pool
	calls   []callInfo                       // opCall* sites
	b1      []func(float64) float64          // opBuiltin1 implementations
	b2      []func(float64, float64) float64 // opBuiltin2 implementations
	// zeroFrame is set when the def-before-use analysis could not prove
	// that every register is written before it is read; only then does
	// the machine zero the activation frame (matching the tree-walker's
	// freshly made register slices).
	zeroFrame bool
}

// assertInfo carries the cold source metadata of an assert instruction,
// kept out of the instruction array so the hot path stays compact.
type assertInfo struct {
	pos   lang.Pos
	label string
}

// Module is a compiled ir.Module. It is immutable after Compile and
// safe to share between any number of Machines.
type Module struct {
	funcs   map[string]*Func
	list    []*Func // indexed by Func.idx (frame stack entries are pointer-free)
	asserts []assertInfo
}

// Func returns the named compiled function, or nil.
func (cm *Module) Func(name string) *Func { return cm.funcs[name] }

// Compile translates the module into flat code. Modules produced by
// ir.Lower always compile; errors surface only for hand-built modules
// with unresolved calls or unknown builtins.
func Compile(m *ir.Module) (*Module, error) {
	cm := &Module{funcs: make(map[string]*Func, len(m.Funcs))}
	// Shells first, so calls resolve regardless of declaration order.
	for _, name := range m.Order {
		f := m.Funcs[name]
		if f == nil {
			return nil, fmt.Errorf("compile: order lists unknown function %s", name)
		}
		cf := &Func{Name: name, NParams: f.NParams, idx: int32(len(cm.list)), nregs: f.NumRegs()}
		cm.funcs[name] = cf
		cm.list = append(cm.list, cf)
	}
	for _, name := range m.Order {
		if err := cm.compileFunc(cm.funcs[name], m.Funcs[name]); err != nil {
			return nil, fmt.Errorf("compile: function %s: %w", name, err)
		}
	}
	return cm, nil
}

// elsNone marks an unused els field on non-jump instructions.
const elsNone = -1

func (cm *Module) compileFunc(cf *Func, f *ir.Func) error {
	// Pass 1: translate each block, jump targets still block indices.
	blocks := make([][]instr, len(f.Blocks))
	for bi := range f.Blocks {
		code, err := cm.translateBlock(cf, f, &f.Blocks[bi])
		if err != nil {
			return err
		}
		blocks[bi] = code
	}

	// Pass 2: peephole fusion within each block. Fusions only ever
	// remove non-initial instructions, so block entry points survive.
	reads, writes := regCounts(f)
	fusable := func(r int32) bool {
		return reads[r] == 1 && writes[r] == 1
	}
	for bi := range blocks {
		b := fuseConsts(blocks[bi], fusable)
		b = fuseMovs(b, fusable)
		blocks[bi] = fuseJmp(b, fusable)
	}

	// Pass 3: flatten and rewrite block targets to flat offsets.
	blockStart := make([]int32, len(blocks))
	total := 0
	for bi, b := range blocks {
		blockStart[bi] = int32(total)
		total += len(b)
	}
	code := make([]instr, 0, total)
	for _, b := range blocks {
		code = append(code, b...)
	}
	for i := range code {
		switch code[i].op {
		case opJmp:
			code[i].target = blockStart[code[i].target]
		case opCondJmp, opFCmpJmp, opCmpCLJmp, opCmpCRJmp:
			code[i].target = blockStart[code[i].target]
			code[i].els = blockStart[code[i].els]
		}
	}
	cf.code = code
	cf.zeroFrame = !defBeforeUse(f)
	return nil
}

// translateBlock maps one IR block to flat instructions 1:1 (fusion
// happens afterwards).
func (cm *Module) translateBlock(cf *Func, f *ir.Func, b *ir.Block) ([]instr, error) {
	code := make([]instr, 0, len(b.Instrs))
	for i := range b.Instrs {
		in := &b.Instrs[i]
		out := instr{
			dst: int32(in.Dst), a: int32(in.A), b: int32(in.B),
			site: int32(in.Site), els: elsNone,
		}
		switch in.Op {
		case ir.ConstF:
			out.op, out.a = opConstF, int32(len(cf.consts))
			cf.consts = append(cf.consts, in.Val)
		case ir.ConstB:
			out.op, out.a = opConstB, 0
			if in.BVal {
				out.a = 1
			}
		case ir.Mov:
			if f.Kinds[in.Dst] == ir.RegB {
				out.op = opMovB
			} else {
				out.op = opMovF
			}
		case ir.FAdd:
			out.op = opFAdd
		case ir.FSub:
			out.op = opFSub
		case ir.FMul:
			out.op = opFMul
		case ir.FDiv:
			out.op = opFDiv
		case ir.FNeg:
			out.op = opFNeg
		case ir.FCmp:
			out.op, out.pred = opFCmp, in.Pred
		case ir.Not:
			out.op = opNot
		case ir.Call:
			callee := cm.funcs[in.Name]
			if callee == nil {
				return nil, fmt.Errorf("call to unknown function %s", in.Name)
			}
			switch {
			case in.Dst < 0:
				out.op = opCallVoid
			case f.Kinds[in.Dst] == ir.RegB:
				out.op = opCallB
			default:
				out.op = opCallF
			}
			args := make([]int32, len(in.Args))
			for ai, a := range in.Args {
				args[ai] = int32(a)
			}
			out.a = int32(len(cf.calls))
			cf.calls = append(cf.calls, callInfo{fn: callee, args: args})
		case ir.CallBuiltin:
			fn1, fn2 := in.Fn1, in.Fn2
			if fn1 == nil && fn2 == nil {
				// Unlinked hand-built module: resolve here, still
				// strictly before execution.
				var err error
				fn1, fn2, err = builtins.Resolve(in.Name, len(in.Args))
				if err != nil {
					return nil, err
				}
			}
			if fn1 != nil {
				out.op, out.a = opBuiltin1, int32(in.Args[0])
				out.target = int32(len(cf.b1))
				cf.b1 = append(cf.b1, fn1)
			} else {
				out.op = opBuiltin2
				out.a, out.b = int32(in.Args[0]), int32(in.Args[1])
				out.target = int32(len(cf.b2))
				cf.b2 = append(cf.b2, fn2)
			}
		case ir.Jmp:
			out.op, out.target = opJmp, int32(in.Target)
		case ir.CondJmp:
			out.op, out.target, out.els = opCondJmp, int32(in.Target), int32(in.Else)
		case ir.Ret:
			switch {
			case in.A < 0:
				out.op = opRetVoid
			case f.Kinds[in.A] == ir.RegB:
				out.op = opRetB
			default:
				out.op = opRetF
			}
			out.a = int32(in.A)
		case ir.Assert:
			out.op = opAssert
			out.site = int32(len(cm.asserts))
			cm.asserts = append(cm.asserts, assertInfo{pos: in.Pos, label: in.Label})
		default:
			return nil, fmt.Errorf("unknown opcode %s", in.Op)
		}
		code = append(code, out)
	}
	return code, nil
}

// constFusion maps a plain binary opcode to its (constant-left,
// constant-right) fused variants.
var constFusion = map[opcode][2]opcode{
	opFAdd: {opAddCL, opAddCR},
	opFSub: {opSubCL, opSubCR},
	opFMul: {opMulCL, opMulCR},
	opFDiv: {opDivCL, opDivCR},
	opFCmp: {opCmpCL, opCmpCR},
}

// fuseConsts folds a use-once opConstF into an immediately following
// binary arithmetic or comparison that consumes it. The constant's
// register write is elided (nothing else reads it); the fused opcode
// charges both steps.
func fuseConsts(code []instr, fusable func(int32) bool) []instr {
	out := code[:0]
	for i := 0; i < len(code); i++ {
		cur := code[i]
		if cur.op == opConstF && i+1 < len(code) && fusable(cur.dst) {
			next := code[i+1]
			if variants, ok := constFusion[next.op]; ok && (next.a == cur.dst) != (next.b == cur.dst) {
				fused := next
				fused.b = cur.a // constant-pool index
				if next.a == cur.dst {
					fused.op, fused.a = variants[0], next.b // constant was the left operand
				} else {
					fused.op = variants[1] // constant was the right operand
				}
				out = append(out, fused)
				i++
				continue
			}
		}
		out = append(out, cur)
	}
	return out
}

// movProducersF and movProducersB list the opcodes whose result can be
// retargeted at a following mov's destination.
func movProducer(op opcode) (isF, isB bool) {
	switch op {
	case opConstF, opFNeg, opFAdd, opFSub, opFMul, opFDiv,
		opAddCL, opAddCR, opSubCL, opSubCR, opMulCL, opMulCR, opDivCL, opDivCR,
		opBuiltin1, opBuiltin2, opCallF:
		return true, false
	case opConstB, opNot, opFCmp, opCmpCL, opCmpCR, opCallB:
		return false, true
	}
	return false, false
}

// fuseMovs retargets a value producer at the destination of an
// immediately following mov of its use-once result, charging the mov's
// step via extra (deferred, post-observation — see Machine.exec).
func fuseMovs(code []instr, fusable func(int32) bool) []instr {
	out := code[:0]
	for i := 0; i < len(code); i++ {
		cur := code[i]
		if i+1 < len(code) {
			next := code[i+1]
			isF, isB := movProducer(cur.op)
			if ((isF && next.op == opMovF) || (isB && next.op == opMovB)) &&
				next.a == cur.dst && fusable(cur.dst) {
				cur.dst = next.dst
				cur.extra++
				out = append(out, cur)
				i++
				continue
			}
		}
		out = append(out, cur)
	}
	return out
}

// fuseJmp folds a block-terminating (comparison, conditional jump) pair
// into one branching comparison when the jump is the only reader of the
// comparison's result.
func fuseJmp(code []instr, fusable func(int32) bool) []instr {
	n := len(code)
	if n < 2 || code[n-1].op != opCondJmp {
		return code
	}
	cmp, jmp := code[n-2], code[n-1]
	if jmp.a != cmp.dst || !fusable(cmp.dst) || cmp.extra != 0 {
		return code
	}
	var fusedOp opcode
	switch cmp.op {
	case opFCmp:
		fusedOp = opFCmpJmp
	case opCmpCL:
		fusedOp = opCmpCLJmp
	case opCmpCR:
		fusedOp = opCmpCRJmp
	default:
		return code
	}
	fused := cmp
	fused.op = fusedOp
	fused.target, fused.els = jmp.target, jmp.els
	return append(code[:n-2], fused)
}

// regCounts tallies static read and write counts per register
// (parameters count as written at entry).
func regCounts(f *ir.Func) (reads, writes []int) {
	reads = make([]int, f.NumRegs())
	writes = make([]int, f.NumRegs())
	for p := 0; p < f.NParams; p++ {
		writes[p]++
	}
	count := func(r ir.Reg) bool {
		reads[r]++
		return true
	}
	for bi := range f.Blocks {
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			readsOK(in, count)
			if d := writtenReg(in); d >= 0 {
				writes[d]++
			}
		}
	}
	return reads, writes
}
