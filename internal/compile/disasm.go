package compile

import (
	"fmt"
	"strings"
)

var opNames = map[opcode]string{
	opConstF: "constf", opConstB: "constb", opMovF: "movf", opMovB: "movb",
	opFAdd: "fadd", opFSub: "fsub", opFMul: "fmul", opFDiv: "fdiv",
	opAddCL: "addcl", opAddCR: "addcr", opSubCL: "subcl", opSubCR: "subcr",
	opMulCL: "mulcl", opMulCR: "mulcr", opDivCL: "divcl", opDivCR: "divcr",
	opFNeg: "fneg", opFCmp: "fcmp", opCmpCL: "cmpcl", opCmpCR: "cmpcr",
	opFCmpJmp: "fcmpjmp", opCmpCLJmp: "cmpcljmp", opCmpCRJmp: "cmpcrjmp",
	opNot: "not", opCallF: "callf", opCallB: "callb", opCallVoid: "callv",
	opBuiltin1: "b1", opBuiltin2: "b2", opJmp: "jmp", opCondJmp: "condjmp",
	opRetF: "retf", opRetB: "retb", opRetVoid: "retv", opAssert: "assert",
}

// Disasm renders a compiled function's flat code for debugging and
// fusion inspection.
func (cm *Module) Disasm(name string) string {
	f := cm.funcs[name]
	if f == nil {
		return "<no function " + name + ">"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d regs=%d zero=%v)\n", f.Name, f.NParams, f.nregs, f.zeroFrame)
	for i := range f.code {
		in := &f.code[i]
		fmt.Fprintf(&sb, "  %3d: %-9s dst=%-3d a=%-3d b=%-3d site=%-3d tgt=%-3d els=%-3d extra=%d",
			i, opNames[in.op], in.dst, in.a, in.b, in.site, in.target, in.els, in.extra)
		switch in.op {
		case opConstF:
			fmt.Fprintf(&sb, "  ; K=%g", f.consts[in.a])
		case opAddCL, opAddCR, opSubCL, opSubCR, opMulCL, opMulCR, opDivCL, opDivCR,
			opCmpCL, opCmpCR, opCmpCLJmp, opCmpCRJmp:
			fmt.Fprintf(&sb, "  ; K=%g", f.consts[in.b])
		case opCallF, opCallB, opCallVoid:
			fmt.Fprintf(&sb, "  ; call %s%v", f.calls[in.a].fn.Name, f.calls[in.a].args)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
