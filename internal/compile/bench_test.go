package compile_test

import (
	"testing"

	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rt"
)

// Engine microbenchmarks at three program shapes: trivial (harness
// floor), straight-line arithmetic (dispatch cost), and a loop with a
// user call per iteration (frame churn). Run with
//
//	go test -bench=. -benchmem ./internal/compile
func benchProgram(b *testing.B, src, fn string, x []float64) {
	b.Helper()
	mod, err := ir.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range []interp.Engine{interp.EngineVM, interp.EngineTree} {
		it := interp.New(mod)
		it.Engine = engine
		p, err := it.Program(fn)
		if err != nil {
			b.Fatal(err)
		}
		mon := &instrument.Boundary{}
		b.Run(engine.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Execute(mon, x)
			}
		})
	}
}

func BenchmarkTrivial(b *testing.B) {
	benchProgram(b, "func f(x double) double { return x; }", "f", []float64{1.5})
}

func BenchmarkStraightline(b *testing.B) {
	benchProgram(b, `
func f(x double) double {
    var a double = x * x + 1.0;
    var c double = a * x - 2.0;
    var d double = c / a + x;
    return d * d - a * c;
}`, "f", []float64{1.5})
}

func BenchmarkLoopCalls(b *testing.B) {
	benchProgram(b, `
func step(acc double, x double) double {
    return acc * x + 1.0;
}
func f(x double) double {
    var acc double = 0.0;
    var i double = 0.0;
    while (i < 20.0) {
        acc = step(acc, x);
        i = i + 1.0;
    }
    return acc;
}`, "f", []float64{0.5})
}

// BenchmarkUninstrumented measures the pure dispatch loop with a nop
// monitor (no observation cost at all).
func BenchmarkUninstrumented(b *testing.B) {
	mod, err := ir.Compile(`
func f(x double) double {
    var acc double = 0.0;
    var i double = 0.0;
    while (i < 50.0) {
        acc = acc + x * x;
        i = i + 1.0;
    }
    return acc;
}`)
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range []interp.Engine{interp.EngineVM, interp.EngineTree} {
		it := interp.New(mod)
		it.Engine = engine
		p, err := it.Program("f")
		if err != nil {
			b.Fatal(err)
		}
		x := []float64{0.5}
		b.Run(engine.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Execute(rt.NopMonitor{}, x)
			}
		})
	}
}
