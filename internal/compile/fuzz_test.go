package compile_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/ir"
)

// FuzzCompileEval holds the whole stack to arbitrary input: lexing,
// checking, and lowering never panic, and on programs that do compile,
// the flat-code VM and the tree-walking interpreter agree bit-for-bit —
// results, observation traces, assert failures, and step-budget aborts
// (via the internal/fuzz engine oracle).
//
// The step budget is deliberately small: fuzzed programs may recurse
// unboundedly or loop forever, and both engines must agree on the abort
// anyway.
func FuzzCompileEval(f *testing.F) {
	for _, pat := range []string{
		filepath.Join("..", "..", "testdata", "*.fpl"),
		filepath.Join("..", "..", "testdata", "fuzz", "*.fpl"),
	} {
		files, err := filepath.Glob(pat)
		if err != nil {
			f.Fatal(err)
		}
		for _, file := range files {
			src, err := os.ReadFile(file)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src), 1.5)
		}
	}
	f.Add("func f(x double) double { return f(x); }", 0.0) // unbounded recursion: budget abort
	f.Add("func f(x double) double { while (true) { x = x + 1.0; } return x; }", 1.0)
	f.Add("func f(x double) double { return x / 0.0; }", 0.0)

	f.Fuzz(func(t *testing.T, src string, x0 float64) {
		mod, err := ir.Compile(src) // must not panic
		if err != nil {
			return
		}
		// Exercise every declared function on a small input battery
		// derived from the fuzzed scalar.
		checked := 0
		for _, fn := range mod.Order {
			if checked >= 3 {
				break
			}
			dim := mod.Funcs[fn].NParams
			if dim == 0 {
				continue
			}
			checked++
			inputs := [][]float64{make([]float64, dim), make([]float64, dim), make([]float64, dim)}
			for i := 0; i < dim; i++ {
				inputs[0][i] = x0
				inputs[1][i] = -x0 * float64(i+1)
				inputs[2][i] = 1e300
			}
			vs := fuzz.CheckEngines(src, fn, inputs, fuzz.EngineCheck{
				MaxSteps:    20000,
				BudgetSweep: 24,
				EarlyStops:  4,
			})
			if len(vs) > 0 {
				t.Fatalf("engine divergence: %s", vs[0])
			}
		}
	})
}
