package compile

import "repro/internal/ir"

// defBeforeUse reports whether every register of f is provably written
// before it is read on every path from entry. When it holds, activation
// frames need no zeroing: stale arena contents can never be observed,
// so the machine skips the per-call memclr entirely. IR produced by
// ir.Lower satisfies the property by construction (variables are
// initialized at declaration); the analysis proves it per function so
// hand-built modules stay correct.
//
// The analysis is a forward must-write dataflow over the block graph:
// IN[b] is the set of registers written on *every* path reaching b,
// OUT[b] = IN[b] ∪ written(b); a block's reads are then checked in
// instruction order against IN[b] plus the writes preceding them within
// the block. Unreachable blocks trivially pass (they never execute, so
// their IN stays the universal set).
func defBeforeUse(f *ir.Func) bool {
	n := f.NumRegs()
	nb := len(f.Blocks)
	words := (n + 63) / 64

	full := make([]uint64, words)
	for i := range full {
		full[i] = ^uint64(0)
	}

	// IN sets: entry has its parameters written; everything else starts
	// at the universal set (⊤ of the meet semilattice).
	in := make([][]uint64, nb)
	for b := range in {
		in[b] = make([]uint64, words)
		copy(in[b], full)
	}
	for i := range in[0] {
		in[0][i] = 0
	}
	for p := 0; p < f.NParams; p++ {
		in[0][p/64] |= 1 << (p % 64)
	}

	// def[b]: registers written anywhere in block b.
	def := make([][]uint64, nb)
	for b := range def {
		def[b] = make([]uint64, words)
		for i := range f.Blocks[b].Instrs {
			if d := writtenReg(&f.Blocks[b].Instrs[i]); d >= 0 {
				def[b][d/64] |= 1 << (d % 64)
			}
		}
	}

	// Fixpoint: propagate OUT[b] = IN[b] ∪ def[b] into successors by
	// intersection. The sets only shrink, so iteration terminates.
	out := make([]uint64, words)
	changed := true
	for changed {
		changed = false
		for b := 0; b < nb; b++ {
			for i := range out {
				out[i] = in[b][i] | def[b][i]
			}
			for _, s := range successors(f, b) {
				for i := range out {
					if old := in[s][i]; old&out[i] != old {
						in[s][i] &= out[i]
						changed = true
					}
				}
			}
		}
	}

	// Check every read against the must-written set at that point.
	cur := make([]uint64, words)
	has := func(r ir.Reg) bool { return cur[int(r)/64]&(1<<(int(r)%64)) != 0 }
	for b := 0; b < nb; b++ {
		copy(cur, in[b])
		for i := range f.Blocks[b].Instrs {
			ins := &f.Blocks[b].Instrs[i]
			if !readsOK(ins, has) {
				return false
			}
			if d := writtenReg(ins); d >= 0 {
				cur[d/64] |= 1 << (d % 64)
			}
		}
	}
	return true
}

// writtenReg returns the register an instruction writes, or -1.
func writtenReg(in *ir.Instr) int {
	switch in.Op {
	case ir.ConstF, ir.ConstB, ir.Mov, ir.FAdd, ir.FSub, ir.FMul, ir.FDiv,
		ir.FNeg, ir.FCmp, ir.Not, ir.CallBuiltin:
		return int(in.Dst)
	case ir.Call:
		if in.Dst >= 0 {
			return int(in.Dst)
		}
	}
	return -1
}

// readsOK reports whether every register the instruction reads
// satisfies has.
func readsOK(in *ir.Instr, has func(ir.Reg) bool) bool {
	switch in.Op {
	case ir.Mov, ir.FNeg, ir.Not, ir.CondJmp, ir.Assert:
		return has(in.A)
	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv, ir.FCmp:
		return has(in.A) && has(in.B)
	case ir.Call, ir.CallBuiltin:
		for _, a := range in.Args {
			if !has(a) {
				return false
			}
		}
		return true
	case ir.Ret:
		return in.A < 0 || has(in.A)
	}
	return true
}

// successors returns the block indices a block can transfer to.
func successors(f *ir.Func, b int) []int {
	instrs := f.Blocks[b].Instrs
	if len(instrs) == 0 {
		return nil
	}
	switch t := instrs[len(instrs)-1]; t.Op {
	case ir.Jmp:
		return []int{t.Target}
	case ir.CondJmp:
		return []int{t.Target, t.Else}
	}
	return nil
}
