package core_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/progs"
)

func TestSolveBoundaryFig2(t *testing.T) {
	p := progs.Fig2()
	mon := &instrument.Boundary{}
	wit := &instrument.BoundaryWitness{}
	prob := core.Problem{
		Name: "fig2-boundary",
		Dim:  1,
		W:    p.WeakDistance(mon),
		Member: func(x []float64) bool {
			p.Execute(wit, x)
			return len(wit.Sites()) > 0
		},
	}
	r := core.Solve(context.Background(), prob, core.Options{Seed: 1, Bounds: []opt.Bound{{Lo: -100, Hi: 100}}})
	if !r.Found {
		t.Fatalf("boundary problem unsolved: %v", r)
	}
	if got := prob.W(r.X); got != 0 {
		t.Errorf("returned point has W = %v", got)
	}
}

func TestSolvePathFig2(t *testing.T) {
	p := progs.Fig2()
	mon := &instrument.Path{Target: []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchY, Taken: true},
	}}
	prob := core.Problem{Name: "fig2-path", Dim: 1, W: p.WeakDistance(mon)}
	r := core.Solve(context.Background(), prob, core.Options{Seed: 2, Bounds: []opt.Bound{{Lo: -1000, Hi: 1000}}})
	if !r.Found {
		t.Fatalf("path problem unsolved: %v", r)
	}
	if x := r.X[0]; x < -3 || x > 1 {
		t.Errorf("solution %v outside [-3, 1]", x)
	}
}

func TestSolveReportsNotFoundOnEmptyS(t *testing.T) {
	// W = |x| + 1 has no zeros: S = ∅; Solve must report not found with
	// a positive minimum (Def. 2.1(b) via Lemma 3.2(a)).
	prob := core.Problem{
		Name: "empty",
		Dim:  1,
		W:    func(x []float64) float64 { return math.Abs(x[0]) + 1 },
	}
	r := core.Solve(context.Background(), prob, core.Options{
		Seed: 3, Starts: 2, EvalsPerStart: 2000,
		Bounds: []opt.Bound{{Lo: -10, Hi: 10}},
	})
	if r.Found {
		t.Fatalf("found a zero of a zero-free function: %v", r)
	}
	if r.W <= 0 {
		t.Errorf("reported min W = %v, want > 0", r.W)
	}
	if !strings.Contains(r.String(), "not found") {
		t.Errorf("String() = %q, want 'not found' wording", r.String())
	}
}

func TestSolveMembershipGuardRejectsSpuriousZeros(t *testing.T) {
	// Limitation 2 (§5.2): W(x) = x*x for the `if (x == 0)` problem has
	// spurious zeros (underflow). The membership guard must reject them;
	// with search confined to the spurious region, Solve reports not
	// found rather than an unsound solution.
	prob := core.Problem{
		Name: "eqzero-naive",
		Dim:  1,
		W:    func(x []float64) float64 { return x[0] * x[0] },
		Member: func(x []float64) bool {
			return x[0] == 0
		},
	}
	r := core.Solve(context.Background(), prob, core.Options{
		Seed: 4, Starts: 3, EvalsPerStart: 300,
		Backend: &opt.RandomSearch{},
		Bounds:  []opt.Bound{{Lo: 1e-210, Hi: 1e-190}}, // only spurious zeros here
	})
	if r.Found {
		t.Fatalf("unsound: accepted spurious zero at %v", r.X)
	}
	if r.Rejected == 0 {
		t.Error("expected at least one rejected spurious zero")
	}
}

func TestSolveZeroDimension(t *testing.T) {
	r := core.Solve(context.Background(), core.Problem{Name: "bad", Dim: 0, W: func([]float64) float64 { return 1 }}, core.Options{})
	if r.Found {
		t.Error("zero-dimension problem cannot be solved")
	}
}

func TestSolveDeterministic(t *testing.T) {
	p := progs.Fig2()
	mk := func() core.Result {
		return core.Solve(context.Background(), core.Problem{
			Name: "det", Dim: 1,
			W: p.WeakDistance(&instrument.Boundary{}),
		}, core.Options{Seed: 9, Starts: 2, EvalsPerStart: 4000, Bounds: []opt.Bound{{Lo: -50, Hi: 50}}})
	}
	a, b := mk(), mk()
	if a.Found != b.Found || a.Evals != b.Evals {
		t.Errorf("nondeterministic solve: %+v vs %+v", a, b)
	}
	if a.Found && a.X[0] != b.X[0] {
		t.Errorf("solutions differ: %v vs %v", a.X, b.X)
	}
}

func TestSolveTraceAccumulatesAcrossRestarts(t *testing.T) {
	tr := &opt.Trace{Cap: 10}
	prob := core.Problem{
		Name: "trace", Dim: 1,
		W: func(x []float64) float64 { return math.Abs(x[0]) + 1 },
	}
	r := core.Solve(context.Background(), prob, core.Options{
		Seed: 5, Starts: 3, EvalsPerStart: 100,
		Backend: &opt.RandomSearch{},
		Bounds:  []opt.Bound{{Lo: -1, Hi: 1}},
		Trace:   tr,
	})
	if tr.Len() != r.Evals {
		t.Errorf("trace %d evals, result says %d", tr.Len(), r.Evals)
	}
	if r.Evals != 300 {
		t.Errorf("evals = %d, want 3 restarts x 100", r.Evals)
	}
}

func TestResultString(t *testing.T) {
	found := core.Result{Found: true, X: []float64{1}, Evals: 10, Restarts: 1}
	if !strings.Contains(found.String(), "found") {
		t.Errorf("String() = %q", found.String())
	}
}
