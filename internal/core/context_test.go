package core_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/opt"
)

// zeroless is a weak distance with no zero: cancellation is the only
// way out before the budget.
func zeroless(x []float64) float64 { return 1 + x[0]*x[0] }

// TestSolveCancellation: both Solve paths (serial and parallel) stop on
// a cancelled context and mark the result.
func TestSolveCancellation(t *testing.T) {
	prob := core.Problem{
		Name: "zeroless",
		Dim:  1,
		W:    zeroless,
		NewW: func() core.WeakDistance { return zeroless },
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		p := prob
		counting := func(x []float64) float64 {
			if calls.Add(1) == 50 {
				cancel()
			}
			return zeroless(x)
		}
		if workers == 1 {
			p.W = counting
		} else {
			// The parallel path builds one objective per start; give it
			// the shared counter (races don't matter for w=4 — the
			// assertion there is only prompt termination).
			p.NewW = func() core.WeakDistance { return counting }
		}
		r := core.Solve(ctx, p, core.Options{
			Seed: 1, Starts: 1000, EvalsPerStart: 1_000_000,
			Bounds:  []opt.Bound{{Lo: -10, Hi: 10}},
			Workers: workers,
		})
		cancel()
		if !r.Canceled {
			t.Errorf("workers=%d: Canceled=false: %+v", workers, r)
		}
		if r.Found {
			t.Errorf("workers=%d: spurious Found on a zeroless distance", workers)
		}
	}
}

// TestSolveCancellationSerialOneEval pins the serial path to the
// one-evaluation contract end to end through core.Solve.
func TestSolveCancellationSerialOneEval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	r := core.Solve(ctx, core.Problem{
		Name: "zeroless", Dim: 1,
		W: func(x []float64) float64 {
			calls++
			if calls == 70 {
				cancel()
			}
			return zeroless(x)
		},
	}, core.Options{
		Seed: 1, Starts: 100, EvalsPerStart: 1_000_000,
		Bounds:  []opt.Bound{{Lo: -10, Hi: 10}},
		Workers: 1,
	})
	if calls > 70 {
		t.Errorf("%d weak-distance evaluations after cancellation", calls-70)
	}
	if !r.Canceled || r.Evals != calls {
		t.Errorf("result bookkeeping: calls=%d %+v", calls, r)
	}
}
