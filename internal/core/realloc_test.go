package core_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/opt"
)

// TestSolveReallocatesReclaimedBudget: when the backend exits early
// (here: the portfolio scheduler detecting that every stage plateaued
// on a zero-free problem), Solve must convert the unused evaluations
// into bonus restarts — and the whole schedule must stay a pure
// function of the options for every worker count.
func TestSolveReallocatesReclaimedBudget(t *testing.T) {
	w := func(x []float64) float64 { return math.Abs(x[0]) + 1 }
	prob := core.Problem{
		Name: "no-zero",
		Dim:  1,
		W:    w,
		NewW: func() core.WeakDistance { return w },
	}
	run := func(workers int) core.Result {
		return core.Solve(context.Background(), prob, core.Options{
			Backend:       &opt.Portfolio{StallWindow: 100},
			Starts:        4,
			EvalsPerStart: 5000,
			Seed:          21,
			Bounds:        []opt.Bound{{Lo: -10, Hi: 10}},
			Workers:       workers,
		})
	}
	r := run(1)
	if r.Found {
		t.Fatalf("found a zero of a zero-free function: %v", r)
	}
	if r.Reclaimed == 0 {
		t.Fatalf("portfolio early exit reclaimed nothing: %+v", r)
	}
	if r.BonusStarts == 0 {
		t.Errorf("reclaimed %d evals funded no bonus starts", r.Reclaimed)
	}
	if r.Restarts != 4+r.BonusStarts {
		t.Errorf("Restarts = %d, want %d base + %d bonus", r.Restarts, 4, r.BonusStarts)
	}
	if len(r.Stages) == 0 {
		t.Error("no aggregated stage attribution")
	}
	for _, workers := range []int{2, 4} {
		if got := run(workers); !reflect.DeepEqual(r, got) {
			t.Errorf("workers=%d diverged from serial:\n%+v\n%+v", workers, r, got)
		}
	}
}

// TestSolveNoReallocForExhaustingBackend: the default backend always
// runs its budget out on an unsolved problem, so the historical
// schedule — and wire format — is unchanged.
func TestSolveNoReallocForExhaustingBackend(t *testing.T) {
	prob := core.Problem{
		Name: "no-zero",
		Dim:  1,
		W:    func(x []float64) float64 { return math.Abs(x[0]) + 1 },
	}
	r := core.Solve(context.Background(), prob, core.Options{
		Starts: 2, EvalsPerStart: 2000, Seed: 4,
		Bounds: []opt.Bound{{Lo: -10, Hi: 10}},
	})
	if r.Reclaimed != 0 || r.BonusStarts != 0 {
		t.Errorf("basinhopping reclaimed budget: %+v", r)
	}
	if r.Restarts != 2 {
		t.Errorf("Restarts = %d, want 2", r.Restarts)
	}
	if r.Evals != 2*2000 {
		t.Errorf("Evals = %d, want the full 4000", r.Evals)
	}
	if len(r.Stages) != 0 {
		t.Errorf("single-backend run grew stages: %+v", r.Stages)
	}
}

// TestSolveBonusStartCanSolve: a problem whose zero basin is rarely
// seeded still gets solved when reclaimed budget funds the start that
// lands in it — the point of reallocation.
func TestSolveBonusStartCanSolve(t *testing.T) {
	// Zero only in a narrow pocket; everywhere else a smooth plateau
	// that makes every portfolio stage stall fast.
	w := func(x []float64) float64 {
		if x[0] > 41 && x[0] < 42 {
			return 0
		}
		return math.Abs(x[0])/100 + 1
	}
	prob := core.Problem{Name: "pocket", Dim: 1, W: w,
		NewW: func() core.WeakDistance { return w }}
	opts := core.Options{
		Backend:       &opt.Portfolio{StallWindow: 50},
		Starts:        2,
		EvalsPerStart: 4000,
		Seed:          1,
		Bounds:        []opt.Bound{{Lo: -100, Hi: 100}},
		Workers:       1,
	}
	r := core.Solve(context.Background(), prob, opts)
	// The claim under test is determinism plus accounting, not that this
	// exact seed needs the bonus round; but when it solves, the answer
	// must be genuine.
	if r.Found && w(r.X) != 0 {
		t.Errorf("reported solution is not a zero: %v", r.X)
	}
	for _, workers := range []int{2, 3} {
		if got := core.Solve(context.Background(), prob, core.Options{
			Backend:       &opt.Portfolio{StallWindow: 50},
			Starts:        2,
			EvalsPerStart: 4000,
			Seed:          1,
			Bounds:        []opt.Bound{{Lo: -100, Hi: 100}},
			Workers:       workers,
		}); !reflect.DeepEqual(r, got) {
			t.Errorf("workers=%d diverged:\n%+v\n%+v", workers, r, got)
		}
	}
}
