// Package core implements the reduction theory of Fu & Su (PLDI 2019):
// a floating-point analysis problem ⟨Prog; S⟩ — find an input in S or
// report "not found" — is solved by minimizing a weak distance W
// (Def. 3.1), a nonnegative program whose zeros are exactly S. Theorem
// 3.3 guarantees the reduction is faithful: minimizing W solves the
// problem in the sense of Def. 2.1(a-b).
//
// The package provides Algorithm 2 (Solve) on top of the black-box MO
// backends of internal/opt, with two practical refinements discussed in
// the paper's §5:
//
//   - multi-start minimization (§4.1: local MO applied over a set of
//     starting points), and
//   - an optional membership re-verification of the returned point
//     (§5.2 remark), which restores soundness when the constructed W has
//     spurious zeros due to floating-point inaccuracy (Limitation 2).
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/opt"
)

// WeakDistance is a weak-distance program W : F^N → F (Def. 3.1). The
// framework never inspects it symbolically — it only executes it, which
// is the key practical benefit of the reduction (§1).
type WeakDistance func(x []float64) float64

// Problem packages a floating-point analysis problem ⟨Prog; S⟩ together
// with its constructed weak distance.
type Problem struct {
	// Name identifies the problem in reports.
	Name string
	// Dim is N, the input arity (dom(Prog) = F^N).
	Dim int
	// W is the weak distance constructed for the problem (Algorithm 2
	// step 1).
	W WeakDistance
	// Member, when non-nil, decides x ∈ S by concrete execution. It is
	// the soundness guard of §5.2: a zero of W whose membership check
	// fails is rejected instead of being reported as a spurious
	// solution. Under parallel solving Member calls are serialized by
	// the multi-start driver, but Member must still be safe to run
	// while weak-distance instances execute on other goroutines —
	// construct it over its own program instance.
	Member func(x []float64) bool
	// NewW, when non-nil, returns an independent weak-distance instance
	// (own monitor, own program instance) for one start. It is required
	// for parallel solving: the shared W is used by at most one
	// goroutine at a time only in the serial path.
	NewW func() WeakDistance
	// NewBatchW, when non-nil, returns an independent batch evaluator of
	// the same weak distance: Eval(xs, out) must write W(xs[i]) to
	// out[i], bit-identical to the scalar W, chunking internally into
	// lane-parallel sweeps of at most `lanes` inputs. Like NewW each
	// returned instance is single-goroutine and independent of every
	// other instance. It is consumed only when Options.Lanes > 1.
	NewBatchW func(lanes int) opt.BatchObjective
}

// Options configures the Solve driver.
type Options struct {
	// Backend is the MO minimizer; nil selects Basinhopping.
	Backend opt.Minimizer
	// Starts is the number of random restarts; zero selects 8.
	Starts int
	// EvalsPerStart bounds evaluations per restart; zero selects
	// 20000 * Dim.
	EvalsPerStart int
	// Seed makes the run deterministic.
	Seed int64
	// Bounds optionally restricts the search space per dimension.
	Bounds []opt.Bound
	// Trace records every W evaluation across all restarts. A non-nil
	// Trace forces the serial path (the shared trace is not
	// synchronized).
	Trace *opt.Trace
	// Workers sets the multi-start parallelism: 0 selects
	// runtime.NumCPU(), 1 forces the serial loop. Results are identical
	// for every value — parallelism only changes wall-clock time.
	Workers int
	// Lanes sets the batch evaluation width: backends with natural lane
	// fillers submit candidate batches that the weak distance evaluates
	// as lane-parallel VM sweeps of up to Lanes inputs each. 0 or 1
	// keeps the scalar path; the knob is ignored when the problem
	// carries no NewBatchW constructor. Like Workers it never changes
	// results, only throughput — the batch contract is bit-identity
	// with serial evaluation.
	Lanes int
}

func (o Options) backend() opt.Minimizer {
	if o.Backend != nil {
		return o.Backend
	}
	return &opt.Basinhopping{}
}

func (o Options) starts() int {
	if o.Starts > 0 {
		return o.Starts
	}
	return 8
}

func (o Options) evalsPerStart(dim int) int {
	if o.EvalsPerStart > 0 {
		return o.EvalsPerStart
	}
	return 20000 * dim
}

// Result is the outcome of Algorithm 2.
type Result struct {
	// Found reports whether a solution was returned (W(x*) = 0 and, when
	// a Member oracle is present, x* ∈ S).
	Found bool
	// X is the solution when Found.
	X []float64
	// W is the smallest weak-distance value sampled.
	W float64
	// Evals is the total number of W evaluations across restarts.
	Evals int
	// Restarts is the number of restarts actually used.
	Restarts int
	// Rejected counts zeros of W rejected by the membership guard
	// (evidence of Limitation 2 in the constructed weak distance).
	Rejected int
	// Canceled reports that the context fired before the search could
	// finish; the other fields describe whatever had been sampled by
	// then. Omitted from JSON when false so pre-context wire formats are
	// unchanged.
	Canceled bool `json:"canceled,omitempty"`
	// Reclaimed counts evaluations that executed starts returned unused
	// (early backend exit: a converged local search, or the portfolio
	// scheduler detecting that every stage plateaued). Omitted when
	// zero, so fixed budget-exhausting backends keep their wire format.
	Reclaimed int `json:"reclaimed,omitempty"`
	// BonusStarts counts the extra restarts funded by reclaimed budget
	// (they are included in Restarts). Omitted when zero.
	BonusStarts int `json:"bonusStarts,omitempty"`
	// Stages aggregates the backend's per-stage attribution across all
	// consumed starts (portfolio runs only): evaluations summed per
	// stage backend, best value minimized. Omitted for single-backend
	// runs.
	Stages []opt.StageResult `json:"stages,omitempty"`
}

// mergeStages folds one start's stage attribution into the aggregate:
// evals summed per backend in first-appearance order, Best minimized,
// the boolean outcomes OR-ed. Consumed starts are folded in start
// order, so the aggregate is as deterministic as the per-start results.
func mergeStages(agg []opt.StageResult, stages []opt.StageResult) []opt.StageResult {
	for _, st := range stages {
		merged := false
		for i := range agg {
			if agg[i].Backend == st.Backend {
				agg[i].Evals += st.Evals
				if st.Best < agg[i].Best {
					agg[i].Best = st.Best
				}
				agg[i].Improved = agg[i].Improved || st.Improved
				agg[i].FoundZero = agg[i].FoundZero || st.FoundZero
				merged = true
				break
			}
		}
		if !merged {
			agg = append(agg, st)
		}
	}
	return agg
}

// bonusStarts converts reclaimed evaluations into extra restarts: one
// per full per-start budget, capped at the original start count so a
// pathological early-exit backend cannot more than double the schedule.
func bonusStarts(reclaimed, budget, starts int) int {
	k := reclaimed / budget
	if k > starts {
		k = starts
	}
	return k
}

// String renders the result in the paper's reporting style.
func (r Result) String() string {
	if r.Found {
		return fmt.Sprintf("found x*=%v (W=0, %d evals, %d restarts)", r.X, r.Evals, r.Restarts)
	}
	return fmt.Sprintf("not found (min W=%.6g, %d evals, %d restarts, %d rejected)", r.W, r.Evals, r.Restarts, r.Rejected)
}

// Solve runs Algorithm 2 (weak-distance minimization) on the problem:
// minimize W from multiple random starts; return the first sampled exact
// zero, or "not found" when the budget expires with a positive minimum.
//
// The context cancels the whole search cooperatively, at objective-
// evaluation granularity (opt.Config.Ctx): when ctx fires, the result
// describes whatever had been sampled and is marked Canceled.
//
// Per Theorem 3.3 the procedure is exact up to the MO backend's ability
// to reach global minima: a returned point is always in S (soundness,
// enforced by construction and optionally by the Member guard); "not
// found" may be incomplete when the backend misses a zero
// (Limitation 3).
func Solve(ctx context.Context, p Problem, o Options) Result {
	if p.Dim < 1 {
		return Result{W: math.Inf(1)}
	}
	if o.Workers != 1 && p.NewW != nil && o.Trace == nil {
		return solveParallel(ctx, p, o)
	}
	backend := o.backend()
	res := Result{W: math.Inf(1)}

	// One batch evaluator serves every start of the serial loop: starts
	// run strictly one after another, so the single-goroutine contract
	// holds, and the instance's monitors are reset per sweep anyway.
	var batch opt.BatchObjective
	if o.Lanes > 1 && p.NewBatchW != nil {
		batch = p.NewBatchW(o.Lanes)
	}

	budget := o.evalsPerStart(p.Dim)
	// run executes start s and folds it, reporting whether the search is
	// decided (solution in hand, or cancelled).
	run := func(s int) bool {
		if err := ctx.Err(); err != nil {
			res.Canceled = true
			return true
		}
		cfg := opt.Config{
			Seed:       o.Seed + int64(s)*1000003,
			MaxEvals:   budget,
			Bounds:     o.Bounds,
			StopAtZero: true,
			Trace:      o.Trace,
			Ctx:        ctx,
			Batch:      batch,
		}
		r := backend.Minimize(opt.Objective(p.W), p.Dim, cfg)
		res.Evals += r.Evals
		res.Restarts++
		res.Stages = mergeStages(res.Stages, r.Stages)
		if r.F < res.W {
			res.W = r.F
		}
		// A start can both sample a zero and observe cancellation (the
		// deadline fires between the zero and the next done() check):
		// the zero wins — discarding a solution in hand would turn a
		// decided problem into "not found".
		if r.FoundZero {
			// Soundness guard (§5.2): confirm membership by concrete
			// execution when an oracle is available.
			if p.Member != nil && !p.Member(r.X) {
				res.Rejected++
			} else {
				res.Found = true
				res.X = r.X
				res.W = 0
				return true
			}
		}
		if r.Canceled {
			res.Canceled = true
			return true
		}
		// The start finished undecided without exhausting its budget
		// (portfolio early exit, converged local search, rejected zero):
		// the leftover is reclaimable.
		if r.Evals < budget {
			res.Reclaimed += budget - r.Evals
		}
		return false
	}
	for s := 0; s < o.starts(); s++ {
		if run(s) {
			return res
		}
	}
	// Budget reallocation: every evaluation a start returned unused
	// (portfolio early exit, converged local search) funds extra
	// restarts for the still-unsolved problem — one bonus round, seeds
	// continuing the same derivation, so the outcome is a pure function
	// of the options. Backends that always exhaust their budget reclaim
	// nothing and keep the historical schedule exactly.
	for j, k := 0, bonusStarts(res.Reclaimed, budget, o.starts()); j < k; j++ {
		res.BonusStarts++
		if run(o.starts() + j) {
			return res
		}
	}
	return res
}

// solveParallel distributes the restarts of Algorithm 2 over a worker
// pool and folds the per-start results in start order, stopping at the
// first membership-accepted zero — exactly the serial loop's semantics,
// so Solve returns identical Results for every worker count.
func solveParallel(ctx context.Context, p Problem, o Options) Result {
	// Each executed start gets its own batch evaluator, constructed in
	// the worker goroutine that runs it — same per-start isolation as
	// the scalar NewW instances.
	var batchFactory func(int) opt.BatchObjective
	if o.Lanes > 1 && p.NewBatchW != nil {
		batchFactory = func(int) opt.BatchObjective {
			return p.NewBatchW(o.Lanes)
		}
	}
	budget := o.evalsPerStart(p.Dim)
	launch := func(n int, seed int64) []opt.StartResult {
		return opt.ParallelStarts(o.backend(), func(int) opt.Objective {
			return opt.Objective(p.NewW())
		}, p.Dim, opt.ParallelConfig{
			Starts:     n,
			Workers:    o.Workers,
			Seed:       seed,
			SeedStride: 1000003,
			MaxEvals:   budget,
			Bounds:     o.Bounds,
			StopAtZero: true,
			Batch:      batchFactory,
			Accept: func(_ int, r opt.Result) bool {
				return p.Member == nil || p.Member(r.X)
			},
			Ctx: ctx,
		})
	}

	res := Result{W: math.Inf(1)}
	// fold merges one scheduled batch in start order — exactly the
	// serial loop's bookkeeping, including the reclaimed-budget
	// accounting — and reports whether the search is decided.
	fold := func(starts []opt.StartResult, bonus bool) bool {
		for _, sr := range starts {
			res.Evals += sr.Evals
			if sr.Evals > 0 || !sr.Canceled {
				res.Restarts++
				if bonus {
					res.BonusStarts++
				}
				res.Stages = mergeStages(res.Stages, sr.Stages)
				if sr.F < res.W {
					res.W = sr.F
				}
			}
			// As in the serial loop: a start holding an accepted zero wins
			// over its (simultaneous) cancellation flag.
			if sr.FoundZero {
				if sr.ZeroAccepted {
					res.Found = true
					res.X = sr.X
					res.W = 0
					return true
				}
				res.Rejected++
			}
			if sr.Canceled {
				// Stop folding — the slots after a cancelled start are
				// cancelled or unreliable too.
				res.Canceled = true
				return true
			}
			if sr.Evals < budget && !sr.Skipped {
				res.Reclaimed += budget - sr.Evals
			}
		}
		return false
	}
	if fold(launch(o.starts(), o.Seed), false) {
		return res
	}
	// Budget reallocation, as in the serial loop: one bonus round funded
	// by the reclaimed evaluations, seeds continuing the same per-start
	// derivation — so the result is identical to the serial path and to
	// every other worker count.
	if k := bonusStarts(res.Reclaimed, budget, o.starts()); k > 0 {
		fold(launch(k, o.Seed+int64(o.starts())*1000003), true)
	}
	return res
}
