package fuzz

import (
	"fmt"

	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/rt"
)

// BackendCheck configures CheckBackends.
type BackendCheck struct {
	// Backends lists the backend names to exercise; empty selects every
	// registered backend (opt.BackendNames).
	Backends []string
	// Seed makes the run deterministic.
	Seed int64
	// Evals bounds weak-distance evaluations per backend run; 0 selects
	// 300.
	Evals int
	// Bounds optionally restricts the search space.
	Bounds []opt.Bound
}

func (c BackendCheck) backends() []string {
	if len(c.Backends) > 0 {
		return c.Backends
	}
	return opt.BackendNames()
}

func (c BackendCheck) evals() int {
	if c.Evals > 0 {
		return c.Evals
	}
	return 300
}

// CheckBackends is oracle layer 2 — the backend differential: every
// registered MO backend minimizes the boundary weak distance of the
// program, and any claimed zero must replay to a confirmed boundary
// witness (some executed comparison exactly on its boundary). A backend
// that fails to converge reports not-found, which is legitimate
// (Limitation 3 incompleteness); a zero without a witness is a false
// witness and fails the oracle.
//
// The weak distance runs with the high-precision product accumulator,
// so a claimed zero cannot be an artifact of float64 product underflow
// (the §5.2 Limitation-2 defect) — with it, the product is zero iff
// some factor is exactly zero, making the replay oracle decidable.
func CheckBackends(src, fn string, c BackendCheck) []Violation {
	mod, err := ir.Compile(src)
	if err != nil {
		return nil
	}
	if mod.Func(fn) == nil {
		return nil
	}
	it := interp.New(mod)
	p, err := it.Program(fn)
	if err != nil {
		return nil
	}
	if len(p.Branches) == 0 {
		return nil // empty product: the weak distance is constant 1
	}

	var out []Violation
	for _, name := range c.backends() {
		be, err := opt.BackendByName(name)
		if err != nil {
			out = append(out, Violation{Layer: "backend", Program: src,
				Detail: "backend registry: " + err.Error()})
			continue
		}
		mon := &instrument.Boundary{HighPrecision: true}
		obj := opt.Objective(p.Instance().WeakDistance(mon))
		r := be.Minimize(obj, p.Dim, opt.Config{
			Seed:       c.Seed,
			MaxEvals:   c.evals(),
			Bounds:     c.Bounds,
			StopAtZero: true,
		})
		if !r.FoundZero {
			// Not-found: sound by definition. But the reported minimum
			// must at least be consistent under replay — the objective
			// is deterministic.
			if len(r.X) == p.Dim {
				if w := replayBoundary(p, r.X); w != r.F {
					out = append(out, Violation{Layer: "backend", Program: src,
						Detail: fmt.Sprintf("%s: reported minimum W=%v but replay gives %v", name, r.F, w),
						Input:  append([]float64(nil), r.X...)})
				}
			}
			continue
		}
		// Claimed zero: must replay to zero AND carry a boundary
		// witness.
		if w := replayBoundary(p, r.X); w != 0 {
			out = append(out, Violation{Layer: "backend", Program: src,
				Detail: fmt.Sprintf("%s: claimed W=0 but replay gives W=%v (false witness)", name, w),
				Input:  append([]float64(nil), r.X...)})
			continue
		}
		wit := &instrument.BoundaryWitness{}
		p.Execute(wit, r.X)
		if len(wit.Sites()) == 0 {
			out = append(out, Violation{Layer: "backend", Program: src,
				Detail: fmt.Sprintf("%s: claimed W=0 but no branch sits on its boundary (spurious zero)", name),
				Input:  append([]float64(nil), r.X...)})
		}
	}
	return out
}

// replayBoundary re-executes the boundary weak distance at x on a fresh
// monitor and instance.
func replayBoundary(p *rt.Program, x []float64) float64 {
	mon := &instrument.Boundary{HighPrecision: true}
	return p.Instance().Execute(mon, x)
}
