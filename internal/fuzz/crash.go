package fuzz

// This file is the crash-recovery oracle: a campaign that runs a
// generated workload to completion under a durable job engine (the
// golden run), then repeatedly simulates a SIGKILL by truncating the
// golden journal at a random byte offset, recovers a fresh engine from
// the truncated prefix, and requires every job the journal had accepted
// to reach a terminal state with results byte-identical (modulo
// pipeline.NormalizeDurations) to the uninterrupted run. Offsets cut
// frames mid-record (the torn-final-record case) and between records
// (the SIGKILL-between-records case) alike; optional failpoints add
// transient fsync failures and worker panics on top.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/journal"
	"repro/internal/pipeline"
)

// CrashOptions configures a crash-recovery campaign.
type CrashOptions struct {
	// Rounds is the number of crash offsets exercised; 0 selects 6.
	Rounds int
	// Seed derives the workload and every crash offset; a campaign is
	// fully reproducible from (Seed, Rounds, Programs).
	Seed int64
	// Programs is the number of generated programs (one journaled job
	// batch each); 0 selects 3.
	Programs int
	// MaxDims cycles entry arity over 1..MaxDims; 0 selects 3.
	MaxDims int
	// Evals is the per-analysis weak-distance budget; 0 selects 60.
	Evals int
	// Analyses restricts the per-program spec list; empty selects a
	// cheap deterministic trio (coverage, overflow, xsat).
	Analyses []string
	// Workers bounds the pipeline worker pool (0 = all CPUs); per the
	// batch-evaluation contract it never changes results.
	Workers int
	// PanicJobs injects a deterministic panic into a content-keyed
	// subset of jobs (roughly one in PanicJobs), in the golden run and
	// every recovery alike — exercising the per-job recover boundary
	// under crash recovery. 0 disables.
	PanicJobs int
	// FaultProb injects transient fsync failures with this probability
	// into every recovery round's journal — exercising the engine's
	// retry/backoff path. 0 disables.
	FaultProb float64
	// Tamper corrupts one golden expectation before comparing: the
	// self-test proving the oracle detects divergent recoveries.
	Tamper bool
	// Dir is the scratch directory for journals (emptied per round);
	// empty uses a temp dir removed at the end.
	Dir string
	// Progress, when non-nil, receives (rounds done, total).
	Progress func(done, total int)
}

func (o CrashOptions) rounds() int {
	if o.Rounds > 0 {
		return o.Rounds
	}
	return 6
}

func (o CrashOptions) programs() int {
	if o.Programs > 0 {
		return o.Programs
	}
	return 3
}

func (o CrashOptions) evals() int {
	if o.Evals > 0 {
		return o.Evals
	}
	return 60
}

func (o CrashOptions) analyses() []string {
	if len(o.Analyses) > 0 {
		return o.Analyses
	}
	return []string{"coverage", "overflow", "xsat"}
}

// newPipeline builds the worker pool for one run, with the
// content-keyed panic failpoint installed when requested. Keying on
// the spec (not the batch index) matters: a requeued job re-executes
// as a suffix batch, so positional injection would fire on different
// jobs than the golden run's.
func (o CrashOptions) newPipeline() *pipeline.Pipeline {
	pl := pipeline.New(o.Workers)
	if n := int64(o.PanicJobs); n > 0 {
		pl.InjectPanic = func(idx int, j pipeline.Job) string {
			if (j.Spec.Seed+int64(len(j.Spec.Analysis)))%n == 0 {
				return fmt.Sprintf("injected crash-campaign panic (%s, seed %d)",
					j.Spec.Analysis, j.Spec.Seed)
			}
			return ""
		}
	}
	return pl
}

// CrashResult is the outcome of a crash-recovery campaign.
type CrashResult struct {
	// Rounds is the number of crash offsets exercised; Jobs the golden
	// workload's batch count.
	Rounds int
	Jobs   int
	// Recovered counts jobs rebuilt from truncated journals across all
	// rounds; Requeued the subset that had to re-execute.
	Recovered int
	Requeued  int
	// Violations are all oracle failures, in discovery order.
	Violations []Violation
}

// Ok reports a clean campaign.
func (r *CrashResult) Ok() bool { return len(r.Violations) == 0 }

// Summary is a one-line outcome.
func (r *CrashResult) Summary() string {
	return fmt.Sprintf("%d crash rounds over %d jobs, %d recovered (%d requeued): %d violations",
		r.Rounds, r.Jobs, r.Recovered, r.Requeued, len(r.Violations))
}

// crashV builds a crash-layer violation.
func crashV(format string, args ...any) Violation {
	return Violation{Layer: "crash", Detail: fmt.Sprintf(format, args...)}
}

// journalOptions is the campaign's journal configuration: a short
// group-commit interval (the campaign is latency-sensitive, not
// throughput-sensitive) and no compaction, so the golden log is one
// contiguous record stream that truncation can cut anywhere.
func journalOptions() journal.Options {
	return journal.Options{SyncEvery: time.Millisecond, CompactBytes: -1}
}

// RunCrash executes a crash-recovery campaign.
func RunCrash(o CrashOptions) *CrashResult {
	res := &CrashResult{}
	dir := o.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "fpfuzz-crash-*")
		if err != nil {
			res.Violations = append(res.Violations, crashV("scratch dir: %v", err))
			return res
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	// The workload: one job batch per generated program, specs drawn
	// from the same (seed, index) contract the differential campaigns
	// use.
	var batches [][]pipeline.Job
	for i := 0; i < o.programs(); i++ {
		src, _, _, rng := generateProgram(o.Seed, i, o.MaxDims)
		specs := analysisSpecs(src, rng, progSeed(o.Seed, i),
			Options{Evals: o.evals(), Analyses: o.analyses()})
		var jobs []pipeline.Job
		for _, spec := range specs {
			job := pipeline.Job{Spec: spec}
			if spec.Formula == "" {
				job.Source = src
				job.Func = "f"
			}
			jobs = append(jobs, job)
		}
		batches = append(batches, jobs)
	}
	res.Jobs = len(batches)

	// Golden run: the workload start to finish under a durable engine,
	// ending in a graceful shutdown. Its journal is the byte stream the
	// rounds truncate; its results are the byte-identity expectation.
	expect, logBytes, vs := o.goldenRun(filepath.Join(dir, "golden"), batches)
	res.Violations = append(res.Violations, vs...)
	if len(logBytes) == 0 || len(res.Violations) > 0 {
		return res
	}
	if o.Tamper {
		// Self-test: a corrupted expectation must surface as a
		// violation. Every job is tampered — picking one at random (map
		// iteration order) made the self-test flaky, since a short
		// truncation prefix can leave the chosen job out of every
		// round's comparison set.
		for id := range expect {
			if len(expect[id]) > 0 {
				expect[id][0] += `{"tampered":true}`
			}
		}
	}

	rng := rand.New(rand.NewSource(o.Seed ^ 0x6372617368)) // "crash"
	for r := 0; r < o.rounds(); r++ {
		off := 1 + rng.Intn(len(logBytes))
		res.Rounds++
		res.Violations = append(res.Violations,
			o.recoverRound(dir, r, logBytes[:off], expect, res)...)
		if o.Progress != nil {
			o.Progress(r+1, o.rounds())
		}
	}
	return res
}

// goldenRun executes every batch to completion under a durable engine
// and returns the normalized per-job result expectation plus the raw
// journal bytes.
func (o CrashOptions) goldenRun(dir string, batches [][]pipeline.Job) (map[string][]string, []byte, []Violation) {
	store, err := pipeline.OpenStore(dir, journalOptions())
	if err != nil {
		return nil, nil, []Violation{crashV("golden journal: %v", err)}
	}
	eng := pipeline.NewJobEngine(o.newPipeline())
	eng.Store = store

	var vs []Violation
	var order []string
	for i, jobs := range batches {
		rec, err := eng.Submit(nil, jobs, 0)
		if err != nil {
			vs = append(vs, crashV("golden submit %d: %v", i, err))
			continue
		}
		order = append(order, rec.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	expect := map[string][]string{}
	for _, id := range order {
		rec, ok := eng.Get(id)
		if !ok {
			vs = append(vs, crashV("golden job %s vanished", id))
			continue
		}
		var got []string
		status := pipeline.FollowJob(ctx, rec, func(res []byte) {
			got = append(got, string(pipeline.NormalizeDurations(res)))
		})
		if status != pipeline.JobCompleted {
			vs = append(vs, crashV("golden job %s ended %q, want completed", id, status))
		}
		expect[id] = got
	}
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := eng.Shutdown(sctx); err != nil {
		vs = append(vs, crashV("golden shutdown: %v", err))
	}
	if err := store.Close(); err != nil {
		vs = append(vs, crashV("golden close: %v", err))
	}
	logBytes, err := os.ReadFile(journal.LogPath(dir))
	if err != nil {
		vs = append(vs, crashV("golden log: %v", err))
	}
	return expect, logBytes, vs
}

// recoverRound simulates one crash: the golden journal truncated to
// prefix stands in for the log a SIGKILLed process left behind. A fresh
// engine recovers from it (under injected fsync faults, when
// configured) and every job the truncated journal had accepted must
// reach a terminal state with the golden results.
func (o CrashOptions) recoverRound(dir string, round int, prefix []byte, expect map[string][]string, res *CrashResult) []Violation {
	var vs []Violation
	rd := filepath.Join(dir, fmt.Sprintf("round-%03d", round))
	if err := os.MkdirAll(rd, 0o755); err != nil {
		return []Violation{crashV("round %d: %v", round, err)}
	}
	defer os.RemoveAll(rd)
	if err := os.WriteFile(journal.LogPath(rd), prefix, 0o644); err != nil {
		return []Violation{crashV("round %d: %v", round, err)}
	}

	jo := journalOptions()
	if o.FaultProb > 0 {
		fp := journal.NewFailpoints(o.Seed + int64(round))
		fp.SyncFailProb = o.FaultProb
		jo.Fail = fp
	}
	store, err := pipeline.OpenStore(rd, jo)
	if err != nil {
		return []Violation{crashV("round %d: reopening truncated journal (offset %d): %v",
			round, len(prefix), err)}
	}
	defer store.Close()
	recovered := store.Recovered()
	eng := pipeline.NewJobEngine(o.newPipeline())
	eng.Store = store
	restored, requeued := eng.Recover(recovered)
	res.Recovered += restored
	res.Requeued += requeued

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, rj := range recovered {
		want, known := expect[rj.ID]
		if !known {
			vs = append(vs, crashV("round %d: journal recovered unknown job %s", round, rj.ID))
			continue
		}
		rec, ok := eng.Get(rj.ID)
		if !ok {
			vs = append(vs, crashV("round %d: accepted job %s missing after recovery", round, rj.ID))
			continue
		}
		var got []string
		status := pipeline.FollowJob(ctx, rec, func(b []byte) {
			got = append(got, string(pipeline.NormalizeDurations(b)))
		})
		if status != pipeline.JobCompleted {
			vs = append(vs, crashV("round %d: job %s ended %q (%s), want completed",
				round, rj.ID, status, rec.Header().Reason))
			continue
		}
		if len(got) != len(want) {
			vs = append(vs, crashV("round %d: job %s recovered %d results, golden run had %d",
				round, rj.ID, len(got), len(want)))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				vs = append(vs, crashV("round %d: job %s result %d differs from the uninterrupted run:\n%s\nvs\n%s",
					round, rj.ID, i, want[i], got[i]))
				break
			}
		}
	}
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	eng.Shutdown(sctx)
	return vs
}
