package fuzz_test

import (
	"strings"
	"testing"

	"repro/internal/fuzz"
)

// TestClusterCampaignClean runs a small dead-worker campaign: with the
// busiest worker killed mid-batch, every job must complete on the
// survivor with results byte-identical to the single-node run, and the
// failover must show up in the requeue counter.
func TestClusterCampaignClean(t *testing.T) {
	res := fuzz.RunCluster(fuzz.ClusterOptions{
		Seed: 1, Programs: 3, Evals: 80, Logf: t.Logf,
	})
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("%s", v.Detail)
		}
	}
	if res.Workers != 2 || res.Jobs != 3 {
		t.Errorf("campaign shape: %s", res.Summary())
	}
	if res.Requeued == 0 {
		t.Errorf("kill produced no requeues: %s", res.Summary())
	}
}

// TestClusterCampaignSelfTest proves the oracle has teeth: a tampered
// golden expectation must surface as a violation.
func TestClusterCampaignSelfTest(t *testing.T) {
	res := fuzz.RunCluster(fuzz.ClusterOptions{
		Seed: 2, Programs: 2, Evals: 60, Tamper: true,
	})
	if res.Ok() {
		t.Fatal("tampered expectation produced no violations — the oracle is blind")
	}
	found := false
	for _, v := range res.Violations {
		if v.Layer == "cluster" && strings.Contains(v.Detail, "differs from the single-node run") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations do not include a divergence report: %+v", res.Violations)
	}
}

// TestLoadHarnessSmoke replays a tiny workload through an in-process
// fleet: every batch must complete and the throughput accounting must
// add up.
func TestLoadHarnessSmoke(t *testing.T) {
	res := fuzz.RunLoad(fuzz.LoadOptions{
		Seed: 1, Programs: 2, Batches: 4, Concurrency: 2, Evals: 30,
	})
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("%s", v.Detail)
		}
	}
	if res.Batches != 4 || res.Jobs == 0 || res.JobsPerSec <= 0 {
		t.Errorf("load accounting: %s", res.Summary())
	}
	if res.Stats == nil {
		t.Error("no /stats document scraped after the run")
	}
}
