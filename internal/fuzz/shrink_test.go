package fuzz_test

import (
	"strings"
	"testing"

	"repro/internal/fuzz"
	"repro/internal/ir"
)

// TestShrinkInjectedEngineDivergence is the acceptance scenario: inject
// an engine-divergence bug (the VM mis-executes programs containing a
// division), let the campaign find a failing program, and shrink it.
// The reproducer must stay failing, compile, and come out at <= 10
// statements.
func TestShrinkInjectedEngineDivergence(t *testing.T) {
	// The injected bug: any program containing a division diverges (the
	// tamper perturbs the VM result whenever the source has a '/').
	tamper := func(src string, r float64) float64 {
		if strings.Contains(src, "/") {
			return flipBit(src, r)
		}
		return r
	}

	// Hunt: walk the campaign's program stream until the oracle fires.
	var failing string
	var inputs [][]float64
	for i := 0; i < 200; i++ {
		src, _, in := fuzz.GenerateProgram(1, i, 3)
		if len(fuzz.CheckEngines(src, "f", in, fuzz.EngineCheck{TamperVM: tamper})) > 0 {
			failing, inputs = src, in
			break
		}
	}
	if failing == "" {
		t.Fatal("no generated program triggered the injected divergence")
	}

	// The shrink predicate re-runs the engine oracle on the failing
	// program's own input battery (deterministic in the candidate
	// source; shrinking never changes the entry arity).
	fails := func(src string) bool {
		return len(fuzz.CheckEngines(src, "f", inputs, fuzz.EngineCheck{TamperVM: tamper})) > 0
	}

	before := fuzz.CountStmts(failing)
	reduced, err := fuzz.Shrink(failing, fails)
	if err != nil {
		t.Fatal(err)
	}
	after := fuzz.CountStmts(reduced)
	t.Logf("shrunk %d statements -> %d:\n%s", before, after, reduced)

	if !fails(reduced) {
		t.Fatal("reduced program no longer fails")
	}
	if _, err := ir.Compile(reduced); err != nil {
		t.Fatalf("reduced program does not compile: %v", err)
	}
	if after > 10 {
		t.Fatalf("reducer left %d statements, want <= 10:\n%s", after, reduced)
	}
	if !strings.Contains(reduced, "/") {
		t.Fatalf("reducer removed the division the failure depends on:\n%s", reduced)
	}
}

// TestShrinkRequiresReproduction: a predicate that never fires is an
// error, not a silent no-op.
func TestShrinkRequiresReproduction(t *testing.T) {
	src, _, _ := fuzz.GenerateProgram(1, 0, 1)
	if _, err := fuzz.Shrink(src, func(string) bool { return false }); err == nil {
		t.Fatal("Shrink accepted a non-reproducing failure")
	}
}
