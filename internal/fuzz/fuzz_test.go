package fuzz_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fuzz"
)

// flipBit is the canonical injected engine bug: it perturbs every VM
// result by one ULP (NaNs map to 0 so the corruption never hides inside
// the NaN equivalence class).
func flipBit(_ string, r float64) float64 {
	if math.IsNaN(r) {
		return 0
	}
	return math.Float64frombits(math.Float64bits(r) ^ 1)
}

// TestCampaignClean runs a small end-to-end campaign — every oracle
// layer, every backend, every analysis — and requires zero violations:
// the system agrees with itself over generated programs.
func TestCampaignClean(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 6
	}
	res := fuzz.Run(fuzz.Options{N: n, Seed: 1, Evals: 150, Recheck: true})
	if !res.Ok() {
		for i, v := range res.Violations {
			if i >= 3 {
				t.Errorf("(%d more violations suppressed)", len(res.Violations)-3)
				break
			}
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("campaign not clean: %s", res.Summary())
	}
	if res.Programs != n {
		t.Fatalf("ran %d programs, want %d", res.Programs, n)
	}
	if res.Jobs == 0 || res.BackendRuns == 0 || res.EngineInputs == 0 {
		t.Fatalf("some oracle layer did not run: %s", res.Summary())
	}
	if res.CacheHits == 0 {
		t.Fatalf("pipeline module cache never hit across %d jobs (6 analyses share each source)", res.Jobs)
	}
}

// TestCampaignDeterministic: identical options must produce identical
// summaries (the campaign is reproducible from its seed alone).
func TestCampaignDeterministic(t *testing.T) {
	opts := fuzz.Options{N: 4, Seed: 7, Evals: 100}
	a := fuzz.Run(opts)
	b := fuzz.Run(opts)
	if a.Summary() != b.Summary() {
		t.Fatalf("campaign not deterministic:\n%s\n%s", a.Summary(), b.Summary())
	}
}

// TestEngineOracleCatchesInjectedDivergence: a deliberately tampered VM
// result must be caught by oracle layer 1 — the oracle actually bites.
func TestEngineOracleCatchesInjectedDivergence(t *testing.T) {
	src, _, inputs := fuzz.GenerateProgram(1, 0, 1)
	vs := fuzz.CheckEngines(src, "f", inputs, fuzz.EngineCheck{TamperVM: flipBit})
	if len(vs) == 0 {
		t.Fatal("tampered VM result not caught by the engine oracle")
	}
	if vs[0].Layer != "engine" {
		t.Fatalf("violation layer %q, want engine", vs[0].Layer)
	}
}

// TestBatchOracleCatchesInjectedDivergence: a deliberately tampered
// batched weak distance must be caught by the batch third party of
// oracle layer 1, and the violation must name the lane width.
func TestBatchOracleCatchesInjectedDivergence(t *testing.T) {
	src, _, inputs := fuzz.GenerateProgram(1, 0, 1)
	vs := fuzz.CheckEngines(src, "f", inputs, fuzz.EngineCheck{
		TamperBatch: func(_ string, w float64) float64 { return w + 1 },
	})
	if len(vs) == 0 {
		t.Fatal("tampered batch weak distance not caught by the engine oracle")
	}
	if !strings.Contains(vs[0].Detail, "lanes=") {
		t.Fatalf("violation not attributed to the batch party: %s", vs[0].Detail)
	}
}

// TestBatchOracleDisabled: []int{0} switches the batch party off — the
// tamper hook must then go unnoticed (the serial battery never calls
// it).
func TestBatchOracleDisabled(t *testing.T) {
	src, _, inputs := fuzz.GenerateProgram(1, 0, 1)
	vs := fuzz.CheckEngines(src, "f", inputs, fuzz.EngineCheck{
		LaneWidths:  []int{0},
		TamperBatch: func(_ string, w float64) float64 { return w + 1 },
	})
	if len(vs) != 0 {
		t.Fatalf("batch party ran despite LaneWidths=[0]: %s", vs[0].Detail)
	}
}

// TestCampaignCatchesInjectedDivergence: the same fault injected into a
// full campaign surfaces as a violation (and the campaign stops at its
// violation budget rather than running forever).
func TestCampaignCatchesInjectedDivergence(t *testing.T) {
	res := fuzz.Run(fuzz.Options{
		N: 10, Seed: 1, Evals: 60, MaxViolations: 3,
		SkipBackends: true, SkipReplay: true,
		Engine: fuzz.EngineCheck{TamperVM: flipBit},
	})
	if res.Ok() {
		t.Fatal("campaign missed the injected engine divergence")
	}
	if len(res.Violations) > 3+1 {
		t.Fatalf("violation budget not honored: %d violations", len(res.Violations))
	}
}
