package fuzz_test

import (
	"testing"

	"repro/internal/fuzz"
	"repro/internal/opt"
)

// TestBackendOracleCoversPortfolio: the layer-2 backend differential
// draws its default lineup from the opt registry, so registering the
// portfolio scheduler put it in every campaign automatically — and its
// claimed zeros must survive the same replay/witness oracle as the
// fixed backends, including under the oracle's tiny 300-eval default
// budget (smaller than one plateau window).
func TestBackendOracleCoversPortfolio(t *testing.T) {
	found := false
	for _, name := range opt.BackendNames() {
		if name == "portfolio" {
			found = true
		}
	}
	if !found {
		t.Fatal("portfolio missing from opt.BackendNames — campaigns would skip it")
	}

	const src = `
func prog(x double) {
    if (x <= 1.0) { x = x + 1.0; }
    var y double = x * x;
    if (y <= 4.0) { x = x - 1.0; }
}`
	for _, seed := range []int64{1, 2, 3} {
		if v := fuzz.CheckBackends(src, "prog", fuzz.BackendCheck{
			Backends: []string{"portfolio"},
			Seed:     seed,
		}); len(v) != 0 {
			t.Errorf("seed %d: portfolio violated the backend oracle: %+v", seed, v)
		}
	}
}
