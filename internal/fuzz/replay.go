package fuzz

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/fp"
	"repro/internal/instrument"
	"repro/internal/rt"
	"repro/internal/sat"
)

// ReplayFindings is oracle layer 3 — the paper's soundness property as
// an executable check: every finding reported by a registered analysis
// is re-executed through rt (or, for xsat, through concrete formula
// evaluation) and confirmed against the claimed verdict.
//
//   - bva: every reported example input must sit exactly on some
//     executed branch boundary, and the report itself must claim zero
//     soundness violations.
//   - coverage: every recorded input must actually take the branch side
//     it is recorded for, and the covered list must be consistent.
//   - overflow: every finding's input must drive the finding's
//     operation site to magnitude >= MAX.
//   - nan: every finding's input must produce the claimed non-finite
//     class at the finding's site.
//   - reach: a found input must realize the target decision sequence.
//   - xsat: a Sat verdict's model must concretely satisfy the formula.
//
// Analyses may legitimately report "not found" — incompleteness is
// allowed (Limitation 3); only positive claims are checked. The spec
// supplies the target path (reach) and formula (xsat). The program p
// may be nil for formula-based reports.
func ReplayFindings(p *rt.Program, spec analysis.Spec, rep analysis.Report) []Violation {
	var out []Violation
	add := func(detail string, x []float64) {
		out = append(out, Violation{Layer: "replay", Detail: detail,
			Input: append([]float64(nil), x...)}) // program attached by callers that have source
	}

	switch r := rep.(type) {
	case *analysis.BoundaryReport:
		// Under the plain float64 product, sampled zeros can be
		// underflow artifacts (Limitation 2); the analysis rejects and
		// counts them, which is correct behavior, not a violation. With
		// the ULP or high-precision distance a zero provably carries a
		// witness, so any counted rejection is a real defect.
		if r.SoundnessViolations != 0 && (spec.ULP || spec.HighPrecision) {
			add(fmt.Sprintf("bva: %d sampled zeros had no boundary witness despite an underflow-free distance",
				r.SoundnessViolations), nil)
		}
		for _, cs := range r.Conditions {
			for _, x := range cs.Examples {
				wit := &instrument.BoundaryWitness{}
				p.Instance().Execute(wit, x)
				hit := false
				for _, s := range wit.Sites() {
					if s == cs.Key.Site {
						hit = true
						break
					}
				}
				if !hit {
					add(fmt.Sprintf("bva: example for site %d does not replay to a boundary hit (witness sites %v)",
						cs.Key.Site, wit.Sites()), x)
				}
			}
		}

	case *analysis.CoverReport:
		for _, side := range r.Covered {
			x, ok := r.Inputs[side]
			if !ok {
				add(fmt.Sprintf("coverage: covered side %d:%v has no recorded input", side.Site, side.Taken), nil)
				continue
			}
			rec := &instrument.RecordNewSides{Covered: map[instrument.Side]bool{}}
			p.Instance().Execute(rec, x)
			hit := false
			for _, s := range rec.Sides() {
				if s == side {
					hit = true
					break
				}
			}
			if !hit {
				add(fmt.Sprintf("coverage: input recorded for side %d:%v does not take it (takes %v)",
					side.Site, side.Taken, rec.Sides()), x)
			}
		}

	case *analysis.OverflowRun:
		out = append(out, replayOverflow(p, r.OverflowReport)...)

	case *analysis.NonFiniteReport:
		for _, f := range r.Findings {
			probe := &siteProbe{site: f.Site}
			p.Instance().Execute(probe, f.Input)
			got := classify(probe.val)
			if got != f.Class {
				add(fmt.Sprintf("nan: finding at site %d claims %s but replay produces %s (%v)",
					f.Site, f.Class, got, probe.val), f.Input)
			}
		}

	case *analysis.ReachRun:
		if r.Found {
			wit := &instrument.PathWitness{}
			p.Instance().Execute(wit, r.X)
			if !wit.Matches(spec.Path) {
				add(fmt.Sprintf("reach: found input does not realize target %v (decisions %v)",
					spec.Path, wit.Decisions()), r.X)
			}
		}

	case *analysis.SatRun:
		if r.Verdict == sat.Sat {
			f, _, err := sat.Parse(spec.Formula)
			if err != nil {
				add("xsat: spec formula does not re-parse: "+err.Error(), nil)
				break
			}
			if !f.Eval(r.Model) {
				add(fmt.Sprintf("xsat: Sat model %v does not satisfy %q", r.Model, spec.Formula), r.Model)
			}
		}

	default:
		add(fmt.Sprintf("replay: unknown report type %T (no replay oracle registered)", rep), nil)
	}
	return out
}

// replayOverflow confirms every overflow finding: the input must drive
// the finding's operation site to saturation or beyond (|v| >= MAX, the
// Algorithm 3 overflow predicate fp.OverflowDist(v) == 0).
func replayOverflow(p *rt.Program, r *analysis.OverflowReport) []Violation {
	var out []Violation
	for _, f := range r.Findings {
		probe := &siteProbe{site: f.Site, wantOverflow: true}
		p.Instance().Execute(probe, f.Input)
		if fp.OverflowDist(probe.val) != 0 {
			out = append(out, Violation{Layer: "replay",
				Detail: fmt.Sprintf("overflow: finding at site %d does not replay to overflow (|v|=%v < MAX)",
					f.Site, math.Abs(probe.val)),
				Input: append([]float64(nil), f.Input...)})
		}
	}
	return out
}

// classify mirrors the nan analysis' IEEE-754 classification.
func classify(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return "finite"
}

// siteProbe replays an execution and records the value produced at one
// operation site. It keeps the latest value and stops at the first one
// matching the hunt's target event (non-finite, or overflow when
// wantOverflow) — the event the analysis' weak distance hit zero on.
type siteProbe struct {
	site         int
	wantOverflow bool
	val          float64
}

func (p *siteProbe) Reset() { p.val = 0 }

func (p *siteProbe) Branch(int, fp.CmpOp, float64, float64) {}

func (p *siteProbe) FPOp(site int, v float64) bool {
	if site != p.site {
		return false
	}
	p.val = v
	if p.wantOverflow {
		return fp.OverflowDist(v) == 0
	}
	return math.IsNaN(v) || math.IsInf(v, 0)
}

func (p *siteProbe) Value() float64 { return 0 }
