// Package fuzz is the differential-oracle harness of the testing
// stack: it feeds generated FPL programs (internal/fplgen) through the
// whole system — both execution engines, every registered MO backend,
// all registered analyses, the batch pipeline — and checks the paper's
// central soundness property at each layer:
//
//  1. Engine differential: the flat-code VM, the tree-walking
//     interpreter, and the lane-parallel batch VM are bit-identical on
//     results, monitor observation traces, assertion failures,
//     step-budget aborts, and monitor early stops — the batch engine
//     checked lane by lane at several lane widths.
//  2. Backend differential: every opt.BackendByName backend either
//     converges to a replay-confirmed weak-distance zero or reports
//     not-found — never a false witness.
//  3. Finding replay: every finding reported by a registered analysis
//     is re-executed through rt and confirmed against the claimed
//     verdict (weak distances are sound witnesses — any input driven
//     to weak-distance zero is a real solution).
//
// The package also hosts the greedy program shrinker that minimizes
// failing programs into committable regression fixtures, and the
// campaign driver wiring generated corpora through internal/pipeline
// batches so fuzzing doubles as a worker-pool/cache stress test.
package fuzz

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/fp"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rt"
)

// Violation is one oracle failure: the smoking gun of a divergence
// between two components that must agree.
type Violation struct {
	// Layer names the oracle that fired: "engine", "backend", "replay",
	// or "pipeline".
	Layer string `json:"layer"`
	// Program is the FPL source under test ("" for formula-only
	// violations).
	Program string `json:"program,omitempty"`
	// Detail describes the divergence.
	Detail string `json:"detail"`
	// Input is the triggering input, when one exists.
	Input []float64 `json:"input,omitempty"`
}

func (v Violation) String() string {
	s := v.Layer + ": " + v.Detail
	if v.Input != nil {
		s += fmt.Sprintf(" (input %v)", v.Input)
	}
	if v.Program != "" {
		s += "\n" + strings.TrimRight(v.Program, "\n")
	}
	return s
}

// EngineCheck configures CheckEngines.
type EngineCheck struct {
	// MaxSteps bounds each uninstrumented run (0 = the engines'
	// default). The fuzz targets lower it so adversarial recursion
	// stays cheap.
	MaxSteps int
	// BudgetSweep re-runs under every step budget 1..BudgetSweep and
	// requires identical aborts; 0 selects 32, negative disables.
	BudgetSweep int
	// EarlyStops re-runs with a monitor stopping after each of the
	// first N FP-op observations; 0 selects 8, negative disables.
	EarlyStops int
	// MaxViolations stops the check after this many violations; 0
	// selects 1 (first divergence wins — the program is already a
	// reproducer).
	MaxViolations int
	// LaneWidths lists the lane widths of the batch-engine third party:
	// the whole input battery re-runs through the VM's lane-parallel
	// entry point (rt.Program.ExecuteBatch) at each width and must be
	// bit-identical, lane by lane, to the serial VM runs already checked
	// against the tree engine — weak distances, observation traces,
	// assert failure logs, budget aborts, and early stops. nil selects
	// {2, 5, 8}; widths below 2 are dropped, so []int{0} disables the
	// batch party.
	LaneWidths []int
	// TamperVM, when non-nil, perturbs the VM's uninstrumented result —
	// the injected-bug hook used to validate that the oracle and the
	// shrinker actually catch engine divergences. Production campaigns
	// leave it nil.
	TamperVM func(src string, r float64) float64
	// TamperBatch, when non-nil, perturbs every batched weak distance —
	// the injected-bug hook validating that the batch third party bites.
	TamperBatch func(src string, w float64) float64
}

func (c EngineCheck) budgetSweep() int {
	if c.BudgetSweep == 0 {
		return 32
	}
	if c.BudgetSweep < 0 {
		return 0
	}
	return c.BudgetSweep
}

func (c EngineCheck) earlyStops() int {
	if c.EarlyStops == 0 {
		return 8
	}
	if c.EarlyStops < 0 {
		return 0
	}
	return c.EarlyStops
}

func (c EngineCheck) maxViolations() int {
	if c.MaxViolations > 0 {
		return c.MaxViolations
	}
	return 1
}

func (c EngineCheck) laneWidths() []int {
	if c.LaneWidths == nil {
		return []int{2, 5, 8}
	}
	ws := make([]int, 0, len(c.LaneWidths))
	for _, w := range c.LaneWidths {
		if w >= 2 {
			ws = append(ws, w)
		}
	}
	return ws
}

// laneStop staggers monitor early stops across a battery so different
// lanes of one batched sweep retire after different FP-op counts;
// stagger 0 disables stopping.
func laneStop(i, stagger int) int {
	if stagger == 0 {
		return 0
	}
	return 1 + i%stagger
}

// obs is one recorded monitor observation.
type obs struct {
	branch bool
	site   int
	pred   fp.CmpOp
	a, b   uint64 // operand/result bits
}

// tracer records every observation; it can optionally request an early
// stop after a fixed number of FP-op observations.
type tracer struct {
	recs    []obs
	ops     int
	stopAt  int // stop when ops reaches stopAt (0 = never)
	stopped bool
}

func (t *tracer) Reset() {
	t.recs = t.recs[:0]
	t.ops = 0
	t.stopped = false
}

func (t *tracer) Branch(site int, op fp.CmpOp, a, b float64) {
	t.recs = append(t.recs, obs{branch: true, site: site, pred: op,
		a: math.Float64bits(a), b: math.Float64bits(b)})
}

func (t *tracer) FPOp(site int, v float64) bool {
	t.recs = append(t.recs, obs{site: site, a: math.Float64bits(v)})
	t.ops++
	if t.stopAt > 0 && t.ops >= t.stopAt {
		t.stopped = true
		return true
	}
	return false
}

func (t *tracer) Value() float64 { return float64(len(t.recs)) }

func sameTrace(a, b []obs) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

// CheckEngines runs the full engine-differential battery — oracle
// layer 1 — for one entry function over a set of inputs: uninstrumented
// result bits, assertion failure logs, full observation traces,
// step-budget aborts at every budget, and monitor early stops must all
// be bit-identical between the tree-walking reference and the flat-code
// VM. A compile failure is not a violation (the input was not a valid
// program); the caller decides whether that is expected.
func CheckEngines(src, fn string, inputs [][]float64, c EngineCheck) []Violation {
	mod, err := ir.Compile(src)
	if err != nil {
		return nil
	}
	if mod.Func(fn) == nil {
		return nil
	}
	tree := interp.New(mod)
	tree.Engine = interp.EngineTree
	tree.MaxSteps = c.MaxSteps
	vm := interp.New(mod)
	vm.Engine = interp.EngineVM
	vm.MaxSteps = c.MaxSteps

	var out []Violation
	report := func(detail string, x []float64) bool {
		out = append(out, Violation{
			Layer:   "engine",
			Program: src,
			Detail:  detail,
			Input:   append([]float64(nil), x...),
		})
		return len(out) >= c.maxViolations()
	}

	pt, err := tree.Program(fn)
	if err != nil {
		return nil
	}
	pv, err := vm.Program(fn)
	if err != nil {
		// The tree engine accepted the function but the VM did not:
		// that asymmetry is itself a divergence.
		return []Violation{{Layer: "engine", Program: src,
			Detail: "vm rejects a function the tree engine accepts: " + err.Error()}}
	}

	for _, x := range inputs {
		if len(x) != mod.Func(fn).NParams {
			continue
		}
		// Each input starts from clean failure logs: a divergence
		// `continue` on the previous input must not leak its
		// assert-failure entries into this one's comparison.
		tree.ClearFailures()
		vm.ClearFailures()

		// Result bits (uninstrumented run).
		rt1, err1 := tree.Run(fn, x)
		rt2, err2 := vm.Run(fn, x)
		if c.TamperVM != nil {
			rt2 = c.TamperVM(src, rt2)
		}
		if (err1 == nil) != (err2 == nil) {
			if report(fmt.Sprintf("%s(%v): run errors diverge: tree=%v vm=%v", fn, x, err1, err2), x) {
				return out
			}
			continue
		}
		if !sameBits(rt1, rt2) {
			if report(fmt.Sprintf("%s(%v): results diverge: tree=%v (%#x) vm=%v (%#x)",
				fn, x, rt1, math.Float64bits(rt1), rt2, math.Float64bits(rt2)), x) {
				return out
			}
			continue
		}

		// Assertion failure logs.
		if len(tree.Failures) != len(vm.Failures) {
			if report(fmt.Sprintf("%s(%v): tree recorded %d assert failures, vm %d",
				fn, x, len(tree.Failures), len(vm.Failures)), x) {
				return out
			}
		} else {
			for i := range tree.Failures {
				tf, vf := tree.Failures[i], vm.Failures[i]
				if tf.Pos != vf.Pos || tf.Label != vf.Label || fmt.Sprint(tf.Input) != fmt.Sprint(vf.Input) {
					if report(fmt.Sprintf("%s(%v): assert failure %d differs: tree=%v vm=%v",
						fn, x, i, tf, vf), x) {
						return out
					}
					break
				}
			}
		}
		tree.ClearFailures()
		vm.ClearFailures()

		// Full observation traces.
		mt, mv := &tracer{}, &tracer{}
		wt := pt.Execute(mt, x)
		wv := pv.Execute(mv, x)
		if wt != wv || !sameTrace(mt.recs, mv.recs) {
			if report(fmt.Sprintf("%s(%v): trace diverges (tree %d obs w=%v, vm %d obs w=%v)",
				fn, x, len(mt.recs), wt, len(mv.recs), wv), x) {
				return out
			}
			continue
		}
		nOps := mt.ops

		// Step-budget aborts: every small budget must abort at the same
		// point with the same observation prefix and the same NaN
		// marker.
		for budget := 1; budget <= c.budgetSweep(); budget++ {
			tree.MaxSteps, vm.MaxSteps = budget, budget
			r1, _ := tree.Run(fn, x)
			r2, _ := vm.Run(fn, x)
			if !sameBits(r1, r2) {
				if report(fmt.Sprintf("%s(%v) budget=%d: results diverge: tree=%v vm=%v",
					fn, x, budget, r1, r2), x) {
					return out
				}
				break
			}
			mt.Reset()
			mv.Reset()
			pt.Execute(mt, x)
			pv.Execute(mv, x)
			if !sameTrace(mt.recs, mv.recs) {
				if report(fmt.Sprintf("%s(%v) budget=%d: abort trace diverges (tree %d obs, vm %d obs)",
					fn, x, budget, len(mt.recs), len(mv.recs)), x) {
					return out
				}
				break
			}
		}
		tree.MaxSteps, vm.MaxSteps = c.MaxSteps, c.MaxSteps
		tree.ClearFailures()
		vm.ClearFailures()

		// Monitor early stops after each of the first FP-op
		// observations: both engines must deliver the identical
		// truncated trace.
		maxStop := nOps
		if maxStop > c.earlyStops() {
			maxStop = c.earlyStops()
		}
		for stop := 1; stop <= maxStop; stop++ {
			st, sv := &tracer{stopAt: stop}, &tracer{stopAt: stop}
			w1 := pt.Execute(st, x)
			w2 := pv.Execute(sv, x)
			if w1 != w2 || st.stopped != sv.stopped || !sameTrace(st.recs, sv.recs) {
				if report(fmt.Sprintf("%s(%v) stopAt=%d: early-stop diverges", fn, x, stop), x) {
					return out
				}
				break
			}
		}
		tree.ClearFailures()
		vm.ClearFailures()
	}

	// Batch engine: the lane-parallel VM joins the differential as a
	// third party. The whole battery re-runs through the VM's batched
	// entry point (rt.Program.ExecuteBatch) at every configured lane
	// width — plain sweeps, every small step budget, staggered early
	// stops — and each lane must be bit-identical to the serial VM run
	// already checked against the tree engine: weak distances,
	// observation traces, assert failure logs, and abort points.
	widths := c.laneWidths()
	var valid [][]float64
	for _, x := range inputs {
		if len(x) == mod.Func(fn).NParams {
			valid = append(valid, x)
		}
	}
	if len(widths) == 0 || len(valid) == 0 {
		return out
	}

	type laneRef struct {
		w       float64
		recs    []obs
		stopped bool
	}
	// serialRefs runs the battery one input at a time under the current
	// vm.MaxSteps, recording the per-input reference each batched lane
	// must reproduce plus the serial assert failure log.
	serialRefs := func(stagger int) ([]laneRef, string) {
		vm.ClearFailures()
		refs := make([]laneRef, len(valid))
		for i, x := range valid {
			tr := &tracer{stopAt: laneStop(i, stagger)}
			refs[i].w = pv.Execute(tr, x)
			refs[i].recs = append([]obs(nil), tr.recs...)
			refs[i].stopped = tr.stopped
		}
		fails := fmt.Sprint(vm.Failures)
		vm.ClearFailures()
		return refs, fails
	}
	// batchDiverges sweeps the battery in chunks of the lane width and
	// compares every lane against its serial reference. It returns true
	// when the violation budget is exhausted.
	batchDiverges := func(width, budget, stagger int, refs []laneRef, serialFails string) bool {
		vm.ClearFailures()
		ws := make([]float64, width)
		mons := make([]rt.Monitor, width)
		trs := make([]*tracer, width)
		for lo := 0; lo < len(valid); lo += width {
			hi := lo + width
			if hi > len(valid) {
				hi = len(valid)
			}
			xs := valid[lo:hi]
			for i := range xs {
				trs[i] = &tracer{stopAt: laneStop(lo+i, stagger)}
				mons[i] = trs[i]
			}
			pv.ExecuteBatch(mons[:len(xs)], xs, ws[:len(xs)])
			for i, x := range xs {
				got := ws[i]
				if c.TamperBatch != nil {
					got = c.TamperBatch(src, got)
				}
				ref := refs[lo+i]
				if got != ref.w || trs[i].stopped != ref.stopped || !sameTrace(trs[i].recs, ref.recs) {
					return report(fmt.Sprintf(
						"%s(%v) lanes=%d budget=%d stopAt=%d: batch lane diverges from serial vm (serial %d obs w=%v, batch %d obs w=%v)",
						fn, x, width, budget, laneStop(lo+i, stagger), len(ref.recs), ref.w, len(trs[i].recs), got), x)
				}
			}
		}
		if got := fmt.Sprint(vm.Failures); got != serialFails {
			return report(fmt.Sprintf("lanes=%d budget=%d: batched assert failure log diverges:\nserial %s\nbatch  %s",
				width, budget, serialFails, got), nil)
		}
		vm.ClearFailures()
		return false
	}
	// checkPhase compares every width under one (budget, stagger)
	// configuration against a single set of serial references.
	checkPhase := func(budget, stagger int) bool {
		vm.MaxSteps = budget
		refs, fails := serialRefs(stagger)
		for _, width := range widths {
			if batchDiverges(width, budget, stagger, refs, fails) {
				return true
			}
		}
		return false
	}
	stop := checkPhase(c.MaxSteps, 0)
	for budget := 1; !stop && budget <= c.budgetSweep(); budget++ {
		stop = checkPhase(budget, 0)
	}
	if !stop && c.earlyStops() > 0 {
		checkPhase(c.MaxSteps, c.earlyStops())
	}
	vm.MaxSteps = c.MaxSteps
	vm.ClearFailures()
	return out
}

var _ rt.Monitor = (*tracer)(nil)
