package fuzz_test

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fplgen"
	"repro/internal/fuzz"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/rt"
)

// TestReplaySweepFixtures is the paper's soundness property run as a
// test sweep: for every registered analysis and every committed FPL
// fixture (every function of it), run the analysis with a small budget,
// then re-execute every reported finding through rt and assert the
// claimed verdict holds. Weak distances are sound witnesses — a
// finding that does not replay is a bug somewhere in the stack.
func TestReplaySweepFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fpl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures: %v", err)
	}
	evals := 400
	if testing.Short() {
		evals = 100
	}
	for _, file := range files {
		srcBytes, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		src := string(srcBytes)
		mod, err := ir.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, fn := range mod.Order {
			if mod.Funcs[fn].NParams == 0 {
				continue
			}
			p, err := interp.New(mod).Program(fn)
			if err != nil {
				t.Fatal(err)
			}
			base := filepath.Base(file)
			for _, a := range analysis.All() {
				if !a.Knobs().Program {
					continue
				}
				a := a
				t.Run(base+"/"+fn+"/"+a.Name(), func(t *testing.T) {
					t.Parallel()
					spec := analysis.Spec{Analysis: a.Name(), Seed: 1, Evals: evals,
						Starts: 2, Stall: 2, Rounds: 8, Retries: 1}
					if a.Knobs().Path {
						spec.Path = fixturePath(p)
						if len(spec.Path) == 0 {
							t.Skip("no branches to target")
						}
					}
					rep, err := a.Run(context.Background(), analysis.Input{Program: p.Instance()}, spec)
					if err != nil {
						t.Fatal(err)
					}
					for _, v := range fuzz.ReplayFindings(p, spec, rep) {
						t.Errorf("finding does not replay: %s", v)
					}
				})
			}
		}
	}
}

// TestReplaySweepFormulas covers the formula-based analysis: xsat
// verdicts over a mix of committed and generated formulas must replay
// (any Sat model concretely satisfies its formula).
func TestReplaySweepFormulas(t *testing.T) {
	formulas := []string{
		"x < 1 && x + 1 >= 2",
		"x * x < 0",
		"sin(x) == 0 && x > 1",
		"(x < 1 || y > 2) && x + y == 3",
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		formulas = append(formulas, fplgen.Formula(rng, 1+i%2))
	}
	a, err := analysis.Lookup("xsat")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range formulas {
		spec := analysis.Spec{Analysis: "xsat", Seed: 1, Starts: 2, Evals: 400, Formula: f}
		rep, err := a.Run(context.Background(), analysis.Input{}, spec)
		if err != nil {
			t.Fatalf("%q: %v", f, err)
		}
		for _, v := range fuzz.ReplayFindings(nil, spec, rep) {
			t.Errorf("%q: %s", f, v)
		}
	}
}

// fixturePath records the decision sequence of a concrete execution —
// a realizable reach target for the fixture.
func fixturePath(p *rt.Program) []instrument.Decision {
	if len(p.Branches) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(17))
	for try := 0; try < 8; try++ {
		x := make([]float64, p.Dim)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		wit := &instrument.PathWitness{}
		p.Instance().Execute(wit, x)
		if ds := wit.Decisions(); len(ds) > 0 {
			if len(ds) > 3 {
				ds = ds[:3]
			}
			return append([]instrument.Decision(nil), ds...)
		}
	}
	return nil
}
