package fuzz_test

import (
	"strings"
	"testing"

	"repro/internal/fuzz"
)

// TestCrashCampaignClean runs a small crash-recovery campaign: every
// job recoverable from a truncated journal must reach the golden run's
// results.
func TestCrashCampaignClean(t *testing.T) {
	res := fuzz.RunCrash(fuzz.CrashOptions{Rounds: 3, Seed: 1, Programs: 2, Evals: 30})
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("%s", v.Detail)
		}
	}
	if res.Rounds != 3 || res.Jobs != 2 {
		t.Errorf("campaign shape: %s", res.Summary())
	}
	if res.Recovered == 0 {
		t.Errorf("no jobs recovered across any round: %s", res.Summary())
	}
}

// TestCrashCampaignFaults layers injected worker panics and transient
// fsync failures on top of the crash rounds; the oracle must still hold
// (panicked jobs fail identically in golden and recovered runs).
func TestCrashCampaignFaults(t *testing.T) {
	res := fuzz.RunCrash(fuzz.CrashOptions{
		Rounds: 3, Seed: 2, Programs: 2, Evals: 30,
		PanicJobs: 2, FaultProb: 0.2,
	})
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("%s", v.Detail)
		}
	}
}

// TestCrashCampaignSelfTest proves the oracle has teeth: a tampered
// golden expectation must surface as a violation.
func TestCrashCampaignSelfTest(t *testing.T) {
	res := fuzz.RunCrash(fuzz.CrashOptions{Rounds: 2, Seed: 3, Programs: 1, Evals: 30, Tamper: true})
	if res.Ok() {
		t.Fatal("tampered expectation produced no violations — the oracle is blind")
	}
	found := false
	for _, v := range res.Violations {
		if v.Layer == "crash" && strings.Contains(v.Detail, "differs from the uninterrupted run") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations do not include a divergence report: %+v", res.Violations)
	}
}
