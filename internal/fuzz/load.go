package fuzz

// This file is the fleet load harness: it replays an fplgen-generated
// workload against a coordinator — either a running one, by URL, or an
// in-process coordinator + fleet it spins up itself — with concurrent
// submitters, honoring 429 backpressure, and reports end-to-end
// throughput plus the coordinator's per-worker routing attribution.
// It is both the `fpfuzz load` CLI and the BENCH_PIPELINE jobs/s
// harness.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/pipeline"
)

// LoadOptions configures a load run.
type LoadOptions struct {
	// Target is the base URL of a running coordinator (or single
	// fpserve node). Empty spins up an in-process fleet of Workers
	// nodes behind an in-process coordinator instead.
	Target string
	// Workers is the in-process fleet size when Target is empty; 0
	// selects 2.
	Workers int
	// Programs is the number of generated programs; 0 selects 8.
	Programs int
	// Batches is the number of job batches replayed; 0 selects 2 per
	// program. Batches cycle over the programs, so every program is
	// submitted repeatedly — the workload that rewards cache-affine
	// routing.
	Batches int
	// Concurrency is the number of parallel submitters; 0 selects 4.
	Concurrency int
	// Seed derives the workload; MaxDims cycles arity (0 selects 3);
	// Evals is the per-analysis budget (0 selects 60).
	Seed    int64
	MaxDims int
	Evals   int
	// Analyses restricts the per-program spec list.
	Analyses []string
	// Logf, when non-nil, receives the in-process coordinator's log.
	Logf func(format string, args ...any)
}

func (o LoadOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 2
}

func (o LoadOptions) programs() int {
	if o.Programs > 0 {
		return o.Programs
	}
	return 8
}

func (o LoadOptions) batches() int {
	if o.Batches > 0 {
		return o.Batches
	}
	return 2 * o.programs()
}

func (o LoadOptions) concurrency() int {
	if o.Concurrency > 0 {
		return o.Concurrency
	}
	return 4
}

func (o LoadOptions) evals() int {
	if o.Evals > 0 {
		return o.Evals
	}
	return 60
}

// LoadResult is the outcome of a load run.
type LoadResult struct {
	// Batches and Jobs count the replayed workload; Duration the
	// wall-clock from first submit to last terminal result.
	Batches  int
	Jobs     int
	Duration time.Duration
	// JobsPerSec is Jobs / Duration.
	JobsPerSec float64
	// Retried429 counts submissions the target shed (and the harness
	// retried after the Retry-After hint).
	Retried429 int64
	// Stats is the target's /stats document after the run (nil if it
	// could not be fetched).
	Stats json.RawMessage
	// WorkerStats are the individual workers' /stats documents, keyed
	// by address (self-hosted mode only) — the per-worker module-cache
	// hit rates that show routing locality.
	WorkerStats map[string]json.RawMessage
	// Violations are harness failures (submission errors, non-completed
	// jobs), in discovery order.
	Violations []Violation
}

// Ok reports a clean run.
func (r *LoadResult) Ok() bool { return len(r.Violations) == 0 }

// Summary is a one-line outcome.
func (r *LoadResult) Summary() string {
	return fmt.Sprintf("%d batches (%d jobs) in %v: %.1f jobs/s, %d shed-retries: %d violations",
		r.Batches, r.Jobs, r.Duration.Round(time.Millisecond), r.JobsPerSec,
		r.Retried429, len(r.Violations))
}

// loadV builds a load-layer violation.
func loadV(format string, args ...any) Violation {
	return Violation{Layer: "load", Detail: fmt.Sprintf(format, args...)}
}

// RunLoad executes a load run.
func RunLoad(o LoadOptions) *LoadResult {
	res := &LoadResult{}

	target := o.Target
	var workerAddrs []string
	if target == "" {
		// Self-hosted mode: an in-process fleet behind an in-process
		// coordinator, all sharing this machine — the per-node numbers
		// measure coordinator overhead and routing, not extra hardware.
		nodes := make([]*httptest.Server, o.workers())
		addrs := make([]string, o.workers())
		var srvs []*pipeline.Server
		for i := range nodes {
			srv := pipeline.NewServer(1)
			nodes[i] = httptest.NewServer(srv.Handler())
			addrs[i] = nodes[i].URL
			srvs = append(srvs, srv)
		}
		workerAddrs = addrs
		coord, err := cluster.New(cluster.Config{Workers: addrs, Seed: o.Seed, Logf: o.Logf})
		if err != nil {
			res.Violations = append(res.Violations, loadV("coordinator: %v", err))
			return res
		}
		coord.Start()
		front := pipeline.NewServer(1)
		front.Engine.Runner = coord.Run
		front.Engine.AdmitHook = coord.Admit
		front.ClusterStats = coord.StatsDoc
		fts := httptest.NewServer(front.Handler())
		target = fts.URL
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			front.Engine.Shutdown(ctx)
			cancel()
			fts.Close()
			coord.Close()
			for i, n := range nodes {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				srvs[i].Engine.Shutdown(ctx)
				cancel()
				n.Close()
			}
		}()
	}
	cli := &cluster.Client{Base: target}

	// The workload: fplgen programs registered up front by content
	// address, batches referencing them (the recorded-workload replay
	// shape: programs are reused, results are re-derived).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	var specsFor [][]pipeline.V1Job
	for i := 0; i < o.programs(); i++ {
		src, _, _, rng := generateProgram(o.Seed, i, o.MaxDims)
		id, err := cli.RegisterProgram(ctx, src, "", "f")
		if err != nil {
			res.Violations = append(res.Violations, loadV("registering program %d: %v", i, err))
			return res
		}
		var jobs []pipeline.V1Job
		for _, spec := range analysisSpecs(src, rng, progSeed(o.Seed, i),
			Options{Evals: o.evals(), Analyses: o.Analyses}) {
			vj := pipeline.V1Job{Spec: spec}
			if spec.Formula == "" {
				vj.Program = id
			}
			jobs = append(jobs, vj)
		}
		specsFor = append(specsFor, jobs)
	}
	batches := make([][]pipeline.V1Job, o.batches())
	for i := range batches {
		batches[i] = specsFor[i%len(specsFor)]
		res.Jobs += len(batches[i])
	}
	res.Batches = len(batches)

	// Replay: Concurrency submitters drain the batch queue, each
	// submitting, honoring 429 Retry-After, and polling its job to a
	// terminal state before taking the next batch.
	var (
		mu      sync.Mutex
		retried atomic.Int64
		next    atomic.Int64
		wg      sync.WaitGroup
	)
	start := time.Now()
	for s := 0; s < o.concurrency(); s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batches) || ctx.Err() != nil {
					return
				}
				id, err := submitWithRetry(ctx, cli, batches[i], &retried)
				if err != nil {
					mu.Lock()
					res.Violations = append(res.Violations, loadV("batch %d: %v", i, err))
					mu.Unlock()
					continue
				}
				if err := pollTerminal(ctx, cli, id, len(batches[i])); err != nil {
					mu.Lock()
					res.Violations = append(res.Violations, loadV("batch %d (%s): %v", i, id, err))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	res.Duration = time.Since(start)
	if res.Duration > 0 {
		res.JobsPerSec = float64(res.Jobs) / res.Duration.Seconds()
	}
	res.Retried429 = retried.Load()
	if stats, err := cli.Stats(ctx); err == nil {
		res.Stats = stats
	}
	if len(workerAddrs) > 0 {
		res.WorkerStats = map[string]json.RawMessage{}
		for _, addr := range workerAddrs {
			wc := &cluster.Client{Base: addr}
			if stats, err := wc.Stats(ctx); err == nil {
				res.WorkerStats[addr] = stats
			}
		}
	}
	return res
}

// submitWithRetry submits one batch, sleeping out 429 Retry-After
// hints (counted) until the target accepts it.
func submitWithRetry(ctx context.Context, cli *cluster.Client, jobs []pipeline.V1Job, retried *atomic.Int64) (string, error) {
	b := pipeline.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	for attempt := 0; ; attempt++ {
		id, err := cli.SubmitJobs(ctx, jobs)
		if err == nil {
			return id, nil
		}
		var busy *cluster.ErrWorkerBusy
		if !errors.As(err, &busy) {
			return "", err
		}
		retried.Add(1)
		delay := busy.RetryAfter
		if d := b.Delay(min(attempt, 6)); d > delay {
			delay = d
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

// pollTerminal pages a job until it is terminal and fully served,
// requiring every job to complete.
func pollTerminal(ctx context.Context, cli *cluster.Client, id string, jobs int) error {
	served := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		view, err := cli.Page(ctx, id, served, 256)
		if err != nil {
			return err
		}
		served += len(view.Results)
		if view.Status != pipeline.JobRunning && view.NextOffset == nil {
			if view.Status != pipeline.JobCompleted {
				return fmt.Errorf("ended %q with %d/%d results", view.Status, served, jobs)
			}
			if served != jobs {
				return fmt.Errorf("completed with %d/%d results", served, jobs)
			}
			return nil
		}
		if len(view.Results) == 0 {
			select {
			case <-time.After(5 * time.Millisecond):
			case <-ctx.Done():
			}
		}
	}
}
