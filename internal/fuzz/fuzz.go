package fuzz

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/fplgen"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/rt"
)

// Options configures a fuzz campaign.
type Options struct {
	// N is the number of generated programs; 0 selects 100.
	N int
	// Seed derives every per-program seed; campaigns are fully
	// reproducible from (Seed, N).
	Seed int64
	// MaxDims cycles entry arity over 1..MaxDims; 0 selects 3.
	MaxDims int
	// Evals is the per-start/per-round weak-distance budget of the
	// backend and analysis layers; 0 selects 200.
	Evals int
	// Analyses restricts oracle layer 3 to these registered analyses;
	// empty selects all of them.
	Analyses []string
	// Backends restricts oracle layer 2; empty selects every registered
	// backend.
	Backends []string
	// Workers bounds the pipeline worker pool (0 = all CPUs). Worker
	// count never changes any result — that is itself one of the
	// properties under test.
	Workers int
	// MaxViolations stops the campaign early once this many oracle
	// violations have been collected; 0 selects 20.
	MaxViolations int
	// Recheck re-runs the whole analysis batch serially (Workers=1) and
	// requires byte-identical wire results — the pipeline determinism
	// oracle. Doubles the analysis cost; off by default.
	Recheck bool
	// SkipEngines / SkipBackends / SkipReplay disable individual oracle
	// layers (the CLI's -layers flag).
	SkipEngines  bool
	SkipBackends bool
	SkipReplay   bool
	// Engine configures oracle layer 1.
	Engine EngineCheck
	// Progress, when non-nil, receives (programs done, total) after
	// each generated program's engine/backend layers.
	Progress func(done, total int)
}

func (o Options) n() int {
	if o.N > 0 {
		return o.N
	}
	return 100
}

func (o Options) maxDims() int {
	if o.MaxDims > 0 {
		return o.MaxDims
	}
	return 3
}

func (o Options) evals() int {
	if o.Evals > 0 {
		return o.Evals
	}
	return 200
}

func (o Options) maxViolations() int {
	if o.MaxViolations > 0 {
		return o.MaxViolations
	}
	return 20
}

// Result is the outcome of a fuzz campaign.
type Result struct {
	// Programs is the number of generated programs exercised.
	Programs int
	// EngineInputs counts inputs run through the engine differential.
	EngineInputs int
	// BackendRuns counts individual backend minimizations.
	BackendRuns int
	// Jobs counts pipeline analysis jobs executed.
	Jobs int
	// FindingsReplayed counts individual findings re-executed by the
	// replay oracle.
	FindingsReplayed int
	// CacheHits counts pipeline module-cache hits.
	CacheHits int
	// Violations are all oracle failures, in discovery order.
	Violations []Violation
}

// Ok reports a clean campaign.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// Summary is a one-line outcome.
func (r *Result) Summary() string {
	return fmt.Sprintf("%d programs, %d engine inputs, %d backend runs, %d jobs, %d findings replayed, %d cache hits: %d violations",
		r.Programs, r.EngineInputs, r.BackendRuns, r.Jobs, r.FindingsReplayed, r.CacheHits, len(r.Violations))
}

// progSeed derives the deterministic seed of program i — independent of
// N and of which layers run, so a failing program can be regenerated
// from (campaign seed, index) alone.
func progSeed(seed int64, i int) int64 {
	return seed*1_000_003 + int64(i)*7919
}

// generateProgram derives program i of a campaign — source, entry
// arity, input battery — and returns the rng positioned right after
// those draws (the campaign draws its reach path and xsat formula from
// the same stream). This is the single definition of the
// (seed, index) → program contract.
func generateProgram(seed int64, i, maxDims int) (src string, dim int, inputs [][]float64, rng *rand.Rand) {
	if maxDims <= 0 {
		maxDims = 3
	}
	rng = rand.New(rand.NewSource(progSeed(seed, i)))
	dim = 1 + i%maxDims
	g := &fplgen.Generator{Config: fplgen.Config{Params: dim}}
	src = g.Module(rng)
	inputs = fplgen.Inputs(rng, dim)
	return src, dim, inputs, rng
}

// GenerateProgram regenerates program i of a campaign: the source, its
// entry arity, and its differential input battery. cmd/fpfuzz uses it
// for `generate` and `shrink`.
func GenerateProgram(seed int64, i, maxDims int) (src string, dim int, inputs [][]float64) {
	src, dim, inputs, _ = generateProgram(seed, i, maxDims)
	return src, dim, inputs
}

// InputsFor builds the differential input battery matching the arity
// of fn in src (nil when src does not compile or lacks fn). The battery
// is deterministic in seed.
func InputsFor(src, fn string, seed int64) [][]float64 {
	mod, err := ir.Compile(src)
	if err != nil {
		return nil
	}
	f := mod.Func(fn)
	if f == nil {
		return nil
	}
	return fplgen.Inputs(rand.New(rand.NewSource(seed)), f.NParams)
}

// Run executes a fuzz campaign: N generated programs through the
// engine-differential, backend-differential, and finding-replay oracle
// layers, with the analysis work of layer 3 batched through an
// internal/pipeline worker pool (so a campaign is also a pipeline and
// module-cache stress test).
func Run(o Options) *Result {
	res := &Result{}
	type progCase struct {
		src    string
		dim    int
		rng    *rand.Rand
		inputs [][]float64
	}
	overBudget := func() bool { return len(res.Violations) >= o.maxViolations() }

	// Generate all programs up front (cheap) so layer 3 can batch them
	// through one pipeline stream.
	cases := make([]progCase, 0, o.n())
	for i := 0; i < o.n(); i++ {
		src, dim, inputs, rng := generateProgram(o.Seed, i, o.maxDims())
		cases = append(cases, progCase{src: src, dim: dim, rng: rng, inputs: inputs})
	}

	// Layers 1+2, program by program.
	for i, c := range cases {
		if overBudget() {
			break
		}
		res.Programs++
		if !o.SkipEngines {
			ec := o.Engine
			if ec.LaneWidths == nil {
				// A campaign sweeps the batch engine over random lane
				// widths: every program draws its own pair — one small
				// width that forces multi-chunk sweeps, one wide enough
				// to swallow the battery in a single sweep. The draw is
				// seeded off progSeed, not c.rng, so adding the batch
				// party shifted no other campaign stream.
				wrng := rand.New(rand.NewSource(progSeed(o.Seed, i) ^ 0x6c616e6573))
				ec.LaneWidths = []int{2 + wrng.Intn(6), 8 + wrng.Intn(25)}
			}
			res.EngineInputs += len(c.inputs)
			res.Violations = append(res.Violations,
				CheckEngines(c.src, "f", c.inputs, ec)...)
		}
		if !o.SkipBackends && !overBudget() {
			bc := BackendCheck{Backends: o.Backends, Seed: progSeed(o.Seed, i), Evals: o.evals()}
			res.BackendRuns += len(bc.backends())
			res.Violations = append(res.Violations, CheckBackends(c.src, "f", bc)...)
		}
		if o.Progress != nil {
			o.Progress(i+1, len(cases))
		}
	}

	if o.SkipReplay || overBudget() {
		return res
	}

	// Layer 3: batch every program × every analysis through the
	// pipeline, then replay each report's findings.
	type jobMeta struct {
		prog int // index into cases; -1 for formula-only jobs
	}
	var jobs []pipeline.Job
	var metas []jobMeta
	for i, c := range cases {
		for _, spec := range analysisSpecs(c.src, c.rng, progSeed(o.Seed, i), o) {
			meta := jobMeta{prog: i}
			job := pipeline.Job{Spec: spec}
			if spec.Formula == "" {
				job.Source = c.src
				job.Func = "f"
			} else {
				meta.prog = -1
			}
			jobs = append(jobs, job)
			metas = append(metas, meta)
		}
	}

	// Replay programs are compiled once per source, on the same engine
	// the pipeline jobs ran on.
	progs := map[int]*rt.Program{}
	replayProg := func(i int) *rt.Program {
		if p, ok := progs[i]; ok {
			return p
		}
		mod, err := ir.Compile(cases[i].src)
		if err != nil {
			return nil // unreachable: the generator guarantees compilation
		}
		p, err := interp.New(mod).Program("f")
		if err != nil {
			return nil
		}
		progs[i] = p
		return p
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pl := pipeline.New(o.Workers)
	var wire [][]byte
	pl.Stream(ctx, jobs, func(jr pipeline.JobResult) {
		if o.Recheck {
			wire = append(wire, pipeline.NormalizeDurations(pipeline.MarshalResult(jr)))
		}
		if overBudget() {
			cancel()
			return
		}
		res.Jobs++
		if jr.CacheHit {
			res.CacheHits++
		}
		meta := metas[jr.Index]
		if jr.Error != "" {
			src := ""
			if meta.prog >= 0 {
				src = cases[meta.prog].src
			}
			res.Violations = append(res.Violations, Violation{
				Layer:   "pipeline",
				Program: src,
				Detail: fmt.Sprintf("job %d (%s) failed: %s",
					jr.Index, jobs[jr.Index].Spec.Analysis, jr.Error),
			})
			return
		}
		var p *rt.Program
		if meta.prog >= 0 {
			p = replayProg(meta.prog)
		}
		vs := ReplayFindings(p, jobs[jr.Index].Spec, jr.Report)
		res.FindingsReplayed += countFindings(jr.Report)
		for vi := range vs {
			if vs[vi].Program == "" && meta.prog >= 0 {
				vs[vi].Program = cases[meta.prog].src
			}
		}
		res.Violations = append(res.Violations, vs...)
	})

	// Pipeline determinism oracle: the same batch run serially must
	// produce byte-identical wire results.
	if o.Recheck && !overBudget() {
		serial := pipeline.New(1)
		i := 0
		serial.Stream(context.Background(), jobs, func(jr pipeline.JobResult) {
			if i < len(wire) {
				if got := pipeline.NormalizeDurations(pipeline.MarshalResult(jr)); string(got) != string(wire[i]) {
					res.Violations = append(res.Violations, Violation{
						Layer: "pipeline",
						Detail: fmt.Sprintf("job %d wire bytes differ between Workers=%d and Workers=1:\n%s\nvs\n%s",
							jr.Index, o.Workers, wire[i], got),
					})
				}
			}
			i++
		})
	}
	return res
}

// analysisSpecs builds the layer-3 spec list for one program: every
// selected program analysis with a small deterministic budget, plus an
// xsat job over a generated formula.
func analysisSpecs(src string, rng *rand.Rand, seed int64, o Options) []analysis.Spec {
	selected := func(name string) bool {
		if len(o.Analyses) == 0 {
			return true
		}
		for _, a := range o.Analyses {
			if a == name {
				return true
			}
		}
		return false
	}
	e := o.evals()
	var specs []analysis.Spec
	if selected("bva") {
		// High precision makes "every reported zero carries a witness"
		// a theorem (no product-underflow zeros), so the replay oracle
		// can require SoundnessViolations == 0.
		specs = append(specs, analysis.Spec{Analysis: "bva", Seed: seed, Starts: 2, Evals: e,
			HighPrecision: true})
	}
	if selected("coverage") {
		specs = append(specs, analysis.Spec{Analysis: "coverage", Seed: seed, Evals: e, Stall: 2})
	}
	if selected("overflow") {
		specs = append(specs, analysis.Spec{Analysis: "overflow", Seed: seed, Evals: e, Rounds: 8, Retries: 1})
	}
	if selected("nan") {
		specs = append(specs, analysis.Spec{Analysis: "nan", Seed: seed, Evals: e, Rounds: 8, Retries: 1})
	}
	if selected("reach") {
		if path := realizablePath(src, rng); len(path) > 0 {
			specs = append(specs, analysis.Spec{Analysis: "reach", Seed: seed, Starts: 2, Evals: e, Path: path})
		}
	}
	if selected("xsat") {
		specs = append(specs, analysis.Spec{Analysis: "xsat", Seed: seed, Starts: 2, Evals: 2 * e,
			Formula: fplgen.Formula(rng, 1+rng.Intn(2))})
	}
	return specs
}

// realizablePath derives a reach target for the program by recording
// the decision sequence of a concrete execution — a path known to be
// realizable, so the reach analysis should find it (and, per the
// oracle, any Found answer must replay). Programs without branches (or
// whose sampled runs decide nothing) get no reach job.
func realizablePath(src string, rng *rand.Rand) []instrument.Decision {
	mod, err := ir.Compile(src)
	if err != nil {
		return nil
	}
	p, err := interp.New(mod).Program("f")
	if err != nil || len(p.Branches) == 0 {
		return nil
	}
	x := make([]float64, p.Dim)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	wit := &instrument.PathWitness{}
	p.Execute(wit, x)
	ds := wit.Decisions()
	if len(ds) == 0 {
		return nil
	}
	if len(ds) > 3 {
		ds = ds[:3]
	}
	return append([]instrument.Decision(nil), ds...)
}

// countFindings tallies the positive claims of a report — the units the
// replay oracle re-executes.
func countFindings(rep analysis.Report) int {
	switch r := rep.(type) {
	case *analysis.BoundaryReport:
		n := 0
		for _, cs := range r.Conditions {
			n += len(cs.Examples)
		}
		return n
	case *analysis.CoverReport:
		return len(r.Covered)
	case *analysis.OverflowRun:
		return len(r.Findings)
	case *analysis.NonFiniteReport:
		return len(r.Findings)
	case *analysis.ReachRun:
		if r.Found {
			return 1
		}
		return 0
	case *analysis.SatRun:
		if r.Verdict != 0 {
			return 1
		}
		return 0
	}
	return 0
}
