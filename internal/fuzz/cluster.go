package fuzz

// This file is the dead-worker oracle: a campaign that runs a
// generated workload to completion on a single node (the golden run),
// then replays it through a coordinator over an in-process fpserve
// fleet, kills the busiest worker mid-batch, and requires every job to
// reach a terminal state on the survivors with results byte-identical
// (modulo pipeline.NormalizeDurations) to the uninterrupted run — the
// distributed analogue of the crash-recovery campaign in crash.go.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/cluster"
	"repro/internal/pipeline"
)

// ClusterOptions configures a dead-worker campaign.
type ClusterOptions struct {
	// Workers is the fleet size; 0 selects 2. One worker is killed
	// mid-batch, so 2 is the minimum that leaves a survivor.
	Workers int
	// Seed derives the workload; a campaign is fully reproducible from
	// (Seed, Workers, Programs).
	Seed int64
	// Programs is the number of generated programs (one job batch
	// each); 0 selects 4.
	Programs int
	// MaxDims cycles entry arity over 1..MaxDims; 0 selects 3.
	MaxDims int
	// Evals is the per-analysis weak-distance budget; 0 selects 120.
	Evals int
	// Analyses restricts the per-program spec list; empty selects the
	// crash campaign's cheap deterministic trio.
	Analyses []string
	// Tamper corrupts one golden expectation before comparing: the
	// self-test proving the oracle detects divergent fleet runs.
	Tamper bool
	// Logf, when non-nil, receives the coordinator's operational log.
	Logf func(format string, args ...any)
}

func (o ClusterOptions) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 2
}

func (o ClusterOptions) programs() int {
	if o.Programs > 0 {
		return o.Programs
	}
	return 4
}

func (o ClusterOptions) evals() int {
	if o.Evals > 0 {
		return o.Evals
	}
	return 120
}

// ClusterResult is the outcome of a dead-worker campaign.
type ClusterResult struct {
	// Workers is the fleet size; Jobs the workload's batch count.
	Workers int
	Jobs    int
	// Requeued counts jobs the coordinator moved off the killed worker;
	// Victim names it.
	Requeued int64
	Victim   string
	// Violations are all oracle failures, in discovery order.
	Violations []Violation
}

// Ok reports a clean campaign.
func (r *ClusterResult) Ok() bool { return len(r.Violations) == 0 }

// Summary is a one-line outcome.
func (r *ClusterResult) Summary() string {
	return fmt.Sprintf("%d-worker fleet over %d batches, killed %s mid-batch (%d jobs requeued): %d violations",
		r.Workers, r.Jobs, r.Victim, r.Requeued, len(r.Violations))
}

// clusterV builds a cluster-layer violation.
func clusterV(format string, args ...any) Violation {
	return Violation{Layer: "cluster", Detail: fmt.Sprintf(format, args...)}
}

// clusterWorkload is the crash campaign's workload shape: one job
// batch per generated program, specs drawn from the (seed, index)
// contract the differential campaigns use.
func clusterWorkload(seed int64, programs, maxDims, evals int, analyses []string) [][]pipeline.Job {
	if len(analyses) == 0 {
		analyses = []string{"coverage", "overflow", "xsat"}
	}
	var batches [][]pipeline.Job
	for i := 0; i < programs; i++ {
		src, _, _, rng := generateProgram(seed, i, maxDims)
		specs := analysisSpecs(src, rng, progSeed(seed, i),
			Options{Evals: evals, Analyses: analyses})
		var jobs []pipeline.Job
		for _, spec := range specs {
			job := pipeline.Job{Spec: spec}
			if spec.Formula == "" {
				job.Source = src
				job.Func = "f"
			}
			jobs = append(jobs, job)
		}
		batches = append(batches, jobs)
	}
	return batches
}

// followBatches submits every batch and follows each to a terminal
// state, returning the normalized results in submission order.
func followBatches(eng *pipeline.JobEngine, batches [][]pipeline.Job, vf func(format string, args ...any) Violation) ([][]string, []Violation) {
	var vs []Violation
	recs := make([]*pipeline.JobRecord, 0, len(batches))
	for i, jobs := range batches {
		rec, err := eng.Submit(nil, jobs, 0)
		if err != nil {
			vs = append(vs, vf("submit %d: %v", i, err))
			recs = append(recs, nil)
			continue
		}
		recs = append(recs, rec)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	out := make([][]string, len(recs))
	for i, rec := range recs {
		if rec == nil {
			continue
		}
		var got []string
		status := pipeline.FollowJob(ctx, rec, func(b []byte) {
			got = append(got, string(pipeline.NormalizeDurations(b)))
		})
		if status != pipeline.JobCompleted {
			vs = append(vs, vf("batch %d ended %q (%s), want completed",
				i, status, rec.Header().Reason))
		}
		out[i] = got
	}
	return out, vs
}

// RunCluster executes a dead-worker campaign.
func RunCluster(o ClusterOptions) *ClusterResult {
	res := &ClusterResult{Workers: o.workers()}
	batches := clusterWorkload(o.Seed, o.programs(), o.MaxDims, o.evals(), o.Analyses)
	res.Jobs = len(batches)

	// Golden run: the workload start to finish on one local node. Its
	// results are the byte-identity expectation for the fleet run.
	golden := pipeline.NewJobEngine(pipeline.New(0))
	expect, vs := followBatches(golden, batches, clusterV)
	res.Violations = append(res.Violations, vs...)
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	golden.Shutdown(sctx)
	scancel()
	if len(res.Violations) > 0 {
		return res
	}
	if o.Tamper {
		for i := range expect {
			if len(expect[i]) > 0 {
				expect[i][0] += `{"tampered":true}`
			}
		}
	}

	// The fleet: in-process fpserve workers (full /v1 surface over
	// HTTP), one pipeline lane each so batches stay in flight long
	// enough to kill a worker under them.
	type node struct {
		srv *pipeline.Server
		ts  *httptest.Server
		ded bool
	}
	nodes := make([]*node, o.workers())
	addrs := make([]string, o.workers())
	for i := range nodes {
		srv := pipeline.NewServer(1)
		ts := httptest.NewServer(srv.Handler())
		nodes[i] = &node{srv: srv, ts: ts}
		addrs[i] = ts.URL
	}
	defer func() {
		for _, n := range nodes {
			if !n.ded {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				n.srv.Engine.Shutdown(ctx)
				cancel()
				n.ts.Close()
			}
		}
	}()

	coord, err := cluster.New(cluster.Config{
		Workers:    addrs,
		ProbeEvery: 50 * time.Millisecond,
		DeadAfter:  2,
		PollEvery:  2 * time.Millisecond,
		Seed:       o.Seed,
		Logf:       o.Logf,
	})
	if err != nil {
		res.Violations = append(res.Violations, clusterV("coordinator: %v", err))
		return res
	}
	coord.Start()
	defer coord.Close()
	eng := pipeline.NewJobEngine(pipeline.New(1))
	eng.Runner = coord.Run
	eng.AdmitHook = coord.Admit
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		eng.Shutdown(ctx)
		cancel()
	}()

	// Kill the busiest worker as soon as the dispatcher has loaded the
	// fleet: its unfinished jobs must requeue onto survivors. The
	// watcher races submission on purpose — dispatch assigns the whole
	// batch up front, so in-flight counts peak before results drain.
	killed := make(chan string, 1)
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			var victim *node
			var load int64
			for i, st := range coord.Stats().Workers {
				if st.Alive && st.InFlight > load {
					victim, load = nodes[i], st.InFlight
				}
			}
			if victim != nil && load > 0 {
				name := victim.ts.Listener.Addr().String()
				victim.ded = true
				victim.ts.CloseClientConnections()
				victim.ts.Close()
				victim.srv.Engine.Kill()
				killed <- name
				return
			}
			time.Sleep(time.Millisecond)
		}
		killed <- ""
	}()

	got, vs := followBatches(eng, batches, clusterV)
	res.Violations = append(res.Violations, vs...)
	res.Victim = <-killed
	if res.Victim == "" {
		res.Violations = append(res.Violations,
			clusterV("no worker accumulated in-flight jobs to kill"))
	}

	st := coord.Stats()
	res.Requeued = st.Requeued
	if res.Victim != "" && st.Requeued == 0 {
		res.Violations = append(res.Violations,
			clusterV("killed %s mid-batch but nothing was requeued", res.Victim))
	}
	for _, w := range st.Workers {
		if w.Name == res.Victim && w.Alive {
			res.Violations = append(res.Violations,
				clusterV("killed worker %s still marked alive", w.Name))
		}
	}
	for i := range expect {
		if len(got) <= i {
			break
		}
		if len(got[i]) != len(expect[i]) {
			res.Violations = append(res.Violations,
				clusterV("batch %d: fleet run returned %d results, single node %d",
					i, len(got[i]), len(expect[i])))
			continue
		}
		for j := range expect[i] {
			if got[i][j] != expect[i][j] {
				res.Violations = append(res.Violations,
					clusterV("batch %d result %d differs from the single-node run:\n%s\nvs\n%s",
						i, j, expect[i][j], got[i][j]))
				break
			}
		}
	}
	return res
}
