package fuzz

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lang"
)

// Shrink greedily minimizes a failing FPL program: it repeatedly
// applies the smallest AST reduction (drop a function, drop a
// statement, flatten control flow, replace a subexpression by an
// operand or a literal) that keeps the program compiling AND keeps the
// failure predicate true, until no single reduction applies. The result
// is a local minimum — a committable regression fixture.
//
// fails must be deterministic: it receives candidate source text and
// reports whether the bug still reproduces. Candidates that fail to
// compile are discarded before fails is ever called, so the predicate
// only sees well-formed programs.
func Shrink(src string, fails func(src string) bool) (string, error) {
	if _, err := ir.Compile(src); err != nil {
		return "", fmt.Errorf("shrink: input does not compile: %w", err)
	}
	// Canonicalize once: all further candidates are Format output, so
	// re-parsing them is loss-free.
	file, err := lang.Parse(src)
	if err != nil {
		return "", err
	}
	cur := lang.Format(file)
	if !fails(cur) {
		// The failure may genuinely depend on formatting only if the
		// predicate inspects raw text; treat as non-reproducing.
		return "", fmt.Errorf("shrink: failure does not reproduce on the canonicalized program")
	}

	for {
		reduced, ok := shrinkStep(cur, fails)
		if !ok {
			return cur, nil
		}
		cur = reduced
	}
}

// shrinkStep tries every single-edit reduction of src in a fixed
// deterministic order and returns the first one that compiles and still
// fails.
func shrinkStep(src string, fails func(string) bool) (string, bool) {
	n := countEdits(src)
	for k := 0; k < n; k++ {
		file, err := lang.Parse(src)
		if err != nil {
			return "", false // unreachable: src is Format output
		}
		e := &editor{target: k}
		e.apply(file)
		if !e.applied {
			continue
		}
		out := lang.Format(file)
		if out == src {
			continue
		}
		if _, err := ir.Compile(out); err != nil {
			continue
		}
		if fails(out) {
			return out, true
		}
	}
	return "", false
}

// countEdits returns the number of candidate edit points in src.
func countEdits(src string) int {
	file, err := lang.Parse(src)
	if err != nil {
		return 0
	}
	e := &editor{target: -1} // count-only pass
	e.apply(file)
	return e.count
}

// editor walks the AST enumerating edit points in deterministic order;
// when the running index hits target, it applies that edit in place.
// With target < 0 it only counts.
type editor struct {
	target  int
	count   int
	applied bool
}

// at reports whether the current edit point is the target; it always
// advances the index.
func (e *editor) at() bool {
	hit := e.count == e.target
	e.count++
	if hit {
		e.applied = true
	}
	return hit
}

func (e *editor) apply(f *lang.File) {
	// Function removals first: the coarsest edits shrink fastest.
	for i := range f.Funcs {
		if len(f.Funcs) > 1 && e.at() {
			f.Funcs = append(f.Funcs[:i], f.Funcs[i+1:]...)
			return
		}
	}
	for _, fn := range f.Funcs {
		e.blockStmts(&fn.Body.Stmts)
		if e.applied {
			return
		}
	}
	for _, fn := range f.Funcs {
		e.exprs(fn.Body)
		if e.applied {
			return
		}
	}
}

// blockStmts enumerates statement-level edits within one statement
// list: removal of each statement, then flattening of each compound
// statement, then recursion into nested blocks.
func (e *editor) blockStmts(stmts *[]lang.Stmt) {
	for i := 0; i < len(*stmts); i++ {
		if e.at() {
			*stmts = append((*stmts)[:i], (*stmts)[i+1:]...)
			return
		}
	}
	for i, s := range *stmts {
		switch s := s.(type) {
		case *lang.IfStmt:
			// Replace the if by its then-branch body.
			if e.at() {
				*stmts = spliceStmts(*stmts, i, s.Then.Stmts)
				return
			}
			// Replace the if by its else-branch body.
			if s.Else != nil && e.at() {
				switch els := s.Else.(type) {
				case *lang.BlockStmt:
					*stmts = spliceStmts(*stmts, i, els.Stmts)
				case *lang.IfStmt:
					*stmts = spliceStmts(*stmts, i, []lang.Stmt{els})
				}
				return
			}
			// Drop only the else branch.
			if s.Else != nil && e.at() {
				s.Else = nil
				return
			}
		case *lang.WhileStmt:
			// Replace the loop by one unrolled body.
			if e.at() {
				*stmts = spliceStmts(*stmts, i, s.Body.Stmts)
				return
			}
		case *lang.BlockStmt:
			if e.at() {
				*stmts = spliceStmts(*stmts, i, s.Stmts)
				return
			}
		}
	}
	for _, s := range *stmts {
		switch s := s.(type) {
		case *lang.IfStmt:
			e.blockStmts(&s.Then.Stmts)
			if e.applied {
				return
			}
			if els, ok := s.Else.(*lang.BlockStmt); ok {
				e.blockStmts(&els.Stmts)
				if e.applied {
					return
				}
			}
			if els, ok := s.Else.(*lang.IfStmt); ok {
				one := []lang.Stmt{els}
				e.blockStmts(&one)
				if e.applied {
					// The edit may have removed, flattened, or replaced
					// the chained if; rewrap whatever is left into a
					// valid else arm.
					switch {
					case len(one) == 0:
						s.Else = nil
					case len(one) == 1:
						switch only := one[0].(type) {
						case *lang.IfStmt:
							s.Else = only
						case *lang.BlockStmt:
							s.Else = only
						default:
							s.Else = &lang.BlockStmt{Stmts: one}
						}
					default:
						s.Else = &lang.BlockStmt{Stmts: one}
					}
					return
				}
			}
		case *lang.WhileStmt:
			e.blockStmts(&s.Body.Stmts)
			if e.applied {
				return
			}
		case *lang.BlockStmt:
			e.blockStmts(&s.Stmts)
			if e.applied {
				return
			}
		}
	}
}

func spliceStmts(stmts []lang.Stmt, i int, repl []lang.Stmt) []lang.Stmt {
	out := make([]lang.Stmt, 0, len(stmts)-1+len(repl))
	out = append(out, stmts[:i]...)
	out = append(out, repl...)
	out = append(out, stmts[i+1:]...)
	return out
}

// exprs enumerates expression-level edits under every statement.
func (e *editor) exprs(b *lang.BlockStmt) {
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *lang.VarStmt:
			if s.Init != nil {
				e.expr(&s.Init)
			}
		case *lang.AssignStmt:
			e.expr(&s.Expr)
		case *lang.IfStmt:
			e.expr(&s.Cond)
			if e.applied {
				return
			}
			e.exprs(s.Then)
			if e.applied {
				return
			}
			switch els := s.Else.(type) {
			case *lang.BlockStmt:
				e.exprs(els)
			case *lang.IfStmt:
				e.exprs(&lang.BlockStmt{Stmts: []lang.Stmt{els}})
			}
		case *lang.WhileStmt:
			e.expr(&s.Cond)
			if e.applied {
				return
			}
			e.exprs(s.Body)
		case *lang.ReturnStmt:
			if s.Expr != nil {
				e.expr(&s.Expr)
			}
		case *lang.AssertStmt:
			e.expr(&s.Expr)
		case *lang.ExprStmt:
			e.expr(&s.Expr)
		case *lang.BlockStmt:
			e.exprs(s)
		}
		if e.applied {
			return
		}
	}
}

// expr enumerates reductions of one expression tree: replace a node by
// one of its operands, or by the literal 1.0, then recurse.
func (e *editor) expr(slot *lang.Expr) {
	switch x := (*slot).(type) {
	case *lang.BinaryExpr:
		if e.at() {
			*slot = x.X
			return
		}
		if e.at() {
			*slot = x.Y
			return
		}
	case *lang.UnaryExpr:
		if e.at() {
			*slot = x.X
			return
		}
	case *lang.CallExpr:
		if len(x.Args) == 1 && e.at() {
			*slot = x.Args[0]
			return
		}
	}
	if _, isLit := (*slot).(*lang.NumberLit); !isLit {
		if _, isIdent := (*slot).(*lang.Ident); !isIdent {
			if e.at() {
				*slot = &lang.NumberLit{Lit: "1.0", Val: 1}
				return
			}
		}
	}
	switch x := (*slot).(type) {
	case *lang.BinaryExpr:
		e.expr(&x.X)
		if e.applied {
			return
		}
		e.expr(&x.Y)
	case *lang.UnaryExpr:
		e.expr(&x.X)
	case *lang.CallExpr:
		for i := range x.Args {
			e.expr(&x.Args[i])
			if e.applied {
				return
			}
		}
	}
}

// CountStmts counts the (non-block) statements of an FPL program across
// all functions — the size metric shrink reproducers are judged by.
func CountStmts(src string) int {
	file, err := lang.Parse(src)
	if err != nil {
		return -1
	}
	n := 0
	var walk func(stmts []lang.Stmt)
	walk = func(stmts []lang.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *lang.BlockStmt:
				walk(s.Stmts)
			case *lang.IfStmt:
				n++
				walk(s.Then.Stmts)
				switch els := s.Else.(type) {
				case *lang.BlockStmt:
					walk(els.Stmts)
				case *lang.IfStmt:
					walk([]lang.Stmt{els})
				}
			case *lang.WhileStmt:
				n++
				walk(s.Body.Stmts)
			default:
				n++
			}
		}
	}
	for _, fn := range file.Funcs {
		walk(fn.Body.Stmts)
	}
	return n
}
