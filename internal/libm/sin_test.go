package libm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fp"
	"repro/internal/instrument"
)

func TestSinAccuracy(t *testing.T) {
	// The port's values should agree with math.Sin to high relative
	// accuracy over the first four branch ranges.
	cases := []float64{
		0, 1e-9, 1e-8, 0.1, -0.5, 0.85, 0.9, 1.5, -2.0, 2.4,
		3.0, -10.0, 100.0, 12345.678, -1e6, 1e7, 1.05e8, 2e8,
	}
	for _, x := range cases {
		got := Sin(x)
		want := math.Sin(x)
		// The remainder-based reduction loses absolute accuracy
		// proportional to |x|·ulp(2π); scale the tolerance accordingly.
		tol := 1e-9 + fp.Abs(x)*5e-16
		if diff := math.Abs(got - want); diff > tol && diff > 1e-9*math.Abs(want) {
			t.Errorf("Sin(%g) = %v, want %v (diff %g)", x, got, want, diff)
		}
	}
	// Beyond the substituted reduction's accurate range, the value is
	// only guaranteed to be a sine of *some* nearby-in-angle argument:
	// bounded and finite.
	for _, x := range []float64{-3.7e15, 1e300, -1e308} {
		if got := Sin(x); math.IsNaN(got) || math.Abs(got) > 1+1e-9 {
			t.Errorf("Sin(%g) = %v, want bounded", x, got)
		}
	}
}

func TestSinSpecialValues(t *testing.T) {
	if !math.IsNaN(Sin(math.NaN())) {
		t.Error("Sin(NaN) should be NaN")
	}
	if !math.IsNaN(Sin(math.Inf(1))) || !math.IsNaN(Sin(math.Inf(-1))) {
		t.Error("Sin(±Inf) should be NaN (x/x path)")
	}
	if Sin(0) != 0 {
		t.Error("Sin(0) != 0")
	}
	if Sin(1e-10) != 1e-10 {
		t.Error("tiny branch must return x itself")
	}
}

func TestSinOddSymmetry(t *testing.T) {
	prop := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return Sin(-x) == -Sin(x)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestSinRangeBound(t *testing.T) {
	// |sin| <= 1 + tiny slack across all finite inputs (our substituted
	// huge-branch reduction is still a genuine reduction, so the result
	// stays bounded — unlike GSL's cos, see internal/gsl).
	prop := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return math.Abs(Sin(x)) <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestKOfMatchesBranchRanges(t *testing.T) {
	// The dispatch key reproduces glibc's range boundaries: crossing
	// each reference |x| flips the corresponding comparison.
	for i, ref := range SinBoundaryRefs[:4] {
		below := math.Nextafter(ref, 0)
		if KOf(below) >= SinThresholds[i] {
			t.Errorf("branch %d: k(%g) = %#x, want < %#x", i, below, KOf(below), SinThresholds[i])
		}
		if KOf(ref) < SinThresholds[i] {
			t.Errorf("branch %d: k(%g) = %#x, want >= %#x", i, ref, KOf(ref), SinThresholds[i])
		}
	}
}

func TestSinBoundaryRefsHitExactly(t *testing.T) {
	// Each reference boundary value (and its negation) makes k == c at
	// its branch: the Table 2 boundary conditions.
	for i, ref := range SinBoundaryRefs[:4] {
		for _, x := range []float64{ref, -ref} {
			if KOf(x) != SinThresholds[i] {
				t.Errorf("branch %d: k(%g) = %#x, want == %#x", i, x, KOf(x), SinThresholds[i])
			}
		}
	}
}

func TestSinProgramBranchObservation(t *testing.T) {
	p := SinProgram()
	wit := &instrument.BoundaryWitness{}
	// The first reachable boundary condition: x with k == 0x3e500000.
	p.Execute(wit, []float64{SinBoundaryRefs[0]})
	if len(wit.Sites()) != 1 || wit.Sites()[0] != SinBranchTiny {
		t.Errorf("witness sites = %v, want [tiny]", wit.Sites())
	}
	// A non-boundary input hits nothing.
	p.Execute(wit, []float64{0.5})
	if len(wit.Sites()) != 0 {
		t.Errorf("witness sites = %v, want none", wit.Sites())
	}
}

func TestSinBoundaryWeakDistance(t *testing.T) {
	p := SinProgram()
	w := p.WeakDistance(&instrument.Boundary{})
	for i, ref := range SinBoundaryRefs[:4] {
		if got := w([]float64{ref}); got != 0 {
			t.Errorf("W(ref[%d]=%g) = %v, want 0", i, ref, got)
		}
		if got := w([]float64{-ref}); got != 0 {
			t.Errorf("W(-ref[%d]) = %v, want 0", i, got)
		}
	}
	if got := w([]float64{0.5}); got <= 0 {
		t.Errorf("W(0.5) = %v, want > 0", got)
	}
	// The last branch's boundary is unreachable in the finite doubles:
	// no finite x has k == 0x7ff00000.
	if KOf(math.MaxFloat64) >= SinThresholds[4] {
		t.Error("MaxFloat64 should not reach the huge threshold")
	}
}

func TestSinBranchChainObservation(t *testing.T) {
	// An input in range i evaluates exactly branches 0..i (else-if
	// chain), which determines the multiplicative weak-distance factors.
	p := SinProgram()
	counts := map[int]int{}
	mon := &countingMonitor{counts: counts}
	p.Execute(mon, []float64{100.0}) // k in the "large" range (branch 3 taken)
	for site := 0; site <= 3; site++ {
		if counts[site] != 1 {
			t.Errorf("site %d observed %d times, want 1", site, counts[site])
		}
	}
	if counts[4] != 0 {
		t.Errorf("site 4 observed %d times, want 0 (chain stopped)", counts[4])
	}
}

type countingMonitor struct{ counts map[int]int }

func (m *countingMonitor) Reset() {}
func (m *countingMonitor) Branch(site int, op fp.CmpOp, a, b float64) {
	m.counts[site]++
}
func (m *countingMonitor) FPOp(int, float64) bool { return false }
func (m *countingMonitor) Value() float64         { return 0 }
