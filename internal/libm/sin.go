// Package libm ports the GNU C Library 2.19 implementation of sin for
// x86-64 (sysdeps/ieee754/dbl-64/s_sin.c) as an instrumentable
// rt.Program — the subject of the paper's §6.2 boundary value analysis
// case study (Fig. 8, Fig. 9, Table 2).
//
// What is bit-exact: the branch structure. Glibc dispatches on
// k = high32(x) & 0x7fffffff against the constants
//
//	0x3e500000  (|x| < 1.490116e-08, sin x ≈ x)
//	0x3feb6000  (|x| < 8.554688e-01, Taylor polynomial)
//	0x400368fd  (|x| < 2.426265,     computed via cos(|x| - π/2))
//	0x419921fb  (|x| < 1.054414e+08, Cody–Waite reduction)
//	0x7ff00000  (|x| < 2^1024,       large-argument reduction)
//
// and we keep those comparisons exactly, because the analysis target is
// the set of boundary conditions k == c (two per branch, ±). What is
// approximated: the polynomial bodies (glibc's table-driven correctly-
// rounded kernels are replaced by standard minimax-style polynomials and
// math.Remainder reduction), which affects only the returned value's low
// bits, not which branch executes. See DESIGN.md's substitution table.
package libm

import (
	"math"

	"repro/internal/fp"
	"repro/internal/rt"
)

// Branch sites of the sin port, in source order (Fig. 8 lines 5-9).
const (
	SinBranchTiny   = 0 // k < 0x3e500000
	SinBranchSmall  = 1 // k < 0x3feb6000
	SinBranchMedium = 2 // k < 0x400368fd
	SinBranchLarge  = 3 // k < 0x419921fb
	SinBranchHuge   = 4 // k < 0x7ff00000
)

// SinThresholds lists the k-comparison constants per branch site.
var SinThresholds = [5]uint32{
	0x3e500000, 0x3feb6000, 0x400368fd, 0x419921fb, 0x7ff00000,
}

// SinBoundaryRefs gives, per branch site, the smallest positive |x|
// whose dispatch key k equals the branch threshold — the boundary values
// of Table 2's "ref" row, computed exactly from the bit patterns. The
// last entry is +Inf: the boundary 2^1024 of the final branch exceeds
// the largest double and is unreachable (Table 2's discussion).
var SinBoundaryRefs = [5]float64{
	math.Float64frombits(uint64(0x3e500000) << 32), // 1.4901161e-08 (2^-26)
	math.Float64frombits(uint64(0x3feb6000) << 32), // 8.5546875e-01
	math.Float64frombits(uint64(0x400368fd) << 32), // 2.4262657e+00
	math.Float64frombits(uint64(0x419921fb) << 32), // 1.0541414e+08
	math.Inf(1),
}

// highWord returns the upper 32 bits of x's IEEE-754 representation.
func highWord(x float64) uint32 {
	return uint32(math.Float64bits(x) >> 32)
}

// KOf returns glibc's k = high32(x) & 0x7fffffff dispatch key.
func KOf(x float64) uint32 { return highWord(x) & 0x7fffffff }

// SinProgram returns the instrumented sin port. Input dimension 1.
func SinProgram() *rt.Program {
	branches := make([]rt.BranchInfo, 5)
	labels := [5]string{
		"k < 0x3e500000 (|x| < 1.490120e-08)",
		"k < 0x3feb6000 (|x| < 8.554690e-01)",
		"k < 0x400368fd (|x| < 2.426260)",
		"k < 0x419921fb (|x| < 1.054140e+08)",
		"k < 0x7ff00000 (|x| < 2^1024)",
	}
	for i := range branches {
		branches[i] = rt.BranchInfo{ID: i, Label: labels[i], Op: fp.LT}
	}
	return &rt.Program{
		Name:     "glibc_sin",
		Dim:      1,
		Branches: branches,
		Run: func(ctx *rt.Ctx, in []float64) {
			sinImpl(ctx, in[0])
		},
	}
}

// Sin computes the port's sine uninstrumented.
func Sin(x float64) float64 {
	return sinImpl(rt.NewCtx(rt.NopMonitor{}), x)
}

// sinImpl is the ported control structure of glibc 2.19 __sin. The five
// dispatch comparisons are observed as branch sites 0-4 with the integer
// key and threshold lifted to float64 (exact: both fit in 32 bits), so
// the boundary weak distance w *= |k - c| is precisely the paper's §6.2
// instrumentation.
func sinImpl(ctx *rt.Ctx, x float64) float64 {
	k := float64(KOf(x))
	switch {
	case ctx.Cmp(SinBranchTiny, fp.LT, k, float64(SinThresholds[0])):
		// |x| < 1.49e-8: sin x rounds to x.
		return x
	case ctx.Cmp(SinBranchSmall, fp.LT, k, float64(SinThresholds[1])):
		// |x| < 0.8554690: direct sin polynomial.
		return sinPoly(x)
	case ctx.Cmp(SinBranchMedium, fp.LT, k, float64(SinThresholds[2])):
		// |x| < 2.426265: sin(|x|) = cos(|x| - π/2), with the sign of x.
		y := cosPoly(math.Abs(x) - piOver2Hi - piOver2Lo)
		return math.Copysign(y, x)
	case ctx.Cmp(SinBranchLarge, fp.LT, k, float64(SinThresholds[3])):
		// |x| < 1.054e8: Cody–Waite reduction by π/2 for moderate
		// multiples, IEEE remainder beyond (the 33-bit π/2 split is only
		// exact while n fits in ~20 bits).
		if fp.Abs(x) < 1.0e6 {
			return reducedSin(x)
		}
		return reducedSin(math.Remainder(x, 2*math.Pi))
	case ctx.Cmp(SinBranchHuge, fp.LT, k, float64(SinThresholds[4])):
		// |x| < 2^1024: large-argument reduction. Glibc runs a
		// multi-precision payload here; we substitute math.Remainder
		// (documented approximation — see DESIGN.md; accuracy degrades
		// with |x| but results stay in [-1, 1]).
		return reducedSin(math.Remainder(x, 2*math.Pi))
	default:
		// Inf or NaN: x/x yields NaN, as in glibc.
		return x / x
	}
}

// π/2 split for Cody–Waite reduction.
const (
	piOver2Hi  = 1.5707963267341256e+00
	piOver2Lo  = 6.0771005065061922e-11
	invPiOver2 = 6.3661977236758138e-01 // 2/π
)

// reducedSin reduces |x| by multiples of π/2 and dispatches to the sin
// or cos kernel per quadrant.
func reducedSin(x float64) float64 {
	n := math.Round(x * invPiOver2)
	y := (x - n*piOver2Hi) - n*piOver2Lo
	// sin(y + q·π/2) by quadrant q = n mod 4.
	switch q := ((int64(n) % 4) + 4) % 4; q {
	case 0:
		return sinPoly(y)
	case 1:
		return cosPoly(y)
	case 2:
		return -sinPoly(y)
	default: // 3
		return -cosPoly(y)
	}
}

// Taylor-derived minimax-style coefficients (the role of glibc's
// s1..s5 / POLYNOMIAL kernels).
var sinCoeffs = [...]float64{
	-1.66666666666666666667e-01,
	+8.33333333333333333333e-03,
	-1.98412698412698412698e-04,
	+2.75573192239858906526e-06,
	-2.50521083854417187751e-08,
	+1.60590438368216145994e-10,
}

var cosCoeffs = [...]float64{
	-5.00000000000000000000e-01,
	+4.16666666666666666667e-02,
	-1.38888888888888888889e-03,
	+2.48015873015873015873e-05,
	-2.75573192239858906526e-07,
	+2.08767569878680989792e-09,
}

// sinPoly evaluates sin on the reduced range |x| ≲ π/4 (accurate to a
// few ULP there; used up to ~0.86 by the small branch, matching glibc's
// polynomial range).
func sinPoly(x float64) float64 {
	z := x * x
	s := 0.0
	for i := len(sinCoeffs) - 1; i >= 0; i-- {
		s = s*z + sinCoeffs[i]
	}
	return x + x*z*s
}

// cosPoly evaluates cos on the reduced range.
func cosPoly(x float64) float64 {
	z := x * x
	s := 0.0
	for i := len(cosCoeffs) - 1; i >= 0; i-- {
		s = s*z + cosCoeffs[i]
	}
	return 1 + z*s
}
