package gsl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fp"
	"repro/internal/instrument"
)

func TestBesselValueSanity(t *testing.T) {
	// The asymptotic form: K_nu(x)·e^x ≈ sqrt(π/(2x))(1 + …) for large
	// x. For nu=0, x=100: leading term sqrt(π/200) ≈ 0.12533.
	res, st := BesselKnuScaledAsympx(0, 100)
	if st != Success {
		t.Fatalf("status %v", st)
	}
	if math.Abs(res.Val-0.12533) > 1e-3 {
		t.Errorf("val = %v, want ≈ 0.12533", res.Val)
	}
	if res.Err < 0 || math.IsNaN(res.Err) {
		t.Errorf("err = %v", res.Err)
	}
}

func TestBesselPaperOverflowInputs(t *testing.T) {
	// §4.4: nu = 1.8e308 (paper's rounded display; any nu with
	// 4|nu| >= MAX works) triggers overflow on l1 (4.0 * nu), and
	// nu = 3.2e157 on l2 (4.0*nu * nu).
	p := BesselProgram()
	m := instrument.NewOverflow()
	p.Execute(m, []float64{1.7e308, -1.5e2})
	if m.Value() != 0 || m.LastSite() != BesselOpMu1 {
		t.Errorf("nu=1.7e308: W=%v last=%d, want overflow at l1=%d", m.Value(), m.LastSite(), BesselOpMu1)
	}
	p.Execute(m, []float64{3.2e157, 5.3e1})
	if m.Value() != 0 || m.LastSite() != BesselOpMu2 {
		t.Errorf("nu=3.2e157: W=%v last=%d, want overflow at l2=%d", m.Value(), m.LastSite(), BesselOpMu2)
	}
}

func TestBesselProgramSiteCount(t *testing.T) {
	p := BesselProgram()
	if len(p.Ops) != 23 {
		t.Errorf("op sites = %d, want 23 (Table 4)", len(p.Ops))
	}
	if BesselOpCount != 23 {
		t.Errorf("BesselOpCount = %d", BesselOpCount)
	}
	if BesselOpLabel(0) == "?" || BesselOpLabel(99) != "?" {
		t.Error("label lookup broken")
	}
}

func TestBesselAllSitesObserved(t *testing.T) {
	// A benign input must execute all 23 operation sites exactly once.
	p := BesselProgram()
	seen := map[int]int{}
	mon := &opRecorder{seen: seen}
	p.Execute(mon, []float64{1.5, 2.5})
	for i := 0; i < BesselOpCount; i++ {
		if seen[i] != 1 {
			t.Errorf("site %d (%s) observed %d times, want 1", i, BesselOpLabel(i), seen[i])
		}
	}
}

type opRecorder struct{ seen map[int]int }

func (m *opRecorder) Reset()                                 {}
func (m *opRecorder) Branch(int, fp.CmpOp, float64, float64) {}
func (m *opRecorder) FPOp(site int, v float64) bool          { m.seen[site]++; return false }
func (m *opRecorder) Value() float64                         { return 0 }

func TestBesselConstantProductNeverOverflows(t *testing.T) {
	// 2.0 * GSL_DBL_EPSILON is a constant product: Table 4's expected
	// miss. No input can overflow it.
	prop := func(nu, x float64) bool {
		if math.IsNaN(nu) || math.IsNaN(x) {
			return true
		}
		p := BesselProgram()
		rec := &opValueRecorder{site: BesselOpErrEps}
		p.Execute(rec, []float64{nu, x})
		return !rec.sawOverflow
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

type opValueRecorder struct {
	site        int
	sawOverflow bool
}

func (m *opValueRecorder) Reset()                                 {}
func (m *opValueRecorder) Branch(int, fp.CmpOp, float64, float64) {}
func (m *opValueRecorder) FPOp(site int, v float64) bool {
	if site == m.site && fp.Overflowed(v) {
		m.sawOverflow = true
	}
	return false
}
func (m *opValueRecorder) Value() float64 { return 0 }

func TestCosAccuracy(t *testing.T) {
	for _, x := range []float64{0, 1e-5, 0.3, 1.0, 2.0, 3.1, -4.5, 10.0, 100.0, 1e6} {
		res, st := CosErr(x, 0)
		if st != Success {
			t.Fatalf("CosErr(%v) status %v", x, st)
		}
		if diff := math.Abs(res.Val - math.Cos(x)); diff > 1e-6 {
			t.Errorf("CosErr(%v).Val = %v, want %v (diff %g)", x, res.Val, math.Cos(x), diff)
		}
	}
}

func TestCosHugeArgumentBreakdown(t *testing.T) {
	// Bug 2's mechanism: for huge arguments the Cody–Waite reduction is
	// meaningless and the Chebyshev argument leaves [-1,1]; the result
	// escapes [-1,1] (the paper observed -Inf) while status stays
	// Success.
	res, st := CosErr(-8.11e50, 7.50e35)
	if st != Success {
		t.Fatalf("status %v, want Success (the bug: no error reported)", st)
	}
	if math.Abs(res.Val) <= 1 {
		t.Errorf("CosErr(-8.11e50).Val = %v, expected far outside [-1,1]", res.Val)
	}
}

func TestAiryAiMiddleRegionAccuracy(t *testing.T) {
	// Reference values (Abramowitz & Stegun / Mathematica).
	cases := []struct{ x, want float64 }{
		{0, 0.3550280538878172},
		{0.5, 0.2316936064808335},
		{1.0, 0.1352924163128814},
		{-0.5, 0.4757280916105396},
		{-1.0, 0.5355608832923521},
	}
	for _, c := range cases {
		res, st := AiryAi(c.x)
		if st != Success {
			t.Fatalf("AiryAi(%v) status %v", c.x, st)
		}
		if math.Abs(res.Val-c.want) > 1e-9 {
			t.Errorf("AiryAi(%v) = %v, want %v", c.x, res.Val, c.want)
		}
	}
}

func TestAiryAiRightRegionDecays(t *testing.T) {
	res5, st := AiryAi(5)
	if st != Success {
		t.Fatalf("status %v", st)
	}
	// Ai(5) ≈ 1.0835e-4 (asymptotic form is ~1% accurate here).
	if math.Abs(res5.Val-1.0834e-4) > 5e-6 {
		t.Errorf("AiryAi(5) = %v, want ≈ 1.08e-4", res5.Val)
	}
	// Deep right region underflows with an explicit status.
	if _, st := AiryAi(1e6); st != EUndrflw {
		t.Errorf("AiryAi(1e6) status = %v, want underflow", st)
	}
}

func TestAiryAiOscillatoryRegionShape(t *testing.T) {
	// In the oscillatory region the port follows the mod/phase
	// asymptotics; amplitudes must decay like |x|^{-1/4} and values
	// oscillate in sign.
	sawPos, sawNeg := false, false
	for x := -3.0; x > -40; x -= 0.5 {
		res, st := AiryAi(x)
		if st != Success {
			t.Fatalf("AiryAi(%v) status %v", x, st)
		}
		if math.Abs(res.Val) > 1.0 {
			t.Errorf("AiryAi(%v) = %v, amplitude implausible", x, res.Val)
		}
		if res.Val > 0 {
			sawPos = true
		}
		if res.Val < 0 {
			sawNeg = true
		}
	}
	if !sawPos || !sawNeg {
		t.Error("oscillatory region does not oscillate")
	}
}

func TestAiryBug1DivisionByZero(t *testing.T) {
	// Bug 1: at the paper's trigger input the am22 Chebyshev sum
	// vanishes and airy_mod_phase divides by it — err becomes +Inf while
	// status remains Success.
	x1 := -1.8427611519777440
	res, st := AiryAi(x1)
	if st != Success {
		t.Fatalf("status %v, want Success (the bug: no error reported)", st)
	}
	if !math.IsInf(res.Err, 1) && !math.IsNaN(res.Err) {
		t.Errorf("AiryAi(%v).Err = %v, want Inf (division by vanished sum)", x1, res.Err)
	}
	if !Inconsistent(res, st) {
		t.Error("Bug 1 must register as an inconsistency")
	}
	// A slightly perturbed input does not trigger it (paper: the
	// exception disappears if one slightly disturbs the input).
	res2, st2 := AiryAi(-1.84276115198)
	if Inconsistent(res2, st2) {
		t.Errorf("perturbed input still inconsistent: %+v %v", res2, st2)
	}
}

func TestAiryBug2HugeNegative(t *testing.T) {
	// Bug 2: x = -1.14e34 gives a mathematically impossible result
	// (|Ai| <= 1 in the oscillatory region) with Success status.
	res, st := AiryAi(-1.14e34)
	if st != Success {
		t.Fatalf("status %v, want Success (the bug: no error reported)", st)
	}
	if math.Abs(res.Val) <= 1 && !math.IsNaN(res.Val) {
		t.Errorf("AiryAi(-1.14e34) = %v, expected an implausible value (paper saw -Inf)", res.Val)
	}
}

func TestAiryDomainStatusNotInconsistent(t *testing.T) {
	// Inconsistency requires Success status; explicit error statuses
	// don't count.
	if Inconsistent(Result{Val: math.Inf(1)}, EOvrflw) {
		t.Error("non-success status cannot be inconsistent")
	}
	if !Inconsistent(Result{Val: math.Inf(1)}, Success) {
		t.Error("Inf value with Success must be inconsistent")
	}
	if !Inconsistent(Result{Val: 1, Err: math.NaN()}, Success) {
		t.Error("NaN err with Success must be inconsistent")
	}
}

func TestHyperg2F0Basic(t *testing.T) {
	// 2F0(a,b;x) ≈ 1 + a·b·x for small |x| (asymptotic series).
	res, st := Hyperg2F0(0.5, 0.5, -0.001)
	if st != Success {
		t.Fatalf("status %v", st)
	}
	want := 1 + 0.5*0.5*-0.001
	if math.Abs(res.Val-want) > 1e-4 {
		t.Errorf("2F0(0.5,0.5,-0.001) = %v, want ≈ %v", res.Val, want)
	}
}

func TestHyperg2F0Domain(t *testing.T) {
	if _, st := Hyperg2F0(1, 1, 0.5); st != EDom {
		t.Errorf("x > 0 should be a domain error, got %v", st)
	}
	res, st := Hyperg2F0(1, 1, 0)
	if st != Success || res.Val != 1 {
		t.Errorf("2F0 at x=0 = %+v %v, want 1/Success", res, st)
	}
}

func TestHyperg2F0PaperInconsistency(t *testing.T) {
	// Table 5 row "pre = pow(-1.0/x, a)": (a,b,x) = (-6.2e2, -3.7e2,
	// -1.5e2) makes the pow overflow (exponent 620 on base 150) and the
	// result non-finite while the returned status is Success.
	res, st := Hyperg2F0(-6.2e2, -3.7e2, -1.5e2)
	if !Inconsistent(res, st) {
		t.Errorf("expected inconsistency, got %+v status %v", res, st)
	}
	// Table 5 row "pre * U.val": large negative integer parameters make
	// the terminating U polynomial itself overflow.
	res2, st2 := Hyperg2F0(-3.4e2, -1.2e2, -1.0e2)
	if !Inconsistent(res2, st2) {
		t.Errorf("expected terminating-series inconsistency, got %+v status %v", res2, st2)
	}
}

func TestHypergProgramSites(t *testing.T) {
	p := Hyperg2F0Program()
	if len(p.Ops) != 8 {
		t.Errorf("op sites = %d, want 8 (Table 3)", len(p.Ops))
	}
	// All 8 sites observed on the x < 0 path.
	seen := map[int]int{}
	p.Execute(&opRecorder{seen: seen}, []float64{0.5, 0.5, -2.0})
	for i := 0; i < HypergOpCount; i++ {
		if seen[i] != 1 {
			t.Errorf("site %d (%s) observed %d, want 1", i, HypergOpLabel(i), seen[i])
		}
	}
}

func TestAiryProgramSiteTable(t *testing.T) {
	p := AiryAiProgram()
	if len(p.Ops) != airySiteCount {
		t.Fatalf("site table %d entries, want %d", len(p.Ops), airySiteCount)
	}
	for i, op := range p.Ops {
		if op.ID != i {
			t.Fatalf("site %d has ID %d", i, op.ID)
		}
		if op.Label == "" {
			t.Errorf("site %d has empty label", i)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	if Success.String() != "success" || EDom.String() != "input domain error" {
		t.Error("status strings wrong")
	}
	if Status(99).String() != "unknown error" {
		t.Error("unknown status string wrong")
	}
}

func TestAm22RootReachable(t *testing.T) {
	// The synthetic am22 series must vanish exactly at the image of the
	// trigger input — the property Bug 1's reachability rests on.
	y := am22YOf(-1.8427611519777440)
	if y != am22RootY {
		t.Fatal("root image mismatch")
	}
	// Clenshaw with the port's exact operation order.
	val := y*am22CS.c[1] + 0.5*am22CS.c[0]
	if val != 0 {
		t.Errorf("am22(y0) = %g, want exact 0", val)
	}
	// Off the root it must not vanish.
	yOff := math.Nextafter(y, 2)
	if got := yOff*am22CS.c[1] + 0.5*am22CS.c[0]; got == 0 {
		t.Error("am22 vanishes off the root")
	}
}
