package gsl

import (
	"math"

	"repro/internal/rt"
)

// The 8 elementary floating-point operation sites of
// gsl_sf_hyperg_2F0_e's x < 0 branch (hyperg_2F0.c) — the |Op| = 8 of
// the paper's Table 3.
const (
	HypergOpNegInv1 = iota // -1.0/x (argument of pow)
	HypergOpAddA           // 1.0 + a
	HypergOpSubB           // (1.0+a) - b
	HypergOpNegInv2        // -1.0/x (argument of hyperg_U)
	HypergOpValMul         // result->val = pre * U.val
	HypergOpErrEps         // GSL_DBL_EPSILON * fabs(result->val)
	HypergOpErrPre         // pre * U.err
	HypergOpErrAdd         // err = … + …
	HypergOpCount
)

var hypergOpLabels = [HypergOpCount]string{
	HypergOpNegInv1: "double pre = pow(-1.0/x, a) (the division)",
	HypergOpAddA:    "1.0 + a (second argument of U)",
	HypergOpSubB:    "1.0 + a - b (second argument of U)",
	HypergOpNegInv2: "-1.0/x (third argument of U)",
	HypergOpValMul:  "result->val = pre * U.val",
	HypergOpErrEps:  "GSL_DBL_EPSILON * fabs(result->val)",
	HypergOpErrPre:  "pre * U.err",
	HypergOpErrAdd:  "result->err = GSL_DBL_EPSILON*fabs(val) + pre*U.err",
}

// HypergOpLabel returns the source label for an operation site.
func HypergOpLabel(site int) string {
	if site >= 0 && site < HypergOpCount {
		return hypergOpLabels[site]
	}
	return "?"
}

// Hyperg2F0Program returns the instrumented port of gsl_sf_hyperg_2F0_e.
// Inputs: (a, b, x).
func Hyperg2F0Program() *rt.Program {
	ops := make([]rt.OpInfo, HypergOpCount)
	for i := range ops {
		ops[i] = rt.OpInfo{ID: i, Label: hypergOpLabels[i]}
	}
	return &rt.Program{
		Name: "gsl_sf_hyperg_2F0_e",
		Dim:  3,
		Ops:  ops,
		Run: func(ctx *rt.Ctx, in []float64) {
			var res Result
			hyperg2F0Impl(ctx, in[0], in[1], in[2], &res)
		},
	}
}

// Hyperg2F0 evaluates the port concretely, mirroring
// gsl_sf_hyperg_2F0_e(a, b, x, &result).
func Hyperg2F0(a, b, x float64) (Result, Status) {
	var res Result
	st := hyperg2F0Impl(rt.NewCtx(rt.NopMonitor{}), a, b, x, &res)
	return res, st
}

// hyperg2F0Impl ports gsl_sf_hyperg_2F0_e: for x < 0 it uses the
// "definition" 2F0(a,b;x) = (-1/x)^a U(a, 1+a-b, -1/x). Like GSL, the
// status it returns is the U evaluation's status — the overflow of
// pre * U.val is not detected, which is the Table 5 inconsistency.
func hyperg2F0Impl(ctx *rt.Ctx, a, b, x float64, result *Result) Status {
	switch {
	case x < 0.0:
		pre := math.Pow(ctx.Op(HypergOpNegInv1, -1.0/x), a)
		bU := ctx.Op(HypergOpSubB, ctx.Op(HypergOpAddA, 1.0+a)-b)
		var u Result
		statU := hypergU(a, bU, ctx.Op(HypergOpNegInv2, -1.0/x), &u)
		result.Val = ctx.Op(HypergOpValMul, pre*u.Val)
		result.Err = ctx.Op(HypergOpErrAdd,
			ctx.Op(HypergOpErrEps, DblEpsilon*math.Abs(result.Val))+
				ctx.Op(HypergOpErrPre, pre*u.Err))
		return statU
	case x == 0.0:
		result.Val = 1.0
		result.Err = 0.0
		return Success
	default:
		// x > 0: the asymptotic series is not defined (GSL: domain
		// error).
		result.Val = 0.0
		result.Err = 0.0
		return EDom
	}
}

// hypergU is the substituted confluent hypergeometric U(a, b, z) for
// z > 0 (see DESIGN.md): the divergent asymptotic expansion
//
//	U(a,b,z) ≈ z^-a · Σ_{n=0..N} (a)_n (a-b+1)_n / (n! (-z)^n)
//
// truncated at its smallest term (classical optimal truncation), with
// the first omitted term as the error estimate. Faithful to GSL in the
// respects the experiment relies on: it reports Success even when the
// Pochhammer products overflow to ±Inf for large parameters, leaving
// the caller to multiply Inf into a "successful" result.
func hypergU(a, b, z float64, result *Result) Status {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(z) {
		result.Val = math.NaN()
		result.Err = math.NaN()
		return EDom
	}
	pre := math.Pow(z, -a)
	sum := 1.0
	term := 1.0
	minTerm := math.Abs(term)
	errEst := 0.0
	// When a or a-b+1 is a non-positive integer the Pochhammer symbols
	// terminate the expansion: the series is an exact polynomial and
	// must be summed in full. Its coefficients grow factorially and —
	// exactly as in GSL — can overflow to ±Inf mid-sum while the
	// function still reports Success (the Table 5 mechanism).
	terminating := isNonPosInt(a) || isNonPosInt(a-b+1)
	for n := 0; n < 4096; n++ {
		fn := float64(n)
		term *= (a + fn) * (a - b + 1 + fn) / ((fn + 1) * -z)
		if term == 0 {
			errEst = 0
			break
		}
		at := math.Abs(term)
		if !terminating && at > minTerm && n > 0 {
			// Divergence point reached: optimal truncation.
			errEst = at
			break
		}
		minTerm = at
		sum += term
		errEst = at
		if math.IsInf(sum, 0) || math.IsNaN(sum) {
			break
		}
	}
	result.Val = pre * sum
	result.Err = math.Abs(pre)*errEst + DblEpsilon*math.Abs(result.Val)
	return Success
}

// isNonPosInt reports whether v is 0, -1, -2, … (a terminating
// Pochhammer parameter).
func isNonPosInt(v float64) bool {
	return v <= 0 && v == math.Floor(v) && !math.IsInf(v, 0)
}
