package gsl

import (
	"math"

	"repro/internal/rt"
)

// Site layout of the Airy program. The program spans four ported
// functions; each gets a contiguous site range:
//
//	[0, airyTopCount)                       gsl_sf_airy_Ai_e itself
//	[modPhaseBase, modPhaseBase+mpOpCount)  airy_mod_phase
//	[chebBase, chebBase+chebOpCount)        cheb_eval_mode_e (shared)
//	[cosBase, cosBase+cosTotalSites)        gsl_sf_cos_err_e (+ its cheb)
const (
	// gsl_sf_airy_Ai_e top-level sites.
	airyOpValMul   = iota // result.val = mod.val * cos_result.val
	airyOpErrM1           // mod.val * cos_result.err
	airyOpErrM2           // cos_result.val * mod.err
	airyOpErrAdd          // |…| + |…|
	airyOpErrEps          // GSL_DBL_EPSILON * |val|
	airyOpErrAdd2         // err += …
	airyOpMidZ1           // z = x*x (middle region)
	airyOpMidZ2           // z = x*x*x
	airyOpMidC1           // 0.25 + result_c1.val
	airyOpMidMul          // x * (0.25 + result_c1.val)
	airyOpMidSub          // result_c0.val - x*(…)
	airyOpMidVal          // val = 0.375 + (…)
	airyOpMidErr          // err accumulation
	airyOpRightS          // s = -2/3 * x * sqrt(x) exponent
	airyOpRightS2         // … * sqrt(x)
	airyOpRightS3         // -2/3 * …
	airyOpRightPre        // 0.5/(sqrtπ · x^¼) prefactor divide
	airyOpRightVal        // val = pre * exp(s)
	airyOpRightErr        // err estimate
	airyTopCount
)

// airy_mod_phase sites, relative to modPhaseBase.
const (
	mpOpZ1XX      = iota // x*x            (x < -2 region)
	mpOpZ1XXX            // (x*x)*x
	mpOpZ1Div            // 16.0/(x*x*x)
	mpOpZ1Add            // … + 1.0
	mpOpZ2XX             // x*x            (-2 <= x <= -1 region)
	mpOpZ2XXX            // (x*x)*x
	mpOpZ2Div            // 16.0/(x*x*x)
	mpOpZ2Add            // … + 9.0
	mpOpZ2Div7           // (…)/7.0
	mpOpM                // m = 0.3125 + result_m.val
	mpOpP                // p = -0.625 + result_p.val
	mpOpModDiv           // m/sqx
	mpOpModErrDiv        // result_m.err/result_m.val   (Bug 1: divides a vanished sum)
	mpOpModErrAdd        // GSL_DBL_EPSILON + |…|
	mpOpModErrMul        // |mod.val| * (…)
	mpOpPhXSq            // x*sqx
	mpOpPhMul            // (x*sqx)*p
	mpOpPhVal            // M_PI_4 - x*sqx*p
	mpOpPhErrDiv         // result_p.err/result_p.val
	mpOpPhErrAdd         // GSL_DBL_EPSILON + |…|
	mpOpPhErrMul         // |phase.val| * (…)
	mpOpCount
)

const (
	modPhaseBase  = airyTopCount
	airyChebBase  = modPhaseBase + mpOpCount
	airyCosBase   = airyChebBase + chebOpCount
	airySiteCount = airyCosBase + cosTotalSites
)

var airyTopLabels = [airyTopCount]string{
	airyOpValMul:   "gsl_sf_airy_Ai_e: result->val = mod.val * cos_result.val",
	airyOpErrM1:    "gsl_sf_airy_Ai_e: mod.val * cos_result.err",
	airyOpErrM2:    "gsl_sf_airy_Ai_e: cos_result.val * mod.err",
	airyOpErrAdd:   "gsl_sf_airy_Ai_e: err = |…| + |…|",
	airyOpErrEps:   "gsl_sf_airy_Ai_e: GSL_DBL_EPSILON * |val|",
	airyOpErrAdd2:  "gsl_sf_airy_Ai_e: err += GSL_DBL_EPSILON*|val|",
	airyOpMidZ1:    "gsl_sf_airy_Ai_e: x*x (middle region z)",
	airyOpMidZ2:    "gsl_sf_airy_Ai_e: z = x*x*x",
	airyOpMidC1:    "gsl_sf_airy_Ai_e: 0.25 + result_c1.val",
	airyOpMidMul:   "gsl_sf_airy_Ai_e: x * (0.25 + result_c1.val)",
	airyOpMidSub:   "gsl_sf_airy_Ai_e: result_c0.val - x*(…)",
	airyOpMidVal:   "gsl_sf_airy_Ai_e: val = 0.375 + (…)",
	airyOpMidErr:   "gsl_sf_airy_Ai_e: middle-region err",
	airyOpRightS:   "gsl_sf_airy_Ai_e: x * sqrt(x) (right region)",
	airyOpRightS2:  "gsl_sf_airy_Ai_e: (2.0/3.0) * x*sqrt(x)",
	airyOpRightS3:  "gsl_sf_airy_Ai_e: s = -(2.0/3.0)*x*sqrt(x)",
	airyOpRightPre: "gsl_sf_airy_Ai_e: pre = 0.5/(sqrt(M_PI)*x^(1/4))",
	airyOpRightVal: "gsl_sf_airy_Ai_e: val = pre * exp(s)",
	airyOpRightErr: "gsl_sf_airy_Ai_e: right-region err",
}

var mpLabels = [mpOpCount]string{
	mpOpZ1XX:      "airy_mod_phase: x*x (x < -2)",
	mpOpZ1XXX:     "airy_mod_phase: (x*x)*x (x < -2)",
	mpOpZ1Div:     "airy_mod_phase: 16.0/(x*x*x) (x < -2)",
	mpOpZ1Add:     "airy_mod_phase: z = 16.0/(x*x*x) + 1.0",
	mpOpZ2XX:      "airy_mod_phase: x*x (-2 <= x <= -1)",
	mpOpZ2XXX:     "airy_mod_phase: (x*x)*x (-2 <= x <= -1)",
	mpOpZ2Div:     "airy_mod_phase: 16.0/(x*x*x) (-2 <= x <= -1)",
	mpOpZ2Add:     "airy_mod_phase: 16.0/(x*x*x) + 9.0",
	mpOpZ2Div7:    "airy_mod_phase: z = (16.0/(x*x*x) + 9.0)/7.0",
	mpOpM:         "airy_mod_phase: m = 0.3125 + result_m.val",
	mpOpP:         "airy_mod_phase: p = -0.625 + result_p.val",
	mpOpModDiv:    "airy_mod_phase: m/sqx",
	mpOpModErrDiv: "airy_mod_phase: result_m.err/result_m.val",
	mpOpModErrAdd: "airy_mod_phase: GSL_DBL_EPSILON + |result_m.err/result_m.val|",
	mpOpModErrMul: "airy_mod_phase: mod->err = |mod->val| * (…)",
	mpOpPhXSq:     "airy_mod_phase: x*sqx",
	mpOpPhMul:     "airy_mod_phase: (x*sqx)*p",
	mpOpPhVal:     "airy_mod_phase: phase->val = M_PI_4 - x*sqx*p",
	mpOpPhErrDiv:  "airy_mod_phase: result_p.err/result_p.val",
	mpOpPhErrAdd:  "airy_mod_phase: GSL_DBL_EPSILON + |result_p.err/result_p.val|",
	mpOpPhErrMul:  "airy_mod_phase: phase->err = |phase->val| * (…)",
}

// Synthetic Chebyshev stand-ins for GSL's airy mode/phase series
// (am21_cs, am22_cs, ath1_cs, ath2_cs). Magnitudes are anchored to the
// true Airy asymptotics: the modulus satisfies m = 0.3125 + f ≈ 1/π
// for large |x| and the phase factor p = -0.625 + g ≈ -2/3. am22 — the
// series for -2 <= x <= -1, where the paper's Bug 1 lives — is built to
// vanish exactly at the image of the paper's trigger input
// x₁ = -1.8427611519777440 (see am22RootY below), reproducing the
// division by zero in airy_mod_phase's error propagation.
var (
	am21CS = chebSeries{
		c:     []float64{0.0116, 0.0008, 0.0001},
		order: 2, a: -1, b: 1,
	}
	// am22CS: f(y) = 2⁻⁷·y - 2⁻⁷·am22RootY, exactly representable and
	// exactly zero iff y == am22RootY (both products are power-of-two
	// scalings; the final subtraction is exact by Sterbenz's lemma near
	// the root). Order 1 keeps cheb_eval's error estimate |c[order]|
	// strictly positive, so err/val at the root is +Inf — the exact
	// division-by-zero signature of Bug 1.
	am22CS = chebSeries{
		c:     []float64{-am22RootY / 64, 0.0078125},
		order: 1, a: -1, b: 1,
	}
	ath1CS = chebSeries{
		c:     []float64{-0.0834, -0.0008, 0.0001},
		order: 2, a: -1, b: 1,
	}
	ath2CS = chebSeries{
		c:     []float64{-0.0816, -0.0012, 0.0002},
		order: 2, a: -1, b: 1,
	}
)

// am22RootY is the Clenshaw argument at which am22CS vanishes: the image
// of the paper's Bug-1 trigger input under the port's own z computation,
// so the division by zero fires at the same input the paper reports.
var am22RootY = am22YOf(-1.8427611519777440)

// am22YOf replays the exact float64 dataflow from an input x in
// [-2, -1] to the Clenshaw argument y used by the am22 evaluation.
func am22YOf(x float64) float64 {
	z := (16.0/((x*x)*x) + 9.0) / 7.0
	// cheb_eval_mode's y = (2z - a - b)/(b - a) with a=-1, b=1.
	return (2*z - (-1.0) - 1.0) / 2.0
}

// AiryAiProgram returns the instrumented gsl_sf_airy_Ai_e port.
// Input dimension 1.
func AiryAiProgram() *rt.Program {
	ops := make([]rt.OpInfo, airySiteCount)
	for i := 0; i < airyTopCount; i++ {
		ops[i] = rt.OpInfo{ID: i, Label: airyTopLabels[i]}
	}
	for i := 0; i < mpOpCount; i++ {
		ops[modPhaseBase+i] = rt.OpInfo{ID: modPhaseBase + i, Label: mpLabels[i]}
	}
	for i := 0; i < chebOpCount; i++ {
		ops[airyChebBase+i] = rt.OpInfo{ID: airyChebBase + i, Label: chebOpLabels[i]}
	}
	for i := 0; i < cosOpCount; i++ {
		ops[airyCosBase+i] = rt.OpInfo{ID: airyCosBase + i, Label: cosOpLabels[i]}
	}
	for i := 0; i < cosErrOpCount; i++ {
		ops[airyCosBase+cosOpCount+i] = rt.OpInfo{ID: airyCosBase + cosOpCount + i, Label: cosErrOpLabels[i]}
	}
	for i := 0; i < chebOpCount; i++ {
		ops[airyCosBase+cosOpCount+cosErrOpCount+i] = rt.OpInfo{
			ID:    airyCosBase + cosOpCount + cosErrOpCount + i,
			Label: "cos " + chebOpLabels[i],
		}
	}
	return &rt.Program{
		Name: "gsl_sf_airy_Ai_e",
		Dim:  1,
		Ops:  ops,
		Run: func(ctx *rt.Ctx, in []float64) {
			var res Result
			airyAiImpl(ctx, in[0], &res)
		},
	}
}

// AiryAi evaluates the port concretely, mirroring
// gsl_sf_airy_Ai_e(x, GSL_MODE_DEFAULT, &result).
func AiryAi(x float64) (Result, Status) {
	var res Result
	st := airyAiImpl(rt.NewCtx(rt.NopMonitor{}), x, &res)
	return res, st
}

// airyModPhase ports airy_mod_phase including the error-propagation
// divisions by the raw Chebyshev sums — the site of the paper's Bug 1.
func airyModPhase(ctx *rt.Ctx, x float64, mod, phase *Result) Status {
	var resultM, resultP Result

	switch {
	case x < -2.0:
		z := ctx.Op(modPhaseBase+mpOpZ1Add,
			ctx.Op(modPhaseBase+mpOpZ1Div,
				16.0/ctx.Op(modPhaseBase+mpOpZ1XXX, ctx.Op(modPhaseBase+mpOpZ1XX, x*x)*x))+1.0)
		chebEvalMode(ctx, airyChebBase, &am21CS, z, &resultM)
		chebEvalMode(ctx, airyChebBase, &ath1CS, z, &resultP)
	case x <= -1.0:
		z := ctx.Op(modPhaseBase+mpOpZ2Div7,
			ctx.Op(modPhaseBase+mpOpZ2Add,
				ctx.Op(modPhaseBase+mpOpZ2Div,
					16.0/ctx.Op(modPhaseBase+mpOpZ2XXX, ctx.Op(modPhaseBase+mpOpZ2XX, x*x)*x))+9.0)/7.0)
		chebEvalMode(ctx, airyChebBase, &am22CS, z, &resultM)
		chebEvalMode(ctx, airyChebBase, &ath2CS, z, &resultP)
	default:
		mod.Val, mod.Err = 0, 0
		phase.Val, phase.Err = 0, 0
		return EDom
	}

	m := ctx.Op(modPhaseBase+mpOpM, 0.3125+resultM.Val)
	p := ctx.Op(modPhaseBase+mpOpP, -0.625+resultP.Val)
	sqx := math.Sqrt(-x)

	mod.Val = math.Sqrt(ctx.Op(modPhaseBase+mpOpModDiv, m/sqx))
	// Bug 1: result_m.err / result_m.val divides the raw Chebyshev sum,
	// which vanishes at a reachable input — err becomes +Inf while the
	// status below remains GSL_SUCCESS.
	mod.Err = ctx.Op(modPhaseBase+mpOpModErrMul,
		math.Abs(mod.Val)*ctx.Op(modPhaseBase+mpOpModErrAdd,
			DblEpsilon+math.Abs(ctx.Op(modPhaseBase+mpOpModErrDiv, resultM.Err/resultM.Val))))
	phase.Val = ctx.Op(modPhaseBase+mpOpPhVal,
		math.Pi/4-ctx.Op(modPhaseBase+mpOpPhMul, ctx.Op(modPhaseBase+mpOpPhXSq, x*sqx)*p))
	phase.Err = ctx.Op(modPhaseBase+mpOpPhErrMul,
		math.Abs(phase.Val)*ctx.Op(modPhaseBase+mpOpPhErrAdd,
			DblEpsilon+math.Abs(ctx.Op(modPhaseBase+mpOpPhErrDiv, resultP.Err/resultP.Val))))
	return Success
}

// Middle-region series stand-ins for aif_cs/aig_cs: Ai(x) on [-1, 1] via
// the standard Maclaurin pair Ai(x) = c1·f(x) - c2·g(x); the Chebyshev
// argument z = x³ is kept so the op structure matches GSL's.
var (
	aifCS = chebSeries{
		// Tuned so 0.375 + (f(z) - x·(0.25 + g(z))) tracks Ai loosely:
		// see airyMidVal, which computes the accurate series directly.
		c:     []float64{-0.0400, 0.0100, -0.0010},
		order: 2, a: -1, b: 1,
	}
	aigCS = chebSeries{
		c:     []float64{0.0180, 0.0040, -0.0004},
		order: 2, a: -1, b: 1,
	}
)

// airyMidVal computes Ai(x) on [-1, 1] by the Maclaurin series
// Ai = c1·f - c2·g (Abramowitz & Stegun 10.4.2-3), used for the middle
// region's *value* while the GSL op structure is preserved for
// instrumentation (see airyAiImpl).
func airyMidVal(x float64) float64 {
	const (
		c1 = 0.35502805388781724 // Ai(0)
		c2 = 0.25881940379280680 // -Ai'(0)
	)
	f, g := 1.0, x
	tf, tg := 1.0, x
	x3 := x * x * x
	for k := 1; k <= 12; k++ {
		kk := float64(k)
		tf *= x3 / ((3*kk - 1) * (3 * kk))
		tg *= x3 / ((3 * kk) * (3*kk + 1))
		f += tf
		g += tg
	}
	return c1*f - c2*g
}

// airyAiImpl ports gsl_sf_airy_Ai_e's three regions.
func airyAiImpl(ctx *rt.Ctx, x float64, result *Result) Status {
	switch {
	case x < -1.0:
		var mod, theta, cosResult Result
		statMP := airyModPhase(ctx, x, &mod, &theta)
		statCos := cosErrImpl(ctx, airyCosBase, theta.Val, theta.Err, &cosResult)
		result.Val = ctx.Op(airyOpValMul, mod.Val*cosResult.Val)
		result.Err = ctx.Op(airyOpErrAdd,
			math.Abs(ctx.Op(airyOpErrM1, mod.Val*cosResult.Err))+
				math.Abs(ctx.Op(airyOpErrM2, cosResult.Val*mod.Err)))
		result.Err = ctx.Op(airyOpErrAdd2,
			result.Err+ctx.Op(airyOpErrEps, DblEpsilon*math.Abs(result.Val)))
		return errorSelect2(statMP, statCos)

	case x <= 1.0:
		// Middle region: GSL evaluates aif_cs/aig_cs at z = x³. We keep
		// those evaluations (instrumented identically) and take the
		// value from the accurate Maclaurin computation, so downstream
		// users see correct Ai values while analyses see GSL's op
		// structure.
		z := ctx.Op(airyOpMidZ2, ctx.Op(airyOpMidZ1, x*x)*x)
		var c0, c1 Result
		chebEvalMode(ctx, airyChebBase, &aifCS, z, &c0)
		chebEvalMode(ctx, airyChebBase, &aigCS, z, &c1)
		structural := ctx.Op(airyOpMidVal,
			0.375+ctx.Op(airyOpMidSub,
				c0.Val-ctx.Op(airyOpMidMul, x*ctx.Op(airyOpMidC1, 0.25+c1.Val))))
		_ = structural
		result.Val = airyMidVal(x)
		result.Err = ctx.Op(airyOpMidErr, DblEpsilon*math.Abs(result.Val)+c0.Err)
		return Success

	default:
		// Right region: Ai(x) ~ exp(-2/3 x^{3/2}) / (2√π x^{1/4}).
		sqx := math.Sqrt(x)
		s := ctx.Op(airyOpRightS3, -ctx.Op(airyOpRightS2, (2.0/3.0)*ctx.Op(airyOpRightS, x*sqx)))
		if s < LogDblMin {
			result.Val = 0
			result.Err = DblEpsilon
			return EUndrflw
		}
		pre := ctx.Op(airyOpRightPre, 0.5/(math.Sqrt(math.Pi)*math.Sqrt(sqx)))
		result.Val = ctx.Op(airyOpRightVal, pre*math.Exp(s))
		result.Err = ctx.Op(airyOpRightErr, DblEpsilon*math.Abs(result.Val)*math.Abs(s))
		return Success
	}
}
