package gsl

import (
	"math"

	"repro/internal/rt"
)

// Operation sites of gsl_sf_cos_e and gsl_sf_cos_err_e (trig.c),
// relative to a caller-provided base. The cheb sites of the embedded
// series evaluation follow at base+cosOpCount.
const (
	cosOpSmallX2   = iota // x2 = x*x (small-argument branch)
	cosOpSmallHalf        // 0.5*x2
	cosOpSmallVal         // 1.0 - 0.5*x2
	cosOpSmallX4          // x2*x2
	cosOpSmallErr         // x2*x2/12.0
	cosOpY                // y = floor(abs_x/(0.25*M_PI))
	cosOpOct              // y - ldexp(floor(ldexp(y,-3)),3)
	cosOpYInc             // y += 1.0 (odd-octant adjustment)
	cosOpZP1m             // y * P1
	cosOpZP1s             // abs_x - y*P1
	cosOpZP2m             // y * P2
	cosOpZP2s             // (…) - y*P2
	cosOpZP3m             // y * P3
	cosOpZP3s             // z = (…) - y*P3
	cosOpT8               // 8.0*fabs(z)
	cosOpTDiv             // (…)/M_PI
	cosOpTSub             // t = (…) - 1.0
	cosOpZZ               // z*z
	cosOpSerMul           // z*z * cs_result.val
	cosOpSerSub           // 1.0 - z*z*cs_result.val
	cosOpHalfZZ           // 0.5*z*z * (…)
	cosOpVal              // val = 1.0 - (…)
	cosOpErrAbsZ          // |z| error term product
	cosOpErrAdd1          // err accumulation
	cosOpErrEps           // GSL_DBL_EPSILON * |val|
	cosOpErrAdd2          // err accumulation
	cosOpCount
)

// gsl_sf_cos_err_e sites, relative to base (after cos + cheb sites).
const (
	cosErrOpMulDx = iota // |sin(x)| * dx
	cosErrOpAdd          // err += …
	cosErrOpEps          // GSL_DBL_EPSILON * |val|
	cosErrOpAdd2         // err += …
	cosErrOpCount
)

var cosOpLabels = [cosOpCount]string{
	cosOpSmallX2:   "gsl_sf_cos_e: x2 = x*x",
	cosOpSmallHalf: "gsl_sf_cos_e: 0.5*x2",
	cosOpSmallVal:  "gsl_sf_cos_e: val = 1.0 - 0.5*x2",
	cosOpSmallX4:   "gsl_sf_cos_e: x2*x2",
	cosOpSmallErr:  "gsl_sf_cos_e: err = fabs(x2*x2/12.0)",
	cosOpY:         "gsl_sf_cos_e: y = floor(abs_x/(0.25*M_PI))",
	cosOpOct:       "gsl_sf_cos_e: octant = y - ldexp(floor(ldexp(y,-3)),3)",
	cosOpYInc:      "gsl_sf_cos_e: y += 1.0",
	cosOpZP1m:      "gsl_sf_cos_e: y * P1",
	cosOpZP1s:      "gsl_sf_cos_e: abs_x - y*P1",
	cosOpZP2m:      "gsl_sf_cos_e: y * P2",
	cosOpZP2s:      "gsl_sf_cos_e: (abs_x - y*P1) - y*P2",
	cosOpZP3m:      "gsl_sf_cos_e: y * P3",
	cosOpZP3s:      "gsl_sf_cos_e: z = ((abs_x - y*P1) - y*P2) - y*P3",
	cosOpT8:        "gsl_sf_cos_e: 8.0*fabs(z)",
	cosOpTDiv:      "gsl_sf_cos_e: 8.0*fabs(z)/M_PI",
	cosOpTSub:      "gsl_sf_cos_e: t = 8.0*fabs(z)/M_PI - 1.0",
	cosOpZZ:        "gsl_sf_cos_e: z*z",
	cosOpSerMul:    "gsl_sf_cos_e: z*z * cos_cs_result.val",
	cosOpSerSub:    "gsl_sf_cos_e: 1.0 - z*z*cos_cs_result.val",
	cosOpHalfZZ:    "gsl_sf_cos_e: 0.5*z*z * (1.0 - z*z*cos_cs_result.val)",
	cosOpVal:       "gsl_sf_cos_e: val = 1.0 - 0.5*z*z*(…)",
	cosOpErrAbsZ:   "gsl_sf_cos_e: fabs(z) * GSL_DBL_EPSILON * fabs(y)",
	cosOpErrAdd1:   "gsl_sf_cos_e: err accumulation",
	cosOpErrEps:    "gsl_sf_cos_e: GSL_DBL_EPSILON * fabs(val)",
	cosOpErrAdd2:   "gsl_sf_cos_e: err + GSL_DBL_EPSILON*fabs(val)",
}

var cosErrOpLabels = [cosErrOpCount]string{
	cosErrOpMulDx: "gsl_sf_cos_err_e: fabs(sin(x)) * dx",
	cosErrOpAdd:   "gsl_sf_cos_err_e: err += fabs(sin(x))*dx",
	cosErrOpEps:   "gsl_sf_cos_err_e: GSL_DBL_EPSILON * fabs(val)",
	cosErrOpAdd2:  "gsl_sf_cos_err_e: err += GSL_DBL_EPSILON*fabs(val)",
}

// Cody–Waite constants of gsl_sf_cos_e (trig.c).
const (
	cosP1 = 7.85398125648498535156e-01
	cosP2 = 3.77489470793079817668e-08
	cosP3 = 2.69515142907905952645e-15
)

// cosCS and sinCS are the Chebyshev series GSL evaluates on the reduced
// argument t = 8|z|/π - 1 ∈ [-1, 1]. The coefficients are synthetic
// stand-ins for GSL's cos_cs/sin_cs (documented in DESIGN.md), derived
// from the Taylor kernels cos z = 1 - ½z²(1 - z²·c) and
// sin z = z(1 + z²·s): accurate to ~1e-7 in-domain and — like the
// originals — wildly divergent for the out-of-domain |t| >> 1 arguments
// produced by the broken huge-argument reduction (Bug 2's mechanism).
var cosCS = chebSeries{
	c: []float64{
		+0.1653918848,
		-8.48478e-04,
		-2.100551e-04,
		+1.17975e-06,
		+1.47468e-07,
	},
	order: 4,
	a:     -1,
	b:     1,
}

var sinCS = chebSeries{
	c: []float64{
		-0.3295193064,
		+2.537180e-03,
		+6.26038e-04,
		-4.71857e-06,
		-5.89821e-07,
	},
	order: 4,
	a:     -1,
	b:     1,
}

// cosImpl ports gsl_sf_cos_e. base is the program-relative offset of the
// cos sites; the embedded cheb sites live at base+cosOpCount.
//
// The reduction is faithful to GSL including its failure mode: for
// |x| large enough that y cannot be resolved by the Cody–Waite triple,
// z explodes, the series argument t leaves [-1,1], and the Chebyshev
// evaluation diverges — the val ±Inf observed in the paper's Bug 2.
func cosImpl(ctx *rt.Ctx, base int, x float64, result *Result) Status {
	absX := math.Abs(x)
	if absX < Root4DblEpsilon {
		x2 := ctx.Op(base+cosOpSmallX2, x*x)
		result.Val = ctx.Op(base+cosOpSmallVal, 1.0-ctx.Op(base+cosOpSmallHalf, 0.5*x2))
		result.Err = math.Abs(ctx.Op(base+cosOpSmallErr, ctx.Op(base+cosOpSmallX4, x2*x2)/12.0))
		return Success
	}

	sgn := 1.0
	y := math.Floor(ctx.Op(base+cosOpY, absX/(0.25*math.Pi)))
	octF := ctx.Op(base+cosOpOct, y-math.Ldexp(math.Floor(math.Ldexp(y, -3)), 3))
	octant := int(octF)
	if octant&1 == 1 {
		octant++
		octant &= 7
		y = ctx.Op(base+cosOpYInc, y+1.0)
	}
	if octant > 3 {
		octant -= 4
		sgn = -sgn
	}
	if octant > 1 {
		sgn = -sgn
	}

	z := ctx.Op(base+cosOpZP3s,
		ctx.Op(base+cosOpZP2s,
			ctx.Op(base+cosOpZP1s, absX-ctx.Op(base+cosOpZP1m, y*cosP1))-
				ctx.Op(base+cosOpZP2m, y*cosP2))-
			ctx.Op(base+cosOpZP3m, y*cosP3))

	t := ctx.Op(base+cosOpTSub,
		ctx.Op(base+cosOpTDiv, ctx.Op(base+cosOpT8, 8.0*math.Abs(z))/math.Pi)-1.0)
	var csRes Result
	zz := ctx.Op(base+cosOpZZ, z*z)
	if octant == 0 {
		// cos kernel.
		chebEvalMode(ctx, base+cosOpCount+cosErrOpCount, &cosCS, t, &csRes)
		result.Val = ctx.Op(base+cosOpVal,
			1.0-ctx.Op(base+cosOpHalfZZ, 0.5*zz*
				ctx.Op(base+cosOpSerSub, 1.0-ctx.Op(base+cosOpSerMul, zz*csRes.Val))))
	} else {
		// octant == 2: sin kernel.
		chebEvalMode(ctx, base+cosOpCount+cosErrOpCount, &sinCS, t, &csRes)
		result.Val = ctx.Op(base+cosOpVal,
			z*ctx.Op(base+cosOpSerSub, 1.0+ctx.Op(base+cosOpSerMul, zz*csRes.Val)))
	}
	result.Val *= sgn
	result.Err = ctx.Op(base+cosOpErrAdd1,
		ctx.Op(base+cosOpErrAbsZ, math.Abs(z)*DblEpsilon*math.Abs(y))+csRes.Err)
	result.Err = ctx.Op(base+cosOpErrAdd2,
		result.Err+ctx.Op(base+cosOpErrEps, DblEpsilon*math.Abs(result.Val)))
	return Success
}

// cosErrImpl ports gsl_sf_cos_err_e(x, dx): cosine of an argument known
// only to within dx, with the error propagated into the estimate.
func cosErrImpl(ctx *rt.Ctx, base int, x, dx float64, result *Result) Status {
	stat := cosImpl(ctx, base, x, result)
	errBase := base + cosOpCount
	result.Err = ctx.Op(errBase+cosErrOpAdd,
		result.Err+ctx.Op(errBase+cosErrOpMulDx, math.Abs(math.Sin(x))*dx))
	result.Err = ctx.Op(errBase+cosErrOpAdd2,
		result.Err+ctx.Op(errBase+cosErrOpEps, DblEpsilon*math.Abs(result.Val)))
	return stat
}

// CosErr evaluates the gsl_sf_cos_err_e port concretely.
func CosErr(x, dx float64) (Result, Status) {
	var res Result
	st := cosErrImpl(rt.NewCtx(rt.NopMonitor{}), 0, x, dx, &res)
	return res, st
}

// cosTotalSites is the number of sites cosErrImpl consumes from base:
// cos sites, then cos_err sites, then the embedded cheb sites.
const cosTotalSites = cosOpCount + cosErrOpCount + chebOpCount
