package gsl

import (
	"math"

	"repro/internal/rt"
)

// chebSeries mirrors GSL's cheb_series: Chebyshev coefficients on [a,b].
type chebSeries struct {
	c     []float64 // coefficients c[0..order]
	order int
	a, b  float64
}

// Operation sites of cheb_eval_mode_e / cheb_eval_e. The evaluator is
// one function in GSL, so its instruction sites are shared by every
// series it is applied to — our ports preserve that.
const (
	chebOp2x     = iota // 2.*x
	chebOpSubA          // - cs.a
	chebOpSubB          // - cs.b
	chebOpDen           // cs.b - cs.a
	chebOpDiv           // (…) / (…)
	chebOpY2            // 2.0 * y
	chebOpMul           // y2 * d          (Clenshaw loop)
	chebOpSub           // … - dd          (Clenshaw loop)
	chebOpAdd           // … + cs.c[j]     (Clenshaw loop)
	chebOpFinMul        // y * d
	chebOpFinSub        // … - dd
	chebOpC0            // 0.5 * c[0]
	chebOpFinAdd        // … + 0.5*c[0]
	chebOpErrMul        // GSL_DBL_EPSILON * |val|
	chebOpErrAdd        // … + |c[order]|

	chebOpCount
)

var chebOpLabels = [chebOpCount]string{
	chebOp2x:     "cheb_eval: 2.*x",
	chebOpSubA:   "cheb_eval: (2.*x) - cs->a",
	chebOpSubB:   "cheb_eval: (2.*x - cs->a) - cs->b",
	chebOpDen:    "cheb_eval: cs->b - cs->a",
	chebOpDiv:    "cheb_eval: y = (2.*x - cs->a - cs->b)/(cs->b - cs->a)",
	chebOpY2:     "cheb_eval: y2 = 2.0 * y",
	chebOpMul:    "cheb_eval: y2 * d (loop)",
	chebOpSub:    "cheb_eval: y2*d - dd (loop)",
	chebOpAdd:    "cheb_eval: y2*d - dd + cs->c[j] (loop)",
	chebOpFinMul: "cheb_eval: y * d",
	chebOpFinSub: "cheb_eval: y*d - dd",
	chebOpC0:     "cheb_eval: 0.5 * cs->c[0]",
	chebOpFinAdd: "cheb_eval: y*d - dd + 0.5*cs->c[0]",
	chebOpErrMul: "cheb_eval: GSL_DBL_EPSILON * fabs(val)",
	chebOpErrAdd: "cheb_eval: err + fabs(cs->c[order])",
}

// chebEvalMode ports cheb_eval_mode_e: the Clenshaw recurrence with
// GSL's exact operation order and error estimate. base offsets the
// shared cheb sites into the calling program's site space.
func chebEvalMode(ctx *rt.Ctx, base int, cs *chebSeries, x float64, result *Result) Status {
	d := 0.0
	dd := 0.0
	y := ctx.Op(base+chebOpDiv,
		ctx.Op(base+chebOpSubB,
			ctx.Op(base+chebOpSubA, ctx.Op(base+chebOp2x, 2.*x)-cs.a)-cs.b)/
			ctx.Op(base+chebOpDen, cs.b-cs.a))
	y2 := ctx.Op(base+chebOpY2, 2.0*y)
	for j := cs.order; j >= 1; j-- {
		temp := d
		d = ctx.Op(base+chebOpAdd,
			ctx.Op(base+chebOpSub, ctx.Op(base+chebOpMul, y2*d)-dd)+cs.c[j])
		dd = temp
	}
	result.Val = ctx.Op(base+chebOpFinAdd,
		ctx.Op(base+chebOpFinSub, ctx.Op(base+chebOpFinMul, y*d)-dd)+
			ctx.Op(base+chebOpC0, 0.5*cs.c[0]))
	result.Err = ctx.Op(base+chebOpErrAdd,
		ctx.Op(base+chebOpErrMul, DblEpsilon*math.Abs(result.Val))+math.Abs(cs.c[cs.order]))
	return Success
}
