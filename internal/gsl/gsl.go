// Package gsl ports the GNU Scientific Library special functions that
// the paper's overflow-detection experiment targets (§6.3, Tables 3-5):
//
//   - gsl_sf_bessel_Knu_scaled_asympx_e (bessel.c) — ported verbatim
//     from the paper's Fig. 5, with all 23 elementary floating-point
//     operations as observation sites (the rows of Table 4);
//   - gsl_sf_hyperg_2F0_e (hyperg_2F0.c) — the x<0 branch via
//     pre = pow(-1/x, a) and a confluent-U evaluation (substituted by an
//     asymptotic 2F0 series, see DESIGN.md);
//   - gsl_sf_airy_Ai_e (airy.c) — with the oscillatory-region pipeline
//     airy_mod_phase → cheb_eval_mode → gsl_sf_cos_err_e, reproducing
//     the two confirmed bugs: the division by a vanished Chebyshev sum
//     in airy_mod_phase's error propagation (Bug 1) and cos_err
//     returning values far outside [-1, 1] for huge phase arguments
//     (Bug 2).
//
// Every port follows the GSL convention the paper's inconsistency
// analysis relies on: results are (val, err) pairs plus an integer
// status, and an *inconsistency* is a run with status == Success whose
// val or err is ±Inf or NaN (Table 5).
package gsl

import "math"

// Result mirrors gsl_sf_result: a value and an absolute error estimate.
type Result struct {
	Val float64
	Err float64
}

// Status mirrors the gsl_errno.h codes used by the ports.
type Status int

// GSL status codes (subset).
const (
	Success  Status = 0
	EDom     Status = 1  // GSL_EDOM: input domain error
	ERange   Status = 2  // GSL_ERANGE: output range error
	EUndrflw Status = 15 // GSL_EUNDRFLW: underflow
	EOvrflw  Status = 16 // GSL_EOVRFLW: overflow
)

// String renders the status like GSL's gsl_strerror.
func (s Status) String() string {
	switch s {
	case Success:
		return "success"
	case EDom:
		return "input domain error"
	case ERange:
		return "output range error"
	case EUndrflw:
		return "underflow"
	case EOvrflw:
		return "overflow"
	}
	return "unknown error"
}

// errorSelect2 mirrors GSL_ERROR_SELECT_2: the first non-success status.
func errorSelect2(a, b Status) Status {
	if a != Success {
		return a
	}
	return b
}

// GSL numeric constants (gsl_machine.h).
const (
	// DblEpsilon is GSL_DBL_EPSILON.
	DblEpsilon = 2.2204460492503131e-16
	// SqrtDblEpsilon is GSL_SQRT_DBL_EPSILON.
	SqrtDblEpsilon = 1.4901161193847656e-08
	// Root4DblEpsilon is GSL_ROOT4_DBL_EPSILON.
	Root4DblEpsilon = 1.2207031250000000e-04
	// LogDblMin is GSL_LOG_DBL_MIN.
	LogDblMin = -7.0839641853226408e+02
)

// Inconsistent reports whether a computation outcome is an inconsistency
// in the paper's sense (§6.3.2): the status claims success while the
// result carries a non-finite value or error estimate.
func Inconsistent(r Result, st Status) bool {
	return st == Success &&
		(math.IsInf(r.Val, 0) || math.IsNaN(r.Val) ||
			math.IsInf(r.Err, 0) || math.IsNaN(r.Err))
}
