package gsl

import (
	"math"

	"repro/internal/rt"
)

// The 23 elementary floating-point operation sites of
// gsl_sf_bessel_Knu_scaled_asympx_e, in execution order. Each constant
// is one row of the paper's Table 4; the marked operator in the row's
// source text is the one observed at that site.
const (
	BesselOpMu1    = iota // mu = 4.0 * nu * nu       (first *)
	BesselOpMu2           // mu = 4.0*nu * nu          (second *)
	BesselOpMum1          // mum1 = mu - 1.0
	BesselOpMum9          // mum9 = mu - 9.0
	BesselOpPreMul        // pre = sqrt(M_PI/(2.0 * x))   (the 2.0*x)
	BesselOpPreDiv        // pre = sqrt(M_PI / (2.0*x))   (the division)
	BesselOpR             // r = nu / x
	BesselOpVal8x         // 8.0 * x
	BesselOpValD1         // mum1 / (8.0*x)
	BesselOpValA1         // 1.0 + mum1/(8.0*x)
	BesselOpValMM         // mum1 * mum9
	BesselOpVal128        // 128.0 * x
	BesselOpValXX         // (128.0*x) * x
	BesselOpValD2         // mum1*mum9 / (128.0*x*x)
	BesselOpValA2         // (1.0 + ...) + mum1*mum9/(128*x*x)
	BesselOpValPre        // pre * (...)
	BesselOpErrEps        // 2.0 * GSL_DBL_EPSILON       (constant product)
	BesselOpErrVal        // (2.0*EPSILON) * fabs(val)
	BesselOpErrR1         // 0.1 * r
	BesselOpErrR2         // (0.1*r) * r
	BesselOpErrR3         // (0.1*r*r) * r
	BesselOpErrPre        // pre * fabs(0.1*r*r*r)
	BesselOpErrAdd        // 2.0*EPSILON*fabs(val) + pre*fabs(...)

	BesselOpCount // 23
)

// besselOpLabels reproduces Table 4's first column, one label per site.
var besselOpLabels = [BesselOpCount]string{
	BesselOpMu1:    "double mu = 4.0 * nu*nu",
	BesselOpMu2:    "double mu = 4.0*nu * nu",
	BesselOpMum1:   "double mum1 = mu - 1.0",
	BesselOpMum9:   "double mum9 = mu - 9.0",
	BesselOpPreMul: "double pre = sqrt(M_PI/(2.0 * x))",
	BesselOpPreDiv: "double pre = sqrt(M_PI / (2.0*x))",
	BesselOpR:      "double r = nu / x",
	BesselOpVal8x:  "val=pre*(1.0 + mum1/(8.0 * x) + mum1*mum9/(128.0*x*x))",
	BesselOpValD1:  "val=pre*(1.0 + mum1 / (8.0*x) + mum1*mum9/(128.0*x*x))",
	BesselOpValA1:  "val=pre*(1.0 + mum1/(8.0*x) + mum1*mum9/(128.0*x*x)) (first +)",
	BesselOpValMM:  "val=pre*(1.0 + mum1/(8.0*x) + mum1 * mum9/(128.0*x*x))",
	BesselOpVal128: "val=pre*(1.0 + mum1/(8.0*x) + mum1*mum9/(128.0 * x*x))",
	BesselOpValXX:  "val=pre*(1.0 + mum1/(8.0*x) + mum1*mum9/(128.0*x * x))",
	BesselOpValD2:  "val=pre*(1.0 + mum1/(8.0*x) + mum1*mum9 / (128.0*x*x))",
	BesselOpValA2:  "val=pre*(1.0 + mum1/(8.0*x) + mum1*mum9/(128.0*x*x)) (second +)",
	BesselOpValPre: "val=pre * (1.0 + mum1/(8.0*x) + mum1*mum9/(128.0*x*x))",
	BesselOpErrEps: "err=2.0 * EPSILON*fabs(val) + pre*fabs(0.1*r*r*r)",
	BesselOpErrVal: "err=2.0*EPSILON * fabs(val) + pre*fabs(0.1*r*r*r)",
	BesselOpErrR1:  "err=2.0*EPSILON*fabs(val) + pre*fabs(0.1 * r*r*r)",
	BesselOpErrR2:  "err=2.0*EPSILON*fabs(val) + pre*fabs(0.1*r * r*r)",
	BesselOpErrR3:  "err=2.0*EPSILON*fabs(val) + pre*fabs(0.1*r*r * r)",
	BesselOpErrPre: "err=2.0*EPSILON*fabs(val) + pre * fabs(0.1*r*r*r)",
	BesselOpErrAdd: "err=2.0*EPSILON*fabs(val) + pre*fabs(0.1*r*r*r) (the +)",
}

// BesselOpLabel returns the Table 4 row label for an operation site.
func BesselOpLabel(site int) string {
	if site >= 0 && site < BesselOpCount {
		return besselOpLabels[site]
	}
	return "?"
}

// BesselProgram returns the instrumented Bessel port. Inputs: (nu, x).
func BesselProgram() *rt.Program {
	ops := make([]rt.OpInfo, BesselOpCount)
	for i := range ops {
		ops[i] = rt.OpInfo{ID: i, Label: besselOpLabels[i]}
	}
	return &rt.Program{
		Name: "gsl_sf_bessel_Knu_scaled_asympx_e",
		Dim:  2,
		Ops:  ops,
		Run: func(ctx *rt.Ctx, in []float64) {
			var res Result
			besselKnuScaledAsympxImpl(ctx, in[0], in[1], &res)
		},
	}
}

// BesselKnuScaledAsympx evaluates the port concretely, mirroring
// gsl_sf_bessel_Knu_scaled_asympx_e(nu, x, &result).
func BesselKnuScaledAsympx(nu, x float64) (Result, Status) {
	var res Result
	st := besselKnuScaledAsympxImpl(rt.NewCtx(rt.NopMonitor{}), nu, x, &res)
	return res, st
}

// besselKnuScaledAsympxImpl is the paper's Fig. 5 function, operation
// for operation. x >= 0 is assumed by the asymptotic form (as in GSL,
// no domain check is performed — which is exactly why overflow inputs
// slip through with GSL_SUCCESS).
func besselKnuScaledAsympxImpl(ctx *rt.Ctx, nu, x float64, result *Result) Status {
	mu := ctx.Op(BesselOpMu2, ctx.Op(BesselOpMu1, 4.0*nu)*nu)
	mum1 := ctx.Op(BesselOpMum1, mu-1.0)
	mum9 := ctx.Op(BesselOpMum9, mu-9.0)
	pre := math.Sqrt(ctx.Op(BesselOpPreDiv, math.Pi/ctx.Op(BesselOpPreMul, 2.0*x)))
	r := ctx.Op(BesselOpR, nu/x)

	result.Val = ctx.Op(BesselOpValPre, pre*
		ctx.Op(BesselOpValA2,
			ctx.Op(BesselOpValA1, 1.0+ctx.Op(BesselOpValD1, mum1/ctx.Op(BesselOpVal8x, 8.0*x)))+
				ctx.Op(BesselOpValD2,
					ctx.Op(BesselOpValMM, mum1*mum9)/
						ctx.Op(BesselOpValXX, ctx.Op(BesselOpVal128, 128.0*x)*x))))

	result.Err = ctx.Op(BesselOpErrAdd,
		ctx.Op(BesselOpErrVal, ctx.Op(BesselOpErrEps, 2.0*DblEpsilon)*math.Abs(result.Val))+
			ctx.Op(BesselOpErrPre, pre*math.Abs(
				ctx.Op(BesselOpErrR3, ctx.Op(BesselOpErrR2, ctx.Op(BesselOpErrR1, 0.1*r)*r)*r))))

	return Success
}
