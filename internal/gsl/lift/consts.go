package lift

// GSL machine constants (gsl_machine.h) and the Cody–Waite / Chebyshev
// constants of the trig port, as untyped constants so every use folds
// to the same float64 the native build computes.
const (
	dblEpsilon      = 2.2204460492503131e-16
	root4DblEpsilon = 1.2207031250000000e-04
	logDblMin       = -7.0839641853226408e+02

	cosP1 = 7.85398125648498535156e-01
	cosP2 = 3.77489470793079817668e-08
	cosP3 = 2.69515142907905952645e-15

	cosC0 = 0.1653918848
	cosC1 = -8.48478e-04
	cosC2 = -2.100551e-04
	cosC3 = 1.17975e-06
	cosC4 = 1.47468e-07

	sinC0 = -0.3295193064
	sinC1 = 2.537180e-03
	sinC2 = 6.26038e-04
	sinC3 = -4.71857e-06
	sinC4 = -5.89821e-07

	airyBug1X = -1.8427611519777440
)
