package lift

import "math"

// gsl_sf_bessel_Knu_scaled_asympx_e (the paper's Fig. 5 function),
// operation for operation. x >= 0 is assumed by the asymptotic form;
// as in GSL there is no domain check, which is exactly why overflow
// inputs slip through with GSL_SUCCESS.

func besselKnuScaledAsympxVal(nu, x float64) float64 {
	mu := (4.0 * nu) * nu
	mum1 := mu - 1.0
	mum9 := mu - 9.0
	pre := math.Sqrt(math.Pi / (2.0 * x))
	return pre * ((1.0 + mum1/(8.0*x)) + (mum1*mum9)/((128.0*x)*x))
}

func besselKnuScaledAsympxErr(nu, x float64) float64 {
	mu := (4.0 * nu) * nu
	mum1 := mu - 1.0
	mum9 := mu - 9.0
	pre := math.Sqrt(math.Pi / (2.0 * x))
	r := nu / x
	v := pre * ((1.0 + mum1/(8.0*x)) + (mum1*mum9)/((128.0*x)*x))
	return (2.0*dblEpsilon)*math.Abs(v) + pre*math.Abs(((0.1*r)*r)*r)
}
