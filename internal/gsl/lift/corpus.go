// Package lift is the lifted GSL corpus: the airy, bessel, cheb,
// hyperg, and trig ports of internal/gsl rewritten in the numeric Go
// subset internal/gofront understands. Each source file in this package
// is compiled twice from the same bytes — natively, into the functions
// below, and through the Go frontend into ir.Module — which is what
// makes the differential oracle exact: any divergence between the
// native result and the VM result is a frontend bug, not a porting
// artifact.
//
// Everything here stays inside the subset: float64 parameters and
// results, if/for, intra-unit calls, math.*. GSL's integer bookkeeping
// (octants, loop counters, status codes) is rephrased in exact
// integer-valued float64 arithmetic.
package lift

import (
	"embed"
	"sort"
	"strings"
)

// The corpus source files, embedded so the exact bytes the native build
// compiled are also what the frontend lifts.
//
//go:embed consts.go cheb.go bessel.go trig.go hyperg.go airy.go
var srcFS embed.FS

// corpusFiles lists the embedded files in a fixed order, so
// CombinedSource is deterministic (the pipeline content-addresses it by
// sha256).
var corpusFiles = []string{
	"consts.go", "cheb.go", "bessel.go", "trig.go", "hyperg.go", "airy.go",
}

// CombinedSource returns the whole corpus as one self-contained Go
// source file: one package clause, one math import, then every
// declaration. This is the program registered with the pipeline; the
// intra-unit calls between files (airy → cheb, trig) resolve within it.
func CombinedSource() string {
	var sb strings.Builder
	sb.WriteString("package lift\n\nimport \"math\"\n")
	for _, name := range corpusFiles {
		data, err := srcFS.ReadFile(name)
		if err != nil {
			panic("lift: embedded corpus file missing: " + name)
		}
		sb.WriteString("\n")
		sb.WriteString(stripHeader(string(data)))
	}
	return sb.String()
}

// stripHeader drops the per-file package clause and math import, which
// CombinedSource re-emits once at the top.
func stripHeader(src string) string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "package lift" || t == `import "math"` {
			continue
		}
		out = append(out, line)
	}
	return strings.TrimLeft(strings.Join(out, "\n"), "\n")
}

// Sources returns each corpus file's source text by name.
func Sources() map[string]string {
	m := make(map[string]string, len(corpusFiles))
	for _, name := range corpusFiles {
		data, err := srcFS.ReadFile(name)
		if err != nil {
			panic("lift: embedded corpus file missing: " + name)
		}
		m[name] = string(data)
	}
	return m
}

// Fn is a natively compiled corpus function: the oracle side of the
// differential contract.
type Fn struct {
	Arity int
	Call  func(args []float64) float64
}

// funcs is the native registry. Every function declared in the corpus
// files appears here; TestCorpusRegistryComplete enforces the
// correspondence against the lifted module.
var funcs = map[string]Fn{
	"chebVal1": {5, func(a []float64) float64 { return chebVal1(a[0], a[1], a[2], a[3], a[4]) }},
	"chebErr1": {5, func(a []float64) float64 { return chebErr1(a[0], a[1], a[2], a[3], a[4]) }},
	"chebVal2": {6, func(a []float64) float64 { return chebVal2(a[0], a[1], a[2], a[3], a[4], a[5]) }},
	"chebErr2": {6, func(a []float64) float64 { return chebErr2(a[0], a[1], a[2], a[3], a[4], a[5]) }},
	"chebVal4": {8, func(a []float64) float64 {
		return chebVal4(a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7])
	}},
	"chebErr4": {8, func(a []float64) float64 {
		return chebErr4(a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7])
	}},

	"besselKnuScaledAsympxVal": {2, func(a []float64) float64 { return besselKnuScaledAsympxVal(a[0], a[1]) }},
	"besselKnuScaledAsympxErr": {2, func(a []float64) float64 { return besselKnuScaledAsympxErr(a[0], a[1]) }},

	"gslCosVal":    {1, func(a []float64) float64 { return gslCosVal(a[0]) }},
	"gslCosErr":    {1, func(a []float64) float64 { return gslCosErr(a[0]) }},
	"gslCosErrVal": {2, func(a []float64) float64 { return gslCosErrVal(a[0], a[1]) }},
	"gslCosErrErr": {2, func(a []float64) float64 { return gslCosErrErr(a[0], a[1]) }},

	"isNonPosIntF":    {1, func(a []float64) float64 { return isNonPosIntF(a[0]) }},
	"hypergUVal":      {3, func(a []float64) float64 { return hypergUVal(a[0], a[1], a[2]) }},
	"hypergUErr":      {3, func(a []float64) float64 { return hypergUErr(a[0], a[1], a[2]) }},
	"hyperg2F0Val":    {3, func(a []float64) float64 { return hyperg2F0Val(a[0], a[1], a[2]) }},
	"hyperg2F0Err":    {3, func(a []float64) float64 { return hyperg2F0Err(a[0], a[1], a[2]) }},
	"hyperg2F0Status": {3, func(a []float64) float64 { return hyperg2F0Status(a[0], a[1], a[2]) }},

	"am22YOfF":             {1, func(a []float64) float64 { return am22YOfF(a[0]) }},
	"airyModPhaseModVal":   {1, func(a []float64) float64 { return airyModPhaseModVal(a[0]) }},
	"airyModPhaseModErr":   {1, func(a []float64) float64 { return airyModPhaseModErr(a[0]) }},
	"airyModPhasePhaseVal": {1, func(a []float64) float64 { return airyModPhasePhaseVal(a[0]) }},
	"airyModPhasePhaseErr": {1, func(a []float64) float64 { return airyModPhasePhaseErr(a[0]) }},
	"airyModPhaseStatus":   {1, func(a []float64) float64 { return airyModPhaseStatus(a[0]) }},
	"airyMidVal":           {1, func(a []float64) float64 { return airyMidVal(a[0]) }},
	"airyAiVal":            {1, func(a []float64) float64 { return airyAiVal(a[0]) }},
	"airyAiErr":            {1, func(a []float64) float64 { return airyAiErr(a[0]) }},
	"airyAiStatus":         {1, func(a []float64) float64 { return airyAiStatus(a[0]) }},
}

// Funcs returns the native registry.
func Funcs() map[string]Fn { return funcs }

// FuncNames returns the corpus function names, sorted.
func FuncNames() []string {
	names := make([]string, 0, len(funcs))
	for name := range funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Bug1Input is the paper's airy Bug-1 trigger: the input at which the
// am22 Chebyshev sum vanishes and airyModPhaseModErr divides by zero.
const Bug1Input = airyBug1X
