package lift

import "math"

// Clenshaw evaluation of Chebyshev series on [a, b], operation for
// operation the recurrence of GSL's cheb_eval_mode_e — including the
// exact zero-seeded first iterations, so the evaluated values match the
// internal/gsl ports bit for bit. The subset has no slices, so each
// series order gets its own unrolled evaluator taking the coefficients
// as parameters.

func chebVal1(c0, c1, a, b, x float64) float64 {
	y := ((2.0*x - a) - b) / (b - a)
	y2 := 2.0 * y
	d := 0.0
	dd := 0.0
	temp := d
	d = (y2*d - dd) + c1
	dd = temp
	return (y*d - dd) + 0.5*c0
}

func chebErr1(c0, c1, a, b, x float64) float64 {
	v := chebVal1(c0, c1, a, b, x)
	return dblEpsilon*math.Abs(v) + math.Abs(c1)
}

func chebVal2(c0, c1, c2, a, b, x float64) float64 {
	y := ((2.0*x - a) - b) / (b - a)
	y2 := 2.0 * y
	d := 0.0
	dd := 0.0
	temp := d
	d = (y2*d - dd) + c2
	dd = temp
	temp = d
	d = (y2*d - dd) + c1
	dd = temp
	return (y*d - dd) + 0.5*c0
}

func chebErr2(c0, c1, c2, a, b, x float64) float64 {
	v := chebVal2(c0, c1, c2, a, b, x)
	return dblEpsilon*math.Abs(v) + math.Abs(c2)
}

func chebVal4(c0, c1, c2, c3, c4, a, b, x float64) float64 {
	y := ((2.0*x - a) - b) / (b - a)
	y2 := 2.0 * y
	d := 0.0
	dd := 0.0
	temp := d
	d = (y2*d - dd) + c4
	dd = temp
	temp = d
	d = (y2*d - dd) + c3
	dd = temp
	temp = d
	d = (y2*d - dd) + c2
	dd = temp
	temp = d
	d = (y2*d - dd) + c1
	dd = temp
	return (y*d - dd) + 0.5*c0
}

func chebErr4(c0, c1, c2, c3, c4, a, b, x float64) float64 {
	v := chebVal4(c0, c1, c2, c3, c4, a, b, x)
	return dblEpsilon*math.Abs(v) + math.Abs(c4)
}
