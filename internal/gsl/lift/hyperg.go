package lift

import "math"

// gsl_sf_hyperg_2F0_e and its substituted confluent hypergeometric
// U(a,b,z) (see internal/gsl/hyperg.go): the divergent asymptotic
// expansion truncated at its smallest term. Faithful to GSL in the
// respects the paper's Table 5 experiment relies on: Success is
// reported even when the Pochhammer products overflow to ±Inf.

// isNonPosIntF reports (as 1/0) whether v is 0, -1, -2, … — a
// terminating Pochhammer parameter.
func isNonPosIntF(v float64) float64 {
	if v <= 0.0 && v == math.Floor(v) && math.Abs(v) <= math.MaxFloat64 {
		return 1.0
	}
	return 0.0
}

func hypergUVal(a, b, z float64) float64 {
	if a != a || b != b || z != z {
		return (a + b) + z // NaN in, NaN out
	}
	pre := math.Pow(z, -a)
	sum := 1.0
	term := 1.0
	minTerm := math.Abs(term)
	terminating := isNonPosIntF(a) == 1.0 || isNonPosIntF((a-b)+1.0) == 1.0
	for n := 0.0; n < 4096.0; n += 1.0 {
		term *= (a + n) * ((a - b) + 1.0 + n) / ((n + 1.0) * -z)
		if term == 0.0 {
			break
		}
		at := math.Abs(term)
		if !terminating && at > minTerm && n > 0.0 {
			break
		}
		minTerm = at
		sum += term
		if math.Abs(sum) > math.MaxFloat64 || sum != sum {
			break
		}
	}
	return pre * sum
}

func hypergUErr(a, b, z float64) float64 {
	if a != a || b != b || z != z {
		return (a + b) + z
	}
	pre := math.Pow(z, -a)
	sum := 1.0
	term := 1.0
	minTerm := math.Abs(term)
	errEst := 0.0
	terminating := isNonPosIntF(a) == 1.0 || isNonPosIntF((a-b)+1.0) == 1.0
	for n := 0.0; n < 4096.0; n += 1.0 {
		term *= (a + n) * ((a - b) + 1.0 + n) / ((n + 1.0) * -z)
		if term == 0.0 {
			errEst = 0.0
			break
		}
		at := math.Abs(term)
		if !terminating && at > minTerm && n > 0.0 {
			errEst = at
			break
		}
		minTerm = at
		sum += term
		errEst = at
		if math.Abs(sum) > math.MaxFloat64 || sum != sum {
			break
		}
	}
	val := pre * sum
	return math.Abs(pre)*errEst + dblEpsilon*math.Abs(val)
}

func hyperg2F0Val(a, b, x float64) float64 {
	if x < 0.0 {
		pre := math.Pow(-1.0/x, a)
		bU := (1.0 + a) - b
		return pre * hypergUVal(a, bU, -1.0/x)
	}
	if x == 0.0 {
		return 1.0
	}
	return 0.0
}

func hyperg2F0Err(a, b, x float64) float64 {
	if x < 0.0 {
		pre := math.Pow(-1.0/x, a)
		bU := (1.0 + a) - b
		uVal := hypergUVal(a, bU, -1.0/x)
		uErr := hypergUErr(a, bU, -1.0/x)
		val := pre * uVal
		return dblEpsilon*math.Abs(val) + pre*uErr
	}
	return 0.0
}

// hyperg2F0Status returns the GSL status code as a float64: like GSL,
// the x < 0 branch reports U's status (Success unless the arguments are
// NaN), never inspecting the possibly overflowed product — the Table 5
// inconsistency.
func hyperg2F0Status(a, b, x float64) float64 {
	if x < 0.0 {
		if a != a || b != b {
			return 1.0 // GSL_EDOM from the U evaluation's NaN check
		}
		return 0.0
	}
	if x == 0.0 {
		return 0.0
	}
	return 1.0 // GSL_EDOM: the asymptotic series is undefined for x > 0
}
