package lift

import "math"

// gsl_sf_airy_Ai_e and airy_mod_phase (see internal/gsl/airy.go). The
// am22 modulus series is the one engineered to vanish exactly at the
// paper's Bug-1 trigger input airyBug1X, so the division by zero in
// airy_mod_phase's error propagation — err/val of a vanished Chebyshev
// sum — fires at the same input here, through the lifted pipeline.

// am22YOfF replays the exact float64 dataflow from an input x in
// [-2, -1] to the Clenshaw argument y used by the am22 evaluation
// (a = -1, b = 1).
func am22YOfF(x float64) float64 {
	z := (16.0/((x*x)*x) + 9.0) / 7.0
	return (2.0*z - (-1.0) - 1.0) / 2.0
}

func airyModPhaseModVal(x float64) float64 {
	if x < -2.0 {
		z := 16.0/((x*x)*x) + 1.0
		m := 0.3125 + chebVal2(0.0116, 0.0008, 0.0001, -1.0, 1.0, z)
		return math.Sqrt(m / math.Sqrt(-x))
	}
	if x <= -1.0 {
		z := (16.0/((x*x)*x) + 9.0) / 7.0
		m := 0.3125 + chebVal1(-am22YOfF(airyBug1X)/64.0, 0.0078125, -1.0, 1.0, z)
		return math.Sqrt(m / math.Sqrt(-x))
	}
	return 0.0
}

func airyModPhaseModErr(x float64) float64 {
	if x < -2.0 {
		z := 16.0/((x*x)*x) + 1.0
		mVal := chebVal2(0.0116, 0.0008, 0.0001, -1.0, 1.0, z)
		mErr := chebErr2(0.0116, 0.0008, 0.0001, -1.0, 1.0, z)
		m := 0.3125 + mVal
		modVal := math.Sqrt(m / math.Sqrt(-x))
		return math.Abs(modVal) * (dblEpsilon + math.Abs(mErr/mVal))
	}
	if x <= -1.0 {
		z := (16.0/((x*x)*x) + 9.0) / 7.0
		c0 := -am22YOfF(airyBug1X) / 64.0
		mVal := chebVal1(c0, 0.0078125, -1.0, 1.0, z)
		mErr := chebErr1(c0, 0.0078125, -1.0, 1.0, z)
		m := 0.3125 + mVal
		modVal := math.Sqrt(m / math.Sqrt(-x))
		// Bug 1: mErr/mVal divides the raw Chebyshev sum, which
		// vanishes at airyBug1X — the quotient is +Inf while the status
		// stays GSL_SUCCESS.
		return math.Abs(modVal) * (dblEpsilon + math.Abs(mErr/mVal))
	}
	return 0.0
}

func airyModPhasePhaseVal(x float64) float64 {
	if x < -2.0 {
		z := 16.0/((x*x)*x) + 1.0
		p := -0.625 + chebVal2(-0.0834, -0.0008, 0.0001, -1.0, 1.0, z)
		return math.Pi/4.0 - (x*math.Sqrt(-x))*p
	}
	if x <= -1.0 {
		z := (16.0/((x*x)*x) + 9.0) / 7.0
		p := -0.625 + chebVal2(-0.0816, -0.0012, 0.0002, -1.0, 1.0, z)
		return math.Pi/4.0 - (x*math.Sqrt(-x))*p
	}
	return 0.0
}

func airyModPhasePhaseErr(x float64) float64 {
	if x < -2.0 {
		z := 16.0/((x*x)*x) + 1.0
		pVal := chebVal2(-0.0834, -0.0008, 0.0001, -1.0, 1.0, z)
		pErr := chebErr2(-0.0834, -0.0008, 0.0001, -1.0, 1.0, z)
		p := -0.625 + pVal
		phVal := math.Pi/4.0 - (x*math.Sqrt(-x))*p
		return math.Abs(phVal) * (dblEpsilon + math.Abs(pErr/pVal))
	}
	if x <= -1.0 {
		z := (16.0/((x*x)*x) + 9.0) / 7.0
		pVal := chebVal2(-0.0816, -0.0012, 0.0002, -1.0, 1.0, z)
		pErr := chebErr2(-0.0816, -0.0012, 0.0002, -1.0, 1.0, z)
		p := -0.625 + pVal
		phVal := math.Pi/4.0 - (x*math.Sqrt(-x))*p
		return math.Abs(phVal) * (dblEpsilon + math.Abs(pErr/pVal))
	}
	return 0.0
}

func airyModPhaseStatus(x float64) float64 {
	if x <= -1.0 {
		return 0.0
	}
	return 1.0 // GSL_EDOM
}

// airyMidVal computes Ai(x) on [-1, 1] by the Maclaurin pair
// Ai = c1·f - c2·g (Abramowitz & Stegun 10.4.2-3).
func airyMidVal(x float64) float64 {
	f := 1.0
	g := x
	tf := 1.0
	tg := x
	x3 := x * x * x
	for k := 1.0; k <= 12.0; k += 1.0 {
		tf *= x3 / ((3.0*k - 1.0) * (3.0 * k))
		tg *= x3 / ((3.0 * k) * (3.0*k + 1.0))
		f += tf
		g += tg
	}
	return 0.35502805388781724*f - 0.25881940379280680*g
}

func airyAiVal(x float64) float64 {
	if x < -1.0 {
		modVal := airyModPhaseModVal(x)
		thetaVal := airyModPhasePhaseVal(x)
		thetaErr := airyModPhasePhaseErr(x)
		return modVal * gslCosErrVal(thetaVal, thetaErr)
	}
	if x <= 1.0 {
		return airyMidVal(x)
	}
	sqx := math.Sqrt(x)
	s := -((2.0 / 3.0) * (x * sqx))
	if s < logDblMin {
		return 0.0
	}
	pre := 0.5 / (math.Sqrt(math.Pi) * math.Sqrt(sqx))
	return pre * math.Exp(s)
}

func airyAiErr(x float64) float64 {
	if x < -1.0 {
		modVal := airyModPhaseModVal(x)
		modErr := airyModPhaseModErr(x)
		thetaVal := airyModPhasePhaseVal(x)
		thetaErr := airyModPhasePhaseErr(x)
		cosVal := gslCosErrVal(thetaVal, thetaErr)
		cosErr := gslCosErrErr(thetaVal, thetaErr)
		err := math.Abs(modVal*cosErr) + math.Abs(cosVal*modErr)
		val := modVal * cosVal
		return err + dblEpsilon*math.Abs(val)
	}
	if x <= 1.0 {
		z := (x * x) * x
		c0Err := chebErr2(-0.0400, 0.0100, -0.0010, -1.0, 1.0, z)
		return dblEpsilon*math.Abs(airyMidVal(x)) + c0Err
	}
	sqx := math.Sqrt(x)
	s := -((2.0 / 3.0) * (x * sqx))
	if s < logDblMin {
		return dblEpsilon
	}
	pre := 0.5 / (math.Sqrt(math.Pi) * math.Sqrt(sqx))
	val := pre * math.Exp(s)
	return dblEpsilon * math.Abs(val) * math.Abs(s)
}

func airyAiStatus(x float64) float64 {
	if x <= 1.0 {
		return 0.0
	}
	sqx := math.Sqrt(x)
	s := -((2.0 / 3.0) * (x * sqx))
	if s < logDblMin {
		return 15.0 // GSL_EUNDRFLW
	}
	return 0.0
}
