package lift_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/fplgen"
	"repro/internal/gofront"
	"repro/internal/gsl/lift"
	"repro/internal/interp"
	"repro/internal/rt"
)

// TestCorpusLifts pins the tentpole acceptance bar: the combined corpus
// compiles through the Go frontend, every natively registered function
// is present in the lifted module with the right arity, and the corpus
// is at least 25 functions strong.
func TestCorpusLifts(t *testing.T) {
	mod, err := gofront.Compile("lift.go", lift.CombinedSource())
	if err != nil {
		t.Fatalf("corpus does not lift: %v", err)
	}
	funcs := lift.Funcs()
	if len(funcs) < 25 {
		t.Fatalf("corpus has %d functions, want >= 25", len(funcs))
	}
	for name, fn := range funcs {
		lf := mod.Func(name)
		if lf == nil {
			t.Errorf("function %s missing from lifted module", name)
			continue
		}
		if lf.NParams != fn.Arity {
			t.Errorf("function %s: lifted arity %d, native arity %d", name, lf.NParams, fn.Arity)
		}
	}
	// The correspondence must hold in both directions: a corpus function
	// that never made it into the native registry would silently shrink
	// the oracle's coverage.
	for _, name := range mod.Order {
		if _, ok := funcs[name]; !ok {
			t.Errorf("lifted function %s missing from the native registry", name)
		}
	}
}

// sameBits is the oracle's equality: bit-identical, except that any
// NaN matches any NaN. NaN payloads are not pinned because x86 NaN
// propagation takes the first source operand's payload and the
// compiler may commute float add/mul operands, so the sign bit of a
// propagated NaN differs between the natively scheduled expression
// and the VM's op-at-a-time evaluation. Every non-NaN result — incl.
// ±Inf, ±0, and subnormals — must match exactly.
func sameBits(a, b uint64) bool {
	if a == b {
		return true
	}
	return math.IsNaN(math.Float64frombits(a)) && math.IsNaN(math.Float64frombits(b))
}

// TestDifferentialOracle is the native-vs-lifted differential contract:
// every corpus function, executed natively (the real compiled Go code),
// through the tree-walking engine, through the VM, and through the
// batch VM at lane widths 1, 4, and 16, must produce bit-identical
// results (see sameBits) over the shared input battery.
func TestDifferentialOracle(t *testing.T) {
	src := lift.CombinedSource()
	mod, err := gofront.Compile("lift.go", src)
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	cm, err := compile.Compile(mod)
	if err != nil {
		t.Fatalf("flat-compile: %v", err)
	}

	rng := rand.New(rand.NewSource(41))
	for _, name := range lift.FuncNames() {
		fn := lift.Funcs()[name]
		inputs := fplgen.Inputs(rng, fn.Arity)

		// Native reference.
		want := make([]uint64, len(inputs))
		for i, x := range inputs {
			want[i] = math.Float64bits(fn.Call(x))
		}

		// Tree walker and VM.
		for _, eng := range []interp.Engine{interp.EngineTree, interp.EngineVM} {
			it := interp.New(mod)
			it.Engine = eng
			for i, x := range inputs {
				got, err := it.Run(name, x)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, eng, err)
				}
				if !sameBits(math.Float64bits(got), want[i]) {
					t.Errorf("%s(%v) engine %s: got %x (%g), native %x (%g)",
						name, x, eng, math.Float64bits(got), got,
						want[i], math.Float64frombits(want[i]))
				}
			}
		}

		// Batch VM at the contract's lane widths.
		cfn := cm.Func(name)
		for _, width := range []int{1, 4, 16} {
			bvm := cm.NewBatchMachine(width)
			out := make([]float64, width)
			for lo := 0; lo < len(inputs); lo += width {
				hi := lo + width
				if hi > len(inputs) {
					hi = len(inputs)
				}
				xs := inputs[lo:hi]
				mons := make([]rt.Monitor, len(xs))
				for i := range mons {
					mons[i] = rt.NopMonitor{}
				}
				bvm.Run(mons, cfn, xs, out[:len(xs)])
				for i := range xs {
					if !sameBits(math.Float64bits(out[i]), want[lo+i]) {
						t.Errorf("%s(%v) batch width %d lane %d: got %x, native %x",
							name, xs[i], width, i, math.Float64bits(out[i]), want[lo+i])
					}
				}
			}
		}
	}
}

// TestBug1Reproduces cross-checks the curated airy finding over the
// lifted corpus: at the paper's trigger input the am22 Chebyshev sum
// vanishes and the error propagation divides by zero, so
// airyModPhaseModErr is +Inf — natively and through the VM.
func TestBug1Reproduces(t *testing.T) {
	x := []float64{lift.Bug1Input}
	native := lift.Funcs()["airyModPhaseModErr"].Call(x)
	if !math.IsInf(native, 1) {
		t.Fatalf("native airyModPhaseModErr(%v) = %g, want +Inf", lift.Bug1Input, native)
	}
	mod, err := gofront.Compile("lift.go", lift.CombinedSource())
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	got, err := interp.New(mod).Run("airyModPhaseModErr", x)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("lifted airyModPhaseModErr(%v) = %g, want +Inf", lift.Bug1Input, got)
	}
}

// TestCombinedSourceDeterministic: the pipeline content-addresses the
// corpus by sha256, so the combiner must be byte-stable.
func TestCombinedSourceDeterministic(t *testing.T) {
	if lift.CombinedSource() != lift.CombinedSource() {
		t.Fatal("CombinedSource is not deterministic")
	}
}
