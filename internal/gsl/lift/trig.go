package lift

import "math"

// gsl_sf_cos_e and gsl_sf_cos_err_e (trig.c). The Cody–Waite argument
// reduction is faithful to GSL including its failure mode: for |x|
// large enough that y cannot be resolved by the P1/P2/P3 triple, z
// explodes, the series argument t leaves [-1,1], and the Chebyshev
// evaluation diverges (the paper's Bug 2 mechanism).
//
// GSL's integer octant bookkeeping is rephrased in exact float64
// arithmetic: ldexp(y,±3) is a power-of-two scaling (y/8 and 8·floor
// exact), and the octant is a small integer-valued float, so the
// rewritten reduction computes bit-identical values.

func gslCosVal(x float64) float64 {
	absX := math.Abs(x)
	if absX < root4DblEpsilon {
		x2 := x * x
		return 1.0 - 0.5*x2
	}
	sgn := 1.0
	y := math.Floor(absX / (0.25 * math.Pi))
	oct := y - 8.0*math.Floor(y/8.0)
	if oct-2.0*math.Floor(oct/2.0) == 1.0 {
		oct += 1.0
		if oct == 8.0 {
			oct = 0.0
		}
		y += 1.0
	}
	if oct > 3.0 {
		oct -= 4.0
		sgn = -sgn
	}
	if oct > 1.0 {
		sgn = -sgn
	}
	z := ((absX - y*cosP1) - y*cosP2) - y*cosP3
	t := 8.0*math.Abs(z)/math.Pi - 1.0
	zz := z * z
	val := 0.0
	if oct == 0.0 {
		cs := chebVal4(cosC0, cosC1, cosC2, cosC3, cosC4, -1.0, 1.0, t)
		val = 1.0 - 0.5*zz*(1.0-zz*cs)
	} else {
		cs := chebVal4(sinC0, sinC1, sinC2, sinC3, sinC4, -1.0, 1.0, t)
		val = z * (1.0 + zz*cs)
	}
	val *= sgn
	return val
}

func gslCosErr(x float64) float64 {
	absX := math.Abs(x)
	if absX < root4DblEpsilon {
		x2 := x * x
		return math.Abs(x2 * x2 / 12.0)
	}
	y := math.Floor(absX / (0.25 * math.Pi))
	oct := y - 8.0*math.Floor(y/8.0)
	if oct-2.0*math.Floor(oct/2.0) == 1.0 {
		oct += 1.0
		if oct == 8.0 {
			oct = 0.0
		}
		y += 1.0
	}
	if oct > 3.0 {
		oct -= 4.0
	}
	z := ((absX - y*cosP1) - y*cosP2) - y*cosP3
	t := 8.0*math.Abs(z)/math.Pi - 1.0
	csErr := 0.0
	if oct == 0.0 {
		csErr = chebErr4(cosC0, cosC1, cosC2, cosC3, cosC4, -1.0, 1.0, t)
	} else {
		csErr = chebErr4(sinC0, sinC1, sinC2, sinC3, sinC4, -1.0, 1.0, t)
	}
	err := math.Abs(z)*dblEpsilon*math.Abs(y) + csErr
	err += dblEpsilon * math.Abs(gslCosVal(x))
	return err
}

func gslCosErrVal(x, dx float64) float64 {
	_ = dx // the argument uncertainty feeds the error, not the value
	return gslCosVal(x)
}

func gslCosErrErr(x, dx float64) float64 {
	err := gslCosErr(x)
	err += math.Abs(math.Sin(x)) * dx
	err += dblEpsilon * math.Abs(gslCosVal(x))
	return err
}
