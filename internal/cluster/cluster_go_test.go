package cluster_test

// Coordinator e2e over Go-frontend jobs: a mixed FPL+Go batch fanned
// over real workers must be byte-identical to a single-node run, with
// the coordinator forwarding each job's language through its lazy
// program registration.

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/pipeline"
)

// goTestProgram generates the i-th distinct Go source; different
// constants give different content addresses, so the batch spreads over
// the ring just like the FPL one.
func goTestProgram(i int) string {
	return fmt.Sprintf(
		"package prog\n\nimport \"math\"\n\nfunc f(x float64, y float64) float64 {\n\tif x < %d.0 {\n\t\treturn math.Hypot(x, y)\n\t}\n\treturn x * %d.5\n}\n",
		i+1, i+2)
}

// testGoBatch interleaves FPL and Go jobs over n program pairs with
// specsPer analyses each.
func testGoBatch(n, specsPer, evals int) []pipeline.Job {
	var jobs []pipeline.Job
	analyses := []string{"coverage", "overflow", "nan"}
	for p := 0; p < n; p++ {
		for s := 0; s < specsPer; s++ {
			spec := analysis.Spec{
				Analysis: analyses[s%len(analyses)],
				Seed:     int64(p*100 + s + 1),
				Evals:    evals,
				Workers:  1,
			}
			switch spec.Analysis {
			case "coverage":
				spec.Stall = 2
			case "overflow", "nan":
				spec.Rounds = 4
				spec.Retries = 1
			}
			if p%2 == 0 {
				jobs = append(jobs, pipeline.Job{Source: goTestProgram(p), Lang: "go", Func: "f", Spec: spec})
			} else {
				jobs = append(jobs, pipeline.Job{Source: testProgram(p), Func: "f", Spec: spec})
			}
		}
	}
	return jobs
}

// TestCoordinatorGoByteIdentity fans a mixed FPL+Go batch over two
// workers and demands results byte-identical to the single-node run:
// the Go frontend's language annotation survives the coordinator's
// registration round-trip.
func TestCoordinatorGoByteIdentity(t *testing.T) {
	jobs := testGoBatch(6, 3, 60)
	want := goldenRun(t, jobs)

	ws := startWorkers(t, 2, 0)
	eng, coord := coordEngine(t, ws, cluster.Config{Seed: 11})
	got := followAll(t, eng, jobs, pipeline.JobCompleted)

	if len(got) != len(want) {
		t.Fatalf("cluster run returned %d results, single node %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d differs from the single-node run:\n%s\nvs\n%s", i, want[i], got[i])
		}
	}
	st := coord.Stats()
	if st.Dispatched != int64(len(jobs)) {
		t.Fatalf("dispatched %d, want %d", st.Dispatched, len(jobs))
	}
	// The Go sources were registered lazily on whichever workers their
	// hash routed to — with languages intact, or the jobs above would
	// have failed to compile as FPL.
	for _, w := range st.Workers {
		if w.Routed > 0 && w.Programs == 0 {
			t.Fatalf("worker %s routed %d jobs but registered no programs", w.Name, w.Routed)
		}
	}
	// Every worker's program store must agree with the language each
	// source was submitted under.
	wantLang := map[string]string{}
	for _, j := range jobs {
		lang := j.Lang
		if lang == "" {
			lang = "fpl"
		}
		wantLang[pipeline.SourceID(j.Source)] = lang
	}
	sawGo := false
	for _, w := range ws {
		for _, info := range w.srv.Programs.List() {
			if want, ok := wantLang[info.ID]; !ok || info.Lang != want {
				t.Fatalf("worker %s program %s registered with lang %q, want %q", w.name(), info.ID, info.Lang, want)
			}
			sawGo = sawGo || info.Lang == "go"
		}
	}
	if !sawGo {
		t.Fatal("no worker registered a Go program")
	}
}
