// Package cluster implements fpserve's coordinator mode: a consistent-
// hash router that fans /v1 job batches over a fleet of fpserve
// workers.
//
// Jobs route by the consistent hash of their program's content address
// (the sha256 that also keys the module cache), so every worker serves
// a stable slice of the program space and its cache stays hot — a
// cache hit costs ~1.8µs against a ~54µs compile. The hash ring uses
// virtual nodes for spread and bounded-load routing for balance: a
// worker already carrying more than its fair share of in-flight jobs
// is skipped in favor of the next node clockwise, so one hot program
// cannot serialize the fleet.
//
// The coordinator registers programs on a worker lazily at first
// routing (registration is an idempotent content-addressed PUT),
// health-checks the fleet with a /healthz probe loop under
// deterministic backoff, takes dead workers out of the ring, and
// requeues their unfinished jobs onto survivors. Results are
// content-deterministic and emitted in batch order, so the stitched
// sequence is byte-identical to a single-node run — including after a
// mid-batch worker death.
package cluster

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
)

// Ring defaults.
const (
	// DefaultVnodes is the number of virtual nodes per worker: enough
	// that each worker's arc of the key space is fragmented into many
	// interleaved slices, so removing one worker spreads its keys over
	// all survivors instead of dumping them on a single neighbor.
	DefaultVnodes = 64
	// DefaultLoadFactor caps a worker's in-flight share at this
	// multiple of the fleet average (consistent hashing with bounded
	// loads); keys landing on a worker at its cap spill clockwise.
	DefaultLoadFactor = 1.25
)

// vnode is one virtual point on the ring.
type vnode struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes, liveness, and
// bounded-load owner selection. Members keep their ring positions
// while dead — only their traffic detours — so a worker that rejoins
// gets its old key slice (and its still-warm module cache) back.
type Ring struct {
	mu     sync.RWMutex
	vnodes []vnode // sorted by hash
	alive  map[string]bool
	vcount int
	factor float64
}

// NewRing returns an empty ring. vnodesPerMember <= 0 selects
// DefaultVnodes; loadFactor <= 1 selects DefaultLoadFactor.
func NewRing(vnodesPerMember int, loadFactor float64) *Ring {
	if vnodesPerMember <= 0 {
		vnodesPerMember = DefaultVnodes
	}
	if loadFactor <= 1 {
		loadFactor = DefaultLoadFactor
	}
	return &Ring{alive: map[string]bool{}, vcount: vnodesPerMember, factor: loadFactor}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts member's virtual nodes (idempotently) and marks it
// alive.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.alive[member]; !known {
		for i := 0; i < r.vcount; i++ {
			r.vnodes = append(r.vnodes, vnode{
				hash:   hash64(fmt.Sprintf("%s#%d", member, i)),
				member: member,
			})
		}
		sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	}
	r.alive[member] = true
}

// SetAlive flips member's liveness without moving its virtual nodes.
// Unknown members are ignored.
func (r *Ring) SetAlive(member string, alive bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.alive[member]; known {
		r.alive[member] = alive
	}
}

// AliveCount reports how many members are currently alive.
func (r *Ring) AliveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, up := range r.alive {
		if up {
			n++
		}
	}
	return n
}

// Alive lists the live members, sorted.
func (r *Ring) Alive() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for m, up := range r.alive {
		if up {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// Owner returns the live member owning key. With load non-nil it
// applies the bounded-load rule: walking clockwise from the key's ring
// position, a member carrying at least ceil(factor · (total+1) /
// alive) of the fleet's load is skipped; if every live member is at
// its cap the key's natural owner takes it anyway (the cap balances,
// it must not deadlock). load reports one member's current assignment
// count; total is summed over live members under the same read lock,
// so a caller that mutates loads between calls sees a consistent cap.
// With load nil the choice is pure consistent hashing. The second
// result is false only when no member is alive.
func (r *Ring) Owner(key string, load func(member string) int) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	alive := 0
	for _, up := range r.alive {
		if up {
			alive++
		}
	}
	if alive == 0 || len(r.vnodes) == 0 {
		return "", false
	}
	cap := math.MaxInt
	if load != nil {
		total := 0
		for m, up := range r.alive {
			if up {
				total += load(m)
			}
		}
		cap = int(math.Ceil(r.factor * float64(total+1) / float64(alive)))
	}
	h := hash64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	fallback := ""
	seen := map[string]bool{}
	for k := 0; k < len(r.vnodes) && len(seen) < alive; k++ {
		vn := r.vnodes[(start+k)%len(r.vnodes)]
		if !r.alive[vn.member] || seen[vn.member] {
			continue
		}
		seen[vn.member] = true
		if fallback == "" {
			fallback = vn.member
		}
		if load == nil || load(vn.member) < cap {
			return vn.member, true
		}
	}
	return fallback, true
}
