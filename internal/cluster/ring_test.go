package cluster

import (
	"fmt"
	"testing"
)

func TestRingStableOwnership(t *testing.T) {
	r := NewRing(0, 0)
	members := []string{"a:1", "b:1", "c:1"}
	for _, m := range members {
		r.Add(m)
	}
	hits := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("sha256:%04d", i)
		o1, ok := r.Owner(key, nil)
		if !ok {
			t.Fatalf("no owner for %s", key)
		}
		o2, _ := r.Owner(key, nil)
		if o1 != o2 {
			t.Fatalf("owner of %s flapped: %s then %s", key, o1, o2)
		}
		hits[o1]++
	}
	for _, m := range members {
		if hits[m] == 0 {
			t.Fatalf("member %s owns none of 1000 keys: %v", m, hits)
		}
	}
}

func TestRingDeadDetourAndReturn(t *testing.T) {
	r := NewRing(0, 0)
	for _, m := range []string{"a:1", "b:1", "c:1"} {
		r.Add(m)
	}
	key := "sha256:feed"
	home, _ := r.Owner(key, nil)
	r.SetAlive(home, false)
	if n := r.AliveCount(); n != 2 {
		t.Fatalf("alive count %d after one death, want 2", n)
	}
	detour, ok := r.Owner(key, nil)
	if !ok || detour == home {
		t.Fatalf("key still routes to dead member %s (ok=%v)", detour, ok)
	}
	// Liveness restored: the key comes home — the rejoining worker gets
	// its warm cache slice back.
	r.SetAlive(home, true)
	if back, _ := r.Owner(key, nil); back != home {
		t.Fatalf("key routed to %s after %s rejoined", back, home)
	}

	for _, m := range []string{"a:1", "b:1", "c:1"} {
		r.SetAlive(m, false)
	}
	if _, ok := r.Owner(key, nil); ok {
		t.Fatal("owner reported for a fully dead ring")
	}
}

// TestRingBoundedLoad assigns many jobs of ONE hot key: without the
// load bound they would serialize on the key's home node; with it the
// spill keeps every member within the cap.
func TestRingBoundedLoad(t *testing.T) {
	r := NewRing(0, 0) // factor 1.25
	members := []string{"a:1", "b:1"}
	for _, m := range members {
		r.Add(m)
	}
	loads := map[string]int{}
	load := func(m string) int { return loads[m] }
	const jobs = 16
	for i := 0; i < jobs; i++ {
		o, ok := r.Owner("sha256:hot", load)
		if !ok {
			t.Fatal("no owner")
		}
		loads[o]++
	}
	if len(loads) < 2 {
		t.Fatalf("one hot key serialized on a single member: %v", loads)
	}
	// ceil(1.25·(total+1)/2) at the final assignment = ceil(1.25·16/2) = 10.
	for m, n := range loads {
		if n > 10 {
			t.Fatalf("member %s carries %d of %d jobs, past the bounded-load cap: %v", m, n, jobs, loads)
		}
	}
}

func TestReindexByteRewrite(t *testing.T) {
	raw := []byte(`{"index":17,"analysis":"coverage","duration":123}`)
	got := string(reindex(raw, 3))
	want := `{"index":3,"analysis":"coverage","duration":123}`
	if got != want {
		t.Fatalf("reindex:\n got %s\nwant %s", got, want)
	}
	if got := string(reindex([]byte(`{"index":0}`), 42)); got != `{"index":42}` {
		t.Fatalf("reindex minimal: %s", got)
	}
}

func TestNormalizeWorker(t *testing.T) {
	for _, tc := range []struct{ in, base, name string }{
		{"localhost:8035", "http://localhost:8035", "localhost:8035"},
		{"http://10.0.0.7:9000", "http://10.0.0.7:9000", "10.0.0.7:9000"},
		{" host:1 ", "http://host:1", "host:1"},
	} {
		base, name, err := normalizeWorker(tc.in)
		if err != nil || base != tc.base || name != tc.name {
			t.Fatalf("normalizeWorker(%q) = %q, %q, %v; want %q, %q", tc.in, base, name, err, tc.base, tc.name)
		}
	}
	if _, _, err := normalizeWorker(""); err == nil {
		t.Fatal("empty worker address accepted")
	}
}
