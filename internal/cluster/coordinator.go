package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
)

// Coordinator defaults.
const (
	// DefaultProbeEvery is the health-probe interval for live workers.
	DefaultProbeEvery = 2 * time.Second
	// DefaultDeadAfter is how many consecutive probe failures take a
	// worker out of the ring.
	DefaultDeadAfter = 3
	// DefaultPollEvery is the base result-poll interval; polls back off
	// (doubling, capped at 32× base) while a sub-batch is quiet and
	// snap back on progress.
	DefaultPollEvery = 5 * time.Millisecond
	// DefaultHTTPTimeout bounds each control-plane request (probe,
	// registration, submit, page) — long minimizations live on the
	// worker, not in any one poll.
	DefaultHTTPTimeout = 15 * time.Second
	// DefaultNoWorkerGrace is how long routing waits out a fully dead
	// fleet before failing the affected jobs.
	DefaultNoWorkerGrace = 30 * time.Second
	// dispatchAttempts bounds how many times one job is re-routed after
	// worker failures before it fails with an error result. Each
	// attempt already carries its own submit/poll retry budget, so this
	// limit only fires when the fleet is melting down faster than the
	// probe loop can notice.
	dispatchAttempts = 4
	// pageLimit is the result-page size the dispatcher polls with.
	pageLimit = 256
)

// Config configures a Coordinator.
type Config struct {
	// Workers lists the fleet ("host:port" or full URLs).
	Workers []string
	// Vnodes and LoadFactor tune the ring (0 = defaults).
	Vnodes     int
	LoadFactor float64
	// ProbeEvery is the health-probe interval (0 = DefaultProbeEvery).
	// Dead workers are re-probed under deterministic capped-exponential
	// backoff on top of this interval.
	ProbeEvery time.Duration
	// DeadAfter is the consecutive-probe-failure threshold that marks a
	// worker dead (0 = DefaultDeadAfter).
	DeadAfter int
	// PollEvery is the base result-poll interval (0 = DefaultPollEvery).
	PollEvery time.Duration
	// HTTPTimeout bounds individual worker requests (0 = DefaultHTTPTimeout).
	HTTPTimeout time.Duration
	// NoWorkerGrace is how long jobs wait for a live worker before
	// failing (0 = DefaultNoWorkerGrace).
	NoWorkerGrace time.Duration
	// Seed derives probe/retry backoff jitter (deterministic per seed).
	Seed int64
	// Logf, when non-nil, receives operational log lines (worker
	// deaths, requeues, fleet shedding).
	Logf func(format string, args ...any)
}

// workerState is the coordinator's view of one fpserve worker.
type workerState struct {
	name   string // host:port, the ring member key
	client *Client

	alive       atomic.Bool
	consecFails atomic.Int64 // consecutive probe failures
	lastProbe   atomic.Int64 // unixnano of the last probe attempt

	// Routing/attribution counters, surfaced in /stats.
	inflight   atomic.Int64 // jobs assigned, result not yet delivered
	routed     atomic.Int64 // jobs ever assigned here
	requeued   atomic.Int64 // jobs moved off this worker after it failed
	shed       atomic.Int64 // 429 refusals this worker answered
	deaths     atomic.Int64 // times the probe loop marked it dead
	probeFails atomic.Int64 // total failed probes

	regMu      sync.Mutex
	registered map[string]bool // program IDs this coordinator registered here
}

func (w *workerState) isRegistered(id string) bool {
	w.regMu.Lock()
	defer w.regMu.Unlock()
	return w.registered[id]
}

func (w *workerState) setRegistered(id string) {
	w.regMu.Lock()
	w.registered[id] = true
	w.regMu.Unlock()
}

func (w *workerState) programCount() int {
	w.regMu.Lock()
	defer w.regMu.Unlock()
	return len(w.registered)
}

// Coordinator fans job batches over a worker fleet. Install Run as the
// JobEngine's Runner and Admit as its AdmitHook; the engine's journal,
// job table, and /v1 surfaces operate unchanged on the stitched
// results.
type Coordinator struct {
	cfg  Config
	ring *Ring

	workers map[string]*workerState
	order   []string // stable listing order

	stop chan struct{}
	done chan struct{}

	shedUntil  atomic.Int64 // unixnano: fleet-level shedding window end
	shedRetry  atomic.Int64 // ns: the worst Retry-After hint in the window
	shedTotal  atomic.Int64 // worker 429s observed
	admitShed  atomic.Int64 // submissions Admit refused
	requeues   atomic.Int64 // jobs re-routed off failed workers
	dispatched atomic.Int64 // jobs handed to Run
}

// New validates cfg and builds a Coordinator with every worker
// initially alive (the first probe pass corrects optimism within one
// interval). Call Start to begin health probing and Close to stop it.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	c := &Coordinator{
		cfg:     cfg,
		ring:    NewRing(cfg.Vnodes, cfg.LoadFactor),
		workers: map[string]*workerState{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, raw := range cfg.Workers {
		base, name, err := normalizeWorker(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := c.workers[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker %s", name)
		}
		w := &workerState{
			name:       name,
			client:     &Client{Base: base},
			registered: map[string]bool{},
		}
		w.alive.Store(true)
		c.workers[name] = w
		c.order = append(c.order, name)
		c.ring.Add(name)
	}
	return c, nil
}

// normalizeWorker turns "host:port" or a URL into (base URL, member
// name).
func normalizeWorker(raw string) (base, name string, err error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", "", errors.New("cluster: empty worker address")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return "", "", fmt.Errorf("cluster: bad worker address %q", raw)
	}
	return strings.TrimSuffix(u.String(), "/"), u.Host, nil
}

func (c *Coordinator) probeEvery() time.Duration {
	if c.cfg.ProbeEvery > 0 {
		return c.cfg.ProbeEvery
	}
	return DefaultProbeEvery
}

func (c *Coordinator) deadAfter() int {
	if c.cfg.DeadAfter > 0 {
		return c.cfg.DeadAfter
	}
	return DefaultDeadAfter
}

func (c *Coordinator) pollEvery() time.Duration {
	if c.cfg.PollEvery > 0 {
		return c.cfg.PollEvery
	}
	return DefaultPollEvery
}

func (c *Coordinator) httpTimeout() time.Duration {
	if c.cfg.HTTPTimeout > 0 {
		return c.cfg.HTTPTimeout
	}
	return DefaultHTTPTimeout
}

func (c *Coordinator) noWorkerGrace() time.Duration {
	if c.cfg.NoWorkerGrace > 0 {
		return c.cfg.NoWorkerGrace
	}
	return DefaultNoWorkerGrace
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Start launches the health-probe loop (one immediate pass, then every
// ProbeEvery).
func (c *Coordinator) Start() {
	go c.probeLoop()
}

// Close stops the probe loop and waits for it to exit. In-flight Run
// calls are unaffected — the engine's shutdown cancels their contexts.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

func (c *Coordinator) probeLoop() {
	defer close(c.done)
	c.probeAll()
	t := time.NewTicker(c.probeEvery())
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll probes every due worker concurrently. A live worker is due
// every tick; a dead one is re-probed under deterministic
// capped-exponential backoff (pipeline.Backoff over the probe
// interval, seeded per worker), so a down fleet is not hammered while
// a recovering worker is still noticed within a few intervals.
func (c *Coordinator) probeAll() {
	now := time.Now()
	var wg sync.WaitGroup
	for _, name := range c.order {
		w := c.workers[name]
		if !w.alive.Load() {
			b := pipeline.Backoff{
				Base: c.probeEvery(), Max: 8 * c.probeEvery(),
				Seed: c.cfg.Seed ^ int64(hash64(w.name)),
			}
			over := int(w.consecFails.Load()) - c.deadAfter()
			if over > 3 {
				over = 3
			}
			if over > 0 && now.Sub(time.Unix(0, w.lastProbe.Load())) < b.Delay(over) {
				continue
			}
		}
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			c.probe(w)
		}(w)
	}
	wg.Wait()
}

// probe health-checks one worker. The deadline is the control-plane
// HTTP timeout, NOT the probe interval: a worker with every core
// pinned by minimization answers /healthz late, and "busy" must not
// read as "dead" (a killed process still fails fast with a connection
// refusal). Probes are concurrent, so a slow probe delays nothing but
// its own worker's verdict.
func (c *Coordinator) probe(w *workerState) {
	w.lastProbe.Store(time.Now().UnixNano())
	ctx, cancel := context.WithTimeout(context.Background(), c.httpTimeout())
	defer cancel()
	if err := w.client.Healthz(ctx); err != nil {
		n := w.consecFails.Add(1)
		w.probeFails.Add(1)
		if int(n) >= c.deadAfter() && w.alive.CompareAndSwap(true, false) {
			w.deaths.Add(1)
			c.ring.SetAlive(w.name, false)
			c.logf("cluster: worker %s marked dead after %d failed probes (%v); requeueing its jobs",
				w.name, n, err)
		}
		return
	}
	w.consecFails.Store(0)
	if w.alive.CompareAndSwap(false, true) {
		// A restarted worker has an empty program store: forget what we
		// registered so first routing re-registers lazily.
		w.regMu.Lock()
		w.registered = map[string]bool{}
		w.regMu.Unlock()
		c.ring.SetAlive(w.name, true)
		c.logf("cluster: worker %s back in the ring", w.name)
	}
}

// suspect takes a worker out of the ring on direct dispatch evidence —
// transport failures, a vanished job — without waiting for the probe
// loop to accumulate failures; requeued jobs route straight to
// survivors. The next successful probe brings the worker back (and, as
// with any rejoin, resets its registered-program bookkeeping).
func (c *Coordinator) suspect(w *workerState, why error) {
	if w.alive.CompareAndSwap(true, false) {
		w.deaths.Add(1)
		c.ring.SetAlive(w.name, false)
		c.logf("cluster: worker %s suspected dead (%v); detouring its keys", w.name, why)
	}
}

// Admit is the JobEngine admission hook: fleet-level backpressure.
// While any worker's 429 Retry-After window is open, or no worker is
// alive, new batches are refused with ErrOverloaded so the
// coordinator's own clients shed load instead of queueing blindly.
func (c *Coordinator) Admit(jobs int) error {
	if until := c.shedUntil.Load(); until > time.Now().UnixNano() {
		c.admitShed.Add(1)
		return pipeline.ErrOverloaded{
			Reason:     "the worker fleet is shedding load (a worker answered 429)",
			RetryAfter: time.Duration(c.shedRetry.Load()),
		}
	}
	if c.ring.AliveCount() == 0 {
		c.admitShed.Add(1)
		return pipeline.ErrOverloaded{
			Reason:     "no live workers in the fleet",
			RetryAfter: c.probeEvery(),
		}
	}
	return nil
}

// noteShed aggregates one worker 429 into the coordinator watermark:
// admission refuses new batches until the worst outstanding
// Retry-After hint has elapsed.
func (c *Coordinator) noteShed(w *workerState, retryAfter time.Duration) {
	w.shed.Add(1)
	c.shedTotal.Add(1)
	if retryAfter <= 0 {
		retryAfter = pipeline.DefaultRetryAfter
	}
	until := time.Now().Add(retryAfter).UnixNano()
	for {
		cur := c.shedUntil.Load()
		if cur >= until {
			return
		}
		if c.shedUntil.CompareAndSwap(cur, until) {
			c.shedRetry.Store(int64(retryAfter))
			return
		}
	}
}

// Run is the fleet Runner (see pipeline.Runner): it routes each job to
// a live worker by the consistent hash of its program, executes the
// sub-batches remotely, and emits results in batch order, byte-
// identical to a local run. Worker deaths requeue the unfinished
// remainder onto survivors; the engine's caller never observes
// anything but a slower batch.
func (c *Coordinator) Run(ctx context.Context, jobs []pipeline.Job, base int, emit func(int, json.RawMessage)) {
	n := len(jobs)
	if n == 0 {
		return
	}
	c.dispatched.Add(int64(n))
	results := make([]chan json.RawMessage, n)
	for i := range results {
		results[i] = make(chan json.RawMessage, 1)
	}
	deliver := func(i int, raw json.RawMessage) { results[i] <- raw }

	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	var wg sync.WaitGroup
	c.dispatch(ctx, &wg, jobs, base, idxs, 0, deliver)

	// In-order drain: every index is guaranteed exactly one delivery —
	// a worker result, a requeued result, or a synthesized
	// canceled/error stub.
	for i := 0; i < n; i++ {
		emit(base+i, <-results[i])
	}
	wg.Wait()
}

// dispatch assigns idxs to live workers and runs each group in its own
// goroutine; groups a worker could not finish are re-dispatched onto
// survivors (attempt+1). Jobs that exhaust dispatchAttempts, or that
// find no live worker within the grace period, are failed with
// synthesized results so Run's drain never deadlocks.
func (c *Coordinator) dispatch(ctx context.Context, wg *sync.WaitGroup, jobs []pipeline.Job, base int, idxs []int, attempt int, deliver func(int, json.RawMessage)) {
	if attempt >= dispatchAttempts {
		for _, i := range idxs {
			c.logf("cluster: job %d failed after %d dispatch attempts", base+i, attempt)
			deliver(i, synthResult(jobs[i], base+i, false,
				fmt.Sprintf("cluster: dispatch failed after %d attempts across the fleet", attempt)))
		}
		return
	}
	groups, unplaced := c.assign(ctx, jobs, idxs)
	for _, i := range unplaced {
		if ctx.Err() != nil {
			deliver(i, synthCanceled(jobs[i], base+i, ctx))
		} else {
			deliver(i, synthResult(jobs[i], base+i, false,
				fmt.Sprintf("cluster: no live worker within %v", c.noWorkerGrace())))
		}
	}
	for w, group := range groups {
		w, group := w, group
		wg.Add(1)
		go func() {
			defer wg.Done()
			unfinished, err := c.runGroup(ctx, w, jobs, base, group, deliver)
			if len(unfinished) == 0 {
				return
			}
			w.requeued.Add(int64(len(unfinished)))
			c.requeues.Add(int64(len(unfinished)))
			w.inflight.Add(-int64(len(unfinished)))
			c.logf("cluster: requeueing %d jobs off %s: %v", len(unfinished), w.name, err)
			c.dispatch(ctx, wg, jobs, base, unfinished, attempt+1, deliver)
		}()
	}
}

// assign routes each index to a live worker under the bounded-load
// rule, bumping the chosen worker's in-flight load as it goes (so the
// cap sees this batch's own placements, not just earlier batches). If
// the whole fleet is dead it waits — under backoff, up to
// NoWorkerGrace — for the probe loop to restore someone; indices that
// never find a worker are returned as unplaced.
func (c *Coordinator) assign(ctx context.Context, jobs []pipeline.Job, idxs []int) (map[*workerState][]int, []int) {
	load := func(name string) int { return int(c.workers[name].inflight.Load()) }
	b := pipeline.Backoff{Base: 10 * time.Millisecond, Max: c.probeEvery(), Seed: c.cfg.Seed}
	deadline := time.Now().Add(c.noWorkerGrace())
	for attempt := 0; ; attempt++ {
		groups := map[*workerState][]int{}
		ok := true
		for _, i := range idxs {
			name, up := c.ring.Owner(RouteKey(jobs[i]), load)
			if !up {
				ok = false
				break
			}
			w := c.workers[name]
			w.inflight.Add(1)
			w.routed.Add(1)
			groups[w] = append(groups[w], i)
		}
		if ok {
			return groups, nil
		}
		for w, group := range groups { // undo the partial placement
			w.inflight.Add(-int64(len(group)))
			w.routed.Add(-int64(len(group)))
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return nil, idxs
		}
		j := attempt
		if j > 8 {
			j = 8
		}
		select {
		case <-time.After(b.Delay(j)):
		case <-ctx.Done():
		}
	}
}

// RouteKey is a job's consistent-hash key: the content address of its
// program when it has one — the same sha256 that keys worker module
// caches, so all jobs on one program land where it is already compiled
// — and a stable surrogate otherwise.
func RouteKey(j pipeline.Job) string {
	switch {
	case j.Source != "":
		return pipeline.SourceID(j.Source)
	case j.Builtin != "":
		return "builtin:" + j.Builtin
	default:
		return pipeline.SourceID("formula:" + j.Spec.Formula)
	}
}

// runGroup executes one worker's sub-batch: lazy program registration,
// submit (retrying 429s under the fleet backpressure contract), then
// offset-polling delivery in order. It returns the indices it could
// not finish — the caller requeues them — or delivers everything and
// returns nil. A coordinator-side cancellation (ctx) is not a failure:
// the worker job is cancelled, its terminal results are collected
// briefly, and anything still missing is synthesized exactly as a
// local cancelled batch would report it.
func (c *Coordinator) runGroup(ctx context.Context, w *workerState, jobs []pipeline.Job, base int, idxs []int, deliver func(int, json.RawMessage)) ([]int, error) {
	// Lazy idempotent registration: every distinct program in the
	// group that this coordinator has not yet registered on w.
	for _, i := range idxs {
		src := jobs[i].Source
		if src == "" {
			continue
		}
		id := pipeline.SourceID(src)
		if w.isRegistered(id) {
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, c.httpTimeout())
		_, err := w.client.RegisterProgram(rctx, src, jobs[i].Lang, "")
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return nil, c.finishCanceled(ctx, w, "", jobs, base, idxs, 0, deliver)
			}
			var se *StatusError
			if !errors.As(err, &se) {
				c.suspect(w, err) // transport failure, not a worker answer
			}
			return idxs, fmt.Errorf("registering %s: %w", id, err)
		}
		w.setRegistered(id)
	}

	v1jobs := make([]pipeline.V1Job, 0, len(idxs))
	for _, i := range idxs {
		j := jobs[i]
		vj := pipeline.V1Job{Builtin: j.Builtin, Func: j.Func, Spec: j.Spec}
		if j.Source != "" {
			vj.Program = pipeline.SourceID(j.Source)
		}
		v1jobs = append(v1jobs, vj)
	}

	// Submit. 429s are backpressure, not failure: they propagate into
	// the coordinator's admission watermark and the sub-batch retries
	// after the worker's own hint. Transport errors get a bounded retry
	// before the group is declared failed.
	submitB := pipeline.Backoff{Base: 20 * time.Millisecond, Max: time.Second,
		Seed: c.cfg.Seed ^ int64(hash64(w.name))}
	var jobID string
	transportFails := 0
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return nil, c.finishCanceled(ctx, w, "", jobs, base, idxs, 0, deliver)
		}
		if !w.alive.Load() {
			return idxs, fmt.Errorf("worker %s died before accepting the sub-batch", w.name)
		}
		sctx, cancel := context.WithTimeout(ctx, c.httpTimeout())
		id, err := w.client.SubmitJobs(sctx, v1jobs)
		cancel()
		if err == nil {
			jobID = id
			break
		}
		var busy *ErrWorkerBusy
		if errors.As(err, &busy) {
			c.noteShed(w, busy.RetryAfter)
			delay := busy.RetryAfter
			if d := submitB.Delay(minInt(attempt, 6)); d > delay {
				delay = d
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
			}
			continue
		}
		transportFails++
		if transportFails > 4 {
			var se *StatusError
			if !errors.As(err, &se) {
				c.suspect(w, err)
			}
			return idxs, fmt.Errorf("submitting to %s: %w", w.name, err)
		}
		select {
		case <-time.After(submitB.Delay(transportFails - 1)):
		case <-ctx.Done():
		}
	}

	// Poll pages in order. served counts results delivered — it is both
	// the next page offset and the cursor into idxs, so delivery order
	// within the group matches worker emission order (batch order).
	pollB := pipeline.Backoff{Base: c.pollEvery(), Max: c.httpTimeout(),
		Seed: c.cfg.Seed ^ int64(hash64(jobID))}
	served := 0
	pollFails := 0
	quiet := 0
	for {
		if ctx.Err() != nil {
			return nil, c.finishCanceled(ctx, w, jobID, jobs, base, idxs, served, deliver)
		}
		if !w.alive.Load() {
			c.bestEffortCancel(w, jobID)
			return idxs[served:], fmt.Errorf("worker %s marked dead mid-batch (%d/%d results in)",
				w.name, served, len(idxs))
		}
		pctx, cancel := context.WithTimeout(ctx, c.httpTimeout())
		view, err := w.client.Page(pctx, jobID, served, pageLimit)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				continue
			}
			if errNotFound(err) {
				// A vanished job means the worker restarted (or evicted it):
				// suspect it so the requeue routes to survivors, and so its
				// rejoin re-registers programs against the empty store.
				c.suspect(w, err)
				return idxs[served:], fmt.Errorf("job %s vanished on %s (restart or eviction)", jobID, w.name)
			}
			pollFails++
			if pollFails > 6 {
				var se *StatusError
				if !errors.As(err, &se) {
					c.suspect(w, err)
				}
				c.bestEffortCancel(w, jobID)
				return idxs[served:], fmt.Errorf("polling %s on %s: %w", jobID, w.name, err)
			}
			select {
			case <-time.After(pollB.Delay(pollFails - 1)):
			case <-ctx.Done():
			}
			continue
		}
		pollFails = 0
		for _, raw := range view.Results {
			if served >= len(idxs) {
				break
			}
			if ctx.Err() == nil && resultCanceled(raw) {
				// The worker cancelled under us (drain, shutdown, local
				// deadline) while the coordinator still wants the
				// results: everything from here re-runs on survivors.
				c.bestEffortCancel(w, jobID)
				return idxs[served:], fmt.Errorf("worker %s cancelled job %s mid-batch", w.name, jobID)
			}
			i := idxs[served]
			deliver(i, reindex(raw, base+i))
			w.inflight.Add(-1)
			served++
		}
		if served == len(idxs) {
			return nil, nil
		}
		if view.Status != pipeline.JobRunning && view.NextOffset == nil {
			return idxs[served:], fmt.Errorf("job %s on %s ended %q with %d/%d results",
				jobID, w.name, view.Status, served, len(idxs))
		}
		if len(view.Results) > 0 {
			quiet = 0
			continue // drain fast while results flow
		}
		quiet++
		wait := c.pollEvery() << minInt(quiet, 5)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
		}
	}
}

// finishCanceled handles a coordinator-side cancellation of a running
// sub-batch: cancel the worker job, briefly collect the terminal
// results it did produce (partial minimization reports included, as a
// local cancellation would keep), then synthesize the local
// cancellation stub for anything the worker never delivered. Every
// index is delivered, so Run's drain completes.
func (c *Coordinator) finishCanceled(ctx context.Context, w *workerState, jobID string, jobs []pipeline.Job, base int, idxs []int, served int, deliver func(int, json.RawMessage)) error {
	if jobID != "" {
		bg, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		w.client.Cancel(bg, jobID)
		for served < len(idxs) {
			view, err := w.client.Page(bg, jobID, served, pageLimit)
			if err != nil {
				break
			}
			for _, raw := range view.Results {
				if served >= len(idxs) {
					break
				}
				i := idxs[served]
				deliver(i, reindex(raw, base+i))
				w.inflight.Add(-1)
				served++
			}
			if view.Status != pipeline.JobRunning && view.NextOffset == nil {
				break
			}
			if len(view.Results) == 0 {
				select {
				case <-time.After(c.pollEvery()):
				case <-bg.Done():
				}
				if bg.Err() != nil {
					break
				}
			}
		}
		cancel()
	}
	for ; served < len(idxs); served++ {
		i := idxs[served]
		deliver(i, synthCanceled(jobs[i], base+i, ctx))
		w.inflight.Add(-1)
	}
	return nil
}

func (c *Coordinator) bestEffortCancel(w *workerState, jobID string) {
	if jobID == "" {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		w.client.Cancel(ctx, jobID)
	}()
}

// resultCanceled sniffs a wire result's canceled flag.
func resultCanceled(raw json.RawMessage) bool {
	var probe struct {
		Canceled bool `json:"canceled"`
	}
	return json.Unmarshal(raw, &probe) == nil && probe.Canceled
}

// synthCanceled is the stub a local run emits for a job cancelled
// before (or while) running — same fields, same bytes.
func synthCanceled(j pipeline.Job, index int, ctx context.Context) json.RawMessage {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = ctx.Err()
	}
	if cause == nil {
		cause = context.Canceled
	}
	return pipeline.MarshalResult(pipeline.JobResult{
		Index: index, Analysis: j.Spec.Analysis,
		Canceled: true, Error: "canceled: " + cause.Error(),
	})
}

// synthResult is a coordinator-generated error (or canceled) result
// for a job the fleet could not execute.
func synthResult(j pipeline.Job, index int, canceled bool, msg string) json.RawMessage {
	return pipeline.MarshalResult(pipeline.JobResult{
		Index: index, Analysis: j.Spec.Analysis, Canceled: canceled, Error: msg,
	})
}

// indexPrefix matches MarshalResult output: Index is the first struct
// field, so encoding/json emits it first — which is what makes a
// byte-level index rewrite safe.
var indexPrefix = []byte(`{"index":`)

// reindex rewrites a worker result's leading index field to the
// coordinator's batch index, leaving every other byte of the worker's
// wire result untouched — the stitched batch is byte-identical to a
// single-node run.
func reindex(raw json.RawMessage, index int) json.RawMessage {
	rest, ok := cutPrefix(raw, indexPrefix)
	if ok {
		digits := 0
		for digits < len(rest) && (rest[digits] == '-' || (rest[digits] >= '0' && rest[digits] <= '9')) {
			digits++
		}
		if digits > 0 {
			out := make([]byte, 0, len(raw)+4)
			out = append(out, indexPrefix...)
			out = strconv.AppendInt(out, int64(index), 10)
			out = append(out, rest[digits:]...)
			return out
		}
	}
	// Unexpected shape: fall back to a strict re-encode.
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err == nil {
		m["index"] = index
		if b, err := json.Marshal(m); err == nil {
			return b
		}
	}
	return raw
}

func cutPrefix(b, prefix []byte) ([]byte, bool) {
	if len(b) < len(prefix) || string(b[:len(prefix)]) != string(prefix) {
		return b, false
	}
	return b[len(prefix):], true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// WorkerStats is one worker's row in the coordinator /stats document.
type WorkerStats struct {
	Name  string `json:"name"`
	Alive bool   `json:"alive"`
	// Routed counts jobs ever assigned here; Requeued the jobs moved
	// off after a failure; Shed its 429 refusals; InFlight the jobs
	// currently assigned.
	Routed   int64 `json:"routed"`
	Requeued int64 `json:"requeued"`
	Shed     int64 `json:"shed"`
	InFlight int64 `json:"inFlight"`
	// Programs counts programs this coordinator registered here (reset
	// when the worker rejoins after a death).
	Programs int `json:"programs"`
	// Deaths and ProbeFailures are the health-probe history.
	Deaths        int64 `json:"deaths,omitempty"`
	ProbeFailures int64 `json:"probeFailures,omitempty"`
}

// Stats is the coordinator's /stats document.
type Stats struct {
	Workers []WorkerStats `json:"workers"`
	Alive   int           `json:"alive"`
	// Dispatched counts jobs handed to the fleet Runner; Requeued the
	// re-routes after worker failures; WorkerShed the worker 429s
	// observed; AdmitShed the submissions the fleet watermark refused.
	Dispatched int64 `json:"dispatched"`
	Requeued   int64 `json:"requeued"`
	WorkerShed int64 `json:"workerShed"`
	AdmitShed  int64 `json:"admitShed"`
	// SheddingForMS is the remaining fleet-level shedding window, 0
	// when admission is open.
	SheddingForMS int64 `json:"sheddingForMs,omitempty"`
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() Stats {
	s := Stats{
		Dispatched: c.dispatched.Load(),
		Requeued:   c.requeues.Load(),
		WorkerShed: c.shedTotal.Load(),
		AdmitShed:  c.admitShed.Load(),
		Alive:      c.ring.AliveCount(),
	}
	if until := c.shedUntil.Load(); until > time.Now().UnixNano() {
		s.SheddingForMS = (until - time.Now().UnixNano()) / int64(time.Millisecond)
	}
	for _, name := range c.order {
		w := c.workers[name]
		s.Workers = append(s.Workers, WorkerStats{
			Name:          w.name,
			Alive:         w.alive.Load(),
			Routed:        w.routed.Load(),
			Requeued:      w.requeued.Load(),
			Shed:          w.shed.Load(),
			InFlight:      w.inflight.Load(),
			Programs:      w.programCount(),
			Deaths:        w.deaths.Load(),
			ProbeFailures: w.probeFails.Load(),
		})
	}
	return s
}

// StatsDoc adapts Stats to the pipeline Server's ClusterStats hook.
func (c *Coordinator) StatsDoc() any { return c.Stats() }
