package cluster_test

// End-to-end coordinator tests over real fpserve workers (httptest
// servers running the full /v1 surface): byte-identity of fanned-out
// batches against a single-node run, requeue onto survivors after a
// mid-batch worker kill, and fleet-level backpressure aggregation.

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/pipeline"
)

// testProgram generates the i-th distinct FPL source: different
// constants give different content addresses, so a batch spreads over
// the ring.
func testProgram(i int) string {
	return fmt.Sprintf(
		"func f(x double, y double) double {\n    if (x < %d.0) { return x + y; }\n    return x * %d.5;\n}",
		i+1, i+2)
}

// testBatch builds a deterministic mixed batch over n programs with
// specsPer analyses each.
func testBatch(n, specsPer, evals int) []pipeline.Job {
	var jobs []pipeline.Job
	analyses := []string{"coverage", "overflow", "nan"}
	for p := 0; p < n; p++ {
		src := testProgram(p)
		for s := 0; s < specsPer; s++ {
			spec := analysis.Spec{
				Analysis: analyses[s%len(analyses)],
				Seed:     int64(p*100 + s + 1),
				Evals:    evals,
				Workers:  1,
			}
			switch spec.Analysis {
			case "coverage":
				spec.Stall = 2
			case "overflow", "nan":
				spec.Rounds = 4
				spec.Retries = 1
			}
			jobs = append(jobs, pipeline.Job{Source: src, Func: "f", Spec: spec})
		}
	}
	return jobs
}

// worker is one in-process fpserve node.
type worker struct {
	srv *pipeline.Server
	ts  *httptest.Server
}

func (w *worker) url() string  { return w.ts.URL }
func (w *worker) name() string { u, _ := url.Parse(w.ts.URL); return u.Host }

// kill simulates abrupt worker death: connections drop and the engine
// stops burning CPU, with nothing journaled and nothing drained.
func (w *worker) kill() {
	w.ts.CloseClientConnections()
	w.ts.Close()
	w.srv.Engine.Kill()
}

func startWorkers(t testing.TB, n, pipelineWorkers int) []*worker {
	t.Helper()
	ws := make([]*worker, n)
	for i := range ws {
		srv := pipeline.NewServer(pipelineWorkers)
		ts := httptest.NewServer(srv.Handler())
		ws[i] = &worker{srv: srv, ts: ts}
	}
	t.Cleanup(func() {
		for _, w := range ws {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			w.srv.Engine.Shutdown(ctx)
			cancel()
			w.ts.Close()
		}
	})
	return ws
}

// coordEngine builds a job engine whose Runner is a coordinator over
// the given workers.
func coordEngine(t testing.TB, ws []*worker, cfg cluster.Config) (*pipeline.JobEngine, *cluster.Coordinator) {
	t.Helper()
	for _, w := range ws {
		cfg.Workers = append(cfg.Workers, w.url())
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = 50 * time.Millisecond
	}
	if cfg.PollEvery == 0 {
		cfg.PollEvery = 2 * time.Millisecond
	}
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	eng := pipeline.NewJobEngine(pipeline.New(1))
	eng.Runner = coord.Run
	eng.AdmitHook = coord.Admit
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		eng.Shutdown(ctx)
		cancel()
		coord.Close()
	})
	return eng, coord
}

// goldenRun executes the batch on a local single-node engine and
// returns the normalized wire results.
func goldenRun(t testing.TB, jobs []pipeline.Job) []string {
	t.Helper()
	eng := pipeline.NewJobEngine(pipeline.New(0))
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		eng.Shutdown(ctx)
	}()
	return followAll(t, eng, jobs, pipeline.JobCompleted)
}

func followAll(t testing.TB, eng *pipeline.JobEngine, jobs []pipeline.Job, want pipeline.JobStatus) []string {
	t.Helper()
	rec, err := eng.Submit(nil, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var out []string
	status := pipeline.FollowJob(ctx, rec, func(b []byte) {
		out = append(out, string(pipeline.NormalizeDurations(b)))
	})
	if status != want {
		t.Fatalf("job ended %q (%s), want %q", status, rec.Header().Reason, want)
	}
	return out
}

// TestCoordinatorByteIdentity is the e2e acceptance test: a batch
// fanned over two workers returns results byte-identical to the same
// batch on a single node.
func TestCoordinatorByteIdentity(t *testing.T) {
	jobs := testBatch(6, 3, 60)
	want := goldenRun(t, jobs)

	ws := startWorkers(t, 2, 0)
	eng, coord := coordEngine(t, ws, cluster.Config{Seed: 7})
	got := followAll(t, eng, jobs, pipeline.JobCompleted)

	if len(got) != len(want) {
		t.Fatalf("cluster run returned %d results, single node %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d differs from the single-node run:\n%s\nvs\n%s", i, want[i], got[i])
		}
	}
	st := coord.Stats()
	if st.Dispatched != int64(len(jobs)) {
		t.Fatalf("dispatched %d, want %d", st.Dispatched, len(jobs))
	}
	routed := int64(0)
	for _, w := range st.Workers {
		routed += w.Routed
		if w.InFlight != 0 {
			t.Fatalf("worker %s still shows %d in-flight after the batch drained", w.Name, w.InFlight)
		}
	}
	if routed < int64(len(jobs)) {
		t.Fatalf("routed %d < %d jobs", routed, len(jobs))
	}
	// Program-hash routing: every worker that saw jobs registered at
	// least one program lazily.
	for _, w := range st.Workers {
		if w.Routed > 0 && w.Programs == 0 {
			t.Fatalf("worker %s routed %d jobs but registered no programs", w.Name, w.Routed)
		}
	}
}

// TestCoordinatorKillWorkerMidBatch kills the busiest worker while a
// 16-job batch on one registered program is in flight: every job must
// reach a terminal completed state on the survivor with results
// byte-identical to an uninterrupted single-node run, and the requeue
// counters must show the failover.
func TestCoordinatorKillWorkerMidBatch(t *testing.T) {
	// Every job burns its full eval budget before giving up: the path
	// (branch guard x < 1) is unreachable under bounds [100, 200], so
	// the batch stays in flight long enough to kill a worker under it,
	// yet terminates deterministically.
	src := testProgram(0)
	jobs := make([]pipeline.Job, 16)
	for i := range jobs {
		jobs[i] = pipeline.Job{Source: src, Func: "f", Spec: analysis.Spec{
			Analysis: "reach", Seed: int64(i + 1), Starts: 4, Evals: 300_000, Workers: 1,
			Backend: "basinhopping",
			Path:    []instrument.Decision{{Site: 0, Taken: true}},
			Bounds:  []opt.Bound{{Lo: 100, Hi: 200}}}}
	}
	want := goldenRun(t, jobs)

	ws := startWorkers(t, 2, 1)
	eng, coord := coordEngine(t, ws, cluster.Config{Seed: 11})
	rec, err := eng.Submit(nil, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the batch to make some progress, then kill the worker
	// carrying the most in-flight jobs.
	deadline := time.Now().Add(time.Minute)
	for rec.Header().Completed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no results after a minute")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var victim *worker
	var victimLoad int64
	for _, w := range ws {
		for _, st := range coord.Stats().Workers {
			if st.Name == w.name() && st.InFlight >= victimLoad {
				victim, victimLoad = w, st.InFlight
			}
		}
	}
	if victim == nil || victimLoad == 0 {
		t.Fatalf("no worker with in-flight jobs to kill (completed=%d)", rec.Header().Completed)
	}
	victim.kill()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var got []string
	if status := pipeline.FollowJob(ctx, rec, func(b []byte) {
		got = append(got, string(pipeline.NormalizeDurations(b)))
	}); status != pipeline.JobCompleted {
		t.Fatalf("batch ended %q (%s), want completed on the survivor", status, rec.Header().Reason)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results after the kill, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d differs from the uninterrupted single-node run:\n%s\nvs\n%s",
				i, want[i], got[i])
		}
	}
	st := coord.Stats()
	if st.Requeued == 0 {
		t.Fatal("kill mid-batch left requeue counter at 0")
	}
	for _, w := range st.Workers {
		if w.Name == victim.name() && w.Alive {
			t.Fatalf("killed worker %s still marked alive: %+v", w.Name, w)
		}
	}
}

// TestCoordinatorBackpressure: a worker's 429 load-shedding refusal
// folds into the coordinator's own admission control (fleet-level
// backpressure), and the shed sub-batch retries through once worker
// capacity frees up.
func TestCoordinatorBackpressure(t *testing.T) {
	ws := startWorkers(t, 1, 2)
	ws[0].srv.Engine.MaxInFlight = 1
	ws[0].srv.Engine.RetryAfter = 100 * time.Millisecond

	eng, coord := coordEngine(t, ws, cluster.Config{Seed: 3})

	// A hog job occupies the worker's single admission slot: an
	// unreachable path under a 10^7-eval basinhopping spec — it burns
	// until canceled.
	hog, err := eng.Submit(nil, []pipeline.Job{{Builtin: "fig2", Spec: analysis.Spec{
		Analysis: "reach", Seed: 1, Starts: 1_000_000, Evals: 10_000_000, Workers: 1,
		Backend: "basinhopping",
		Path:    []instrument.Decision{{Site: 0, Taken: true}},
		Bounds:  []opt.Bound{{Lo: 100, Hi: 200}},
	}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hog dispatched to the worker", func() bool {
		for _, w := range coord.Stats().Workers {
			if w.InFlight > 0 {
				return true
			}
		}
		return false
	})

	// A second batch now 429s on submit; the coordinator keeps it
	// pending and opens its shed window.
	quick, err := eng.Submit(nil, []pipeline.Job{{Source: testProgram(1), Func: "f", Spec: analysis.Spec{
		Analysis: "coverage", Seed: 2, Evals: 60, Stall: 2, Workers: 1}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker shed recorded", func() bool { return coord.Stats().WorkerShed > 0 })

	// While the shed window is open, fleet admission refuses new work
	// with the aggregated Retry-After hint.
	waitFor(t, "coordinator admission refusal", func() bool {
		err := coord.Admit(1)
		var over pipeline.ErrOverloaded
		return errors.As(err, &over) && over.RetryAfter > 0
	})

	// Cancel the hog: its slot frees, the shed batch's retry loop gets
	// through, and the batch completes normally.
	if _, ok, _ := eng.Cancel(hog.ID); !ok {
		t.Fatal("hog job not found for cancel")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if status := pipeline.FollowJob(ctx, quick, func([]byte) {}); status != pipeline.JobCompleted {
		t.Fatalf("shed batch ended %q (%s), want completed after the hog slot freed",
			status, quick.Header().Reason)
	}
	if status := pipeline.FollowJob(ctx, hog, func([]byte) {}); status != pipeline.JobCanceled {
		t.Fatalf("hog ended %q, want canceled", status)
	}

	st := coord.Stats()
	if st.WorkerShed == 0 || st.AdmitShed == 0 {
		t.Fatalf("shed counters: worker=%d admit=%d, want both > 0", st.WorkerShed, st.AdmitShed)
	}
}

// waitFor polls cond for up to 30s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
