package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/pipeline"
)

// ErrWorkerBusy is a worker's 429 load-shedding refusal, carrying its
// Retry-After hint. The coordinator folds these into its own admission
// control (fleet-level backpressure) and retries the sub-batch after
// the hint elapses.
type ErrWorkerBusy struct {
	// RetryAfter is the worker's backoff hint (0 when absent).
	RetryAfter time.Duration
	// Detail is the problem document's detail line.
	Detail string
}

func (e *ErrWorkerBusy) Error() string {
	return fmt.Sprintf("worker shedding load (retry after %v): %s", e.RetryAfter, e.Detail)
}

// Client is a minimal /v1 API client for one fpserve worker.
type Client struct {
	// Base is the worker's base URL ("http://host:port").
	Base string
	// HC is the HTTP client (nil = a default with no global timeout;
	// callers bound requests with contexts instead, because result
	// polls on a busy worker legitimately take long).
	HC *http.Client
}

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

// problemDoc is the slice of application/problem+json the client
// surfaces in errors.
type problemDoc struct {
	Title  string `json:"title"`
	Detail string `json:"detail"`
	Status int    `json:"status"`
}

// StatusError is a non-2xx, non-429 worker answer.
type StatusError struct {
	Code          int
	Title, Detail string
	Method, Path  string
}

func (e *StatusError) Error() string {
	if e.Title != "" {
		return fmt.Sprintf("%s %s: %d %s: %s", e.Method, e.Path, e.Code, e.Title, e.Detail)
	}
	return fmt.Sprintf("%s %s: status %d: %s", e.Method, e.Path, e.Code, e.Detail)
}

// do issues one request and decodes the response into out (when
// non-nil), mapping non-2xx answers to errors: 429 becomes
// *ErrWorkerBusy, everything else an error quoting the problem
// document. Transport failures are returned as-is — the caller's
// signal that the worker, not the request, is in trouble.
func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("encoding %s %s: %w", method, path, err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		busy := &ErrWorkerBusy{}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			busy.RetryAfter = time.Duration(secs) * time.Second
		}
		var p problemDoc
		if json.Unmarshal(data, &p) == nil {
			busy.Detail = p.Detail
		}
		return busy
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{Code: resp.StatusCode, Method: method, Path: path}
		var p problemDoc
		if json.Unmarshal(data, &p) == nil && p.Title != "" {
			se.Title, se.Detail = p.Title, p.Detail
		} else {
			se.Detail = string(data)
		}
		return se
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("decoding %s %s: %w", method, path, err)
		}
	}
	return nil
}

// Healthz probes the worker's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// RegisterProgram registers source (written in lang; empty = fpl) on
// the worker and returns its content address. Registration is
// idempotent — re-registering an already-known program is a 200 no-op
// — which is what makes lazy at-first-routing registration safe.
func (c *Client) RegisterProgram(ctx context.Context, source, lang, fn string) (string, error) {
	var info pipeline.ProgramInfo
	err := c.do(ctx, http.MethodPost, "/v1/programs", struct {
		Source string `json:"source"`
		Lang   string `json:"lang,omitempty"`
		Func   string `json:"func,omitempty"`
	}{Source: source, Lang: lang, Func: fn}, &info)
	if err != nil {
		return "", err
	}
	return info.ID, nil
}

// SubmitJobs submits a batch and returns the worker-side job ID. A
// load-shedding refusal is returned as *ErrWorkerBusy.
func (c *Client) SubmitJobs(ctx context.Context, jobs []pipeline.V1Job) (string, error) {
	var sub struct {
		ID string `json:"id"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/jobs", struct {
		Jobs []pipeline.V1Job `json:"jobs"`
	}{Jobs: jobs}, &sub)
	if err != nil {
		return "", err
	}
	return sub.ID, nil
}

// Page fetches one result page of a worker-side job.
func (c *Client) Page(ctx context.Context, jobID string, offset, limit int) (pipeline.JobView, error) {
	var v pipeline.JobView
	path := fmt.Sprintf("/v1/jobs/%s?offset=%d&limit=%d", jobID, offset, limit)
	err := c.do(ctx, http.MethodGet, path, nil, &v)
	return v, err
}

// Cancel requests cancellation of a worker-side job.
func (c *Client) Cancel(ctx context.Context, jobID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+jobID, nil, nil)
}

// Stats fetches the worker's raw /stats document.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/stats", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// errNotFound reports whether err is a worker 404 — after a worker
// restart (or an eviction) the job ID is gone, which the dispatcher
// treats like a death (requeue the jobs), not a transient to retry.
func errNotFound(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusNotFound
}
