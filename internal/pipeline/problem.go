package pipeline

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/analysis"
)

// ProblemDetails is the RFC 9457 (application/problem+json) error body
// of every fpserve /v1 error response. Validation problems carry
// field-level details in Errors, typed as analysis.SpecError — the same
// type the CLI renders — so API consumers see exactly which spec field
// of which job was wrong without parsing prose.
type ProblemDetails struct {
	// Type is a stable URN identifying the problem class.
	Type string `json:"type"`
	// Title is the short human-readable class description.
	Title string `json:"title"`
	// Status echoes the HTTP status code.
	Status int `json:"status"`
	// Detail describes this occurrence.
	Detail string `json:"detail,omitempty"`
	// Errors lists field-level validation failures, when the problem is
	// a validation problem.
	Errors []*analysis.SpecError `json:"errors,omitempty"`
}

// Problem type URNs.
const (
	problemValidation = "urn:fpserve:problem:validation"
	problemNotFound   = "urn:fpserve:problem:not-found"
	problemTooLarge   = "urn:fpserve:problem:request-too-large"
	problemOverloaded = "urn:fpserve:problem:overloaded"
	problemShutdown   = "urn:fpserve:problem:shutting-down"
	problemInternal   = "urn:fpserve:problem:internal-error"
)

// setRetryAfter attaches the client backoff hint to a load-shedding or
// transient-failure response. Retry-After takes whole seconds; the hint
// rounds up so a 250ms suggestion does not become "retry immediately".
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// writeProblem writes a problem+json response.
func writeProblem(w http.ResponseWriter, status int, typ, title, detail string, errs ...*analysis.SpecError) {
	w.Header().Set("Content-Type", "application/problem+json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ProblemDetails{
		Type:   typ,
		Title:  title,
		Status: status,
		Detail: detail,
		Errors: errs,
	})
}

// validationProblem writes a 400 validation problem whose field-level
// details are whatever SpecErrors the error chain carries: a bare
// SpecError becomes one detail entry; a specErrs list is passed
// through; anything else is detail-only.
func validationProblem(w http.ResponseWriter, detail string, errs []*analysis.SpecError) {
	writeProblem(w, http.StatusBadRequest, problemValidation, "invalid request", detail, errs...)
}

// notFoundProblem writes a 404 with the resource kind and id.
func notFoundProblem(w http.ResponseWriter, kind, id string) {
	writeProblem(w, http.StatusNotFound, problemNotFound, kind+" not found",
		"no "+kind+" with id "+id)
}
