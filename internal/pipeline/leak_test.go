package pipeline_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/pipeline"
)

// mustPath parses a target decision sequence.
func mustPath(t testing.TB, spec string) []instrument.Decision {
	t.Helper()
	ds, err := cli.ParsePath(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// boundsPair is a single broadcastable [lo, hi] bound.
func boundsPair(lo, hi float64) []opt.Bound {
	return []opt.Bound{{Lo: lo, Hi: hi}}
}

// stableGoroutines samples the goroutine count until it stops at or
// below want, or the deadline passes; it returns the last count.
func stableGoroutines(want int, deadline time.Duration) int {
	end := time.Now().Add(deadline)
	n := runtime.NumGoroutine()
	for time.Now().Before(end) {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	return n
}

// TestStreamCancelNoGoroutineLeak audits the worker pool for leaks: a
// batch cancelled mid-run must wind down every runner goroutine — the
// runners drain the queue marking jobs canceled, the in-flight jobs
// observe the context within one evaluation, and nothing blocks on the
// result channels.
func TestStreamCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	pl := pipeline.New(4)
	jobs := make([]pipeline.Job, 8)
	for i := range jobs {
		jobs[i] = pipeline.Job{
			Builtin: "fig2",
			Spec: analysis.Spec{
				Analysis: "reach", Seed: int64(i + 1),
				Starts: 1_000_000, Evals: 10_000_000, Workers: 2,
				Path:   mustPath(t, "0:t,1:t"),
				Bounds: boundsPair(100, 200), // makes 0:t unreachable → no zero
			},
		}
	}

	done := make(chan struct{})
	var got []pipeline.JobResult
	go func() {
		defer close(done)
		pl.Stream(ctx, jobs, func(r pipeline.JobResult) { got = append(got, r) })
	}()
	// Let at least one job get deep into minimization, then cancel.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Stream did not return within 30s of cancellation")
	}
	if len(got) != len(jobs) {
		t.Fatalf("Stream emitted %d of %d results", len(got), len(jobs))
	}
	for _, r := range got {
		if !r.Canceled {
			t.Errorf("job %d: Canceled=false after batch cancellation (error=%q)", r.Index, r.Error)
		}
	}

	// Every goroutine the batch spawned must be gone. A small slack
	// absorbs runtime/test-framework background goroutines.
	const slack = 2
	if after := stableGoroutines(before+slack, 10*time.Second); after > before+slack {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines: %d before, %d after cancelled batch\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}
