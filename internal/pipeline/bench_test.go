package pipeline_test

import (
	"context"
	"testing"

	"repro/internal/analysis"
	"repro/internal/gofront"
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/pipeline"
)

// benchJobs is a representative mixed batch over one FPL source: the
// shape an fpserve request takes. Spec budgets are small so the
// benchmark measures pipeline overhead + steady-state analysis work,
// not one long minimization.
func benchJobs(b *testing.B, src string) []pipeline.Job {
	b.Helper()
	bounds := []opt.Bound{{Lo: -100, Hi: 100}}
	specs := []analysis.Spec{
		{Analysis: "coverage", Seed: 2, Evals: 300, Stall: 2, Workers: 1, Bounds: bounds},
		{Analysis: "bva", Seed: 1, Starts: 2, Evals: 200, Workers: 1, Bounds: bounds},
		{Analysis: "overflow", Seed: 3, Evals: 300, Rounds: 4, Workers: 1},
		{Analysis: "nan", Seed: 5, Evals: 300, Rounds: 4, Workers: 1},
		{Analysis: "reach", Seed: 4, Starts: 2, Evals: 300, Workers: 1, Bounds: bounds,
			Path: []instrument.Decision{{Site: 0, Taken: true}}},
	}
	var jobs []pipeline.Job
	for i := 0; i < 16; i++ {
		spec := specs[i%len(specs)]
		spec.Seed += int64(i) // vary the work across the batch
		jobs = append(jobs, pipeline.Job{Source: src, Func: "prog", Spec: spec})
	}
	return jobs
}

// BenchmarkPipelineBatch measures batch throughput (jobs/sec) through
// the full registry + cache + scheduler stack, at 1 worker and at all
// CPUs. The module is compiled once on the first iteration and cached
// for the rest — the fpserve steady state.
func BenchmarkPipelineBatch(b *testing.B) {
	src := loadFixtures(b)["fig2.fpl"]
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"allcpus", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			jobs := benchJobs(b, src)
			pl := pipeline.New(cfg.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := pl.RunBatch(context.Background(), jobs)
				for _, r := range results {
					if r.Error != "" {
						b.Fatal(r.Error)
					}
				}
			}
			b.ReportMetric(float64(b.N*len(jobs))/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkModuleCache measures what the source-hash cache saves: a
// cold Program call pays lex/parse/lower + flat-code compilation, a hot
// one only hashes and forks an instance.
func BenchmarkModuleCache(b *testing.B) {
	src := loadFixtures(b)["sin_fig8.fpl"]
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := pipeline.NewModuleCache()
			if _, _, err := c.Program(gofront.LangFPL, src, "sin_dispatch", 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		c := pipeline.NewModuleCache()
		if _, _, err := c.Program(gofront.LangFPL, src, "sin_dispatch", 0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Program(gofront.LangFPL, src, "sin_dispatch", 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
