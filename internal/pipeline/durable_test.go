package pipeline_test

// Tests for the crash-safety layer: durable job journal round-trips,
// requeue-from-durable-offset, panic isolation, retry/backoff,
// admission control, SSE heartbeat/shutdown events, and the full
// httptest crash-recovery e2e (kill a durable server mid-execution,
// rebuild from its data dir, require the golden run's results).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/pipeline"
)

// quickBatchBody is a /v1 submission of n fast deterministic jobs.
func quickBatchBody(n int) string {
	var sb strings.Builder
	sb.WriteString(`{"jobs": [`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, `{"spec": {"analysis": "xsat", "seed": %d, "formula": "x < 1"}}`, i+1)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// quickJobs is the engine-level form of the same batch.
func quickJobs(n int) []pipeline.Job {
	jobs := make([]pipeline.Job, 0, n)
	for i := 0; i < n; i++ {
		var j pipeline.Job
		j.Spec.Analysis = "xsat"
		j.Spec.Seed = int64(i + 1)
		j.Spec.Formula = "x < 1"
		jobs = append(jobs, j)
	}
	return jobs
}

func norm(b []byte) string { return string(pipeline.NormalizeDurations(b)) }

// collectJob follows rec to completion and returns its normalized wire
// results plus the final status.
func collectJob(t testing.TB, rec *pipeline.JobRecord) ([]string, pipeline.JobStatus) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var got []string
	status := pipeline.FollowJob(ctx, rec, func(res []byte) { got = append(got, norm(res)) })
	if status == pipeline.JobRunning {
		t.Fatalf("job %s did not finish within the deadline", rec.ID)
	}
	return got, status
}

// TestDurableRestartRoundTrip: a graceful stop journals the
// clean-shutdown marker, and the next boot restores every finished job
// — results, status, ID — without re-executing anything.
func TestDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := pipeline.OpenStore(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if store.CleanShutdown() {
		t.Error("fresh journal reports a clean shutdown")
	}
	eng := pipeline.NewJobEngine(pipeline.New(2))
	eng.Store = store
	rec, err := eng.Submit(nil, quickJobs(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, status := collectJob(t, rec)
	if status != pipeline.JobCompleted || len(want) != 3 {
		t.Fatalf("golden run: status %q, %d results", status, len(want))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := pipeline.OpenStore(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if !store2.CleanShutdown() {
		t.Error("graceful stop did not leave the clean-shutdown marker")
	}
	eng2 := pipeline.NewJobEngine(pipeline.New(2))
	eng2.Store = store2
	restored, requeued := eng2.Recover(store2.Recovered())
	if restored != 1 || requeued != 0 {
		t.Fatalf("recover after clean stop: restored %d, requeued %d (want 1, 0)", restored, requeued)
	}
	rec2, ok := eng2.Get(rec.ID)
	if !ok {
		t.Fatalf("job %s not restored", rec.ID)
	}
	got, status := collectJob(t, rec2)
	if status != pipeline.JobCompleted {
		t.Errorf("restored status %q", status)
	}
	if len(got) != len(want) {
		t.Fatalf("restored %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("restored result %d differs:\n%s\nvs\n%s", i, want[i], got[i])
		}
	}
	// A restored ID is never reissued.
	rec3, err := eng2.Submit(nil, quickJobs(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.ID == rec.ID {
		t.Errorf("recovered engine reissued job ID %s", rec.ID)
	}
	collectJob(t, rec3)
	eng2.Shutdown(ctx)
}

// TestCrashRequeueFromDurableOffset: a journal holding a submit record
// and a durable result prefix (the state a crash mid-batch leaves)
// requeues the job, re-executes only the suffix, and the combined
// result sequence is byte-identical to an uninterrupted run.
func TestCrashRequeueFromDurableOffset(t *testing.T) {
	jobs := quickJobs(4)
	golden := pipeline.New(2).RunBatch(context.Background(), jobs)
	if len(golden) != 4 {
		t.Fatalf("golden run produced %d results", len(golden))
	}
	wire := make([]json.RawMessage, len(golden))
	for i, r := range golden {
		wire[i] = pipeline.MarshalResult(r)
	}

	// Hand-build the crashed journal: accepted, started, two durable
	// results, no terminal record.
	dir := t.TempDir()
	store, err := pipeline.OpenStore(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	created := time.Now().Add(-time.Second)
	if err := store.JobSubmitted("job-1", jobs, 0, created); err != nil {
		t.Fatal(err)
	}
	if err := store.JobStarted("job-1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := store.ResultAppended("job-1", i, wire[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := pipeline.OpenStore(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.CleanShutdown() {
		t.Error("crashed journal reports a clean shutdown")
	}
	recovered := store2.Recovered()
	if len(recovered) != 1 || len(recovered[0].Results) != 2 || recovered[0].Status != pipeline.JobRunning {
		t.Fatalf("recovered set: %+v", recovered)
	}
	eng := pipeline.NewJobEngine(pipeline.New(2))
	eng.Store = store2
	if restored, requeued := eng.Recover(recovered); restored != 1 || requeued != 1 {
		t.Fatalf("restored %d, requeued %d (want 1, 1)", restored, requeued)
	}
	rec, ok := eng.Get("job-1")
	if !ok {
		t.Fatal("requeued job missing from the table")
	}
	got, status := collectJob(t, rec)
	if status != pipeline.JobCompleted {
		t.Fatalf("requeued job ended %q", status)
	}
	if len(got) != len(wire) {
		t.Fatalf("requeued job has %d results, want %d", len(got), len(wire))
	}
	for i := range got {
		if got[i] != norm(wire[i]) {
			t.Errorf("result %d differs from the uninterrupted run:\n%s\nvs\n%s", i, norm(wire[i]), got[i])
		}
	}
	if st := eng.Stats(); st.Requeued != 1 {
		t.Errorf("stats: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	eng.Shutdown(ctx)
}

// TestPanicIsolation: a panicking job fails alone — with a stable
// stack digest in its error — while the rest of the batch completes.
func TestPanicIsolation(t *testing.T) {
	run := func() []pipeline.JobResult {
		pl := pipeline.New(2)
		pl.InjectPanic = func(idx int, j pipeline.Job) string {
			if idx == 1 {
				return "injected test panic"
			}
			return ""
		}
		out := pl.RunBatch(context.Background(), quickJobs(3))
		if n := pl.Panics(); n != 1 {
			t.Fatalf("panic counter = %d, want 1", n)
		}
		return out
	}
	out := run()
	if len(out) != 3 {
		t.Fatalf("%d results", len(out))
	}
	for i, r := range out {
		if i == 1 {
			if !strings.Contains(r.Error, "internal error: panic: injected test panic") ||
				!strings.Contains(r.Error, "[stack sha256:") {
				t.Errorf("panic result error = %q", r.Error)
			}
			continue
		}
		if r.Error != "" {
			t.Errorf("job %d contaminated by the panic: %q", i, r.Error)
		}
	}
	// The digest is stable across runs (addresses and goroutine IDs are
	// normalized out), so crash-recovery re-executions stay
	// byte-identical even for panicked jobs.
	out2 := run()
	if out[1].Error != out2[1].Error {
		t.Errorf("panic digest not deterministic:\n%s\nvs\n%s", out[1].Error, out2[1].Error)
	}
}

// transientTestErr lets the test stub mark failures retryable via the
// same interface the journal uses.
type transientTestErr struct{ msg string }

func (e transientTestErr) Error() string   { return e.msg }
func (e transientTestErr) Transient() bool { return true }

// TestRetryBackoff: Retry retries only transient failures, respects the
// attempt budget, and the jittered schedule is deterministic in its
// seed and capped at Max (+25% jitter).
func TestRetryBackoff(t *testing.T) {
	ctx := context.Background()
	b := pipeline.Backoff{Base: time.Microsecond, Max: time.Millisecond, Attempts: 4, Seed: 7}

	calls := 0
	err := pipeline.Retry(ctx, "op", b, func() error {
		calls++
		if calls < 3 {
			return transientTestErr{"flaky"}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("transient retry: err %v after %d calls", err, calls)
	}

	calls = 0
	permanent := errors.New("permanent")
	err = pipeline.Retry(ctx, "op", b, func() error { calls++; return permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("permanent failure retried: err %v after %d calls", err, calls)
	}

	calls = 0
	err = pipeline.Retry(ctx, "op", b, func() error { calls++; return transientTestErr{"always"} })
	if err == nil || calls != 4 {
		t.Fatalf("exhaustion: err %v after %d calls (want 4)", err, calls)
	}
	if !pipeline.Retryable(err) {
		t.Error("exhausted transient error lost its Retryable classification")
	}
	var re *pipeline.RetryableError
	if !pipeline.Retryable(&pipeline.RetryableError{Op: "x", Err: permanent}) || errors.As(permanent, &re) {
		t.Error("RetryableError classification broken")
	}

	for attempt := 0; attempt < 10; attempt++ {
		d1, d2 := b.Delay(attempt), b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("Delay(%d) not deterministic: %v vs %v", attempt, d1, d2)
		}
		if max := b.Max + b.Max/4; d1 > max || d1 <= 0 {
			t.Errorf("Delay(%d) = %v outside (0, %v]", attempt, d1, max)
		}
	}
}

// stubStore is a JobStore with scripted failures, for exercising the
// admission-control and retry surfaces without a real journal.
type stubStore struct {
	backlog    atomic.Int64
	failSubmit atomic.Bool
	submits    atomic.Int64
}

func (s *stubStore) JobSubmitted(id string, jobs []pipeline.Job, timeout time.Duration, created time.Time) error {
	s.submits.Add(1)
	if s.failSubmit.Load() {
		return transientTestErr{"journal under injected pressure"}
	}
	return nil
}
func (s *stubStore) JobStarted(string) error                          { return nil }
func (s *stubStore) ResultAppended(string, int, json.RawMessage) error { return nil }
func (s *stubStore) JobTerminal(string, pipeline.JobStatus, string, time.Time) error {
	return nil
}
func (s *stubStore) JobDropped(string) error { return nil }
func (s *stubStore) Backlog() int64          { return s.backlog.Load() }

// TestAdmissionControl429: crossing the in-flight or journal-backlog
// watermark refuses the submission with 429 problem+json and a
// Retry-After hint, and acceptance resumes once pressure clears; a
// persistent transient journal failure surfaces as 503 + Retry-After.
func TestAdmissionControl429(t *testing.T) {
	srv, ts := v1Server(t, 2)
	store := &stubStore{}
	srv.Engine.Store = store
	srv.Engine.MaxInFlight = 1
	srv.Engine.RetryAfter = 2 * time.Second

	resp, data := doJSON(t, "POST", ts.URL+"/v1/jobs", longReachBody(""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, data)
	}
	long := decode[struct {
		ID string `json:"id"`
	}](t, data)

	resp, data = doJSON(t, "POST", ts.URL+"/v1/jobs", quickBatchBody(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over the in-flight watermark: status %d, want 429: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q", got, "2")
	}
	p := decode[pipeline.ProblemDetails](t, data)
	if p.Type != "urn:fpserve:problem:overloaded" || p.Status != 429 {
		t.Errorf("problem: %+v", p)
	}
	// The legacy endpoint sheds the same way.
	resp, _ = doJSON(t, "POST", ts.URL+"/analyze",
		`{"jobs": [{"spec": {"analysis": "xsat", "seed": 1, "formula": "x < 1"}}]}`)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Errorf("legacy analyze over watermark: status %d, Retry-After %q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Cancel to clear the pressure; acceptance resumes.
	doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+long.ID, "")
	pollJob(t, ts.URL, long.ID, 30*time.Second, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCanceled
	})
	resp, data = doJSON(t, "POST", ts.URL+"/v1/jobs", quickBatchBody(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("after pressure cleared: status %d: %s", resp.StatusCode, data)
	}

	// Journal backlog watermark.
	srv.Engine.MaxInFlight = 0
	srv.Engine.MaxStoreBacklog = 100
	store.backlog.Store(1000)
	resp, data = doJSON(t, "POST", ts.URL+"/v1/jobs", quickBatchBody(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over the backlog watermark: status %d: %s", resp.StatusCode, data)
	}
	store.backlog.Store(0)

	// A transient journal failure that exhausts its retries is a 503
	// with a hint — the job was never accepted, so nothing is lost.
	store.failSubmit.Store(true)
	resp, data = doJSON(t, "POST", ts.URL+"/v1/jobs", quickBatchBody(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("journal failure: status %d, want 503: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("transient journal failure carries no Retry-After hint")
	}
	if n := store.submits.Load(); n < 3 {
		t.Errorf("transient submit failure was tried %d times — no retry happened", n)
	}
	store.failSubmit.Store(false)

	if st := srv.Engine.Stats(); st.Shed < 2 {
		t.Errorf("shed counter: %+v", st)
	}
}

// TestSSEHeartbeatAndShutdownEvents: a quiet running job emits periodic
// heartbeat events, and a server drain delivers a terminal "shutdown"
// event before "done".
func TestSSEHeartbeatAndShutdownEvents(t *testing.T) {
	srv, ts := v1Server(t, 2)
	srv.Heartbeat = 20 * time.Millisecond

	resp, data := doJSON(t, "POST", ts.URL+"/v1/jobs", longReachBody(""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	sub := decode[struct {
		ID string `json:"id"`
	}](t, data)

	// Drain the server while the SSE subscriber is attached.
	go func() {
		time.Sleep(250 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	events := readSSE(t, ts.URL+"/v1/jobs/"+sub.ID+"/events", time.Minute)

	counts := map[string]int{}
	order := make([]string, 0, len(events))
	for _, ev := range events {
		counts[ev.name]++
		order = append(order, ev.name)
	}
	if counts["heartbeat"] == 0 {
		t.Errorf("no heartbeat events in %v", order)
	}
	if counts["shutdown"] != 1 || counts["done"] != 1 {
		t.Fatalf("event counts %v (want one shutdown, one done)", counts)
	}
	if last := order[len(order)-1]; last != "done" || order[len(order)-2] != "shutdown" {
		t.Errorf("terminal event order %v: want ... shutdown, done", order)
	}
	done := decode[pipeline.JobView](t, []byte(events[len(events)-1].data))
	if done.Status != pipeline.JobCanceled || done.Reason != "server shutdown" {
		t.Errorf("done event: %+v", done)
	}
}

// durableServer builds an httptest server over a journal in dir,
// recovering whatever the journal holds before serving.
func durableServer(t testing.TB, dir string) (*pipeline.Server, *pipeline.DurableStore, *httptest.Server) {
	t.Helper()
	store, err := pipeline.OpenStore(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := pipeline.NewServer(2)
	srv.Engine.Store = store
	srv.Engine.Recover(store.Recovered())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
		store.Close()
	})
	return srv, store, ts
}

// TestCrashRecoveryE2E is the satellite end-to-end: submit a multi-job
// batch to a durable server, hard-stop it mid-execution, rebuild from
// the same data dir, and require the recovered job to reach the golden
// run's terminal state with byte-identical results through pagination
// and SSE replay alike.
func TestCrashRecoveryE2E(t *testing.T) {
	const batchSize = 6
	body := quickBatchBody(batchSize)

	// Golden run on a volatile server: final results and SSE replay.
	_, goldenTS := v1Server(t, 2)
	resp, data := doJSON(t, "POST", goldenTS.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("golden submit: status %d: %s", resp.StatusCode, data)
	}
	goldenID := decode[struct {
		ID string `json:"id"`
	}](t, data).ID
	pollJob(t, goldenTS.URL, goldenID, time.Minute, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCompleted
	})
	goldenResults := pagedResults(t, goldenTS.URL, goldenID, batchSize)
	goldenSSE := sseResults(t, goldenTS.URL, goldenID)

	// Durable server: submit, then die mid-execution. Kill freezes the
	// journal exactly as a SIGKILL would cut its writes.
	dir := t.TempDir()
	srvA, _, tsA := durableServer(t, dir)
	resp, data = doJSON(t, "POST", tsA.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("durable submit: status %d: %s", resp.StatusCode, data)
	}
	id := decode[struct {
		ID string `json:"id"`
	}](t, data).ID
	srvA.Engine.Kill()
	tsA.Close()

	// Rebuild from the data dir. The journal must not claim a clean
	// shutdown, the job must still exist, and it must reach the golden
	// terminal state.
	_, storeB, tsB := durableServer(t, dir)
	if storeB.CleanShutdown() {
		t.Error("killed server left a clean-shutdown marker")
	}
	final := pollJob(t, tsB.URL, id, time.Minute, func(v pipeline.JobView) bool {
		return v.Status != pipeline.JobRunning
	})
	if final.Status != pipeline.JobCompleted || final.Completed != batchSize {
		t.Fatalf("recovered job: %+v", final)
	}

	got := pagedResults(t, tsB.URL, id, batchSize)
	for i := range goldenResults {
		if got[i] != goldenResults[i] {
			t.Errorf("paged result %d differs from the golden run:\n%s\nvs\n%s",
				i, goldenResults[i], got[i])
		}
	}
	gotSSE := sseResults(t, tsB.URL, id)
	if len(gotSSE) != len(goldenSSE) {
		t.Fatalf("SSE replay: %d results, golden %d", len(gotSSE), len(goldenSSE))
	}
	for i := range gotSSE {
		if gotSSE[i] != goldenSSE[i] {
			t.Errorf("SSE result %d differs from the golden run:\n%s\nvs\n%s",
				i, goldenSSE[i], gotSSE[i])
		}
	}
}

// pagedResults walks GET /v1/jobs/{id} pagination with a small page and
// returns every normalized result.
func pagedResults(t testing.TB, base, id string, total int) []string {
	t.Helper()
	var out []string
	offset := 0
	for {
		resp, data := doJSON(t, "GET",
			fmt.Sprintf("%s/v1/jobs/%s?offset=%d&limit=2", base, id, offset), "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page at %d: status %d: %s", offset, resp.StatusCode, data)
		}
		v := decode[pipeline.JobView](t, data)
		if len(v.Results) > 2 {
			t.Fatalf("page at %d has %d results, limit was 2", offset, len(v.Results))
		}
		for _, raw := range v.Results {
			out = append(out, norm(raw))
		}
		if v.NextOffset == nil {
			break
		}
		offset = *v.NextOffset
	}
	if len(out) != total {
		t.Fatalf("pagination yielded %d results, want %d", len(out), total)
	}
	return out
}

// sseResults replays the job's SSE stream and returns the normalized
// result-event payloads.
func sseResults(t testing.TB, base, id string) []string {
	t.Helper()
	var out []string
	for _, ev := range readSSE(t, base+"/v1/jobs/"+id+"/events", time.Minute) {
		if ev.name == "result" {
			out = append(out, norm([]byte(ev.data)))
		}
	}
	return out
}
