// Package pipeline is the batched analysis layer on top of the
// analysis registry: it fans a batch of ⟨program, analysis, spec⟩ jobs
// over a worker pool, with a compiled-module cache keyed by source hash
// so repeated requests for the same FPL source skip compilation
// entirely. Jobs are independent — each runs over its own program
// instance with its own spec-level parallelism (reusing the
// opt.ParallelStarts determinism contract) — so batch results are
// bit-identical for every worker count. The package also hosts the
// fpserve HTTP handler (server.go).
package pipeline

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"regexp"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/gofront"
	"repro/internal/interp"
	"repro/internal/opt"
)

// Job is one unit of batch work: a program (built-in name or inline FPL
// source) plus the spec of the analysis to run on it.
type Job struct {
	// Builtin names a built-in benchmark program.
	Builtin string `json:"builtin,omitempty"`
	// Source is inline source (compiled through the module cache).
	Source string `json:"source,omitempty"`
	// Lang names the language Source is written in: "fpl" (the
	// default) or "go". Ignored for builtin programs.
	Lang string `json:"lang,omitempty"`
	// Func selects the function within Source (empty = first declared).
	Func string `json:"func,omitempty"`
	// Spec selects and configures the analysis. Formula-based analyses
	// (xsat) need no program fields.
	Spec analysis.Spec `json:"spec"`
}

// JobResult is the outcome of one job. Report is the typed analysis
// report; it serializes under its concrete type's JSON shape.
type JobResult struct {
	// Index is the job's position in the batch; results are delivered
	// in index order.
	Index int `json:"index"`
	// Analysis is the canonical analysis name.
	Analysis string `json:"analysis"`
	// Program is the resolved program name, when the analysis ran on
	// one.
	Program string `json:"program,omitempty"`
	// CacheHit reports that the job's module came from the cache. It
	// depends on scheduling order under concurrency, so it is excluded
	// from the wire format — streamed batch output stays bit-identical
	// for every worker count; cache effectiveness is served by /stats.
	CacheHit bool `json:"-"`
	// Summary is the report's one-line outcome.
	Summary string `json:"summary,omitempty"`
	// Failed mirrors Report.Failed (path unreached, formula undecided).
	Failed bool `json:"failed,omitempty"`
	// Error is set when the job could not run.
	Error string `json:"error,omitempty"`
	// Canceled reports the job was cancelled (or hit its deadline): it
	// either never ran, or ran partially — Report then holds whatever
	// the analysis had produced when the context fired.
	Canceled bool `json:"canceled,omitempty"`
	// Report is the typed analysis report.
	Report analysis.Report `json:"report,omitempty"`
}

// MarshalResult encodes a result as JSON. Reports containing
// non-finite floats (a possibility for analyses hunting overflow) are
// not representable in JSON; such results degrade to summary-only
// rather than failing the batch.
func MarshalResult(r JobResult) []byte {
	b, err := json.Marshal(r)
	if err != nil {
		r.Report = nil
		if r.Error == "" {
			r.Error = "report not JSON-serializable: " + err.Error()
		}
		b, _ = json.Marshal(r)
	}
	return b
}

// durationField matches the wall-clock duration of the site-hunt
// reports — the only nondeterministic bytes of a wire result.
var durationField = regexp.MustCompile(`"duration":\d+`)

// NormalizeDurations masks the wall-clock duration fields of a wire
// result, leaving every seed-deterministic byte intact. Byte-exact
// consumers of MarshalResult output (the fuzz harness's determinism
// oracle, the golden tests) compare through it; if another
// nondeterministic field is ever added to a report, extend this
// function — it is the single definition of "what may differ between
// identical runs".
func NormalizeDurations(b []byte) []byte {
	return durationField.ReplaceAll(b, []byte(`"duration":0`))
}

// Pipeline schedules batches of analysis jobs over a worker pool with a
// shared module cache. The pool is shared by every Stream/RunBatch call
// (and, under fpserve, every in-flight request), so Workers is a global
// concurrency bound. The zero value is not ready; use New.
type Pipeline struct {
	// Workers bounds concurrently running jobs; 0 selects
	// runtime.NumCPU(). Worker count never changes results, only
	// wall-clock time.
	Workers int
	// Cache is the compiled-module cache, shared by every batch (and,
	// under fpserve, every request).
	Cache *ModuleCache
	// InjectPanic is a fault-injection hook: when non-nil and returning
	// a non-empty message for a job, that job panics with it inside the
	// recover boundary — exercising the isolation path without a real
	// bug. Nil in production.
	InjectPanic func(idx int, j Job) string
	// PanicHook observes recovered panics (full stack included) — the
	// server logs them; the wire result carries only the digest.
	PanicHook func(idx int, j Job, v any, stack []byte)

	semOnce sync.Once
	sem     chan struct{}
	panics  atomic.Int64
}

// New returns a pipeline with a fresh module cache.
func New(workers int) *Pipeline {
	return &Pipeline{Workers: workers, Cache: NewModuleCache()}
}

// slots returns the shared job-concurrency semaphore.
func (pl *Pipeline) slots() chan struct{} {
	pl.semOnce.Do(func() {
		w := pl.Workers
		if w <= 0 {
			w = runtime.NumCPU()
		}
		pl.sem = make(chan struct{}, w)
	})
	return pl.sem
}

// Panics reports how many jobs hit the recover boundary since start.
func (pl *Pipeline) Panics() int64 { return pl.panics.Load() }

// stackAddr matches the run-varying tokens of a goroutine stack trace
// (heap addresses, frame offsets, goroutine numbers). stackDigest
// strips them so the same panic site digests identically across runs —
// the crash-recovery harness compares re-executed results
// byte-for-byte, and a digest that embedded addresses would break that
// for injected panics.
var stackAddr = regexp.MustCompile(`0x[0-9a-f]+|goroutine \d+`)

// stackDigest condenses a panic stack to a short stable fingerprint:
// the client-visible correlation key for the full stack the server
// logs. The goroutine header (varying ID) and all addresses are
// normalized away.
func stackDigest(stack []byte) string {
	norm := stack
	if i := bytes.IndexByte(norm, '\n'); i >= 0 {
		norm = norm[i+1:] // drop "goroutine N [running]:"
	}
	norm = stackAddr.ReplaceAll(norm, []byte("0x?"))
	sum := sha256.Sum256(norm)
	return fmt.Sprintf("%x", sum[:6])
}

// runJobSafe is RunJob behind the per-job recover boundary: a panic —
// a poisoned program tripping a bug in an analysis, or an injected
// fault — fails that one job with an internal-error result carrying
// the stack digest, instead of unwinding the worker goroutine and
// killing the whole server.
func (pl *Pipeline) runJobSafe(ctx context.Context, idx int, j Job) (res JobResult) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		stack := debug.Stack()
		pl.panics.Add(1)
		if pl.PanicHook != nil {
			pl.PanicHook(idx, j, v, stack)
		}
		res = JobResult{
			Index:    idx,
			Analysis: j.Spec.Analysis,
			Failed:   true,
			Error:    fmt.Sprintf("internal error: panic: %v [stack sha256:%s]", v, stackDigest(stack)),
		}
	}()
	if fp := pl.InjectPanic; fp != nil {
		if msg := fp(idx, j); msg != "" {
			panic(msg)
		}
	}
	return pl.RunJob(ctx, idx, j)
}

// RunJob executes one job. The context cancels it cooperatively at
// weak-distance-evaluation granularity: a job cancelled mid-analysis
// returns promptly with a partial report and Canceled set.
func (pl *Pipeline) RunJob(ctx context.Context, idx int, j Job) JobResult {
	res := JobResult{Index: idx, Analysis: j.Spec.Analysis}
	a, err := analysis.Lookup(j.Spec.Analysis)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Analysis = a.Name()

	var in analysis.Input
	spec := j.Spec
	if a.Knobs().Program {
		switch {
		case j.Builtin != "" && j.Source != "":
			res.Error = "use either builtin or source, not both"
			return res
		case j.Builtin != "":
			p, err := cli.Builtin(j.Builtin)
			if err != nil {
				res.Error = err.Error()
				return res
			}
			in.Program = p
			in.SF = cli.SFForBuiltin(j.Builtin)
		case j.Source != "":
			eng, err := interp.ParseEngine(spec.Engine)
			if err != nil {
				res.Error = (&analysis.SpecError{Field: "engine", Value: spec.Engine, Reason: err.Error()}).Error()
				return res
			}
			lg, err := gofront.ParseLang(j.Lang)
			if err != nil {
				res.Error = (&analysis.SpecError{Field: "lang", Value: j.Lang, Reason: err.Error()}).Error()
				return res
			}
			p, hit, err := pl.Cache.Program(lg, j.Source, j.Func, eng)
			if err != nil {
				res.Error = err.Error()
				return res
			}
			in.Program = p
			res.CacheHit = hit
		default:
			res.Error = fmt.Sprintf("analysis %q needs a program: set builtin or source", a.Name())
			return res
		}
		res.Program = in.Program.Name
		spec.Bounds, err = opt.BroadcastBounds(spec.Bounds, in.Program.Dim)
		if err != nil {
			res.Error = (&analysis.SpecError{Field: "bounds", Reason: err.Error()}).Error()
			return res
		}
	}

	rep, err := a.Run(ctx, in, spec)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Report = rep
	res.Summary = rep.Summary()
	res.Failed = rep.Failed()
	// The report's own flag, not ctx.Err(): a context that fires after
	// the analysis completed must not mislabel a complete report as
	// partial.
	res.Canceled = rep.Interrupted()
	return res
}

// Stream runs the batch over the worker pool and delivers results to
// emit in job order, each as soon as it (and all its predecessors) is
// done. Results are bit-identical for every Workers value.
//
// The context cancels the batch: jobs not yet dispatched when ctx fires
// are reported as canceled instead of run (so an abandoned request
// stops occupying the shared worker pool), and jobs already running are
// cancelled at weak-distance-evaluation granularity, returning partial
// reports. Pass context.Background() for the uncancellable form.
func (pl *Pipeline) Stream(ctx context.Context, jobs []Job, emit func(JobResult)) {
	n := len(jobs)
	if n == 0 {
		return
	}
	sem := pl.slots()
	done := make([]chan JobResult, n)
	for i := range done {
		done[i] = make(chan JobResult, 1)
	}
	queue := make(chan int, n)
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
	// A bounded set of runner goroutines pulls job indices; each job
	// additionally holds a slot of the pipeline-wide semaphore, so
	// concurrency is bounded both per call and across calls.
	runners := cap(sem)
	if runners > n {
		runners = n
	}
	for w := 0; w < runners; w++ {
		go func() {
			for i := range queue {
				// Acquire a pool slot or observe cancellation, whichever
				// comes first: a dead request must not consume a slot
				// that frees up later.
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					done[i] <- JobResult{Index: i, Analysis: jobs[i].Spec.Analysis,
						Canceled: true, Error: "canceled: " + ctx.Err().Error()}
					continue
				}
				if err := ctx.Err(); err != nil {
					<-sem
					done[i] <- JobResult{Index: i, Analysis: jobs[i].Spec.Analysis,
						Canceled: true, Error: "canceled: " + err.Error()}
					continue
				}
				done[i] <- pl.runJobSafe(ctx, i, jobs[i])
				<-sem
			}
		}()
	}
	for i := 0; i < n; i++ {
		emit(<-done[i])
	}
}

// RunBatch runs the batch and returns all results in job order.
func (pl *Pipeline) RunBatch(ctx context.Context, jobs []Job) []JobResult {
	out := make([]JobResult, 0, len(jobs))
	pl.Stream(ctx, jobs, func(r JobResult) { out = append(out, r) })
	return out
}
