package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobStatus is the lifecycle state of a submitted job batch.
type JobStatus string

// Job lifecycle states. There is deliberately no "queued": submission
// hands the batch to the shared worker pool immediately (the pool's
// semaphore is the queue), so a job is running until it is finished.
const (
	JobRunning   JobStatus = "running"
	JobCompleted JobStatus = "completed"
	JobCanceled  JobStatus = "canceled"
)

// Engine defaults.
const (
	// DefaultMaxTrackedJobs bounds the job table.
	DefaultMaxTrackedJobs = 256
	// DefaultJobTTL is how long a finished job's results stay
	// retrievable before eviction.
	DefaultJobTTL = 15 * time.Minute
)

// Engine errors, surfaced by Submit.
var (
	// ErrShuttingDown: the engine no longer accepts jobs.
	ErrShuttingDown = errors.New("server is shutting down")
	// ErrJobTableFull: the table holds MaxTrackedJobs unfinished jobs.
	ErrJobTableFull = errors.New("job table full: all tracked jobs are still running")
)

// Cancellation causes, readable in JobView.Reason.
var (
	errCanceledByClient = errors.New("canceled by client")
	errClientGone       = errors.New("client disconnected")
	errShutdown         = errors.New("server shutdown")
)

// JobRecord tracks one submitted batch: its results as they stream in,
// its lifecycle state, and the cancel handle that makes DELETE and
// shutdown land inside the minimizers within one objective evaluation.
type JobRecord struct {
	// ID is the engine-assigned job identifier.
	ID string
	// Created is the submission time.
	Created time.Time
	// Total is the number of jobs in the batch.
	Total int

	cancel context.CancelCauseFunc

	mu       sync.Mutex
	results  []JobResult
	status   JobStatus
	reason   string
	finished time.Time
	changed  chan struct{} // closed on every append and on finish
}

// append records one result and wakes every waiter.
func (rec *JobRecord) append(r JobResult) {
	rec.mu.Lock()
	rec.results = append(rec.results, r)
	if rec.status == JobRunning {
		close(rec.changed)
		rec.changed = make(chan struct{})
	}
	rec.mu.Unlock()
}

// finish seals the record. The changed channel stays closed forever, so
// late subscribers wake immediately.
func (rec *JobRecord) finish(cause error) {
	rec.mu.Lock()
	if cause != nil {
		rec.status = JobCanceled
		rec.reason = cause.Error()
	} else {
		rec.status = JobCompleted
	}
	rec.finished = time.Now()
	close(rec.changed)
	rec.mu.Unlock()
}

// next returns the results from index from on, the current status, and
// a channel that signals the next change (closed already if the record
// is finished).
func (rec *JobRecord) next(from int) ([]JobResult, JobStatus, <-chan struct{}) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var out []JobResult
	if from < len(rec.results) {
		out = append(out, rec.results[from:]...)
	}
	return out, rec.status, rec.changed
}

// JobView is the wire snapshot of a job record: status plus one page of
// results.
type JobView struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// Jobs is the batch size; Completed the number of results so far.
	Jobs      int        `json:"jobs"`
	Completed int        `json:"completed"`
	Created   time.Time  `json:"created"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Reason explains a cancellation ("canceled by client", "context
	// deadline exceeded", "server shutdown", ...).
	Reason string `json:"reason,omitempty"`
	// Offset/Results are the requested result page, each result encoded
	// exactly as the NDJSON surface encodes it (MarshalResult, which
	// degrades non-JSON-serializable reports to summary-only instead of
	// failing the response); NextOffset is set when more results exist
	// beyond the page.
	Offset     int               `json:"offset"`
	Results    []json.RawMessage `json:"results"`
	NextOffset *int              `json:"nextOffset,omitempty"`
}

// Header snapshots the record without encoding any results (Results is
// nil). Listing and event surfaces use it so a large result set is
// never marshalled just to be thrown away.
func (rec *JobRecord) Header() JobView {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	v := JobView{
		ID:        rec.ID,
		Status:    rec.status,
		Jobs:      rec.Total,
		Completed: len(rec.results),
		Created:   rec.Created,
		Reason:    rec.reason,
	}
	if rec.status != JobRunning {
		t := rec.finished
		v.Finished = &t
	}
	return v
}

// View snapshots the record with the result page [offset, offset+limit).
// limit <= 0 means no limit.
func (rec *JobRecord) View(offset, limit int) JobView {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	v := JobView{
		ID:        rec.ID,
		Status:    rec.status,
		Jobs:      rec.Total,
		Completed: len(rec.results),
		Created:   rec.Created,
		Reason:    rec.reason,
		Offset:    offset,
		Results:   []json.RawMessage{},
	}
	if rec.status != JobRunning {
		t := rec.finished
		v.Finished = &t
	}
	if offset < 0 {
		offset = 0
		v.Offset = 0
	}
	if offset < len(rec.results) {
		end := len(rec.results)
		if limit > 0 && offset+limit < end {
			end = offset + limit
		}
		for _, r := range rec.results[offset:end] {
			v.Results = append(v.Results, json.RawMessage(MarshalResult(r)))
		}
		if end < len(rec.results) {
			next := end
			v.NextOffset = &next
		}
	}
	return v
}

// FollowJob delivers every result of rec to emit in order — existing
// results first (late subscribers replay the full sequence), then new
// ones as they land — until the record finishes or ctx fires. It
// returns the record's final status, or JobRunning when ctx ended the
// subscription first. Both streaming surfaces (the legacy NDJSON
// response and the /v1 SSE endpoint) follow through here.
func FollowJob(ctx context.Context, rec *JobRecord, emit func(JobResult)) JobStatus {
	offset := 0
	for {
		results, status, changed := rec.next(offset)
		for _, res := range results {
			emit(res)
		}
		offset += len(results)
		if len(results) > 0 {
			continue // drain fully before blocking
		}
		if status != JobRunning {
			return status
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return JobRunning
		}
	}
}

// EngineStats is the job engine's counter snapshot.
type EngineStats struct {
	// Submitted counts accepted batches; Canceled those that ended
	// cancelled; Active those still running (tracked or not); Tracked
	// the table size.
	Submitted int64 `json:"submitted"`
	Canceled  int64 `json:"canceled"`
	Active    int   `json:"active"`
	Tracked   int   `json:"tracked"`
}

// JobEngine runs submitted batches asynchronously over one shared
// pipeline and tracks them in a bounded, TTL-evicted table. It is the
// single execution path of fpserve: the /v1 async API and the legacy
// synchronous /analyze endpoint both submit here, so they share the
// worker pool, the module cache, and the cancellation plumbing.
type JobEngine struct {
	// MaxTrackedJobs bounds the job table (0 = DefaultMaxTrackedJobs).
	MaxTrackedJobs int
	// TTL is the retention of finished jobs (0 = DefaultJobTTL).
	TTL time.Duration

	pl      *Pipeline
	baseCtx context.Context
	stop    context.CancelFunc

	mu        sync.Mutex
	records   map[string]*JobRecord
	order     []string // insertion order, for eviction scans
	seq       int64
	accepting bool
	wg        sync.WaitGroup

	submitted atomic.Int64
	canceled  atomic.Int64
	running   atomic.Int64
}

// NewJobEngine returns an accepting engine over pl.
func NewJobEngine(pl *Pipeline) *JobEngine {
	ctx, cancel := context.WithCancel(context.Background())
	return &JobEngine{
		pl:        pl,
		baseCtx:   ctx,
		stop:      cancel,
		records:   map[string]*JobRecord{},
		accepting: true,
	}
}

func (e *JobEngine) maxTracked() int {
	if e.MaxTrackedJobs > 0 {
		return e.MaxTrackedJobs
	}
	return DefaultMaxTrackedJobs
}

func (e *JobEngine) ttl() time.Duration {
	if e.TTL > 0 {
		return e.TTL
	}
	return DefaultJobTTL
}

// Submit accepts a batch, starts it on the shared pipeline, and tracks
// it in the job table (so /v1 clients can poll, stream, and cancel it
// by ID), returning immediately with its record.
//
// The job's context is a child of the engine (so shutdown cancels it),
// bounded by timeout when positive (the per-request deadline), and —
// when parent is non-nil — additionally tied to parent: a parent's
// cancellation cancels the batch. The async API passes nil because a
// /v1 job outlives the submission request by design.
func (e *JobEngine) Submit(parent context.Context, jobs []Job, timeout time.Duration) (*JobRecord, error) {
	return e.submit(parent, jobs, timeout, true)
}

// SubmitUntracked is Submit for batches whose results are delivered
// out-of-band: the record never enters the job table (its client never
// learns a job ID, so retention would be pure leak) and does not count
// against MaxTrackedJobs — the legacy synchronous /analyze endpoint,
// whose concurrency is bounded by its open connections, submits here.
// Shutdown still cancels it (the job context is a child of the
// engine's), and it still shares the worker pool and counters.
func (e *JobEngine) SubmitUntracked(parent context.Context, jobs []Job) (*JobRecord, error) {
	return e.submit(parent, jobs, 0, false)
}

func (e *JobEngine) submit(parent context.Context, jobs []Job, timeout time.Duration, track bool) (*JobRecord, error) {
	e.mu.Lock()
	if !e.accepting {
		e.mu.Unlock()
		return nil, ErrShuttingDown
	}
	e.sweepLocked(time.Now())
	if track && len(e.records) >= e.maxTracked() {
		// TTL didn't free a slot: evict the oldest finished job to make
		// room. Only a table full of RUNNING jobs refuses the
		// submission.
		if !e.evictOldestFinishedLocked() {
			e.mu.Unlock()
			return nil, ErrJobTableFull
		}
	}
	e.seq++
	ctx, cancelCause := context.WithCancelCause(e.baseCtx)
	rec := &JobRecord{
		ID:      fmt.Sprintf("job-%d", e.seq),
		Created: time.Now(),
		Total:   len(jobs),
		status:  JobRunning,
		changed: make(chan struct{}),
		cancel:  cancelCause,
	}
	if track {
		e.records[rec.ID] = rec
		e.order = append(e.order, rec.ID)
	}
	e.wg.Add(1)
	e.mu.Unlock()
	e.submitted.Add(1)
	e.running.Add(1)

	runCtx := ctx
	var cancelTimeout context.CancelFunc = func() {}
	if timeout > 0 {
		runCtx, cancelTimeout = context.WithTimeout(ctx, timeout)
	}
	if parent != nil {
		go func() {
			select {
			case <-parent.Done():
				cancelCause(errClientGone)
			case <-runCtx.Done():
			}
		}()
	}

	go func() {
		defer e.wg.Done()
		defer e.running.Add(-1)
		e.pl.Stream(runCtx, jobs, rec.append)
		var cause error
		if runCtx.Err() != nil {
			cause = context.Cause(runCtx)
			if cause == nil {
				cause = runCtx.Err()
			}
			e.canceled.Add(1)
		}
		rec.finish(cause)
		cancelTimeout()
		cancelCause(nil) // release the watcher and the timer chain
	}()
	return rec, nil
}

// Get resolves a tracked job. Reads also sweep the TTL — a quiet
// engine (no submissions) still sheds expired result sets — but never
// evict for capacity, so a full-but-fresh table is not drained by
// polling.
func (e *JobEngine) Get(id string) (*JobRecord, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked(time.Now())
	rec, ok := e.records[id]
	return rec, ok
}

// Cancel requests cancellation of a tracked job. It returns the record
// and whether it was still running when the request landed. The status
// flips to canceled as soon as the minimizers observe the context —
// within one objective evaluation.
func (e *JobEngine) Cancel(id string) (*JobRecord, bool, bool) {
	rec, ok := e.Get(id)
	if !ok {
		return nil, false, false
	}
	rec.mu.Lock()
	running := rec.status == JobRunning
	rec.mu.Unlock()
	if running {
		rec.cancel(errCanceledByClient)
	}
	return rec, running, true
}

// List snapshots every tracked job, newest first, without results.
func (e *JobEngine) List() []JobView {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked(time.Now())
	out := make([]JobView, 0, len(e.order))
	for i := len(e.order) - 1; i >= 0; i-- {
		if rec, ok := e.records[e.order[i]]; ok {
			out = append(out, rec.Header())
		}
	}
	return out
}

// Stats snapshots the engine counters.
func (e *JobEngine) Stats() EngineStats {
	e.mu.Lock()
	tracked := len(e.records)
	e.mu.Unlock()
	return EngineStats{
		Submitted: e.submitted.Load(),
		Canceled:  e.canceled.Load(),
		Active:    int(e.running.Load()),
		Tracked:   tracked,
	}
}

// sweepLocked drops finished jobs past their TTL. Running jobs are
// never evicted. Callers hold e.mu.
func (e *JobEngine) sweepLocked(now time.Time) {
	ttl := e.ttl()
	keep := e.order[:0]
	for _, id := range e.order {
		rec, ok := e.records[id]
		if !ok {
			continue
		}
		rec.mu.Lock()
		dead := rec.status != JobRunning && now.Sub(rec.finished) > ttl
		rec.mu.Unlock()
		if dead {
			delete(e.records, id)
			continue
		}
		keep = append(keep, id)
	}
	e.order = keep
}

// evictOldestFinishedLocked makes room for one submission by dropping
// the oldest finished job, reporting whether it could. Only Submit
// calls it — capacity eviction must never run from a read path, or
// polling a full table would destroy fresh results. Callers hold e.mu.
func (e *JobEngine) evictOldestFinishedLocked() bool {
	for i, id := range e.order {
		rec, ok := e.records[id]
		if !ok {
			continue
		}
		rec.mu.Lock()
		finished := rec.status != JobRunning
		rec.mu.Unlock()
		if finished {
			delete(e.records, id)
			e.order = append(e.order[:i:i], e.order[i+1:]...)
			return true
		}
	}
	return false // everything is running
}

// Shutdown stops accepting submissions, cancels every running job —
// tracked ones with the shutdown reason, then the engine context as
// the backstop for untracked ones — and waits for them to drain (each
// lands within one objective evaluation) or for ctx to expire.
func (e *JobEngine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	e.accepting = false
	recs := make([]*JobRecord, 0, len(e.records))
	for _, rec := range e.records {
		recs = append(recs, rec)
	}
	e.mu.Unlock()
	for _, rec := range recs {
		rec.cancel(errShutdown)
	}
	e.stop() // cancels baseCtx: every job context is its child
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
