package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobStatus is the lifecycle state of a submitted job batch.
type JobStatus string

// Job lifecycle states. There is deliberately no "queued": submission
// hands the batch to the shared worker pool immediately (the pool's
// semaphore is the queue), so a job is running until it is finished.
const (
	JobRunning   JobStatus = "running"
	JobCompleted JobStatus = "completed"
	JobCanceled  JobStatus = "canceled"
)

// Engine defaults.
const (
	// DefaultMaxTrackedJobs bounds the job table.
	DefaultMaxTrackedJobs = 256
	// DefaultJobTTL is how long a finished job's results stay
	// retrievable before eviction.
	DefaultJobTTL = 15 * time.Minute
	// DefaultRetryAfter is the backoff hint sent with load-shedding
	// refusals (429 Retry-After).
	DefaultRetryAfter = time.Second
)

// Engine errors, surfaced by Submit.
var (
	// ErrShuttingDown: the engine no longer accepts jobs.
	ErrShuttingDown = errors.New("server is shutting down")
	// ErrJobTableFull: the table holds MaxTrackedJobs unfinished jobs.
	// Non-terminal jobs are never evicted for capacity — the submission
	// is refused (429 + Retry-After on the /v1 surface) instead of
	// silently dropping tracked state.
	ErrJobTableFull = errors.New("job table full: all tracked jobs are still running")
)

// ErrOverloaded is the admission-control refusal: accepting the batch
// would push in-flight work or journal backlog past a watermark. The
// /v1 surface renders it as 429 problem+json with a Retry-After hint.
type ErrOverloaded struct {
	// Reason names the crossed watermark.
	Reason string
	// RetryAfter is the client backoff hint.
	RetryAfter time.Duration
}

func (e ErrOverloaded) Error() string { return "overloaded: " + e.Reason }

// Cancellation causes, readable in JobView.Reason.
var (
	errCanceledByClient = errors.New("canceled by client")
	errClientGone       = errors.New("client disconnected")
	errShutdown         = errors.New("server shutdown")
)

// JobRecord tracks one submitted batch: its results as they stream in,
// its lifecycle state, and the cancel handle that makes DELETE and
// shutdown land inside the minimizers within one objective evaluation.
// Results are held in wire form (MarshalResult bytes) — the same bytes
// the journal persists, so a recovered record serves exactly what the
// pre-crash one did.
type JobRecord struct {
	// ID is the engine-assigned job identifier (stable across
	// crash-recovery restarts).
	ID string
	// Created is the submission time.
	Created time.Time
	// Total is the number of jobs in the batch.
	Total int

	cancel context.CancelCauseFunc

	mu       sync.Mutex
	results  []json.RawMessage
	status   JobStatus
	reason   string
	finished time.Time
	changed  chan struct{} // closed on every append and on finish
	subs     int           // live followers; pins the record against eviction
}

// subscribe pins the record against TTL and capacity eviction for the
// lifetime of one follower: a subscriber mid-replay must be able to
// re-poll and reconnect by ID until it has seen the terminal event, so
// the job may not vanish from the table under it.
func (rec *JobRecord) subscribe() {
	rec.mu.Lock()
	rec.subs++
	rec.mu.Unlock()
}

func (rec *JobRecord) unsubscribe() {
	rec.mu.Lock()
	rec.subs--
	rec.mu.Unlock()
}

// append records one wire-form result and wakes every waiter.
func (rec *JobRecord) append(raw json.RawMessage) {
	rec.mu.Lock()
	rec.results = append(rec.results, raw)
	if rec.status == JobRunning {
		close(rec.changed)
		rec.changed = make(chan struct{})
	}
	rec.mu.Unlock()
}

// finish seals the record. The changed channel stays closed forever, so
// late subscribers wake immediately.
func (rec *JobRecord) finish(cause error) {
	rec.mu.Lock()
	if cause != nil {
		rec.status = JobCanceled
		rec.reason = cause.Error()
	} else {
		rec.status = JobCompleted
	}
	rec.finished = time.Now()
	close(rec.changed)
	rec.mu.Unlock()
}

// terminal snapshots the sealed state for the journal.
func (rec *JobRecord) terminal() (JobStatus, string, time.Time) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.status, rec.reason, rec.finished
}

// next returns the results from index from on, the current status, and
// a channel that signals the next change (closed already if the record
// is finished).
func (rec *JobRecord) next(from int) ([]json.RawMessage, JobStatus, <-chan struct{}) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var out []json.RawMessage
	if from < len(rec.results) {
		out = append(out, rec.results[from:]...)
	}
	return out, rec.status, rec.changed
}

// JobView is the wire snapshot of a job record: status plus one page of
// results.
type JobView struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// Jobs is the batch size; Completed the number of results so far.
	Jobs      int        `json:"jobs"`
	Completed int        `json:"completed"`
	Created   time.Time  `json:"created"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Reason explains a cancellation ("canceled by client", "context
	// deadline exceeded", "server shutdown", ...).
	Reason string `json:"reason,omitempty"`
	// Offset/Results are the requested result page, each result encoded
	// exactly as the NDJSON surface encodes it (MarshalResult, which
	// degrades non-JSON-serializable reports to summary-only instead of
	// failing the response); NextOffset is set when more results exist
	// beyond the page.
	Offset     int               `json:"offset"`
	Results    []json.RawMessage `json:"results"`
	NextOffset *int              `json:"nextOffset,omitempty"`
}

// Header snapshots the record without any results (Results is nil).
// Listing and event surfaces use it so a large result set is never
// copied just to be thrown away.
func (rec *JobRecord) Header() JobView {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	v := JobView{
		ID:        rec.ID,
		Status:    rec.status,
		Jobs:      rec.Total,
		Completed: len(rec.results),
		Created:   rec.Created,
		Reason:    rec.reason,
	}
	if rec.status != JobRunning {
		t := rec.finished
		v.Finished = &t
	}
	return v
}

// View snapshots the record with the result page [offset, offset+limit).
// limit <= 0 means no limit.
func (rec *JobRecord) View(offset, limit int) JobView {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	v := JobView{
		ID:        rec.ID,
		Status:    rec.status,
		Jobs:      rec.Total,
		Completed: len(rec.results),
		Created:   rec.Created,
		Reason:    rec.reason,
		Offset:    offset,
		Results:   []json.RawMessage{},
	}
	if rec.status != JobRunning {
		t := rec.finished
		v.Finished = &t
	}
	if offset < 0 {
		offset = 0
		v.Offset = 0
	}
	end := offset
	if offset < len(rec.results) {
		end = len(rec.results)
		if limit > 0 && offset+limit < end {
			end = offset + limit
		}
		v.Results = append(v.Results, rec.results[offset:end]...)
	}
	// NextOffset is the resume cursor: present whenever more results
	// exist now, or may yet land (the job is still running). On a
	// running job it is always set and monotone — an offset past the
	// current count yields an empty page whose cursor holds the client's
	// place — so a poller never loses its position to an empty page and
	// never mistakes "caught up" for "complete".
	if end < len(rec.results) || rec.status == JobRunning {
		next := end
		v.NextOffset = &next
	}
	return v
}

// FollowJob delivers every result of rec to emit in order — existing
// results first (late subscribers replay the full sequence), then new
// ones as they land — until the record finishes or ctx fires. Results
// are in wire form (MarshalResult bytes). It returns the record's final
// status, or JobRunning when ctx ended the subscription first. Both
// streaming surfaces (the legacy NDJSON response and the /v1 SSE
// endpoint) follow through here.
func FollowJob(ctx context.Context, rec *JobRecord, emit func(result []byte)) JobStatus {
	return FollowJobHeartbeat(ctx, rec, 0, emit, nil)
}

// FollowJobHeartbeat is FollowJob with a liveness pulse: whenever
// heartbeat elapses with the job still running, beat is called — the
// SSE surface turns it into heartbeat events so a subscriber can tell a
// stalled-but-alive server from a dead connection. heartbeat <= 0
// disables the pulse.
func FollowJobHeartbeat(ctx context.Context, rec *JobRecord, heartbeat time.Duration, emit func(result []byte), beat func()) JobStatus {
	rec.subscribe()
	defer rec.unsubscribe()
	offset := 0
	var pulse *time.Timer
	var pulseC <-chan time.Time
	if heartbeat > 0 && beat != nil {
		pulse = time.NewTimer(heartbeat)
		pulseC = pulse.C
		defer pulse.Stop()
	}
	for {
		results, status, changed := rec.next(offset)
		for _, res := range results {
			emit(res)
		}
		offset += len(results)
		if len(results) > 0 {
			// Result traffic is liveness: push the next pulse a full
			// heartbeat out, draining a tick that fired while emit ran —
			// otherwise the stale tick delivers a spurious heartbeat the
			// instant the stream goes quiet.
			if pulse != nil {
				if !pulse.Stop() {
					select {
					case <-pulse.C:
					default:
					}
				}
				pulse.Reset(heartbeat)
			}
			continue // drain fully before blocking
		}
		if status != JobRunning {
			return status
		}
		select {
		case <-changed:
		case <-pulseC:
			beat()
			pulse.Reset(heartbeat)
		case <-ctx.Done():
			return JobRunning
		}
	}
}

// Runner executes one batch — or, on crash recovery, the suffix of one
// — and emits each result as wire bytes (MarshalResult form) tagged
// with its final batch index. base is the batch position of jobs[0]:
// emitted indices are base+i, and emission must be in batch order. The
// contract is the batch-evaluation contract: exactly one result per
// job, byte-identical to a local run. The engine's default runner is
// the local pipeline; fpserve's coordinator mode installs a fleet
// dispatcher here, and everything downstream — journal, job table,
// pagination, SSE — is unchanged, consuming the emitted bytes no
// matter which node produced them.
type Runner func(ctx context.Context, jobs []Job, base int, emit func(index int, result json.RawMessage))

// EngineStats is the job engine's counter snapshot.
type EngineStats struct {
	// Submitted counts accepted batches; Canceled those that ended
	// cancelled; Active those still running (tracked or not); Tracked
	// the table size.
	Submitted int64 `json:"submitted"`
	Canceled  int64 `json:"canceled"`
	Active    int   `json:"active"`
	Tracked   int   `json:"tracked"`
	// InFlight counts individual jobs accepted but not yet finished —
	// the admission-control watermark input.
	InFlight int64 `json:"inFlight"`
	// Restored/Requeued count boot-time recovery: jobs rebuilt from the
	// journal, and the subset re-executed because the crash caught them
	// running.
	Restored int64 `json:"restored,omitempty"`
	Requeued int64 `json:"requeued,omitempty"`
	// Shed counts submissions refused by admission control.
	Shed int64 `json:"shed,omitempty"`
	// Panics counts jobs that hit the per-job recover boundary.
	Panics int64 `json:"panics,omitempty"`
}

// JobEngine runs submitted batches asynchronously over one shared
// pipeline and tracks them in a bounded, TTL-evicted table. It is the
// single execution path of fpserve: the /v1 async API and the legacy
// synchronous /analyze endpoint both submit here, so they share the
// worker pool, the module cache, and the cancellation plumbing.
//
// With Store set the table is durable: every lifecycle transition is
// journaled (submission durably, before the caller sees the job ID),
// and Recover rebuilds the table — requeueing interrupted jobs — after
// a crash.
type JobEngine struct {
	// MaxTrackedJobs bounds the job table (0 = DefaultMaxTrackedJobs).
	MaxTrackedJobs int
	// TTL is the retention of finished jobs (0 = DefaultJobTTL).
	TTL time.Duration
	// Store, when non-nil, is the durable journal hook. Set it before
	// the first submission.
	Store JobStore
	// MaxInFlight is the admission-control watermark on individual
	// accepted-but-unfinished jobs across all batches (0 = unlimited):
	// a submission that would cross it is refused with ErrOverloaded.
	MaxInFlight int
	// MaxStoreBacklog is the admission-control watermark on unsynced
	// journal bytes (0 = DefaultStoreBacklog when a Store is set).
	MaxStoreBacklog int64
	// RetryAfter is the backoff hint attached to load-shedding refusals
	// (0 = DefaultRetryAfter).
	RetryAfter time.Duration
	// Runner, when non-nil, replaces local pipeline execution (see
	// Runner). Set it before the first submission or recovery.
	Runner Runner
	// AdmitHook, when non-nil, is consulted by admission control before
	// the local watermarks; an error (conventionally ErrOverloaded)
	// refuses the submission. The coordinator aggregates fleet-level
	// backpressure — worker 429/Retry-After signals, a dead fleet —
	// into this hook.
	AdmitHook func(jobs int) error
	// Logf, when non-nil, receives operational log lines (store append
	// failures that exhausted their retries, recovery notes).
	Logf func(format string, args ...any)

	pl      *Pipeline
	baseCtx context.Context
	stop    context.CancelFunc

	mu        sync.Mutex
	records   map[string]*JobRecord
	order     []string // insertion order, for eviction scans
	seq       int64
	accepting bool
	wg        sync.WaitGroup

	submitted atomic.Int64
	canceled  atomic.Int64
	running   atomic.Int64
	inflight  atomic.Int64
	restored  atomic.Int64
	requeued  atomic.Int64
	shed      atomic.Int64
}

// DefaultStoreBacklog is the journal-pressure watermark applied when a
// Store is mounted and MaxStoreBacklog is unset.
const DefaultStoreBacklog int64 = 8 << 20

// NewJobEngine returns an accepting engine over pl.
func NewJobEngine(pl *Pipeline) *JobEngine {
	ctx, cancel := context.WithCancel(context.Background())
	return &JobEngine{
		pl:        pl,
		baseCtx:   ctx,
		stop:      cancel,
		records:   map[string]*JobRecord{},
		accepting: true,
	}
}

func (e *JobEngine) maxTracked() int {
	if e.MaxTrackedJobs > 0 {
		return e.MaxTrackedJobs
	}
	return DefaultMaxTrackedJobs
}

func (e *JobEngine) ttl() time.Duration {
	if e.TTL > 0 {
		return e.TTL
	}
	return DefaultJobTTL
}

func (e *JobEngine) retryAfter() time.Duration {
	if e.RetryAfter > 0 {
		return e.RetryAfter
	}
	return DefaultRetryAfter
}

func (e *JobEngine) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// storeOp runs a journal append with capped-exponential-backoff retry,
// classifying via Retryable: transient journal failures (I/O pressure,
// injected fsync faults) are retried; permanent ones surface at once.
func (e *JobEngine) storeOp(id, op string, fn func() error) error {
	if e.Store == nil {
		return nil
	}
	return Retry(e.baseCtx, op+" "+id, storeBackoff(id), fn)
}

// Submit accepts a batch, starts it on the shared pipeline, and tracks
// it in the job table (so /v1 clients can poll, stream, and cancel it
// by ID), returning immediately with its record.
//
// The job's context is a child of the engine (so shutdown cancels it),
// bounded by timeout when positive (the per-request deadline), and —
// when parent is non-nil — additionally tied to parent: a parent's
// cancellation cancels the batch. The async API passes nil because a
// /v1 job outlives the submission request by design.
//
// With a Store mounted, Submit returns only after the submission record
// is durable: an accepted job (202) survives any later crash.
func (e *JobEngine) Submit(parent context.Context, jobs []Job, timeout time.Duration) (*JobRecord, error) {
	return e.submit(parent, jobs, timeout, true)
}

// SubmitUntracked is Submit for batches whose results are delivered
// out-of-band: the record never enters the job table (its client never
// learns a job ID, so retention would be pure leak), does not count
// against MaxTrackedJobs, and is never journaled (its delivery
// guarantee is the open connection) — the legacy synchronous /analyze
// endpoint, whose concurrency is bounded by its open connections,
// submits here. Shutdown still cancels it (the job context is a child
// of the engine's), and it still shares the worker pool, the
// admission-control watermarks, and the counters.
func (e *JobEngine) SubmitUntracked(parent context.Context, jobs []Job) (*JobRecord, error) {
	return e.submit(parent, jobs, 0, false)
}

// admitLocked applies the load-shedding watermarks. Callers hold e.mu.
func (e *JobEngine) admitLocked(n int) error {
	if e.AdmitHook != nil {
		if err := e.AdmitHook(n); err != nil {
			return err
		}
	}
	if max := e.MaxInFlight; max > 0 {
		if inflight := e.inflight.Load(); inflight+int64(n) > int64(max) {
			return ErrOverloaded{
				Reason: fmt.Sprintf("%d jobs in flight + %d submitted exceeds the in-flight watermark of %d",
					inflight, n, max),
				RetryAfter: e.retryAfter(),
			}
		}
	}
	if e.Store != nil {
		max := e.MaxStoreBacklog
		if max == 0 {
			max = DefaultStoreBacklog
		}
		if max > 0 {
			if backlog := e.Store.Backlog(); backlog > max {
				return ErrOverloaded{
					Reason: fmt.Sprintf("journal backlog of %d bytes exceeds the watermark of %d",
						backlog, max),
					RetryAfter: e.retryAfter(),
				}
			}
		}
	}
	return nil
}

func (e *JobEngine) submit(parent context.Context, jobs []Job, timeout time.Duration, track bool) (*JobRecord, error) {
	e.mu.Lock()
	if !e.accepting {
		e.mu.Unlock()
		return nil, ErrShuttingDown
	}
	e.sweepLocked(time.Now())
	if err := e.admitLocked(len(jobs)); err != nil {
		e.mu.Unlock()
		e.shed.Add(1)
		return nil, err
	}
	if track && len(e.records) >= e.maxTracked() {
		// TTL didn't free a slot: evict the oldest finished job to make
		// room. Non-terminal (running or queued) jobs are never evicted
		// — a table full of them refuses the submission instead.
		if !e.evictOldestFinishedLocked() {
			e.mu.Unlock()
			e.shed.Add(1)
			return nil, ErrJobTableFull
		}
	}
	e.seq++
	ctx, cancelCause := context.WithCancelCause(e.baseCtx)
	rec := &JobRecord{
		ID:      fmt.Sprintf("job-%d", e.seq),
		Created: time.Now(),
		Total:   len(jobs),
		status:  JobRunning,
		changed: make(chan struct{}),
		cancel:  cancelCause,
	}
	e.mu.Unlock()

	// Durability barrier: the submission record must be on disk before
	// the caller sees the job ID. Outside e.mu — an fsync must not
	// stall unrelated reads. Transient journal failures retry with
	// backoff; exhaustion refuses the submission (still Retryable, so
	// the surface answers 503 + Retry-After rather than losing a job it
	// acknowledged).
	if track {
		if err := e.storeOp(rec.ID, "journal submit", func() error {
			return e.Store.JobSubmitted(rec.ID, jobs, timeout, rec.Created)
		}); err != nil {
			cancelCause(nil)
			return nil, err
		}
	}

	e.mu.Lock()
	if !e.accepting {
		// Shutdown raced the durability barrier. The submit record may
		// already be journaled; seal it there so a reboot does not
		// resurrect a job whose client was refused.
		e.mu.Unlock()
		cancelCause(nil)
		if track {
			now := time.Now()
			if err := e.storeOp(rec.ID, "journal terminal", func() error {
				return e.Store.JobTerminal(rec.ID, JobCanceled, errShutdown.Error(), now)
			}); err != nil {
				e.logf("fpserve: journal: sealing refused submission %s: %v", rec.ID, err)
			}
		}
		return nil, ErrShuttingDown
	}
	if track {
		e.records[rec.ID] = rec
		e.order = append(e.order, rec.ID)
	}
	e.wg.Add(1)
	e.mu.Unlock()
	e.submitted.Add(1)
	e.running.Add(1)
	e.inflight.Add(int64(len(jobs)))

	runCtx := ctx
	var cancelTimeout context.CancelFunc = func() {}
	if timeout > 0 {
		runCtx, cancelTimeout = context.WithTimeout(ctx, timeout)
	}
	if parent != nil {
		go func() {
			select {
			case <-parent.Done():
				cancelCause(errClientGone)
			case <-runCtx.Done():
			}
		}()
	}
	e.run(rec, runCtx, cancelCause, cancelTimeout, jobs, 0, track)
	return rec, nil
}

// run executes (or, for base > 0, resumes at result offset base) rec's
// batch on the shared pipeline, journaling every transition. It owns
// the record's finish. Callers have already incremented wg, running,
// and inflight.
func (e *JobEngine) run(rec *JobRecord, ctx context.Context, cancelCause context.CancelCauseFunc, cancelTimeout context.CancelFunc, jobs []Job, base int, journaled bool) {
	go func() {
		defer e.wg.Done()
		defer e.running.Add(-1)
		if journaled {
			if err := e.storeOp(rec.ID, "journal start", func() error {
				return e.Store.JobStarted(rec.ID)
			}); err != nil {
				e.logf("fpserve: journal: start %s: %v", rec.ID, err)
			}
		}
		run := e.Runner
		if run == nil {
			run = e.localRun
		}
		run(ctx, jobs, base, func(index int, raw json.RawMessage) {
			rec.append(raw)
			e.inflight.Add(-1)
			if journaled {
				if err := e.storeOp(rec.ID, "journal result", func() error {
					return e.Store.ResultAppended(rec.ID, index, raw)
				}); err != nil {
					e.logf("fpserve: journal: result %s[%d]: %v", rec.ID, index, err)
				}
			}
		})
		var cause error
		if ctx.Err() != nil {
			cause = context.Cause(ctx)
			if cause == nil {
				cause = ctx.Err()
			}
			e.canceled.Add(1)
		}
		rec.finish(cause)
		if journaled {
			status, reason, finished := rec.terminal()
			if err := e.storeOp(rec.ID, "journal terminal", func() error {
				return e.Store.JobTerminal(rec.ID, status, reason, finished)
			}); err != nil {
				e.logf("fpserve: journal: terminal %s: %v", rec.ID, err)
			}
		}
		cancelTimeout()
		cancelCause(nil) // release the watcher and the timer chain
	}()
}

// localRun is the default Runner: the shared worker pool. A resumed
// job re-executes only the suffix beyond its last durable result;
// indices shift back to batch positions so the wire output is
// identical to an uninterrupted run's.
func (e *JobEngine) localRun(ctx context.Context, jobs []Job, base int, emit func(int, json.RawMessage)) {
	e.pl.Stream(ctx, jobs, func(r JobResult) {
		r.Index += base
		emit(r.Index, MarshalResult(r))
	})
}

// Recover rebuilds the job table from a journal replay (see
// DurableStore.Recovered). Terminal jobs are restored read-only with
// their full result sets; jobs the crash caught running are requeued —
// each re-executes only the batch suffix beyond its last durable
// result, under whatever remains of its original deadline. Results are
// content-deterministic, so the combined result set is identical to an
// uninterrupted run's. Call once, before serving.
func (e *JobEngine) Recover(recovered []RecoveredJob) (restored, requeued int) {
	for _, rj := range recovered {
		rj := rj
		e.mu.Lock()
		if !e.accepting {
			e.mu.Unlock()
			break
		}
		if _, ok := e.records[rj.ID]; ok {
			e.mu.Unlock()
			continue // duplicate replay entry
		}
		if n := jobSeq(rj.ID); n > e.seq {
			e.seq = n // never reissue a recovered ID
		}
		ctx, cancelCause := context.WithCancelCause(e.baseCtx)
		rec := &JobRecord{
			ID:      rj.ID,
			Created: rj.Created,
			Total:   len(rj.Jobs),
			results: rj.Results,
			status:  rj.Status,
			reason:  rj.Reason,
			changed: make(chan struct{}),
			cancel:  cancelCause,
		}
		running := rj.Status == JobRunning
		if !running {
			rec.finished = rj.Finished
			close(rec.changed)
		}
		e.records[rec.ID] = rec
		e.order = append(e.order, rec.ID)
		if running {
			e.wg.Add(1)
		}
		e.mu.Unlock()

		restored++
		e.restored.Add(1)
		if !running {
			cancelCause(nil)
			continue
		}
		requeued++
		e.requeued.Add(1)
		e.running.Add(1)

		base := len(rj.Results)
		remaining := rj.Jobs[base:]
		e.inflight.Add(int64(len(remaining)))
		runCtx := ctx
		var cancelTimeout context.CancelFunc = func() {}
		if rj.Timeout > 0 {
			// The deadline is absolute: a job submitted with a 30s
			// timeout 25s before the crash has 5s left, and one past
			// its deadline cancels immediately (keeping its durable
			// results), exactly as the uninterrupted timeline would.
			runCtx, cancelTimeout = context.WithDeadline(ctx, rj.Created.Add(rj.Timeout))
		}
		e.run(rec, runCtx, cancelCause, cancelTimeout, remaining, base, true)
	}
	return restored, requeued
}

// Get resolves a tracked job. Reads also sweep the TTL — a quiet
// engine (no submissions) still sheds expired result sets — but never
// evict for capacity, so a full-but-fresh table is not drained by
// polling.
func (e *JobEngine) Get(id string) (*JobRecord, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked(time.Now())
	rec, ok := e.records[id]
	return rec, ok
}

// Cancel requests cancellation of a tracked job. It returns the record
// and whether it was still running when the request landed. The status
// flips to canceled as soon as the minimizers observe the context —
// within one objective evaluation.
func (e *JobEngine) Cancel(id string) (*JobRecord, bool, bool) {
	rec, ok := e.Get(id)
	if !ok {
		return nil, false, false
	}
	rec.mu.Lock()
	running := rec.status == JobRunning
	rec.mu.Unlock()
	if running {
		rec.cancel(errCanceledByClient)
	}
	return rec, running, true
}

// List snapshots every tracked job, newest first, without results.
func (e *JobEngine) List() []JobView {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked(time.Now())
	out := make([]JobView, 0, len(e.order))
	for i := len(e.order) - 1; i >= 0; i-- {
		if rec, ok := e.records[e.order[i]]; ok {
			out = append(out, rec.Header())
		}
	}
	return out
}

// Stats snapshots the engine counters.
func (e *JobEngine) Stats() EngineStats {
	e.mu.Lock()
	tracked := len(e.records)
	e.mu.Unlock()
	return EngineStats{
		Submitted: e.submitted.Load(),
		Canceled:  e.canceled.Load(),
		Active:    int(e.running.Load()),
		Tracked:   tracked,
		InFlight:  e.inflight.Load(),
		Restored:  e.restored.Load(),
		Requeued:  e.requeued.Load(),
		Shed:      e.shed.Load(),
		Panics:    e.pl.Panics(),
	}
}

// sweepLocked drops finished jobs past their TTL. Running jobs are
// never evicted. Callers hold e.mu.
func (e *JobEngine) sweepLocked(now time.Time) {
	ttl := e.ttl()
	keep := e.order[:0]
	for _, id := range e.order {
		rec, ok := e.records[id]
		if !ok {
			continue
		}
		rec.mu.Lock()
		// A record with live followers is pinned no matter how stale:
		// evicting it mid-replay would 404 the subscriber's next poll or
		// reconnect before it ever saw the terminal event. The sweep
		// reclaims it on the first pass after the last follower detaches.
		dead := rec.status != JobRunning && rec.subs == 0 && now.Sub(rec.finished) > ttl
		rec.mu.Unlock()
		if dead {
			delete(e.records, id)
			e.dropLocked(id)
			continue
		}
		keep = append(keep, id)
	}
	e.order = keep
}

// dropLocked journals an eviction so a compacted journal cannot
// resurrect the job at the next boot. Callers hold e.mu.
func (e *JobEngine) dropLocked(id string) {
	if err := e.storeOp(id, "journal drop", func() error {
		return e.Store.JobDropped(id)
	}); err != nil {
		e.logf("fpserve: journal: drop %s: %v", id, err)
	}
}

// evictOldestFinishedLocked makes room for one submission by dropping
// the oldest finished job, reporting whether it could. Only terminal
// jobs are candidates — a running (or queued) job is never evicted, no
// matter how old — and only Submit calls it: capacity eviction must
// never run from a read path, or polling a full table would destroy
// fresh results. Callers hold e.mu.
func (e *JobEngine) evictOldestFinishedLocked() bool {
	for i, id := range e.order {
		rec, ok := e.records[id]
		if !ok {
			continue
		}
		rec.mu.Lock()
		// Pinned like the TTL sweep: a subscribed record is not a free
		// slot, even under capacity pressure.
		finished := rec.status != JobRunning && rec.subs == 0
		rec.mu.Unlock()
		if finished {
			delete(e.records, id)
			e.order = append(e.order[:i:i], e.order[i+1:]...)
			e.dropLocked(id)
			return true
		}
	}
	return false // everything is running
}

// Shutdown stops accepting submissions, cancels every running job —
// tracked ones with the shutdown reason, then the engine context as
// the backstop for untracked ones — and waits for them to drain (each
// lands within one objective evaluation) or for ctx to expire. On a
// complete drain it journals the clean-shutdown marker, so the next
// boot can tell restart from crash.
func (e *JobEngine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	e.accepting = false
	recs := make([]*JobRecord, 0, len(e.records))
	for _, rec := range e.records {
		recs = append(recs, rec)
	}
	e.mu.Unlock()
	for _, rec := range recs {
		rec.cancel(errShutdown)
	}
	e.stop() // cancels baseCtx: every job context is its child
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if m, ok := e.Store.(interface{ MarkCleanShutdown() error }); ok {
			if err := m.MarkCleanShutdown(); err != nil {
				e.logf("fpserve: journal: clean-shutdown marker: %v", err)
			}
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill simulates abrupt process death for crash-recovery testing: the
// store is frozen first (as a SIGKILL would cut all future writes, in
// flight or not), then every job context is cancelled so the
// goroutines of this doomed engine stop burning CPU. Nothing is
// journaled — no terminal records, no shutdown marker — so a journal
// reopened afterward replays exactly the state an unclean crash leaves.
func (e *JobEngine) Kill() {
	if f, ok := e.Store.(interface{ Freeze() }); ok {
		f.Freeze()
	}
	e.mu.Lock()
	e.accepting = false
	e.mu.Unlock()
	e.stop()
}
