package pipeline_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/pipeline"
	"repro/internal/rt"
)

func serverRequestBody(t testing.TB, srcs map[string]string) string {
	t.Helper()
	bounds := []opt.Bound{{Lo: -100, Hi: 100}}
	req := pipeline.Request{
		Source: srcs["fig2.fpl"],
		Func:   "prog",
		Specs: []analysis.Spec{
			{Analysis: "coverage", Seed: 2, Evals: 300, Stall: 2, Workers: 1, Bounds: bounds},
			{Analysis: "bva", Seed: 1, Starts: 2, Evals: 200, Workers: 1, Bounds: bounds},
			{Analysis: "overflow", Seed: 3, Evals: 300, Rounds: 6, Workers: 1},
			{Analysis: "nan", Seed: 5, Evals: 300, Rounds: 6, Workers: 1},
		},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func postAnalyze(t testing.TB, url, body string) []map[string]any {
	t.Helper()
	resp, err := http.Post(url+"/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out []map[string]any
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(pipeline.NormalizeDurations(line), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// TestServeConcurrentBitIdentical is the fpserve acceptance test: ≥8
// concurrent requests over one shared module cache return results
// bit-identical to the serial in-process analysis path, and the cached
// module is never recompiled.
func TestServeConcurrentBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent request sweep in -short mode")
	}
	srcs := loadFixtures(t)
	srv := pipeline.NewServer(0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := serverRequestBody(t, srcs)

	// The serial oracle: the same jobs through the registry directly,
	// one at a time, rendered through the same JSON shape.
	var req pipeline.Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	var want []map[string]any
	for i, spec := range req.Specs {
		a, err := analysis.Lookup(spec.Analysis)
		if err != nil {
			t.Fatal(err)
		}
		p, err := weakCompile(req.Source, req.Func)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.Run(context.Background(), analysis.Input{Program: p}, spec)
		if err != nil {
			t.Fatal(err)
		}
		res := pipeline.JobResult{Index: i, Analysis: a.Name(), Program: p.Name,
			Report: rep, Summary: rep.Summary(), Failed: rep.Failed()}
		var m map[string]any
		if err := json.Unmarshal(pipeline.NormalizeDurations(pipeline.MarshalResult(res)), &m); err != nil {
			t.Fatal(err)
		}
		want = append(want, m)
	}

	const clients = 8
	got := make([][]map[string]any, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got[c] = postAnalyze(t, ts.URL, body)
		}(c)
	}
	wg.Wait()

	wantJSON := mustJSON(t, want)
	for c := 0; c < clients; c++ {
		if gotJSON := mustJSON(t, got[c]); gotJSON != wantJSON {
			t.Errorf("client %d diverged from the serial path.\ngot:  %s\nwant: %s", c, gotJSON, wantJSON)
		}
	}

	// One source, one engine: exactly one compilation across all eight
	// concurrent requests — cached-module requests never recompile.
	if st := srv.PL.Cache.Stats(); st.Compiles != 1 {
		t.Errorf("module compiled %d times across %d concurrent requests, want 1 (stats %+v)",
			st.Compiles, clients, st)
	}

	// The stats and health endpoints respond.
	for _, path := range []string{"/stats", "/healthz", "/analyses"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %v %v", path, err, resp)
		}
		resp.Body.Close()
	}
}

// TestServeBadRequests covers the HTTP error surface.
func TestServeBadRequests(t *testing.T) {
	ts := httptest.NewServer(pipeline.NewServer(1).Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/analyze"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze: %v %v", err, resp.StatusCode)
	}
	for _, body := range []string{"", "{}", `{"jobs": []}`, `{"nonsense": 1}`} {
		resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// A job-level failure is a result line, not an HTTP error.
	lines := postAnalyze(t, ts.URL, `{"builtin": "nope", "specs": [{"analysis": "bva"}]}`)
	if len(lines) != 1 || lines[0]["error"] == nil {
		t.Errorf("job-level failure: %v", lines)
	}

	// Oversized batches are rejected up front, not scheduled.
	var big strings.Builder
	big.WriteString(`{"builtin": "fig2", "specs": [`)
	for i := 0; i < 5000; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString(`{"analysis": "bva"}`)
	}
	big.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(big.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("5000-job request: status %d, want 400", resp.StatusCode)
	}
}

func mustJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// weakCompile compiles FPL source outside the pipeline cache (the
// serial-oracle path).
func weakCompile(src, fn string) (*rt.Program, error) {
	mod, err := ir.Compile(src)
	if err != nil {
		return nil, err
	}
	return interp.New(mod).Program(fn)
}
