package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"repro/internal/gofront"
	"repro/internal/interp"
	"repro/internal/rt"
)

// ModuleCache caches compiled modules keyed by source hash (plus
// execution engine and source language), so repeated requests for the
// same source skip lex/parse/lower and flat-code compilation entirely. It is safe for
// concurrent use; every Program call returns a fresh concurrency-safe
// program instance over the shared immutable compiled module.
//
// The cache is bounded: beyond MaxModules entries the least recently
// used module is evicted (in-flight instances keep referencing the
// shared immutable module; only the cache slot is reclaimed), and
// failed compilations are never retained, so a long-running fpserve
// sweeping many distinct sources stays at a bounded footprint.
type ModuleCache struct {
	// MaxModules bounds retained modules; 0 selects DefaultMaxModules.
	MaxModules int

	mu      sync.Mutex
	entries map[moduleKey]*moduleEntry
	tick    int64

	compiles atomic.Int64
	hits     atomic.Int64
}

// DefaultMaxModules is the default cache capacity.
const DefaultMaxModules = 128

// NewModuleCache returns an empty cache with the default capacity.
func NewModuleCache() *ModuleCache {
	return &ModuleCache{entries: map[moduleKey]*moduleEntry{}}
}

type moduleKey struct {
	hash   [sha256.Size]byte
	engine interp.Engine
	lang   gofront.Lang
}

type moduleEntry struct {
	once sync.Once
	it   *interp.Interp
	err  error

	lastUse int64 // guarded by ModuleCache.mu

	mu    sync.Mutex
	progs map[string]*rt.Program
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	// Modules is the number of distinct cached modules.
	Modules int `json:"modules"`
	// Compiles counts source compilations actually performed.
	Compiles int64 `json:"compiles"`
	// Hits counts Program calls served without compiling.
	Hits int64 `json:"hits"`
}

// Stats returns the cache counters.
func (c *ModuleCache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{Modules: n, Compiles: c.compiles.Load(), Hits: c.hits.Load()}
}

// SourceID is the content address of a source text: the hex sha256 of
// its bytes, prefixed "sha256:". It is the same hash the module cache
// keys on, and the program ID the fpserve /v1 registration API hands
// out — registering a program and submitting its source inline hit the
// same cache slot. The language is not part of the address: the same
// bytes registered under two languages are the same resource ID (and a
// conflict, which the program store refuses).
func SourceID(src string) string {
	h := sha256.Sum256([]byte(src))
	return "sha256:" + hex.EncodeToString(h[:])
}

// Module compiles src under lg (or reuses the cached module with the
// same hash) and returns the shared compiled module. The second result
// reports a cache hit.
func (c *ModuleCache) Module(lg gofront.Lang, src string, eng interp.Engine) (*interp.Interp, bool, error) {
	e, hit, err := c.entry(lg, src, eng)
	if err != nil {
		return nil, hit, err
	}
	return e.it, hit, nil
}

// Drop evicts the module compiled from src under lg and eng, if
// cached. In-flight program instances keep working over the shared
// immutable module; only the cache slot is reclaimed.
func (c *ModuleCache) Drop(lg gofront.Lang, src string, eng interp.Engine) {
	k := moduleKey{hash: sha256.Sum256([]byte(src)), engine: eng, lang: lg}
	c.mu.Lock()
	delete(c.entries, k)
	c.mu.Unlock()
}

// entry resolves (compiling at most once) the cache entry for src.
func (c *ModuleCache) entry(lg gofront.Lang, src string, eng interp.Engine) (*moduleEntry, bool, error) {
	k := moduleKey{hash: sha256.Sum256([]byte(src)), engine: eng, lang: lg}
	c.mu.Lock()
	e, hit := c.entries[k]
	if !hit {
		e = &moduleEntry{progs: map[string]*rt.Program{}}
		c.entries[k] = e
		c.evictLocked(k)
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()
	if hit {
		c.hits.Add(1)
	}

	e.once.Do(func() {
		c.compiles.Add(1)
		mod, err := gofront.CompileSource(lg, "", src)
		if err != nil {
			e.err = err
			return
		}
		it := interp.New(mod)
		it.Engine = eng
		e.it = it
	})
	if e.err != nil {
		// Failed compilations buy nothing: drop the slot so broken
		// sources never pin memory. (A retry recompiles — acceptable
		// for an error path.)
		c.mu.Lock()
		if c.entries[k] == e {
			delete(c.entries, k)
		}
		c.mu.Unlock()
		return nil, hit, e.err
	}
	return e, hit, nil
}

// Program compiles src under lg (or reuses the cached module with the
// same hash), wraps fn (empty = first declared) and returns an
// independent program instance safe to execute concurrently with every
// other returned instance. The second result reports whether the
// module was already cached.
func (c *ModuleCache) Program(lg gofront.Lang, src, fn string, eng interp.Engine) (*rt.Program, bool, error) {
	e, hit, err := c.entry(lg, src, eng)
	if err != nil {
		return nil, hit, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if fn == "" {
		fn = e.it.Mod.Order[0]
	}
	proto, ok := e.progs[fn]
	if !ok {
		p, err := e.it.Program(fn)
		if err != nil {
			return nil, hit, err
		}
		e.progs[fn] = p
		proto = p
	}
	// The prototype shares the entry's interpreter (mutable machine,
	// failure log); hand every caller its own fork.
	return proto.Instance(), hit, nil
}

// evictLocked drops least-recently-used entries (other than keep) until
// the cache fits its capacity. Callers hold c.mu.
func (c *ModuleCache) evictLocked(keep moduleKey) {
	max := c.MaxModules
	if max <= 0 {
		max = DefaultMaxModules
	}
	for len(c.entries) > max {
		var oldest moduleKey
		var oldestUse int64 = -1
		for k, e := range c.entries {
			if k == keep {
				continue
			}
			if oldestUse < 0 || e.lastUse < oldestUse {
				oldest, oldestUse = k, e.lastUse
			}
		}
		if oldestUse < 0 {
			return
		}
		delete(c.entries, oldest)
	}
}
