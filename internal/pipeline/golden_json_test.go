package pipeline_test

import (
	"bytes"
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pipeline"
)

var update = flag.Bool("update", false, "rewrite the JSON golden files")

// normalizeJSON masks the wall-clock durations, the only bytes of the
// JSON surfaces that may differ between identical runs.
func normalizeJSON(s string) string {
	return string(pipeline.NormalizeDurations([]byte(s)))
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("..", "..", "testdata", "golden", "json", name)
	got = normalizeJSON(got)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != normalizeJSON(string(want)) {
		t.Errorf("%s: output diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestFPAnalyzeJSONGolden locks the fpanalyze -json surface — the
// pipeline wire shape of every registered analysis — to byte-exact
// golden files (modulo wall-clock durations).
func TestFPAnalyzeJSONGolden(t *testing.T) {
	fixture := func(name string) string { return filepath.Join("..", "..", "testdata", name) }
	cases := []struct {
		golden string
		args   []string
		stdin  string
		code   int
	}{
		{"fpanalyze_bva_fig2fpl.json",
			[]string{"bva", "-json", "-func", "prog", "-seed", "1", "-starts", "2", "-evals", "300",
				"-bounds", "-100:100", fixture("fig2.fpl")}, "", 0},
		{"fpanalyze_bva_hp_fig2fpl.json",
			[]string{"bva", "-json", "-func", "prog", "-seed", "1", "-starts", "2", "-evals", "300",
				"-hp", "-bounds", "-100:100", fixture("fig2.fpl")}, "", 0},
		{"fpanalyze_coverage_fig2fpl.json",
			[]string{"coverage", "-json", "-func", "prog", "-seed", "2", "-evals", "300",
				"-bounds", "-100:100", fixture("fig2.fpl")}, "", 0},
		{"fpanalyze_overflow_sum3.json",
			[]string{"overflow", "-json", "-func", "prog", "-seed", "3", "-evals", "400",
				fixture("sum3.fpl")}, "", 0},
		{"fpanalyze_nan_fig2fpl.json",
			[]string{"nan", "-json", "-func", "prog", "-seed", "1", "-evals", "400",
				fixture("fig2.fpl")}, "", 0},
		{"fpanalyze_reach_fig2fpl.json",
			[]string{"reach", "-json", "-func", "prog", "-path", "0:t,1:f",
				"-bounds", "-100:100", "-seed", "1", fixture("fig2.fpl")}, "", 0},
		{"fpanalyze_xsat_sat.json",
			[]string{"xsat", "-json", "-seed", "1", "x < 1 && x + 1 >= 2"}, "", 0},
		{"fpanalyze_xsat_unknown.json",
			[]string{"xsat", "-json", "-seed", "1", "-evals", "200", "-bounds", "-1:1", "x*x < 0"}, "", 2},
		{"fpanalyze_batch.ndjson",
			[]string{"batch", "-jobs", "2", "-"},
			`[
			  {"source": "func f(x double) double {\n    if (x < 1.0) { return x + 1.0; }\n    return x * 2.0;\n}", "spec": {"analysis": "coverage", "seed": 1, "evals": 300, "stall": 2, "bounds": [{"lo": -100, "hi": 100}]}},
			  {"source": "func f(x double) double {\n    if (x < 1.0) { return x + 1.0; }\n    return x * 2.0;\n}", "spec": {"analysis": "bva", "seed": 1, "starts": 2, "evals": 300, "highPrecision": true, "bounds": [{"lo": -100, "hi": 100}]}},
			  {"spec": {"analysis": "xsat", "seed": 1, "formula": "x < 1 && x + 1 >= 2"}},
			  {"spec": {"analysis": "nope"}}
			]`, 1},
		{"fpanalyze_list.txt", []string{"list"}, "", 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.golden, func(t *testing.T) {
			t.Parallel()
			var stdout, stderr bytes.Buffer
			var stdin io.Reader = strings.NewReader(tc.stdin)
			code := pipeline.FPAnalyzeMain(tc.args, stdin, &stdout, &stderr)
			if code != tc.code {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			checkGolden(t, tc.golden, stdout.String())
		})
	}
}

// TestFPServeGolden locks the fpserve HTTP surfaces: the /analyses
// listing and the NDJSON stream of POST /analyze.
func TestFPServeGolden(t *testing.T) {
	srv := httptest.NewServer(pipeline.NewServer(2).Handler())
	defer srv.Close()

	t.Run("analyses", func(t *testing.T) {
		resp, err := srv.Client().Get(srv.URL + "/analyses")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		checkGolden(t, "fpserve_analyses.json", string(body))
	})

	t.Run("analyze", func(t *testing.T) {
		req := `{
			"builtin": "fig2",
			"specs": [
				{"analysis": "coverage", "seed": 1, "evals": 300, "stall": 2, "bounds": [{"lo": -100, "hi": 100}]},
				{"analysis": "nan", "seed": 1, "evals": 300, "rounds": 4},
				{"analysis": "reach", "seed": 1, "path": [{"Site": 0, "Taken": true}], "bounds": [{"lo": -100, "hi": 100}]}
			]}`
		resp, err := srv.Client().Post(srv.URL+"/analyze", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("content type %q", ct)
		}
		checkGolden(t, "fpserve_analyze.ndjson", string(body))
	})
}
