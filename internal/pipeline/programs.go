package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/gofront"
	"repro/internal/interp"
)

// ProgramInfo is the wire description of a registered program.
type ProgramInfo struct {
	// ID is the content address of the source ("sha256:<hex>").
	ID string `json:"id"`
	// Lang is the source language ("fpl" or "go").
	Lang string `json:"lang"`
	// Func is the default function jobs referencing this program analyze
	// (set at registration; jobs may override it).
	Func string `json:"func"`
	// Funcs lists every function declared by the source.
	Funcs []string `json:"funcs"`
	// Dim is the input arity of the default function.
	Dim int `json:"dim"`
	// Branches and Ops count the instrumented branch and operation
	// sites of the default function.
	Branches int `json:"branches"`
	Ops      int `json:"ops"`
	// SourceBytes is the registered source length.
	SourceBytes int `json:"sourceBytes"`
	// Registered is the registration time.
	Registered time.Time `json:"registered"`
}

type registeredProgram struct {
	info   ProgramInfo
	source string
}

// DefaultMaxPrograms bounds the program registry.
const DefaultMaxPrograms = 1024

// ProgramStore is the fpserve /v1 program registry: FPL sources
// registered once under their content address and referenced by ID from
// any number of jobs. Registration compiles through the shared module
// cache, so the first job on a registered program is already a cache
// hit, and identical sources registered twice are the same resource.
type ProgramStore struct {
	// MaxPrograms bounds registered programs; 0 selects
	// DefaultMaxPrograms. Registration beyond the bound is refused (the
	// client controls eviction via DELETE).
	MaxPrograms int

	cache *ModuleCache

	mu   sync.Mutex
	byID map[string]*registeredProgram
}

// NewProgramStore returns an empty store registering through cache.
func NewProgramStore(cache *ModuleCache) *ProgramStore {
	return &ProgramStore{cache: cache, byID: map[string]*registeredProgram{}}
}

// ErrStoreFull is returned when registration would exceed MaxPrograms.
type ErrStoreFull struct{ Max int }

func (e ErrStoreFull) Error() string { return "program store full" }

// Register validates and registers source under its content address,
// with lg as its language and fn (empty = first declared) as the
// default analyzed function. Registering an already-registered source
// is idempotent: the second result reports whether the program was
// already present. Re-registering the same bytes under a different
// language is refused — the ID is the content address of the bytes, so
// one registration owns it.
func (ps *ProgramStore) Register(lg gofront.Lang, source, fn string, now time.Time) (ProgramInfo, bool, error) {
	id := SourceID(source)
	ps.mu.Lock()
	if rp, ok := ps.byID[id]; ok {
		info := rp.info
		ps.mu.Unlock()
		if info.Lang != lg.String() {
			return ProgramInfo{}, false, fmt.Errorf(
				"program %s is already registered with lang %q", id, info.Lang)
		}
		return info, true, nil
	}
	max := ps.MaxPrograms
	if max <= 0 {
		max = DefaultMaxPrograms
	}
	if len(ps.byID) >= max {
		ps.mu.Unlock()
		return ProgramInfo{}, false, ErrStoreFull{Max: max}
	}
	ps.mu.Unlock()

	// Compile outside the store lock (the module cache serializes
	// per-module compilation itself).
	it, _, err := ps.cache.Module(lg, source, interp.DefaultEngine)
	if err != nil {
		return ProgramInfo{}, false, err
	}
	if fn == "" {
		fn = it.Mod.Order[0]
	}
	p, _, err := ps.cache.Program(lg, source, fn, interp.DefaultEngine)
	if err != nil {
		return ProgramInfo{}, false, err
	}
	funcs := make([]string, len(it.Mod.Order))
	copy(funcs, it.Mod.Order)
	info := ProgramInfo{
		ID:          id,
		Lang:        lg.String(),
		Func:        fn,
		Funcs:       funcs,
		Dim:         p.Dim,
		Branches:    len(p.Branches),
		Ops:         len(p.Ops),
		SourceBytes: len(source),
		Registered:  now,
	}

	ps.mu.Lock()
	defer ps.mu.Unlock()
	if rp, ok := ps.byID[id]; ok { // raced with an identical registration
		if rp.info.Lang != lg.String() {
			return ProgramInfo{}, false, fmt.Errorf(
				"program %s is already registered with lang %q", id, rp.info.Lang)
		}
		return rp.info, true, nil
	}
	if len(ps.byID) >= max { // re-check: concurrent distinct registrations
		return ProgramInfo{}, false, ErrStoreFull{Max: max}
	}
	ps.byID[id] = &registeredProgram{info: info, source: source}
	return info, false, nil
}

// Lookup resolves a registered program by ID.
func (ps *ProgramStore) Lookup(id string) (ProgramInfo, string, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	rp, ok := ps.byID[id]
	if !ok {
		return ProgramInfo{}, "", false
	}
	return rp.info, rp.source, true
}

// Delete evicts a registered program and its cached modules (under
// every engine). In-flight jobs keep their program instances; only the
// registration and the cache slots go away.
func (ps *ProgramStore) Delete(id string) bool {
	ps.mu.Lock()
	rp, ok := ps.byID[id]
	delete(ps.byID, id)
	ps.mu.Unlock()
	if !ok {
		return false
	}
	lg, _ := gofront.ParseLang(rp.info.Lang)
	for _, eng := range []interp.Engine{interp.EngineVM, interp.EngineTree} {
		ps.cache.Drop(lg, rp.source, eng)
	}
	return true
}

// List returns the registered programs ordered by ID.
func (ps *ProgramStore) List() []ProgramInfo {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]ProgramInfo, 0, len(ps.byID))
	for _, rp := range ps.byID {
		out = append(out, rp.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered programs.
func (ps *ProgramStore) Len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.byID)
}
