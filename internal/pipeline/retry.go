package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryableError marks a failure as transient: the operation did not
// land, but retrying it (with backoff) is expected to succeed once the
// underlying pressure — journal I/O contention, a requeue racing a
// restart — clears. The job engine wraps storage failures in it, and
// the /v1 surface maps it to 503 + Retry-After instead of failing the
// request permanently.
type RetryableError struct {
	// Op names the failed operation ("journal append", "requeue", ...).
	Op string
	// Err is the underlying failure.
	Err error
}

func (e *RetryableError) Error() string { return e.Op + ": " + e.Err.Error() }
func (e *RetryableError) Unwrap() error { return e.Err }

// Transient marks the error retryable for the journal-side
// classification interface too, so the two layers agree.
func (e *RetryableError) Transient() bool { return true }

// Retryable classifies err: a *RetryableError, or anything in the
// chain declaring Transient() true (the journal's injected and I/O
// failures), should be retried with backoff; everything else is
// permanent.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RetryableError
	if errors.As(err, &re) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Backoff is a capped exponential backoff schedule with deterministic
// jitter: attempt k waits Base·2^k, capped at Max, each delay jittered
// by ±25% drawn from the seeded source — so concurrent retriers
// de-synchronize, but a replayed campaign waits identically.
type Backoff struct {
	// Base is the first delay (0 = 5ms).
	Base time.Duration
	// Max caps the delay (0 = 1s).
	Max time.Duration
	// Attempts bounds total tries (0 = 6).
	Attempts int
	// Seed drives the jitter.
	Seed int64
}

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 5 * time.Millisecond
}

func (b Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return time.Second
}

func (b Backoff) attempts() int {
	if b.Attempts > 0 {
		return b.Attempts
	}
	return 6
}

// Delay returns the jittered wait before retry attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	d := b.base() << attempt
	if d <= 0 || d > b.max() {
		d = b.max()
	}
	// ±25% deterministic jitter: the rng is positioned per (seed,
	// attempt) so a delay can be recomputed without shared state.
	rng := rand.New(rand.NewSource(b.Seed ^ int64(attempt)*0x9e3779b9))
	jitter := time.Duration(float64(d) * 0.25 * (2*rng.Float64() - 1))
	return d + jitter
}

// Retry runs fn until it succeeds, fails permanently, exhausts the
// attempt budget, or ctx fires. Only failures Retryable classifies as
// transient are retried; the last error is returned wrapped with op.
func Retry(ctx context.Context, op string, b Backoff, fn func() error) error {
	var err error
	for attempt := 0; attempt < b.attempts(); attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(b.Delay(attempt - 1)):
			case <-ctx.Done():
				return fmt.Errorf("%s: %w (last error: %v)", op, ctx.Err(), err)
			}
		}
		if err = fn(); err == nil {
			return nil
		}
		if !Retryable(err) {
			return fmt.Errorf("%s: %w", op, err)
		}
	}
	return fmt.Errorf("%s: retries exhausted: %w", op, err)
}
