package pipeline

// This file implements the fpserve /v1 resource API: registered
// programs, asynchronous jobs with SSE streaming and cancellation, and
// the problem+json error model. See docs/api.md for the endpoint
// reference.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/analysis"
	"repro/internal/gofront"
	"repro/internal/interp"
	"repro/internal/opt"
	"repro/internal/sat"
)

// v1h wraps a /v1 handler with the per-request deadline: a
// Request-Timeout header (a Go duration, e.g. "2s" or "500ms") bounds
// the request's context. Malformed values are a validation problem.
func v1h(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if raw := r.Header.Get("Request-Timeout"); raw != "" {
			d, err := time.ParseDuration(raw)
			if err != nil || d <= 0 {
				validationProblem(w, "bad Request-Timeout header",
					[]*analysis.SpecError{{Field: "Request-Timeout", Value: raw,
						Reason: "want a positive Go duration, e.g. 2s or 500ms"}})
				return
			}
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// --- Programs ---

// programRegisterRequest is the POST /v1/programs payload.
type programRegisterRequest struct {
	// Source is the program source to register.
	Source string `json:"source"`
	// Lang names the source language: "fpl" (the default) or "go".
	Lang string `json:"lang,omitempty"`
	// Func optionally selects the default analyzed function (empty =
	// first declared).
	Func string `json:"func,omitempty"`
}

func (s *Server) handleProgramRegister(w http.ResponseWriter, r *http.Request) {
	var req programRegisterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		validationProblem(w, "bad request body: "+err.Error(), nil)
		return
	}
	if req.Source == "" {
		validationProblem(w, "empty program",
			[]*analysis.SpecError{{Field: "source", Reason: "source is required"}})
		return
	}
	lg, err := gofront.ParseLang(req.Lang)
	if err != nil {
		validationProblem(w, "bad program language",
			[]*analysis.SpecError{{Field: "lang", Value: req.Lang, Reason: err.Error()}})
		return
	}
	info, existed, err := s.Programs.Register(lg, req.Source, req.Func, time.Now().UTC())
	if err != nil {
		var full ErrStoreFull
		if errors.As(err, &full) {
			writeProblem(w, http.StatusInsufficientStorage, problemOverloaded,
				"program store full",
				fmt.Sprintf("the store holds its maximum of %d programs; DELETE one to make room", full.Max))
			return
		}
		validationProblem(w, "program does not compile",
			[]*analysis.SpecError{{Field: "source", Reason: err.Error()}})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/programs/"+info.ID)
	if existed {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(info)
}

func (s *Server) handleProgramList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Programs []ProgramInfo `json:"programs"`
	}{Programs: s.Programs.List()})
}

func (s *Server) handleProgramGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, _, ok := s.Programs.Lookup(id)
	if !ok {
		notFoundProblem(w, "program", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

func (s *Server) handleProgramDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Programs.Delete(id) {
		notFoundProblem(w, "program", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- Jobs ---

// V1Job is one unit of a /v1 batch: a pipeline Job that may also
// reference a registered program by ID instead of carrying source.
type V1Job struct {
	// Program references a registered program ("sha256:<hex>"); the
	// job runs under the language the program was registered with.
	Program string `json:"program,omitempty"`
	// Builtin / Source / Lang / Func are the inline forms (see Job).
	Builtin string `json:"builtin,omitempty"`
	Source  string `json:"source,omitempty"`
	Lang    string `json:"lang,omitempty"`
	Func    string `json:"func,omitempty"`
	// Spec selects and configures the analysis.
	Spec analysis.Spec `json:"spec"`
}

// jobSubmitRequest is the POST /v1/jobs payload: an explicit job list,
// or one program fanned over a spec list, plus the job deadline.
type jobSubmitRequest struct {
	Jobs []V1Job `json:"jobs,omitempty"`
	// Program / Builtin / Source / Lang / Func name one program for
	// the shorthand form.
	Program string          `json:"program,omitempty"`
	Builtin string          `json:"builtin,omitempty"`
	Source  string          `json:"source,omitempty"`
	Lang    string          `json:"lang,omitempty"`
	Func    string          `json:"func,omitempty"`
	Specs   []analysis.Spec `json:"specs,omitempty"`
	// Timeout is the job's deadline as a Go duration ("30s"); on expiry
	// the job is cancelled mid-minimization and keeps its partial
	// results. Empty means no deadline.
	Timeout string `json:"timeout,omitempty"`
}

func (req jobSubmitRequest) v1jobs() []V1Job {
	if len(req.Jobs) > 0 {
		return req.Jobs
	}
	out := make([]V1Job, 0, len(req.Specs))
	for _, sp := range req.Specs {
		out = append(out, V1Job{Program: req.Program, Builtin: req.Builtin,
			Source: req.Source, Lang: req.Lang, Func: req.Func, Spec: sp})
	}
	return out
}

// resolveJobs validates the batch field-by-field and lowers every V1Job
// to a pipeline Job (program references become their registered
// source, hitting the same cache slot registration warmed). It returns
// every validation failure, not just the first, each located by its
// job index.
func (s *Server) resolveJobs(v1jobs []V1Job) ([]Job, []*analysis.SpecError) {
	var errs []*analysis.SpecError
	loc := func(i int, field string) string { return fmt.Sprintf("jobs[%d].%s", i, field) }
	jobs := make([]Job, 0, len(v1jobs))
	for i, vj := range v1jobs {
		job := Job{Builtin: vj.Builtin, Source: vj.Source, Lang: vj.Lang, Func: vj.Func, Spec: vj.Spec}

		if _, err := gofront.ParseLang(vj.Lang); err != nil {
			errs = append(errs, &analysis.SpecError{Field: loc(i, "lang"),
				Value: vj.Lang, Reason: err.Error()})
			jobs = append(jobs, job)
			continue
		}

		a, err := analysis.Lookup(vj.Spec.Analysis)
		var spe *analysis.SpecError
		if err != nil {
			if errors.As(err, &spe) {
				errs = append(errs, &analysis.SpecError{Field: loc(i, "spec.analysis"),
					Value: spe.Value, Reason: spe.Reason})
			} else {
				errs = append(errs, &analysis.SpecError{Field: loc(i, "spec.analysis"), Reason: err.Error()})
			}
			jobs = append(jobs, job)
			continue
		}

		sources := 0
		for _, set := range []bool{vj.Program != "", vj.Builtin != "", vj.Source != ""} {
			if set {
				sources++
			}
		}
		if sources > 1 {
			errs = append(errs, &analysis.SpecError{Field: loc(i, "program"),
				Reason: "set at most one of program, builtin, source"})
			jobs = append(jobs, job)
			continue
		}
		if vj.Program != "" {
			info, src, ok := s.Programs.Lookup(vj.Program)
			if !ok {
				errs = append(errs, &analysis.SpecError{Field: loc(i, "program"), Value: vj.Program,
					Reason: fmt.Sprintf("unknown program %q: register it via POST /v1/programs", vj.Program)})
				jobs = append(jobs, job)
				continue
			}
			job.Source = src
			// The registration's language travels with the source: a
			// program-referencing job always runs under the language it
			// was registered with.
			job.Lang = info.Lang
			if job.Func == "" {
				job.Func = info.Func
			}
		}
		if a.Knobs().Program && job.Builtin == "" && job.Source == "" {
			errs = append(errs, &analysis.SpecError{Field: loc(i, "program"),
				Reason: fmt.Sprintf("analysis %q needs a program: set program, builtin, or source", a.Name())})
		}
		if a.Knobs().Formula {
			if vj.Spec.Formula == "" {
				errs = append(errs, &analysis.SpecError{Field: loc(i, "spec.formula"),
					Reason: fmt.Sprintf("analysis %q needs a formula", a.Name())})
			} else if _, _, err := sat.Parse(vj.Spec.Formula); err != nil {
				errs = append(errs, &analysis.SpecError{Field: loc(i, "spec.formula"),
					Value: vj.Spec.Formula, Reason: err.Error()})
			}
		}
		if a.Knobs().Path {
			bad := len(vj.Spec.Path) == 0
			for _, d := range vj.Spec.Path {
				if d.Site < 0 {
					bad = true
				}
			}
			if bad {
				errs = append(errs, &analysis.SpecError{Field: loc(i, "spec.path"),
					Reason: "empty or invalid path; want e.g. [{\"Site\": 0, \"Taken\": true}]"})
			}
		}
		// Pair validity only (NaN, lo > hi) — the dimension check needs
		// the program and happens at run time.
		if _, err := opt.BroadcastBounds(vj.Spec.Bounds, len(vj.Spec.Bounds)); err != nil {
			errs = append(errs, &analysis.SpecError{Field: loc(i, "spec.bounds"), Reason: err.Error()})
		}
		if _, err := interp.ParseEngine(vj.Spec.Engine); err != nil {
			errs = append(errs, &analysis.SpecError{Field: loc(i, "spec.engine"),
				Value: vj.Spec.Engine, Reason: err.Error()})
		}
		if spe := vj.Spec.ValidateBackend(); spe != nil {
			errs = append(errs, &analysis.SpecError{Field: loc(i, "spec."+spe.Field),
				Value: spe.Value, Reason: spe.Reason})
		}
		jobs = append(jobs, job)
	}
	return jobs, errs
}

// jobSubmitResponse is the 202 body of POST /v1/jobs.
type jobSubmitResponse struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	Jobs   int       `json:"jobs"`
	// URL and Events locate the job resource and its SSE stream.
	URL    string `json:"url"`
	Events string `json:"events"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobSubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		validationProblem(w, "bad request body: "+err.Error(), nil)
		return
	}
	var timeout time.Duration
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			validationProblem(w, "bad job timeout",
				[]*analysis.SpecError{{Field: "timeout", Value: req.Timeout,
					Reason: "want a positive Go duration, e.g. 30s"}})
			return
		}
		timeout = d
	}
	v1jobs := req.v1jobs()
	if len(v1jobs) == 0 {
		validationProblem(w, "no jobs",
			[]*analysis.SpecError{{Field: "jobs",
				Reason: "set jobs, or program/builtin/source plus specs"}})
		return
	}
	if len(v1jobs) > maxJobsPerRequest {
		writeProblem(w, http.StatusBadRequest, problemTooLarge, "batch too large",
			fmt.Sprintf("%d jobs exceeds the per-request limit of %d", len(v1jobs), maxJobsPerRequest))
		return
	}
	jobs, errs := s.resolveJobs(v1jobs)
	if len(errs) > 0 {
		validationProblem(w, fmt.Sprintf("%d validation errors across %d jobs", len(errs), len(v1jobs)), errs)
		return
	}
	rec, err := s.Engine.Submit(nil, jobs, timeout)
	if err != nil {
		s.submitProblem(w, err)
		return
	}
	s.requests.Add(1)
	s.jobs.Add(int64(len(jobs)))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+rec.ID)
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(jobSubmitResponse{
		ID:     rec.ID,
		Status: JobRunning,
		Jobs:   rec.Total,
		URL:    "/v1/jobs/" + rec.ID,
		Events: "/v1/jobs/" + rec.ID + "/events",
	})
}

// submitProblem maps a Submit refusal to its wire form. Load shedding —
// admission-control watermarks and a job table full of non-terminal
// jobs — is 429 with a Retry-After hint: the client did nothing wrong,
// the server is momentarily full. Transient storage failures are 503
// with the same hint (the server could not make the submission durable
// right now). Shutdown is 503 without a hint.
func (s *Server) submitProblem(w http.ResponseWriter, err error) {
	var over ErrOverloaded
	switch {
	case errors.As(err, &over):
		setRetryAfter(w, over.RetryAfter)
		writeProblem(w, http.StatusTooManyRequests, problemOverloaded,
			"too many jobs in flight", err.Error())
	case errors.Is(err, ErrJobTableFull):
		setRetryAfter(w, s.Engine.retryAfter())
		writeProblem(w, http.StatusTooManyRequests, problemOverloaded,
			"job table full", err.Error()+"; retry after some finish, or cancel one")
	case errors.Is(err, ErrShuttingDown):
		writeProblem(w, http.StatusServiceUnavailable, problemShutdown,
			"cannot accept jobs", err.Error())
	case Retryable(err):
		setRetryAfter(w, s.Engine.retryAfter())
		writeProblem(w, http.StatusServiceUnavailable, problemOverloaded,
			"submission not durable", err.Error())
	default:
		writeProblem(w, http.StatusServiceUnavailable, problemOverloaded,
			"cannot accept jobs", err.Error())
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: s.Engine.List()})
}

// defaultResultPage bounds GET /v1/jobs/{id} result pages when the
// client does not pass an explicit limit.
const defaultResultPage = 256

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	// Validate pagination before the lookup, so a malformed request is
	// a 400 whether or not the job exists.
	offset, limit := 0, defaultResultPage
	q := r.URL.Query()
	var errs []*analysis.SpecError
	if raw := q.Get("offset"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			errs = append(errs, &analysis.SpecError{Field: "offset", Value: raw,
				Reason: "want a nonnegative integer"})
		} else {
			offset = v
		}
	}
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			errs = append(errs, &analysis.SpecError{Field: "limit", Value: raw,
				Reason: "want a positive integer"})
		} else {
			limit = v
		}
	}
	if len(errs) > 0 {
		validationProblem(w, "bad pagination", errs)
		return
	}
	id := r.PathValue("id")
	rec, ok := s.Engine.Get(id)
	if !ok {
		notFoundProblem(w, "job", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rec.View(offset, limit))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, wasRunning, ok := s.Engine.Cancel(id)
	if !ok {
		notFoundProblem(w, "job", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if wasRunning {
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(rec.View(0, defaultResultPage))
}

// handleJobEvents streams a job as Server-Sent Events: one "result"
// event per job result as it lands, then one "done" event with the
// final status. A subscriber attaching late replays the existing
// results first — the stream always delivers the complete sequence.
// While the job runs quietly, periodic "heartbeat" events (every
// Server.Heartbeat) let the client tell a slow minimization from a dead
// connection; and when the job ends because the server is draining, a
// terminal "shutdown" event precedes "done" so the client knows to
// reconnect elsewhere rather than resubmit.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.Engine.Get(id)
	if !ok {
		notFoundProblem(w, "job", id)
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	emit := func(event string, data []byte) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		if flusher != nil {
			flusher.Flush()
		}
	}
	// status/done events carry the job header only — the results
	// themselves are the "result" events.
	type statusEvent struct {
		ID        string     `json:"id"`
		Status    JobStatus  `json:"status"`
		Jobs      int        `json:"jobs"`
		Completed int        `json:"completed"`
		Created   time.Time  `json:"created"`
		Finished  *time.Time `json:"finished,omitempty"`
		Reason    string     `json:"reason,omitempty"`
	}
	statusJSON := func() []byte {
		v := rec.Header()
		b, _ := json.Marshal(statusEvent{
			ID: v.ID, Status: v.Status, Jobs: v.Jobs, Completed: v.Completed,
			Created: v.Created, Finished: v.Finished, Reason: v.Reason,
		})
		return b
	}

	emit("status", statusJSON())
	final := FollowJobHeartbeat(r.Context(), rec, s.Heartbeat, func(res []byte) {
		emit("result", res)
	}, func() {
		emit("heartbeat", statusJSON())
	})
	if final == JobRunning {
		return // the client went away first
	}
	if v := rec.Header(); v.Reason == errShutdown.Error() {
		emit("shutdown", statusJSON())
	}
	emit("done", statusJSON())
}
