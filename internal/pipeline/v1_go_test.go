package pipeline_test

// End-to-end coverage for the Go frontend behind the /v1 surface:
// registering Go programs (lang: "go"), the language travelling with
// program-referencing jobs, cross-language registration conflicts, and
// all six analyses completing over lifted GSL code served through the
// API.

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/gsl/lift"
	"repro/internal/pipeline"
)

// v1GoSource is a minimal Go program exercising the numeric subset:
// a branch, a math builtin, and float64 arithmetic.
const v1GoSource = "package prog\n\nimport \"math\"\n\nfunc f(x float64) float64 {\n\tif x < 1.0 {\n\t\treturn math.Exp(x) + 1.0\n\t}\n\treturn x * 2.0\n}\n"

// TestV1GoProgram registers a Go program and runs all six analyses
// against it through /v1: five program-referencing jobs (bva, coverage,
// overflow, nan, reach) inherit the registration's language, plus the
// formula-only xsat.
func TestV1GoProgram(t *testing.T) {
	srv, ts := v1Server(t, 0)

	body := fmt.Sprintf(`{"source": %q, "lang": "go", "func": "f"}`, v1GoSource)
	resp, data := doJSON(t, "POST", ts.URL+"/v1/programs", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", resp.StatusCode, data)
	}
	info := decode[pipeline.ProgramInfo](t, data)
	if info.Lang != "go" {
		t.Errorf("Lang = %q, want %q", info.Lang, "go")
	}
	if info.Func != "f" || info.Dim != 1 || info.Branches != 1 {
		t.Errorf("unexpected metadata: %+v", info)
	}
	if info.ID != pipeline.SourceID(v1GoSource) {
		t.Errorf("ID = %q, want content address %q", info.ID, pipeline.SourceID(v1GoSource))
	}

	// The same bytes under a different language are a different program
	// semantically but the same content address: refuse the conflict.
	resp, data = doJSON(t, "POST", ts.URL+"/v1/programs",
		fmt.Sprintf(`{"source": %q, "lang": "fpl", "func": "f"}`, v1GoSource))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-lang re-register: status %d: %s", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte("already registered")) {
		t.Errorf("cross-lang re-register problem body: %s", data)
	}

	// Same bytes, same language: idempotent 200.
	resp, data = doJSON(t, "POST", ts.URL+"/v1/programs", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register: status %d: %s", resp.StatusCode, data)
	}
	if again := decode[pipeline.ProgramInfo](t, data); again.Lang != "go" {
		t.Errorf("re-register Lang = %q", again.Lang)
	}

	submit := fmt.Sprintf(`{
		"jobs": [
			{"program": %[1]q, "spec": {"analysis": "bva", "seed": 1, "starts": 2, "evals": 200,
			  "bounds": [{"lo": -50, "hi": 50}]}},
			{"program": %[1]q, "spec": {"analysis": "coverage", "seed": 1, "evals": 300, "stall": 2,
			  "bounds": [{"lo": -50, "hi": 50}]}},
			{"program": %[1]q, "spec": {"analysis": "overflow", "seed": 1, "rounds": 4, "evals": 60,
			  "bounds": [{"lo": -750, "hi": 750}]}},
			{"program": %[1]q, "spec": {"analysis": "nan", "seed": 1, "rounds": 4, "evals": 60,
			  "bounds": [{"lo": -750, "hi": 750}]}},
			{"program": %[1]q, "spec": {"analysis": "reach", "seed": 1, "starts": 2, "evals": 300,
			  "path": [{"Site": 0, "Taken": true}], "bounds": [{"lo": -10, "hi": 10}]}},
			{"spec": {"analysis": "xsat", "seed": 1, "formula": "x < 1 && x + 1 >= 2"}}
		]}`, info.ID)
	resp, data = doJSON(t, "POST", ts.URL+"/v1/jobs", submit)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	sub := decode[struct {
		ID string `json:"id"`
	}](t, data)

	done := pollJob(t, ts.URL, sub.ID, 120*time.Second, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCompleted
	})
	if done.Completed != 6 || len(done.Results) != 6 {
		t.Fatalf("completed view: %+v", done)
	}
	for i, raw := range done.Results {
		r := decodeResult(t, raw)
		if r.Error != "" || r.Index != i {
			t.Errorf("result %d: %+v", i, r)
		}
		// The branch x < 1 is trivially two-sided under [-50, 50] and the
		// reach target (site 0 taken) is reachable under [-10, 10]: those
		// analyses must positively succeed, not just complete.
		if (r.Analysis == "coverage" || r.Analysis == "reach") && r.Failed {
			t.Errorf("result %d (%s) failed: %+v", i, r.Analysis, r)
		}
	}
	// Registration compiled the module once; all five program jobs were
	// cache hits on the slot registration warmed.
	if st := srv.PL.Cache.Stats(); st.Compiles != 1 {
		t.Errorf("program compiled %d times across registration + 5 jobs, want 1", st.Compiles)
	}
}

// TestV1GoCorpus serves the whole lifted GSL corpus through /v1 as one
// registered Go program, then analyzes several of its functions by
// overriding the job's func.
func TestV1GoCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus analyses in -short mode")
	}
	_, ts := v1Server(t, 0)

	src := lift.CombinedSource()
	body := fmt.Sprintf(`{"source": %q, "lang": "go", "func": "airyAiVal"}`, src)
	resp, data := doJSON(t, "POST", ts.URL+"/v1/programs", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register corpus: status %d: %s", resp.StatusCode, data)
	}
	info := decode[pipeline.ProgramInfo](t, data)
	if info.Lang != "go" || info.Dim != 1 {
		t.Fatalf("corpus metadata: %+v", info)
	}

	submit := fmt.Sprintf(`{
		"jobs": [
			{"program": %[1]q, "spec": {"analysis": "bva", "seed": 1, "starts": 2, "evals": 150,
			  "bounds": [{"lo": -10, "hi": 10}]}},
			{"program": %[1]q, "func": "gslCosVal", "spec": {"analysis": "coverage", "seed": 1,
			  "evals": 200, "stall": 2, "bounds": [{"lo": -100, "hi": 100}]}},
			{"program": %[1]q, "func": "hyperg2F0Val", "spec": {"analysis": "overflow", "seed": 1,
			  "rounds": 3, "evals": 60, "bounds": [{"lo": -500, "hi": 500}]}},
			{"program": %[1]q, "func": "besselKnuScaledAsympxVal", "spec": {"analysis": "nan",
			  "seed": 1, "rounds": 3, "evals": 60, "bounds": [{"lo": -100, "hi": 100}]}}
		]}`, info.ID)
	resp, data = doJSON(t, "POST", ts.URL+"/v1/jobs", submit)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	sub := decode[struct {
		ID string `json:"id"`
	}](t, data)

	done := pollJob(t, ts.URL, sub.ID, 120*time.Second, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCompleted
	})
	if done.Completed != 4 || len(done.Results) != 4 {
		t.Fatalf("completed view: %+v", done)
	}
	for i, raw := range done.Results {
		if r := decodeResult(t, raw); r.Error != "" {
			t.Errorf("corpus result %d: %+v", i, r)
		}
	}
}

// TestV1GoLangValidation pins the error surface: an unknown language is
// rejected at registration and per-job, each located by field.
func TestV1GoLangValidation(t *testing.T) {
	_, ts := v1Server(t, 2)

	resp, data := doJSON(t, "POST", ts.URL+"/v1/programs",
		fmt.Sprintf(`{"source": %q, "lang": "rust"}`, v1GoSource))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lang register: status %d: %s", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte(`"lang"`)) || !bytes.Contains(data, []byte("unknown language")) {
		t.Errorf("bad lang register problem body: %s", data)
	}

	submit := fmt.Sprintf(`{"jobs": [
		{"source": %q, "lang": "rust", "spec": {"analysis": "coverage", "evals": 10, "stall": 1}}
	]}`, v1GoSource)
	resp, data = doJSON(t, "POST", ts.URL+"/v1/jobs", submit)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lang submit: status %d: %s", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte("jobs[0].lang")) {
		t.Errorf("bad lang submit problem body: %s", data)
	}

	// An FPL source pushed through the Go frontend is a compile-time
	// validation problem at registration, positioned like any Go error.
	resp, data = doJSON(t, "POST", ts.URL+"/v1/programs",
		fmt.Sprintf(`{"source": %q, "lang": "go"}`, v1TestSource))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("FPL-as-Go register: status %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "does not compile") {
		t.Errorf("FPL-as-Go problem body: %s", data)
	}
}
