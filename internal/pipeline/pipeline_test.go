package pipeline_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/gofront"
	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/pipeline"
)

// fixtureFuncs names the function to analyze in each testdata fixture.
var fixtureFuncs = map[string]string{
	"assertion.fpl": "prog",
	"fig2.fpl":      "prog",
	"newton.fpl":    "newton_sqrt",
	"sin_fig8.fpl":  "sin_dispatch",
	"sum3.fpl":      "prog",
}

func loadFixtures(t testing.TB) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fpl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixtures: %v", err)
	}
	srcs := map[string]string{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(p)] = string(data)
	}
	return srcs
}

// fixtureJobs builds the full e2e batch: every program analysis over
// every testdata fixture, plus formula jobs for xsat. specWorkers is
// the intra-analysis parallelism each job runs with.
func fixtureJobs(t testing.TB, srcs map[string]string, specWorkers int) []pipeline.Job {
	t.Helper()
	bounds := []opt.Bound{{Lo: -100, Hi: 100}}
	var jobs []pipeline.Job
	names := make([]string, 0, len(srcs))
	for name := range srcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn, ok := fixtureFuncs[name]
		if !ok {
			t.Fatalf("fixture %s has no entry in fixtureFuncs; add one", name)
		}
		for _, spec := range []analysis.Spec{
			{Analysis: "bva", Seed: 1, Starts: 2, Evals: 200, Bounds: bounds},
			{Analysis: "coverage", Seed: 2, Evals: 300, Stall: 2, Bounds: bounds},
			{Analysis: "overflow", Seed: 3, Evals: 300, Rounds: 6},
			{Analysis: "reach", Seed: 4, Starts: 2, Evals: 500, Bounds: bounds,
				Path: []instrument.Decision{{Site: 0, Taken: true}}},
			{Analysis: "nan", Seed: 5, Evals: 300, Rounds: 6},
		} {
			spec.Workers = specWorkers
			jobs = append(jobs, pipeline.Job{Source: srcs[name], Func: fn, Spec: spec})
		}
	}
	for _, formula := range []string{
		"x < 1 && x + 1 >= 2",
		"a*a + b*b == 25 && a > b",
	} {
		jobs = append(jobs, pipeline.Job{Spec: analysis.Spec{
			Analysis: "xsat", Seed: 1, Starts: 2, Evals: 400, Workers: specWorkers,
			Bounds: []opt.Bound{{Lo: -30, Hi: 30}}, Formula: formula,
		}})
	}
	return jobs
}

// normalizeResults masks the one field that legitimately varies
// between runs — the wall-clock duration of the round-based hunts —
// through pipeline.NormalizeDurations (the single definition of what
// may differ), leaving everything the analyses computed.
func normalizeResults(t testing.TB, results []pipeline.JobResult) []map[string]any {
	t.Helper()
	out := make([]map[string]any, 0, len(results))
	for _, r := range results {
		var m map[string]any
		if err := json.Unmarshal(pipeline.NormalizeDurations(pipeline.MarshalResult(r)), &m); err != nil {
			t.Fatalf("result %d: %v", r.Index, err)
		}
		out = append(out, m)
	}
	return out
}

// TestPipelineEveryAnalysisEveryFixture runs the whole registry over
// every FPL fixture and asserts (a) nothing errors, (b) results arrive
// in job order, and (c) the batch is bit-identical between a serial run
// (1 pipeline worker, 1 spec worker) and a heavily parallel one.
func TestPipelineEveryAnalysisEveryFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("full fixture sweep in -short mode")
	}
	srcs := loadFixtures(t)

	serialJobs := fixtureJobs(t, srcs, 1)
	serial := pipeline.New(1).RunBatch(context.Background(), serialJobs)
	if len(serial) != len(serialJobs) {
		t.Fatalf("%d results for %d jobs", len(serial), len(serialJobs))
	}
	for i, r := range serial {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if r.Error != "" {
			t.Errorf("job %d (%s): %s", i, r.Analysis, r.Error)
		}
		if r.Report == nil {
			t.Errorf("job %d (%s): no report", i, r.Analysis)
		}
	}

	parallelJobs := fixtureJobs(t, srcs, 3)
	parallel := pipeline.New(8).RunBatch(context.Background(), parallelJobs)

	got, want := normalizeResults(t, parallel), normalizeResults(t, serial)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			g, _ := json.Marshal(got[i])
			w, _ := json.Marshal(want[i])
			t.Errorf("job %d diverged across worker counts.\nparallel: %s\nserial:   %s", i, g, w)
		}
	}
}

// TestModuleCacheNoRecompile pins the compiled-module cache contract:
// one compile per distinct (source, engine), every later request a hit.
func TestModuleCacheNoRecompile(t *testing.T) {
	srcs := loadFixtures(t)
	src := srcs["fig2.fpl"]

	c := pipeline.NewModuleCache()
	p1, hit, err := c.Program(gofront.LangFPL, src, "prog", 0)
	if err != nil || hit {
		t.Fatalf("first request: hit=%v err=%v", hit, err)
	}
	p2, hit, err := c.Program(gofront.LangFPL, src, "prog", 0)
	if err != nil || !hit {
		t.Fatalf("second request: hit=%v err=%v", hit, err)
	}
	if p1 == p2 {
		t.Fatal("cache returned the same instance twice; instances must be independent")
	}
	if _, hit, _ = c.Program(gofront.LangFPL, src, "", 0); !hit {
		t.Fatal("same source, default func: want module hit")
	}
	if st := c.Stats(); st.Compiles != 1 || st.Modules != 1 || st.Hits != 2 {
		t.Fatalf("stats after 3 same-source requests: %+v", st)
	}

	// A different engine is a different compiled artifact.
	if _, hit, err = c.Program(gofront.LangFPL, src, "prog", 1); err != nil || hit {
		t.Fatalf("tree-engine request: hit=%v err=%v", hit, err)
	}
	if st := c.Stats(); st.Compiles != 2 || st.Modules != 2 {
		t.Fatalf("stats after engine switch: %+v", st)
	}

	// Instances from the cache execute independently: identical results
	// from both on the same analysis.
	spec := analysis.Spec{Analysis: "coverage", Seed: 2, Evals: 300, Stall: 2,
		Workers: 1, Bounds: []opt.Bound{{Lo: -100, Hi: 100}}}
	a, err := analysis.Lookup("coverage")
	if err != nil {
		t.Fatal(err)
	}
	rep1, err1 := a.Run(context.Background(), analysis.Input{Program: p1}, spec)
	rep2, err2 := a.Run(context.Background(), analysis.Input{Program: p2}, spec)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	b1, _ := json.Marshal(rep1)
	b2, _ := json.Marshal(rep2)
	if string(b1) != string(b2) {
		t.Errorf("cached instances diverged:\n%s\n%s", b1, b2)
	}
}

// TestStreamCtxCanceled: a canceled context reports every undispatched
// job as canceled instead of running it.
func TestStreamCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := make([]pipeline.Job, 4)
	for i := range jobs {
		jobs[i] = pipeline.Job{Builtin: "fig2", Spec: analysis.Spec{Analysis: "bva", Seed: 1}}
	}
	var got []pipeline.JobResult
	pipeline.New(1).Stream(ctx, jobs, func(r pipeline.JobResult) { got = append(got, r) })
	if len(got) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(got), len(jobs))
	}
	for i, r := range got {
		if r.Index != i || !strings.Contains(r.Error, "canceled") {
			t.Errorf("job %d: %+v", i, r)
		}
	}
}

// TestModuleCacheBounded pins the eviction policy: the cache never
// retains more than MaxModules entries, the hottest module survives
// eviction, and failed compilations are not retained at all.
func TestModuleCacheBounded(t *testing.T) {
	c := pipeline.NewModuleCache()
	c.MaxModules = 4
	src := func(i int) string {
		return "func prog(x double) { var y double = x + " + string(rune('0'+i)) + ".0; }"
	}
	hot := src(0)
	for i := 0; i < 10; i++ {
		if _, _, err := c.Program(gofront.LangFPL, src(i), "prog", 0); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Program(gofront.LangFPL, hot, "prog", 0); err != nil {
			t.Fatal(err) // keep module 0 the most recently used
		}
	}
	st := c.Stats()
	if st.Modules > 4 {
		t.Errorf("cache holds %d modules, cap 4", st.Modules)
	}
	if _, hit, _ := c.Program(gofront.LangFPL, hot, "prog", 0); !hit {
		t.Error("hottest module was evicted")
	}

	if _, _, err := c.Program(gofront.LangFPL, "not fpl", "", 0); err == nil {
		t.Fatal("bad source compiled")
	}
	if st := c.Stats(); st.Modules > 4 {
		t.Errorf("failed compile retained: %d modules", st.Modules)
	}
	// A failed source recompiles (and fails again) rather than pinning
	// a slot.
	before := c.Stats().Compiles
	if _, _, err := c.Program(gofront.LangFPL, "not fpl", "", 0); err == nil {
		t.Fatal("bad source compiled on retry")
	}
	if c.Stats().Compiles != before+1 {
		t.Error("failed source should recompile on retry, not cache")
	}
}

// TestPipelineJobErrors covers the job-level failure modes: they land
// in the result, never panic the batch.
func TestPipelineJobErrors(t *testing.T) {
	pl := pipeline.New(2)
	results := pl.RunBatch(context.Background(), []pipeline.Job{
		{Spec: analysis.Spec{Analysis: "nope"}},
		{Spec: analysis.Spec{Analysis: "bva"}},                                                 // no program
		{Builtin: "nope", Spec: analysis.Spec{Analysis: "bva"}},                                // unknown builtin
		{Source: "func f(x double) {}", Builtin: "fig2", Spec: analysis.Spec{Analysis: "bva"}}, // both
		{Source: "not fpl at all", Spec: analysis.Spec{Analysis: "bva"}},                       // parse error
		{Builtin: "fig2", Spec: analysis.Spec{Analysis: "reach"}},                              // no path
		{Builtin: "fig2", Spec: analysis.Spec{Analysis: "bva", Backend: "nope", Evals: 10, Starts: 1}},
		{Builtin: "fig2", Spec: analysis.Spec{Analysis: "bva", Bounds: []opt.Bound{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}}}, // dim mismatch
		{Builtin: "fig2", Spec: analysis.Spec{Analysis: "bva", Bounds: []opt.Bound{{Lo: 1, Hi: 0}}}},                 // lo > hi
		{Spec: analysis.Spec{Analysis: "xsat", Formula: "x + y + z == 1 && x > 0",
			Bounds: []opt.Bound{{Lo: -4, Hi: 4}, {Lo: -4, Hi: 4}}}}, // bounds ≠ formula dim
	})
	for i, r := range results {
		if r.Error == "" {
			t.Errorf("job %d: expected an error, got report %v", i, r.Summary)
		}
	}

	// Alias lookup still resolves through the pipeline.
	r := pl.RunJob(context.Background(), 0, pipeline.Job{Builtin: "fig2",
		Spec: analysis.Spec{Analysis: "coverme", Seed: 2, Evals: 300, Stall: 2, Workers: 1,
			Bounds: []opt.Bound{{Lo: -100, Hi: 100}}}})
	if r.Error != "" || r.Analysis != "coverage" {
		t.Errorf("alias job: %+v", r)
	}
}
