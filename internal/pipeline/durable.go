package pipeline

// This file gives the job table its durability: a JobStore hook the
// engine writes through at every lifecycle transition, and the
// journal-backed DurableStore fpserve mounts under -data-dir. The
// record vocabulary is small — submit / start / result / terminal /
// drop, plus the journal's own clean-shutdown marker — and replay
// rebuilds the exact table a crashed process had made durable: terminal
// jobs are restored read-only, jobs caught running are requeued from
// their last durable result offset (results are content-deterministic
// per the batch-evaluation contract, so re-execution is safe).

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/journal"
)

// JobStore is the job table's storage hook. The engine calls it at
// every lifecycle transition; a nil store is the volatile (pre-journal)
// behavior. JobSubmitted must be durable before it returns — it is the
// acceptance barrier: a job is only "accepted" (202) once its
// submission can survive a crash. The other appends may batch.
//
// Store errors are classified by Retryable: transient failures are
// retried with backoff by the engine; permanent ones fail the
// operation.
type JobStore interface {
	// JobSubmitted durably records an accepted batch.
	JobSubmitted(id string, jobs []Job, timeout time.Duration, created time.Time) error
	// JobStarted records that execution began (again, after a requeue).
	JobStarted(id string) error
	// ResultAppended records one completed result, already in wire form.
	ResultAppended(id string, index int, result json.RawMessage) error
	// JobTerminal seals a job (completed or canceled).
	JobTerminal(id string, status JobStatus, reason string, finished time.Time) error
	// JobDropped records eviction (TTL or capacity), so a compacted
	// journal does not resurrect evicted jobs.
	JobDropped(id string) error
	// Backlog reports unsynced journal bytes — the admission-control
	// watermark for storage pressure.
	Backlog() int64
}

// RecoveredJob is one job rebuilt from the journal at boot.
type RecoveredJob struct {
	// ID is the job's original identifier (preserved across restarts).
	ID string
	// Jobs is the submitted batch; Timeout and Created its deadline
	// parameters.
	Jobs    []Job
	Timeout time.Duration
	Created time.Time
	// Results is the durable result prefix, in wire form. Results are
	// appended in index order, so len(Results) is the requeue offset.
	Results []json.RawMessage
	// Status/Reason/Finished hold the terminal state, when the job
	// reached one before the crash; Status == JobRunning means the job
	// was in flight and must be requeued.
	Status   JobStatus
	Reason   string
	Finished time.Time
	// Restarts counts the start records seen — how many times some
	// process began executing this job.
	Restarts int
}

// Journal record types and payloads.
const (
	recSubmit   = "submit"
	recStart    = "start"
	recResult   = "result"
	recTerminal = "terminal"
	recDrop     = "drop"
)

type submitData struct {
	Jobs    []Job     `json:"jobs"`
	Timeout int64     `json:"timeoutNs,omitempty"`
	Created time.Time `json:"created"`
}

type resultData struct {
	Index  int             `json:"index"`
	Result json.RawMessage `json:"result"`
}

type terminalData struct {
	Status   JobStatus `json:"status"`
	Reason   string    `json:"reason,omitempty"`
	Finished time.Time `json:"finished"`
}

// DurableStore is the journal-backed JobStore. Besides appending, it
// mirrors the logical job state so it can (a) hand the boot-time
// recovery set to the engine and (b) compact the journal — rewrite the
// snapshot from live state and restart the log — once the log crosses
// its size threshold.
type DurableStore struct {
	mu     sync.Mutex
	j      *journal.Journal
	jobs   map[string]*RecoveredJob
	frozen bool

	cleanShutdown bool
	truncated     int64
	bootRecords   int
}

// OpenStore opens (creating if needed) the journal under dir and
// replays it into the recovery set.
func OpenStore(dir string, o journal.Options) (*DurableStore, error) {
	j, info, err := journal.Open(dir, o)
	if err != nil {
		return nil, err
	}
	s := &DurableStore{
		j:             j,
		jobs:          map[string]*RecoveredJob{},
		cleanShutdown: info.CleanShutdown,
		truncated:     info.TruncatedBytes,
		bootRecords:   len(info.Records),
	}
	for _, rec := range info.Records {
		s.apply(rec)
	}
	return s, nil
}

// apply folds one journal record into the mirrored state. Replay and
// live appends share it, so the mirror can never diverge from what a
// future boot would rebuild.
func (s *DurableStore) apply(rec journal.Record) {
	switch rec.Type {
	case recSubmit:
		var d submitData
		if json.Unmarshal(rec.Data, &d) != nil {
			return
		}
		if _, ok := s.jobs[rec.Job]; ok {
			return // duplicate submit (snapshot + stale log): first wins
		}
		s.jobs[rec.Job] = &RecoveredJob{
			ID: rec.Job, Jobs: d.Jobs,
			Timeout: time.Duration(d.Timeout), Created: d.Created,
			Status: JobRunning,
		}
	case recStart:
		if rj, ok := s.jobs[rec.Job]; ok {
			rj.Restarts++
		}
	case recResult:
		rj, ok := s.jobs[rec.Job]
		if !ok {
			return
		}
		var d resultData
		if json.Unmarshal(rec.Data, &d) != nil {
			return
		}
		// Results land in index order; a replayed duplicate (possible
		// only from anomalous logs) must not shift later offsets.
		if d.Index != len(rj.Results) {
			return
		}
		rj.Results = append(rj.Results, d.Result)
	case recTerminal:
		rj, ok := s.jobs[rec.Job]
		if !ok {
			return
		}
		var d terminalData
		if json.Unmarshal(rec.Data, &d) != nil {
			return
		}
		rj.Status, rj.Reason, rj.Finished = d.Status, d.Reason, d.Finished
	case recDrop:
		delete(s.jobs, rec.Job)
	}
}

// append journals one record (durable or batched), folds it into the
// mirror, and compacts when the log has outgrown its threshold.
func (s *DurableStore) append(rec journal.Record, durable bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return nil // simulated dead process: writes vanish
	}
	if err := s.j.Append(rec, durable); err != nil {
		return err
	}
	s.apply(rec)
	if s.j.ShouldCompact() {
		// Compaction failures are not fatal to the append — the record
		// is already durable in the (long) log; the next append retries.
		s.j.Compact(s.stateLocked())
	}
	return nil
}

// stateLocked serializes the mirror as the snapshot record sequence:
// per job (in ID order), its submit, durable results, and terminal
// record. Start and drop records compact away.
func (s *DurableStore) stateLocked() []journal.Record {
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return jobSeq(ids[a]) < jobSeq(ids[b]) })
	var recs []journal.Record
	for _, id := range ids {
		rj := s.jobs[id]
		recs = append(recs, journal.Record{Type: recSubmit, Job: id, Data: marshal(submitData{
			Jobs: rj.Jobs, Timeout: int64(rj.Timeout), Created: rj.Created})})
		for i, res := range rj.Results {
			recs = append(recs, journal.Record{Type: recResult, Job: id,
				Data: marshal(resultData{Index: i, Result: res})})
		}
		if rj.Status != JobRunning {
			recs = append(recs, journal.Record{Type: recTerminal, Job: id, Data: marshal(terminalData{
				Status: rj.Status, Reason: rj.Reason, Finished: rj.Finished})})
		}
	}
	return recs
}

func marshal(v any) json.RawMessage {
	b, _ := json.Marshal(v)
	return b
}

// jobSeq extracts the numeric suffix of "job-N" IDs (0 when absent).
func jobSeq(id string) int64 {
	n, _ := strconv.ParseInt(strings.TrimPrefix(id, "job-"), 10, 64)
	return n
}

// JobSubmitted implements JobStore; the append is durable (the 202
// acceptance barrier).
func (s *DurableStore) JobSubmitted(id string, jobs []Job, timeout time.Duration, created time.Time) error {
	return s.append(journal.Record{Type: recSubmit, Job: id, Data: marshal(submitData{
		Jobs: jobs, Timeout: int64(timeout), Created: created})}, true)
}

// JobStarted implements JobStore (batched).
func (s *DurableStore) JobStarted(id string) error {
	return s.append(journal.Record{Type: recStart, Job: id}, false)
}

// ResultAppended implements JobStore (batched: results ride the group
// commit — a crash may lose the last few, and the requeue re-derives
// them deterministically).
func (s *DurableStore) ResultAppended(id string, index int, result json.RawMessage) error {
	return s.append(journal.Record{Type: recResult, Job: id,
		Data: marshal(resultData{Index: index, Result: result})}, false)
}

// JobTerminal implements JobStore; terminal records are durable, so an
// acknowledged completion survives.
func (s *DurableStore) JobTerminal(id string, status JobStatus, reason string, finished time.Time) error {
	return s.append(journal.Record{Type: recTerminal, Job: id, Data: marshal(terminalData{
		Status: status, Reason: reason, Finished: finished})}, true)
}

// JobDropped implements JobStore (batched).
func (s *DurableStore) JobDropped(id string) error {
	return s.append(journal.Record{Type: recDrop, Job: id}, false)
}

// Backlog implements JobStore.
func (s *DurableStore) Backlog() int64 { return s.j.Backlog() }

// Recovered returns the replayed job set in submission order. The
// engine consumes it once at boot via JobEngine.Recover.
func (s *DurableStore) Recovered() []RecoveredJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RecoveredJob, 0, len(s.jobs))
	for _, rj := range s.jobs {
		cp := *rj
		cp.Jobs = append([]Job(nil), rj.Jobs...)
		cp.Results = append([]json.RawMessage(nil), rj.Results...)
		out = append(out, cp)
	}
	sort.Slice(out, func(a, b int) bool { return jobSeq(out[a].ID) < jobSeq(out[b].ID) })
	return out
}

// CleanShutdown reports that the previous process exited gracefully
// (its final journal record was the shutdown marker). False after a
// crash — the caller logs the difference and expects requeues.
func (s *DurableStore) CleanShutdown() bool { return s.cleanShutdown }

// TruncatedBytes reports the torn tail dropped at boot.
func (s *DurableStore) TruncatedBytes() int64 { return s.truncated }

// BootRecords reports how many journal records (snapshot included) the
// boot replayed — zero distinguishes a freshly initialized journal
// from one a crash left behind.
func (s *DurableStore) BootRecords() int { return s.bootRecords }

// Stats exposes the journal counters (served under /stats).
func (s *DurableStore) Stats() journal.Stats { return s.j.Stats() }

// MarkCleanShutdown durably appends the clean-shutdown marker. Call it
// only after the engine has drained — it must be the log's final
// record.
func (s *DurableStore) MarkCleanShutdown() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return nil
	}
	return s.j.CleanShutdown()
}

// Freeze simulates abrupt process death for crash tests: every later
// append silently vanishes, exactly as writes issued after a SIGKILL
// would. The in-memory engine keeps running (and failing to persist),
// which is precisely the state a crashed process's goroutines are in.
func (s *DurableStore) Freeze() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = true
}

// Close syncs and closes the journal.
func (s *DurableStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Close()
}

var _ JobStore = (*DurableStore)(nil)

// storeBackoff is the engine's retry schedule for store appends:
// capped exponential backoff with jitter seeded per job, so concurrent
// retriers de-synchronize deterministically.
func storeBackoff(id string) Backoff {
	return Backoff{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond,
		Attempts: 6, Seed: jobSeq(id)}
}
