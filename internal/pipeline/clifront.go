package pipeline

// This file is the whole body of the fpanalyze command, hosted here —
// beside the pipeline it drives — so the tool's JSON and NDJSON
// surfaces are golden-testable in-process, exactly like the legacy
// text CLIs are through cli.RunTool. cmd/fpanalyze is a thin wrapper
// over FPAnalyzeMain.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/gsl/lift"
)

// FPAnalyzeMain runs the fpanalyze command line: `list`, `batch`, or a
// registered analysis name with the shared registry-driven flags (plus
// -json for the pipeline's wire shape instead of the legacy text
// rendering). It returns the process exit code: 0 ok, 1 error, 2
// negative analysis outcome.
func FPAnalyzeMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fpanalyzeUsage(stderr)
		return 2
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "list", "-list", "--list":
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name(), a.Describe())
		}
		return 0
	case "batch":
		return fpanalyzeBatch(rest, stdin, stdout, stderr)
	case "gslcorpus":
		return fpanalyzeGSLCorpus(rest, stdout, stderr)
	case "help", "-h", "-help", "--help":
		fpanalyzeUsage(stdout)
		return 0
	default:
		return fpanalyzeRun(sub, rest, stdin, stdout, stderr)
	}
}

func fpanalyzeUsage(w io.Writer) {
	fmt.Fprintln(w, "usage: fpanalyze list | batch [-jobs N] <jobs.json|-> | gslcorpus [-list] | <analysis> [flags] [prog.fpl|prog.go]")
	fmt.Fprintln(w, "registered analyses:", analysis.Names())
}

// fpanalyzeGSLCorpus emits the lifted GSL corpus: the combined Go
// source every analysis can run on via `-lang go` (default), or with
// -list the corpus function names, one per line. CI smokes the Go
// frontend by dumping the corpus to a file and analyzing it.
func fpanalyzeGSLCorpus(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpanalyze gslcorpus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the corpus function names instead of the source")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "fpanalyze gslcorpus: no positional arguments expected")
		return 2
	}
	if *list {
		for _, name := range lift.FuncNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	io.WriteString(stdout, lift.CombinedSource())
	return 0
}

// fpanalyzeRun executes one analysis with the shared registry-driven
// flags. The -json flag swaps the legacy text rendering for the
// pipeline's JSON result shape.
func fpanalyzeRun(name string, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	a, err := analysis.Lookup(name)
	if err != nil {
		fmt.Fprintln(stderr, "fpanalyze:", err)
		fpanalyzeUsage(stderr)
		return 1
	}
	asJSON := false
	filtered := args[:0:0]
	for _, arg := range args {
		if arg == "-json" || arg == "--json" {
			asJSON = true
			continue
		}
		filtered = append(filtered, arg)
	}
	if !asJSON {
		return cli.RunTool("fpanalyze", a.Name(), filtered, stdout, stderr)
	}

	fs := flag.NewFlagSet("fpanalyze "+a.Name(), flag.ContinueOnError)
	fs.SetOutput(stderr)
	sf := cli.NewSpecFlags(fs, "fpanalyze", a)
	sf.Stdin = stdin
	if err := fs.Parse(filtered); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	in, spec, err := sf.Resolve(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fpanalyze:", err)
		return 1
	}
	ctx, cancel := sf.Context(context.Background())
	defer cancel()
	res := JobResult{Analysis: a.Name()}
	if in.Program != nil {
		res.Program = in.Program.Name
	}
	rep, err := a.Run(ctx, in, spec)
	if err != nil {
		res.Error = err.Error()
	} else {
		res.Report = rep
		res.Summary = rep.Summary()
		res.Failed = rep.Failed()
		res.Canceled = rep.Interrupted()
	}
	stdout.Write(MarshalResult(res))
	fmt.Fprintln(stdout)
	switch {
	case res.Error != "":
		return 1
	case res.Failed:
		return 2
	}
	return 0
}

// fpanalyzeBatch runs a JSON job list through the pipeline, streaming
// NDJSON results in job order.
func fpanalyzeBatch(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpanalyze batch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobsN := fs.Int("jobs", 0, "concurrent jobs (0 = all CPUs); never changes results")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole batch (0 = none)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "fpanalyze batch: want exactly one jobs file (or - for stdin)")
		return 2
	}
	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(stderr, "fpanalyze batch:", err)
		return 1
	}
	var jobs []Job
	if err := json.Unmarshal(data, &jobs); err != nil {
		fmt.Fprintln(stderr, "fpanalyze batch: bad job list:", err)
		return 1
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	code := 0
	pl := New(*jobsN)
	pl.Stream(ctx, jobs, func(r JobResult) {
		stdout.Write(MarshalResult(r))
		fmt.Fprintln(stdout)
		if r.Error != "" {
			code = 1
		}
	})
	return code
}
