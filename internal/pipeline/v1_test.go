package pipeline_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/pipeline"
)

// v1Server builds a test server whose job engine is drained at cleanup
// (so cancelled long-running jobs never outlive the test).
func v1Server(t testing.TB, workers int) (*pipeline.Server, *httptest.Server) {
	t.Helper()
	srv := pipeline.NewServer(workers)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("engine drain at cleanup: %v", err)
		}
		ts.Close()
	})
	return srv, ts
}

func doJSON(t testing.TB, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// testResult is the result-shape tests assert on (JobView carries
// results as raw MarshalResult JSON).
type testResult struct {
	Index    int    `json:"index"`
	Analysis string `json:"analysis"`
	Summary  string `json:"summary"`
	Failed   bool   `json:"failed"`
	Error    string `json:"error"`
	Canceled bool   `json:"canceled"`
}

func decodeResult(t testing.TB, raw json.RawMessage) testResult {
	t.Helper()
	return decode[testResult](t, raw)
}

func decode[T any](t testing.TB, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("bad JSON %q: %v", data, err)
	}
	return v
}

// pollJob GETs the job until pred holds or the deadline passes.
func pollJob(t testing.TB, url, id string, deadline time.Duration, pred func(pipeline.JobView) bool) pipeline.JobView {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		resp, data := doJSON(t, "GET", url+"/v1/jobs/"+id, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: status %d: %s", id, resp.StatusCode, data)
		}
		v := decode[pipeline.JobView](t, data)
		if pred(v) {
			return v
		}
		if time.Now().After(end) {
			t.Fatalf("job %s did not reach the expected state within %v: %+v", id, deadline, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

const v1TestSource = "func prog(x double) double {\n    if (x < 1.0) { return x + 1.0; }\n    return x * 2.0;\n}"

// longReachBody is a job that would burn ~10^13 objective evaluations
// if nothing cancelled it: an unreachable path (the branch guard x < 1
// cannot hold under bounds [100, 200]) under a 10^7-eval basinhopping
// spec with a million restarts.
func longReachBody(timeout string) string {
	b := `{
		"jobs": [{"builtin": "fig2", "spec": {
			"analysis": "reach", "seed": 1, "starts": 1000000, "evals": 10000000,
			"workers": 2, "backend": "basinhopping",
			"path": [{"Site": 0, "Taken": true}],
			"bounds": [{"lo": 100, "hi": 200}]}}]`
	if timeout != "" {
		b += `, "timeout": "` + timeout + `"`
	}
	return b + "}"
}

// TestV1ProgramLifecycle: register → re-register (idempotent) → get →
// list → delete → 404.
func TestV1ProgramLifecycle(t *testing.T) {
	srv, ts := v1Server(t, 2)
	body := fmt.Sprintf(`{"source": %q, "func": "prog"}`, v1TestSource)

	resp, data := doJSON(t, "POST", ts.URL+"/v1/programs", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", resp.StatusCode, data)
	}
	info := decode[pipeline.ProgramInfo](t, data)
	if info.ID != pipeline.SourceID(v1TestSource) {
		t.Errorf("ID = %q, want content address %q", info.ID, pipeline.SourceID(v1TestSource))
	}
	if info.Func != "prog" || info.Dim != 1 || info.Branches != 1 {
		t.Errorf("unexpected metadata: %+v", info)
	}
	if got := resp.Header.Get("Location"); got != "/v1/programs/"+info.ID {
		t.Errorf("Location = %q", got)
	}

	// Idempotent re-registration returns 200 and the same resource.
	resp, data = doJSON(t, "POST", ts.URL+"/v1/programs", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register: status %d: %s", resp.StatusCode, data)
	}
	if again := decode[pipeline.ProgramInfo](t, data); again.ID != info.ID {
		t.Errorf("re-register changed the ID: %q vs %q", again.ID, info.ID)
	}
	if st := srv.PL.Cache.Stats(); st.Compiles != 1 {
		t.Errorf("registration compiled %d times, want 1", st.Compiles)
	}

	resp, data = doJSON(t, "GET", ts.URL+"/v1/programs/"+info.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d: %s", resp.StatusCode, data)
	}
	resp, data = doJSON(t, "GET", ts.URL+"/v1/programs", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(info.ID)) {
		t.Fatalf("list: status %d: %s", resp.StatusCode, data)
	}

	resp, _ = doJSON(t, "DELETE", ts.URL+"/v1/programs/"+info.ID, "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp, data = doJSON(t, "GET", ts.URL+"/v1/programs/"+info.ID, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/problem+json" {
		t.Errorf("404 content type %q", ct)
	}
}

// TestV1JobRoundTrip is the register→submit→poll→paginate→SSE happy
// path, with the job's program referenced by content address.
func TestV1JobRoundTrip(t *testing.T) {
	srv, ts := v1Server(t, 0)

	_, data := doJSON(t, "POST", ts.URL+"/v1/programs", fmt.Sprintf(`{"source": %q}`, v1TestSource))
	prog := decode[pipeline.ProgramInfo](t, data)

	submit := fmt.Sprintf(`{
		"jobs": [
			{"program": %q, "spec": {"analysis": "coverage", "seed": 1, "evals": 300, "stall": 2,
			  "bounds": [{"lo": -100, "hi": 100}]}},
			{"program": %q, "spec": {"analysis": "bva", "seed": 1, "starts": 2, "evals": 200,
			  "bounds": [{"lo": -100, "hi": 100}]}},
			{"spec": {"analysis": "xsat", "seed": 1, "formula": "x < 1 && x + 1 >= 2"}}
		]}`, prog.ID, prog.ID)
	resp, data := doJSON(t, "POST", ts.URL+"/v1/jobs", submit)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	sub := decode[struct {
		ID     string `json:"id"`
		Jobs   int    `json:"jobs"`
		URL    string `json:"url"`
		Events string `json:"events"`
	}](t, data)
	if sub.Jobs != 3 || sub.URL != "/v1/jobs/"+sub.ID {
		t.Fatalf("submit response: %+v", sub)
	}

	done := pollJob(t, ts.URL, sub.ID, 60*time.Second, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCompleted
	})
	if done.Completed != 3 || len(done.Results) != 3 || done.Finished == nil {
		t.Fatalf("completed view: %+v", done)
	}
	for i, raw := range done.Results {
		if r := decodeResult(t, raw); r.Error != "" || r.Index != i {
			t.Errorf("result %d: %+v", i, r)
		}
	}
	// The registered program was compiled exactly once, at registration;
	// both jobs referencing it were cache hits.
	if st := srv.PL.Cache.Stats(); st.Compiles != 1 {
		t.Errorf("program compiled %d times across registration + 2 jobs, want 1", st.Compiles)
	}

	// Pagination: one result per page, positions preserved.
	resp, data = doJSON(t, "GET", ts.URL+"/v1/jobs/"+sub.ID+"?offset=1&limit=1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("paginate: status %d: %s", resp.StatusCode, data)
	}
	page := decode[pipeline.JobView](t, data)
	if len(page.Results) != 1 || page.NextOffset == nil || *page.NextOffset != 2 {
		t.Fatalf("page: %+v", page)
	}
	if r := decodeResult(t, page.Results[0]); r.Index != 1 {
		t.Fatalf("page result: %+v", r)
	}

	// SSE attach-after-completion replays every result, then done.
	events := readSSE(t, ts.URL+sub.Events, 30*time.Second)
	var results int
	var sawDone bool
	for _, ev := range events {
		switch ev.name {
		case "result":
			results++
		case "done":
			sawDone = true
			v := decode[pipeline.JobView](t, []byte(ev.data))
			if v.Status != pipeline.JobCompleted {
				t.Errorf("done event status: %+v", v)
			}
		}
	}
	if results != 3 || !sawDone {
		t.Fatalf("SSE replay: %d result events, done=%v (%v)", results, sawDone, events)
	}
}

type sseEvent struct{ name, data string }

// readSSE consumes an SSE stream until the done event, EOF, or the
// deadline.
func readSSE(t testing.TB, url string, deadline time.Duration) []sseEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("SSE: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == "done" {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	return events
}

// TestV1CancelMidMinimization is the acceptance criterion: DELETE on a
// job running a 10^7-eval basinhopping spec terminates it promptly —
// the cancellation reaches the objective wrapper within one evaluation,
// so a job that would otherwise run for ~10^13 evaluations stops in
// milliseconds.
func TestV1CancelMidMinimization(t *testing.T) {
	_, ts := v1Server(t, 2)

	resp, data := doJSON(t, "POST", ts.URL+"/v1/jobs", longReachBody(""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	sub := decode[struct {
		ID string `json:"id"`
	}](t, data)

	// Give the minimizer time to get deep into its budget, then cancel.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	resp, data = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+sub.ID, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d: %s", resp.StatusCode, data)
	}
	v := pollJob(t, ts.URL, sub.ID, 15*time.Second, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCanceled
	})
	elapsed := time.Since(start)
	// Generous CI bound; the expected latency is one objective
	// evaluation (microseconds) plus scheduling.
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if v.Reason != "canceled by client" {
		t.Errorf("reason = %q", v.Reason)
	}
	if v.Completed != 1 {
		t.Fatalf("canceled job results: %+v", v)
	}
	// The in-flight job returns its partial result, marked canceled.
	if r := decodeResult(t, v.Results[0]); !r.Canceled {
		t.Errorf("partial result not marked canceled: %+v", r)
	}

	// Cancelling a finished job is a no-op 200.
	resp, _ = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+sub.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("re-cancel: status %d", resp.StatusCode)
	}
}

// TestV1DeadlineExpiry: a batch with a body-level timeout keeps the
// results that finished before the deadline and marks the job canceled
// with the deadline as the reason.
func TestV1DeadlineExpiry(t *testing.T) {
	_, ts := v1Server(t, 1) // serial: the quick job completes first
	body := fmt.Sprintf(`{
		"jobs": [
			{"source": %q, "spec": {"analysis": "coverage", "seed": 1, "evals": 200, "stall": 2,
			  "workers": 1, "bounds": [{"lo": -100, "hi": 100}]}},
			{"builtin": "fig2", "spec": {
			  "analysis": "reach", "seed": 1, "starts": 1000000, "evals": 10000000,
			  "workers": 1, "path": [{"Site": 0, "Taken": true}],
			  "bounds": [{"lo": 100, "hi": 200}]}}
		],
		"timeout": "400ms"}`, v1TestSource)
	resp, data := doJSON(t, "POST", ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	sub := decode[struct {
		ID string `json:"id"`
	}](t, data)

	v := pollJob(t, ts.URL, sub.ID, 30*time.Second, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCanceled
	})
	if v.Reason != context.DeadlineExceeded.Error() {
		t.Errorf("reason = %q", v.Reason)
	}
	if v.Completed != 2 {
		t.Fatalf("partial result set: %+v", v)
	}
	if r := decodeResult(t, v.Results[0]); r.Error != "" || r.Canceled {
		t.Errorf("pre-deadline job should have finished cleanly: %+v", r)
	}
	if r := decodeResult(t, v.Results[1]); !r.Canceled {
		t.Errorf("post-deadline job not marked canceled: %+v", r)
	}
}

// TestV1ShutdownGraceful: Shutdown cancels running jobs promptly and
// subsequent submissions are refused with a shutting-down problem.
func TestV1ShutdownGraceful(t *testing.T) {
	srv, ts := v1Server(t, 2)
	resp, data := doJSON(t, "POST", ts.URL+"/v1/jobs", longReachBody(""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	sub := decode[struct {
		ID string `json:"id"`
	}](t, data)
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	v := pollJob(t, ts.URL, sub.ID, 5*time.Second, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCanceled
	})
	if v.Reason != "server shutdown" {
		t.Errorf("reason = %q", v.Reason)
	}
	resp, data = doJSON(t, "POST", ts.URL+"/v1/jobs", longReachBody(""))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: status %d: %s", resp.StatusCode, data)
	}
	p := decode[pipeline.ProblemDetails](t, data)
	if p.Type != "urn:fpserve:problem:shutting-down" {
		t.Errorf("problem type %q", p.Type)
	}
}

// TestV1ProblemGolden locks the problem+json error model to golden
// fixtures: field-level spec-validation details, not-found, and bad
// pagination.
func TestV1ProblemGolden(t *testing.T) {
	_, ts := v1Server(t, 1)
	cases := []struct {
		golden, method, path, body string
		status                     int
	}{
		{"problem_validation.json", "POST", "/v1/jobs", `{
			"jobs": [
				{"spec": {"analysis": "nope"}},
				{"builtin": "fig2", "source": "func f(x double) double { return x; }",
				 "spec": {"analysis": "bva"}},
				{"program": "sha256:beef", "spec": {"analysis": "coverage"}},
				{"spec": {"analysis": "bva", "backend": "gradient", "engine": "llvm"}},
				{"spec": {"analysis": "xsat"}},
				{"spec": {"analysis": "xsat", "formula": "x <"}},
				{"builtin": "fig2", "spec": {"analysis": "reach"}},
				{"builtin": "fig2", "spec": {"analysis": "bva",
				 "bounds": [{"lo": 1, "hi": 0}]}}
			]}`, http.StatusBadRequest},
		{"problem_no_jobs.json", "POST", "/v1/jobs", `{}`, http.StatusBadRequest},
		{"problem_bad_timeout.json", "POST", "/v1/jobs",
			`{"builtin": "fig2", "specs": [{"analysis": "bva"}], "timeout": "soon"}`, http.StatusBadRequest},
		{"problem_job_not_found.json", "GET", "/v1/jobs/job-404", "", http.StatusNotFound},
		{"problem_program_not_found.json", "GET", "/v1/programs/sha256:dead", "", http.StatusNotFound},
		{"problem_bad_pagination.json", "GET", "/v1/jobs/job-404?offset=-1&limit=zero", "", http.StatusBadRequest},
		{"problem_unknown_resource.json", "GET", "/v1/nope", "", http.StatusNotFound},
		{"problem_bad_request_timeout.json", "GET", "/v1/jobs", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.golden, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.golden == "problem_bad_request_timeout.json" {
				req.Header.Set("Request-Timeout", "later")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/problem+json" {
				t.Errorf("content type %q", ct)
			}
			checkGolden(t, tc.golden, string(data))
		})
	}
}

// TestLegacyAnalyzeReleasesRecord: the synchronous endpoint delivers
// its results in the response, so it must not park job records (and
// their result sets) in the engine table afterward.
func TestLegacyAnalyzeReleasesRecord(t *testing.T) {
	srv, ts := v1Server(t, 1)
	body := `{"builtin": "fig2", "specs": [
		{"analysis": "coverage", "seed": 1, "evals": 200, "stall": 2, "workers": 1,
		 "bounds": [{"lo": -100, "hi": 100}]}]}`
	resp, data := doJSON(t, "POST", ts.URL+"/analyze", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, data)
	}
	if st := srv.Engine.Stats(); st.Tracked != 0 {
		t.Errorf("legacy batch left %d records in the job table", st.Tracked)
	}
	if st := srv.Engine.Stats(); st.Submitted != 1 {
		t.Errorf("submitted = %d", st.Submitted)
	}
}

// TestJobTTLEvictionOnRead: a quiet engine (no further submissions)
// still sheds finished jobs past their TTL, because reads sweep too.
func TestJobTTLEvictionOnRead(t *testing.T) {
	srv, ts := v1Server(t, 1)
	srv.Engine.TTL = 50 * time.Millisecond
	resp, data := doJSON(t, "POST", ts.URL+"/v1/jobs",
		`{"jobs": [{"spec": {"analysis": "xsat", "seed": 1, "formula": "x < 1"}}]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	sub := decode[struct {
		ID string `json:"id"`
	}](t, data)
	pollJob(t, ts.URL, sub.ID, 30*time.Second, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCompleted
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+sub.ID, "")
		if resp.StatusCode == http.StatusNotFound {
			break // evicted by the read-path sweep
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job survived its TTL with no further submissions")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobCapacityEvictionOnlyOnSubmit: polling a full table must never
// destroy fresh finished results; only a submission needing the slot
// evicts (oldest finished first), and a table full of running jobs
// refuses with 429 + Retry-After (load shedding, not an outage: the
// client should back off and retry, and running jobs are never evicted
// to make room).
func TestJobCapacityEvictionOnlyOnSubmit(t *testing.T) {
	srv, ts := v1Server(t, 2)
	srv.Engine.MaxTrackedJobs = 1
	quick := `{"jobs": [{"spec": {"analysis": "xsat", "seed": 1, "formula": "x < 1"}}]}`

	_, data := doJSON(t, "POST", ts.URL+"/v1/jobs", quick)
	first := decode[struct {
		ID string `json:"id"`
	}](t, data)
	pollJob(t, ts.URL, first.ID, 30*time.Second, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCompleted
	})
	// Reads at capacity must keep returning the finished job.
	for i := 0; i < 5; i++ {
		if resp, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+first.ID, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %d at capacity: status %d — read path evicted a fresh job", i, resp.StatusCode)
		}
	}
	// A new submission takes the slot by evicting the finished job.
	resp, data := doJSON(t, "POST", ts.URL+"/v1/jobs", quick)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit at capacity with a finished occupant: status %d: %s", resp.StatusCode, data)
	}
	second := decode[struct {
		ID string `json:"id"`
	}](t, data)
	if resp, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+first.ID, ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job still present: status %d", resp.StatusCode)
	}
	pollJob(t, ts.URL, second.ID, 30*time.Second, func(v pipeline.JobView) bool {
		return v.Status == pipeline.JobCompleted
	})

	// A running occupant refuses further submissions...
	resp, data = doJSON(t, "POST", ts.URL+"/v1/jobs", longReachBody(""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("long submit: status %d: %s", resp.StatusCode, data)
	}
	long := decode[struct {
		ID string `json:"id"`
	}](t, data)
	resp, data = doJSON(t, "POST", ts.URL+"/v1/jobs", quick)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit with running occupant: status %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 refusal carries no Retry-After hint")
	}
	if p := decode[pipeline.ProblemDetails](t, data); p.Status != http.StatusTooManyRequests {
		t.Errorf("problem body status %d, want 429", p.Status)
	}
	// ...but the legacy synchronous endpoint is untracked and unaffected.
	resp, data = doJSON(t, "POST", ts.URL+"/analyze",
		`{"specs": [{"analysis": "xsat", "seed": 1, "formula": "x < 1"}], "builtin": ""}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy analyze with full table: status %d: %s", resp.StatusCode, data)
	}
	doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+long.ID, "")
}

// TestV1SpecErrorParity pins the satellite contract: the typed
// SpecError renders on the CLI exactly as the /v1 problem details
// report it — same reason string, plus the field/value structure.
func TestV1SpecErrorParity(t *testing.T) {
	_, err := analysis.Lookup("nope")
	if err == nil {
		t.Fatal("expected error")
	}
	spe, ok := err.(*analysis.SpecError)
	if !ok {
		t.Fatalf("Lookup error is %T, not *analysis.SpecError", err)
	}
	if spe.Field != "analysis" || spe.Value != "nope" {
		t.Errorf("structure: %+v", spe)
	}
	if err.Error() != spe.Reason {
		t.Errorf("Error() = %q, Reason = %q — CLI rendering diverged", err.Error(), spe.Reason)
	}

	_, ts := v1Server(t, 1)
	resp, data := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"jobs": [{"spec": {"analysis": "nope"}}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	p := decode[pipeline.ProblemDetails](t, data)
	if len(p.Errors) != 1 {
		t.Fatalf("problem details: %+v", p)
	}
	if p.Errors[0].Reason != spe.Reason || p.Errors[0].Field != "jobs[0].spec.analysis" {
		t.Errorf("problem field detail diverged from the CLI error: %+v", p.Errors[0])
	}
}
