package pipeline

// Regression tests for the /v1 job-surface bugfix sweep: eviction vs
// live subscribers, the running-job pagination cursor, and the SSE
// heartbeat timer under result traffic. Each test fails on the
// pre-fix code.

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
)

// quickJob is a coverage run that completes in a few milliseconds.
func quickJob(seed int64) Job {
	return Job{Builtin: "fig2", Spec: analysis.Spec{
		Analysis: "coverage", Seed: seed, Evals: 50, Stall: 2, Workers: 1}}
}

// drainEngine shuts the engine down at cleanup so cancelled jobs never
// outlive the test.
func drainEngine(t testing.TB, eng *JobEngine) {
	t.Helper()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := eng.Shutdown(ctx); err != nil {
			t.Errorf("engine drain at cleanup: %v", err)
		}
	})
}

// runningRecord is a hand-built in-flight record the test feeds
// directly, standing in for a job mid-execution.
func runningRecord() *JobRecord {
	return &JobRecord{
		ID:      "job-test",
		Created: time.Now(),
		Total:   8,
		status:  JobRunning,
		changed: make(chan struct{}),
	}
}

// TestViewCursorWhileRunning: a running job's view always carries the
// resume cursor, even when the page is empty because the client caught
// up with (or raced past) execution — an empty page without nextOffset
// strands the poll loop with no position to resume from.
func TestViewCursorWhileRunning(t *testing.T) {
	rec := runningRecord()

	v := rec.View(0, 10)
	if v.NextOffset == nil {
		t.Fatal("running job with no results: View(0, 10) has no nextOffset cursor")
	}
	if *v.NextOffset != 0 || len(v.Results) != 0 {
		t.Fatalf("running job with no results: got nextOffset %d with %d results, want 0 and none",
			*v.NextOffset, len(v.Results))
	}

	rec.append(json.RawMessage(`{"index":0}`))
	rec.append(json.RawMessage(`{"index":1}`))

	// Offset past the current count: empty page, cursor holds the
	// client's place.
	v = rec.View(5, 10)
	if len(v.Results) != 0 {
		t.Fatalf("offset past end returned %d results, want an empty page", len(v.Results))
	}
	if v.NextOffset == nil || *v.NextOffset != 5 {
		t.Fatalf("offset past end on a running job: nextOffset %v, want 5", v.NextOffset)
	}

	// A full page mid-stream still advances the cursor.
	v = rec.View(0, 1)
	if v.NextOffset == nil || *v.NextOffset != 1 {
		t.Fatalf("paged view: nextOffset %v, want 1", v.NextOffset)
	}

	// Terminal jobs keep the historical contract: no cursor once the
	// last result has been served — pagination loops terminate on it.
	rec.finish(nil)
	if v = rec.View(0, 10); v.NextOffset != nil {
		t.Fatalf("completed job, page reaching the end: nextOffset %d, want none", *v.NextOffset)
	}
	if v = rec.View(5, 10); v.NextOffset != nil {
		t.Fatalf("completed job, offset past end: nextOffset %d, want none", *v.NextOffset)
	}
	if v = rec.View(0, 1); v.NextOffset == nil || *v.NextOffset != 1 {
		t.Fatalf("completed job, more results beyond the page: nextOffset %v, want 1", v.NextOffset)
	}
}

// TestViewCursorMonotoneDuringExecution paginates a batch concurrently
// with its execution: the cursor never goes backward, empty pages keep
// their position, and the walk collects every result exactly once.
func TestViewCursorMonotoneDuringExecution(t *testing.T) {
	eng := NewJobEngine(New(1))
	drainEngine(t, eng)
	const n = 12
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = quickJob(int64(i + 1))
	}
	rec, err := eng.Submit(nil, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}

	cursor, got := 0, 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("batch did not finish; collected %d/%d results", got, n)
		}
		v := rec.View(cursor, 3)
		got += len(v.Results)
		if v.Status == JobRunning {
			// Probing past the end must not error, return results, or
			// lose the probe's position.
			probe := rec.View(cursor + 100, 3)
			if len(probe.Results) != 0 {
				t.Fatalf("probe past end returned %d results", len(probe.Results))
			}
			if probe.Status == JobRunning && (probe.NextOffset == nil || *probe.NextOffset != cursor+100) {
				t.Fatalf("probe past end: nextOffset %v, want %d", probe.NextOffset, cursor+100)
			}
			if v.NextOffset == nil {
				t.Fatalf("running job dropped the cursor at offset %d", cursor)
			}
		}
		if v.NextOffset == nil {
			break // terminal and fully served
		}
		if *v.NextOffset < cursor {
			t.Fatalf("cursor went backward: %d after %d", *v.NextOffset, cursor)
		}
		cursor = *v.NextOffset
		time.Sleep(time.Millisecond)
	}
	if got != n {
		t.Fatalf("pagination collected %d results, want %d", got, n)
	}
}

// TestHeartbeatQuietUnderResultTraffic: heartbeats mean "alive but
// quiet". While results flow faster than the heartbeat interval the
// pulse timer must keep being pushed out — the pre-fix code armed it
// once and never reset it on traffic, so a stale tick fired a spurious
// heartbeat in the middle of a busy stream.
func TestHeartbeatQuietUnderResultTraffic(t *testing.T) {
	rec := runningRecord()
	const (
		heartbeat = 500 * time.Millisecond
		results   = 30
		gap       = 25 * time.Millisecond // ≪ heartbeat: the stream is never quiet
	)
	go func() {
		for i := 0; i < results; i++ {
			time.Sleep(gap)
			rec.append(json.RawMessage(`{"index":0}`))
		}
		rec.finish(nil)
	}()

	var beats, emitted atomic.Int64
	status := FollowJobHeartbeat(context.Background(), rec, heartbeat,
		func([]byte) { emitted.Add(1) },
		func() { beats.Add(1) })
	if status != JobCompleted {
		t.Fatalf("follow ended %q, want completed", status)
	}
	if got := emitted.Load(); got != results {
		t.Fatalf("emitted %d results, want %d", got, results)
	}
	if got := beats.Load(); got != 0 {
		t.Fatalf("%d heartbeats during a stream that was never quiet for %v (results every %v)",
			got, heartbeat, gap)
	}
}

// TestSweepPinnedByLiveSubscriber: the TTL sweep must not evict a
// finished job while a follower is still attached — mid-replay, the
// subscriber's re-polls and reconnects resolve the ID until it has
// seen the terminal event. The record is reclaimed on the first sweep
// after the last follower detaches.
func TestSweepPinnedByLiveSubscriber(t *testing.T) {
	eng := NewJobEngine(New(1))
	eng.TTL = 5 * time.Millisecond
	drainEngine(t, eng)
	rec, err := eng.Submit(nil, []Job{quickJob(1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if status := FollowJob(ctx, rec, func([]byte) {}); status != JobCompleted {
		t.Fatalf("job ended %q, want completed", status)
	}

	// A slow subscriber: blocked inside emit, mid-replay.
	emitted := make(chan struct{})
	release := make(chan struct{})
	done := make(chan JobStatus, 1)
	go func() {
		done <- FollowJob(context.Background(), rec, func([]byte) {
			close(emitted)
			<-release
		})
	}()
	<-emitted

	time.Sleep(3 * eng.TTL) // well past the TTL
	if _, ok := eng.Get(rec.ID); !ok { // Get runs the sweep
		t.Fatal("finished job evicted by the TTL sweep while a subscriber was mid-replay")
	}

	close(release)
	if status := <-done; status != JobCompleted {
		t.Fatalf("pinned subscriber ended %q, want completed", status)
	}

	time.Sleep(3 * eng.TTL)
	eng.Get("sweep-nudge")
	if _, ok := eng.Get(rec.ID); ok {
		t.Fatal("job still tracked after the last subscriber detached and its TTL expired")
	}
}

// TestCapacityEvictionPinnedByLiveSubscriber: capacity pressure obeys
// the same pin — a subscribed record is not a free slot, so a full
// table refuses the submission (429 on the wire) instead of tearing
// the stream out from under the follower.
func TestCapacityEvictionPinnedByLiveSubscriber(t *testing.T) {
	eng := NewJobEngine(New(1))
	eng.MaxTrackedJobs = 1
	drainEngine(t, eng)
	rec, err := eng.Submit(nil, []Job{quickJob(1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if status := FollowJob(ctx, rec, func([]byte) {}); status != JobCompleted {
		t.Fatalf("job ended %q, want completed", status)
	}

	emitted := make(chan struct{})
	release := make(chan struct{})
	done := make(chan JobStatus, 1)
	go func() {
		done <- FollowJob(context.Background(), rec, func([]byte) {
			close(emitted)
			<-release
		})
	}()
	<-emitted

	if _, err := eng.Submit(nil, []Job{quickJob(2)}, 0); !errors.Is(err, ErrJobTableFull) {
		t.Fatalf("submit against a table holding only a subscribed job: err %v, want ErrJobTableFull", err)
	}
	if _, ok := eng.Get(rec.ID); !ok {
		t.Fatal("subscribed job evicted for capacity")
	}

	close(release)
	if status := <-done; status != JobCompleted {
		t.Fatalf("pinned subscriber ended %q, want completed", status)
	}
	// Slot freed: the same submission now lands by evicting the
	// finished job.
	if _, err := eng.Submit(nil, []Job{quickJob(3)}, 0); err != nil {
		t.Fatalf("submit after the subscriber detached: %v", err)
	}
	if _, ok := eng.Get(rec.ID); ok {
		t.Fatal("finished job survived capacity eviction with no subscribers")
	}
}
