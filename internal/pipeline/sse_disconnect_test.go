package pipeline_test

// Goroutine-leak audit of the /v1 events endpoint under early client
// hangup, in the style of TestStreamCancelNoGoroutineLeak: the
// heartbeat timer and the per-subscriber follow loop must wind down
// when the client disconnects, not only when the job completes.

import (
	"bufio"
	"context"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSSEDisconnectNoGoroutineLeak subscribes to a long-running job's
// event stream with an aggressive heartbeat, drops the connection
// after the first event, and requires every goroutine the
// subscription spawned — handler, follow loop, pulse timer chain — to
// be gone. The job itself keeps running (a disconnect is not a
// cancellation); it is cancelled at the end through the normal DELETE
// path.
func TestSSEDisconnectNoGoroutineLeak(t *testing.T) {
	srv, ts := v1Server(t, 2)
	srv.Heartbeat = 20 * time.Millisecond

	resp, data := doJSON(t, "POST", ts.URL+"/v1/jobs", longReachBody(""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	sub := decode[struct {
		ID     string `json:"id"`
		Events string `json:"events"`
	}](t, data)

	before := runtime.NumGoroutine()
	const subscribers = 4
	for i := 0; i < subscribers; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+sub.Events, nil)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Read up to the first heartbeat so the stream is demonstrably
		// live (status event, then pulses), then hang up mid-stream.
		sc := bufio.NewScanner(res.Body)
		seenBeat := false
		for !seenBeat && sc.Scan() {
			if strings.HasPrefix(sc.Text(), "event: heartbeat") {
				seenBeat = true
			}
		}
		if !seenBeat {
			t.Fatalf("subscriber %d: stream ended before the first heartbeat: %v", i, sc.Err())
		}
		cancel()
		res.Body.Close()
	}

	const slack = 2
	if after := stableGoroutines(before+slack, 10*time.Second); after > before+slack {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines: %d before, %d after %d dropped SSE subscribers\n%s",
			before, after, subscribers, buf[:runtime.Stack(buf, true)])
	}

	// The job must still be running and cancellable — a hangup only
	// ends the subscription.
	resp, data = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+sub.ID, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE after disconnects: status %d (want 202 still-running): %s", resp.StatusCode, data)
	}
}
