package pipeline

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/analysis"
)

// Request is the fpserve analyze payload: either a fully explicit job
// list, or the shorthand of one program (builtin or inline FPL source)
// fanned over a list of specs.
type Request struct {
	// Jobs is the explicit form; when set the shorthand fields are
	// ignored.
	Jobs []Job `json:"jobs,omitempty"`
	// Builtin / Source / Func name one program (see Job).
	Builtin string `json:"builtin,omitempty"`
	Source  string `json:"source,omitempty"`
	Func    string `json:"func,omitempty"`
	// Specs is the list of analyses to run on that program.
	Specs []analysis.Spec `json:"specs,omitempty"`
}

// jobs expands the request into its job list.
func (r Request) jobs() []Job {
	if len(r.Jobs) > 0 {
		return r.Jobs
	}
	out := make([]Job, 0, len(r.Specs))
	for _, s := range r.Specs {
		out = append(out, Job{Builtin: r.Builtin, Source: r.Source, Func: r.Func, Spec: s})
	}
	return out
}

// Server is the fpserve HTTP front end: concurrent requests share one
// pipeline (and therefore one module cache), so repeated submissions of
// the same FPL source are never recompiled.
type Server struct {
	// PL is the shared pipeline.
	PL *Pipeline

	requests atomic.Int64
	jobs     atomic.Int64
}

// NewServer returns a server over a fresh pipeline. workers bounds
// concurrently running jobs across ALL in-flight requests (0 = all
// CPUs).
func NewServer(workers int) *Server {
	return &Server{PL: New(workers)}
}

// Handler returns the fpserve route table:
//
//	POST /analyze  — run a batch; streams one JSON result per line
//	                 (NDJSON) in job order as jobs complete
//	GET  /analyses — list registered analyses with their default specs
//	GET  /stats    — module-cache and traffic counters
//	GET  /healthz  — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/analyses", s.handleAnalyses)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	return mux
}

// Request-hardening limits: an analyze body may not exceed
// maxRequestBytes, and one request may not enqueue more than
// maxJobsPerRequest jobs.
const (
	maxRequestBytes   = 8 << 20
	maxJobsPerRequest = 4096
)

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON request body", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	jobs := req.jobs()
	if len(jobs) == 0 {
		http.Error(w, "no jobs: set jobs, or builtin/source plus specs", http.StatusBadRequest)
		return
	}
	if len(jobs) > maxJobsPerRequest {
		http.Error(w, fmt.Sprintf("%d jobs exceeds the per-request limit of %d",
			len(jobs), maxJobsPerRequest), http.StatusBadRequest)
		return
	}
	s.requests.Add(1)
	s.jobs.Add(int64(len(jobs)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	// The request context cancels pending jobs when the client goes
	// away, so abandoned batches stop occupying the shared pool.
	s.PL.StreamCtx(r.Context(), jobs, func(res JobResult) {
		w.Write(MarshalResult(res))
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	})
}

func (s *Server) handleAnalyses(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name        string        `json:"name"`
		Description string        `json:"description"`
		DefaultSpec analysis.Spec `json:"defaultSpec"`
	}
	var out []entry
	for _, a := range analysis.All() {
		out = append(out, entry{Name: a.Name(), Description: a.Describe(), DefaultSpec: a.DefaultSpec()})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := struct {
		Requests int64      `json:"requests"`
		Jobs     int64      `json:"jobs"`
		Cache    CacheStats `json:"cache"`
	}{
		Requests: s.requests.Load(),
		Jobs:     s.jobs.Load(),
		Cache:    s.PL.Cache.Stats(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}
