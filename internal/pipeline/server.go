package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/journal"
	"repro/internal/opt"
)

// Request is the fpserve analyze payload: either a fully explicit job
// list, or the shorthand of one program (builtin or inline FPL source)
// fanned over a list of specs.
type Request struct {
	// Jobs is the explicit form; when set the shorthand fields are
	// ignored.
	Jobs []Job `json:"jobs,omitempty"`
	// Builtin / Source / Func name one program (see Job).
	Builtin string `json:"builtin,omitempty"`
	Source  string `json:"source,omitempty"`
	Func    string `json:"func,omitempty"`
	// Specs is the list of analyses to run on that program.
	Specs []analysis.Spec `json:"specs,omitempty"`
}

// jobs expands the request into its job list.
func (r Request) jobs() []Job {
	if len(r.Jobs) > 0 {
		return r.Jobs
	}
	out := make([]Job, 0, len(r.Specs))
	for _, s := range r.Specs {
		out = append(out, Job{Builtin: r.Builtin, Source: r.Source, Func: r.Func, Spec: s})
	}
	return out
}

// Server is the fpserve HTTP front end. Every surface — the versioned
// /v1 resource API and the legacy flat endpoints — runs over one
// pipeline (one module cache, one worker-pool bound) and one job
// engine, so program registrations, async jobs, and legacy synchronous
// batches all share compilation and cancellation plumbing.
type Server struct {
	// PL is the shared pipeline.
	PL *Pipeline
	// Engine is the async job engine; the legacy /analyze endpoint is a
	// synchronous wrapper over it.
	Engine *JobEngine
	// Programs is the /v1 registered-program store.
	Programs *ProgramStore
	// Heartbeat is the SSE liveness-pulse interval for /v1 job event
	// streams (0 disables heartbeat events).
	Heartbeat time.Duration
	// Logf, when non-nil, receives operational log lines (recovered
	// handler panics).
	Logf func(format string, args ...any)
	// ClusterStats, when non-nil, contributes a "cluster" document to
	// /stats — fpserve's coordinator mode plugs its per-worker routing,
	// requeue, and shed counters in here. A func-valued hook (rather
	// than a concrete type) keeps pipeline free of a cluster import.
	ClusterStats func() any

	requests atomic.Int64
	jobs     atomic.Int64
	panicked atomic.Int64
}

// NewServer returns a server over a fresh pipeline. workers bounds
// concurrently running jobs across ALL in-flight requests (0 = all
// CPUs).
func NewServer(workers int) *Server {
	pl := New(workers)
	return &Server{
		PL:       pl,
		Engine:   NewJobEngine(pl),
		Programs: NewProgramStore(pl.Cache),
	}
}

// Shutdown gracefully stops the server's job engine: no new
// submissions, every in-flight job cancelled (landing within one
// objective evaluation), drained until done or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.Engine.Shutdown(ctx)
}

// Handler returns the fpserve route table.
//
// Versioned API (see docs/api.md):
//
//	POST   /v1/programs          — register FPL source (content-addressed)
//	GET    /v1/programs          — list registered programs
//	GET    /v1/programs/{id}     — inspect a program
//	DELETE /v1/programs/{id}     — evict a program (and its cached modules)
//	POST   /v1/jobs              — submit an async batch → job id
//	GET    /v1/jobs              — list tracked jobs
//	GET    /v1/jobs/{id}         — job status + paginated results
//	GET    /v1/jobs/{id}/events  — SSE stream of results and completion
//	DELETE /v1/jobs/{id}         — cancel a running job
//	GET    /v1/analyses          — list registered analyses
//
// Errors are application/problem+json with field-level spec-validation
// details. Every /v1 request honors a Request-Timeout header (a Go
// duration) as its deadline.
//
// Legacy surface (wire-compatible with the unversioned server):
//
//	POST /analyze  — run a batch synchronously; streams one JSON result
//	                 per line (NDJSON) in job order as jobs complete
//	GET  /analyses — list registered analyses with their default specs
//	GET  /stats    — module-cache, job-engine, and traffic counters
//	GET  /healthz  — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	// Versioned resource API.
	mux.HandleFunc("POST /v1/programs", v1h(s.handleProgramRegister))
	mux.HandleFunc("GET /v1/programs", v1h(s.handleProgramList))
	mux.HandleFunc("GET /v1/programs/{id}", v1h(s.handleProgramGet))
	mux.HandleFunc("DELETE /v1/programs/{id}", v1h(s.handleProgramDelete))
	mux.HandleFunc("POST /v1/jobs", v1h(s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs", v1h(s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", v1h(s.handleJobGet))
	mux.HandleFunc("GET /v1/jobs/{id}/events", v1h(s.handleJobEvents))
	mux.HandleFunc("DELETE /v1/jobs/{id}", v1h(s.handleJobCancel))
	mux.HandleFunc("GET /v1/analyses", v1h(s.handleAnalyses))
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeProblem(w, http.StatusNotFound, problemNotFound, "unknown resource",
			"no /v1 resource at "+r.URL.Path)
	})

	// Legacy flat surface.
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/analyses", s.handleAnalyses)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	return s.recovered(mux)
}

// recovered is the outermost panic boundary: a handler bug (as opposed
// to a job bug, which the pipeline's per-job boundary absorbs) answers
// 500 problem+json instead of tearing down the connection with no
// response, and the full stack goes to the server log keyed by the same
// digest the client sees.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(v) // deliberate connection abort: not ours to absorb
			}
			stack := debug.Stack()
			s.panicked.Add(1)
			digest := stackDigest(stack)
			if s.Logf != nil {
				s.Logf("fpserve: panic in %s %s [stack sha256:%s]: %v\n%s",
					r.Method, r.URL.Path, digest, v, stack)
			}
			// Headers may already be gone (mid-stream panic); this is
			// best-effort by construction.
			writeProblem(w, http.StatusInternalServerError, problemInternal,
				"internal error",
				fmt.Sprintf("the request handler panicked [stack sha256:%s]; this is a server bug", digest))
		}()
		next.ServeHTTP(w, r)
	})
}

// Request-hardening limits: an analyze/submit body may not exceed
// maxRequestBytes, and one request may not enqueue more than
// maxJobsPerRequest jobs.
const (
	maxRequestBytes   = 8 << 20
	maxJobsPerRequest = 4096
)

// handleAnalyze is the legacy synchronous endpoint, kept as a thin
// compatibility wrapper over the job engine: the batch is submitted
// like any /v1 job (same pool, same cache, same cancellation) and its
// results are streamed back as NDJSON, byte-identical to the historical
// wire format. The request context rides along as the job's parent, so
// a client disconnect cancels the batch mid-minimization.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON request body", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	jobs := req.jobs()
	if len(jobs) == 0 {
		http.Error(w, "no jobs: set jobs, or builtin/source plus specs", http.StatusBadRequest)
		return
	}
	if len(jobs) > maxJobsPerRequest {
		http.Error(w, fmt.Sprintf("%d jobs exceeds the per-request limit of %d",
			len(jobs), maxJobsPerRequest), http.StatusBadRequest)
		return
	}
	// Untracked: this response delivers every result, the client never
	// learns a job ID, and the endpoint's concurrency is bounded by its
	// open connections — it must not occupy (or be refused by) the /v1
	// job table. The request context rides along as the job's parent,
	// so a client disconnect cancels the batch mid-minimization.
	rec, err := s.Engine.SubmitUntracked(r.Context(), jobs)
	if err != nil {
		// The legacy surface predates problem+json but still honors the
		// load-shedding contract: watermark refusals are 429 with a
		// Retry-After hint, everything else stays 503.
		var over ErrOverloaded
		if errors.As(err, &over) {
			setRetryAfter(w, over.RetryAfter)
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.requests.Add(1)
	s.jobs.Add(int64(len(jobs)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	FollowJob(r.Context(), rec, func(res []byte) {
		w.Write(res)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	})
}

func (s *Server) handleAnalyses(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name        string        `json:"name"`
		Description string        `json:"description"`
		DefaultSpec analysis.Spec `json:"defaultSpec"`
	}
	var out []entry
	for _, a := range analysis.All() {
		out = append(out, entry{Name: a.Name(), Description: a.Describe(), DefaultSpec: a.DefaultSpec()})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := struct {
		Requests int64       `json:"requests"`
		Jobs     int64       `json:"jobs"`
		Cache    CacheStats  `json:"cache"`
		Engine   EngineStats `json:"engine"`
		Programs int         `json:"programs"`
		// Journal appears when the server runs durably (-data-dir).
		Journal *journal.Stats `json:"journal,omitempty"`
		// HandlerPanics counts panics the HTTP recover boundary absorbed
		// (job panics are counted under engine.panics instead).
		HandlerPanics int64 `json:"handlerPanics,omitempty"`
		// EvalsByBackend is the process-wide objective-evaluation ledger
		// per MO backend (portfolio stages under "portfolio/<stage>").
		EvalsByBackend map[string]int64 `json:"evalsByBackend,omitempty"`
		// Cluster appears in coordinator mode: per-worker routing,
		// requeue, and shed counters.
		Cluster any `json:"cluster,omitempty"`
	}{
		Requests:       s.requests.Load(),
		Jobs:           s.jobs.Load(),
		Cache:          s.PL.Cache.Stats(),
		Engine:         s.Engine.Stats(),
		Programs:       s.Programs.Len(),
		HandlerPanics:  s.panicked.Load(),
		EvalsByBackend: opt.EvalCounts(),
	}
	if ds, ok := s.Engine.Store.(*DurableStore); ok {
		js := ds.Stats()
		stats.Journal = &js
	}
	if s.ClusterStats != nil {
		stats.Cluster = s.ClusterStats()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}
