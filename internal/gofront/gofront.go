// Package gofront is the Go frontend of the analysis stack: it parses
// real Go source with go/parser, type-checks it with go/types, and
// lowers a numeric subset — float64 arithmetic and comparisons, if/for
// control flow, intra-unit calls, and math.* calls mapped onto
// internal/builtins — into the same ir.Module that FPL programs compile
// to. Everything downstream (both execution engines, the batch VM, all
// six analyses, the pipeline cache, /v1, the cluster coordinator) works
// on lifted Go programs unchanged.
//
// Anything outside the subset is rejected with a typed, position-
// carrying Diagnostic (goroutines, channels, strings, slices, maps,
// pointers, structs, integers, ...), so pointing an analysis at
// unsupported code fails with file:line:col precision instead of a
// misleading result.
//
// Bit-identity with natively compiled Go is a design invariant, pinned
// by the differential oracle in internal/gsl/lift: constant
// subexpressions are folded through go/types' arbitrary-precision
// constant evaluator (exactly gc's semantics), every residual float64
// operation lowers to exactly one IR instruction in source evaluation
// order, and math.* calls resolve to the same math functions the native
// build calls.
package gofront

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/ir"
)

// Lang names a program source language accepted by the pipeline.
type Lang string

// The registered program languages.
const (
	// LangFPL is the paper's small C-like floating-point language
	// (internal/lang) — the default.
	LangFPL Lang = "fpl"
	// LangGo is the numeric Go subset lifted by this package.
	LangGo Lang = "go"
)

// ParseLang resolves a language name from a -lang flag or a /v1 "lang"
// field. Empty selects FPL, the historical default.
func ParseLang(name string) (Lang, error) {
	switch strings.ToLower(name) {
	case "", "fpl":
		return LangFPL, nil
	case "go", "golang":
		return LangGo, nil
	}
	return LangFPL, fmt.Errorf("unknown language %q (want fpl or go)", name)
}

// String returns the canonical spelling of the language.
func (l Lang) String() string {
	if l == LangGo {
		return "go"
	}
	return "fpl"
}

// DetectLang infers the language of a source file from its extension:
// ".go" selects the Go frontend, anything else FPL.
func DetectLang(path string) Lang {
	if filepath.Ext(path) == ".go" {
		return LangGo
	}
	return LangFPL
}

// CompileSource compiles source in the named language into an IR
// module: the single entry point the CLI loaders and the pipeline
// module cache dispatch through. filename decorates diagnostics
// (file:line:col); empty keeps the anonymous line:col rendering used
// for inline /v1 sources.
func CompileSource(lg Lang, filename, src string) (*ir.Module, error) {
	if lg == LangGo {
		return Compile(filename, src)
	}
	if filename == "" {
		return ir.Compile(src)
	}
	return ir.CompileNamed(filename, src)
}

// Compile parses, type-checks, and lowers Go source into an IR module.
// Every function in the file is lifted (declaration order preserved,
// like FPL). Errors are *Diagnostic or DiagnosticList values carrying
// file:line:col positions.
func Compile(filename, src string) (*ir.Module, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, parseDiagnostics(err)
	}

	var diags DiagnosticList
	conf := types.Config{
		Importer: subsetImporter{},
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				p := te.Fset.Position(te.Pos)
				diags = append(diags, &Diagnostic{
					File: p.Filename, Line: p.Line, Col: p.Column, Msg: te.Msg,
				})
				return
			}
			diags = append(diags, &Diagnostic{Msg: err.Error()})
		},
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	_, err = conf.Check(file.Name.Name, fset, []*ast.File{file}, info)
	if len(diags) > 0 {
		return nil, diags
	}
	if err != nil {
		return nil, &Diagnostic{Msg: err.Error()}
	}

	l := &goLowerer{fset: fset, info: info}
	return l.lowerFile(file)
}
