package gofront

import (
	"errors"
	"fmt"
	"go/scanner"
	"strings"
)

// Diagnostic is a typed, position-carrying frontend error: a parse
// error, a type-check error, or a subset violation. Line and Col are
// 1-based; File is empty for anonymous (inline) sources, which then
// render as "line:col: msg" like FPL diagnostics.
type Diagnostic struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (d *Diagnostic) Error() string {
	switch {
	case d.Line == 0:
		return d.Msg
	case d.File == "":
		return fmt.Sprintf("%d:%d: %s", d.Line, d.Col, d.Msg)
	}
	return fmt.Sprintf("%s:%d:%d: %s", d.File, d.Line, d.Col, d.Msg)
}

// DiagnosticList is an ordered collection of diagnostics (a type-check
// pass can report several). It is itself an error; Error renders one
// diagnostic per line.
type DiagnosticList []*Diagnostic

func (l DiagnosticList) Error() string {
	msgs := make([]string, len(l))
	for i, d := range l {
		msgs[i] = d.Error()
	}
	return strings.Join(msgs, "\n")
}

// parseDiagnostics converts a go/parser error (a scanner.ErrorList in
// practice) into typed diagnostics.
func parseDiagnostics(err error) error {
	var list scanner.ErrorList
	if !errors.As(err, &list) {
		return &Diagnostic{Msg: err.Error()}
	}
	out := make(DiagnosticList, len(list))
	for i, e := range list {
		out[i] = &Diagnostic{
			File: e.Pos.Filename,
			Line: e.Pos.Line,
			Col:  e.Pos.Column,
			Msg:  e.Msg,
		}
	}
	return out
}
