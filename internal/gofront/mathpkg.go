package gofront

import (
	"fmt"
	"go/constant"
	"go/token"
	"go/types"
)

// mathFuncs maps each supported math.* function to the internal/builtins
// name it lowers to and its arity. Both execution engines call the very
// math function the native build calls (internal/builtins stores the
// function pointers), so lifted math calls are bit-identical to native
// execution by construction.
var mathFuncs = map[string]struct {
	Builtin string
	Arity   int
}{
	"Sin":      {"sin", 1},
	"Cos":      {"cos", 1},
	"Tan":      {"tan", 1},
	"Asin":     {"asin", 1},
	"Acos":     {"acos", 1},
	"Atan":     {"atan", 1},
	"Sinh":     {"sinh", 1},
	"Cosh":     {"cosh", 1},
	"Tanh":     {"tanh", 1},
	"Sqrt":     {"sqrt", 1},
	"Cbrt":     {"cbrt", 1},
	"Abs":      {"fabs", 1},
	"Exp":      {"exp", 1},
	"Exp2":     {"exp2", 1},
	"Expm1":    {"expm1", 1},
	"Log":      {"log", 1},
	"Log2":     {"log2", 1},
	"Log10":    {"log10", 1},
	"Log1p":    {"log1p", 1},
	"Floor":    {"floor", 1},
	"Ceil":     {"ceil", 1},
	"Trunc":    {"trunc", 1},
	"Round":    {"round", 1},
	"Pow":      {"pow", 2},
	"Min":      {"fmin", 2},
	"Max":      {"fmax", 2},
	"Mod":      {"fmod", 2},
	"Atan2":    {"atan2", 2},
	"Hypot":    {"hypot", 2},
	"Copysign": {"copysign", 2},
}

// mathConsts are the math package constants the frontend understands,
// as untyped floating-point constants with the exact literals of Go's
// math/const.go — so folding through go/types' arbitrary-precision
// evaluator reproduces gc's conversion bit for bit.
var mathConsts = map[string]string{
	"E":       "2.71828182845904523536028747135266249775724709369995957496696763",
	"Pi":      "3.14159265358979323846264338327950288419716939937510582097494459",
	"Phi":     "1.61803398874989484820458683436563811772030917980576286213544862",
	"Sqrt2":   "1.41421356237309504880168872420969807856967187537694807317667974",
	"SqrtE":   "1.64872127070012814684865078781416357165377610071014801157507931",
	"SqrtPi":  "1.77245385090551602729816748334114518279754945612238712821380779",
	"SqrtPhi": "1.27201964951406896425242246173749149171560804184009624861664038",
	"Ln2":     "0.693147180559945309417232121458176568075500134360255254120680009",
	"Ln10":    "2.30258509299404568401799145468436420760110148862877297603332790",

	"MaxFloat64":             "0x1.fffffffffffffp1023",
	"SmallestNonzeroFloat64": "0x1p-1074",
}

// mathPackage builds a hermetic synthetic "math" package for the type
// checker: only what the subset supports exists, so an unsupported
// math.* reference fails at compile time, and compilation never depends
// on a host Go installation or export data.
func mathPackage() *types.Package {
	pkg := types.NewPackage("math", "math")
	scope := pkg.Scope()
	f64 := types.Typ[types.Float64]

	for name, spec := range mathFuncs {
		params := make([]*types.Var, spec.Arity)
		for i := range params {
			params[i] = types.NewParam(token.NoPos, pkg, fmt.Sprintf("x%d", i), f64)
		}
		sig := types.NewSignatureType(nil, nil, nil,
			types.NewTuple(params...),
			types.NewTuple(types.NewParam(token.NoPos, pkg, "", f64)),
			false)
		scope.Insert(types.NewFunc(token.NoPos, pkg, name, sig))
	}

	uf := types.Typ[types.UntypedFloat]
	lit := func(s string) constant.Value {
		return constant.MakeFromLiteral(s, token.FLOAT, 0)
	}
	for name, l := range mathConsts {
		scope.Insert(types.NewConst(token.NoPos, pkg, name, uf, lit(l)))
	}
	// Log2E and Log10E are defined as 1/Ln2 and 1/Ln10 in math/const.go;
	// evaluating the same division in the arbitrary-precision domain
	// keeps the folded float64 identical to the native constant.
	one := constant.MakeFromLiteral("1", token.INT, 0)
	scope.Insert(types.NewConst(token.NoPos, pkg, "Log2E", uf,
		constant.BinaryOp(one, token.QUO, lit(mathConsts["Ln2"]))))
	scope.Insert(types.NewConst(token.NoPos, pkg, "Log10E", uf,
		constant.BinaryOp(one, token.QUO, lit(mathConsts["Ln10"]))))

	pkg.MarkComplete()
	return pkg
}

// subsetImporter resolves imports during type checking. Only "math" is
// importable — the subset has no I/O, no concurrency, no allocation.
type subsetImporter struct{}

func (subsetImporter) Import(path string) (*types.Package, error) {
	if path == "math" {
		return mathPackage(), nil
	}
	return nil, fmt.Errorf("import %q is outside the analyzable subset (only \"math\" may be imported)", path)
}
