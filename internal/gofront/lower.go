package gofront

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/fp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/rt"
)

// goLowerer lowers one type-checked Go file into an ir.Module. Variable
// binding is object-keyed: go/types already resolved every identifier
// to its object, so shadowing and := redeclaration need no scope stack.
type goLowerer struct {
	fset *token.FileSet
	info *types.Info
	mod  *ir.Module
	fn   *ir.Func
	cur  int // current block index

	vars  map[types.Object]ir.Reg
	loops []loopFrame
}

// loopFrame records where break and continue jump inside the innermost
// enclosing for loop.
type loopFrame struct {
	brk, cont int
}

func (l *goLowerer) lowerFile(file *ast.File) (*ir.Module, error) {
	l.mod = &ir.Module{Funcs: map[string]*ir.Func{}}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			switch d.Tok {
			case token.IMPORT, token.CONST:
				// Imports were vetted by the type checker; constants
				// fold at their uses.
			case token.VAR:
				return nil, l.errf(d.Pos(), "package-level variables are outside the analyzable subset (analyzed functions must not read mutable global state)")
			default:
				return nil, l.errf(d.Pos(), "type declarations are outside the analyzable subset")
			}
		case *ast.FuncDecl:
			if err := l.lowerFuncDecl(d); err != nil {
				return nil, err
			}
		}
	}
	if len(l.mod.Order) == 0 {
		return nil, &Diagnostic{Msg: "source declares no functions"}
	}
	if err := l.mod.Verify(); err != nil {
		return nil, fmt.Errorf("lowering produced invalid IR: %w", err)
	}
	if err := l.mod.Link(); err != nil {
		return nil, err
	}
	return l.mod, nil
}

func (l *goLowerer) lowerFuncDecl(fd *ast.FuncDecl) error {
	if fd.Recv != nil {
		return l.errf(fd.Pos(), "methods are outside the analyzable subset")
	}
	if fd.Type.TypeParams != nil {
		return l.errf(fd.Pos(), "generic functions are outside the analyzable subset")
	}
	if fd.Body == nil {
		return l.errf(fd.Pos(), "function %s has no body (assembly and external functions cannot be analyzed)", fd.Name.Name)
	}
	obj, ok := l.info.Defs[fd.Name].(*types.Func)
	if !ok {
		return l.errf(fd.Pos(), "internal: no type object for function %s", fd.Name.Name)
	}
	sig := obj.Type().(*types.Signature)
	if sig.Variadic() {
		return l.errf(fd.Pos(), "variadic functions are outside the analyzable subset")
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if !isFloat64(sig.Params().At(i).Type()) {
			return l.errf(fd.Pos(), "function %s: parameter %s: %s — analyzed functions take only float64 parameters",
				fd.Name.Name, sig.Params().At(i).Name(), subsetTypeMsg(sig.Params().At(i).Type()))
		}
	}
	if sig.Results().Len() != 1 || !isFloat64(sig.Results().At(0).Type()) {
		return l.errf(fd.Pos(), "function %s must return exactly one float64 result", fd.Name.Name)
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			if len(field.Names) > 0 {
				return l.errf(fd.Pos(), "named results are outside the analyzable subset")
			}
		}
	}

	l.fn = &ir.Func{
		Name:    fd.Name.Name,
		NParams: sig.Params().Len(),
		Ret:     ir.RetF,
	}
	l.vars = map[types.Object]ir.Reg{}
	l.loops = nil
	for i := 0; i < sig.Params().Len(); i++ {
		r := l.newReg(ir.RegF)
		l.vars[sig.Params().At(i)] = r
	}
	// Parameter idents in the AST resolve to objects recorded in
	// info.Defs; map those too (they may differ from sig's objects for
	// blank parameters, and matching both is harmless).
	if fd.Type.Params != nil {
		i := 0
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := l.info.Defs[name]; obj != nil {
					l.vars[obj] = ir.Reg(i)
				}
				i++
			}
		}
	}

	l.newBlock()
	l.cur = 0
	if err := l.lowerBlockStmt(fd.Body); err != nil {
		return err
	}
	if !l.terminated() {
		// The type checker guarantees all paths return (missing return
		// is a type error), but unreachable tails still need a
		// terminator for well-formed IR.
		z := l.newReg(ir.RegF)
		pos := l.pos(fd.Pos())
		l.emit(ir.Instr{Op: ir.ConstF, Dst: z, Val: 0, Site: ir.NoSite, Pos: pos})
		l.emit(ir.Instr{Op: ir.Ret, A: z, Site: ir.NoSite, Pos: pos})
	}
	l.mod.Funcs[fd.Name.Name] = l.fn
	l.mod.Order = append(l.mod.Order, fd.Name.Name)
	return nil
}

// --- machinery ---

func (l *goLowerer) newReg(k ir.RegKind) ir.Reg {
	l.fn.Kinds = append(l.fn.Kinds, k)
	return ir.Reg(len(l.fn.Kinds) - 1)
}

func (l *goLowerer) newBlock() int {
	l.fn.Blocks = append(l.fn.Blocks, ir.Block{})
	return len(l.fn.Blocks) - 1
}

func (l *goLowerer) emit(in ir.Instr) {
	b := &l.fn.Blocks[l.cur]
	b.Instrs = append(b.Instrs, in)
}

func (l *goLowerer) terminated() bool {
	b := l.fn.Blocks[l.cur]
	if len(b.Instrs) == 0 {
		return false
	}
	switch b.Instrs[len(b.Instrs)-1].Op {
	case ir.Jmp, ir.CondJmp, ir.Ret:
		return true
	}
	return false
}

func (l *goLowerer) pos(p token.Pos) lang.Pos {
	pp := l.fset.Position(p)
	return lang.Pos{Line: pp.Line, Col: pp.Column}
}

func (l *goLowerer) errf(p token.Pos, format string, args ...any) *Diagnostic {
	pp := l.fset.Position(p)
	return &Diagnostic{
		File: pp.Filename,
		Line: pp.Line,
		Col:  pp.Column,
		Msg:  fmt.Sprintf(format, args...),
	}
}

func (l *goLowerer) siteLabel(p token.Pos, text string) string {
	return fmt.Sprintf("%s: %s", l.fset.Position(p), text)
}

func (l *goLowerer) newOpSite(p token.Pos, text string) int {
	id := len(l.mod.OpSites)
	l.mod.OpSites = append(l.mod.OpSites, rt.OpInfo{ID: id, Label: l.siteLabel(p, text)})
	return id
}

func (l *goLowerer) newBranchSite(p token.Pos, text string, op fp.CmpOp) int {
	id := len(l.mod.BranchSites)
	l.mod.BranchSites = append(l.mod.BranchSites, rt.BranchInfo{ID: id, Label: l.siteLabel(p, text), Op: op})
	return id
}

func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Bool || b.Kind() == types.UntypedBool)
}

// subsetTypeMsg names why a type is outside the subset, in terms a user
// can act on.
func subsetTypeMsg(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch {
		case u.Info()&types.IsString != 0:
			return "strings are outside the analyzable subset"
		case u.Info()&types.IsInteger != 0:
			return "integer types are outside the analyzable subset (use float64 arithmetic)"
		case u.Info()&types.IsComplex != 0:
			return "complex numbers are outside the analyzable subset"
		case u.Kind() == types.Float32:
			return "float32 is outside the analyzable subset (only float64 is modeled)"
		case u.Info()&types.IsBoolean != 0:
			return "bool-typed values are supported only in conditions"
		}
	case *types.Slice:
		return "slices are outside the analyzable subset"
	case *types.Array:
		return "arrays are outside the analyzable subset"
	case *types.Map:
		return "maps are outside the analyzable subset"
	case *types.Chan:
		return "channels are outside the analyzable subset"
	case *types.Pointer:
		return "pointers are outside the analyzable subset"
	case *types.Struct:
		return "structs are outside the analyzable subset"
	case *types.Interface:
		return "interfaces are outside the analyzable subset"
	case *types.Signature:
		return "function values are outside the analyzable subset"
	}
	return fmt.Sprintf("type %s is outside the analyzable subset", t)
}

// --- statements ---

func (l *goLowerer) lowerBlockStmt(b *ast.BlockStmt) error {
	for _, s := range b.List {
		if l.terminated() {
			// Unreachable code after return/break; lower into a fresh
			// dead block to keep the IR well formed.
			l.cur = l.newBlock()
		}
		if err := l.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (l *goLowerer) lowerStmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return l.lowerBlockStmt(s)

	case *ast.EmptyStmt:
		return nil

	case *ast.DeclStmt:
		return l.lowerDeclStmt(s)

	case *ast.AssignStmt:
		return l.lowerAssign(s)

	case *ast.IncDecStmt:
		return l.lowerIncDec(s)

	case *ast.IfStmt:
		return l.lowerIf(s)

	case *ast.ForStmt:
		return l.lowerFor(s)

	case *ast.BranchStmt:
		return l.lowerBranch(s)

	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return l.errf(s.Pos(), "return must carry exactly one float64 value")
		}
		v, err := l.lowerExpr(s.Results[0])
		if err != nil {
			return err
		}
		if l.fn.Kinds[v] != ir.RegF {
			return l.errf(s.Pos(), "return value must be float64")
		}
		l.emit(ir.Instr{Op: ir.Ret, A: v, Site: ir.NoSite, Pos: l.pos(s.Pos())})
		return nil

	case *ast.ExprStmt:
		// An expression statement is necessarily a call; lower it for
		// uniformity and discard the result (subset functions are pure,
		// so this cannot hide effects).
		_, err := l.lowerExpr(s.X)
		return err

	case *ast.GoStmt:
		return l.errf(s.Pos(), "goroutines are outside the analyzable subset")
	case *ast.DeferStmt:
		return l.errf(s.Pos(), "defer is outside the analyzable subset")
	case *ast.SelectStmt:
		return l.errf(s.Pos(), "select is outside the analyzable subset")
	case *ast.SendStmt:
		return l.errf(s.Pos(), "channel sends are outside the analyzable subset")
	case *ast.RangeStmt:
		return l.errf(s.Pos(), "range loops are outside the analyzable subset (use a counted for loop over float64)")
	case *ast.SwitchStmt:
		return l.errf(s.Pos(), "switch is outside the analyzable subset (use if/else chains)")
	case *ast.TypeSwitchStmt:
		return l.errf(s.Pos(), "type switches are outside the analyzable subset")
	case *ast.LabeledStmt:
		return l.errf(s.Pos(), "labeled statements are outside the analyzable subset")
	}
	return l.errf(s.Pos(), "unsupported statement %T", s)
}

func (l *goLowerer) lowerDeclStmt(s *ast.DeclStmt) error {
	d, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return l.errf(s.Pos(), "unsupported declaration %T", s.Decl)
	}
	switch d.Tok {
	case token.CONST:
		return nil // folded at each use
	case token.VAR:
	default:
		return l.errf(d.Pos(), "type declarations are outside the analyzable subset")
	}
	for _, spec := range d.Specs {
		vs := spec.(*ast.ValueSpec)
		if len(vs.Values) != 0 && len(vs.Values) != len(vs.Names) {
			return l.errf(vs.Pos(), "multi-value initialization is outside the analyzable subset")
		}
		for i, name := range vs.Names {
			obj := l.info.Defs[name]
			if obj == nil {
				return l.errf(name.Pos(), "internal: no type object for %s", name.Name)
			}
			var kind ir.RegKind
			switch {
			case isFloat64(obj.Type()):
				kind = ir.RegF
			case isBool(obj.Type()):
				kind = ir.RegB
			default:
				return l.errf(name.Pos(), "variable %s: %s", name.Name, subsetTypeMsg(obj.Type()))
			}
			r := l.newReg(kind)
			pos := l.pos(name.Pos())
			if len(vs.Values) > 0 {
				v, err := l.lowerExpr(vs.Values[i])
				if err != nil {
					return err
				}
				if l.fn.Kinds[v] != kind {
					return l.errf(vs.Values[i].Pos(), "initializer kind mismatch for %s", name.Name)
				}
				l.emit(ir.Instr{Op: ir.Mov, Dst: r, A: v, Site: ir.NoSite, Pos: pos})
			} else if kind == ir.RegF {
				l.emit(ir.Instr{Op: ir.ConstF, Dst: r, Val: 0, Site: ir.NoSite, Pos: pos})
			} else {
				l.emit(ir.Instr{Op: ir.ConstB, Dst: r, BVal: false, Site: ir.NoSite, Pos: pos})
			}
			if name.Name != "_" {
				l.vars[obj] = r
			}
		}
	}
	return nil
}

// assignTok maps an op-assign token to its IR opcode.
var assignTok = map[token.Token]ir.Opcode{
	token.ADD_ASSIGN: ir.FAdd,
	token.SUB_ASSIGN: ir.FSub,
	token.MUL_ASSIGN: ir.FMul,
	token.QUO_ASSIGN: ir.FDiv,
}

func (l *goLowerer) lowerAssign(s *ast.AssignStmt) error {
	if op, ok := assignTok[s.Tok]; ok {
		// x op= y is one floating-point operation, exactly like the
		// native build: one op site.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return l.errf(s.Pos(), "internal: malformed op-assignment")
		}
		dst, err := l.lvalue(s.Lhs[0])
		if err != nil {
			return err
		}
		if l.fn.Kinds[dst] != ir.RegF {
			return l.errf(s.Pos(), "%s requires a float64 variable", s.Tok)
		}
		v, err := l.lowerExpr(s.Rhs[0])
		if err != nil {
			return err
		}
		if l.fn.Kinds[v] != ir.RegF {
			return l.errf(s.Rhs[0].Pos(), "%s requires a float64 operand", s.Tok)
		}
		text := fmt.Sprintf("%s %s %s", types.ExprString(s.Lhs[0]), s.Tok, types.ExprString(s.Rhs[0]))
		site := l.newOpSite(s.Pos(), text)
		l.emit(ir.Instr{Op: op, Dst: dst, A: dst, B: v, Site: site, Pos: l.pos(s.Pos()), Label: text})
		return nil
	}
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
	case token.REM_ASSIGN:
		return l.errf(s.Pos(), "%% is outside the analyzable subset (use math.Mod)")
	default:
		return l.errf(s.Pos(), "%s is outside the analyzable subset", s.Tok)
	}
	if len(s.Lhs) != len(s.Rhs) {
		return l.errf(s.Pos(), "multi-value assignment is outside the analyzable subset")
	}

	// Go evaluates all right-hand sides before any assignment takes
	// effect; with more than one target, copy values into temporaries
	// first so a, b = b, a works.
	vals := make([]ir.Reg, len(s.Rhs))
	for i, rhs := range s.Rhs {
		v, err := l.lowerExpr(rhs)
		if err != nil {
			return err
		}
		if len(s.Lhs) > 1 {
			t := l.newReg(l.fn.Kinds[v])
			l.emit(ir.Instr{Op: ir.Mov, Dst: t, A: v, Site: ir.NoSite, Pos: l.pos(rhs.Pos())})
			v = t
		}
		vals[i] = v
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return l.errf(lhs.Pos(), "assignment target must be a variable (%s)", subsetTypeMsg(l.info.TypeOf(lhs)))
		}
		if id.Name == "_" {
			continue
		}
		pos := l.pos(lhs.Pos())
		if s.Tok == token.DEFINE {
			if obj := l.info.Defs[id]; obj != nil {
				// Fresh declaration: bind a new register of the value's
				// kind.
				r := l.newReg(l.fn.Kinds[vals[i]])
				l.vars[obj] = r
				l.emit(ir.Instr{Op: ir.Mov, Dst: r, A: vals[i], Site: ir.NoSite, Pos: pos})
				continue
			}
			// Redeclaration in a := with at least one new name: plain
			// assignment to the existing register.
		}
		dst, err := l.lvalue(id)
		if err != nil {
			return err
		}
		if l.fn.Kinds[dst] != l.fn.Kinds[vals[i]] {
			return l.errf(lhs.Pos(), "assignment kind mismatch for %s", id.Name)
		}
		l.emit(ir.Instr{Op: ir.Mov, Dst: dst, A: vals[i], Site: ir.NoSite, Pos: pos})
	}
	return nil
}

// lvalue resolves an assignable expression to its register.
func (l *goLowerer) lvalue(e ast.Expr) (ir.Reg, error) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return -1, l.errf(e.Pos(), "assignment target must be a variable (%s)", subsetTypeMsg(l.info.TypeOf(e)))
	}
	obj := l.info.Uses[id]
	if obj == nil {
		obj = l.info.Defs[id]
	}
	if obj == nil {
		return -1, l.errf(e.Pos(), "internal: unresolved identifier %s", id.Name)
	}
	r, ok := l.vars[obj]
	if !ok {
		return -1, l.errf(e.Pos(), "cannot assign to %s (not a local float64/bool variable)", id.Name)
	}
	return r, nil
}

func (l *goLowerer) lowerIncDec(s *ast.IncDecStmt) error {
	dst, err := l.lvalue(s.X)
	if err != nil {
		return err
	}
	if l.fn.Kinds[dst] != ir.RegF {
		return l.errf(s.Pos(), "%s requires a float64 variable", s.Tok)
	}
	op := ir.FAdd
	if s.Tok == token.DEC {
		op = ir.FSub
	}
	one := l.newReg(ir.RegF)
	pos := l.pos(s.Pos())
	l.emit(ir.Instr{Op: ir.ConstF, Dst: one, Val: 1, Site: ir.NoSite, Pos: pos})
	text := types.ExprString(s.X) + s.Tok.String()
	site := l.newOpSite(s.Pos(), text)
	l.emit(ir.Instr{Op: op, Dst: dst, A: dst, B: one, Site: site, Pos: pos, Label: text})
	return nil
}

func (l *goLowerer) lowerCond(e ast.Expr) (ir.Reg, error) {
	c, err := l.lowerExpr(e)
	if err != nil {
		return -1, err
	}
	if l.fn.Kinds[c] != ir.RegB {
		return -1, l.errf(e.Pos(), "condition must be a bool expression")
	}
	return c, nil
}

func (l *goLowerer) lowerIf(s *ast.IfStmt) error {
	if s.Init != nil {
		if err := l.lowerStmt(s.Init); err != nil {
			return err
		}
	}
	cond, err := l.lowerCond(s.Cond)
	if err != nil {
		return err
	}
	pos := l.pos(s.Pos())
	thenB := l.newBlock()
	joinB := l.newBlock()
	elseB := joinB
	if s.Else != nil {
		elseB = l.newBlock()
	}
	l.emit(ir.Instr{Op: ir.CondJmp, A: cond, Target: thenB, Else: elseB, Site: ir.NoSite, Pos: pos})
	l.cur = thenB
	if err := l.lowerBlockStmt(s.Body); err != nil {
		return err
	}
	if !l.terminated() {
		l.emit(ir.Instr{Op: ir.Jmp, Target: joinB, Site: ir.NoSite, Pos: pos})
	}
	if s.Else != nil {
		l.cur = elseB
		if err := l.lowerStmt(s.Else); err != nil {
			return err
		}
		if !l.terminated() {
			l.emit(ir.Instr{Op: ir.Jmp, Target: joinB, Site: ir.NoSite, Pos: pos})
		}
	}
	l.cur = joinB
	return nil
}

func (l *goLowerer) lowerFor(s *ast.ForStmt) error {
	if s.Init != nil {
		if err := l.lowerStmt(s.Init); err != nil {
			return err
		}
	}
	pos := l.pos(s.Pos())
	headB := l.newBlock()
	bodyB := l.newBlock()
	exitB := l.newBlock()
	contB := headB
	if s.Post != nil {
		contB = l.newBlock()
	}
	l.emit(ir.Instr{Op: ir.Jmp, Target: headB, Site: ir.NoSite, Pos: pos})
	l.cur = headB
	if s.Cond != nil {
		cond, err := l.lowerCond(s.Cond)
		if err != nil {
			return err
		}
		l.emit(ir.Instr{Op: ir.CondJmp, A: cond, Target: bodyB, Else: exitB, Site: ir.NoSite, Pos: pos})
	} else {
		l.emit(ir.Instr{Op: ir.Jmp, Target: bodyB, Site: ir.NoSite, Pos: pos})
	}
	l.cur = bodyB
	l.loops = append(l.loops, loopFrame{brk: exitB, cont: contB})
	err := l.lowerBlockStmt(s.Body)
	l.loops = l.loops[:len(l.loops)-1]
	if err != nil {
		return err
	}
	if !l.terminated() {
		l.emit(ir.Instr{Op: ir.Jmp, Target: contB, Site: ir.NoSite, Pos: pos})
	}
	if s.Post != nil {
		l.cur = contB
		if err := l.lowerStmt(s.Post); err != nil {
			return err
		}
		if !l.terminated() {
			l.emit(ir.Instr{Op: ir.Jmp, Target: headB, Site: ir.NoSite, Pos: pos})
		}
	}
	l.cur = exitB
	return nil
}

func (l *goLowerer) lowerBranch(s *ast.BranchStmt) error {
	if s.Label != nil {
		return l.errf(s.Pos(), "labeled %s is outside the analyzable subset", s.Tok)
	}
	switch s.Tok {
	case token.BREAK, token.CONTINUE:
		if len(l.loops) == 0 {
			return l.errf(s.Pos(), "%s outside a for loop", s.Tok)
		}
		frame := l.loops[len(l.loops)-1]
		target := frame.brk
		if s.Tok == token.CONTINUE {
			target = frame.cont
		}
		l.emit(ir.Instr{Op: ir.Jmp, Target: target, Site: ir.NoSite, Pos: l.pos(s.Pos())})
		return nil
	case token.GOTO:
		return l.errf(s.Pos(), "goto is outside the analyzable subset")
	}
	return l.errf(s.Pos(), "%s is outside the analyzable subset", s.Tok)
}

// --- expressions ---

func (l *goLowerer) lowerExpr(e ast.Expr) (ir.Reg, error) {
	// Constant subexpressions fold first, through go/types'
	// arbitrary-precision evaluator — exactly the semantics gc applies
	// to untyped constants, so 0.25*math.Pi lowers to the same bits the
	// native build computes.
	if tv, ok := l.info.Types[e]; ok && tv.Value != nil {
		switch tv.Value.Kind() {
		case constant.Float, constant.Int:
			f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
			r := l.newReg(ir.RegF)
			l.emit(ir.Instr{Op: ir.ConstF, Dst: r, Val: f, Site: ir.NoSite, Pos: l.pos(e.Pos())})
			return r, nil
		case constant.Bool:
			r := l.newReg(ir.RegB)
			l.emit(ir.Instr{Op: ir.ConstB, Dst: r, BVal: constant.BoolVal(tv.Value), Site: ir.NoSite, Pos: l.pos(e.Pos())})
			return r, nil
		default:
			return -1, l.errf(e.Pos(), "%s", subsetTypeMsg(tv.Type))
		}
	}

	switch e := e.(type) {
	case *ast.ParenExpr:
		return l.lowerExpr(e.X)

	case *ast.Ident:
		obj := l.info.Uses[e]
		if obj == nil {
			return -1, l.errf(e.Pos(), "internal: unresolved identifier %s", e.Name)
		}
		if _, ok := obj.(*types.Func); ok {
			return -1, l.errf(e.Pos(), "function values are outside the analyzable subset")
		}
		r, ok := l.vars[obj]
		if !ok {
			return -1, l.errf(e.Pos(), "%s: %s", e.Name, subsetTypeMsg(obj.Type()))
		}
		return r, nil

	case *ast.UnaryExpr:
		return l.lowerUnary(e)

	case *ast.BinaryExpr:
		return l.lowerBinary(e)

	case *ast.CallExpr:
		return l.lowerCall(e)

	case *ast.FuncLit:
		return -1, l.errf(e.Pos(), "function literals are outside the analyzable subset")
	case *ast.CompositeLit:
		return -1, l.errf(e.Pos(), "%s", subsetTypeMsg(l.info.TypeOf(e)))
	case *ast.IndexExpr:
		return -1, l.errf(e.Pos(), "indexing is outside the analyzable subset (%s)", subsetTypeMsg(l.info.TypeOf(e.X)))
	case *ast.SliceExpr:
		return -1, l.errf(e.Pos(), "slicing is outside the analyzable subset")
	case *ast.StarExpr:
		return -1, l.errf(e.Pos(), "pointers are outside the analyzable subset")
	case *ast.TypeAssertExpr:
		return -1, l.errf(e.Pos(), "type assertions are outside the analyzable subset")
	case *ast.SelectorExpr:
		return -1, l.errf(e.Pos(), "selector %s is outside the analyzable subset", types.ExprString(e))
	}
	return -1, l.errf(e.Pos(), "unsupported expression %T", e)
}

func (l *goLowerer) lowerUnary(e *ast.UnaryExpr) (ir.Reg, error) {
	switch e.Op {
	case token.SUB:
		x, err := l.lowerExpr(e.X)
		if err != nil {
			return -1, err
		}
		if l.fn.Kinds[x] != ir.RegF {
			return -1, l.errf(e.Pos(), "unary minus requires a float64 operand")
		}
		// Sign flips are exact: FNeg, no op site — matching FPL and the
		// paper's LLVM-level site inventory.
		r := l.newReg(ir.RegF)
		l.emit(ir.Instr{Op: ir.FNeg, Dst: r, A: x, Site: ir.NoSite, Pos: l.pos(e.Pos())})
		return r, nil
	case token.ADD:
		return l.lowerExpr(e.X)
	case token.NOT:
		x, err := l.lowerExpr(e.X)
		if err != nil {
			return -1, err
		}
		if l.fn.Kinds[x] != ir.RegB {
			return -1, l.errf(e.Pos(), "! requires a bool operand")
		}
		r := l.newReg(ir.RegB)
		l.emit(ir.Instr{Op: ir.Not, Dst: r, A: x, Site: ir.NoSite, Pos: l.pos(e.Pos())})
		return r, nil
	case token.AND:
		return -1, l.errf(e.Pos(), "pointers are outside the analyzable subset")
	case token.ARROW:
		return -1, l.errf(e.Pos(), "channel receives are outside the analyzable subset")
	}
	return -1, l.errf(e.Pos(), "operator %s is outside the analyzable subset", e.Op)
}

// cmpTok maps Go comparison tokens to IR comparison predicates.
var cmpTok = map[token.Token]fp.CmpOp{
	token.LSS: fp.LT,
	token.LEQ: fp.LE,
	token.GTR: fp.GT,
	token.GEQ: fp.GE,
	token.EQL: fp.EQ,
	token.NEQ: fp.NE,
}

// arithTok maps Go arithmetic tokens to IR opcodes.
var arithTok = map[token.Token]ir.Opcode{
	token.ADD: ir.FAdd,
	token.SUB: ir.FSub,
	token.MUL: ir.FMul,
	token.QUO: ir.FDiv,
}

func (l *goLowerer) lowerBinary(e *ast.BinaryExpr) (ir.Reg, error) {
	switch e.Op {
	case token.LAND, token.LOR:
		return l.lowerShortCircuit(e)
	}
	if pred, ok := cmpTok[e.Op]; ok {
		if !isFloat64(l.info.TypeOf(e.X)) || !isFloat64(l.info.TypeOf(e.Y)) {
			return -1, l.errf(e.Pos(), "comparison of non-float64 values: %s", subsetTypeMsg(l.info.TypeOf(e.X)))
		}
		x, err := l.lowerExpr(e.X)
		if err != nil {
			return -1, err
		}
		y, err := l.lowerExpr(e.Y)
		if err != nil {
			return -1, err
		}
		text := types.ExprString(e)
		r := l.newReg(ir.RegB)
		site := l.newBranchSite(e.Pos(), text, pred)
		l.emit(ir.Instr{Op: ir.FCmp, Dst: r, A: x, B: y, Pred: pred, Site: site, Pos: l.pos(e.Pos()), Label: text})
		return r, nil
	}
	if op, ok := arithTok[e.Op]; ok {
		if !isFloat64(l.info.TypeOf(e)) {
			return -1, l.errf(e.Pos(), "%s", subsetTypeMsg(l.info.TypeOf(e)))
		}
		x, err := l.lowerExpr(e.X)
		if err != nil {
			return -1, err
		}
		y, err := l.lowerExpr(e.Y)
		if err != nil {
			return -1, err
		}
		text := types.ExprString(e)
		r := l.newReg(ir.RegF)
		site := l.newOpSite(e.Pos(), text)
		l.emit(ir.Instr{Op: op, Dst: r, A: x, B: y, Site: site, Pos: l.pos(e.Pos()), Label: text})
		return r, nil
	}
	if e.Op == token.REM {
		return -1, l.errf(e.Pos(), "%% is outside the analyzable subset (use math.Mod)")
	}
	return -1, l.errf(e.Pos(), "operator %s is outside the analyzable subset", e.Op)
}

// lowerShortCircuit lowers && and || with real control flow, so the
// right operand — and any comparison sites inside it — only executes
// and is only observed when the left operand does not decide the
// result. This matches both FPL lowering and native Go evaluation.
func (l *goLowerer) lowerShortCircuit(e *ast.BinaryExpr) (ir.Reg, error) {
	pos := l.pos(e.Pos())
	res := l.newReg(ir.RegB)
	x, err := l.lowerCond(e.X)
	if err != nil {
		return -1, err
	}
	l.emit(ir.Instr{Op: ir.Mov, Dst: res, A: x, Site: ir.NoSite, Pos: pos})
	rhsB := l.newBlock()
	joinB := l.newBlock()
	if e.Op == token.LAND {
		l.emit(ir.Instr{Op: ir.CondJmp, A: res, Target: rhsB, Else: joinB, Site: ir.NoSite, Pos: pos})
	} else {
		l.emit(ir.Instr{Op: ir.CondJmp, A: res, Target: joinB, Else: rhsB, Site: ir.NoSite, Pos: pos})
	}
	l.cur = rhsB
	y, err := l.lowerCond(e.Y)
	if err != nil {
		return -1, err
	}
	l.emit(ir.Instr{Op: ir.Mov, Dst: res, A: y, Site: ir.NoSite, Pos: pos})
	l.emit(ir.Instr{Op: ir.Jmp, Target: joinB, Site: ir.NoSite, Pos: pos})
	l.cur = joinB
	return res, nil
}

func (l *goLowerer) lowerCall(e *ast.CallExpr) (ir.Reg, error) {
	// Conversions: float64(x) on a float64 is the identity; anything
	// else leaves the subset.
	if tv, ok := l.info.Types[e.Fun]; ok && tv.IsType() {
		if !isFloat64(tv.Type) {
			return -1, l.errf(e.Pos(), "conversion to %s is outside the analyzable subset", tv.Type)
		}
		if len(e.Args) != 1 || !isFloat64(l.info.TypeOf(e.Args[0])) {
			return -1, l.errf(e.Pos(), "conversion from %s is outside the analyzable subset", l.info.TypeOf(e.Args[0]))
		}
		return l.lowerExpr(e.Args[0])
	}

	switch fun := ast.Unparen(e.Fun).(type) {
	case *ast.Ident:
		obj := l.info.Uses[fun]
		if _, ok := obj.(*types.Builtin); ok {
			return -1, l.errf(e.Pos(), "builtin %s is outside the analyzable subset", fun.Name)
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			return -1, l.errf(e.Pos(), "function values are outside the analyzable subset")
		}
		args, err := l.lowerArgs(e.Args)
		if err != nil {
			return -1, err
		}
		r := l.newReg(ir.RegF)
		l.emit(ir.Instr{Op: ir.Call, Dst: r, Name: fn.Name(), Args: args, Site: ir.NoSite, Pos: l.pos(e.Pos()), Label: types.ExprString(e)})
		return r, nil

	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return -1, l.errf(e.Pos(), "method calls are outside the analyzable subset")
		}
		if _, isPkg := l.info.Uses[pkg].(*types.PkgName); !isPkg {
			return -1, l.errf(e.Pos(), "method calls are outside the analyzable subset")
		}
		spec, ok := mathFuncs[fun.Sel.Name]
		if !ok {
			// Unreachable in practice: the synthetic math package only
			// declares supported names, so the type checker rejects the
			// rest first.
			return -1, l.errf(e.Pos(), "math.%s is not supported by the frontend", fun.Sel.Name)
		}
		args, err := l.lowerArgs(e.Args)
		if err != nil {
			return -1, err
		}
		if len(args) != spec.Arity {
			return -1, l.errf(e.Pos(), "math.%s takes %d arguments", fun.Sel.Name, spec.Arity)
		}
		text := types.ExprString(e)
		r := l.newReg(ir.RegF)
		site := l.newOpSite(e.Pos(), text)
		l.emit(ir.Instr{Op: ir.CallBuiltin, Dst: r, Name: spec.Builtin, Args: args, Site: site, Pos: l.pos(e.Pos()), Label: text})
		return r, nil
	}
	return -1, l.errf(e.Pos(), "function values are outside the analyzable subset")
}

func (l *goLowerer) lowerArgs(args []ast.Expr) ([]ir.Reg, error) {
	var regs []ir.Reg
	for _, a := range args {
		r, err := l.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		if l.fn.Kinds[r] != ir.RegF {
			return nil, l.errf(a.Pos(), "call arguments must be float64")
		}
		regs = append(regs, r)
	}
	return regs, nil
}
