package gofront_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/gofront"
	"repro/internal/interp"
)

// run compiles src through the Go frontend and executes fn under eng.
func run(t *testing.T, src, fn string, eng interp.Engine, args []float64) float64 {
	t.Helper()
	mod, err := gofront.Compile("prog.go", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	it := interp.New(mod)
	it.Engine = eng
	got, err := it.Run(fn, args)
	if err != nil {
		t.Fatalf("run %s: %v", fn, err)
	}
	return got
}

// both executes fn under both engines, requiring bit-identical results.
func both(t *testing.T, src, fn string, args []float64) float64 {
	t.Helper()
	tree := run(t, src, fn, interp.EngineTree, args)
	vm := run(t, src, fn, interp.EngineVM, args)
	if math.Float64bits(tree) != math.Float64bits(vm) {
		t.Fatalf("%s(%v): tree %x, vm %x", fn, args, math.Float64bits(tree), math.Float64bits(vm))
	}
	return tree
}

func TestParseLang(t *testing.T) {
	cases := []struct {
		in   string
		want gofront.Lang
		ok   bool
	}{
		{"", gofront.LangFPL, true},
		{"fpl", gofront.LangFPL, true},
		{"go", gofront.LangGo, true},
		{"golang", gofront.LangGo, true},
		{"rust", "", false},
	}
	for _, c := range cases {
		got, err := gofront.ParseLang(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseLang(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseLang(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if err := func() error { _, err := gofront.ParseLang("rust"); return err }(); err == nil ||
		!strings.Contains(err.Error(), "unknown language") {
		t.Errorf("ParseLang(rust) error = %v, want unknown language", err)
	}
}

func TestDetectLang(t *testing.T) {
	if lg := gofront.DetectLang("prog.go"); lg != gofront.LangGo {
		t.Errorf("DetectLang(prog.go) = %q", lg)
	}
	for _, p := range []string{"prog.fpl", "prog", "go", "dir.go/prog.fpl"} {
		if lg := gofront.DetectLang(p); lg != gofront.LangFPL {
			t.Errorf("DetectLang(%q) = %q, want fpl", p, lg)
		}
	}
}

// TestExecution pins the lowering semantics against natively compiled
// closures over the same expressions: the same control flow and
// arithmetic, bit for bit, under both engines.
func TestExecution(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		fn     string
		args   []float64
		native func(a []float64) float64
	}{
		{"arith", `package p
func f(x, y float64) float64 { return (x+y)*x - y/x }`,
			"f", []float64{3.5, -2.25},
			func(a []float64) float64 { return (a[0]+a[1])*a[0] - a[1]/a[0] }},
		{"neg", `package p
func f(x float64) float64 { return -x + +x*2.0 }`,
			"f", []float64{1.75},
			func(a []float64) float64 { return -a[0] + a[0]*2.0 }},
		{"ifelse", `package p
func f(x float64) float64 {
	if x < 0.0 {
		return -x
	} else if x == 0.0 {
		return 1.0
	}
	return x * 2.0
}`, "f", []float64{-4.5}, func(a []float64) float64 {
			if a[0] < 0.0 {
				return -a[0]
			} else if a[0] == 0.0 {
				return 1.0
			}
			return a[0] * 2.0
		}},
		{"ifinit", `package p
import "math"
func f(x float64) float64 {
	if y := math.Abs(x); y > 1.0 {
		return y
	}
	return 1.0
}`, "f", []float64{-3.0}, func(a []float64) float64 {
			if y := math.Abs(a[0]); y > 1.0 {
				return y
			}
			return 1.0
		}},
		{"forloop", `package p
func f(n float64) float64 {
	s := 0.0
	for i := 0.0; i < n; i += 1.0 {
		s += i * i
	}
	return s
}`, "f", []float64{17.0}, func(a []float64) float64 {
			s := 0.0
			for i := 0.0; i < a[0]; i += 1.0 {
				s += i * i
			}
			return s
		}},
		{"breakcontinue", `package p
func f(n float64) float64 {
	s := 0.0
	for i := 0.0; i < n; i += 1.0 {
		if i == 3.0 {
			continue
		}
		if i > 7.0 {
			break
		}
		s += i
	}
	return s
}`, "f", []float64{100.0}, func(a []float64) float64 {
			s := 0.0
			for i := 0.0; i < a[0]; i += 1.0 {
				if i == 3.0 {
					continue
				}
				if i > 7.0 {
					break
				}
				s += i
			}
			return s
		}},
		{"condloop", `package p
func f(x float64) float64 {
	for x > 1.0 {
		x = x / 2.0
	}
	return x
}`, "f", []float64{937.25}, func(a []float64) float64 {
			x := a[0]
			for x > 1.0 {
				x = x / 2.0
			}
			return x
		}},
		{"shortcircuit", `package p
func f(x, y float64) float64 {
	if x > 0.0 && y/x > 2.0 || x == -1.0 {
		return 1.0
	}
	return 0.0
}`, "f", []float64{-1.0, 5.0}, func(a []float64) float64 {
			if a[0] > 0.0 && a[1]/a[0] > 2.0 || a[0] == -1.0 {
				return 1.0
			}
			return 0.0
		}},
		{"calls", `package p
func sq(x float64) float64 { return x * x }
func f(x float64) float64  { return sq(x+1.0) + sq(x-1.0) }`,
			"f", []float64{2.5},
			func(a []float64) float64 {
				sq := func(x float64) float64 { return x * x }
				return sq(a[0]+1.0) + sq(a[0]-1.0)
			}},
		{"parallelassign", `package p
func f(n float64) float64 {
	a := 0.0
	b := 1.0
	for i := 0.0; i < n; i += 1.0 {
		a, b = b, a+b
	}
	return a
}`, "f", []float64{30.0}, func(x []float64) float64 {
			a, b := 0.0, 1.0
			for i := 0.0; i < x[0]; i += 1.0 {
				a, b = b, a+b
			}
			return a
		}},
		{"incdec", `package p
func f(x float64) float64 {
	x++
	x++
	x--
	return x
}`, "f", []float64{0.5}, func(a []float64) float64 { return a[0] + 1.0 }},
		{"opassign", `package p
func f(x float64) float64 {
	x *= 3.0
	x -= 1.0
	x /= 7.0
	x += 0.25
	return x
}`, "f", []float64{11.5}, func(a []float64) float64 {
			x := a[0]
			x *= 3.0
			x -= 1.0
			x /= 7.0
			x += 0.25
			return x
		}},
		{"mathbuiltins", `package p
import "math"
func f(x, y float64) float64 {
	return math.Expm1(x) + math.Log1p(y) + math.Hypot(x, y) + math.Copysign(x, -y) + math.Cbrt(y)
}`, "f", []float64{0.125, 2.5}, func(a []float64) float64 {
			return math.Expm1(a[0]) + math.Log1p(a[1]) + math.Hypot(a[0], a[1]) +
				math.Copysign(a[0], -a[1]) + math.Cbrt(a[1])
		}},
		{"float64conv", `package p
func f(x float64) float64 { return float64(x) * 2.0 }`,
			"f", []float64{3.25}, func(a []float64) float64 { return a[0] * 2.0 }},
		{"vardecl", `package p
func f(x float64) float64 {
	var a float64
	var b = x * 2.0
	var c float64 = 1.5
	a = b + c
	return a
}`, "f", []float64{2.0}, func(x []float64) float64 { return x[0]*2.0 + 1.5 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := both(t, c.src, c.fn, c.args)
			want := c.native(c.args)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s(%v) = %x (%g), native %x (%g)", c.fn, c.args,
					math.Float64bits(got), got, math.Float64bits(want), want)
			}
		})
	}
}

// TestConstantFolding pins the frontend's untyped-constant arithmetic
// against gc's: both fold in arbitrary precision and round once, so the
// lifted bits must equal the natively compiled bits.
func TestConstantFolding(t *testing.T) {
	cases := []struct {
		name   string
		expr   string
		native float64
	}{
		{"quarterpi", "0.25 * math.Pi", 0.25 * math.Pi},
		{"log2e", "math.Log2E", math.Log2E},
		{"log10e", "math.Log10E", math.Log10E},
		{"maxfloat", "math.MaxFloat64", math.MaxFloat64},
		{"smallest", "math.SmallestNonzeroFloat64", math.SmallestNonzeroFloat64},
		{"sqrt2half", "math.Sqrt2 / 2.0", math.Sqrt2 / 2.0},
		{"third", "1.0 / 3.0", 1.0 / 3.0},
		{"exact", "16.0/7.0 + 9.0/7.0", 16.0/7.0 + 9.0/7.0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			imp := ""
			if strings.Contains(c.expr, "math.") {
				imp = "import \"math\"\n"
			}
			src := "package p\n" + imp + "func f(x float64) float64 { _ = x; return " + c.expr + " }\n"
			got := both(t, src, "f", []float64{0})
			if math.Float64bits(got) != math.Float64bits(c.native) {
				t.Errorf("%s = %x, native %x", c.expr, math.Float64bits(got), math.Float64bits(c.native))
			}
		})
	}
}

// TestSubsetRejections: everything outside the numeric subset is
// refused at compile time with a typed, positioned diagnostic — never
// silently mis-lowered.
func TestSubsetRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"goroutine", `package p
func g(x float64) float64 { return x }
func f(x float64) float64 {
	go g(x)
	return x
}`, "goroutines are outside the analyzable subset"},
		{"defer", `package p
func g(x float64) float64 { return x }
func f(x float64) float64 {
	defer g(x)
	return x
}`, "defer is outside the analyzable subset"},
		{"stringvar", `package p
func f(x float64) float64 {
	s := "hello"
	_ = s
	return x
}`, "outside the analyzable subset"},
		{"intparam", `package p
func f(n int) float64 { return 1.0 }`, "only float64 parameters"},
		{"float32param", `package p
func f(x float32) float64 { return 1.0 }`, "only float64 parameters"},
		{"slice", `package p
func f(x float64) float64 {
	xs := []float64{x}
	return xs[0]
}`, "outside the analyzable subset"},
		{"map", `package p
func f(x float64) float64 {
	m := map[float64]float64{}
	return m[x]
}`, "outside the analyzable subset"},
		{"channel", `package p
func f(x float64) float64 {
	c := make(chan float64, 1)
	c <- x
	return <-c
}`, "outside the analyzable subset"},
		{"pointer", `package p
func f(x float64) float64 {
	p := &x
	return *p
}`, "outside the analyzable subset"},
		{"switch", `package p
func f(x float64) float64 {
	switch {
	case x > 0.0:
		return x
	}
	return -x
}`, "switch is outside the analyzable subset"},
		{"rangeloop", `package p
func f(x float64) float64 {
	for range 3 {
		x += 1.0
	}
	return x
}`, "range loops are outside the analyzable subset"},
		{"goto", `package p
func f(x float64) float64 {
	goto done
done:
	return x
}`, "outside the analyzable subset"},
		{"globalvar", `package p
var g = 1.0
func f(x float64) float64 { return x + g }`,
			"package-level variables are outside the analyzable subset"},
		{"typedecl", `package p
type T float64
func f(x float64) float64 { return x }`,
			"type declarations are outside the analyzable subset"},
		{"generic", `package p
func f[T any](x float64) float64 { return x }`,
			"generic functions are outside the analyzable subset"},
		{"variadic", `package p
func f(xs ...float64) float64 { return 0.0 }`,
			"variadic functions are outside the analyzable subset"},
		{"namedresult", `package p
func f(x float64) (r float64) {
	r = x
	return
}`, "named results are outside the analyzable subset"},
		{"tworesults", `package p
func f(x float64) (float64, float64) { return x, x }`,
			"exactly one float64 result"},
		{"badimport", `package p
import "fmt"
func f(x float64) float64 {
	fmt.Println(x)
	return x
}`, "outside the analyzable subset"},
		// math.Gamma is real Go but not a registered builtin: the
		// frontend's synthetic math package omits it, so the type
		// checker reports it undefined at compile time.
		{"unknownmathfn", `package p
import "math"
func f(x float64) float64 { return math.Gamma(x) }`,
			"undefined: math.Gamma"},
		{"modulo", `package p
func f(x float64) float64 { return x % 2.0 }`, "operator % not defined"},
		{"nofuncs", `package p`, "no functions"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := gofront.Compile("prog.go", c.src)
			if err == nil {
				t.Fatalf("compiled, want rejection containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), c.want)
			}
			// Every rejection is typed and positioned: a *Diagnostic or a
			// DiagnosticList whose entries carry prog.go:line:col.
			var d *gofront.Diagnostic
			var dl gofront.DiagnosticList
			switch {
			case errors.As(err, &d):
			case errors.As(err, &dl) && len(dl) > 0:
				d = dl[0]
			default:
				t.Fatalf("error %T is not a gofront diagnostic", err)
			}
			if c.name == "nofuncs" {
				return // module-level: no single source position
			}
			if d.File != "prog.go" || d.Line <= 0 || d.Col <= 0 {
				t.Fatalf("diagnostic %+v lacks a file:line:col position", d)
			}
			if !strings.Contains(err.Error(), "prog.go:") {
				t.Fatalf("error %q does not render the file position", err.Error())
			}
		})
	}
}

// TestSyntaxErrorPosition: parse errors are diagnostics too.
func TestSyntaxErrorPosition(t *testing.T) {
	_, err := gofront.Compile("broken.go", "package p\nfunc f(x float64 float64 {\n")
	if err == nil {
		t.Fatal("parsed, want syntax error")
	}
	if !strings.Contains(err.Error(), "broken.go:") {
		t.Fatalf("syntax error %q lacks the file position", err)
	}
}

// TestCompileSourceDispatch: the shared entry point routes each
// language to its frontend, and FPL errors carry the filename too.
func TestCompileSourceDispatch(t *testing.T) {
	goSrc := "package p\nfunc f(x float64) float64 { return x }\n"
	fplSrc := "func f(x double) { x = x + 1.0; }"
	if _, err := gofront.CompileSource(gofront.LangGo, "a.go", goSrc); err != nil {
		t.Fatalf("go dispatch: %v", err)
	}
	if _, err := gofront.CompileSource(gofront.LangFPL, "a.fpl", fplSrc); err != nil {
		t.Fatalf("fpl dispatch: %v", err)
	}
	if _, err := gofront.CompileSource(gofront.LangFPL, "", fplSrc); err != nil {
		t.Fatalf("fpl inline dispatch: %v", err)
	}
	// Cross-language confusion is a compile error, not a mis-parse.
	if _, err := gofront.CompileSource(gofront.LangGo, "a.go", fplSrc); err == nil {
		t.Fatal("FPL source compiled as Go")
	}
	_, err := gofront.CompileSource(gofront.LangFPL, "b.fpl", "func f(x double) { x = y; }")
	if err == nil || !strings.Contains(err.Error(), "b.fpl:") {
		t.Fatalf("FPL error %v lacks the b.fpl position", err)
	}
}

// TestSiteLabelsCarryPositions: instrumented op/branch sites of lifted
// code are labeled file:line:col, so analysis reports point back into
// the Go source.
func TestSiteLabelsCarryPositions(t *testing.T) {
	src := `package p
func f(x float64) float64 {
	if x > 1.0 {
		return x * 2.0
	}
	return x
}`
	mod, err := gofront.Compile("prog.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.BranchSites) == 0 || len(mod.OpSites) == 0 {
		t.Fatalf("no instrumented sites: %d branches, %d ops", len(mod.BranchSites), len(mod.OpSites))
	}
	for _, b := range mod.BranchSites {
		if !strings.Contains(b.Label, "prog.go:") {
			t.Errorf("branch label %q lacks the source position", b.Label)
		}
	}
	for _, o := range mod.OpSites {
		if !strings.Contains(o.Label, "prog.go:") {
			t.Errorf("op label %q lacks the source position", o.Label)
		}
	}
}
