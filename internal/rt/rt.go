// Package rt is the observation runtime for natively ported benchmark
// programs (glibc sin, the GSL special functions). It plays the role of
// the paper's Clang/LLVM instrumentation pass (§5.3 "Reduction Kernel"):
// every floating-point operation and every conditional branch in a port
// flows through a Ctx, which forwards the observation to a pluggable
// Monitor — the weak-distance state machine.
//
// A port is written once with explicit observation points; which analysis
// runs (boundary value, path reachability, overflow detection, coverage)
// is decided by the Monitor plugged in at run time, exactly as the
// paper's Analysis Designer layer chooses w_init and update_w.
package rt

import (
	"sync"

	"repro/internal/fp"
)

// Monitor receives the runtime observations of one program execution and
// accumulates the weak-distance value w. Implementations live in
// internal/instrument.
type Monitor interface {
	// Reset prepares the monitor for a fresh execution.
	Reset()
	// Branch observes a conditional `a op b` at the given site just
	// before it executes.
	Branch(site int, op fp.CmpOp, a, b float64)
	// FPOp observes the result of the floating-point operation at the
	// given site. Returning stop=true aborts the execution immediately
	// (Algorithm 3's injected `if (w == 0) return;`).
	FPOp(site int, v float64) (stop bool)
	// Value returns the weak distance w accumulated by the execution.
	Value() float64
}

// FPOpFree is an optional marker interface a Monitor may implement to
// declare that its FPOp method is a pure no-op: it observes nothing and
// never requests a stop. Batch engines use the declaration to skip the
// per-lane FPOp dispatch on arithmetic instructions — the dominant cost
// of a lane sweep — which cannot change observable behavior when the
// call would have done nothing. Monitors whose FPOp ever records state
// or returns true must not implement it (or must return false).
type FPOpFree interface {
	FPOpFree() bool
}

// NopMonitor ignores all observations and reports w = 0. It is used to
// run a port uninstrumented (plain concrete execution).
type NopMonitor struct{}

// Reset implements Monitor.
func (NopMonitor) Reset() {}

// Branch implements Monitor.
func (NopMonitor) Branch(int, fp.CmpOp, float64, float64) {}

// FPOp implements Monitor.
func (NopMonitor) FPOp(int, float64) bool { return false }

// Value implements Monitor.
func (NopMonitor) Value() float64 { return 0 }

// OpInfo describes one floating-point operation site of a program: an
// entry of the paper's instruction set L̄ (§4.4).
type OpInfo struct {
	ID    int    // dense site identifier, unique within the program
	Label string // source-level description, e.g. "mu = 4.0 * nu*nu (first *)"
}

// BranchInfo describes one conditional branch site.
type BranchInfo struct {
	ID    int      // dense site identifier, unique within the program
	Label string   // source-level description, e.g. "k < 0x3e500000"
	Op    fp.CmpOp // comparison operator at the site
}

// Program is an instrumentable native port: a fixed input arity, static
// inventories of its FP-operation and branch sites, and a Run function
// that executes the port under a Ctx.
type Program struct {
	Name     string
	Dim      int // number of float64 inputs (dom(Prog) = F^Dim)
	Ops      []OpInfo
	Branches []BranchInfo
	Run      func(ctx *Ctx, x []float64)

	// NewInstance, when non-nil, returns an independent copy of the
	// program that is safe to Execute concurrently with the original.
	// Native ports are pure functions of (ctx, x) and leave it nil;
	// interpreter-backed programs carry per-execution mutable state
	// (step budgets, failure logs) and set it so the parallel
	// multi-start engine can give every worker its own instance.
	NewInstance func() *Program

	// NoPanicStop declares that Run honors monitor early-stop requests
	// through ordinary control flow and never raises the stop panic
	// (true for the compiled flat-code engine). Execute then skips its
	// recover wrapper on the per-evaluation path.
	NoPanicStop bool

	// RunBatch, when non-nil, evaluates the program on len(xs) inputs
	// at once, lane l observed by mons[l] — the lane-parallel entry
	// point of the batch evaluation contract. It owns the whole
	// monitor bracket: reset every monitor, execute, and write lane
	// l's weak distance to out[l], so engines can devirtualize the
	// per-lane reset/collect loops alongside their observation
	// dispatch. The contract is bit-identity with the serial path:
	// out[l] must be exactly what Execute(mons[l], xs[l]) returns, and
	// every monitor must be left in exactly the state len(xs) serial
	// Run calls would have (same observation sequences, same early
	// stops, same budget aborts). Engines without lane support leave
	// it nil; ExecuteBatch then falls back to serial Execute calls.
	// Like Run on a stateful program, RunBatch is single-goroutine:
	// callers needing concurrency take Instances.
	RunBatch func(mons []Monitor, xs [][]float64, out []float64)

	// ctx is the reusable execution context of a stateful program.
	// Programs with NewInstance set carry per-execution mutable state,
	// so each instance is executed by one goroutine at a time and can
	// own its context outright — no pool round-trip per evaluation.
	ctx *Ctx
}

// Instance returns a program safe for concurrent execution alongside
// every other Instance result: the program itself when it is stateless,
// or a fresh independent copy otherwise.
func (p *Program) Instance() *Program {
	if p.NewInstance != nil {
		return p.NewInstance()
	}
	return p
}

// ctxPool recycles execution contexts across Execute calls. A Ctx is
// tiny, but the per-evaluation path must be allocation-free: analyses
// spend their entire budget calling Execute millions of times.
var ctxPool = sync.Pool{New: func() any { return new(Ctx) }}

// Execute runs the program on x under the monitor and returns the
// accumulated weak distance. Early stops requested by the monitor are
// honored via panic-based unwinding confined to this call.
func (p *Program) Execute(m Monitor, x []float64) float64 {
	m.Reset()
	if p.NewInstance != nil {
		// Stateful program: single-goroutine by contract, owns its
		// context.
		if p.ctx == nil {
			p.ctx = new(Ctx)
		}
		p.ctx.mon = m
		if p.NoPanicStop {
			p.Run(p.ctx, x)
		} else {
			p.runProtected(p.ctx, x)
		}
		p.ctx.mon = nil
		return m.Value()
	}
	ctx := ctxPool.Get().(*Ctx)
	ctx.mon = m
	p.runProtected(ctx, x)
	ctx.mon = nil
	ctxPool.Put(ctx)
	return m.Value()
}

// runProtected confines the early-stop unwinding to one frame. (If Run
// panics with anything else, the context is deliberately not returned
// to the pool.)
func (p *Program) runProtected(ctx *Ctx, x []float64) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopExecution); !ok {
				panic(r)
			}
		}
	}()
	p.Run(ctx, x)
}

// ExecuteBatch runs the program on every input of xs, writing lane l's
// weak distance — mons[l].Value(), exactly what Execute(mons[l], xs[l])
// returns — to out[l]. With RunBatch wired it is one lane-parallel
// sweep; otherwise it degrades to len(xs) serial Execute calls, so
// callers can submit batches unconditionally.
func (p *Program) ExecuteBatch(mons []Monitor, xs [][]float64, out []float64) {
	if p.RunBatch == nil {
		for i := range xs {
			out[i] = p.Execute(mons[i], xs[i])
		}
		return
	}
	p.RunBatch(mons, xs, out)
}

// WeakDistance returns the weak-distance objective W(x) induced by the
// monitor: exactly the paper's
//
//	double W(double x1, ..., xN) { w = w_init; Prog_w(x...); return w; }
//
// construction (Algorithm 2 step 1 / Algorithm 3 step 3).
func (p *Program) WeakDistance(m Monitor) func(x []float64) float64 {
	return func(x []float64) float64 {
		return p.Execute(m, x)
	}
}

// stopExecution is the sentinel panic used to abort a run when a monitor
// requests early termination.
type stopExecution struct{}

// Ctx is the execution context handed to a port's Run function.
type Ctx struct {
	mon Monitor
}

// NewCtx returns a context forwarding observations to m. Most callers
// should use Program.Execute, which also handles early-stop unwinding;
// NewCtx exists for direct execution (e.g. extracting a port's return
// value with a NopMonitor).
func NewCtx(m Monitor) *Ctx { return &Ctx{mon: m} }

// Monitor returns the monitor the context forwards to. Execution
// engines that dispatch observations themselves (internal/compile) use
// it to call the monitor directly instead of going through Op/Cmp.
func (c *Ctx) Monitor() Monitor { return c.mon }

// Op reports the result of the FP operation at the given site and returns
// it, so ports can wrap expressions inline:
//
//	mu := ctx.Op(1, ctx.Op(0, 4.0*nu)*nu)
func (c *Ctx) Op(site int, v float64) float64 {
	if c.mon.FPOp(site, v) {
		panic(stopExecution{})
	}
	return v
}

// Cmp observes and evaluates the branch condition `a op b` at the site.
func (c *Ctx) Cmp(site int, op fp.CmpOp, a, b float64) bool {
	c.mon.Branch(site, op, a, b)
	return op.Eval(a, b)
}
