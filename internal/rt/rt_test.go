package rt_test

import (
	"math"
	"testing"

	"repro/internal/fp"
	"repro/internal/instrument"
	"repro/internal/progs"
	"repro/internal/rt"
)

func TestNopMonitorPlainExecution(t *testing.T) {
	p := progs.Fig2()
	if w := p.Execute(rt.NopMonitor{}, []float64{0}); w != 0 {
		t.Errorf("nop monitor w = %v, want 0", w)
	}
}

func TestCtxCmpEvaluates(t *testing.T) {
	var got []bool
	p := &rt.Program{
		Name: "cmp",
		Dim:  1,
		Run: func(ctx *rt.Ctx, in []float64) {
			got = append(got,
				ctx.Cmp(0, fp.LT, in[0], 1),
				ctx.Cmp(1, fp.GE, in[0], 0),
			)
		},
	}
	p.Execute(rt.NopMonitor{}, []float64{0.5})
	if !got[0] || !got[1] {
		t.Errorf("Cmp results = %v, want both true", got)
	}
}

// stopAfter aborts execution after n FP ops.
type stopAfter struct {
	n, seen int
}

func (m *stopAfter) Reset()                                 { m.seen = 0 }
func (m *stopAfter) Branch(int, fp.CmpOp, float64, float64) {}
func (m *stopAfter) Value() float64                         { return float64(m.seen) }
func (m *stopAfter) FPOp(site int, v float64) bool {
	m.seen++
	return m.seen >= m.n
}

func TestEarlyStopUnwinds(t *testing.T) {
	p := progs.Fig2()
	m := &stopAfter{n: 1}
	// Input 0 executes ops inc, square, dec; the stop after the first op
	// must abort before the others.
	if w := p.Execute(m, []float64{0}); w != 1 {
		t.Errorf("execution saw %v ops, want stop after 1", w)
	}
}

func TestEarlyStopDoesNotSwallowRealPanics(t *testing.T) {
	p := &rt.Program{
		Name: "panics",
		Dim:  1,
		Run: func(ctx *rt.Ctx, in []float64) {
			panic("real bug")
		},
	}
	defer func() {
		if r := recover(); r != "real bug" {
			t.Errorf("recovered %v, want the original panic", r)
		}
	}()
	p.Execute(rt.NopMonitor{}, []float64{0})
	t.Fatal("expected panic to propagate")
}

func TestWeakDistanceClosure(t *testing.T) {
	p := progs.Fig2()
	w := p.WeakDistance(&instrument.Boundary{})
	if got := w([]float64{1.0}); got != 0 {
		t.Errorf("W(1) = %v, want 0 (x = 1 is a boundary value)", got)
	}
	if got := w([]float64{10.0}); got <= 0 {
		t.Errorf("W(10) = %v, want > 0", got)
	}
}

func TestFig2Semantics(t *testing.T) {
	// Concrete semantics cross-check of the port: input 0 takes both
	// branches (0 <= 1, then y = 1 <= 4); input 3 takes neither
	// (3 > 1, y = 9 > 4).
	p := progs.Fig2()
	var trace []bool
	mon := &branchRecorder{out: &trace}
	p.Execute(mon, []float64{0})
	if len(trace) != 2 || !trace[0] || !trace[1] {
		t.Errorf("Fig2(0) branch outcomes = %v, want [true true]", trace)
	}
	trace = nil
	p.Execute(mon, []float64{3})
	if len(trace) != 2 || trace[0] || trace[1] {
		t.Errorf("Fig2(3) branch outcomes = %v, want [false false]", trace)
	}
}

type branchRecorder struct {
	out *[]bool
}

func (m *branchRecorder) Reset() {}
func (m *branchRecorder) Branch(site int, op fp.CmpOp, a, b float64) {
	*m.out = append(*m.out, op.Eval(a, b))
}
func (m *branchRecorder) FPOp(int, float64) bool { return false }
func (m *branchRecorder) Value() float64         { return 0 }

func TestFig1Motivating(t *testing.T) {
	// The paper's §1 example: under round-to-nearest,
	// x = 0.9999999999999999 enters the branch and violates the
	// assertion (x + 1 == 2).
	x := 0.9999999999999999
	r := progs.Fig1aCheck(x)
	if !r.Entered || !r.Violated {
		t.Errorf("Fig1a(%v) = %+v, want entered and violated", x, r)
	}
	// An ordinary input does not violate it.
	r = progs.Fig1aCheck(0.5)
	if !r.Entered || r.Violated {
		t.Errorf("Fig1a(0.5) = %+v, want entered and not violated", r)
	}
	if math.Nextafter(1.0, 0) != x {
		t.Errorf("sanity: 0.9999999999999999 should be the predecessor of 1")
	}
}
