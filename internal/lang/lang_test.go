package lang

import (
	"strings"
	"testing"
)

const fig2Src = `
// The paper's Fig. 2 program.
func prog(x double) {
    if (x <= 1.0) {
        x = x + 1.0;
    }
    var y double = x * x;
    if (y <= 4.0) {
        x = x - 1.0;
    }
}
`

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func mustCheck(t *testing.T, src string) *File {
	t.Helper()
	f := mustParse(t, src)
	if err := Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	return f
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("func f(x double) { x = x + 1.5e-3; } // c")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []Kind{FUNC, IDENT, LPAREN, IDENT, DOUBLE, RPAREN, LBRACE,
		IDENT, ASSIGN, IDENT, PLUS, NUMBER, SEMICOLON, RBRACE, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("< <= > >= == != = && || ! - + * /")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{LT, LE, GT, GE, EQ, NE, ASSIGN, ANDAND, OROR, NOT, MINUS, PLUS, STAR, SLASH, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	for _, lit := range []string{"0", "42", "3.14", "1e10", "1.5e-300", "2E+8", ".5"} {
		toks, err := Lex(lit)
		if err != nil {
			t.Errorf("Lex(%q): %v", lit, err)
			continue
		}
		if toks[0].Kind != NUMBER || toks[0].Lit != lit {
			t.Errorf("Lex(%q) = %v", lit, toks[0])
		}
	}
}

func TestLexBlockComment(t *testing.T) {
	toks, err := Lex("/* multi\nline */ func")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != FUNC {
		t.Errorf("got %v", toks[0])
	}
	if toks[0].Pos.Line != 2 {
		t.Errorf("position tracking through comments: line %d, want 2", toks[0].Pos.Line)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "1e", "/* unclosed", "&", "|"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestParseFig2(t *testing.T) {
	f := mustParse(t, fig2Src)
	if len(f.Funcs) != 1 {
		t.Fatalf("got %d functions", len(f.Funcs))
	}
	fn := f.Funcs[0]
	if fn.Name != "prog" || len(fn.Params) != 1 || fn.Params[0].Type != Double {
		t.Errorf("bad signature: %+v", fn)
	}
	if len(fn.Body.Stmts) != 3 {
		t.Errorf("got %d top statements, want 3", len(fn.Body.Stmts))
	}
	ifs, ok := fn.Body.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("first stmt is %T", fn.Body.Stmts[0])
	}
	cond, ok := ifs.Cond.(*BinaryExpr)
	if !ok || cond.Op != LE {
		t.Errorf("condition: %v", ifs.Cond)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, "func f(a double, b double) bool { return a + b * 2.0 < a * a; }")
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	cmp := ret.Expr.(*BinaryExpr)
	if cmp.Op != LT {
		t.Fatalf("top op %s", cmp.Op)
	}
	add := cmp.X.(*BinaryExpr)
	if add.Op != PLUS {
		t.Fatalf("left of < is %s, want +", add.Op)
	}
	if mul := add.Y.(*BinaryExpr); mul.Op != STAR {
		t.Errorf("right of + is %s, want *", mul.Op)
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `
func f(x double) double {
    if (x < 1.0) { return 1.0; }
    else if (x < 2.0) { return 2.0; }
    else { return 3.0; }
}`
	f := mustCheck(t, src)
	ifs := f.Funcs[0].Body.Stmts[0].(*IfStmt)
	if _, ok := ifs.Else.(*IfStmt); !ok {
		t.Errorf("else-if not chained: %T", ifs.Else)
	}
}

func TestParseWhileAndCalls(t *testing.T) {
	src := `
func helper(a double) double { return a * 2.0; }
func f(x double) double {
    var i double = 0.0;
    while (i < 10.0) {
        x = helper(x) + sin(x);
        i = i + 1.0;
    }
    return x;
}`
	mustCheck(t, src)
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                   // no functions
		"func f(x double) {",                 // unclosed block
		"func f(x double) { x = ; }",         // missing expr
		"func f(x double) { var y; }",        // missing type
		"func f(x double) { 1.0; }",          // non-call expression stmt
		"func f(x double) { if x < 1 {} }",   // missing parens
		"func f(x double) { assert x > 1; }", // missing parens
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestCheckFig2(t *testing.T) {
	mustCheck(t, fig2Src)
}

func TestCheckAssertBool(t *testing.T) {
	mustCheck(t, "func f(x double) { assert(x < 2.0); }")
	f := mustParse(t, "func f(x double) { assert(x + 2.0); }")
	if err := Check(f); err == nil || !strings.Contains(err.Error(), "bool") {
		t.Errorf("expected bool error, got %v", err)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"func f(x double) { y = 1.0; }", "undefined variable"},
		{"func f(x double) { x = true; }", "cannot assign"},
		{"func f(x double) { var b bool = 1.0; }", "cannot initialize"},
		{"func f(x double) { if (x) {} }", "must be bool"},
		{"func f(x double) { while (x + 1.0) {} }", "must be bool"},
		{"func f(x double) double { return true; }", "cannot return"},
		{"func f(x double) double { }", "missing return"},
		{"func f(x double) double { if (x < 1.0) { return 1.0; } }", "missing return"},
		{"func f(x double) { return 1.0; }", "returns no value"},
		{"func f(x double) { g(x); }", "undefined function"},
		{"func f(x double) { sin(x, x); }", "takes 1 argument"},
		{"func f(x double) { pow(x); }", "takes 2 argument"},
		{"func f(x double) { var x double; var x double; }", "redeclared"},
		{"func f(x double) {} func f(y double) {}", "redeclared"},
		{"func sin(x double) {}", "shadows a builtin"},
		{"func f(x double) { x = x + true; }", "requires double"},
		{"func f(x double) { x = -true; }", "requires double"},
		{"func f(b bool) { b = !1.0; }", "requires bool"},
		{"func f(x double) { var b bool = x < 1.0 && x; }", "requires bool"},
		{"func g(x double) {} func f(x double) { x = g(x); }", "cannot assign"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q) failed at parse time: %v", c.src, err)
			continue
		}
		err = Check(f)
		if err == nil {
			t.Errorf("Check(%q): expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Check(%q) = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestCheckScopes(t *testing.T) {
	// Inner scopes may shadow outer ones; uses resolve innermost.
	mustCheck(t, `
func f(x double) double {
    var y double = 1.0;
    if (x < 1.0) {
        var y bool = true;
        assert(y);
    }
    return y;
}`)
}

func TestExprText(t *testing.T) {
	f := mustCheck(t, "func f(x double) double { return fabs(x - 1.0) * 2.0; }")
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	got := ret.Expr.Text()
	if !strings.Contains(got, "fabs(x - 1.0)") {
		t.Errorf("Text() = %q", got)
	}
}

func TestFileFunc(t *testing.T) {
	f := mustParse(t, "func a(x double) {} func b(x double) {}")
	if f.Func("b") == nil || f.Func("missing") != nil {
		t.Error("Func lookup broken")
	}
}

func TestPosReporting(t *testing.T) {
	_, err := Parse("func f(x double) {\n  bad bad;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q lacks line 2 position", err)
	}
}
