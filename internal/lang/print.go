package lang

import "strings"

// Format renders a parsed file back to canonical FPL source. The output
// is a fixed point of Parse∘Format: formatting, re-parsing, and
// formatting again yields byte-identical text. That property is what
// the parse→print→parse fuzz target checks, and what lets the program
// shrinker (internal/fuzz) round-trip candidate reductions through the
// parser after every AST edit.
//
// Compound subexpressions are always parenthesized, so the rendering
// never depends on printing precedence correctly — a formatted program
// parses to the same tree structurally regardless of operator nesting.
func Format(f *File) string {
	var p printer
	for i, fn := range f.Funcs {
		if i > 0 {
			p.sb.WriteByte('\n')
		}
		p.funcDecl(fn)
	}
	return p.sb.String()
}

// FormatExpr renders one expression in the same canonical form Format
// uses for program bodies.
func FormatExpr(e Expr) string {
	var p printer
	p.expr(e)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(s string) {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
	p.sb.WriteString(s)
	p.sb.WriteByte('\n')
}

func (p *printer) funcDecl(fn *FuncDecl) {
	var sb strings.Builder
	sb.WriteString("func ")
	sb.WriteString(fn.Name)
	sb.WriteByte('(')
	for i, par := range fn.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(par.Name)
		sb.WriteByte(' ')
		sb.WriteString(par.Type.String())
	}
	sb.WriteByte(')')
	if fn.RetType != Invalid {
		sb.WriteByte(' ')
		sb.WriteString(fn.RetType.String())
	}
	sb.WriteString(" {")
	p.line(sb.String())
	p.indent++
	for _, s := range fn.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, in := range s.Stmts {
			p.stmt(in)
		}
		p.indent--
		p.line("}")
	case *VarStmt:
		if s.Init != nil {
			p.line("var " + s.Name + " " + s.Type.String() + " = " + exprString(s.Init) + ";")
		} else {
			p.line("var " + s.Name + " " + s.Type.String() + ";")
		}
	case *AssignStmt:
		p.line(s.Name + " = " + exprString(s.Expr) + ";")
	case *IfStmt:
		p.ifStmt(s, "")
	case *WhileStmt:
		p.line("while (" + exprString(s.Cond) + ") {")
		p.indent++
		for _, in := range s.Body.Stmts {
			p.stmt(in)
		}
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if s.Expr != nil {
			p.line("return " + exprString(s.Expr) + ";")
		} else {
			p.line("return;")
		}
	case *AssertStmt:
		p.line("assert(" + exprString(s.Expr) + ");")
	case *ExprStmt:
		p.line(exprString(s.Expr) + ";")
	}
}

// ifStmt prints an if statement, folding `else { if ... }` chains into
// `else if` exactly as the parser produces them.
func (p *printer) ifStmt(s *IfStmt, prefix string) {
	p.line(prefix + "if (" + exprString(s.Cond) + ") {")
	p.indent++
	for _, in := range s.Then.Stmts {
		p.stmt(in)
	}
	p.indent--
	switch els := s.Else.(type) {
	case nil:
		p.line("}")
	case *IfStmt:
		p.ifStmt(els, "} else ")
	case *BlockStmt:
		p.line("} else {")
		p.indent++
		for _, in := range els.Stmts {
			p.stmt(in)
		}
		p.indent--
		p.line("}")
	}
}

func exprString(e Expr) string {
	var p printer
	p.expr(e)
	return p.sb.String()
}

// expr writes the canonical rendering: literals and identifiers bare,
// every unary and binary node parenthesized.
func (p *printer) expr(e Expr) {
	switch e := e.(type) {
	case *NumberLit:
		p.sb.WriteString(e.Lit)
	case *BoolLit:
		if e.Val {
			p.sb.WriteString("true")
		} else {
			p.sb.WriteString("false")
		}
	case *Ident:
		p.sb.WriteString(e.Name)
	case *UnaryExpr:
		p.sb.WriteByte('(')
		if e.Op == NOT {
			p.sb.WriteByte('!')
		} else {
			p.sb.WriteByte('-')
		}
		p.expr(e.X)
		p.sb.WriteByte(')')
	case *BinaryExpr:
		p.sb.WriteByte('(')
		p.expr(e.X)
		p.sb.WriteByte(' ')
		p.sb.WriteString(e.Op.String())
		p.sb.WriteByte(' ')
		p.expr(e.Y)
		p.sb.WriteByte(')')
	case *CallExpr:
		p.sb.WriteString(e.Name)
		p.sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			p.expr(a)
		}
		p.sb.WriteByte(')')
	}
}
