// Package lang implements the front end of FPL, the small C-like
// floating-point language used to write analyzable client programs
// (the paper's Client layer, §5.1). FPL programs are lexed and parsed
// here, type-checked, and then lowered to the three-address IR of
// internal/ir, where every floating-point operation is exactly one
// instruction — mirroring the paper's LLVM-IR view of the analyzed code
// (§4.4).
//
// The language is deliberately small: the double and bool types,
// functions over doubles, if/else, while, assignment, assert, calls to
// user functions and to the math builtins (sin, cos, tan, sqrt, fabs,
// exp, log, pow, floor, ceil). This is exactly the fragment the paper's
// examples and weak-distance constructions need.
package lang

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	FUNC
	VAR
	IF
	ELSE
	WHILE
	RETURN
	ASSERT
	TRUE
	FALSE
	DOUBLE
	BOOL

	// Punctuation.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	COMMA     // ,
	SEMICOLON // ;

	// Operators.
	ASSIGN // =
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	NOT    // !
	LT     // <
	LE     // <=
	GT     // >
	GE     // >=
	EQ     // ==
	NE     // !=
	ANDAND // &&
	OROR   // ||
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	FUNC: "func", VAR: "var", IF: "if", ELSE: "else", WHILE: "while",
	RETURN: "return", ASSERT: "assert", TRUE: "true", FALSE: "false",
	DOUBLE: "double", BOOL: "bool",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	COMMA: ",", SEMICOLON: ";",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	NOT: "!", LT: "<", LE: "<=", GT: ">", GE: ">=", EQ: "==", NE: "!=",
	ANDAND: "&&", OROR: "||",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps identifier spellings to keyword kinds.
var keywords = map[string]Kind{
	"func": FUNC, "var": VAR, "if": IF, "else": ELSE, "while": WHILE,
	"return": RETURN, "assert": ASSERT, "true": TRUE, "false": FALSE,
	"double": DOUBLE, "bool": BOOL,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT and NUMBER
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == IDENT || t.Kind == NUMBER {
		return fmt.Sprintf("%s(%s)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}

// Error is a front-end diagnostic with a source position. File is the
// name of the source being compiled; it is empty for anonymous (inline)
// sources, preserving the historical "line:col: msg" rendering there.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
