package lang

import "strings"

// Type is an FPL type.
type Type int

// FPL types. Invalid marks unresolved or erroneous expressions during
// checking.
const (
	Invalid Type = iota
	Double
	Bool
)

// String returns the source spelling.
func (t Type) String() string {
	switch t {
	case Double:
		return "double"
	case Bool:
		return "bool"
	}
	return "invalid"
}

// File is a parsed FPL source file.
type File struct {
	Funcs []*FuncDecl
}

// Func returns the declared function with the given name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// FuncDecl is a function declaration.
type FuncDecl struct {
	Pos     Pos
	Name    string
	Params  []Param
	RetType Type // Invalid when the function returns nothing
	Body    *BlockStmt
}

// Param is a function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type Type
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	StartPos() Pos
}

// BlockStmt is a `{ ... }` statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarStmt is `var name type = init;` (init optional).
type VarStmt struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr // may be nil
}

// AssignStmt is `name = expr;`.
type AssignStmt struct {
	Pos  Pos
	Name string
	Expr Expr
}

// IfStmt is `if (cond) block [else block|if]`.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is `while (cond) block`.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	Pos  Pos
	Expr Expr // may be nil
}

// AssertStmt is `assert(expr);` — the analyzable assertion of the
// paper's Fig. 1 examples.
type AssertStmt struct {
	Pos  Pos
	Expr Expr
}

// ExprStmt is a bare call expression used as a statement.
type ExprStmt struct {
	Pos  Pos
	Expr Expr
}

func (*BlockStmt) stmtNode()  {}
func (*VarStmt) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*AssertStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}

// StartPos implements Stmt.
func (s *BlockStmt) StartPos() Pos  { return s.Pos }
func (s *VarStmt) StartPos() Pos    { return s.Pos }
func (s *AssignStmt) StartPos() Pos { return s.Pos }
func (s *IfStmt) StartPos() Pos     { return s.Pos }
func (s *WhileStmt) StartPos() Pos  { return s.Pos }
func (s *ReturnStmt) StartPos() Pos { return s.Pos }
func (s *AssertStmt) StartPos() Pos { return s.Pos }
func (s *ExprStmt) StartPos() Pos   { return s.Pos }

// Expr is an expression node. Checked expressions carry their type.
type Expr interface {
	exprNode()
	StartPos() Pos
	// Type returns the checked type (Invalid before checking).
	Type() Type
	// Text renders the expression approximately as written, used for
	// instrumentation-site labels.
	Text() string
}

// NumberLit is a floating-point literal.
type NumberLit struct {
	Pos Pos
	Lit string
	Val float64
}

// BoolLit is true/false.
type BoolLit struct {
	Pos Pos
	Val bool
}

// Ident is a variable reference.
type Ident struct {
	Pos  Pos
	Name string
	typ  Type
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Pos Pos
	Op  Kind // MINUS or NOT
	X   Expr
	typ Type
}

// BinaryExpr is a binary operation: arithmetic (+ - * /), comparison
// (< <= > >= == !=) or logical (&& ||).
type BinaryExpr struct {
	Pos  Pos
	Op   Kind
	X, Y Expr
	typ  Type
}

// CallExpr is f(args...) — a user function or math builtin.
type CallExpr struct {
	Pos     Pos
	Name    string
	Args    []Expr
	typ     Type
	Builtin bool // resolved during checking
}

func (*NumberLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}

// StartPos implements Expr.
func (e *NumberLit) StartPos() Pos  { return e.Pos }
func (e *BoolLit) StartPos() Pos    { return e.Pos }
func (e *Ident) StartPos() Pos      { return e.Pos }
func (e *UnaryExpr) StartPos() Pos  { return e.Pos }
func (e *BinaryExpr) StartPos() Pos { return e.Pos }
func (e *CallExpr) StartPos() Pos   { return e.Pos }

// Type implements Expr.
func (e *NumberLit) Type() Type  { return Double }
func (e *BoolLit) Type() Type    { return Bool }
func (e *Ident) Type() Type      { return e.typ }
func (e *UnaryExpr) Type() Type  { return e.typ }
func (e *BinaryExpr) Type() Type { return e.typ }
func (e *CallExpr) Type() Type   { return e.typ }

// Text implements Expr.
func (e *NumberLit) Text() string { return e.Lit }

// Text implements Expr.
func (e *BoolLit) Text() string {
	if e.Val {
		return "true"
	}
	return "false"
}

// Text implements Expr.
func (e *Ident) Text() string { return e.Name }

// Text implements Expr.
func (e *UnaryExpr) Text() string {
	op := "-"
	if e.Op == NOT {
		op = "!"
	}
	return op + e.X.Text()
}

// Text implements Expr.
func (e *BinaryExpr) Text() string {
	return paren(e.X) + " " + e.Op.String() + " " + paren(e.Y)
}

// paren wraps nested binary operands so rendered labels read
// unambiguously ("(z*z - a) / (2.0*z)", not "z*z - a / 2.0*z").
func paren(e Expr) string {
	if _, ok := e.(*BinaryExpr); ok {
		return "(" + e.Text() + ")"
	}
	return e.Text()
}

// Text implements Expr.
func (e *CallExpr) Text() string {
	var args []string
	for _, a := range e.Args {
		args = append(args, a.Text())
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}
