package lang

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF: "EOF", IDENT: "identifier", NUMBER: "number",
		FUNC: "func", IF: "if", ELSE: "else", WHILE: "while",
		ASSIGN: "=", LE: "<=", NE: "!=", ANDAND: "&&", OROR: "||",
		LBRACE: "{", SEMICOLON: ";",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(999).String(); !strings.Contains(got, "999") {
		t.Errorf("unknown kind string %q", got)
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "foo"}
	if got := tok.String(); !strings.Contains(got, "foo") {
		t.Errorf("Token.String() = %q", got)
	}
	num := Token{Kind: NUMBER, Lit: "1.5"}
	if got := num.String(); !strings.Contains(got, "1.5") {
		t.Errorf("Token.String() = %q", got)
	}
	kw := Token{Kind: FUNC}
	if got := kw.String(); got != "func" {
		t.Errorf("Token.String() = %q", got)
	}
}

func TestPosAndErrorStrings(t *testing.T) {
	p := Pos{Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Errorf("Pos.String() = %q", p.String())
	}
	e := errf(p, "bad %s", "thing")
	if e.Error() != "3:7: bad thing" {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestTypeStrings(t *testing.T) {
	if Double.String() != "double" || Bool.String() != "bool" || Invalid.String() != "invalid" {
		t.Error("type strings wrong")
	}
}

func TestHighwordBuiltinChecks(t *testing.T) {
	if _, err := Parse("func f(x double) double { return highword(x); }"); err != nil {
		t.Fatal(err)
	}
	f := mustParse(t, "func f(x double) double { return highword(x); }")
	if err := Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	// Arity enforced.
	f2 := mustParse(t, "func f(x double) double { return highword(x, x); }")
	if err := Check(f2); err == nil {
		t.Error("highword arity not enforced")
	}
}

func TestUnaryAndCallText(t *testing.T) {
	f := mustCheck(t, "func f(x double) bool { return !(x < 1.0) || -x > 0.0; }")
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	txt := ret.Expr.Text()
	for _, want := range []string{"!", "-x"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text() = %q missing %q", txt, want)
		}
	}
}
