package lang

import "repro/internal/builtins"

// Builtins lists the math builtins callable from FPL, with their arity.
// All builtins take and return double. The implementations (and the
// authoritative registry) live in repro/internal/builtins.
var Builtins = builtins.Arities()

// Check type-checks the file in place, resolving identifier and call
// types. It returns the first error found.
func Check(f *File) error {
	c := &checker{file: f, funcs: map[string]*FuncDecl{}}
	for _, fn := range f.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			return errf(fn.Pos, "function %s redeclared", fn.Name)
		}
		if _, isB := Builtins[fn.Name]; isB {
			return errf(fn.Pos, "function %s shadows a builtin", fn.Name)
		}
		c.funcs[fn.Name] = fn
	}
	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	file  *File
	funcs map[string]*FuncDecl
	// scopes is a stack of lexical scopes mapping names to types.
	scopes []map[string]Type
	cur    *FuncDecl
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, name string, t Type) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(pos, "%s redeclared in this scope", name)
	}
	top[name] = t
	return nil
}

func (c *checker) lookup(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return Invalid, false
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.cur = fn
	c.scopes = nil
	c.push()
	defer c.pop()
	for _, p := range fn.Params {
		if err := c.declare(p.Pos, p.Name, p.Type); err != nil {
			return err
		}
	}
	if err := c.checkBlock(fn.Body); err != nil {
		return err
	}
	if fn.RetType != Invalid && !blockReturns(fn.Body) {
		return errf(fn.Pos, "function %s: missing return on some path", fn.Name)
	}
	return nil
}

// blockReturns conservatively decides whether every execution of the
// block ends in a return.
func blockReturns(b *BlockStmt) bool {
	for _, s := range b.Stmts {
		if stmtReturns(s) {
			return true
		}
	}
	return false
}

func stmtReturns(s Stmt) bool {
	switch s := s.(type) {
	case *ReturnStmt:
		return true
	case *BlockStmt:
		return blockReturns(s)
	case *IfStmt:
		if s.Else == nil {
			return false
		}
		return blockReturns(s.Then) && stmtReturns(s.Else)
	}
	return false
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s)
	case *VarStmt:
		if s.Init != nil {
			t, err := c.checkExpr(s.Init)
			if err != nil {
				return err
			}
			if t != s.Type {
				return errf(s.Pos, "cannot initialize %s %s with %s", s.Type, s.Name, t)
			}
		}
		return c.declare(s.Pos, s.Name, s.Type)
	case *AssignStmt:
		vt, ok := c.lookup(s.Name)
		if !ok {
			return errf(s.Pos, "undefined variable %s", s.Name)
		}
		et, err := c.checkExpr(s.Expr)
		if err != nil {
			return err
		}
		if et != vt {
			return errf(s.Pos, "cannot assign %s to %s %s", et, vt, s.Name)
		}
		return nil
	case *IfStmt:
		t, err := c.checkExpr(s.Cond)
		if err != nil {
			return err
		}
		if t != Bool {
			return errf(s.Cond.StartPos(), "if condition must be bool, found %s", t)
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		t, err := c.checkExpr(s.Cond)
		if err != nil {
			return err
		}
		if t != Bool {
			return errf(s.Cond.StartPos(), "while condition must be bool, found %s", t)
		}
		return c.checkBlock(s.Body)
	case *ReturnStmt:
		if c.cur.RetType == Invalid {
			if s.Expr != nil {
				return errf(s.Pos, "function %s returns no value", c.cur.Name)
			}
			return nil
		}
		if s.Expr == nil {
			return errf(s.Pos, "function %s must return %s", c.cur.Name, c.cur.RetType)
		}
		t, err := c.checkExpr(s.Expr)
		if err != nil {
			return err
		}
		if t != c.cur.RetType {
			return errf(s.Pos, "cannot return %s from function returning %s", t, c.cur.RetType)
		}
		return nil
	case *AssertStmt:
		t, err := c.checkExpr(s.Expr)
		if err != nil {
			return err
		}
		if t != Bool {
			return errf(s.Pos, "assert condition must be bool, found %s", t)
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(s.Expr)
		return err
	}
	return errf(s.StartPos(), "unhandled statement")
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	switch e := e.(type) {
	case *NumberLit:
		return Double, nil
	case *BoolLit:
		return Bool, nil
	case *Ident:
		t, ok := c.lookup(e.Name)
		if !ok {
			return Invalid, errf(e.Pos, "undefined variable %s", e.Name)
		}
		e.typ = t
		return t, nil
	case *UnaryExpr:
		t, err := c.checkExpr(e.X)
		if err != nil {
			return Invalid, err
		}
		switch e.Op {
		case MINUS:
			if t != Double {
				return Invalid, errf(e.Pos, "operator - requires double, found %s", t)
			}
			e.typ = Double
		case NOT:
			if t != Bool {
				return Invalid, errf(e.Pos, "operator ! requires bool, found %s", t)
			}
			e.typ = Bool
		default:
			return Invalid, errf(e.Pos, "bad unary operator %s", e.Op)
		}
		return e.typ, nil
	case *BinaryExpr:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return Invalid, err
		}
		yt, err := c.checkExpr(e.Y)
		if err != nil {
			return Invalid, err
		}
		switch e.Op {
		case PLUS, MINUS, STAR, SLASH:
			if xt != Double || yt != Double {
				return Invalid, errf(e.Pos, "operator %s requires double operands, found %s and %s", e.Op, xt, yt)
			}
			e.typ = Double
		case LT, LE, GT, GE, EQ, NE:
			if xt != Double || yt != Double {
				return Invalid, errf(e.Pos, "comparison %s requires double operands, found %s and %s", e.Op, xt, yt)
			}
			e.typ = Bool
		case ANDAND, OROR:
			if xt != Bool || yt != Bool {
				return Invalid, errf(e.Pos, "operator %s requires bool operands, found %s and %s", e.Op, xt, yt)
			}
			e.typ = Bool
		default:
			return Invalid, errf(e.Pos, "bad binary operator %s", e.Op)
		}
		return e.typ, nil
	case *CallExpr:
		if arity, ok := Builtins[e.Name]; ok {
			e.Builtin = true
			if len(e.Args) != arity {
				return Invalid, errf(e.Pos, "builtin %s takes %d argument(s), found %d", e.Name, arity, len(e.Args))
			}
			for _, a := range e.Args {
				t, err := c.checkExpr(a)
				if err != nil {
					return Invalid, err
				}
				if t != Double {
					return Invalid, errf(a.StartPos(), "builtin %s requires double arguments, found %s", e.Name, t)
				}
			}
			e.typ = Double
			return Double, nil
		}
		fn, ok := c.funcs[e.Name]
		if !ok {
			return Invalid, errf(e.Pos, "undefined function %s", e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return Invalid, errf(e.Pos, "function %s takes %d argument(s), found %d", e.Name, len(fn.Params), len(e.Args))
		}
		for i, a := range e.Args {
			t, err := c.checkExpr(a)
			if err != nil {
				return Invalid, err
			}
			if t != fn.Params[i].Type {
				return Invalid, errf(a.StartPos(), "argument %d of %s: expected %s, found %s", i+1, e.Name, fn.Params[i].Type, t)
			}
		}
		if fn.RetType == Invalid {
			e.typ = Invalid // void call: only legal as a statement
			return Invalid, nil
		}
		e.typ = fn.RetType
		return e.typ, nil
	}
	return Invalid, errf(e.StartPos(), "unhandled expression")
}
