package lang_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lang"
)

// TestFormatRoundTrip checks the Parse∘Format fixed-point property over
// every committed FPL source: formatting a parsed file, re-parsing the
// output, and formatting again is byte-identical, and the formatted
// program still checks.
func TestFormatRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.fpl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures: %v", err)
	}
	more, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "fuzz", "*.fpl"))
	files = append(files, more...)
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		f1, err := lang.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		out1 := lang.Format(f1)
		f2, err := lang.Parse(out1)
		if err != nil {
			t.Fatalf("%s: formatted output does not parse: %v\n%s", file, err, out1)
		}
		if err := lang.Check(f2); err != nil {
			t.Fatalf("%s: formatted output does not check: %v\n%s", file, err, out1)
		}
		if out2 := lang.Format(f2); out2 != out1 {
			t.Fatalf("%s: Format not idempotent\n--- first ---\n%s\n--- second ---\n%s", file, out1, out2)
		}
	}
}

// TestFormatShapes locks the canonical rendering of each statement and
// expression form.
func TestFormatShapes(t *testing.T) {
	src := `
func h(a double) double {
    return a;
}
func g() { return; }
func f(x double, b bool) double {
    var y double = -x;
    var c bool;
    c = !b && (x < 1.0 || x >= 2.0);
    if (c) {
        y = h(y) + pow(x, 2.0);
    } else if (x == 0.0) {
        { y = 1.0; }
    } else {
        while (y < 10.0) { y = y * 2.0; }
    }
    assert(y != 3.0);
    h(y);
    return y;
}`
	f, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := `func h(a double) double {
    return a;
}

func g() {
    return;
}

func f(x double, b bool) double {
    var y double = (-x);
    var c bool;
    c = ((!b) && ((x < 1.0) || (x >= 2.0)));
    if (c) {
        y = (h(y) + pow(x, 2.0));
    } else if ((x == 0.0)) {
        {
            y = 1.0;
        }
    } else {
        while ((y < 10.0)) {
            y = (y * 2.0);
        }
    }
    assert((y != 3.0));
    h(y);
    return y;
}
`
	if got := lang.Format(f); got != want {
		t.Fatalf("--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
