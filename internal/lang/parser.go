package lang

import (
	"strconv"
)

// Parser is a recursive-descent parser for FPL.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses an FPL source file.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s", k, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for p.cur().Kind != EOF {
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	if len(f.Funcs) == 0 {
		return nil, errf(Pos{1, 1}, "source contains no functions")
	}
	return f, nil
}

func (p *Parser) parseType() (Type, error) {
	switch t := p.next(); t.Kind {
	case DOUBLE:
		return Double, nil
	case BOOL:
		return Bool, nil
	default:
		return Invalid, errf(t.Pos, "expected type, found %s", t)
	}
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw, err := p.expect(FUNC)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Pos: kw.Pos, Name: name.Lit}
	for p.cur().Kind != RPAREN {
		if len(fn.Params) > 0 {
			if _, err := p.expect(COMMA); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Pos: pn.Pos, Name: pn.Lit, Type: pt})
	}
	p.next() // RPAREN
	// Optional return type before the body.
	if k := p.cur().Kind; k == DOUBLE || k == BOOL {
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn.RetType = rt
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for p.cur().Kind != RBRACE {
		if p.cur().Kind == EOF {
			return nil, errf(p.cur().Pos, "unexpected EOF, unclosed block at %s", lb.Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // RBRACE
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch t := p.cur(); t.Kind {
	case LBRACE:
		return p.parseBlock()
	case VAR:
		return p.parseVar()
	case IF:
		return p.parseIf()
	case WHILE:
		return p.parseWhile()
	case RETURN:
		p.next()
		rs := &ReturnStmt{Pos: t.Pos}
		if p.cur().Kind != SEMICOLON {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Expr = e
		}
		if _, err := p.expect(SEMICOLON); err != nil {
			return nil, err
		}
		return rs, nil
	case ASSERT:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMICOLON); err != nil {
			return nil, err
		}
		return &AssertStmt{Pos: t.Pos, Expr: e}, nil
	case IDENT:
		// Assignment or call statement.
		if p.toks[p.pos+1].Kind == ASSIGN {
			p.next()
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(SEMICOLON); err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: t.Pos, Name: t.Lit, Expr: e}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMICOLON); err != nil {
			return nil, err
		}
		if _, ok := e.(*CallExpr); !ok {
			return nil, errf(t.Pos, "expression statement must be a call")
		}
		return &ExprStmt{Pos: t.Pos, Expr: e}, nil
	default:
		return nil, errf(t.Pos, "expected statement, found %s", t)
	}
}

func (p *Parser) parseVar() (Stmt, error) {
	kw := p.next() // VAR
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	vs := &VarStmt{Pos: kw.Pos, Name: name.Lit, Type: typ}
	if p.accept(ASSIGN) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vs.Init = e
	}
	if _, err := p.expect(SEMICOLON); err != nil {
		return nil, err
	}
	return vs, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next() // IF
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: kw.Pos, Cond: cond, Then: then}
	if p.accept(ELSE) {
		if p.cur().Kind == IF {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next() // WHILE
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: kw.Pos, Cond: cond, Body: body}, nil
}

// Expression grammar, lowest to highest precedence:
//
//	or:      and ('||' and)*
//	and:     cmp ('&&' cmp)*
//	cmp:     add (('<'|'<='|'>'|'>='|'=='|'!=') add)?
//	add:     mul (('+'|'-') mul)*
//	mul:     unary (('*'|'/') unary)*
//	unary:   ('-'|'!') unary | primary
//	primary: NUMBER | true | false | IDENT | IDENT '(' args ')' | '(' expr ')'
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == OROR {
		op := p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: op.Pos, Op: OROR, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == ANDAND {
		op := p.next()
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: op.Pos, Op: ANDAND, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseCmp() (Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch k := p.cur().Kind; k {
	case LT, LE, GT, GE, EQ, NE:
		op := p.next()
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Pos: op.Pos, Op: k, X: x, Y: y}, nil
	}
	return x, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		if k != PLUS && k != MINUS {
			return x, nil
		}
		op := p.next()
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: op.Pos, Op: k, X: x, Y: y}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		if k != STAR && k != SLASH {
			return x, nil
		}
		op := p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: op.Pos, Op: k, X: x, Y: y}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch t := p.cur(); t.Kind {
	case MINUS, NOT:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: t.Kind, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch t := p.next(); t.Kind {
	case NUMBER:
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad number literal %q: %v", t.Lit, err)
		}
		return &NumberLit{Pos: t.Pos, Lit: t.Lit, Val: v}, nil
	case TRUE:
		return &BoolLit{Pos: t.Pos, Val: true}, nil
	case FALSE:
		return &BoolLit{Pos: t.Pos, Val: false}, nil
	case IDENT:
		if p.cur().Kind == LPAREN {
			p.next()
			call := &CallExpr{Pos: t.Pos, Name: t.Lit}
			for p.cur().Kind != RPAREN {
				if len(call.Args) > 0 {
					if _, err := p.expect(COMMA); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // RPAREN
			return call, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Lit}, nil
	case LPAREN:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errf(t.Pos, "expected expression, found %s", t)
	}
}
