package lang_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lang"
)

// fuzzSeeds loads every committed FPL source — the integration fixtures
// and the shared fuzz corpus — as seed inputs.
func fuzzSeeds(f *testing.F) {
	for _, pat := range []string{
		filepath.Join("..", "..", "testdata", "*.fpl"),
		filepath.Join("..", "..", "testdata", "fuzz", "*.fpl"),
	} {
		files, err := filepath.Glob(pat)
		if err != nil {
			f.Fatal(err)
		}
		for _, file := range files {
			src, err := os.ReadFile(file)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
}

// FuzzLexParse holds the front end to two properties on arbitrary
// input: the lexer and parser never panic, and accepted programs
// round-trip — Format output re-parses, and re-formatting is
// byte-identical (Parse∘Format is a fixed point).
func FuzzLexParse(f *testing.F) {
	fuzzSeeds(f)
	f.Add("func f(x double) double { return x; }")
	f.Add("func f() { assert(1.0 < 2.0); }")
	f.Add("x < 1 && !(y >= 2e308) || true")
	f.Add("func \x00(")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := lang.Parse(src) // must not panic
		if err != nil {
			return
		}
		out1 := lang.Format(file)
		file2, err := lang.Parse(out1)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n--- input ---\n%q\n--- formatted ---\n%s", err, src, out1)
		}
		if out2 := lang.Format(file2); out2 != out1 {
			t.Fatalf("Format not idempotent\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
		}
		// Checking must not panic either (errors are fine: parsing
		// accepts programs the checker rejects).
		_ = lang.Check(file2)
	})
}
