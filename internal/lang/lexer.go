package lang

import (
	"strings"
)

// Lexer turns FPL source text into tokens. It supports // line comments
// and /* block comments */ and tracks line/column positions for
// diagnostics.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire input, returning the token stream terminated
// by an EOF token, or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if k, ok := keywords[lit]; ok {
			return Token{Kind: k, Lit: lit, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Lit: lit, Pos: pos}, nil

	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.lexNumber(pos)
	}

	l.advance()
	two := func(second byte, with, without Kind) (Token, error) {
		if l.peek() == second {
			l.advance()
			return Token{Kind: with, Pos: pos}, nil
		}
		return Token{Kind: without, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: pos}, nil
	case ')':
		return Token{Kind: RPAREN, Pos: pos}, nil
	case '{':
		return Token{Kind: LBRACE, Pos: pos}, nil
	case '}':
		return Token{Kind: RBRACE, Pos: pos}, nil
	case ',':
		return Token{Kind: COMMA, Pos: pos}, nil
	case ';':
		return Token{Kind: SEMICOLON, Pos: pos}, nil
	case '+':
		return Token{Kind: PLUS, Pos: pos}, nil
	case '-':
		return Token{Kind: MINUS, Pos: pos}, nil
	case '*':
		return Token{Kind: STAR, Pos: pos}, nil
	case '/':
		return Token{Kind: SLASH, Pos: pos}, nil
	case '=':
		return two('=', EQ, ASSIGN)
	case '<':
		return two('=', LE, LT)
	case '>':
		return two('=', GE, GT)
	case '!':
		return two('=', NE, NOT)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: ANDAND, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q (did you mean &&?)", "&")
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OROR, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q (did you mean ||?)", "|")
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// lexNumber scans a floating-point literal: digits, optional fraction,
// optional exponent (1, 1.5, .5, 1e10, 1.5e-300, 0x1p4 is NOT supported).
func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		l.advance()
		if c := l.peek(); c == '+' || c == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			return Token{}, errf(l.pos(), "malformed exponent in number literal")
		}
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	lit := l.src[start:l.off]
	if strings.HasSuffix(lit, ".") && strings.Count(lit, ".") == 1 && len(lit) == 1 {
		return Token{}, errf(pos, "malformed number literal %q", lit)
	}
	return Token{Kind: NUMBER, Lit: lit, Pos: pos}, nil
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }
