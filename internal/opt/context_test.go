package opt

import (
	"context"
	"math"
	"testing"
	"time"
)

// allMinimizers returns one instance of every registered backend, via
// the name registry so a newly registered backend is covered
// automatically.
func allMinimizers(t *testing.T) []Minimizer {
	t.Helper()
	var ms []Minimizer
	for _, name := range BackendNames() {
		m, err := BackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	return ms
}

// TestCancellationWithinOneEval is the context contract of the solver
// stack: when Config.Ctx fires during objective evaluation N, no
// backend performs evaluation N+1 — cancellation lands within one
// evaluation, not one run. The objective itself counts its calls and
// cancels the context mid-call, so the assertion is on real objective
// invocations, not on bookkeeping.
func TestCancellationWithinOneEval(t *testing.T) {
	const cancelAt = 100
	for _, be := range allMinimizers(t) {
		be := be
		t.Run(be.Name(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			calls := 0
			obj := func(x []float64) float64 {
				calls++
				if calls == cancelAt {
					cancel() // fires mid-evaluation, like a real deadline
				}
				// No zeros: the search would run its full budget.
				return 1 + x[0]*x[0]
			}
			r := be.Minimize(obj, 2, Config{
				Seed:     1,
				MaxEvals: 10_000_000, // would take minutes if cancellation leaked
				Bounds:   []Bound{{Lo: -100, Hi: 100}, {Lo: -100, Hi: 100}},
				Ctx:      ctx,
			})
			if calls > cancelAt {
				t.Errorf("%s: %d objective calls after cancellation at call %d",
					be.Name(), calls-cancelAt, cancelAt)
			}
			if !r.Canceled {
				t.Errorf("%s: Result.Canceled = false after mid-run cancellation (%+v)", be.Name(), r)
			}
			if r.Evals != calls {
				t.Errorf("%s: Evals = %d, want %d (uncounted or phantom evaluations)", be.Name(), r.Evals, calls)
			}
		})
	}
}

// TestCancellationWithinOneBatch extends the within-one-evaluation
// contract to the batch path: when Config.Ctx fires while a batch is in
// flight, the lanes of THAT batch may finish (the documented
// granularity — cancellation lands within one batch), but no further
// batch is dispatched and no further scalar evaluation begins. The
// objectives count every execution — scalar call or batch lane — and
// cancel the context mid-stream, so the assertions are on real
// dispatches, not bookkeeping.
func TestCancellationWithinOneBatch(t *testing.T) {
	const cancelAt = 100
	for _, be := range allMinimizers(t) {
		be := be
		t.Run(be.Name(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			total := 0         // objective executions: scalar calls + batch lanes
			canceled := false  // set the instant cancel() fires
			scalarAfter := 0   // scalar calls beginning after cancellation
			dispatchAfter := 0 // batch dispatches beginning after cancellation
			step := func() {
				total++
				if total == cancelAt {
					canceled = true
					cancel() // fires mid-batch (or mid-call), like a real deadline
				}
			}
			obj := func(x []float64) float64 {
				if canceled {
					scalarAfter++
				}
				step()
				// No zeros: the search would run its full budget.
				return 1 + x[0]*x[0]
			}
			batch := BatchFunc(func(xs [][]float64, out []float64) {
				if canceled {
					dispatchAfter++
				}
				for i, x := range xs {
					step()
					out[i] = 1 + x[0]*x[0]
				}
			})
			r := be.Minimize(obj, 2, Config{
				Seed:     1,
				MaxEvals: 10_000_000, // would take minutes if cancellation leaked
				Bounds:   []Bound{{Lo: -100, Hi: 100}, {Lo: -100, Hi: 100}},
				Ctx:      ctx,
				Batch:    batch,
			})
			if scalarAfter > 0 {
				t.Errorf("%s: %d scalar evaluations began after cancellation", be.Name(), scalarAfter)
			}
			if dispatchAfter > 0 {
				t.Errorf("%s: %d batch dispatches began after cancellation", be.Name(), dispatchAfter)
			}
			if !r.Canceled {
				t.Errorf("%s: Result.Canceled = false after mid-run cancellation (%+v)", be.Name(), r)
			}
			if r.Evals != total {
				t.Errorf("%s: Evals = %d, want %d (uncounted or phantom evaluations)", be.Name(), r.Evals, total)
			}
		})
	}
}

// TestDeadlineStopsMinimize locks the deadline path: an
// already-expired context means zero objective calls.
func TestDeadlineStopsMinimize(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, be := range allMinimizers(t) {
		calls := 0
		r := be.Minimize(func(x []float64) float64 {
			calls++
			return math.Abs(x[0])
		}, 1, Config{Seed: 1, MaxEvals: 100000, Ctx: ctx})
		if calls != 0 {
			t.Errorf("%s: %d objective calls under an expired deadline", be.Name(), calls)
		}
		if !r.Canceled {
			t.Errorf("%s: Result.Canceled = false under an expired deadline", be.Name())
		}
	}
}

// TestNilCtxUnchanged pins that runs without a context are bit-identical
// to the pre-context behavior (the Ctx field must be invisible when
// unset).
func TestNilCtxUnchanged(t *testing.T) {
	for _, be := range allMinimizers(t) {
		cfg := Config{Seed: 7, MaxEvals: 2000, Bounds: []Bound{{Lo: -10, Hi: 10}}}
		a := be.Minimize(sphere, 1, cfg)
		cfg.Ctx = context.Background()
		b := be.Minimize(sphere, 1, cfg)
		if a.F != b.F || a.Evals != b.Evals || a.FoundZero != b.FoundZero {
			t.Errorf("%s: background context changed the run: %+v vs %+v", be.Name(), a, b)
		}
		if b.Canceled {
			t.Errorf("%s: Canceled set under an undone context", be.Name())
		}
	}
}

// TestParallelStartsCancellation: a cancelled schedule stops launching
// objective work and marks unstarted slots Canceled.
func TestParallelStartsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	built := 0
	out := ParallelStarts(&Basinhopping{}, func(int) Objective {
		built++
		return sphere
	}, 1, ParallelConfig{
		Starts:   16,
		Workers:  2,
		MaxEvals: 100000,
		Ctx:      ctx,
	})
	if built != 0 {
		t.Errorf("%d objectives built under a pre-cancelled context", built)
	}
	for _, sr := range out {
		if sr.Evals != 0 || !sr.Canceled {
			t.Errorf("start %d ran under a pre-cancelled context: %+v", sr.Start, sr.Result)
		}
	}
}
