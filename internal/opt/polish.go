package opt

import (
	"repro/internal/fp"
)

// latticePolish is a discrete descent on the float64 lattice: from the
// best point found so far it walks coordinate-wise in geometrically
// growing ULP steps while the objective improves. Continuous minimizers
// converge to within a few hundred ULPs of a weak-distance zero but
// rarely land on it exactly; because floating-point analysis problems
// live on the discrete lattice F^N (Def. 2.1), this final discrete phase
// turns "within 1e-13 of the zero" into the exact zero the theory
// requires (W(x*) = 0, Algorithm 2 step 3).
func latticePolish(e *evaluator, cfg Config) {
	if e.bestX == nil || e.bestF == 0 {
		return
	}
	x := make([]float64, len(e.bestX))
	copy(x, e.bestX)
	f := e.bestF

	improved := true
	for improved && !e.done() {
		improved = false
		for i := range x {
			for _, sign := range [2]int64{1, -1} {
				step := int64(1)
				for !e.done() {
					old := x[i]
					cand := cfg.bound(i).Clamp(fp.AddULPs(old, sign*step))
					if cand == old {
						break
					}
					x[i] = cand
					fc := e.eval(x)
					if fc < f {
						f = fc
						improved = true
						if f == 0 {
							return
						}
						if step < 1<<40 {
							step *= 2
						}
					} else {
						x[i] = old
						break
					}
				}
			}
		}
	}
}
