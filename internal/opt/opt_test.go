package opt

import (
	"math"
	"testing"
)

// sphere has its unique minimum 0 at the origin.
func sphere(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

// shiftedAbs has its unique zero at x = 3 and is non-smooth there.
func shiftedAbs(x []float64) float64 {
	return math.Abs(x[0] - 3)
}

// twoBasins has zeros at x = -3 and x = 2 separated by a hill, modeled on
// the paper's Fig. 3 weak distance shape.
func twoBasins(x []float64) float64 {
	return math.Abs(x[0]+3) * math.Abs(x[0]-2)
}

func boundedCfg(lo, hi float64, evals int) Config {
	return Config{
		Seed:       1,
		MaxEvals:   evals,
		Bounds:     []Bound{{lo, hi}},
		StopAtZero: true,
	}
}

func globalBackends() []Minimizer {
	return []Minimizer{
		&Basinhopping{},
		&DifferentialEvolution{InitSpan: 100},
		&Powell{},
		&RandomSearch{},
	}
}

func TestBackendsOnSphereBounded(t *testing.T) {
	for _, m := range []Minimizer{&Basinhopping{}, &DifferentialEvolution{InitSpan: 100}, &Powell{}} {
		cfg := Config{Seed: 1, MaxEvals: 20000, Bounds: []Bound{{-50, 50}, {-50, 50}}}
		r := m.Minimize(sphere, 2, cfg)
		if r.F > 1e-6 {
			t.Errorf("%s: sphere min %v at %v, want near 0", m.Name(), r.F, r.X)
		}
	}
}

func TestBackendsFindExactZeroOfAbs(t *testing.T) {
	// |x-3| has an exact floating-point zero; graded distance should let
	// every real backend find it (random search merely gets close).
	for _, m := range []Minimizer{&Basinhopping{}, &Powell{}} {
		r := m.Minimize(shiftedAbs, 1, boundedCfg(-100, 100, 50000))
		if !r.FoundZero {
			t.Errorf("%s: did not find exact zero, best %v at %v after %d evals",
				m.Name(), r.F, r.X, r.Evals)
		}
		if r.FoundZero && r.X[0] != 3 {
			t.Errorf("%s: zero at %v, want exactly 3", m.Name(), r.X[0])
		}
	}
}

func TestBasinhoppingEscapesLocalBasins(t *testing.T) {
	// Start far from either zero; basinhopping must hop to one of them.
	bh := &Basinhopping{}
	cfg := boundedCfg(-1000, 1000, 60000)
	r := bh.MinimizeFrom(twoBasins, []float64{500}, cfg)
	if !r.FoundZero {
		t.Fatalf("basinhopping best %v at %v", r.F, r.X)
	}
	got := r.X[0]
	if got != -3 && got != 2 {
		t.Errorf("zero at %v, want -3 or 2", got)
	}
}

func TestStopAtZeroHalts(t *testing.T) {
	evals := 0
	obj := func(x []float64) float64 {
		evals++
		return 0 // every point is a zero
	}
	r := (&Basinhopping{}).Minimize(obj, 1, Config{Seed: 7, MaxEvals: 100000, StopAtZero: true})
	if !r.FoundZero {
		t.Fatal("zero not reported")
	}
	if evals > 3 {
		t.Errorf("stop-at-zero consumed %d evals, want immediate halt", evals)
	}
}

func TestBudgetRespected(t *testing.T) {
	for _, m := range globalBackends() {
		evals := 0
		obj := func(x []float64) float64 {
			evals++
			return 1 + sphere(x) // never zero
		}
		cfg := Config{Seed: 3, MaxEvals: 500, Bounds: []Bound{{-10, 10}, {-10, 10}}}
		r := m.Minimize(obj, 2, cfg)
		if evals > 500+60 { // small slack for in-flight line searches
			t.Errorf("%s: consumed %d evals, budget 500", m.Name(), evals)
		}
		if r.Evals != evals {
			t.Errorf("%s: Result.Evals=%d, actual %d", m.Name(), r.Evals, evals)
		}
		// Local backends (Powell) may legitimately converge before the
		// budget; global ones must consume it on a zero-free objective.
		if !r.Exhausted && m.Name() != "Powell" {
			t.Errorf("%s: expected exhausted budget", m.Name())
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	for _, m := range globalBackends() {
		cfg := boundedCfg(-100, 100, 3000)
		r1 := m.Minimize(twoBasins, 1, cfg)
		r2 := m.Minimize(twoBasins, 1, cfg)
		if r1.F != r2.F || r1.Evals != r2.Evals {
			t.Errorf("%s: nondeterministic: (%v,%d) vs (%v,%d)",
				m.Name(), r1.F, r1.Evals, r2.F, r2.Evals)
		}
		if len(r1.X) != len(r2.X) {
			t.Fatalf("%s: result dim mismatch", m.Name())
		}
		for i := range r1.X {
			if r1.X[i] != r2.X[i] {
				t.Errorf("%s: point mismatch at dim %d", m.Name(), i)
			}
		}
	}
}

func TestSeedChangesSampling(t *testing.T) {
	a := (&Basinhopping{}).Minimize(twoBasins, 1, Config{Seed: 1, MaxEvals: 2000, Bounds: []Bound{{-100, 100}}})
	b := (&Basinhopping{}).Minimize(twoBasins, 1, Config{Seed: 2, MaxEvals: 2000, Bounds: []Bound{{-100, 100}}})
	if a.Evals == b.Evals && a.F == b.F && len(a.X) == len(b.X) && len(a.X) > 0 && a.X[0] == b.X[0] {
		t.Skip("identical outcome across seeds is possible but unlikely; skipping rather than flaking")
	}
}

func TestTraceRecordsAllEvaluations(t *testing.T) {
	tr := &Trace{}
	cfg := Config{Seed: 5, MaxEvals: 300, Bounds: []Bound{{-10, 10}}, Trace: tr}
	r := (&DifferentialEvolution{}).Minimize(sphere, 1, cfg)
	if tr.Len() != r.Evals {
		t.Errorf("trace length %d != evals %d", tr.Len(), r.Evals)
	}
	ss := tr.Samples()
	for i, s := range ss {
		if s.N != i+1 {
			t.Fatalf("sample %d has N=%d", i, s.N)
		}
		if len(s.X) != 1 {
			t.Fatalf("sample %d has dim %d", i, len(s.X))
		}
	}
}

func TestTraceCap(t *testing.T) {
	tr := &Trace{Cap: 50}
	cfg := Config{Seed: 5, MaxEvals: 300, Bounds: []Bound{{-10, 10}}, Trace: tr}
	(&RandomSearch{}).Minimize(sphere, 1, cfg)
	if got := len(tr.Samples()); got != 50 {
		t.Errorf("stored %d samples, want cap 50", got)
	}
	if tr.Len() != 300 {
		t.Errorf("counted %d, want 300", tr.Len())
	}
}

func TestTraceZeros(t *testing.T) {
	tr := &Trace{}
	tr.record([]float64{1}, 0.5)
	tr.record([]float64{2}, 0)
	tr.record([]float64{3}, 0)
	if got := len(tr.Zeros()); got != 2 {
		t.Errorf("Zeros() returned %d, want 2", got)
	}
}

func TestBoundsRespected(t *testing.T) {
	for _, m := range globalBackends() {
		violated := false
		obj := func(x []float64) float64 {
			if x[0] < -5 || x[0] > 5 {
				violated = true
			}
			return 1 + x[0]*x[0]
		}
		m.Minimize(obj, 1, Config{Seed: 11, MaxEvals: 2000, Bounds: []Bound{{-5, 5}}})
		if violated {
			t.Errorf("%s: sampled outside bounds", m.Name())
		}
	}
}

func TestNaNObjectiveHandled(t *testing.T) {
	// Objectives that return NaN in part of the domain must not poison
	// best-so-far tracking.
	obj := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return math.Abs(x[0] - 1)
	}
	r := (&Basinhopping{}).Minimize(obj, 1, boundedCfg(-10, 10, 30000))
	if math.IsNaN(r.F) {
		t.Fatal("best value is NaN")
	}
	if !r.FoundZero {
		t.Errorf("expected zero at 1, got %v at %v", r.F, r.X)
	}
}

func TestFullRangeSamplingCrossesExponents(t *testing.T) {
	// With the default full-range bound, random sampling must produce
	// both tiny and huge magnitudes — the property the FP analyses rely
	// on.
	sawSmall, sawLarge := false, false
	obj := func(x []float64) float64 {
		a := math.Abs(x[0])
		if a > 0 && a < 1e-100 {
			sawSmall = true
		}
		if a > 1e100 {
			sawLarge = true
		}
		return 1
	}
	(&RandomSearch{}).Minimize(obj, 1, Config{Seed: 13, MaxEvals: 4000})
	if !sawSmall || !sawLarge {
		t.Errorf("full-range sampling missed exponent regimes: small=%v large=%v", sawSmall, sawLarge)
	}
}

func TestBasinhoppingReachesHugeMagnitudes(t *testing.T) {
	// Overflow detection requires walking to ~1e308 even from a modest
	// start: minimize MAX - |4*x*x| (the paper's Bessel l2 distance).
	obj := func(x []float64) float64 {
		v := 4 * x[0] * x[0]
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return 0
		}
		a := math.Abs(v)
		if a >= math.MaxFloat64 {
			return 0
		}
		return math.MaxFloat64 - a
	}
	r := (&Basinhopping{}).MinimizeFrom(obj, []float64{1.0},
		Config{Seed: 17, MaxEvals: 200000, StopAtZero: true})
	if !r.FoundZero {
		t.Fatalf("overflow objective not driven to zero; best %v at %v after %d evals",
			r.F, r.X, r.Evals)
	}
	if a := math.Abs(r.X[0]); a < 1e150 {
		t.Errorf("zero at |x|=%v, expected ~1e154+", a)
	}
}

func TestPowellFindsSomeZero(t *testing.T) {
	// Powell is local: it finds a zero reachable by line search from the
	// start, not necessarily every zero (Table 1 shape: Powell found 1.0
	// and 2.0 but missed -3.0).
	p := &Powell{}
	r := p.MinimizeFrom(twoBasins, []float64{5}, boundedCfg(-1000, 1000, 20000))
	if !r.FoundZero {
		t.Fatalf("Powell failed: best %v at %v", r.F, r.X)
	}
	if got := r.X[0]; got != 2 && got != -3 {
		t.Errorf("Powell reached %v, expected one of the zeros {-3, 2}", got)
	}
}

func TestNelderMeadLocalConvergence(t *testing.T) {
	nm := &NelderMead{}
	r := nm.MinimizeFrom(sphere, []float64{3, -4}, Config{Seed: 1, MaxEvals: 5000, Bounds: []Bound{{-10, 10}, {-10, 10}}})
	if r.F > 1e-10 {
		t.Errorf("NM stalled: f=%v at %v", r.F, r.X)
	}
}

func TestBoundClamp(t *testing.T) {
	b := Bound{-1, 1}
	cases := []struct{ in, want float64 }{
		{0.5, 0.5}, {-3, -1}, {3, 1}, {math.NaN(), -1},
	}
	for _, c := range cases {
		if got := b.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	fr := FullRange
	if got := fr.Clamp(math.Inf(1)); got != math.MaxFloat64 {
		t.Errorf("FullRange.Clamp(+Inf) = %v", got)
	}
	if got := fr.Clamp(math.NaN()); got != 0 {
		t.Errorf("FullRange.Clamp(NaN) = %v", got)
	}
}

func TestDistinct3(t *testing.T) {
	rng := newTestRNG()
	for i := 0; i < 200; i++ {
		a, b, c := distinct3(rng, 5, i%5)
		if a == b || b == c || a == c || a == i%5 || b == i%5 || c == i%5 {
			t.Fatalf("distinct3 produced collision: %d %d %d (i=%d)", a, b, c, i%5)
		}
	}
}

func TestSimulatedAnnealingOnBasics(t *testing.T) {
	sa := &SimulatedAnnealing{}
	r := sa.Minimize(shiftedAbs, 1, boundedCfg(-100, 100, 30000))
	if !r.FoundZero {
		t.Errorf("SA missed the zero of |x-3|: best %v at %v", r.F, r.X)
	}
	// Determinism.
	a := sa.Minimize(twoBasins, 1, boundedCfg(-100, 100, 5000))
	b := sa.Minimize(twoBasins, 1, boundedCfg(-100, 100, 5000))
	if a.F != b.F || a.Evals != b.Evals {
		t.Errorf("SA nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSimulatedAnnealingBudget(t *testing.T) {
	evals := 0
	obj := func(x []float64) float64 { evals++; return 1 + sphere(x) }
	(&SimulatedAnnealing{}).Minimize(obj, 1, Config{Seed: 1, MaxEvals: 700, Bounds: []Bound{{-5, 5}}})
	if evals > 760 {
		t.Errorf("SA consumed %d evals, budget 700", evals)
	}
}
