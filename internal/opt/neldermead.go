package opt

import (
	"math"
	"math/rand"
)

// NelderMead is the derivative-free downhill-simplex local minimizer
// (Nelder & Mead 1965). It serves as the inner local search of
// Basinhopping and is exposed as a standalone LocalMinimizer.
//
// The zero value is ready to use with standard coefficients.
type NelderMead struct {
	// Reflection, Expansion, Contraction, Shrink coefficients; zero
	// values select the standard 1, 2, 0.5, 0.5.
	Reflection  float64
	Expansion   float64
	Contraction float64
	Shrink      float64
	// InitStep scales the initial simplex edge relative to |x0| (with an
	// absolute floor). Zero selects 0.05.
	InitStep float64
	// FTol terminates when the simplex function-value spread drops below
	// it. Zero selects 1e-12 (absolute).
	FTol float64
}

// Name implements LocalMinimizer.
func (nm *NelderMead) Name() string { return "NelderMead" }

func (nm *NelderMead) coeffs() (alpha, gamma, rho, sigma, step, ftol float64) {
	alpha, gamma, rho, sigma = nm.Reflection, nm.Expansion, nm.Contraction, nm.Shrink
	if alpha == 0 {
		alpha = 1
	}
	if gamma == 0 {
		gamma = 2
	}
	if rho == 0 {
		rho = 0.5
	}
	if sigma == 0 {
		sigma = 0.5
	}
	step = nm.InitStep
	if step == 0 {
		step = 0.05
	}
	ftol = nm.FTol
	if ftol == 0 {
		ftol = 1e-12
	}
	return
}

type vertex struct {
	x []float64
	f float64
}

// nmScratch holds every working vector of one simplex search so that
// repeated runs (Basinhopping performs one per hop) and the iterations
// within a run allocate nothing: steady-state minimization performs
// zero heap allocations per objective evaluation.
type nmScratch struct {
	simplex  []vertex // dim+1 vertices with preallocated coordinate slices
	centroid []float64
	xr       []float64   // reflection point
	xe       []float64   // expansion point
	xc       []float64   // contraction point
	batchX   [][]float64 // gathered vertex pointers for batched polls
	batchF   []float64   // batched poll values
}

func newNMScratch(dim int) *nmScratch {
	s := &nmScratch{
		simplex:  make([]vertex, dim+1),
		centroid: make([]float64, dim),
		xr:       make([]float64, dim),
		xe:       make([]float64, dim),
		xc:       make([]float64, dim),
		batchX:   make([][]float64, dim+1),
		batchF:   make([]float64, dim+1),
	}
	for i := range s.simplex {
		s.simplex[i].x = make([]float64, dim)
	}
	return s
}

// MinimizeFrom implements LocalMinimizer.
func (nm *NelderMead) MinimizeFrom(obj Objective, x0 []float64, cfg Config) Result {
	e := newEvaluator(obj, cfg, 200*len(x0)+400)
	r := nm.run(e, x0, cfg, newNMScratch(len(x0)))
	return r
}

// run performs the simplex iteration against a shared evaluator so that
// Basinhopping can chain multiple local searches under one budget (and
// one reusable scratch). It returns the evaluator result snapshot after
// this local search.
func (nm *NelderMead) run(e *evaluator, x0 []float64, cfg Config, scr *nmScratch) Result {
	alpha, gamma, rho, sigma, step, ftol := nm.coeffs()
	dim := len(x0)

	// Initial simplex: x0 plus dim perturbed vertices, re-seeded into
	// the scratch vertices and scored as one batched poll — the simplex
	// re-seeding lane filler (Basinhopping performs one per hop).
	// Perturbation is relative so the simplex is meaningful at any
	// magnitude (1e-300 or 1e300 alike).
	simplex := scr.simplex
	for i := 0; i <= dim; i++ {
		v := &simplex[i]
		copy(v.x, x0)
		if i > 0 {
			h := step * math.Abs(v.x[i-1])
			if h == 0 {
				h = step
			}
			v.x[i-1] += h
		}
		clampInto(v.x, cfg)
		scr.batchX[i] = v.x
	}
	n := e.evalBatch(scr.batchX, scr.batchF)
	for i := 0; i < n; i++ {
		simplex[i].f = scr.batchF[i]
	}
	if n <= dim {
		// Budget exhausted mid-seeding, exactly where the serial loop
		// would have bailed.
		return e.result(0)
	}

	centroid, xr, xe, xc := scr.centroid, scr.xr, scr.xe, scr.xc

	iters := 0
	for !e.done() {
		iters++
		sortSimplex(simplex)
		best, worst := simplex[0], simplex[dim]
		spread := worst.f - best.f
		// Relative termination: keep refining while the spread is large
		// compared to the best value, so weak distances are pushed all
		// the way toward zero instead of stalling at an absolute floor.
		if spread <= ftol*math.Abs(best.f) || math.IsNaN(spread) {
			break
		}

		// Centroid of all but the worst vertex.
		for j := 0; j < dim; j++ {
			centroid[j] = 0
			for i := 0; i < dim; i++ {
				centroid[j] += simplex[i].x[j]
			}
			centroid[j] /= float64(dim)
		}

		// Reflection.
		for j := 0; j < dim; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		clampInto(xr, cfg)
		fr := e.eval(xr)
		switch {
		case fr < best.f:
			// Expansion.
			if e.done() {
				copyVertex(&simplex[dim], xr, fr)
				break
			}
			for j := 0; j < dim; j++ {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			clampInto(xe, cfg)
			fe := e.eval(xe)
			if fe < fr {
				copyVertex(&simplex[dim], xe, fe)
			} else {
				copyVertex(&simplex[dim], xr, fr)
			}
		case fr < simplex[dim-1].f:
			copyVertex(&simplex[dim], xr, fr)
		default:
			// Contraction (outside if fr improved on the worst, inside
			// otherwise).
			ref := worst
			if fr < worst.f {
				ref = vertex{x: xr, f: fr}
			}
			for j := 0; j < dim; j++ {
				xc[j] = centroid[j] + rho*(ref.x[j]-centroid[j])
			}
			clampInto(xc, cfg)
			if e.done() {
				break
			}
			fc := e.eval(xc)
			if fc < ref.f {
				copyVertex(&simplex[dim], xc, fc)
			} else {
				// Shrink toward the best vertex: move all dim positions
				// in place, then score them as one batched poll. A
				// position whose evaluation the budget cut off keeps its
				// old f; the outer loop exits via done() immediately and
				// the result comes from the evaluator's best-point
				// tracking, so the stale pairing is unobservable.
				for i := 1; i <= dim; i++ {
					for j := 0; j < dim; j++ {
						simplex[i].x[j] = best.x[j] + sigma*(simplex[i].x[j]-best.x[j])
					}
					clampInto(simplex[i].x, cfg)
					scr.batchX[i-1] = simplex[i].x
				}
				n := e.evalBatch(scr.batchX[:dim], scr.batchF[:dim])
				for i := 0; i < n; i++ {
					simplex[i+1].f = scr.batchF[i]
				}
			}
		}
	}
	// Discrete final phase: land exactly on lattice minima (weak
	// distances have exact zeros on F^N).
	latticePolish(e, cfg)
	return e.result(iters)
}

// sortSimplex orders vertices by ascending f. Insertion sort over the
// dim+1 entries: allocation-free (sort.Slice is not) and fastest at the
// tiny sizes simplices have.
func sortSimplex(s []vertex) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j].f > v.f {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

func copyVertex(v *vertex, x []float64, f float64) {
	copy(v.x, x)
	v.f = f
}

// Minimize implements Minimizer by running one local search from a random
// start point — mainly useful in tests; global users should prefer
// Basinhopping or DifferentialEvolution.
func (nm *NelderMead) Minimize(obj Objective, dim int, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return nm.MinimizeFrom(obj, randPoint(rng, dim, cfg), cfg)
}
