// Package opt implements the mathematical-optimization (MO) backends that
// the weak-distance framework treats as black boxes (paper §4.1):
//
//   - Basinhopping: Markov-chain Monte Carlo sampling over local minimum
//     points (Li & Scheraga 1987; Wales & Doye 1998), the paper's primary
//     backend.
//   - Differential Evolution: population-based global search (Storn 1999).
//   - Powell: derivative-free local direction-set search (Powell 1964).
//   - Nelder–Mead: derivative-free simplex local search (used as the
//     inner minimizer of Basinhopping).
//   - RandomSearch: pure random sampling, the baseline that a
//     characteristic-function weak distance degenerates to (paper Fig. 7).
//
// All backends honor the weak-distance contract: an objective value of
// exactly zero is a global minimum by construction (Def. 3.1(a)), so
// minimization stops the moment zero is sampled when Config.StopAtZero is
// set (paper §4.4 remark on termination).
package opt

import (
	"context"
	"errors"
	"math"
	"math/rand"
)

// Objective is a function to be minimized. Implementations must be safe
// to call repeatedly; the framework's objectives are weak-distance
// programs, which are executed (not analyzed) on each sample.
type Objective func(x []float64) float64

// Bound is an inclusive search interval for one input dimension.
type Bound struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// FullRange is the default bound: the entire finite binary64 line.
// Random points under FullRange are drawn uniformly over the *float
// lattice* (random bit patterns, filtered to finite values) rather than
// uniformly over the reals, so every exponent regime — from subnormals to
// 1e308 — is reachable with equal probability. Floating-point analyses
// need this: boundary conditions of GNU sin live near 1e-8 while GSL
// overflows live near 1e308.
var FullRange = Bound{Lo: math.Inf(-1), Hi: math.Inf(1)}

// isFull reports whether the bound is the default full-range bound.
func (b Bound) isFull() bool { return math.IsInf(b.Lo, -1) && math.IsInf(b.Hi, 1) }

// Clamp projects x into the bound.
func (b Bound) Clamp(x float64) float64 {
	if b.isFull() {
		if math.IsNaN(x) {
			return 0
		}
		if math.IsInf(x, 1) {
			return math.MaxFloat64
		}
		if math.IsInf(x, -1) {
			return -math.MaxFloat64
		}
		return x
	}
	if x < b.Lo || math.IsNaN(x) {
		return b.Lo
	}
	if x > b.Hi {
		return b.Hi
	}
	return x
}

// Config carries the shared knobs of every backend.
type Config struct {
	// Seed makes runs deterministic. Two runs with equal Seed and equal
	// budgets produce identical sampling sequences.
	Seed int64
	// MaxEvals bounds the number of objective evaluations. Zero means a
	// backend-specific default.
	MaxEvals int
	// Bounds gives a per-dimension search interval. Nil means FullRange
	// in every dimension.
	Bounds []Bound
	// StopAtZero halts as soon as an exact zero is sampled — sound for
	// weak distances per Def. 3.1(a); see the §4.4 termination remark.
	StopAtZero bool
	// Trace, when non-nil, records every objective evaluation (used to
	// regenerate the sampling figures 3(c), 4(c) and 9).
	Trace *Trace
	// Ctx, when non-nil, cancels the minimization cooperatively: the
	// shared evaluator consults it before every objective evaluation, so
	// a cancellation or deadline lands within ONE evaluation — no more
	// objective calls happen after Ctx is done, whatever the backend's
	// internal phase. With Batch set the granularity coarsens to one
	// BATCH: the evaluator checks Ctx before each batch dispatch, so a
	// cancellation lands within one batch (which is one evaluation for
	// the serial adapter). Nil means no cancellation (and no per-eval
	// overhead).
	Ctx context.Context
	// Batch, when non-nil, evaluates whole candidate batches in one
	// call. It must compute exactly the same function as the scalar
	// objective (typically both wrap one instrumented program: the
	// scalar one executes a single lane, Batch a lane-parallel sweep).
	// Backends with natural lane fillers — DE generations, Nelder–Mead
	// simplex re-seeding polls, annealing probe pools, the multi-start
	// fan-out — route those phases through it; inherently sequential
	// phases stay on the scalar objective. Nil runs batches as serial
	// loops over the scalar objective: always correct, never faster.
	Batch BatchObjective
}

func (c Config) maxEvals(def int) int {
	if c.MaxEvals > 0 {
		return c.MaxEvals
	}
	return def
}

func (c Config) bound(i int) Bound {
	if i < len(c.Bounds) {
		return c.Bounds[i]
	}
	return FullRange
}

// Result reports the outcome of a minimization.
type Result struct {
	X          []float64 // minimum point found
	F          float64   // minimum value found
	Evals      int       // objective evaluations consumed
	FoundZero  bool      // an exact zero was sampled
	Exhausted  bool      // the evaluation budget ran out
	Canceled   bool      // Config.Ctx was done before the search finished
	Iterations int       // backend-specific outer iterations
	// Stages attributes the evaluations to the portfolio scheduler's
	// backend stages, in lineup order. Nil for single-backend runs.
	Stages []StageResult `json:"stages,omitempty"`
	// Winner names the stage backend holding the final best point
	// (portfolio runs only; empty when no stage ever improved on +Inf).
	Winner string `json:"winner,omitempty"`
}

// Minimizer is a global optimization backend.
type Minimizer interface {
	// Name identifies the backend (for reports and Table 1 rows).
	Name() string
	// Minimize searches for the minimum of obj over dim dimensions.
	Minimize(obj Objective, dim int, cfg Config) Result
}

// LocalMinimizer refines a given start point.
type LocalMinimizer interface {
	Name() string
	// MinimizeFrom performs a local search started at x0.
	MinimizeFrom(obj Objective, x0 []float64, cfg Config) Result
}

// ErrDimension is returned by helpers when dim < 1.
var ErrDimension = errors.New("opt: dimension must be >= 1")

// evaluator wraps an objective with budget accounting, best-so-far
// tracking, trace recording, and the stop-at-zero contract. All backends
// route their samples through one evaluator so Result bookkeeping is
// uniform.
type evaluator struct {
	obj      Objective
	cfg      Config
	max      int
	evals    int
	bestF    float64
	bestX    []float64
	hitZero  bool
	ctxDone  <-chan struct{}
	canceled bool
}

func newEvaluator(obj Objective, cfg Config, defMax int) *evaluator {
	e := &evaluator{
		obj:   obj,
		cfg:   cfg,
		max:   cfg.maxEvals(defMax),
		bestF: math.Inf(1),
	}
	if cfg.Ctx != nil {
		e.ctxDone = cfg.Ctx.Done()
	}
	return e
}

// cancelled reports (and latches) whether Config.Ctx is done. With no
// context configured it is a nil check.
func (e *evaluator) cancelled() bool {
	if e.canceled {
		return true
	}
	if e.ctxDone == nil {
		return false
	}
	select {
	case <-e.ctxDone:
		e.canceled = true
		return true
	default:
		return false
	}
}

// eval samples the objective at x, recording the sample. NaN objective
// values are treated as +Inf so they never look optimal. Once the
// configured context is done, eval stops calling the objective entirely
// (returning +Inf uncounted), so cancellation lands within one
// evaluation even for backends that sample between done() checks.
func (e *evaluator) eval(x []float64) float64 {
	if e.cancelled() {
		return math.Inf(1)
	}
	e.evals++
	f := e.obj(x)
	if math.IsNaN(f) {
		f = math.Inf(1)
	}
	if e.cfg.Trace != nil {
		e.cfg.Trace.record(x, f)
	}
	if f < e.bestF || e.bestX == nil {
		e.bestF = f
		e.bestX = append(e.bestX[:0], x...)
	}
	if f == 0 && e.cfg.StopAtZero {
		e.hitZero = true
	}
	return f
}

// done reports whether the search must stop (budget exhausted, zero
// found under the stop-at-zero contract, or context cancelled).
func (e *evaluator) done() bool {
	return e.evals >= e.max || e.hitZero || e.cancelled()
}

func (e *evaluator) result(iters int) Result {
	x := e.bestX
	if x == nil {
		x = []float64{}
	}
	return Result{
		X:          x,
		F:          e.bestF,
		Evals:      e.evals,
		FoundZero:  e.bestF == 0,
		Exhausted:  e.evals >= e.max,
		Canceled:   e.canceled,
		Iterations: iters,
	}
}

// randPoint draws a random point honoring the bound semantics described
// at FullRange.
func randPoint(rng *rand.Rand, dim int, cfg Config) []float64 {
	x := make([]float64, dim)
	for i := range x {
		b := cfg.bound(i)
		if b.isFull() {
			x[i] = randFiniteFloat(rng)
		} else {
			x[i] = b.Lo + rng.Float64()*(b.Hi-b.Lo)
		}
	}
	return x
}

// randFiniteFloat returns a float64 drawn uniformly over the finite
// non-NaN bit patterns. This gives every exponent equal mass, which is
// the right prior for floating-point analysis problems.
func randFiniteFloat(rng *rand.Rand) float64 {
	for {
		v := math.Float64frombits(rng.Uint64())
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			return v
		}
	}
}

// clampInto projects x into the configured bounds in place.
func clampInto(x []float64, cfg Config) {
	for i := range x {
		x[i] = cfg.bound(i).Clamp(x[i])
	}
}
