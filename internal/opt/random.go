package opt

import (
	"math/rand"
)

// RandomSearch samples points independently at random. It is the
// degenerate strategy a flat (characteristic-function) weak distance
// forces every backend into (paper §5.3, Fig. 7, Limitation 3), included
// both as a baseline and for the Fig. 7 ablation.
//
// The zero value is ready to use.
type RandomSearch struct{}

// Name implements Minimizer.
func (r *RandomSearch) Name() string { return "RandomSearch" }

// Minimize implements Minimizer.
func (r *RandomSearch) Minimize(obj Objective, dim int, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x2545f4914f6cdd1d))
	e := newEvaluator(obj, cfg, 4000*dim)
	iters := 0
	for !e.done() {
		iters++
		e.eval(randPoint(rng, dim, cfg))
	}
	return e.result(iters)
}

// MinimizeFrom implements LocalMinimizer; the start point only provides
// the first sample (random search has no locality).
func (r *RandomSearch) MinimizeFrom(obj Objective, x0 []float64, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x2545f4914f6cdd1d))
	e := newEvaluator(obj, cfg, 4000*len(x0))
	x := make([]float64, len(x0))
	copy(x, x0)
	clampInto(x, cfg)
	e.eval(x)
	iters := 1
	for !e.done() {
		iters++
		e.eval(randPoint(rng, len(x0), cfg))
	}
	return e.result(iters)
}
