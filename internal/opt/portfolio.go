package opt

import "math"

// This file implements the plateau-detecting portfolio scheduler: a
// meta-backend that monitors the best-objective decay rate and spends
// the evaluation budget where it still buys progress, instead of riding
// one fixed backend to exhaustion. The architecture follows the
// escalate-on-stall loop of hybrid fuzzing schedulers: run a cheap
// probe, and only when its progress plateaus escalate to a race of the
// heavier techniques, re-seeded from the best point found so far.
//
// The scheduler never samples the objective itself: every inner backend
// routes through the portfolio's own evaluator, so budget accounting,
// tracing, best-so-far tracking, StopAtZero, and cancellation are the
// standard evaluator semantics — and, like every other backend, the
// whole schedule is a pure function of (Config minus Batch), so results
// are bit-identical batched vs scalar, for any lane width, and under
// any ParallelStarts worker count.

// StageResult attributes one portfolio stage: the evaluations one
// backend consumed across all of its schedule slices, and what they
// bought.
type StageResult struct {
	// Backend is the stage's backend registry name.
	Backend string `json:"backend"`
	// Evals counts the objective evaluations consumed by this stage.
	Evals int `json:"evals"`
	// Best is the global best objective value at the end of the stage's
	// last slice.
	Best float64 `json:"best"`
	// Improved reports that the stage lowered the global best at least
	// once — the stage paid for itself.
	Improved bool `json:"improved,omitempty"`
	// FoundZero reports that this stage sampled the exact zero.
	FoundZero bool `json:"foundZero,omitempty"`
}

// plateauDetector measures the best-objective decay rate over a sliding
// evaluation window. It is fed the (evals, best) bookkeeping stream at
// schedule-slice boundaries; because that stream is itself identical
// for scalar and batched evaluation, the detector is batch-aware by
// construction. Once a full window elapses with a relative decay below
// ratio, the stream is declared stalled.
type plateauDetector struct {
	window    int
	ratio     float64
	markEvals int
	markBest  float64
}

func newPlateauDetector(window int, ratio float64, evals int, best float64) *plateauDetector {
	return &plateauDetector{window: window, ratio: ratio, markEvals: evals, markBest: best}
}

// observe folds one (evals, best) checkpoint and reports whether the
// last full window stalled. Checkpoints inside the current window never
// stall — a truncated final slice must not condemn a backend.
func (d *plateauDetector) observe(evals int, best float64) bool {
	if evals-d.markEvals < d.window {
		return false
	}
	improved := best < d.markBest &&
		(math.IsInf(d.markBest, 1) || d.markBest-best > d.ratio*math.Abs(d.markBest))
	d.markEvals, d.markBest = evals, best
	return !improved
}

// Portfolio is the plateau-detecting portfolio scheduler, registered as
// backend "portfolio". It minimizes time-to-zero rather than ns/eval:
//
//  1. a cheap Probe backend runs in window-sized schedule slices, each
//     resumed from the best point so far;
//  2. when the probe's best-objective decay plateaus, the remaining
//     Racers are raced round-robin over the shared budget, every slice
//     re-seeded from the global best (backends implementing
//     LocalMinimizer resume from it; population/chain backends restart
//     from their derived seed);
//  3. a racer whose own window of evaluations fails to improve the
//     global best is dropped; when every stage has stalled the
//     portfolio exits early, RETURNING the unused budget
//     (Result.Exhausted stays false) instead of burning it — core.Solve
//     reallocates the reclaimed evaluations to fresh starts.
//
// Under StopAtZero the whole portfolio short-circuits the moment any
// stage samples an exact zero, per the weak-distance contract. Without
// StopAtZero (saturation-style clients that keep sampling after zeros)
// the plateau rule still applies: once the best value stops decaying —
// including because it reached 0 — the portfolio exits early; clients
// that want exhaustive sampling at zero should keep a fixed backend.
//
// The zero value is ready to use. Fields tune the schedule.
type Portfolio struct {
	// Probe is the registry name of the cheap first-stage backend
	// ("" selects neldermead).
	Probe string
	// Racers are the registry names of the escalation backends, raced in
	// order. Nil selects every registered fixed backend except the
	// probe, in registry order. "portfolio" entries are ignored (the
	// scheduler does not nest).
	Racers []string
	// StallWindow is the plateau window in objective evaluations, and
	// also the schedule-slice size. Zero selects 400 × dim.
	StallWindow int
	// StallRatio is the minimum relative best-objective decay per window
	// for a stage to stay alive. Zero selects 0.01.
	StallRatio float64
}

// Name implements Minimizer.
func (p *Portfolio) Name() string { return "Portfolio" }

func (p *Portfolio) window(dim int) int {
	if p.StallWindow > 0 {
		return p.StallWindow
	}
	return 400 * dim
}

func (p *Portfolio) ratio() float64 {
	if p.StallRatio > 0 {
		return p.StallRatio
	}
	return 0.01
}

// lineup resolves the stage backends: the probe first, then the racers.
// Unknown or nested-portfolio spellings are dropped; an unusable probe
// falls back to the default, so the lineup is never empty.
func (p *Portfolio) lineup() (names []string, stages []Minimizer) {
	add := func(name string) bool {
		m, ok := newBackend(name)
		if !ok || name == "portfolio" {
			return false
		}
		if _, nested := m.(*Portfolio); nested {
			return false
		}
		for _, n := range names {
			if n == name {
				return false
			}
		}
		names = append(names, name)
		stages = append(stages, m)
		return true
	}
	probe := p.Probe
	if probe == "" || !add(canonicalBackendName(probe)) {
		add("neldermead")
	}
	racers := p.Racers
	if racers == nil {
		racers = BackendNames()
	}
	for _, r := range racers {
		add(canonicalBackendName(r))
	}
	return names, stages
}

// Minimize implements Minimizer by running the plateau-escalate-race
// schedule described on Portfolio.
func (p *Portfolio) Minimize(obj Objective, dim int, cfg Config) Result {
	e := newEvaluator(obj, cfg, 4000*dim)
	if e.cancelled() || dim < 1 {
		return e.result(0)
	}
	window := p.window(dim)
	ratio := p.ratio()
	names, backends := p.lineup()

	// Every inner backend samples through the portfolio's evaluator.
	// The scalar hook gates on the outer schedule (budget, zero,
	// cancellation) exactly like eval itself; the batch hook reuses
	// evalBatch — outer truncation, consumed-prefix bookkeeping, the
	// stop-at-zero cut — and parks the unconsumed tail at +Inf, which is
	// precisely what the scalar hook would have returned for those
	// entries. Inner backends therefore observe identical value streams
	// on both paths, which is what keeps the whole schedule
	// batch-invariant.
	innerObj := Objective(func(x []float64) float64 {
		if e.done() {
			return math.Inf(1)
		}
		return e.eval(x)
	})
	var innerBatch BatchObjective
	if cfg.Batch != nil {
		innerBatch = BatchFunc(func(xs [][]float64, out []float64) {
			n := e.evalBatch(xs, out)
			for i := n; i < len(xs); i++ {
				out[i] = math.Inf(1)
			}
		})
	}

	stages := make([]StageResult, len(names))
	for i := range stages {
		stages[i].Backend = names[i]
		stages[i].Best = math.Inf(1)
	}
	slices := 0
	winner := -1

	// runSlice gives one stage a window-sized slice of the remaining
	// budget, resumed from the global best point when the backend can.
	// It returns whether the slice consumed any budget at all — a
	// zero-consumption slice means the stage can make no further
	// progress and must not be rescheduled (termination guarantee).
	runSlice := func(stage int) bool {
		rem := e.max - e.evals
		if rem > window {
			rem = window
		}
		icfg := Config{
			Seed:       cfg.Seed + int64(slices+1)*15485863,
			MaxEvals:   rem,
			Bounds:     cfg.Bounds,
			StopAtZero: cfg.StopAtZero,
			Ctx:        cfg.Ctx,
			Batch:      innerBatch,
		}
		before, beforeBest := e.evals, e.bestF
		if lm, ok := backends[stage].(LocalMinimizer); ok && e.bestX != nil {
			// The evaluator reuses bestX's backing array; hand the inner
			// backend its own copy.
			x0 := append([]float64(nil), e.bestX...)
			lm.MinimizeFrom(innerObj, x0, icfg)
		} else {
			backends[stage].Minimize(innerObj, dim, icfg)
		}
		slices++
		st := &stages[stage]
		st.Evals += e.evals - before
		st.Best = e.bestF
		if e.bestF < beforeBest {
			st.Improved = true
			winner = stage
		}
		if e.bestF == 0 && beforeBest != 0 {
			st.FoundZero = true
		}
		return e.evals > before
	}

	// Stage 1: the probe, sliced until it plateaus (or finishes the
	// job).
	det := newPlateauDetector(window, ratio, e.evals, e.bestF)
	for !e.done() {
		consumed := runSlice(0)
		if !consumed || det.observe(e.evals, e.bestF) {
			break
		}
	}

	// Stage 2: race the escalation backends round-robin, one window
	// slice each, dropping any racer whose own window stalls. Each
	// racer's detector is keyed on the racer's own consumption, so
	// interleaved slices never dilute the verdict.
	if !e.done() && len(names) > 1 {
		dets := make([]*plateauDetector, len(names))
		own := make([]int, len(names))
		dropped := make([]bool, len(names))
		alive := 0
		for i := 1; i < len(names); i++ {
			dets[i] = newPlateauDetector(window, ratio, 0, e.bestF)
			alive++
		}
		for alive > 0 && !e.done() {
			for i := 1; i < len(names) && !e.done(); i++ {
				if dropped[i] {
					continue
				}
				before := e.evals
				consumed := runSlice(i)
				own[i] += e.evals - before
				if !consumed || dets[i].observe(own[i], e.bestF) {
					dropped[i] = true
					alive--
				}
			}
		}
	}
	// Falling out of both loops with budget left is the early exit: all
	// stages plateaued, so the remaining evaluations are returned to the
	// caller (Exhausted stays false) instead of burned.

	r := e.result(slices)
	executed := stages[:0]
	for _, st := range stages {
		if st.Evals > 0 {
			executed = append(executed, st)
		}
	}
	if len(executed) > 0 {
		r.Stages = append([]StageResult(nil), executed...)
	}
	if winner >= 0 {
		r.Winner = names[winner]
	}
	return r
}
