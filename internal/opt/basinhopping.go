package opt

import (
	"math"
	"math/rand"
)

// Basinhopping is the paper's primary MO backend (§4.4, Algorithm 3 step
// 5): a Markov-chain Monte Carlo sampling over the space of local minimum
// points (Li & Scheraga 1987; Wales & Doye 1998). Each hop perturbs the
// current point, runs a local minimization (Nelder–Mead by default), and
// accepts or rejects the resulting local minimum with the Metropolis
// criterion.
//
// Perturbations mix two move kinds, both required for floating-point
// analysis objectives:
//
//   - additive jitter relative to the current magnitude, exploring the
//     current basin's neighborhood, and
//   - exponent jumps (multiply by 2^±k) plus occasional full-lattice
//     resets, letting the chain traverse the 600-binade dynamic range of
//     binary64 (boundary conditions at 1e-8, overflows at 1e308).
//
// The hop chain itself is inherently sequential (each hop perturbs the
// previous accepted minimum), so basin-hopping consumes Config.Batch
// through its inner local search: the default Nelder–Mead scores its
// simplex re-seeding poll — one per hop — and its shrink steps as
// batches.
//
// The zero value is ready to use.
type Basinhopping struct {
	// Local is the inner minimizer; nil selects a default Nelder–Mead.
	Local LocalMinimizer
	// Temperature for the Metropolis acceptance; zero selects 1.0.
	Temperature float64
	// StepScale is the relative additive perturbation size; zero
	// selects 0.5.
	StepScale float64
	// HopEvals is the local-search budget per hop; zero selects 250 per
	// dimension.
	HopEvals int
}

// Name implements Minimizer.
func (b *Basinhopping) Name() string { return "Basinhopping" }

func (b *Basinhopping) local() LocalMinimizer {
	if b.Local != nil {
		return b.Local
	}
	return &NelderMead{}
}

func (b *Basinhopping) temperature() float64 {
	if b.Temperature == 0 {
		return 1.0
	}
	return b.Temperature
}

func (b *Basinhopping) stepScale() float64 {
	if b.StepScale == 0 {
		return 0.5
	}
	return b.StepScale
}

// Minimize implements Minimizer.
func (b *Basinhopping) Minimize(obj Objective, dim int, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return b.MinimizeFrom(obj, randPoint(rng, dim, cfg), cfg)
}

// MinimizeFrom implements LocalMinimizer: basinhopping started from a
// specific point, as Algorithm 3 step 5 requires
// (`Basinhopping(W, s)` from a chosen starting point s).
func (b *Basinhopping) MinimizeFrom(obj Objective, x0 []float64, cfg Config) Result {
	dim := len(x0)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5deece66d))
	e := newEvaluator(obj, cfg, 4000*dim)

	hopEvals := b.HopEvals
	if hopEvals == 0 {
		hopEvals = 250 * dim
	}
	nm, isNM := b.local().(*NelderMead)
	var scr *nmScratch
	if isNM {
		scr = newNMScratch(dim)
	}

	// localSearch refines x under the shared evaluator budget, leaving
	// the refined point in dst (so the hop loop can ping-pong two
	// persistent buffers instead of allocating per hop).
	localSearch := func(x, dst []float64) float64 {
		remaining := e.max - e.evals
		if remaining <= 0 {
			copy(dst, x)
			return math.Inf(1)
		}
		budget := hopEvals
		if budget > remaining {
			budget = remaining
		}
		if isNM {
			// Run Nelder–Mead against the shared evaluator directly so
			// the trace, budget, and scratch stay unified.
			saved := e.max
			e.max = e.evals + budget
			nm.run(e, x, cfg, scr)
			e.max = saved
			copy(dst, e.bestX)
			return e.bestF
		}
		sub := cfg
		sub.MaxEvals = budget
		sub.Trace = cfg.Trace
		r := b.local().MinimizeFrom(func(y []float64) float64 {
			return e.eval(y)
		}, x, sub)
		copy(dst, r.X)
		return r.F
	}

	cur := make([]float64, dim)
	copy(cur, x0)
	clampInto(cur, cfg)
	candX := make([]float64, dim)
	pert := make([]float64, dim)
	curF := localSearch(cur, candX)
	cur, candX = candX, cur

	T := b.temperature()
	hops := 0
	for !e.done() {
		hops++
		b.perturb(rng, cur, cfg, pert)
		candF := localSearch(pert, candX)
		if e.hitZero {
			break
		}
		// Metropolis acceptance over local minima.
		if candF <= curF || rng.Float64() < math.Exp(-(candF-curF)/T) {
			cur, candX = candX, cur
			curF = candF
		}
	}
	return e.result(hops)
}

// perturb writes the next MCMC proposal from x into out.
func (b *Basinhopping) perturb(rng *rand.Rand, x []float64, cfg Config, out []float64) {
	copy(out, x)
	scale := b.stepScale()
	for i := range out {
		switch kind := rng.Float64(); {
		case kind < 0.15:
			// Full lattice reset for this coordinate: global restart
			// pressure, keeps the chain irreducible over all exponents.
			bd := cfg.bound(i)
			if bd.isFull() {
				out[i] = randFiniteFloat(rng)
			} else {
				out[i] = bd.Lo + rng.Float64()*(bd.Hi-bd.Lo)
			}
		case kind < 0.45:
			// Exponent jump: multiply by 2^±k, k ∈ [1, 64]; also flips
			// sign occasionally to cross zero.
			k := 1 + rng.Intn(64)
			factor := math.Ldexp(1, k)
			if rng.Intn(2) == 0 {
				factor = 1 / factor
			}
			v := out[i] * factor
			if v == 0 || math.IsInf(v, 0) {
				v = randFiniteFloat(rng)
			}
			if rng.Float64() < 0.1 {
				v = -v
			}
			out[i] = v
		default:
			// Additive jitter relative to magnitude (plus an absolute
			// floor so zero coordinates can move).
			mag := math.Abs(out[i])
			h := scale * (mag + 1)
			out[i] += (2*rng.Float64() - 1) * h
		}
	}
	clampInto(out, cfg)
}
