package opt

import (
	"fmt"
	"strings"
)

// backendFactories maps canonical backend names to constructors. The
// registry is the single source of truth for backend spellings: the
// CLI flag helpers, the analysis registry's Spec.Backend field, and
// the fpserve JSON API all resolve through it.
var backendFactories = []struct {
	name    string
	aliases []string
	mk      func() Minimizer
}{
	{"basinhopping", []string{"", "bh"}, func() Minimizer { return &Basinhopping{} }},
	{"de", []string{"differentialevolution"}, func() Minimizer { return &DifferentialEvolution{} }},
	{"powell", nil, func() Minimizer { return &Powell{} }},
	{"random", []string{"randomsearch"}, func() Minimizer { return &RandomSearch{} }},
	{"neldermead", []string{"nm"}, func() Minimizer { return &NelderMead{} }},
	{"anneal", []string{"sa", "simulatedannealing"}, func() Minimizer { return &SimulatedAnnealing{} }},
	{"portfolio", []string{"auto"}, func() Minimizer { return &Portfolio{} }},
}

// BackendNames lists the canonical backend names accepted by
// BackendByName, in preference order.
func BackendNames() []string {
	names := make([]string, len(backendFactories))
	for i, f := range backendFactories {
		names[i] = f.name
	}
	return names
}

// BroadcastBounds applies the shared single-pair convention to a bound
// list: empty stays empty (unbounded), one pair broadcasts over all dim
// dimensions, otherwise the count must match. Every pair is validated
// (finite check is deliberately omitted — ±Inf bounds mean "half
// line" — but lo must not exceed hi and neither may be NaN). The
// returned slice never aliases the input's backing array.
func BroadcastBounds(bs []Bound, dim int) ([]Bound, error) {
	if len(bs) == 0 {
		return nil, nil
	}
	for _, b := range bs {
		if b.Lo != b.Lo || b.Hi != b.Hi {
			return nil, fmt.Errorf("bad bound %g:%g: NaN", b.Lo, b.Hi)
		}
		if b.Lo > b.Hi {
			return nil, fmt.Errorf("bad bound %g:%g: lo > hi", b.Lo, b.Hi)
		}
	}
	if len(bs) == 1 && dim > 1 {
		out := make([]Bound, dim)
		for i := range out {
			out[i] = bs[0]
		}
		return out, nil
	}
	if len(bs) != dim {
		return nil, fmt.Errorf("%d bounds for %d dimensions", len(bs), dim)
	}
	out := make([]Bound, len(bs))
	copy(out, bs)
	return out, nil
}

// newBackend resolves a backend spelling to a fresh, undecorated
// Minimizer and its canonical name. The portfolio scheduler builds its
// stage backends through this raw path so their evaluations are
// attributed to the portfolio run, not double-counted as standalone
// runs.
func newBackend(name string) (Minimizer, bool) {
	want := strings.ToLower(name)
	for _, f := range backendFactories {
		if want == f.name {
			return f.mk(), true
		}
		for _, a := range f.aliases {
			if want == a {
				return f.mk(), true
			}
		}
	}
	return nil, false
}

// canonicalBackendName maps any accepted spelling (alias,
// case-insensitive) to the canonical registry name; unknown spellings
// are returned lowercased.
func canonicalBackendName(name string) string {
	want := strings.ToLower(name)
	for _, f := range backendFactories {
		if want == f.name {
			return f.name
		}
		for _, a := range f.aliases {
			if want == a {
				return f.name
			}
		}
	}
	return want
}

// BackendByName resolves a backend spelling (canonical name or alias,
// case-insensitive; empty selects Basinhopping) to a fresh Minimizer.
// The returned minimizer is instrumented: every Minimize records its
// consumed evaluations in the process-wide EvalCounts ledger under the
// canonical name (portfolio stages under "portfolio/<stage>").
func BackendByName(name string) (Minimizer, error) {
	m, ok := newBackend(name)
	if !ok {
		return nil, fmt.Errorf("unknown backend %q (%s)", name, strings.Join(BackendNames(), ", "))
	}
	return countedBackend(canonicalBackendName(name), m), nil
}

// countedBackend decorates a minimizer with EvalCounts recording,
// preserving the LocalMinimizer capability when the underlying backend
// has it.
func countedBackend(name string, m Minimizer) Minimizer {
	c := countedMinimizer{name: name, m: m}
	if lm, ok := m.(LocalMinimizer); ok {
		return &countedLocalMinimizer{countedMinimizer: c, lm: lm}
	}
	return &c
}

type countedMinimizer struct {
	name string
	m    Minimizer
}

func (c *countedMinimizer) Name() string { return c.m.Name() }

// Unwrap exposes the undecorated backend (e.g. for clients configuring
// Portfolio knobs on a BackendByName result).
func (c *countedMinimizer) Unwrap() Minimizer { return c.m }

func (c *countedMinimizer) Minimize(obj Objective, dim int, cfg Config) Result {
	r := c.m.Minimize(obj, dim, cfg)
	recordBackendEvals(c.name, r)
	return r
}

type countedLocalMinimizer struct {
	countedMinimizer
	lm LocalMinimizer
}

func (c *countedLocalMinimizer) MinimizeFrom(obj Objective, x0 []float64, cfg Config) Result {
	r := c.lm.MinimizeFrom(obj, x0, cfg)
	recordBackendEvals(c.name, r)
	return r
}

// AsPortfolio unwraps any decorator chain and reports whether the
// minimizer is (or wraps) the portfolio scheduler, returning it for
// configuration.
func AsPortfolio(m Minimizer) (*Portfolio, bool) {
	for m != nil {
		if p, ok := m.(*Portfolio); ok {
			return p, true
		}
		u, ok := m.(interface{ Unwrap() Minimizer })
		if !ok {
			return nil, false
		}
		m = u.Unwrap()
	}
	return nil, false
}
