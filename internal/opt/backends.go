package opt

import (
	"fmt"
	"strings"
)

// backendFactories maps canonical backend names to constructors. The
// registry is the single source of truth for backend spellings: the
// CLI flag helpers, the analysis registry's Spec.Backend field, and
// the fpserve JSON API all resolve through it.
var backendFactories = []struct {
	name    string
	aliases []string
	mk      func() Minimizer
}{
	{"basinhopping", []string{"", "bh"}, func() Minimizer { return &Basinhopping{} }},
	{"de", []string{"differentialevolution"}, func() Minimizer { return &DifferentialEvolution{} }},
	{"powell", nil, func() Minimizer { return &Powell{} }},
	{"random", []string{"randomsearch"}, func() Minimizer { return &RandomSearch{} }},
	{"neldermead", []string{"nm"}, func() Minimizer { return &NelderMead{} }},
	{"anneal", []string{"sa", "simulatedannealing"}, func() Minimizer { return &SimulatedAnnealing{} }},
}

// BackendNames lists the canonical backend names accepted by
// BackendByName, in preference order.
func BackendNames() []string {
	names := make([]string, len(backendFactories))
	for i, f := range backendFactories {
		names[i] = f.name
	}
	return names
}

// BroadcastBounds applies the shared single-pair convention to a bound
// list: empty stays empty (unbounded), one pair broadcasts over all dim
// dimensions, otherwise the count must match. Every pair is validated
// (finite check is deliberately omitted — ±Inf bounds mean "half
// line" — but lo must not exceed hi and neither may be NaN). The
// returned slice never aliases the input's backing array.
func BroadcastBounds(bs []Bound, dim int) ([]Bound, error) {
	if len(bs) == 0 {
		return nil, nil
	}
	for _, b := range bs {
		if b.Lo != b.Lo || b.Hi != b.Hi {
			return nil, fmt.Errorf("bad bound %g:%g: NaN", b.Lo, b.Hi)
		}
		if b.Lo > b.Hi {
			return nil, fmt.Errorf("bad bound %g:%g: lo > hi", b.Lo, b.Hi)
		}
	}
	if len(bs) == 1 && dim > 1 {
		out := make([]Bound, dim)
		for i := range out {
			out[i] = bs[0]
		}
		return out, nil
	}
	if len(bs) != dim {
		return nil, fmt.Errorf("%d bounds for %d dimensions", len(bs), dim)
	}
	out := make([]Bound, len(bs))
	copy(out, bs)
	return out, nil
}

// BackendByName resolves a backend spelling (canonical name or alias,
// case-insensitive; empty selects Basinhopping) to a fresh Minimizer.
func BackendByName(name string) (Minimizer, error) {
	want := strings.ToLower(name)
	for _, f := range backendFactories {
		if want == f.name {
			return f.mk(), nil
		}
		for _, a := range f.aliases {
			if want == a {
				return f.mk(), nil
			}
		}
	}
	return nil, fmt.Errorf("unknown backend %q (%s)", name, strings.Join(BackendNames(), ", "))
}
