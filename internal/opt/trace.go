package opt

// Trace records the sampling sequence of a minimization run. The paper's
// figures 3(c), 4(c) and 9 plot exactly this: the n-th sampled input (and
// derived statistics) against n.
type Trace struct {
	// Cap bounds the number of retained samples (0 = unlimited). When
	// the cap is hit, recording keeps counting but stops storing, so
	// Len() stays truthful while memory stays bounded.
	Cap int

	samples []Sample
	total   int
}

// Sample is one recorded objective evaluation.
type Sample struct {
	N int       // 1-based evaluation index
	X []float64 // sampled input (copied)
	F float64   // objective value
}

func (t *Trace) record(x []float64, f float64) {
	t.total++
	if t.Cap > 0 && len(t.samples) >= t.Cap {
		return
	}
	xc := make([]float64, len(x))
	copy(xc, x)
	t.samples = append(t.samples, Sample{N: t.total, X: xc, F: f})
}

// Len returns the total number of evaluations recorded (including any
// beyond Cap that were counted but not stored).
func (t *Trace) Len() int { return t.total }

// Samples returns the stored samples in evaluation order.
func (t *Trace) Samples() []Sample { return t.samples }

// Zeros returns the stored samples whose objective value is exactly zero
// — for weak distances these are precisely the reported solutions
// (Def. 3.1(b)).
func (t *Trace) Zeros() []Sample {
	var zs []Sample
	for _, s := range t.samples {
		if s.F == 0 {
			zs = append(zs, s)
		}
	}
	return zs
}
