package opt

import (
	"sync"
	"sync/atomic"
)

// This file keeps the process-wide evaluation ledger behind the
// BackendByName decorator: how many objective evaluations each backend
// has consumed since process start, with portfolio runs additionally
// attributed per stage ("portfolio/<stage backend>"). fpserve surfaces
// the ledger on /stats; it exists for observability, so it is
// deliberately global, lock-free on the hot path, and never consulted
// by the schedulers themselves.

var evalCounters sync.Map // canonical backend name -> *atomic.Int64

func addEvalCount(name string, n int) {
	if n <= 0 {
		return
	}
	c, ok := evalCounters.Load(name)
	if !ok {
		c, _ = evalCounters.LoadOrStore(name, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(int64(n))
}

// recordBackendEvals folds one Minimize outcome into the ledger.
func recordBackendEvals(name string, r Result) {
	addEvalCount(name, r.Evals)
	for _, st := range r.Stages {
		addEvalCount(name+"/"+st.Backend, st.Evals)
	}
}

// EvalCounts snapshots the process-wide objective-evaluation ledger:
// total evaluations per backend registry name, accumulated by every
// minimizer resolved through BackendByName since process start.
// Portfolio totals appear under "portfolio" with per-stage attribution
// under "portfolio/<stage>". The map is a copy; nil when nothing has
// been recorded.
func EvalCounts() map[string]int64 {
	var out map[string]int64
	evalCounters.Range(func(k, v any) bool {
		if out == nil {
			out = make(map[string]int64)
		}
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}
