package opt

import "math/rand"

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }
