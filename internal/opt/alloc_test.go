package opt

import (
	"math"
	"testing"
)

// The minimizers of the analysis hot path must not allocate per
// objective evaluation in steady state: their eval budgets are the unit
// every analysis is denominated in, so per-sample garbage multiplies
// into every table and figure. Allocations are allowed at run start
// (scratch setup) — the test bounds the amortized per-eval rate well
// below one.

func steadyObjective(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v - 1.5)
	}
	return s
}

func TestSteadyStateAllocs(t *testing.T) {
	const evals = 4000
	cases := []struct {
		name string
		m    Minimizer
	}{
		{"NelderMead", &NelderMead{}},
		{"Powell", &Powell{}},
		{"Basinhopping", &Basinhopping{}},
		{"SimulatedAnnealing", &SimulatedAnnealing{}},
		{"DifferentialEvolution", &DifferentialEvolution{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{Seed: 1, MaxEvals: evals,
				Bounds: []Bound{{Lo: -100, Hi: 100}, {Lo: -100, Hi: 100}}}
			avg := testing.AllocsPerRun(5, func() {
				c.m.Minimize(steadyObjective, 2, cfg)
			})
			perEval := avg / evals
			if perEval > 0.05 {
				t.Errorf("%s: %.1f allocs per run (%.4f per eval), want ~0 per eval",
					c.name, avg, perEval)
			}
		})
	}
}

// TestSteadyStateAllocsBatch pins the same bound for the batched
// evaluation path: with Config.Batch set, the evalBatch fold and the
// backends' batch assembly (DE generations, Nelder–Mead polls,
// annealing probe pools) must stay allocation-free in steady state.
func TestSteadyStateAllocsBatch(t *testing.T) {
	const evals = 4000
	batch := BatchFunc(func(xs [][]float64, out []float64) {
		for i, x := range xs {
			out[i] = steadyObjective(x)
		}
	})
	cases := []struct {
		name string
		m    Minimizer
	}{
		{"DifferentialEvolution", &DifferentialEvolution{}},
		{"NelderMead", &NelderMead{}},
		{"Basinhopping", &Basinhopping{}},
		{"SimulatedAnnealing", &SimulatedAnnealing{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{Seed: 1, MaxEvals: evals, Batch: batch,
				Bounds: []Bound{{Lo: -100, Hi: 100}, {Lo: -100, Hi: 100}}}
			avg := testing.AllocsPerRun(5, func() {
				c.m.Minimize(steadyObjective, 2, cfg)
			})
			perEval := avg / evals
			if perEval > 0.05 {
				t.Errorf("%s: %.1f allocs per run (%.4f per eval), want ~0 per eval",
					c.name, avg, perEval)
			}
		})
	}
}

// BenchmarkMinimizerEvalOverhead reports the per-evaluation cost of
// each backend's bookkeeping (the objective itself is trivial), with
// allocations visible via -benchmem.
func BenchmarkMinimizerEvalOverhead(b *testing.B) {
	for _, c := range []struct {
		name string
		m    Minimizer
	}{
		{"NelderMead", &NelderMead{}},
		{"Powell", &Powell{}},
		{"Basinhopping", &Basinhopping{}},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := Config{Seed: 1, MaxEvals: 4000,
				Bounds: []Bound{{Lo: -100, Hi: 100}, {Lo: -100, Hi: 100}}}
			for i := 0; i < b.N; i++ {
				c.m.Minimize(steadyObjective, 2, cfg)
			}
		})
	}
}
