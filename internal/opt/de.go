package opt

import (
	"math"
	"math/rand"
)

// DifferentialEvolution is the rand/1/bin variant of Storn's differential
// evolution (Storn 1999), the second backend in the paper's Table 1
// sanity check: an evolutionary direct-search strategy maintaining a
// population of candidate points.
//
// The zero value is ready to use.
type DifferentialEvolution struct {
	// PopSize is the population size; zero selects max(15*dim, 30).
	PopSize int
	// F is the differential weight; zero selects 0.7.
	F float64
	// CR is the crossover probability; zero selects 0.9.
	CR float64
	// InitSpan bounds the initial population when the search range is
	// the full float lattice; zero keeps full-lattice initialization.
	// (Table 1 reproduces SciPy-like behaviour with linear-range
	// initialization, which is why DE tends to miss isolated zeros.)
	InitSpan float64
}

// Name implements Minimizer.
func (de *DifferentialEvolution) Name() string { return "DifferentialEvolution" }

// Minimize implements Minimizer.
func (de *DifferentialEvolution) Minimize(obj Objective, dim int, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x1e3779b97f4a7c15))
	e := newEvaluator(obj, cfg, 4000*dim)

	np := de.PopSize
	if np == 0 {
		np = 15 * dim
		if np < 30 {
			np = 30
		}
	}
	F := de.F
	if F == 0 {
		F = 0.7
	}
	CR := de.CR
	if CR == 0 {
		CR = 0.9
	}

	// Initialize population.
	pop := make([][]float64, np)
	fit := make([]float64, np)
	for i := range pop {
		if de.InitSpan > 0 {
			pop[i] = make([]float64, dim)
			for j := range pop[i] {
				b := cfg.bound(j)
				lo, hi := b.Lo, b.Hi
				if b.isFull() {
					lo, hi = -de.InitSpan, de.InitSpan
				}
				pop[i][j] = lo + rng.Float64()*(hi-lo)
			}
		} else {
			pop[i] = randPoint(rng, dim, cfg)
		}
		if e.done() {
			fit[i] = math.Inf(1)
			continue
		}
		fit[i] = e.eval(pop[i])
	}

	trial := make([]float64, dim)
	gens := 0
	for !e.done() {
		gens++
		for i := 0; i < np && !e.done(); i++ {
			// Pick three distinct members a, b, c != i.
			a, b, c := distinct3(rng, np, i)
			jr := rng.Intn(dim)
			for j := 0; j < dim; j++ {
				if j == jr || rng.Float64() < CR {
					trial[j] = pop[a][j] + F*(pop[b][j]-pop[c][j])
				} else {
					trial[j] = pop[i][j]
				}
			}
			clampInto(trial, cfg)
			ft := e.eval(trial)
			if ft <= fit[i] {
				copy(pop[i], trial)
				fit[i] = ft
			}
		}
	}
	return e.result(gens)
}

// distinct3 returns three distinct indices in [0,n) all different from i.
func distinct3(rng *rand.Rand, n, i int) (int, int, int) {
	pick := func(excl ...int) int {
	retry:
		for {
			v := rng.Intn(n)
			for _, x := range excl {
				if v == x {
					continue retry
				}
			}
			return v
		}
	}
	a := pick(i)
	b := pick(i, a)
	c := pick(i, a, b)
	return a, b, c
}
