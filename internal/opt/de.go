package opt

import (
	"math"
	"math/rand"
)

// DifferentialEvolution is the rand/1/bin variant of Storn's differential
// evolution (Storn 1999), the second backend in the paper's Table 1
// sanity check: an evolutionary direct-search strategy maintaining a
// population of candidate points.
//
// The implementation is generation-synchronous: every generation builds
// all np trial vectors from the frozen current population, evaluates
// them as one batch (Config.Batch), and only then applies selection.
// This is classic DE (the steady-state variant that folds each trial in
// immediately is a common serial micro-optimization), and it makes each
// generation a full natural lane filler for batched objectives.
//
// The zero value is ready to use.
type DifferentialEvolution struct {
	// PopSize is the population size; zero selects max(15*dim, 30).
	PopSize int
	// F is the differential weight; zero selects 0.7.
	F float64
	// CR is the crossover probability; zero selects 0.9.
	CR float64
	// InitSpan bounds the initial population when the search range is
	// the full float lattice; zero keeps full-lattice initialization.
	// (Table 1 reproduces SciPy-like behaviour with linear-range
	// initialization, which is why DE tends to miss isolated zeros.)
	InitSpan float64
}

// Name implements Minimizer.
func (de *DifferentialEvolution) Name() string { return "DifferentialEvolution" }

// Minimize implements Minimizer.
func (de *DifferentialEvolution) Minimize(obj Objective, dim int, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x1e3779b97f4a7c15))
	e := newEvaluator(obj, cfg, 4000*dim)

	np := de.PopSize
	if np == 0 {
		np = 15 * dim
		if np < 30 {
			np = 30
		}
	}
	F := de.F
	if F == 0 {
		F = 0.7
	}
	CR := de.CR
	if CR == 0 {
		CR = 0.9
	}

	// Initialize the population and score it with one batched sweep.
	// Members left unevaluated by an exhausted budget keep +Inf fitness
	// so any later trial can replace them.
	pop := make([][]float64, np)
	fit := make([]float64, np)
	for i := range pop {
		if de.InitSpan > 0 {
			pop[i] = make([]float64, dim)
			for j := range pop[i] {
				b := cfg.bound(j)
				lo, hi := b.Lo, b.Hi
				if b.isFull() {
					lo, hi = -de.InitSpan, de.InitSpan
				}
				pop[i][j] = lo + rng.Float64()*(hi-lo)
			}
		} else {
			pop[i] = randPoint(rng, dim, cfg)
		}
	}
	n := e.evalBatch(pop, fit)
	for i := n; i < np; i++ {
		fit[i] = math.Inf(1)
	}

	trials := make([][]float64, np)
	for i := range trials {
		trials[i] = make([]float64, dim)
	}
	ftr := make([]float64, np)
	gens := 0
	for !e.done() {
		gens++
		// Mutation + crossover for the whole generation, against the
		// frozen population, then one batch evaluation, then selection
		// over the evaluated prefix.
		for i := 0; i < np; i++ {
			// Pick three distinct members a, b, c != i.
			a, b, c := distinct3(rng, np, i)
			jr := rng.Intn(dim)
			t := trials[i]
			for j := 0; j < dim; j++ {
				if j == jr || rng.Float64() < CR {
					t[j] = pop[a][j] + F*(pop[b][j]-pop[c][j])
				} else {
					t[j] = pop[i][j]
				}
			}
			clampInto(t, cfg)
		}
		n := e.evalBatch(trials, ftr)
		for i := 0; i < n; i++ {
			if ftr[i] <= fit[i] {
				copy(pop[i], trials[i])
				fit[i] = ftr[i]
			}
		}
	}
	return e.result(gens)
}

// distinct3 returns three distinct indices in [0,n) all different from
// i, by rejection sampling. Written without closures or variadics: it
// runs once per population member per generation and must not allocate.
func distinct3(rng *rand.Rand, n, i int) (int, int, int) {
	a := i
	for a == i {
		a = rng.Intn(n)
	}
	b := i
	for b == i || b == a {
		b = rng.Intn(n)
	}
	c := i
	for c == i || c == a || c == b {
		c = rng.Intn(n)
	}
	return a, b, c
}
