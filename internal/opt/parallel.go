package opt

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelConfig configures a ParallelStarts run: a fixed schedule of
// independent minimization starts distributed over a worker pool. The
// schedule — which starts exist, which seed each uses, and which results
// the caller consumes — is a pure function of the configuration minus
// Workers, so the merged outcome of a run is identical for every worker
// count (including 1, which reproduces the historical serial loops of
// the analysis clients exactly).
type ParallelConfig struct {
	// Starts is the number of independent minimization restarts.
	Starts int
	// Workers bounds the goroutine pool; zero or negative selects
	// runtime.NumCPU(). Workers only controls scheduling, never results.
	Workers int
	// Seed is the root seed. Start s runs with Seed + s*SeedStride, the
	// same per-start derivation the serial multi-start loops used.
	Seed int64
	// SeedStride is the per-start seed increment; zero selects 1000003
	// (the stride of core.Solve's historical serial loop).
	SeedStride int64
	// MaxEvals bounds objective evaluations per start (0 = backend
	// default).
	MaxEvals int
	// Bounds restricts the search space per dimension.
	Bounds []Bound
	// StopAtZero makes each start halt on an exact zero AND drains the
	// queue: once some start finds an accepted zero, pending starts with
	// a HIGHER index are skipped (a serial loop would never have reached
	// them). Pending starts with a lower index still run, so the
	// lowest-index zero — the one a serial loop reports — is always
	// discovered.
	StopAtZero bool
	// RecordTrace allocates a per-start Trace recording every objective
	// evaluation of that start (merged by callers in start order).
	RecordTrace bool
	// TraceCap bounds retained samples per start trace (0 = unlimited).
	TraceCap int
	// Accept, when non-nil, is consulted on every exact zero before it
	// may drain the queue (the §5.2 membership guard: spurious zeros of
	// a defective weak distance must not cancel the remaining starts).
	// Calls are serialized by the driver, so Accept may use non-reentrant
	// state, but it must be a pure function of (start, Result) for the
	// run to stay deterministic.
	Accept func(start int, r Result) bool
	// Ctx, when non-nil, cancels the whole schedule cooperatively: every
	// executed start checks it at evaluation granularity (Config.Ctx),
	// and starts not yet begun when it fires return immediately with
	// Canceled set. Cancellation necessarily breaks the worker-count
	// determinism contract — partial results are whatever each start had
	// sampled when the context fired.
	Ctx context.Context
	// Batch, when non-nil, supplies each start's Config.Batch: a batch
	// objective constructed alongside objective(start) that must
	// evaluate exactly the same function (typically a lane-parallel
	// sweep of the same program instance, sharing the scalar wrapper's
	// monitor family). Like the scalar factory it is invoked once per
	// executed start, from the worker goroutine that runs it; under
	// StopAtZero the driver wraps it with the same short-circuit as the
	// scalar objective, so unconsumable starts stop paying for lane
	// sweeps too.
	Batch func(start int) BatchObjective
}

func (c ParallelConfig) workers() int {
	w := c.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > c.Starts {
		w = c.Starts
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (c ParallelConfig) stride() int64 {
	if c.SeedStride != 0 {
		return c.SeedStride
	}
	return 1000003
}

// StartResult is the outcome of one scheduled start.
type StartResult struct {
	// Start is the start index (results are returned ordered by it).
	Start int
	// Result is the backend's outcome; zero-valued when Skipped.
	Result
	// Trace holds the start's samples when RecordTrace was set.
	Trace *Trace
	// Skipped reports that the start was drained before running: an
	// accepted zero at a lower index made it unreachable for the
	// equivalent serial loop.
	Skipped bool
	// ZeroAccepted reports that the start sampled an exact zero and the
	// Accept guard (or its absence) admitted it.
	ZeroAccepted bool
}

// ParallelStarts runs Starts independent minimizations of per-start
// objectives over a goroutine pool — the paper's multi-start MO driver
// (§4.1) parallelized across restarts, which are embarrassingly
// parallel: each start has its own derived seed, its own objective
// instance (and therefore its own monitor state), and its own trace.
//
// The objective factory is invoked once per executed start, from the
// worker goroutine that runs it. It must return an objective whose
// evaluation is independent of every other start's objective: analysis
// callers build one fresh monitor (and, for interpreter-backed
// programs, one fresh program instance) per call.
//
// Results are returned indexed by start. Determinism contract: every
// start at or below the lowest accepted zero runs to completion with a
// Result identical for every Workers value (without StopAtZero that is
// every start). Starts above that zero are timing-dependent — skipped,
// or cancelled mid-run with garbage Results — and must never be
// consumed. Callers merge in start order and stop at the first
// FoundZero slot (or consume everything when StopAtZero is off), which
// makes the merged report bit-identical to the historical serial
// loops.
func ParallelStarts(backend Minimizer, objective func(start int) Objective, dim int, cfg ParallelConfig) []StartResult {
	n := cfg.Starts
	out := make([]StartResult, n)
	for s := range out {
		out[s].Start = s
	}
	if n == 0 || dim < 1 {
		return out
	}

	// minZero is the lowest start index that produced an accepted zero;
	// n is the "none yet" sentinel. It only ever decreases.
	var minZero atomic.Int64
	minZero.Store(int64(n))
	var acceptMu sync.Mutex

	jobs := make(chan int, n)
	for s := 0; s < n; s++ {
		jobs <- s
	}
	close(jobs)

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				res := &out[s]
				if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
					// Don't pay for objective construction (a program
					// instance per start) once the run is dead; Minimize
					// would return immediately anyway.
					res.Canceled = true
					continue
				}
				if cfg.StopAtZero && int64(s) > minZero.Load() {
					// A lower-index start already found an accepted
					// zero: the serial loop would have stopped before
					// reaching this start.
					res.Skipped = true
					continue
				}
				var tr *Trace
				if cfg.RecordTrace {
					tr = &Trace{Cap: cfg.TraceCap}
				}
				obj := objective(s)
				var batch BatchObjective
				if cfg.Batch != nil {
					batch = cfg.Batch(s)
				}
				if cfg.StopAtZero {
					// Cooperative cancellation for in-flight starts: once a
					// lower-index start holds an accepted zero, this start's
					// result can never be consumed (the merge stops at that
					// zero), so stop paying for program executions and burn
					// the remaining budget on a constant. minZero only
					// decreases, so a start that short-circuits once stays
					// unconsumable forever — determinism of consumed
					// results is unaffected.
					real := obj
					obj = func(x []float64) float64 {
						if int64(s) > minZero.Load() {
							return math.Inf(1)
						}
						return real(x)
					}
					if batch != nil {
						realB := batch
						batch = BatchFunc(func(xs [][]float64, out []float64) {
							if int64(s) > minZero.Load() {
								for i := range xs {
									out[i] = math.Inf(1)
								}
								return
							}
							realB.Eval(xs, out)
						})
					}
				}
				r := backend.Minimize(obj, dim, Config{
					Seed:       cfg.Seed + int64(s)*cfg.stride(),
					MaxEvals:   cfg.MaxEvals,
					Bounds:     cfg.Bounds,
					StopAtZero: cfg.StopAtZero,
					Trace:      tr,
					Ctx:        cfg.Ctx,
					Batch:      batch,
				})
				res.Result = r
				res.Trace = tr
				if !r.FoundZero {
					continue
				}
				accepted := true
				if cfg.Accept != nil {
					acceptMu.Lock()
					accepted = cfg.Accept(s, r)
					acceptMu.Unlock()
				}
				res.ZeroAccepted = accepted
				if accepted && cfg.StopAtZero {
					for {
						cur := minZero.Load()
						if int64(s) >= cur || minZero.CompareAndSwap(cur, int64(s)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	return out
}
