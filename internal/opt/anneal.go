package opt

import (
	"math"
	"math/rand"
)

// SimulatedAnnealing is a classic Metropolis annealer with geometric
// cooling. It is not used by the paper, but the reduction theory treats
// backends as interchangeable black boxes (§4.1) — this one exists to
// demonstrate exactly that: any sampler with the Minimizer contract
// plugs into every analysis unchanged.
//
// Moves reuse Basinhopping's float-aware proposal mixture (additive
// jitter, exponent jumps, lattice resets) so the annealer can traverse
// the full binary64 dynamic range.
//
// The zero value is ready to use.
type SimulatedAnnealing struct {
	// InitTemp is the starting temperature; zero selects an adaptive
	// value from the first samples.
	InitTemp float64
	// Cooling is the geometric factor per step; zero selects 0.999.
	Cooling float64
	// Restarts reheats the chain this many times across the budget;
	// zero selects 4.
	Restarts int
}

// Name implements Minimizer.
func (sa *SimulatedAnnealing) Name() string { return "SimulatedAnnealing" }

func (sa *SimulatedAnnealing) cooling() float64 {
	if sa.Cooling == 0 {
		return 0.999
	}
	return sa.Cooling
}

func (sa *SimulatedAnnealing) restarts() int {
	if sa.Restarts == 0 {
		return 4
	}
	return sa.Restarts
}

// Minimize implements Minimizer.
func (sa *SimulatedAnnealing) Minimize(obj Objective, dim int, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x3c6ef372fe94f82b))
	e := newEvaluator(obj, cfg, 4000*dim)
	moves := &Basinhopping{} // reuse the proposal mixture

	restarts := sa.restarts()
	// Split the budget across restarts and reserve a slice for the
	// final lattice polish, so a slow cooling schedule cannot starve
	// either.
	searchBudget := e.max * 9 / 10
	perRestart := searchBudget / restarts
	if perRestart < 1 {
		perRestart = 1
	}
	iters := 0
	cand := make([]float64, dim)   // proposal buffer, ping-ponged with cur
	probeX := make([][]float64, 8) // perturbation probe pool, reused per restart
	for i := range probeX {
		probeX[i] = make([]float64, dim)
	}
	probeF := make([]float64, 8)
	for r := 0; r < restarts && !e.done() && e.evals < searchBudget; r++ {
		restartCap := e.evals + perRestart
		cur := randPoint(rng, dim, cfg)
		clampInto(cur, cfg)
		curF := e.eval(cur)

		// Adaptive initial temperature: the spread of a pool of probe
		// moves, all perturbed from the frozen restart point and scored
		// as one batch (the perturbation-probe lane filler). The chain
		// then starts from the best probe, which is where the old
		// greedy serial walk ended up whenever it mattered.
		T := sa.InitTemp
		if T == 0 {
			for i := range probeX {
				moves.perturb(rng, cur, cfg, probeX[i])
			}
			n := e.evalBatch(probeX, probeF)
			ref := curF
			spread := 0.0
			probes := 0
			bestI := -1
			for i := 0; i < n; i++ {
				f := probeF[i]
				if !math.IsInf(f, 0) && !math.IsInf(ref, 0) {
					spread += math.Abs(f - ref)
					probes++
				}
				if f < curF {
					curF = f
					bestI = i
				}
			}
			if bestI >= 0 {
				copy(cur, probeX[bestI])
			}
			if probes > 0 {
				T = spread / float64(probes)
			}
			if T == 0 || math.IsNaN(T) {
				T = 1
			}
		}

		cool := sa.cooling()
		for !e.done() && e.evals < restartCap {
			iters++
			moves.perturb(rng, cur, cfg, cand)
			f := e.eval(cand)
			if f <= curF || rng.Float64() < math.Exp(-(f-curF)/T) {
				cur, cand = cand, cur
				curF = f
			}
			T *= cool
			if T < 1e-300 {
				break // frozen: next restart
			}
		}
	}
	// Final discrete refinement from the best point seen.
	latticePolish(e, cfg)
	return e.result(iters)
}
