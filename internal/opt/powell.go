package opt

import (
	"math"
	"math/rand"
)

// Powell is Powell's conjugate-direction method (Powell 1964): a local,
// derivative-free minimizer that repeatedly performs exact-ish line
// minimizations along an evolving direction set. It is the third backend
// of the paper's Table 1 sanity check.
//
// The zero value is ready to use.
type Powell struct {
	// FTol is the relative function-decrease tolerance per outer
	// iteration; zero selects 1e-10.
	FTol float64
	// MaxLineEvals bounds each line minimization; zero selects 60.
	MaxLineEvals int
}

// Name implements Minimizer and LocalMinimizer.
func (p *Powell) Name() string { return "Powell" }

func (p *Powell) ftol() float64 {
	if p.FTol == 0 {
		return 1e-10
	}
	return p.FTol
}

func (p *Powell) lineEvals() int {
	if p.MaxLineEvals == 0 {
		return 60
	}
	return p.MaxLineEvals
}

// MinimizeFrom implements LocalMinimizer.
func (p *Powell) MinimizeFrom(obj Objective, x0 []float64, cfg Config) Result {
	e := newEvaluator(obj, cfg, 400*len(x0)+600)
	return p.run(e, x0, cfg)
}

// Minimize implements Minimizer by starting from a random point.
func (p *Powell) Minimize(obj Objective, dim int, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return p.MinimizeFrom(obj, randPoint(rng, dim, cfg), cfg)
}

func (p *Powell) run(e *evaluator, x0 []float64, cfg Config) Result {
	dim := len(x0)
	// All working vectors are allocated once here and reused by every
	// outer iteration and line minimization: steady-state search
	// performs zero heap allocations per objective evaluation.
	x := make([]float64, dim)
	copy(x, x0)
	clampInto(x, cfg)
	fx := e.eval(x)

	// Direction set starts as the coordinate axes, carved out of one
	// backing array; newDir is the spare row that direction replacement
	// rotates through the set.
	backing := make([]float64, dim*dim)
	dirs := make([][]float64, dim)
	for i := range dirs {
		dirs[i] = backing[i*dim : (i+1)*dim : (i+1)*dim]
		dirs[i][i] = 1
	}
	newDir := make([]float64, dim)

	xt := make([]float64, dim)
	xPrev := make([]float64, dim)
	probe := make([]float64, dim)
	iters := 0
	for !e.done() {
		iters++
		copy(xPrev, x)
		fPrev := fx
		biggestDrop := 0.0
		biggestIdx := 0

		for i := 0; i < dim && !e.done(); i++ {
			fBefore := fx
			fx = p.lineMin(e, x, dirs[i], fx, cfg, probe)
			clampInto(x, cfg)
			if drop := fBefore - fx; drop > biggestDrop {
				biggestDrop = drop
				biggestIdx = i
			}
		}

		// Convergence test on relative decrease.
		if 2*(fPrev-fx) <= p.ftol()*(math.Abs(fPrev)+math.Abs(fx)+1e-300) {
			break
		}
		if e.done() {
			break
		}

		// Extrapolated point along the overall displacement.
		anyMove := false
		for j := 0; j < dim; j++ {
			newDir[j] = x[j] - xPrev[j]
			if newDir[j] != 0 {
				anyMove = true
			}
			xt[j] = 2*x[j] - xPrev[j]
		}
		if !anyMove {
			break
		}
		clampInto(xt, cfg)
		ft := e.eval(xt)
		if ft < fPrev {
			// Powell's criterion for replacing a direction with the
			// overall displacement direction.
			t := 2*(fPrev-2*fx+ft)*sq(fPrev-fx-biggestDrop) - biggestDrop*sq(fPrev-ft)
			if t < 0 {
				fx = p.lineMin(e, x, newDir, fx, cfg, probe)
				clampInto(x, cfg)
				// Rotate: the displaced row becomes the next newDir
				// buffer (its contents are rewritten before use).
				spare := dirs[biggestIdx]
				dirs[biggestIdx] = dirs[dim-1]
				dirs[dim-1] = newDir
				newDir = spare
			}
		}
	}
	// Discrete final phase (see latticePolish).
	latticePolish(e, cfg)
	return e.result(iters)
}

func sq(v float64) float64 { return v * v }

// lineMin minimizes f(x + t*dir) over t, updating x in place and
// returning the new function value. It brackets a minimum by geometric
// expansion and then refines with golden-section search — robust for the
// discontinuous, plateau-riddled objectives weak distances produce.
// probe is caller-provided scratch for the candidate points.
func (p *Powell) lineMin(e *evaluator, x, dir []float64, fx float64, cfg Config, probe []float64) float64 {
	dim := len(x)
	at := func(t float64) float64 {
		for j := 0; j < dim; j++ {
			probe[j] = x[j] + t*dir[j]
		}
		clampInto(probe, cfg)
		return e.eval(probe)
	}

	budget := p.lineEvals()
	used := 0
	evalT := func(t float64) float64 {
		used++
		return at(t)
	}

	// Initial step relative to the current position magnitude so the
	// search works across exponent regimes.
	scale := 0.0
	for j := 0; j < dim; j++ {
		scale = math.Max(scale, math.Abs(x[j]))
	}
	h := 1e-2 * (scale + 1)

	// Probe both directions.
	if e.done() {
		return fx
	}
	fPlus := evalT(h)
	if e.done() {
		return updateIf(x, dir, h, fPlus, fx)
	}
	fMinus := evalT(-h)

	var tLo, tHi, tBest, fBest float64
	switch {
	case fPlus < fx && fPlus <= fMinus:
		tBest, fBest = h, fPlus
		tLo = 0
	case fMinus < fx:
		tBest, fBest = -h, fMinus
		tLo = 0
		h = -h
	default:
		// Neither side improves: shrink toward zero a few times in case
		// the minimum is closer than h.
		tBest, fBest = 0, fx
		for k := 0; k < 8 && used < budget && !e.done(); k++ {
			h /= 4
			if f := evalT(h); f < fBest {
				tBest, fBest = h, f
			}
			if f := evalT(-h); f < fBest {
				tBest, fBest = -h, f
			}
			if fBest < fx {
				break
			}
		}
		if fBest >= fx {
			return fx
		}
		tLo, h = 0, tBest
	}

	// Geometric expansion until the function stops decreasing.
	t := tBest
	for used < budget && !e.done() {
		t *= 2
		f := evalT(t)
		if f < fBest {
			tLo = tBest
			tBest, fBest = t, f
			continue
		}
		tHi = t
		break
	}
	if tHi == 0 {
		tHi = t
	}

	// Golden-section refinement on [tLo, tHi] around tBest.
	const phi = 0.6180339887498949
	lo, hi := tLo, tHi
	if lo > hi {
		lo, hi = hi, lo
	}
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := math.Inf(1), math.Inf(1)
	if used < budget && !e.done() {
		fc = evalT(c)
	}
	if used < budget && !e.done() {
		fd = evalT(d)
	}
	for used < budget && !e.done() && b-a > 1e-14*(math.Abs(a)+math.Abs(b)+1e-300) {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = evalT(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = evalT(d)
		}
		if fc < fBest {
			tBest, fBest = c, fc
		}
		if fd < fBest {
			tBest, fBest = d, fd
		}
	}

	return updateIf(x, dir, tBest, fBest, fx)
}

// updateIf moves x along dir by t when fNew improves on fOld, returning
// the better value.
func updateIf(x, dir []float64, t, fNew, fOld float64) float64 {
	if fNew < fOld {
		for j := range x {
			x[j] += t * dir[j]
		}
		return fNew
	}
	return fOld
}
