package opt

import (
	"math"
	"reflect"
	"testing"
)

func TestPlateauDetector(t *testing.T) {
	d := newPlateauDetector(100, 0.01, 0, 100)
	if d.observe(50, 90) {
		t.Error("stalled inside the first window")
	}
	if d.observe(100, 90) {
		t.Error("10% decay over one window flagged as stall")
	}
	if !d.observe(200, 89.5) {
		t.Error("0.5% decay over one window not flagged as stall")
	}

	// From +Inf any finite best is progress; Inf → Inf is a stall.
	d = newPlateauDetector(10, 0.01, 0, math.Inf(1))
	if d.observe(10, 5) {
		t.Error("Inf → finite flagged as stall")
	}
	d = newPlateauDetector(10, 0.01, 0, math.Inf(1))
	if !d.observe(10, math.Inf(1)) {
		t.Error("Inf → Inf not flagged as stall")
	}

	// A best pinned at zero cannot decay further: stall.
	d = newPlateauDetector(10, 0.01, 0, 0)
	if !d.observe(10, 0) {
		t.Error("0 → 0 not flagged as stall")
	}
}

// TestPortfolioEscalatesAndExitsEarly drives the full schedule on a
// zero-free objective: the probe must plateau near the true minimum,
// every racer must get its slice and stall too, and the portfolio must
// then return the unused budget instead of burning it.
func TestPortfolioEscalatesAndExitsEarly(t *testing.T) {
	obj := func(x []float64) float64 { return x[0]*x[0] + 1 }
	p := &Portfolio{StallWindow: 200}
	r := p.Minimize(obj, 1, Config{
		Seed: 7, MaxEvals: 50000, StopAtZero: true,
		Bounds: []Bound{{Lo: -10, Hi: 10}},
	})
	if r.FoundZero {
		t.Fatalf("found a zero of a zero-free objective: %+v", r)
	}
	if r.Exhausted || r.Evals >= 50000 {
		t.Errorf("no early exit: consumed %d of 50000 evals (exhausted=%v)", r.Evals, r.Exhausted)
	}
	if len(r.Stages) < 2 {
		t.Fatalf("probe never escalated: stages %+v", r.Stages)
	}
	if r.Stages[0].Backend != "neldermead" {
		t.Errorf("probe stage is %q, want neldermead", r.Stages[0].Backend)
	}
	sum := 0
	for _, st := range r.Stages {
		if st.Evals <= 0 {
			t.Errorf("stage %q recorded with no evals", st.Backend)
		}
		sum += st.Evals
	}
	if sum != r.Evals {
		t.Errorf("stage evals sum to %d, result has %d", sum, r.Evals)
	}
	if r.Winner == "" {
		t.Error("no winner attributed")
	}
	if r.F < 1 {
		t.Errorf("best %v below the true minimum 1", r.F)
	}
}

// TestPortfolioShortCircuitsOnZero: under StopAtZero the whole
// portfolio stops at the first exact zero, whichever stage samples it.
func TestPortfolioShortCircuitsOnZero(t *testing.T) {
	obj := func(x []float64) float64 {
		if x[0] < 0 {
			return 0
		}
		return x[0] + 1
	}
	p := &Portfolio{}
	r := p.Minimize(obj, 1, Config{
		Seed: 3, MaxEvals: 100000, StopAtZero: true,
		Bounds: []Bound{{Lo: -10, Hi: 10}},
	})
	if !r.FoundZero {
		t.Fatalf("missed a half-line of zeros: %+v", r)
	}
	if r.Evals >= 100000 {
		t.Errorf("no short-circuit: %d evals", r.Evals)
	}
	if r.Winner == "" || !r.Stages[len(r.Stages)-1].FoundZero && !r.Stages[0].FoundZero {
		zero := false
		for _, st := range r.Stages {
			zero = zero || st.FoundZero
		}
		if !zero {
			t.Errorf("no stage attributed with the zero: %+v", r.Stages)
		}
	}
}

// TestPortfolioDeterministic: two identical runs produce identical
// Results (including stage attribution), and the scheduler behaves as a
// pure function of Config under ParallelStarts for any worker count.
func TestPortfolioDeterministic(t *testing.T) {
	obj := func(x []float64) float64 { return math.Abs(x[0]-2) + 0.5 }
	cfg := Config{Seed: 11, MaxEvals: 6000, Bounds: []Bound{{Lo: -50, Hi: 50}}}
	a := (&Portfolio{StallWindow: 150}).Minimize(obj, 1, cfg)
	b := (&Portfolio{StallWindow: 150}).Minimize(obj, 1, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical runs diverged:\n%+v\n%+v", a, b)
	}

	run := func(workers int) []StartResult {
		return ParallelStarts(&Portfolio{StallWindow: 150}, func(int) Objective {
			return obj
		}, 1, ParallelConfig{
			Starts: 6, Workers: workers, Seed: 13, MaxEvals: 2000,
			Bounds: []Bound{{Lo: -50, Hi: 50}},
		})
	}
	w1 := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); !reflect.DeepEqual(w1, got) {
			t.Errorf("workers=%d diverged from workers=1:\n%+v\n%+v", w, w1, got)
		}
	}
}

// TestPortfolioTinyBudget: budgets smaller than one plateau window must
// still work — the fuzz backend oracle runs every backend at 300 evals.
func TestPortfolioTinyBudget(t *testing.T) {
	obj := func(x []float64) float64 { return x[0]*x[0] + 1 }
	r := (&Portfolio{}).Minimize(obj, 1, Config{
		Seed: 5, MaxEvals: 50, Bounds: []Bound{{Lo: -10, Hi: 10}},
	})
	if r.Evals > 50 {
		t.Errorf("budget overrun: %d > 50", r.Evals)
	}
	if !r.Exhausted {
		t.Errorf("tiny budget not exhausted: %+v", r)
	}
}

// TestPortfolioRecursionGuard: portfolio spellings in the lineup are
// dropped rather than nested, and an unusable probe falls back to the
// default.
func TestPortfolioRecursionGuard(t *testing.T) {
	obj := func(x []float64) float64 { return x[0] * x[0] }
	p := &Portfolio{Probe: "portfolio", Racers: []string{"auto", "portfolio", "nosuch"}}
	r := p.Minimize(obj, 1, Config{
		Seed: 9, MaxEvals: 500, StopAtZero: true, Bounds: []Bound{{Lo: -1, Hi: 1}},
	})
	for _, st := range r.Stages {
		if st.Backend == "portfolio" {
			t.Fatalf("nested portfolio stage: %+v", r.Stages)
		}
	}
	if len(r.Stages) > 0 && r.Stages[0].Backend != "neldermead" {
		t.Errorf("probe fallback is %q, want neldermead", r.Stages[0].Backend)
	}
}

// TestPortfolioRegistry: the backend is reachable through the registry,
// configurable through AsPortfolio even when decorated, and its runs
// land in the EvalCounts ledger with per-stage attribution.
func TestPortfolioRegistry(t *testing.T) {
	m, err := BackendByName("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "Portfolio" {
		t.Errorf("Name() = %q", m.Name())
	}
	pf, ok := AsPortfolio(m)
	if !ok {
		t.Fatal("AsPortfolio failed on a BackendByName result")
	}
	pf.StallWindow = 100
	if _, ok := AsPortfolio(&Basinhopping{}); ok {
		t.Error("AsPortfolio matched a non-portfolio backend")
	}

	obj := func(x []float64) float64 { return x[0]*x[0] + 1 }
	r := m.Minimize(obj, 1, Config{Seed: 2, MaxEvals: 3000, Bounds: []Bound{{Lo: -5, Hi: 5}}})
	if len(r.Stages) == 0 {
		t.Fatalf("configured portfolio produced no stages: %+v", r)
	}
	counts := EvalCounts()
	if counts["portfolio"] <= 0 {
		t.Errorf("ledger has no portfolio total: %v", counts)
	}
	if counts["portfolio/"+r.Stages[0].Backend] <= 0 {
		t.Errorf("ledger has no stage attribution for %q: %v", r.Stages[0].Backend, counts)
	}
}
