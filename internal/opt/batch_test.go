package opt

import (
	"math"
	"testing"
)

// TestBatchSerialIdentity pins the evalBatch bookkeeping contract:
// running a backend with Config.Batch set to a serial adapter over the
// scalar objective is bit-identical to running it without Batch at all
// — same best point, same value, same evaluation count, same trace,
// same termination flags. The two paths share every RNG draw (batch
// assembly consumes the same stream), so any divergence is a
// bookkeeping bug in the fold.
func TestBatchSerialIdentity(t *testing.T) {
	// |x-2| + |y+3| has an exact lattice zero at (2,-3), so the
	// StopAtZero variant exercises the mid-batch consumption cut.
	obj := func(x []float64) float64 {
		return math.Abs(x[0]-2) + math.Abs(x[1]+3)
	}
	batch := BatchFunc(func(xs [][]float64, out []float64) {
		for i, x := range xs {
			out[i] = obj(x)
		}
	})
	for _, be := range allMinimizers(t) {
		be := be
		for _, stop := range []bool{false, true} {
			name := be.Name()
			if stop {
				name += "/stopAtZero"
			}
			t.Run(name, func(t *testing.T) {
				mk := func(b BatchObjective) (Result, *Trace) {
					tr := &Trace{}
					r := be.Minimize(obj, 2, Config{
						Seed:       3,
						MaxEvals:   3000,
						Bounds:     []Bound{{Lo: -50, Hi: 50}, {Lo: -50, Hi: 50}},
						StopAtZero: stop,
						Trace:      tr,
						Batch:      b,
					})
					return r, tr
				}
				rs, ts := mk(nil)
				rb, tb := mk(batch)
				if rs.F != rb.F || rs.Evals != rb.Evals || rs.FoundZero != rb.FoundZero ||
					rs.Exhausted != rb.Exhausted || rs.Iterations != rb.Iterations {
					t.Fatalf("results diverge:\nserial %+v\nbatch  %+v", rs, rb)
				}
				for i := range rs.X {
					if math.Float64bits(rs.X[i]) != math.Float64bits(rb.X[i]) {
						t.Fatalf("X[%d] diverges: %v vs %v", i, rs.X, rb.X)
					}
				}
				if ts.Len() != tb.Len() {
					t.Fatalf("trace lengths diverge: %d vs %d", ts.Len(), tb.Len())
				}
				ss, sb := ts.Samples(), tb.Samples()
				for i := range ss {
					if ss[i].N != sb[i].N || math.Float64bits(ss[i].F) != math.Float64bits(sb[i].F) {
						t.Fatalf("trace sample %d diverges: %+v vs %+v", i, ss[i], sb[i])
					}
					for j := range ss[i].X {
						if math.Float64bits(ss[i].X[j]) != math.Float64bits(sb[i].X[j]) {
							t.Fatalf("trace sample %d input diverges: %v vs %v", i, ss[i].X, sb[i].X)
						}
					}
				}
			})
		}
	}
}

// TestBatchBudgetTruncation pins that a batch is truncated to the
// remaining evaluation budget before dispatch: the batch objective
// never sees more lanes than MaxEvals permits, and Evals never
// overshoots.
func TestBatchBudgetTruncation(t *testing.T) {
	const budget = 47 // not a multiple of any backend's natural batch size
	lanes := 0
	maxSeen := 0
	batch := BatchFunc(func(xs [][]float64, out []float64) {
		if len(xs) > maxSeen {
			maxSeen = len(xs)
		}
		for i, x := range xs {
			lanes++
			out[i] = 1 + x[0]*x[0]
		}
	})
	r := (&DifferentialEvolution{}).Minimize(func(x []float64) float64 {
		lanes++
		return 1 + x[0]*x[0]
	}, 2, Config{
		Seed:     1,
		MaxEvals: budget,
		Bounds:   []Bound{{Lo: -10, Hi: 10}, {Lo: -10, Hi: 10}},
		Batch:    batch,
	})
	if lanes != budget {
		t.Errorf("objective executed %d times under a budget of %d", lanes, budget)
	}
	if r.Evals != budget {
		t.Errorf("Evals = %d, want %d", r.Evals, budget)
	}
	if maxSeen > budget {
		t.Errorf("a single batch carried %d lanes, above the whole budget %d", maxSeen, budget)
	}
}

// TestParallelStartsBatchFactory pins the ParallelConfig.Batch plumbing:
// the factory is invoked once per executed start, its product is wired
// into each start's Config.Batch, and under StopAtZero the short-circuit
// wrapper stops dispatching real batch work for unconsumable starts.
func TestParallelStartsBatchFactory(t *testing.T) {
	const starts = 4
	obj := func(x []float64) float64 {
		return math.Abs(x[0] - 1.5)
	}
	built := make([]bool, starts)
	out := ParallelStarts(&DifferentialEvolution{}, func(s int) Objective {
		return obj
	}, 1, ParallelConfig{
		Starts:   starts,
		Workers:  1,
		MaxEvals: 200,
		Bounds:   []Bound{{Lo: -10, Hi: 10}},
		Batch: func(s int) BatchObjective {
			built[s] = true
			return BatchFunc(func(xs [][]float64, out []float64) {
				for i, x := range xs {
					out[i] = obj(x)
				}
			})
		},
	})
	for s := 0; s < starts; s++ {
		if !built[s] {
			t.Errorf("batch factory not invoked for start %d", s)
		}
		if out[s].Evals == 0 {
			t.Errorf("start %d performed no evaluations", s)
		}
	}

	// Serial (Workers:1, no batch) and batched runs consume identical
	// per-start streams, so the merged results must match exactly.
	ref := ParallelStarts(&DifferentialEvolution{}, func(s int) Objective {
		return obj
	}, 1, ParallelConfig{
		Starts:   starts,
		Workers:  1,
		MaxEvals: 200,
		Bounds:   []Bound{{Lo: -10, Hi: 10}},
	})
	for s := range out {
		if out[s].F != ref[s].F || out[s].Evals != ref[s].Evals || out[s].FoundZero != ref[s].FoundZero {
			t.Errorf("start %d diverges with batch factory: %+v vs %+v", s, out[s].Result, ref[s].Result)
		}
	}
}
