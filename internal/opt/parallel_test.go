package opt_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/opt"
)

// flatAbs has an exact-zero plateau [c-1, c+1], reachable by every
// backend, so FoundZero outcomes are exercised deterministically.
func flatAbs(c float64) opt.Objective {
	return func(x []float64) float64 {
		return math.Max(math.Abs(x[0]-c)-1, 0)
	}
}

// TestParallelStartsMatchesSerialBackend verifies that every executed
// start of the parallel driver reproduces a plain serial backend run
// with the same derived seed, bit for bit.
func TestParallelStartsMatchesSerialBackend(t *testing.T) {
	backend := &opt.Basinhopping{}
	const starts, seed, stride = 6, 42, 7919
	bounds := []opt.Bound{{Lo: -100, Hi: 100}}

	got := opt.ParallelStarts(backend, func(int) opt.Objective { return flatAbs(50) },
		1, opt.ParallelConfig{
			Starts: starts, Workers: 4, Seed: seed, SeedStride: stride,
			MaxEvals: 500, Bounds: bounds,
		})

	for s := 0; s < starts; s++ {
		want := backend.Minimize(flatAbs(50), 1, opt.Config{
			Seed: seed + int64(s)*stride, MaxEvals: 500, Bounds: bounds,
		})
		if got[s].Skipped {
			t.Fatalf("start %d skipped without StopAtZero", s)
		}
		if !reflect.DeepEqual(got[s].Result, want) {
			t.Errorf("start %d: parallel %+v != serial %+v", s, got[s].Result, want)
		}
	}
}

// TestParallelStartsWorkerInvariance verifies the core determinism
// contract: identical per-start results for every worker count.
func TestParallelStartsWorkerInvariance(t *testing.T) {
	run := func(workers int) []opt.StartResult {
		return opt.ParallelStarts(&opt.Basinhopping{}, func(int) opt.Objective { return flatAbs(9) },
			1, opt.ParallelConfig{
				Starts: 8, Workers: workers, Seed: 7, SeedStride: 1000003,
				MaxEvals: 400, Bounds: []opt.Bound{{Lo: -20, Hi: 20}},
				RecordTrace: true,
			})
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for s := range base {
			if !reflect.DeepEqual(got[s].Result, base[s].Result) {
				t.Errorf("workers=%d start %d: %+v != %+v", w, s, got[s].Result, base[s].Result)
			}
			if !reflect.DeepEqual(got[s].Trace.Samples(), base[s].Trace.Samples()) {
				t.Errorf("workers=%d start %d: traces differ", w, s)
			}
		}
	}
}

// TestParallelStartsDrain verifies the stop-at-zero contract: once the
// lowest accepted zero is known, every start at or below it has run,
// and the merged (serial-fold) outcome is worker-invariant.
func TestParallelStartsDrain(t *testing.T) {
	// Starts >= 3 see an objective that is zero everywhere; lower
	// starts see an unsatisfiable positive objective.
	factory := func(start int) opt.Objective {
		if start >= 3 {
			return func([]float64) float64 { return 0 }
		}
		return func(x []float64) float64 { return 1 + math.Abs(x[0]) }
	}
	for _, w := range []int{1, 4, 16} {
		got := opt.ParallelStarts(&opt.RandomSearch{}, factory, 1, opt.ParallelConfig{
			Starts: 16, Workers: w, Seed: 1, MaxEvals: 50,
			Bounds: []opt.Bound{{Lo: -1, Hi: 1}}, StopAtZero: true,
		})
		for s := 0; s <= 3; s++ {
			if got[s].Skipped {
				t.Fatalf("workers=%d: start %d skipped but is at or below the first zero", w, s)
			}
		}
		if !got[3].FoundZero || !got[3].ZeroAccepted {
			t.Fatalf("workers=%d: start 3 should find an accepted zero: %+v", w, got[3])
		}
		for s := 0; s < 3; s++ {
			if got[s].FoundZero {
				t.Errorf("workers=%d: start %d cannot find a zero", w, s)
			}
		}
	}
}

// TestParallelStartsAcceptGuard verifies that rejected zeros do not
// drain the queue: later starts still run and can supply the solution.
func TestParallelStartsAcceptGuard(t *testing.T) {
	zero := func(int) opt.Objective {
		return func([]float64) float64 { return 0 }
	}
	got := opt.ParallelStarts(&opt.RandomSearch{}, zero, 1, opt.ParallelConfig{
		Starts: 6, Workers: 3, Seed: 1, MaxEvals: 10,
		Bounds:     []opt.Bound{{Lo: -1, Hi: 1}},
		StopAtZero: true,
		Accept:     func(start int, _ opt.Result) bool { return start >= 2 },
	})
	for s := 0; s <= 2; s++ {
		if got[s].Skipped {
			t.Fatalf("start %d skipped; first accepted zero is at 2", s)
		}
	}
	if !got[2].ZeroAccepted {
		t.Fatal("start 2's zero should be accepted")
	}
	for s := 0; s < 2; s++ {
		if got[s].ZeroAccepted {
			t.Errorf("start %d's zero should be rejected by the guard", s)
		}
	}
}
