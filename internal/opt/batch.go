package opt

import "math"

// BatchObjective evaluates the objective at several candidate points in
// one call — the optimizer side of the batch evaluation contract. For
// every i, Eval must write to out[i] exactly the value the scalar
// objective would return for xs[i]; len(out) is always at least
// len(xs), and implementations must not retain either slice. Batch
// sizes are chosen by the backend (a DE generation, a simplex poll, a
// probe pool), so implementations that map batches onto fixed-width
// lane sweeps chunk internally.
type BatchObjective interface {
	Eval(xs [][]float64, out []float64)
}

// BatchFunc adapts an ordinary function to the BatchObjective
// interface.
type BatchFunc func(xs [][]float64, out []float64)

// Eval implements BatchObjective.
func (f BatchFunc) Eval(xs [][]float64, out []float64) { f(xs, out) }

// evalBatch samples the objective at up to len(xs) points, writing the
// sanitized values (NaN mapped to +Inf, as in eval) to out and
// returning how many leading entries were consumed. Bookkeeping —
// budget, trace, best point, stop-at-zero — is identical to the same
// sequence of scalar eval calls: the batch is truncated to the
// remaining budget before dispatch, and consumption stops at the first
// exact zero under StopAtZero. Entries at and past the returned count
// are unevaluated or unconsumed; callers must not read them.
//
// With cfg.Batch unset this degrades to a serial loop over eval, so
// backends submit their natural batches unconditionally and stay
// bit-identical to their pre-batch behavior. With cfg.Batch set, the
// whole truncated batch is dispatched in one Eval call; cancellation
// is checked once before the dispatch, never mid-batch, which is
// exactly the documented granularity: a context firing while a batch
// is in flight takes effect at the next batch boundary, and no
// objective dispatch of any kind happens after the cancellation has
// been observed.
func (e *evaluator) evalBatch(xs [][]float64, out []float64) int {
	if e.cfg.Batch == nil {
		n := 0
		for i, x := range xs {
			if e.done() {
				break
			}
			out[i] = e.eval(x)
			n++
		}
		return n
	}
	if e.done() {
		return 0
	}
	m := len(xs)
	if rem := e.max - e.evals; m > rem {
		m = rem
	}
	if m <= 0 {
		return 0
	}
	e.cfg.Batch.Eval(xs[:m], out[:m])
	n := 0
	for i := 0; i < m; i++ {
		e.evals++
		f := out[i]
		if math.IsNaN(f) {
			f = math.Inf(1)
		}
		if e.cfg.Trace != nil {
			e.cfg.Trace.record(xs[i], f)
		}
		if f < e.bestF || e.bestX == nil {
			e.bestF = f
			e.bestX = append(e.bestX[:0], xs[i]...)
		}
		out[i] = f
		n++
		if f == 0 && e.cfg.StopAtZero {
			e.hitZero = true
			break
		}
	}
	return n
}
