// Package journal is a crash-safe, append-only record log: the
// durability substrate under the fpserve /v1 job table. Records are
// framed with a length + CRC32C header, so replay can detect a torn
// final record (a crash mid-write) and truncate the log back to its
// last durable frame. Appends are fsync-batched (group commit): callers
// choose per record whether to wait for durability or to ride the next
// batched sync. When the log grows past a threshold the owner compacts
// it: the current logical state is written to a snapshot file
// (atomically, via rename) and the log restarts empty.
//
// The package is storage only — it knows nothing about jobs. The
// pipeline layer defines the record vocabulary and the replay
// semantics; see pipeline/durable.go.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record is one journal entry. Type and Job are indexed by the replayer;
// Data is an opaque payload owned by the record vocabulary of the layer
// above.
type Record struct {
	// Type names the record kind ("submit", "result", ...).
	Type string `json:"type"`
	// Job scopes the record to a job ID, when it has one.
	Job string `json:"job,omitempty"`
	// Data is the payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// TypeShutdown is the clean-shutdown marker: appended (durably) as the
// final act of a graceful stop, so the next boot can tell a clean
// restart from a crash. Only a marker in final position counts — a
// marker mid-log is a previous generation's and is ignored.
const TypeShutdown = "shutdown"

// Defaults.
const (
	// DefaultSyncEvery is the group-commit window: a non-durable append
	// is fsynced at most this long after it was written.
	DefaultSyncEvery = 5 * time.Millisecond
	// DefaultCompactBytes is the log size that triggers compaction.
	DefaultCompactBytes = 4 << 20
)

// Log and snapshot file names within a journal directory.
const (
	logName      = "journal.log"
	snapshotName = "snapshot.log"
	tmpName      = "snapshot.tmp"
)

// ErrClosed is returned by operations on a closed (or crash-simulated)
// journal.
var ErrClosed = errors.New("journal: closed")

// frame layout: 4-byte little-endian payload length, 4-byte CRC32C of
// the payload, payload bytes.
const frameHeader = 8

// maxRecordBytes guards replay against a corrupt length field claiming
// a multi-gigabyte frame.
const maxRecordBytes = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a journal.
type Options struct {
	// SyncEvery is the group-commit window (0 = DefaultSyncEvery).
	SyncEvery time.Duration
	// CompactBytes is the log size past which ShouldCompact reports
	// true (0 = DefaultCompactBytes; negative disables).
	CompactBytes int64
	// Fail injects faults; nil runs clean.
	Fail *Failpoints
}

func (o Options) syncEvery() time.Duration {
	if o.SyncEvery > 0 {
		return o.SyncEvery
	}
	return DefaultSyncEvery
}

func (o Options) compactBytes() int64 {
	switch {
	case o.CompactBytes > 0:
		return o.CompactBytes
	case o.CompactBytes < 0:
		return 1 << 62
	}
	return DefaultCompactBytes
}

// BootInfo describes what Open found.
type BootInfo struct {
	// Records is the replayed sequence: snapshot records first, then
	// log records, in append order.
	Records []Record
	// CleanShutdown reports that the log ended with a shutdown marker —
	// the previous process exited gracefully. False means crash (or a
	// fresh directory).
	CleanShutdown bool
	// TruncatedBytes is the size of the torn/corrupt tail dropped from
	// the log at open (0 on a clean log).
	TruncatedBytes int64
	// SnapshotRecords counts how many of Records came from the
	// snapshot.
	SnapshotRecords int
}

// Journal is an open journal directory. Methods are safe for
// concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu        sync.Mutex
	log       *os.File
	logSize   int64 // bytes in the log file (all durable or pending)
	snapSize  int64 // bytes in the snapshot file
	unsynced  int64 // bytes written but not yet fsynced
	syncTimer *time.Timer
	closed    bool
	syncs     int64
	compacts  int64
}

// Open opens (creating if needed) the journal in dir and replays it:
// snapshot first, then the log, truncating any torn tail back to the
// last durable frame so subsequent appends extend a valid log.
// LogPath returns the record log's path under dir — for harnesses that
// simulate crashes by truncating or copying the raw log.
func LogPath(dir string) string { return filepath.Join(dir, logName) }

func Open(dir string, o Options) (*Journal, BootInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, BootInfo{}, fmt.Errorf("journal: %w", err)
	}
	// A crash between snapshot-write and rename leaves snapshot.tmp:
	// never trust it, the durable snapshot (if any) is still complete.
	os.Remove(filepath.Join(dir, tmpName))

	var info BootInfo
	snapRecs, _, err := readAll(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil, BootInfo{}, fmt.Errorf("journal: snapshot: %w", err)
	}
	info.Records = append(info.Records, snapRecs...)
	info.SnapshotRecords = len(snapRecs)

	logPath := filepath.Join(dir, logName)
	logRecs, good, err := readAll(logPath)
	if err != nil {
		return nil, BootInfo{}, fmt.Errorf("journal: log: %w", err)
	}
	info.Records = append(info.Records, logRecs...)
	if n := len(logRecs); n > 0 && logRecs[n-1].Type == TypeShutdown {
		info.CleanShutdown = true
	}

	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, BootInfo{}, fmt.Errorf("journal: %w", err)
	}
	if st, err := f.Stat(); err == nil && st.Size() > good {
		// Torn tail: a record was mid-write when the process died.
		// Truncate back to the last whole frame so the next append
		// starts a valid one.
		info.TruncatedBytes = st.Size() - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, BootInfo{}, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, BootInfo{}, fmt.Errorf("journal: %w", err)
	}

	j := &Journal{dir: dir, opts: o, log: f, logSize: good}
	if st, err := os.Stat(filepath.Join(dir, snapshotName)); err == nil {
		j.snapSize = st.Size()
	}
	return j, info, nil
}

// readAll decodes every whole frame of path, returning the records and
// the byte offset of the end of the last good frame. A missing file is
// an empty log. Decoding stops — without error — at the first torn or
// corrupt frame: everything after a bad CRC is untrusted.
func readAll(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var recs []Record
	var off int64
	for {
		rec, n, ok := decodeFrame(data[off:])
		if !ok {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += n
	}
}

// decodeFrame decodes one frame from b, reporting the record, its total
// framed length, and whether the frame was whole and its CRC held.
func decodeFrame(b []byte) (Record, int64, bool) {
	if len(b) < frameHeader {
		return Record{}, 0, false
	}
	size := binary.LittleEndian.Uint32(b)
	if size == 0 || size > maxRecordBytes || frameHeader+int(size) > len(b) {
		return Record{}, 0, false
	}
	sum := binary.LittleEndian.Uint32(b[4:])
	payload := b[frameHeader : frameHeader+int(size)]
	if crc32.Checksum(payload, crcTable) != sum {
		return Record{}, 0, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, false
	}
	return rec, frameHeader + int64(size), true
}

// encodeFrame frames one record.
func encodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeader:], payload)
	return buf, nil
}

// Append writes one record to the log. With durable set it returns only
// after the record (and every earlier pending one — appends never sync
// out of order) is fsynced; otherwise the record rides the next group
// commit, at most SyncEvery later. Injected sync failures surface as
// transient errors (IsTransient) — the caller retries; the write itself
// is already in the log, so a retried sync never duplicates a record.
func (j *Journal) Append(rec Record, durable bool) error {
	frame, err := encodeFrame(rec)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if fp := j.opts.Fail; fp != nil {
		if lim, dead := fp.writeCut(j.logSize, int64(len(frame))); dead {
			// Simulated SIGKILL mid-append: the frame is cut at the
			// configured offset (possibly torn mid-record) and the
			// journal dies, exactly as a real crash would leave it.
			if lim > 0 {
				j.log.Write(frame[:lim])
				j.log.Sync()
			}
			j.closed = true
			return ErrClosed
		}
	}
	if _, err := j.log.Write(frame); err != nil {
		return &transientError{op: "append", err: err}
	}
	j.logSize += int64(len(frame))
	j.unsynced += int64(len(frame))
	if durable {
		return j.syncLocked()
	}
	if j.syncTimer == nil {
		j.syncTimer = time.AfterFunc(j.opts.syncEvery(), func() {
			j.mu.Lock()
			defer j.mu.Unlock()
			if !j.closed {
				j.syncLocked() // best effort; a durable append retries
			}
		})
	}
	return nil
}

// Sync forces the group commit: every pending append becomes durable.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.syncTimer != nil {
		j.syncTimer.Stop()
		j.syncTimer = nil
	}
	if j.unsynced == 0 {
		return nil
	}
	if fp := j.opts.Fail; fp != nil {
		if err := fp.syncErr(); err != nil {
			return err
		}
	}
	if err := j.log.Sync(); err != nil {
		return &transientError{op: "fsync", err: err}
	}
	j.unsynced = 0
	j.syncs++
	return nil
}

// Backlog reports the bytes appended but not yet fsynced — the
// admission-control watermark for journal pressure.
func (j *Journal) Backlog() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.unsynced
}

// LogSize reports the current log file size in bytes.
func (j *Journal) LogSize() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.logSize
}

// ShouldCompact reports that the log has outgrown the compaction
// threshold.
func (j *Journal) ShouldCompact() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.logSize > j.opts.compactBytes()
}

// Stats is the journal's counter snapshot.
type Stats struct {
	LogBytes      int64 `json:"logBytes"`
	SnapshotBytes int64 `json:"snapshotBytes"`
	BacklogBytes  int64 `json:"backlogBytes"`
	Syncs         int64 `json:"syncs"`
	Compactions   int64 `json:"compactions"`
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		LogBytes:      j.logSize,
		SnapshotBytes: j.snapSize,
		BacklogBytes:  j.unsynced,
		Syncs:         j.syncs,
		Compactions:   j.compacts,
	}
}

// Compact replaces the journal's durable content with state: the
// records are written to a fresh snapshot (fsynced, then atomically
// renamed over the old one) and the log restarts empty. A crash at any
// point leaves either the old snapshot+log or the new snapshot — never
// a half-state: the rename is the commit point, and the log is only
// truncated after it.
func (j *Journal) Compact(state []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	// The log may hold unsynced frames that the snapshot supersedes;
	// sync first so a mid-compact crash still replays a complete log.
	if err := j.syncLocked(); err != nil {
		return err
	}

	tmp := filepath.Join(j.dir, tmpName)
	f, err := os.Create(tmp)
	if err != nil {
		return &transientError{op: "compact", err: err}
	}
	var snapSize int64
	for _, rec := range state {
		frame, err := encodeFrame(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("journal: encode snapshot: %w", err)
		}
		if _, err := f.Write(frame); err != nil {
			f.Close()
			os.Remove(tmp)
			return &transientError{op: "compact", err: err}
		}
		snapSize += int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return &transientError{op: "compact", err: err}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return &transientError{op: "compact", err: err}
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return &transientError{op: "compact", err: err}
	}
	// Commit point passed: the snapshot now carries the state; drop the
	// log.
	if err := j.log.Truncate(0); err != nil {
		return &transientError{op: "compact", err: err}
	}
	if _, err := j.log.Seek(0, io.SeekStart); err != nil {
		return &transientError{op: "compact", err: err}
	}
	j.logSize, j.unsynced, j.snapSize = 0, 0, snapSize
	j.compacts++
	return nil
}

// CleanShutdown durably appends the shutdown marker. It is the final
// append of a graceful stop; Close follows.
func (j *Journal) CleanShutdown() error {
	return j.Append(Record{Type: TypeShutdown}, true)
}

// Close syncs pending appends and closes the log.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	if cerr := j.log.Close(); err == nil {
		err = cerr
	}
	return err
}
