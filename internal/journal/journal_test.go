package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func rec(typ, job string, data string) Record {
	var raw json.RawMessage
	if data != "" {
		raw = json.RawMessage(data)
	}
	return Record{Type: typ, Job: job, Data: raw}
}

func open(t *testing.T, dir string, o Options) (*Journal, BootInfo) {
	t.Helper()
	j, info, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j, info
}

// TestAppendReplayRoundTrip: records written across durable and batched
// appends replay in order after reopen.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, info := open(t, dir, Options{})
	if len(info.Records) != 0 || info.CleanShutdown {
		t.Fatalf("fresh dir boot: %+v", info)
	}
	want := []Record{
		rec("submit", "job-1", `{"n":2}`),
		rec("result", "job-1", `{"index":0}`),
		rec("result", "job-1", `{"index":1}`),
		rec("terminal", "job-1", `{"status":"completed"}`),
	}
	for i, r := range want {
		if err := j.Append(r, i == 0 || i == len(want)-1); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, info2 := open(t, dir, Options{})
	if info2.CleanShutdown {
		t.Error("no marker was written, but CleanShutdown = true")
	}
	if info2.TruncatedBytes != 0 {
		t.Errorf("clean log reports %d torn bytes", info2.TruncatedBytes)
	}
	if len(info2.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(info2.Records), len(want))
	}
	for i, r := range info2.Records {
		if r.Type != want[i].Type || r.Job != want[i].Job || string(r.Data) != string(want[i].Data) {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

// TestTornTailTruncated: a crash mid-write leaves a partial final
// frame; replay must keep the whole prefix, drop the tail, and truncate
// the file so subsequent appends extend a valid log.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := j.Append(rec("result", "job-1", fmt.Sprintf(`{"index":%d}`, i)), true); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: drop its last 3 bytes.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, info := open(t, dir, Options{})
	if len(info.Records) != 4 {
		t.Fatalf("replayed %d records through a torn tail, want 4", len(info.Records))
	}
	if info.TruncatedBytes == 0 {
		t.Error("torn tail not reported")
	}
	// The file itself must be truncated back to the durable prefix...
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(len(data))-3 {
		t.Errorf("torn tail not physically truncated: size %d", st.Size())
	}
	// ...so that appends after recovery frame correctly.
	if err := j2.Append(rec("result", "job-1", `{"index":4}`), true); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, info3 := open(t, dir, Options{})
	if len(info3.Records) != 5 {
		t.Fatalf("after post-recovery append: %d records, want 5", len(info3.Records))
	}
	if got := string(info3.Records[4].Data); got != `{"index":4}` {
		t.Errorf("final record %s", got)
	}
}

// TestCorruptFrameStopsReplay: a flipped payload byte fails the CRC;
// replay keeps only the prefix before it.
func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, dir, Options{})
	var off int64
	for i := 0; i < 4; i++ {
		if err := j.Append(rec("result", "j", fmt.Sprintf(`{"i":%d}`, i)), true); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			off = j.LogSize() // corrupt inside record 2
		}
	}
	j.Close()
	path := filepath.Join(dir, logName)
	data, _ := os.ReadFile(path)
	data[off+frameHeader+2] ^= 0xff
	os.WriteFile(path, data, 0o644)

	_, info := open(t, dir, Options{})
	if len(info.Records) != 2 {
		t.Fatalf("replayed %d records past a corrupt frame, want 2", len(info.Records))
	}
}

// TestSnapshotCompactRoundTrip: compaction moves state to the snapshot,
// empties the log, and reopen replays snapshot + later appends.
func TestSnapshotCompactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, dir, Options{CompactBytes: 1})
	for i := 0; i < 10; i++ {
		if err := j.Append(rec("result", "job-1", fmt.Sprintf(`{"i":%d}`, i)), false); err != nil {
			t.Fatal(err)
		}
	}
	if !j.ShouldCompact() {
		t.Fatal("log over threshold but ShouldCompact is false")
	}
	state := []Record{
		rec("submit", "job-1", `{"n":1}`),
		rec("terminal", "job-1", `{"status":"completed"}`),
	}
	if err := j.Compact(state); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if j.LogSize() != 0 {
		t.Errorf("log size after compact = %d", j.LogSize())
	}
	if err := j.Append(rec("submit", "job-2", `{"n":1}`), true); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Compactions != 1 || st.SnapshotBytes == 0 {
		t.Errorf("stats after compact: %+v", st)
	}
	j.Close()

	_, info := open(t, dir, Options{})
	if info.SnapshotRecords != 2 || len(info.Records) != 3 {
		t.Fatalf("reopen after compact: %d snapshot records, %d total (want 2, 3)",
			info.SnapshotRecords, len(info.Records))
	}
	if info.Records[2].Job != "job-2" {
		t.Errorf("log record after snapshot: %+v", info.Records[2])
	}
}

// TestCleanShutdownMarker: the marker is only honored in final
// position — a marker mid-log (from a previous clean stop) does not
// make the next crash look clean.
func TestCleanShutdownMarker(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, dir, Options{})
	j.Append(rec("submit", "job-1", `{"n":1}`), true)
	if err := j.CleanShutdown(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, info := open(t, dir, Options{})
	if !info.CleanShutdown {
		t.Fatal("trailing marker not detected")
	}
	// The next generation appends and then "crashes" (no marker).
	j2.Append(rec("submit", "job-2", `{"n":1}`), true)
	j2.Close()
	_, info3 := open(t, dir, Options{})
	if info3.CleanShutdown {
		t.Error("mid-log marker from a previous generation treated as clean shutdown")
	}
}

// TestSyncFailpointTransient: injected fsync failures are transient and
// a retried sync lands without duplicating the record.
func TestSyncFailpointTransient(t *testing.T) {
	dir := t.TempDir()
	fp := NewFailpoints(1)
	fp.SyncFailEvery = 1 // every fsync fails...
	j, _ := open(t, dir, Options{Fail: fp})
	err := j.Append(rec("submit", "job-1", `{"n":1}`), true)
	if err == nil {
		t.Fatal("injected fsync failure did not surface")
	}
	if !IsTransient(err) {
		t.Fatalf("injected failure %v is not transient", err)
	}
	if IsTransient(ErrClosed) {
		t.Error("ErrClosed must not be transient")
	}
	fp.SyncFailEvery = 0 // ...until the fault clears
	if err := j.Sync(); err != nil {
		t.Fatalf("retried sync: %v", err)
	}
	j.Close()
	_, info := open(t, dir, Options{})
	if len(info.Records) != 1 {
		t.Fatalf("retried sync duplicated or lost the record: %d records", len(info.Records))
	}
}

// TestCrashAtOffsetTearsFinalRecord: the crash failpoint cuts the
// append crossing the offset mid-frame; reopen recovers the durable
// prefix and truncates the torn bytes.
func TestCrashAtOffsetTearsFinalRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, dir, Options{})
	j.Append(rec("submit", "job-1", `{"n":3}`), true)
	cut := j.LogSize() + 5 // mid-way into the next frame
	j.Close()

	fp := NewFailpoints(1)
	fp.CrashAtOffset = cut
	j2, _ := open(t, dir, Options{Fail: fp})
	j2.Append(rec("result", "job-1", `{"index":0}`), false) // first frame fits? no — crosses
	// Every operation after the cut reports the journal dead.
	if err := j2.Append(rec("result", "job-1", `{"index":1}`), false); err != ErrClosed {
		t.Fatalf("append after simulated crash: %v, want ErrClosed", err)
	}

	_, info := open(t, dir, Options{})
	if len(info.Records) != 1 || info.Records[0].Type != "submit" {
		t.Fatalf("recovered %d records, want the 1 durable submit", len(info.Records))
	}
	if info.TruncatedBytes == 0 {
		t.Error("torn frame from the crash cut was not truncated")
	}
}

// TestGroupCommitBacklog: batched appends accumulate in the backlog and
// the group-commit timer drains it without an explicit Sync.
func TestGroupCommitBacklog(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, dir, Options{SyncEvery: 10 * time.Millisecond})
	for i := 0; i < 3; i++ {
		if err := j.Append(rec("result", "j", fmt.Sprintf(`{"i":%d}`, i)), false); err != nil {
			t.Fatal(err)
		}
	}
	if j.Backlog() == 0 {
		t.Fatal("batched appends should be pending before the group commit")
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Backlog() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("group-commit timer never drained the backlog")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := j.Stats(); st.Syncs == 0 {
		t.Errorf("stats: %+v", st)
	}
}
