package journal

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// transientError marks an injected or I/O-level journal failure that a
// caller should retry with backoff: the journal itself is still
// healthy, the operation just didn't land this time.
type transientError struct {
	op  string
	err error
}

func (e *transientError) Error() string { return "journal: " + e.op + ": " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks the error as retryable for IsTransient (and for
// pipeline.Retryable, which recognizes the same interface).
func (e *transientError) Transient() bool { return true }

// IsTransient reports whether err is a retry-with-backoff failure (as
// opposed to a permanent one like ErrClosed or a corrupt record).
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// injectedSyncError is the failpoint-produced fsync failure.
type injectedSyncError struct{ n int64 }

func (e *injectedSyncError) Error() string {
	return fmt.Sprintf("injected fsync failure #%d", e.n)
}
func (e *injectedSyncError) Transient() bool { return true }

// Failpoints injects deterministic faults into a journal: fsync
// failures (transient — the caller's retry path is under test), and a
// crash cut that tears or drops the append crossing a byte offset (the
// SIGKILL-between-records and torn-final-record cases). All knobs are
// driven by one seed so a failing campaign replays exactly.
type Failpoints struct {
	mu   sync.Mutex
	rng  *rand.Rand
	sync int64

	// SyncFailEvery makes every Nth fsync fail with a transient
	// injected error (0 disables). The write is already in the log, so
	// a retried sync is safe.
	SyncFailEvery int64
	// SyncFailProb makes each fsync fail with this probability,
	// deterministically in the seed (0 disables).
	SyncFailProb float64
	// CrashAtOffset, when positive, kills the journal at that log byte
	// offset: the append that would cross it is cut there — possibly
	// mid-frame, leaving a torn record — and every later operation
	// returns ErrClosed, as if the process had been SIGKILLed.
	CrashAtOffset int64
}

// NewFailpoints returns a failpoint set whose probabilistic knobs draw
// from seed.
func NewFailpoints(seed int64) *Failpoints {
	return &Failpoints{rng: rand.New(rand.NewSource(seed))}
}

// syncErr reports the injected failure for the next fsync, if any.
func (fp *Failpoints) syncErr() error {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.sync++
	if fp.SyncFailEvery > 0 && fp.sync%fp.SyncFailEvery == 0 {
		return &injectedSyncError{n: fp.sync}
	}
	if fp.SyncFailProb > 0 && fp.rng != nil && fp.rng.Float64() < fp.SyncFailProb {
		return &injectedSyncError{n: fp.sync}
	}
	return nil
}

// writeCut reports how much of an append at offset off (length n) may
// be written before the simulated crash, and whether the crash fires.
func (fp *Failpoints) writeCut(off, n int64) (limit int64, dead bool) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.CrashAtOffset <= 0 || off+n <= fp.CrashAtOffset {
		return 0, false
	}
	limit = fp.CrashAtOffset - off
	if limit < 0 {
		limit = 0
	}
	return limit, true
}
