package paper

import (
	"fmt"
	"strings"

	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/progs"
	"repro/internal/rt"
)

// CurvePoint is one point of a weak-distance graph (Figures 3(b), 4(b)).
type CurvePoint struct {
	X, W float64
}

// SamplePoint is one MO sample (Figures 3(c), 4(c)): the n-th sampled
// input.
type SamplePoint struct {
	N int
	X float64
}

// FigureResult carries one weak-distance figure: the function graph and
// the sampling sequence.
type FigureResult struct {
	Name    string
	Curve   []CurvePoint
	Samples []SamplePoint
	// ZeroSamples counts samples that hit W = 0.
	ZeroSamples int
}

// Fig3 regenerates Figure 3: the boundary weak distance of the Fig. 2
// program, its graph on [-6, 5], and a Basinhopping sampling sequence.
func Fig3(seed int64, evals int) *FigureResult {
	p := progs.Fig2()
	return figure("fig3-boundary", p, p.WeakDistance(&instrument.Boundary{}), seed, evals)
}

// Fig4 regenerates Figure 4: the path weak distance targeting both
// branches (solution space [-3, 1]).
func Fig4(seed int64, evals int) *FigureResult {
	p := progs.Fig2()
	w := p.WeakDistance(&instrument.Path{Target: []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchY, Taken: true},
	}})
	return figure("fig4-path", p, w, seed, evals)
}

func figure(name string, p *rt.Program, w func([]float64) float64, seed int64, evals int) *FigureResult {
	if evals <= 0 {
		evals = 4000
	}
	res := &FigureResult{Name: name}
	// Grid by exact division so landmark points (-3, 1, 2) are hit
	// exactly rather than approached by accumulated 0.05 steps.
	for i := 0; i <= 220; i++ {
		x := float64(i-120) / 20
		res.Curve = append(res.Curve, CurvePoint{X: x, W: w([]float64{x})})
	}
	tr := &opt.Trace{}
	(&opt.Basinhopping{}).Minimize(opt.Objective(w), 1, opt.Config{
		Seed:     seed,
		MaxEvals: evals,
		Bounds:   []opt.Bound{{Lo: -10, Hi: 10}},
		Trace:    tr,
	})
	for _, s := range tr.Samples() {
		res.Samples = append(res.Samples, SamplePoint{N: s.N, X: s.X[0]})
		if s.F == 0 {
			res.ZeroSamples++
		}
	}
	return res
}

// Format renders the figure as two text series.
func (f *FigureResult) Format() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%s: weak-distance graph (x, W):\n", f.Name))
	for i, c := range f.Curve {
		if i%20 == 0 { // decimate for readability
			sb.WriteString(fmt.Sprintf("  %8.3f  %12.6g\n", c.X, c.W))
		}
	}
	sb.WriteString(fmt.Sprintf("%s: MO sampling (n, x_n), %d samples, %d at W=0:\n",
		f.Name, len(f.Samples), f.ZeroSamples))
	step := len(f.Samples)/40 + 1
	for i := 0; i < len(f.Samples); i += step {
		s := f.Samples[i]
		sb.WriteString(fmt.Sprintf("  %6d  %14.8g\n", s.N, s.X))
	}
	return sb.String()
}

// Fig7Result is the characteristic-function ablation (§5.3, Fig. 7):
// the same boundary problem solved with the graded multiplicative weak
// distance versus the flat 0/1 characteristic function.
type Fig7Result struct {
	// GradedEvals / GradedFound: evaluations until the first zero with
	// the graded weak distance.
	GradedEvals int
	GradedFound bool
	// FlatEvals / FlatFound: same with the characteristic function
	// (degenerates to random testing; expected not to find within
	// budget).
	FlatEvals int
	FlatFound bool
	Budget    int
}

// Fig7 runs the ablation.
func Fig7(seed int64, budget int) *Fig7Result {
	if budget <= 0 {
		budget = 40000
	}
	p := progs.Fig2()
	res := &Fig7Result{Budget: budget}

	run := func(mon rt.Monitor) (int, bool) {
		cfg := opt.Config{
			Seed:       seed,
			MaxEvals:   budget,
			Bounds:     []opt.Bound{{Lo: -100, Hi: 100}},
			StopAtZero: true,
		}
		r := (&opt.Basinhopping{}).Minimize(opt.Objective(p.WeakDistance(mon)), 1, cfg)
		return r.Evals, r.FoundZero
	}
	res.GradedEvals, res.GradedFound = run(&instrument.Boundary{})
	res.FlatEvals, res.FlatFound = run(&instrument.Characteristic{})
	return res
}

// Format renders the ablation outcome.
func (f *Fig7Result) Format() string {
	verdict := func(evals int, found bool) string {
		if found {
			return fmt.Sprintf("zero after %d evaluations", evals)
		}
		return fmt.Sprintf("NOT FOUND within %d evaluations", evals)
	}
	return fmt.Sprintf(`Fig. 7 ablation: graded vs characteristic weak distance (budget %d).
  graded  |a-b| distance:   %s
  flat    0/1 distance:     %s
The flat weak distance satisfies Def. 3.1 but carries no gradient;
minimizing it degenerates into random testing (Limitation 3).
`, f.Budget, verdict(f.GradedEvals, f.GradedFound), verdict(f.FlatEvals, f.FlatFound))
}
