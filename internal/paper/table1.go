// Package paper regenerates every table and figure of the paper's
// evaluation (§6) from this repository's implementations. Each
// experiment returns structured data plus a Format method rendering a
// paper-style text table; cmd/paperrepro prints them and bench_test.go
// measures them.
package paper

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/instrument"
	"repro/internal/opt"
	"repro/internal/progs"
)

// Table1Row is one backend × weak-distance cell pair of Table 1.
type Table1Row struct {
	Backend string
	// BoundaryMin / PathMin are the best weak-distance values found.
	BoundaryMin float64
	PathMin     float64
	// BoundaryZeros lists the distinct boundary values found (x*
	// column); PathZeros the distinct path solutions, summarized by
	// their range.
	BoundaryZeros []float64
	PathZeros     []float64
}

// Table1Result is the §6.1 sanity check: three MO backends applied to
// the boundary and path weak distances of the Fig. 2 program.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the experiment. Budgets are per backend and weak
// distance; seeds fix the sampling.
func Table1(seed int64, evals int) *Table1Result {
	if evals <= 0 {
		evals = 60000
	}
	p := progs.Fig2()
	backends := []opt.Minimizer{
		&opt.Basinhopping{},
		&opt.DifferentialEvolution{InitSpan: 100},
		&opt.Powell{},
	}
	pathTarget := []instrument.Decision{
		{Site: progs.Fig2BranchX, Taken: true},
		{Site: progs.Fig2BranchY, Taken: true},
	}

	res := &Table1Result{}
	for bi, backend := range backends {
		row := Table1Row{Backend: backend.Name()}

		// Boundary value analysis weak distance.
		row.BoundaryMin, row.BoundaryZeros = collectZeros(
			backend, p.WeakDistance(&instrument.Boundary{}),
			seed+int64(bi)*101, evals)

		// Path reachability weak distance.
		row.PathMin, row.PathZeros = collectZeros(
			backend, p.WeakDistance(&instrument.Path{Target: pathTarget}),
			seed+int64(bi)*101+50, evals)

		res.Rows = append(res.Rows, row)
	}
	return res
}

// collectZeros runs several restarts of the backend, returning the best
// minimum and the distinct zero points found (capped).
func collectZeros(backend opt.Minimizer, w func([]float64) float64, seed int64, evals int) (float64, []float64) {
	const starts = 12
	minW := math.Inf(1)
	zeroSet := map[float64]bool{}
	for s := 0; s < starts; s++ {
		tr := &opt.Trace{}
		cfg := opt.Config{
			Seed:     seed + int64(s)*9973,
			MaxEvals: evals / starts,
			Bounds:   []opt.Bound{{Lo: -100, Hi: 100}},
			Trace:    tr,
		}
		r := backend.Minimize(opt.Objective(w), 1, cfg)
		if r.F < minW {
			minW = r.F
		}
		for _, z := range tr.Zeros() {
			zeroSet[z.X[0]] = true
		}
	}
	zeros := make([]float64, 0, len(zeroSet))
	for z := range zeroSet {
		zeros = append(zeros, z)
	}
	sort.Float64s(zeros)
	return minW, zeros
}

// Format renders the table in the paper's layout.
func (t *Table1Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Table 1. Different MO backends applied on two weak distances.\n")
	sb.WriteString(fmt.Sprintf("%-24s %-14s %-34s %-14s %s\n",
		"", "BVA W*", "BVA x*", "Path W*", "Path x*"))
	for _, r := range t.Rows {
		sb.WriteString(fmt.Sprintf("%-24s %-14.6g %-34s %-14.6g %s\n",
			r.Backend,
			r.BoundaryMin, summarizeZeros(r.BoundaryZeros, 4),
			r.PathMin, summarizeRange(r.PathZeros)))
	}
	return sb.String()
}

// summarizeZeros lists up to n distinct zeros.
func summarizeZeros(zs []float64, n int) string {
	if len(zs) == 0 {
		return "NA"
	}
	shown := make([]string, 0, n+1)
	for i, z := range dedupeInteresting(zs) {
		if i >= n {
			shown = append(shown, "…")
			break
		}
		shown = append(shown, fmt.Sprintf("%.17g", z))
	}
	return strings.Join(shown, ", ")
}

// dedupeInteresting prefers "landmark" zeros (integers and near-1
// values) so the paper's -3, 1, 2, 0.99…9 show first.
func dedupeInteresting(zs []float64) []float64 {
	var landmarks, rest []float64
	for _, z := range zs {
		if z == math.Trunc(z) || (z > 0.99 && z < 1) {
			landmarks = append(landmarks, z)
		} else {
			rest = append(rest, z)
		}
	}
	return append(landmarks, rest...)
}

// summarizeRange renders a zero set as its covering interval.
func summarizeRange(zs []float64) string {
	if len(zs) == 0 {
		return "NA"
	}
	return fmt.Sprintf("%d zeros in [%.4g, %.4g]", len(zs), zs[0], zs[len(zs)-1])
}
