package paper

// The §6.3 study over the lifted corpus: the same overflow pipeline,
// but each benchmark program is lifted from the real GSL Go sources by
// the Go frontend (internal/gofront) instead of being a hand-curated
// interpreter port. paperrepro -lifted selects it. The point is the
// cross-check: findings from the lifted programs replay against the
// same native evaluators, the same known bugs must manifest, and the
// paper's airy Bug 1 must reproduce through the lifted VM itself.

import (
	"fmt"
	"math"

	"repro/internal/gofront"
	"repro/internal/gsl/lift"
	"repro/internal/interp"
)

// liftedEntry maps each curated benchmark File to the corpus function
// the frontend analyzes in its place.
var liftedEntry = map[string]string{
	"bessel": "besselKnuScaledAsympxVal",
	"hyperg": "hyperg2F0Val",
	"airy":   "airyAiVal",
}

// liftedInterp compiles the combined corpus through the Go frontend.
func liftedInterp() (*interp.Interp, error) {
	mod, err := gofront.CompileSource(gofront.LangGo, "gsl_lift.go", lift.CombinedSource())
	if err != nil {
		return nil, fmt.Errorf("lifting the GSL corpus: %w", err)
	}
	return interp.New(mod), nil
}

// GSLLiftedBenchmarks returns the §6.3 benchmarks with every Program
// replaced by its Go-frontend lift of the embedded corpus. The Eval
// side — the concrete GSL-convention evaluator driving inconsistency
// replay and known-bug replay — is shared with the curated study, so
// the lifted programs' findings are judged by the same oracle.
func GSLLiftedBenchmarks() ([]GSLBenchmark, error) {
	it, err := liftedInterp()
	if err != nil {
		return nil, err
	}
	bs := GSLBenchmarks()
	for i := range bs {
		p, err := it.Program(liftedEntry[bs[i].File])
		if err != nil {
			return nil, err
		}
		if p.Dim != bs[i].Program.Dim {
			return nil, fmt.Errorf("lifted %s has dim %d, curated %d",
				liftedEntry[bs[i].File], p.Dim, bs[i].Program.Dim)
		}
		bs[i].Program = p
		bs[i].Function += " (lifted)"
	}
	return bs, nil
}

// VerifyLiftedBug1 reproduces the paper's airy Bug 1 through the Go
// frontend: the lifted airyModPhaseModErr must return +Inf at
// lift.Bug1Input under the VM, exactly as the natively compiled corpus
// does. A finite result would mean the lift changed the arithmetic.
func VerifyLiftedBug1() error {
	it, err := liftedInterp()
	if err != nil {
		return err
	}
	got, err := it.Run("airyModPhaseModErr", []float64{lift.Bug1Input})
	if err != nil {
		return err
	}
	if !math.IsInf(got, 1) {
		return fmt.Errorf("lifted airyModPhaseModErr(%v) = %g, want +Inf (Bug 1)", lift.Bug1Input, got)
	}
	return nil
}

// GSLStudyLiftedWorkers runs the full §6.3 pipeline over the lifted
// benchmarks, after cross-checking Bug 1 through the lifted VM. The
// result renders with the frontend's positional op labels in Table 4.
func GSLStudyLiftedWorkers(seed int64, evalsPerRound, workers int) (*GSLStudyResult, error) {
	bs, err := GSLLiftedBenchmarks()
	if err != nil {
		return nil, err
	}
	if err := VerifyLiftedBug1(); err != nil {
		return nil, err
	}
	res := gslStudyOver(bs, seed, evalsPerRound, workers)
	res.Lifted = true
	return res, nil
}
