package paper

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/analysis"
	"repro/internal/gsl"
	"repro/internal/rt"
)

// GSLBenchmark bundles one §6.3 benchmark: the instrumented program for
// Algorithm 3 and the concrete evaluator for inconsistency replay.
type GSLBenchmark struct {
	File     string
	Function string
	Program  *rt.Program
	Eval     analysis.SFFunc
	// KnownBugs are confirmed-bug trigger inputs with descriptions,
	// replayed for the |B| column (the paper verified these with gdb).
	KnownBugs []KnownBug
}

// KnownBug is a confirmed defect with its trigger input.
type KnownBug struct {
	Input []float64
	What  string
	// Manifest decides whether a replayed result exhibits the bug.
	Manifest func(res gsl.Result, st gsl.Status) bool
}

// GSLBenchmarks returns the three §6.3 benchmarks.
func GSLBenchmarks() []GSLBenchmark {
	return []GSLBenchmark{
		{
			File:     "bessel",
			Function: "gsl_sf_bessel_Knu_scaled_asympx_e",
			Program:  gsl.BesselProgram(),
			Eval: func(x []float64) (gsl.Result, gsl.Status) {
				return gsl.BesselKnuScaledAsympx(x[0], x[1])
			},
		},
		{
			File:     "hyperg",
			Function: "gsl_sf_hyperg_2F0_e",
			Program:  gsl.Hyperg2F0Program(),
			Eval: func(x []float64) (gsl.Result, gsl.Status) {
				return gsl.Hyperg2F0(x[0], x[1], x[2])
			},
		},
		{
			File:     "airy",
			Function: "gsl_sf_airy_Ai_e",
			Program:  gsl.AiryAiProgram(),
			Eval: func(x []float64) (gsl.Result, gsl.Status) {
				return gsl.AiryAi(x[0])
			},
			KnownBugs: []KnownBug{
				{
					Input: []float64{-1.8427611519777440},
					What:  "division by zero: result_m vanishes in airy_mod_phase, err = Inf with GSL_SUCCESS",
					Manifest: func(res gsl.Result, st gsl.Status) bool {
						return st == gsl.Success && (math.IsInf(res.Err, 0) || math.IsNaN(res.Err))
					},
				},
				{
					Input: []float64{-1.14e34},
					What:  "inaccurate cosine: gsl_sf_cos_err_e returns far outside [-1,1] for huge phase",
					Manifest: func(res gsl.Result, st gsl.Status) bool {
						return st == gsl.Success && (math.Abs(res.Val) > 1 || math.IsNaN(res.Val))
					},
				},
			},
		},
	}
}

// Table3Row summarizes one benchmark (Table 3's columns).
type Table3Row struct {
	File            string
	Function        string
	Ops             int     // |Op|
	Overflows       int     // |O|
	Inconsistencies int     // |I|
	Bugs            int     // |B|
	Seconds         float64 // T
}

// GSLStudyResult carries everything Tables 3-5 need.
type GSLStudyResult struct {
	Rows []Table3Row
	// OverflowReports maps File to the Algorithm 3 report (Table 4).
	OverflowReports map[string]*analysis.OverflowReport
	// Inconsistencies maps File to the §6.3.2 replay findings (Table 5).
	Inconsistencies map[string][]analysis.Inconsistency
	// BugReplays maps File to the manifested known bugs.
	BugReplays map[string][]KnownBug
	// Lifted marks a study over the Go-frontend-lifted corpus
	// (paperrepro -lifted); Table 4 then renders the frontend's
	// file:line:col op labels instead of the curated Bessel table.
	Lifted bool
	// opLabels holds each benchmark program's op-site labels indexed by
	// site, for the lifted Table 4 rendering.
	opLabels map[string][]string
}

// GSLStudy runs the full §6.3 pipeline: Algorithm 3 per benchmark,
// inconsistency replay of every generated input, and confirmed-bug
// replay. Minimization rounds and replays run on all CPUs;
// GSLStudyWorkers takes an explicit worker count.
func GSLStudy(seed int64, evalsPerRound int) *GSLStudyResult {
	return GSLStudyWorkers(seed, evalsPerRound, 0)
}

// GSLStudyWorkers is GSLStudy with an explicit worker count (0 = all
// CPUs, 1 = serial); the result is identical for every value.
func GSLStudyWorkers(seed int64, evalsPerRound, workers int) *GSLStudyResult {
	return gslStudyOver(GSLBenchmarks(), seed, evalsPerRound, workers)
}

// gslStudyOver is the study core, shared by the curated benchmarks and
// the lifted-corpus variant.
func gslStudyOver(benchmarks []GSLBenchmark, seed int64, evalsPerRound, workers int) *GSLStudyResult {
	res := &GSLStudyResult{
		OverflowReports: map[string]*analysis.OverflowReport{},
		Inconsistencies: map[string][]analysis.Inconsistency{},
		BugReplays:      map[string][]KnownBug{},
		opLabels:        map[string][]string{},
	}
	for bi, b := range benchmarks {
		rep := analysis.DetectOverflows(context.Background(), b.Program, analysis.OverflowOptions{
			Seed:          seed + int64(bi)*1_000_003,
			EvalsPerRound: evalsPerRound,
			Workers:       workers,
		})
		res.OverflowReports[b.File] = rep
		labels := make([]string, len(b.Program.Ops))
		for _, op := range b.Program.Ops {
			labels[op.ID] = op.Label
		}
		res.opLabels[b.File] = labels

		var inputs [][]float64
		for _, f := range rep.Findings {
			inputs = append(inputs, f.Input)
		}
		incs := analysis.CheckInconsistenciesWorkers(b.Eval, inputs, workers)
		res.Inconsistencies[b.File] = incs

		var bugs []KnownBug
		for _, kb := range b.KnownBugs {
			if r, st := b.Eval(kb.Input); kb.Manifest(r, st) {
				bugs = append(bugs, kb)
			}
		}
		res.BugReplays[b.File] = bugs

		res.Rows = append(res.Rows, Table3Row{
			File:            b.File,
			Function:        b.Function,
			Ops:             rep.Ops,
			Overflows:       len(rep.Findings),
			Inconsistencies: len(incs),
			Bugs:            len(bugs),
			Seconds:         rep.Duration.Seconds(),
		})
	}
	return res
}

// FormatTable3 renders the summary.
func (g *GSLStudyResult) FormatTable3() string {
	var sb strings.Builder
	sb.WriteString("Table 3. Result summary: floating-point overflow detection.\n")
	sb.WriteString(fmt.Sprintf("%-8s %-36s %6s %5s %5s %5s %8s\n",
		"File", "Function", "|Op|", "|O|", "|I|", "|B|", "T (sec)"))
	for _, r := range g.Rows {
		sb.WriteString(fmt.Sprintf("%-8s %-36s %6d %5d %5d %5d %8.2f\n",
			r.File, r.Function, r.Ops, r.Overflows, r.Inconsistencies, r.Bugs, r.Seconds))
	}
	return sb.String()
}

// FormatTable4 renders the per-operation Bessel findings.
func (g *GSLStudyResult) FormatTable4() string {
	rep := g.OverflowReports["bessel"]
	if rep == nil {
		return "Table 4: bessel report missing\n"
	}
	bySite := map[int]analysis.OverflowFinding{}
	for _, f := range rep.Findings {
		bySite[f.Site] = f
	}
	if g.Lifted {
		// The lifted program's op sites carry the frontend's
		// file:line:col labels, and the site space is module-wide (the
		// whole combined corpus), so render only the detections plus a
		// missed summary instead of the curated per-operation table.
		labels := g.opLabels["bessel"]
		var sb strings.Builder
		sb.WriteString("Table 4. Floating-point overflow detected in Bessel (lifted corpus).\n")
		sb.WriteString(fmt.Sprintf("%-72s %s\n", "Floating-point operation", "nu*, x*"))
		for _, f := range rep.Findings {
			label := f.Label
			if label == "" && f.Site < len(labels) {
				label = labels[f.Site]
			}
			sb.WriteString(fmt.Sprintf("%-72s %.2g, %.2g\n", label, f.Input[0], f.Input[1]))
		}
		sb.WriteString(fmt.Sprintf("found %d operations; %d of %d module sites without a detected overflow (unreachable from the entry, or incompleteness)\n",
			len(rep.Findings), len(rep.Missed), rep.Ops))
		sb.WriteString(fmt.Sprintf("(%d rounds, %d evaluations)\n", rep.Rounds, rep.Evals))
		return sb.String()
	}
	var sb strings.Builder
	sb.WriteString("Table 4. Floating-point overflow detected in Bessel.\n")
	sb.WriteString(fmt.Sprintf("%-72s %s\n", "Floating-point operation", "nu*, x*"))
	for site := 0; site < gsl.BesselOpCount; site++ {
		label := gsl.BesselOpLabel(site)
		if f, ok := bySite[site]; ok {
			sb.WriteString(fmt.Sprintf("%-72s %.2g, %.2g\n", label, f.Input[0], f.Input[1]))
		} else {
			sb.WriteString(fmt.Sprintf("%-72s missed\n", label))
		}
	}
	sb.WriteString(fmt.Sprintf("found %d / %d operations (%d rounds, %d evaluations)\n",
		len(rep.Findings), rep.Ops, rep.Rounds, rep.Evals))
	return sb.String()
}

// FormatTable5 renders the inconsistency findings and the confirmed-bug
// replays.
func (g *GSLStudyResult) FormatTable5() string {
	var sb strings.Builder
	sb.WriteString("Table 5. Inconsistencies (status GSL_SUCCESS with non-finite val/err) and root causes.\n")
	sb.WriteString(fmt.Sprintf("%-8s %-34s %6s %12s %12s %s\n",
		"File", "x*", "status", "val", "err", "root cause"))
	for _, file := range []string{"bessel", "hyperg", "airy"} {
		for _, inc := range g.Inconsistencies[file] {
			sb.WriteString(fmt.Sprintf("%-8s %-34s %6d %12.4g %12.4g %s\n",
				file, formatInput(inc.Input), int(inc.Status), inc.Val, inc.Err, inc.Cause))
		}
	}
	sb.WriteString("\nConfirmed-bug replays:\n")
	for _, file := range []string{"bessel", "hyperg", "airy"} {
		for _, kb := range g.BugReplays[file] {
			sb.WriteString(fmt.Sprintf("  %s %v: %s\n", file, kb.Input, kb.What))
		}
	}
	return sb.String()
}

func formatInput(x []float64) string {
	parts := make([]string, len(x))
	for i, v := range x {
		parts[i] = fmt.Sprintf("%.3g", v)
	}
	return strings.Join(parts, ", ")
}
