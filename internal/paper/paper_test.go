package paper

import (
	"math"
	"strings"
	"testing"
)

func TestTable1Shape(t *testing.T) {
	res := Table1(1, 24000)
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Basinhopping must solve both problems (the paper's strongest
	// backend).
	bh := res.Rows[0]
	if bh.Backend != "Basinhopping" {
		t.Fatalf("row order: %s", bh.Backend)
	}
	if bh.BoundaryMin != 0 || len(bh.BoundaryZeros) == 0 {
		t.Errorf("Basinhopping BVA: min=%v zeros=%v", bh.BoundaryMin, bh.BoundaryZeros)
	}
	if bh.PathMin != 0 || len(bh.PathZeros) == 0 {
		t.Errorf("Basinhopping path: min=%v zeros=%d", bh.PathMin, len(bh.PathZeros))
	}
	// Basinhopping finds the three landmark boundary values.
	want := map[float64]bool{-3: false, 1: false, 2: false}
	for _, z := range bh.BoundaryZeros {
		if _, ok := want[z]; ok {
			want[z] = true
		}
	}
	for v, found := range want {
		if !found {
			t.Errorf("Basinhopping missed boundary value %v (found %v)", v, bh.BoundaryZeros)
		}
	}
	// Every backend's path zeros lie inside [-3, 1].
	for _, r := range res.Rows {
		for _, z := range r.PathZeros {
			if z < -3 || z > 1 {
				t.Errorf("%s: path zero %v outside [-3,1]", r.Backend, z)
			}
		}
		for _, z := range r.BoundaryZeros {
			if w := boundaryW(z); w != 0 {
				t.Errorf("%s: reported boundary zero %v has W=%v", r.Backend, z, w)
			}
		}
	}
	if !strings.Contains(res.Format(), "Basinhopping") {
		t.Error("Format missing backend name")
	}
}

func boundaryW(x float64) float64 {
	// Recompute the Fig. 2 boundary weak distance directly.
	w := 1.0
	xx := x
	w *= math.Abs(xx - 1.0)
	if xx <= 1.0 {
		xx = xx + 1
	}
	y := xx * xx
	w *= math.Abs(y - 4.0)
	return w
}

func TestFig3Fig4(t *testing.T) {
	f3 := Fig3(2, 3000)
	if len(f3.Curve) == 0 || len(f3.Samples) == 0 {
		t.Fatal("empty figure")
	}
	// The curve touches zero at the landmarks.
	zeroXs := map[float64]bool{}
	for _, c := range f3.Curve {
		if c.W == 0 {
			zeroXs[c.X] = true
		}
	}
	if len(zeroXs) == 0 {
		t.Error("fig3 curve never touches zero on the grid")
	}
	f4 := Fig4(2, 3000)
	// The path weak distance is zero on [-3, 1]: a large flat region of
	// the curve.
	zeros := 0
	for _, c := range f4.Curve {
		if c.W == 0 {
			if c.X < -3.0001 || c.X > 1.0001 {
				t.Errorf("fig4 zero at %v outside [-3,1]", c.X)
			}
			zeros++
		}
	}
	if zeros < 50 {
		t.Errorf("fig4 zero region too small: %d grid points", zeros)
	}
	if f4.ZeroSamples == 0 {
		t.Error("fig4 sampling never hit the solution region")
	}
	if !strings.Contains(f3.Format(), "weak-distance graph") {
		t.Error("format")
	}
}

func TestFig7AblationShape(t *testing.T) {
	res := Fig7(3, 30000)
	if !res.GradedFound {
		t.Error("graded weak distance failed — should find a boundary value easily")
	}
	if res.FlatFound && res.FlatEvals < res.GradedEvals {
		t.Error("flat characteristic function outperformed the graded distance — ablation shape violated")
	}
	if !strings.Contains(res.Format(), "degenerates into random testing") {
		t.Error("format")
	}
}

func TestSinStudyShape(t *testing.T) {
	s := SinBoundaryStudy(4, 48, 4000)
	// All 8 reachable conditions, none on the unreachable branch.
	reached := 0
	for site := 0; site < 4; site++ {
		for _, neg := range []bool{false, true} {
			if s.Report.Condition(site, neg) != nil {
				reached++
			}
		}
	}
	if reached != 8 {
		t.Errorf("reached %d/8 conditions", reached)
	}
	if s.Report.Condition(4, false) != nil || s.Report.Condition(4, true) != nil {
		t.Error("unreachable condition reported")
	}
	t2 := s.FormatTable2()
	if !strings.Contains(t2, "0x3e500000") || !strings.Contains(t2, "unreached") {
		t.Errorf("table 2 rendering:\n%s", t2)
	}
	if !strings.Contains(s.FormatFig9(), "final:") {
		t.Error("fig 9 rendering")
	}
}

func TestGSLStudyShape(t *testing.T) {
	res := GSLStudy(5, 6000)
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byFile := map[string]Table3Row{}
	for _, r := range res.Rows {
		byFile[r.File] = r
	}
	// Bessel: 23 ops, >= 21 overflows (the paper found 21; the
	// M_PI/(2x) division is reachable only via subnormal x and our
	// full-lattice sampling can find it, hence >=).
	b := byFile["bessel"]
	if b.Ops != 23 {
		t.Errorf("bessel |Op| = %d", b.Ops)
	}
	if b.Overflows < 21 {
		t.Errorf("bessel |O| = %d, want >= 21", b.Overflows)
	}
	// Hyperg: 8 ops, some overflows, some inconsistencies.
	h := byFile["hyperg"]
	if h.Ops != 8 {
		t.Errorf("hyperg |Op| = %d", h.Ops)
	}
	if h.Overflows == 0 {
		t.Error("hyperg found no overflows")
	}
	// Airy: both confirmed bugs replay.
	a := byFile["airy"]
	if a.Bugs != 2 {
		t.Errorf("airy |B| = %d, want 2", a.Bugs)
	}
	if a.Overflows == 0 {
		t.Error("airy found no overflows")
	}
	// Inconsistencies exist somewhere (bessel returns SUCCESS always,
	// so every overflow that reaches val/err is an inconsistency).
	if b.Inconsistencies == 0 {
		t.Error("bessel overflows must replay as inconsistencies")
	}
	for _, fmtd := range []string{res.FormatTable3(), res.FormatTable4(), res.FormatTable5()} {
		if len(fmtd) == 0 {
			t.Error("empty formatting")
		}
	}
	if !strings.Contains(res.FormatTable4(), "4.0 * nu*nu") {
		t.Error("table 4 rendering")
	}
	if !strings.Contains(res.FormatTable5(), "Confirmed-bug replays") {
		t.Error("table 5 rendering")
	}
}

func TestGSLLiftedStudyShape(t *testing.T) {
	bs, err := GSLLiftedBenchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("%d lifted benchmarks", len(bs))
	}
	curated := GSLBenchmarks()
	for i, b := range bs {
		if b.Program.Dim != curated[i].Program.Dim {
			t.Errorf("%s: lifted dim %d, curated %d", b.File, b.Program.Dim, curated[i].Program.Dim)
		}
		if !strings.Contains(b.Function, "(lifted)") {
			t.Errorf("%s: function %q not marked lifted", b.File, b.Function)
		}
		if len(b.Program.Ops) == 0 || len(b.Program.Branches) == 0 {
			t.Errorf("%s: lifted program has %d ops, %d branches",
				b.File, len(b.Program.Ops), len(b.Program.Branches))
		}
	}
	if err := VerifyLiftedBug1(); err != nil {
		t.Fatal(err)
	}

	res, err := GSLStudyLiftedWorkers(5, 1200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lifted || len(res.Rows) != 3 {
		t.Fatalf("lifted study shape: lifted=%v rows=%d", res.Lifted, len(res.Rows))
	}
	byFile := map[string]Table3Row{}
	for _, r := range res.Rows {
		byFile[r.File] = r
	}
	if b := byFile["bessel"]; b.Overflows == 0 {
		t.Error("lifted bessel found no overflows")
	}
	if h := byFile["hyperg"]; h.Overflows == 0 {
		t.Error("lifted hyperg found no overflows")
	}
	// The known bugs replay against the shared native evaluator exactly
	// as in the curated study.
	if a := byFile["airy"]; a.Bugs != 2 {
		t.Errorf("lifted airy |B| = %d, want 2", a.Bugs)
	}
	t4 := res.FormatTable4()
	if !strings.Contains(t4, "lifted corpus") || !strings.Contains(t4, "gsl_lift.go:") {
		t.Errorf("lifted table 4 rendering:\n%s", t4)
	}
}
