package paper

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/libm"
)

// SinStudy carries both §6.2 artifacts: Table 2 (per-condition boundary
// values of GNU sin) and Figure 9 (conditions triggered vs samples).
type SinStudy struct {
	Report *analysis.BoundaryReport
}

// SinBoundaryStudy runs boundary value analysis on the glibc-2.19 sin
// port. starts/evals control the search effort (the paper used 6.4M
// samples; the defaults here reach all 8 reachable conditions far
// cheaper because the integer dispatch key gives a clean gradient).
// Restarts run on all CPUs; SinBoundaryStudyWorkers takes an explicit
// worker count.
func SinBoundaryStudy(seed int64, starts, evals int) *SinStudy {
	return SinBoundaryStudyWorkers(seed, starts, evals, 0)
}

// SinBoundaryStudyWorkers is SinBoundaryStudy with an explicit
// multi-start worker count (0 = all CPUs, 1 = serial); the report is
// identical for every value.
func SinBoundaryStudyWorkers(seed int64, starts, evals, workers int) *SinStudy {
	if starts <= 0 {
		starts = 64
	}
	if evals <= 0 {
		evals = 4000
	}
	rep := analysis.BoundaryValues(context.Background(), libm.SinProgram(), analysis.BoundaryOptions{
		Seed:          seed,
		Starts:        starts,
		EvalsPerStart: evals,
		Workers:       workers,
	})
	return &SinStudy{Report: rep}
}

// FormatTable2 renders Table 2: per branch and sign, the reference
// boundary value, the found min/max, and hit counts.
func (s *SinStudy) FormatTable2() string {
	var sb strings.Builder
	sb.WriteString("Table 2. Case study with Glibc sin: boundary value analysis.\n")
	sb.WriteString(fmt.Sprintf("samples=%d boundary-values=%d soundness-violations=%d\n",
		s.Report.Samples, s.Report.BoundaryValues, s.Report.SoundnessViolations))
	sb.WriteString(fmt.Sprintf("%-4s %-40s %-15s %-15s %-15s %s\n",
		"", "branch", "ref", "min", "max", "hits"))
	for site := 0; site < 5; site++ {
		for _, neg := range []bool{false, true} {
			sign := "+"
			ref := libm.SinBoundaryRefs[site]
			if neg {
				sign = "-"
				ref = -ref
			}
			label := fmt.Sprintf("k < %#x", libm.SinThresholds[site])
			c := s.Report.Condition(site, neg)
			if c == nil {
				sb.WriteString(fmt.Sprintf("%-4s %-40s %-15.6g %-15s %-15s %s\n",
					sign, label, ref, "unreached", "unreached", "0"))
				continue
			}
			sb.WriteString(fmt.Sprintf("%-4s %-40s %-15.6g %-15.7g %-15.7g %d\n",
				sign, label, ref, c.Min, c.Max, c.Hits))
		}
	}
	return sb.String()
}

// FormatFig9 renders the Figure 9 series: number of triggered boundary
// conditions against the sampling index.
func (s *SinStudy) FormatFig9() string {
	var sb strings.Builder
	sb.WriteString("Fig. 9. GNU sin: #triggered boundary conditions (y) vs samples (x).\n")
	for _, p := range s.Report.Progress {
		sb.WriteString(fmt.Sprintf("  %10d  %2d\n", p.Samples, p.Conditions))
	}
	if n := len(s.Report.Progress); n > 0 {
		sb.WriteString(fmt.Sprintf("final: %d conditions after %d samples\n",
			s.Report.Progress[n-1].Conditions, s.Report.Samples))
	}
	return sb.String()
}
