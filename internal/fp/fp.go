// Package fp provides IEEE-754 binary64 utilities used throughout the
// weak-distance minimization framework: integer ULP distances, branch
// distances for the six comparison operators, overflow distances, and
// helpers for walking the float lattice.
//
// The package implements the metric machinery of Section 3 of Fu & Su,
// "Effective Floating-Point Analysis via Weak-Distance Minimization"
// (PLDI 2019), including the ULP-based mitigation of Limitation 2
// (floating-point inaccuracy when weak distances are reasoned about in
// real arithmetic).
package fp

import (
	"math"
)

// MaxFloat is the largest finite binary64 value, the MAX of Algorithm 3.
const MaxFloat = math.MaxFloat64

// Abs returns the absolute value of x without branching on the sign bit.
// Unlike math.Abs it is inlined here so the IR interpreter and the native
// runtime share one definition.
func Abs(x float64) float64 {
	return math.Float64frombits(math.Float64bits(x) &^ (1 << 63))
}

// IsFinite reports whether x is neither NaN nor an infinity.
func IsFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// ordKey maps a float64 onto a monotone int64 scale: the ordering of the
// keys matches the ordering of the floats, with -0 and +0 mapping to the
// same key distance of 1 apart (they are adjacent on the lattice).
func ordKey(x float64) int64 {
	b := int64(math.Float64bits(x))
	if b < 0 {
		// Negative floats: flip into a descending range below zero.
		b = math.MinInt64 - b
	}
	return b
}

// ULPDiff returns the number of representable binary64 values strictly
// between a and b, plus one if a != b; that is, the integer ULP distance
// |ordKey(a) - ordKey(b)| seen as an unsigned count. It is a true metric
// on the finite floats (Section 7 of the paper; Schkufza et al. 2014):
// nonnegative, zero iff equal, symmetric, and satisfying the triangle
// inequality on the ordKey integer line.
//
// NaN arguments yield the maximum distance so that optimization treats
// NaN-producing inputs as maximally far from any target.
func ULPDiff(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	ka, kb := ordKey(a), ordKey(b)
	if ka > kb {
		ka, kb = kb, ka
	}
	return uint64(kb - ka)
}

// ULPDist is ULPDiff converted to float64 for use as a weak-distance
// component. Conversion saturates (values above 2^53 lose precision but
// remain monotone enough to guide search).
func ULPDist(a, b float64) float64 {
	return float64(ULPDiff(a, b))
}

// unordKey inverts ordKey for keys corresponding to representable values.
func unordKey(k int64) float64 {
	if k < 0 {
		k = math.MinInt64 - k
	}
	return math.Float64frombits(uint64(k))
}

// AddULPs returns the float64 that is n steps from x on the float
// lattice (positive n moves toward +Inf). The result is clamped to the
// finite range; stepping from NaN returns NaN.
func AddULPs(x float64, n int64) float64 {
	if math.IsNaN(x) {
		return x
	}
	k := ordKey(x) + n
	lo, hi := ordKey(-MaxFloat), ordKey(MaxFloat)
	if k < lo {
		k = lo
	}
	if k > hi {
		k = hi
	}
	return unordKey(k)
}

// NextAfter returns the next representable value after x in the direction
// of y (mirrors math.Nextafter; exported here for package locality).
func NextAfter(x, y float64) float64 { return math.Nextafter(x, y) }

// NextUp returns the smallest float64 strictly greater than x.
func NextUp(x float64) float64 { return math.Nextafter(x, math.Inf(1)) }

// NextDown returns the largest float64 strictly less than x.
func NextDown(x float64) float64 { return math.Nextafter(x, math.Inf(-1)) }

// CmpOp identifies one of the six floating-point comparison operators.
type CmpOp uint8

// Comparison operators in source order.
const (
	LT CmpOp = iota // <
	LE              // <=
	GT              // >
	GE              // >=
	EQ              // ==
	NE              // !=
)

// String returns the source-level spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "=="
	case NE:
		return "!="
	}
	return "?"
}

// Negate returns the operator whose truth value is the logical negation:
// !(a < b) == (a >= b), and so on. (This matches IEEE semantics only for
// non-NaN operands; the framework treats NaN via distance saturation.)
func (op CmpOp) Negate() CmpOp {
	switch op {
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	case EQ:
		return NE
	case NE:
		return EQ
	}
	return op
}

// Eval applies the comparison to the operands.
func (op CmpOp) Eval(a, b float64) bool {
	switch op {
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	case EQ:
		return a == b
	case NE:
		return a != b
	}
	return false
}

// BranchDist returns the branch distance θ(op, a, b): a nonnegative value
// that is zero if and only if `a op b` holds, and otherwise grows with how
// far the operands are from satisfying the comparison. This is the
// additive penalty injected by the path-reachability weak distance
// (paper §4.3: `w = w + (a <= b ? 0 : a - b)` generalized to all six
// operators).
//
// For the strict operators and equality the classical Korel-style
// distances are used. NaN operands yield +Inf so that optimization is
// pushed away from NaN-producing regions.
func BranchDist(op CmpOp, a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.Inf(1)
	}
	d := branchDistRaw(op, a, b)
	if math.IsNaN(d) {
		// Inf - Inf in a failing comparison (e.g. +Inf < +Inf): the
		// operands are maximally far from satisfying it.
		return math.Inf(1)
	}
	return d
}

func branchDistRaw(op CmpOp, a, b float64) float64 {
	switch op {
	case LT:
		if a < b {
			return 0
		}
		return a - b + ulpStep(a, b)
	case LE:
		if a <= b {
			return 0
		}
		return a - b
	case GT:
		if a > b {
			return 0
		}
		return b - a + ulpStep(a, b)
	case GE:
		if a >= b {
			return 0
		}
		return b - a
	case EQ:
		if a == b {
			return 0
		}
		return Abs(a - b)
	case NE:
		if a != b {
			return 0
		}
		// One ULP of perturbation makes them unequal.
		return ulpStep(a, b)
	}
	return math.Inf(1)
}

// ulpStep is the strictness penalty: the distance contribution that makes
// θ strictly positive when a == b but a strict inequality is required.
// One ULP at the operands' magnitude keeps the distance graded near the
// boundary instead of a fixed constant.
func ulpStep(a, b float64) float64 {
	m := math.Max(Abs(a), Abs(b))
	if math.IsInf(m, 0) {
		return math.SmallestNonzeroFloat64
	}
	step := NextUp(m) - m
	if step == 0 || math.IsInf(step, 0) || math.IsNaN(step) {
		return math.SmallestNonzeroFloat64
	}
	return step
}

// BranchDistULP is BranchDist measured on the integer ULP scale instead of
// the real line. It is zero iff the comparison holds, and otherwise counts
// the ULPs separating the operands (plus one for strict operators at
// equality). Using the ULP scale mitigates Limitation 2: real-valued
// distances can vanish without the comparison holding (e.g. x*x underflow),
// whereas ULP distances vanish only at actual floating-point equality.
func BranchDistULP(op CmpOp, a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.Inf(1)
	}
	if op.Eval(a, b) {
		return 0
	}
	d := ULPDist(a, b)
	if d == 0 {
		// Equal operands failing a strict comparison: one ULP away.
		return 1
	}
	return d
}

// BoundaryDist returns |a - b|, the multiplicative factor of the boundary
// value analysis weak distance (paper §4.2: `w = w * abs(x - 1.0)`), with
// NaN saturating to +Inf.
func BoundaryDist(a, b float64) float64 {
	// Fast path: a finite difference means both operands are finite
	// non-NaN, which is the overwhelming case on the per-branch hot
	// path. Keeping this function tiny lets it inline into every
	// monitor's Branch method.
	d := Abs(a - b)
	if d <= MaxFloat {
		return d
	}
	return boundaryDistSlow(a, b)
}

// boundaryDistSlow resolves the NaN, infinite-operand, and overflowing
// |a-b| cases, preserving the exact values of the original definition.
func boundaryDistSlow(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.Inf(1)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		if a == b {
			return 0
		}
		return math.Inf(1)
	}
	// Finite operands whose difference overflowed.
	return MaxFloat
}

// OverflowDist implements the per-instruction distance of Algorithm 3
// step 2: `|a| < MAX ? MAX - |a| : 0`. Zero means the operation has
// overflowed (result magnitude at or beyond MAX, or non-finite).
func OverflowDist(a float64) float64 {
	if math.IsNaN(a) {
		return 0 // NaN results arise from overflowed intermediates; treat as triggered.
	}
	abs := Abs(a)
	if abs < MaxFloat {
		return MaxFloat - abs
	}
	return 0
}

// Overflowed reports whether a result value counts as an overflow for
// Algorithm 3: non-finite or at the MAX boundary.
func Overflowed(a float64) bool { return OverflowDist(a) == 0 }
