package fp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAbs(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1.5, 1.5},
		{-1.5, 1.5},
		{0, 0},
		{math.Inf(-1), math.Inf(1)},
		{math.Copysign(0, -1), 0},
	}
	for _, c := range cases {
		if got := Abs(c.in); got != c.want {
			t.Errorf("Abs(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Abs(math.NaN())) {
		t.Errorf("Abs(NaN) should be NaN")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(1.0) || !IsFinite(-MaxFloat) || !IsFinite(0) {
		t.Error("finite values misclassified")
	}
	if IsFinite(math.Inf(1)) || IsFinite(math.Inf(-1)) || IsFinite(math.NaN()) {
		t.Error("non-finite values misclassified")
	}
}

func TestULPDiffAdjacent(t *testing.T) {
	cases := []struct {
		a, b float64
		want uint64
	}{
		{1.0, 1.0, 0},
		{1.0, math.Nextafter(1.0, 2), 1},
		{0.0, math.SmallestNonzeroFloat64, 1},
		{0.0, math.Copysign(0, -1), 0}, // +0 and -0 share an ordKey neighborhood? see below
		{-math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64, 2},
	}
	for _, c := range cases {
		if got := ULPDiff(c.a, c.b); got != c.want {
			t.Errorf("ULPDiff(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestULPDiffNaN(t *testing.T) {
	if ULPDiff(math.NaN(), 1) != math.MaxUint64 {
		t.Error("NaN must be maximally distant")
	}
}

func TestULPDiffMetricAxioms(t *testing.T) {
	// Symmetry and identity on random finite floats.
	sym := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return ULPDiff(a, b) == ULPDiff(b, a)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	ident := func(a float64) bool {
		if math.IsNaN(a) {
			return true
		}
		return ULPDiff(a, a) == 0
	}
	if err := quick.Check(ident, nil); err != nil {
		t.Error(err)
	}
}

func TestULPDiffTriangle(t *testing.T) {
	tri := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		ab, bc, ac := ULPDiff(a, b), ULPDiff(b, c), ULPDiff(a, c)
		// Guard wraparound: distances here never exceed 2^64-1 so sum may
		// overflow; saturate.
		sum := ab + bc
		if sum < ab {
			sum = math.MaxUint64
		}
		return ac <= sum
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

func TestULPDiffMonotone(t *testing.T) {
	// Moving b further from a (on the float lattice) must not decrease
	// distance.
	a := 1.0
	prev := uint64(0)
	b := a
	for i := 0; i < 1000; i++ {
		b = NextUp(b)
		d := ULPDiff(a, b)
		if d <= prev {
			t.Fatalf("ULPDiff not strictly increasing at step %d: %d <= %d", i, d, prev)
		}
		prev = d
	}
}

func TestCmpOpEvalAndString(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b float64
		want bool
		str  string
	}{
		{LT, 1, 2, true, "<"},
		{LT, 2, 1, false, "<"},
		{LE, 2, 2, true, "<="},
		{GT, 3, 2, true, ">"},
		{GE, 2, 3, false, ">="},
		{EQ, 2, 2, true, "=="},
		{NE, 2, 2, false, "!="},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("(%v %s %v) = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
		if c.op.String() != c.str {
			t.Errorf("String() = %q, want %q", c.op.String(), c.str)
		}
	}
}

func TestCmpOpNegate(t *testing.T) {
	neg := func(opRaw uint8, a, b float64) bool {
		op := CmpOp(opRaw % 6)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // IEEE NaN comparisons are all-false; Negate contract excludes NaN.
		}
		return op.Negate().Eval(a, b) == !op.Eval(a, b)
	}
	if err := quick.Check(neg, nil); err != nil {
		t.Error(err)
	}
}

func TestBranchDistZeroIffHolds(t *testing.T) {
	prop := func(opRaw uint8, a, b float64) bool {
		op := CmpOp(opRaw % 6)
		if math.IsNaN(a) || math.IsNaN(b) {
			return math.IsInf(BranchDist(op, a, b), 1)
		}
		d := BranchDist(op, a, b)
		if d < 0 {
			return false
		}
		holds := op.Eval(a, b)
		if holds {
			return d == 0
		}
		return d > 0 || math.IsInf(a, 0) || math.IsInf(b, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestBranchDistGraded(t *testing.T) {
	// Distances grow monotonically as the failing operand moves away.
	for _, op := range []CmpOp{LT, LE} {
		d1 := BranchDist(op, 2.0, 1.0) // a must become <(=) b
		d2 := BranchDist(op, 3.0, 1.0)
		if d2 <= d1 {
			t.Errorf("%s: distance should grow with violation: d(2,1)=%v d(3,1)=%v", op, d1, d2)
		}
	}
}

func TestBranchDistStrictAtEquality(t *testing.T) {
	// a < b fails at a==b but only barely: distance should be tiny yet
	// strictly positive.
	d := BranchDist(LT, 1.0, 1.0)
	if d <= 0 {
		t.Errorf("BranchDist(LT, 1, 1) = %v, want > 0", d)
	}
	if d > 1e-9 {
		t.Errorf("BranchDist(LT, 1, 1) = %v, want tiny (graded)", d)
	}
}

func TestBranchDistULPZeroIffHolds(t *testing.T) {
	prop := func(opRaw uint8, a, b float64) bool {
		op := CmpOp(opRaw % 6)
		if math.IsNaN(a) || math.IsNaN(b) {
			return math.IsInf(BranchDistULP(op, a, b), 1)
		}
		d := BranchDistULP(op, a, b)
		if d < 0 {
			return false
		}
		return op.Eval(a, b) == (d == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestBranchDistULPBeatsRealOnUnderflow(t *testing.T) {
	// The paper's Limitation 2 example: with W(x) = x*x, W(1e-200) rounds
	// to 0 even though x != 0. The real-valued |a-b| distance here is
	// graded but can underflow in client squaring; ULP distance for the
	// EQ comparison never vanishes unless actually equal.
	x := 1e-200
	if BranchDistULP(EQ, x, 0) == 0 {
		t.Error("ULP distance must not vanish for x != 0")
	}
	if got := BranchDistULP(EQ, 0.0, 0.0); got != 0 {
		t.Errorf("ULP distance at equality = %v, want 0", got)
	}
}

func TestBoundaryDist(t *testing.T) {
	if got := BoundaryDist(1.0, 1.0); got != 0 {
		t.Errorf("BoundaryDist(1,1) = %v", got)
	}
	if got := BoundaryDist(3.0, 1.0); got != 2.0 {
		t.Errorf("BoundaryDist(3,1) = %v", got)
	}
	if !math.IsInf(BoundaryDist(math.NaN(), 1), 1) {
		t.Error("NaN should saturate to +Inf")
	}
	if got := BoundaryDist(math.Inf(1), math.Inf(1)); got != 0 {
		t.Errorf("equal infinities should be distance 0, got %v", got)
	}
	if !math.IsInf(BoundaryDist(math.Inf(1), 1), 1) {
		t.Error("inf vs finite should be +Inf")
	}
	// |a-b| overflow saturation to MaxFloat.
	if got := BoundaryDist(MaxFloat, -MaxFloat); got != MaxFloat {
		t.Errorf("saturation failed: %v", got)
	}
}

func TestOverflowDist(t *testing.T) {
	if OverflowDist(0) != MaxFloat {
		t.Error("OverflowDist(0) should be MAX")
	}
	if OverflowDist(MaxFloat) != 0 {
		t.Error("MAX itself counts as overflow boundary")
	}
	if OverflowDist(math.Inf(1)) != 0 || OverflowDist(math.Inf(-1)) != 0 {
		t.Error("infinities are overflows")
	}
	if OverflowDist(math.NaN()) != 0 {
		t.Error("NaN treated as triggered")
	}
	if d := OverflowDist(MaxFloat / 2); d <= 0 || d >= MaxFloat {
		t.Errorf("interior value distance out of range: %v", d)
	}
	if !Overflowed(math.Inf(1)) || Overflowed(1.0) {
		t.Error("Overflowed misclassification")
	}
}

func TestOverflowDistMonotone(t *testing.T) {
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if Abs(a) <= Abs(b) {
			return OverflowDist(a) >= OverflowDist(b)
		}
		return OverflowDist(a) <= OverflowDist(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAddULPs(t *testing.T) {
	if got := AddULPs(1.0, 1); got != NextUp(1.0) {
		t.Errorf("AddULPs(1,1) = %v", got)
	}
	if got := AddULPs(1.0, -1); got != NextDown(1.0) {
		t.Errorf("AddULPs(1,-1) = %v", got)
	}
	if got := AddULPs(0.0, 1); got != math.SmallestNonzeroFloat64 {
		t.Errorf("AddULPs(0,1) = %v", got)
	}
	if got := AddULPs(0.0, -1); got != -math.SmallestNonzeroFloat64 {
		t.Errorf("AddULPs(0,-1) = %v (crossing zero)", got)
	}
	if got := AddULPs(MaxFloat, 5); got != MaxFloat {
		t.Errorf("AddULPs must clamp at MaxFloat, got %v", got)
	}
	if !math.IsNaN(AddULPs(math.NaN(), 1)) {
		t.Error("AddULPs(NaN, n) should stay NaN")
	}
}

func TestAddULPsRoundTrip(t *testing.T) {
	prop := func(x float64, nRaw int32) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		n := int64(nRaw % 1000)
		y := AddULPs(x, n)
		// Unless clamped at the rails, stepping back restores x.
		if Abs(y) >= MaxFloat {
			return true
		}
		return AddULPs(y, -n) == x
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAddULPsConsistentWithULPDiff(t *testing.T) {
	prop := func(x float64, nRaw uint16) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || Abs(x) >= MaxFloat/2 {
			return true
		}
		n := int64(nRaw)
		y := AddULPs(x, n)
		return ULPDiff(x, y) == uint64(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNextUpDown(t *testing.T) {
	if NextUp(1.0) <= 1.0 {
		t.Error("NextUp(1) must exceed 1")
	}
	if NextDown(1.0) >= 1.0 {
		t.Error("NextDown(1) must be below 1")
	}
	if NextUp(NextDown(1.0)) != 1.0 {
		t.Error("NextUp∘NextDown should round-trip")
	}
}
